#include "serve/protocol.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/error.hpp"

namespace snail
{

namespace
{

/** Fill a sockaddr_un, rejecting paths the ABI cannot hold. */
sockaddr_un
socketAddress(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    SNAIL_REQUIRE(path.size() < sizeof(addr.sun_path),
                  "socket path too long (" << path.size() << " bytes, max "
                                           << sizeof(addr.sun_path) - 1
                                           << "): " << path);
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return addr;
}

} // namespace

std::string
defaultSocketPath()
{
    if (const char *env = std::getenv("SNAILQC_SOCKET")) {
        if (*env != '\0') {
            return env;
        }
    }
    return "/tmp/snailqc.sock";
}

int
listenUnixSocket(const std::string &path)
{
    const sockaddr_un addr = socketAddress(path);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    SNAIL_REQUIRE(fd >= 0,
                  "socket() failed: " << std::strerror(errno));

    // A connect probe distinguishes a live daemon from a stale file
    // left by a crash: refuse the former, silently replace the latter.
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) == 0) {
        ::close(fd);
        SNAIL_THROW("a daemon is already listening on " << path);
    }
    ::unlink(path.c_str());

    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 64) != 0) {
        const std::string detail = std::strerror(errno);
        ::close(fd);
        SNAIL_THROW("cannot listen on " << path << ": " << detail);
    }
    return fd;
}

int
connectUnixSocket(const std::string &path)
{
    const sockaddr_un addr = socketAddress(path);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    SNAIL_REQUIRE(fd >= 0,
                  "socket() failed: " << std::strerror(errno));
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        const std::string detail = std::strerror(errno);
        ::close(fd);
        SNAIL_THROW("cannot connect to daemon at "
                    << path << ": " << detail
                    << " (is `snailqc serve` running?)");
    }
    return fd;
}

LineChannel::~LineChannel()
{
    if (_fd >= 0) {
        ::close(_fd);
    }
}

std::optional<std::string>
LineChannel::readLine(const volatile bool *poll_stop)
{
    for (;;) {
        const std::size_t newline = _buffer.find('\n');
        if (newline != std::string::npos) {
            std::string line = _buffer.substr(0, newline);
            _buffer.erase(0, newline + 1);
            return line;
        }

        // Poll in slices so a stopping server abandons idle readers.
        pollfd pfd{};
        pfd.fd = _fd;
        pfd.events = POLLIN;
        const int ready = ::poll(&pfd, 1, 200);
        if (ready < 0) {
            if (errno == EINTR) {
                continue;
            }
            SNAIL_THROW("poll() failed: " << std::strerror(errno));
        }
        if (ready == 0) {
            if (poll_stop != nullptr && *poll_stop) {
                return std::nullopt;
            }
            continue;
        }

        char chunk[4096];
        const ssize_t n = ::read(_fd, chunk, sizeof(chunk));
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            SNAIL_THROW("read() failed: " << std::strerror(errno));
        }
        if (n == 0) {
            // EOF; a partial unterminated line is a torn client — drop it.
            return std::nullopt;
        }
        _buffer.append(chunk, static_cast<std::size_t>(n));
    }
}

void
LineChannel::writeLine(const std::string &line)
{
    std::string framed = line;
    framed.push_back('\n');
    std::size_t sent = 0;
    while (sent < framed.size()) {
        const ssize_t n =
            ::write(_fd, framed.data() + sent, framed.size() - sent);
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            SNAIL_THROW("write() failed: " << std::strerror(errno));
        }
        sent += static_cast<std::size_t>(n);
    }
}

JsonValue
errorResponse(const std::string &message, int retry_after_ms)
{
    JsonValue::Object out;
    out["ok"] = JsonValue(false);
    out["error"] = JsonValue(message);
    if (retry_after_ms > 0) {
        out["retry_after_ms"] = JsonValue(retry_after_ms);
    }
    return JsonValue(std::move(out));
}

JsonValue::Object
okResponse(const std::string &op)
{
    JsonValue::Object out;
    out["ok"] = JsonValue(true);
    out["op"] = JsonValue(op);
    return out;
}

} // namespace snail
