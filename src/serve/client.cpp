#include "serve/client.hpp"

#include <chrono>
#include <thread>

#include "common/error.hpp"

namespace snail
{

Client::Client(const std::string &socket_path)
    : _socket_path(socket_path.empty() ? defaultSocketPath() : socket_path),
      _channel(
          std::make_unique<LineChannel>(connectUnixSocket(_socket_path)))
{
}

JsonValue
Client::request(const JsonValue &body)
{
    _channel->writeLine(body.dump());
    std::optional<std::string> line = _channel->readLine();
    SNAIL_REQUIRE(line.has_value(),
                  "daemon at " << _socket_path
                               << " closed the connection mid-request");
    return JsonValue::parse(*line);
}

JsonValue
Client::call(const JsonValue &body, int max_retries)
{
    JsonValue response = request(body);
    for (int attempt = 0; attempt < max_retries; ++attempt) {
        const JsonValue *ok = response.find("ok");
        if (ok != nullptr && ok->isBool() && ok->asBool()) {
            return response;
        }
        const JsonValue *retry = response.find("retry_after_ms");
        if (retry == nullptr) {
            return response; // a real error, not backpressure
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(retry->asInt()));
        response = request(body);
    }
    return response;
}

} // namespace snail
