/**
 * @file
 * The socket front of the serve daemon.
 *
 * Server binds the UNIX socket, accepts connections in a poll loop,
 * and hands each connection to a thread that reads request lines and
 * answers with Service::handleLine.  Connection threads only parse
 * and serialize; the compute inside a request runs on the shared
 * Scheduler, so accepting many clients does not multiply transpile
 * threads.
 *
 * Shutdown is cooperative and clean, from any of three triggers —
 * SIGTERM/SIGINT (a signal handler sets a flag the accept loop polls),
 * a client's {"op":"shutdown"}, or requestStop() from the embedding
 * test: stop accepting, wake idle readers (they poll a stop flag in
 * 200 ms slices), finish in-progress requests, join every connection
 * thread, unlink the socket file.  `serve()` returns 0 on a clean
 * stop, making `kill -TERM` + `wait $!` scriptable in CI.
 */

#ifndef SNAILQC_SERVE_SERVER_HPP
#define SNAILQC_SERVE_SERVER_HPP

#include <string>

#include "serve/service.hpp"

namespace snail
{

/** Server configuration (socket plus the Service knobs). */
struct ServerOptions
{
    std::string socket_path; //!< "" = defaultSocketPath()
    ServiceOptions service;
    /** Install SIGTERM/SIGINT handlers (off inside tests). */
    bool handle_signals = true;
    /** Announce lifecycle on this stream; nullptr stays silent. */
    std::ostream *log = nullptr;
    /**
     * Every this-many seconds, append one JSONL metrics-registry
     * snapshot line to `metrics_path` (piggybacks on the accept
     * loop's poll cadence; no extra thread).  0 disables.
     */
    double metrics_interval_s = 0.0;
    std::string metrics_path; //!< "" = metrics dumps disabled
};

/** Accept loop around a Service (see file comment). */
class Server
{
  public:
    explicit Server(const ServerOptions &options);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind, accept, and dispatch until stopped; returns when the
     * socket is unlinked and every connection thread has joined.
     * @throws SnailError when the socket cannot be bound.
     */
    void serve();

    /** Ask a running serve() to stop (thread-safe, idempotent). */
    void requestStop();

    const std::string &socketPath() const { return _socket_path; }
    Service &service() { return _service; }

  private:
    ServerOptions _options;
    std::string _socket_path;
    Service _service;
    volatile bool _stop = false;
};

} // namespace snail

#endif // SNAILQC_SERVE_SERVER_HPP
