/**
 * @file
 * One transpile job as it crosses the serve wire.
 *
 * A JobSpec is the JSON-friendly description of a unit of work: the
 * circuit (a named benchmark + width, or inline OpenQASM 2.0 text),
 * the device (a built-in target name, or an inline device-JSON
 * object), a pipeline spec string, and a seed.  resolve() turns it
 * into the concrete Circuit / Target / PassManager the transpiler
 * consumes, normalizing the pipeline to PassManager::spec() so that
 * "" (the default Fig. 10 flow) and its explicit spelling address the
 * same cache entry.
 *
 * serializeResult() renders a TranspileResult as canonical JSON text:
 * metrics and pass-published properties with exact double round-trip
 * (shortestDouble), the routed circuit's content hash and counts, and
 * the routed OpenQASM when the gate set is exportable.  Canonical
 * means byte-deterministic for a given result — the persistent cache
 * stores these bytes verbatim, which is what makes "second submission
 * is byte-identical to the cold run" a testable contract rather than
 * a hope.
 */

#ifndef SNAILQC_SERVE_JOB_HPP
#define SNAILQC_SERVE_JOB_HPP

#include <string>

#include "common/json.hpp"
#include "explore/transpile_cache.hpp"
#include "target/target.hpp"
#include "transpiler/pass_manager.hpp"

namespace snail
{

/** Wire form of one transpile job (see file comment for the schema). */
struct JobSpec
{
    std::string bench;       //!< benchmark name; "" when qasm is set
    int width = 0;           //!< benchmark width
    std::string qasm;        //!< inline OpenQASM source; "" when bench
    std::string target_name; //!< built-in target; "" when device is set
    JsonValue device;        //!< inline device JSON; Null when target_name
    std::string pipeline;    //!< pass spec; "" = default Fig. 10 flow
    unsigned long long seed = kDefaultTranspileSeed;

    /** Parse the wire form. @throws SnailError on schema violations. */
    static JobSpec fromJson(const JsonValue &json);

    /** Wire form (inverse of fromJson). */
    JsonValue toJson() const;
};

/** A JobSpec resolved into runnable objects. */
struct ResolvedJob
{
    Circuit circuit;
    Target target;
    PassManager pipeline;
    std::string pipeline_spec; //!< normalized (PassManager::spec())
    unsigned long long seed = kDefaultTranspileSeed;

    ResolvedJob(Circuit c, Target t, PassManager p, std::string spec,
                unsigned long long s)
        : circuit(std::move(c)), target(std::move(t)),
          pipeline(std::move(p)), pipeline_spec(std::move(spec)), seed(s)
    {
    }

    /** The persistent-cache address of this job. */
    CacheKey cacheKey() const;
};

/**
 * Materialize circuit, target, and pipeline.
 * @throws SnailError for unknown benchmarks/targets, malformed QASM
 *         or device JSON, or pipeline specs that fail to parse.
 */
ResolvedJob resolveJob(const JobSpec &spec);

/** Canonical JSON text of a result (see file comment). */
std::string serializeResult(const TranspileResult &result);

} // namespace snail

#endif // SNAILQC_SERVE_JOB_HPP
