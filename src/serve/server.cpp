#include "serve/server.hpp"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <thread>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/error.hpp"
#include "common/version.hpp"
#include "obs/metrics.hpp"
#include "serve/protocol.hpp"

namespace snail
{

namespace
{

// Signal handlers can only touch lock-free globals; the accept loop
// polls this between accepts.  One daemon per process is the deal.
volatile std::sig_atomic_t g_signal_stop = 0;

void
onStopSignal(int)
{
    g_signal_stop = 1;
}

} // namespace

Server::Server(const ServerOptions &options)
    : _options(options),
      _socket_path(options.socket_path.empty() ? defaultSocketPath()
                                               : options.socket_path),
      _service(options.service)
{
}

Server::~Server() = default;

void
Server::requestStop()
{
    _stop = true;
}

void
Server::serve()
{
    const int listen_fd = listenUnixSocket(_socket_path);

    struct sigaction previous_term
    {
    };
    struct sigaction previous_int
    {
    };
    if (_options.handle_signals) {
        g_signal_stop = 0;
        struct sigaction action
        {
        };
        action.sa_handler = onStopSignal;
        sigemptyset(&action.sa_mask);
        ::sigaction(SIGTERM, &action, &previous_term);
        ::sigaction(SIGINT, &action, &previous_int);
    }

    if (_options.log != nullptr) {
        *_options.log << "snailqc serve: " << versionString() << "\n"
                      << "snailqc serve: listening on " << _socket_path
                      << "\n"
                      << "snailqc serve: cache at "
                      << _service.cacheStore().directory() << "\n"
                      << std::flush;
    }

    // One thread per connection; each parks in 200 ms poll slices and
    // leaves when its client hangs up or _stop flips.  finished[] lets
    // the accept loop reap dead threads so a long-lived daemon does
    // not accumulate joinable corpses.
    std::vector<std::thread> connections;
    std::vector<std::shared_ptr<std::atomic<bool>>> finished;

    const auto reap = [&]() {
        for (std::size_t i = connections.size(); i-- > 0;) {
            if (finished[i]->load()) {
                connections[i].join();
                connections[i] = std::move(connections.back());
                finished[i] = std::move(finished.back());
                connections.pop_back();
                finished.pop_back();
            }
        }
    };

    // Periodic JSONL metrics dumps ride the poll cadence: each pass
    // through the accept loop checks whether the interval elapsed, so
    // no dedicated dumper thread exists to coordinate at shutdown.
    // Resolution is therefore the 200 ms poll slice — fine for the
    // multi-second intervals this is for.
    using clock = std::chrono::steady_clock;
    const clock::time_point started = clock::now();
    const bool dump_metrics = _options.metrics_interval_s > 0.0 &&
                              !_options.metrics_path.empty();
    clock::time_point next_dump =
        clock::now() +
        std::chrono::duration_cast<clock::duration>(
            std::chrono::duration<double>(_options.metrics_interval_s));
    const auto maybe_dump = [&]() {
        if (!dump_metrics || clock::now() < next_dump) {
            return;
        }
        next_dump += std::chrono::duration_cast<clock::duration>(
            std::chrono::duration<double>(_options.metrics_interval_s));
        std::ofstream out(_options.metrics_path,
                          std::ios::app | std::ios::binary);
        if (out.good()) {
            JsonValue::Object line;
            line["uptime_s"] = JsonValue(
                std::chrono::duration<double>(clock::now() - started)
                    .count());
            line["metrics"] =
                MetricsRegistry::global().snapshot().toJson();
            out << JsonValue(std::move(line)).dump() << "\n";
        }
    };

    while (!_stop) {
        if (_options.handle_signals && g_signal_stop != 0) {
            break;
        }
        if (_service.shutdownRequested()) {
            break;
        }

        pollfd pfd{};
        pfd.fd = listen_fd;
        pfd.events = POLLIN;
        const int ready = ::poll(&pfd, 1, 200);
        if (ready < 0) {
            if (errno == EINTR) {
                continue;
            }
            ::close(listen_fd);
            SNAIL_THROW("poll() on listen socket failed: "
                        << std::strerror(errno));
        }
        if (ready == 0) {
            reap();
            maybe_dump();
            continue;
        }
        maybe_dump();

        const int client_fd = ::accept(listen_fd, nullptr, nullptr);
        if (client_fd < 0) {
            if (errno == EINTR) {
                continue;
            }
            ::close(listen_fd);
            SNAIL_THROW("accept() failed: " << std::strerror(errno));
        }

        auto done = std::make_shared<std::atomic<bool>>(false);
        finished.push_back(done);
        connections.emplace_back(
            [this, client_fd, done]() {
                LineChannel channel(client_fd);
                try {
                    while (std::optional<std::string> line =
                               channel.readLine(&_stop)) {
                        if (line->empty()) {
                            continue;
                        }
                        channel.writeLine(_service.handleLine(*line));
                        if (_service.shutdownRequested()) {
                            break;
                        }
                    }
                } catch (const std::exception &) {
                    // A torn connection kills its thread, not the
                    // daemon; the client sees the closed socket.
                }
                done->store(true);
            });
    }

    // Stop: wake idle readers, join everyone, release the socket.
    _stop = true;
    for (std::thread &thread : connections) {
        thread.join();
    }
    ::close(listen_fd);
    ::unlink(_socket_path.c_str());

    if (_options.handle_signals) {
        ::sigaction(SIGTERM, &previous_term, nullptr);
        ::sigaction(SIGINT, &previous_int, nullptr);
    }

    if (_options.log != nullptr) {
        *_options.log << "snailqc serve: clean shutdown\n" << std::flush;
    }
}

} // namespace snail
