/**
 * @file
 * Wire protocol of the `snailqc serve` daemon.
 *
 * Transport: a SOCK_STREAM AF_UNIX socket carrying newline-delimited
 * JSON — one request object per line from the client, one response
 * object per line from the daemon, on a persistent connection (the
 * accept/dispatch idiom follows the classic UNIX-domain event loops;
 * the Graphite-style scale-out above it shards *jobs*, not bytes).
 * JSON never contains a raw newline (the serializer escapes control
 * characters), so '\n' framing is unambiguous.
 *
 * Requests — `op` selects the operation:
 *
 *   {"op":"ping"}
 *   {"op":"version"}
 *   {"op":"stats"}
 *   {"op":"metrics"}
 *   {"op":"shutdown"}
 *   {"op":"transpile", <job>}
 *   {"op":"batch","jobs":[<job>, ...]}
 *   {"op":"sweep","spec":<sweep-spec object>}
 *   {"op":"sweep_shard","spec":<sweep-spec object>,
 *    "shard":{"index":i,"count":N}}
 *
 * where <job> is
 *
 *   "circuit": {"bench":"qft","width":8} | {"qasm":"OPENQASM 2.0;..."}
 *   "target":  {"name":"corral11-16-sqiswap"} | {"device":<device json>}
 *   "pipeline": "<pass spec string>"           (optional; "" = Fig. 10)
 *   "seed":     "0x<hex>"                      (optional)
 *
 * Responses always carry "ok".  Success:
 *
 *   {"ok":true, "op":"<echo>", ...op-specific fields...}
 *
 * transpile returns {"cached":bool,"result":<result object>}; batch
 * returns {"results":[...],"cache_hits":N,"jobs":N}; sweep_shard
 * evaluates one content-addressed slice of a sweep (explore/shard.hpp)
 * and returns {"header":<shard header>,"records":[<checkpoint
 * line>...], "points":N,"total_points":M,"point_set":"0x<hex>",...} —
 * exactly a `sweep --shard` checkpoint's contents, so a client can
 * write header+records as .jsonl lines and feed `snailqc sweep-merge`
 * (docs/distributed.md); stats returns
 * the cache / scheduler / job counters plus uptime_s and the derived
 * jobs_per_s / cache hit_rate; metrics returns the process-wide
 * registry snapshot as {"prometheus":"<text exposition>",
 * "metrics":<json snapshot>} (docs/observability.md); version
 * returns the build provenance (common/version.hpp).  Failure:
 *
 *   {"ok":false,"error":"<message>"}
 *
 * plus "retry_after_ms" when the admission queue rejected the work —
 * the backpressure contract: the daemon never queues unboundedly,
 * clients retry after the hint.
 *
 * This header also hosts the two tiny transport pieces shared by the
 * server and the client: UNIX-socket helpers and a line channel.
 */

#ifndef SNAILQC_SERVE_PROTOCOL_HPP
#define SNAILQC_SERVE_PROTOCOL_HPP

#include <optional>
#include <string>

#include "common/json.hpp"

namespace snail
{

/** Default socket path: $SNAILQC_SOCKET, else /tmp/snailqc.sock. */
std::string defaultSocketPath();

/**
 * Bind + listen on an AF_UNIX stream socket, replacing a stale file
 * at `path`.  Returns the listening fd.
 * @throws SnailError on any socket failure (path too long, EADDRINUSE
 *         with a live daemon, permissions).
 */
int listenUnixSocket(const std::string &path);

/**
 * Connect to the daemon at `path`.  Returns the connected fd.
 * @throws SnailError when no daemon is listening.
 */
int connectUnixSocket(const std::string &path);

/**
 * Newline-delimited text over one fd.  Owns the fd (closes on
 * destruction).  Reads are buffered; writes are complete-or-throw.
 */
class LineChannel
{
  public:
    explicit LineChannel(int fd) : _fd(fd) {}
    ~LineChannel();

    LineChannel(const LineChannel &) = delete;
    LineChannel &operator=(const LineChannel &) = delete;

    /**
     * Next '\n'-terminated line (terminator stripped), or nullopt on
     * orderly EOF.  `poll_stop` (optional) is checked between 200 ms
     * poll slices so a stopping server can abandon idle connections.
     * @throws SnailError on I/O errors.
     */
    std::optional<std::string>
    readLine(const volatile bool *poll_stop = nullptr);

    /** Write `line` plus '\n'. @throws SnailError on I/O errors. */
    void writeLine(const std::string &line);

    int fd() const { return _fd; }

  private:
    int _fd;
    std::string _buffer;
};

/** {"ok":false,"error":message} (+ retry_after_ms when positive). */
JsonValue errorResponse(const std::string &message, int retry_after_ms = 0);

/** Response skeleton {"ok":true,"op":op}. */
JsonValue::Object okResponse(const std::string &op);

} // namespace snail

#endif // SNAILQC_SERVE_PROTOCOL_HPP
