/**
 * @file
 * Request execution engine of the serve daemon.
 *
 * A Service is the transport-free core: handle(request) -> response,
 * so tests drive it without sockets and the Server (server.hpp) stays
 * a thin accept/dispatch loop.  It owns
 *
 *  - the persistent CacheStore: every transpile answer is addressed
 *    by (circuit, target, pipeline, seed) content hashes, fetched
 *    before computing and written back after, so identical work is
 *    answered byte-identically from disk across daemon restarts;
 *  - admission control: at most `queue_limit` jobs may be in flight
 *    (a 16-job batch admits 16); excess requests are rejected
 *    immediately with retry_after_ms instead of queueing unboundedly.
 *    Backpressure lives *here*, before any scheduler interaction, so
 *    an overloaded daemon stays responsive to stats/ping;
 *  - job counters for the stats response.
 *
 * Compute runs on the process-global Scheduler: batches fan out via
 * parallelFor, whose jobs may themselves fan out parallel stochastic
 * trials — the nested-submission design keeps total live worker
 * threads at the pool size no matter how requests stack up.
 */

#ifndef SNAILQC_SERVE_SERVICE_HPP
#define SNAILQC_SERVE_SERVICE_HPP

#include <atomic>
#include <chrono>
#include <cstddef>
#include <string>

#include "explore/cache_store.hpp"
#include "serve/job.hpp"

namespace snail
{

/** Service tuning, shared with the CLI flag parser. */
struct ServiceOptions
{
    std::string cache_dir;  //!< "" = CacheStore::defaultDirectory()
    unsigned long long cache_max_bytes = CacheStore::kDefaultMaxBytes;
    /** Reject new jobs when this many are already in flight. */
    std::size_t queue_limit = 256;
    /** Concurrency cap per batch fan-out; 0 = whole pool. */
    unsigned batch_threads = 0;
};

/** Transport-free request processor (see file comment). */
class Service
{
  public:
    explicit Service(const ServiceOptions &options);
    ~Service();

    /**
     * Execute one request, returning the response object.  Never
     * throws for request-level problems — malformed JSON, unknown
     * ops, failed jobs all come back as {"ok":false,...} — so one
     * bad client cannot take the daemon down.
     */
    JsonValue handle(const JsonValue &request);

    /** Convenience: parse one request line, handle, serialize. */
    std::string handleLine(const std::string &line);

    /** True once a shutdown request was accepted. */
    bool shutdownRequested() const { return _shutdown.load(); }

    CacheStore &cacheStore() { return _store; }

  private:
    JsonValue handleTranspile(const JsonValue &request);
    JsonValue handleBatch(const JsonValue &request);
    JsonValue handleSweep(const JsonValue &request);
    JsonValue handleSweepShard(const JsonValue &request);
    JsonValue handleStats();
    JsonValue handleMetrics();
    JsonValue handleVersion();

    /**
     * Run one resolved job: serve the payload from the store or
     * transpile and persist it.  Sets `cached` accordingly.
     */
    std::string runJob(const ResolvedJob &job, bool &cached);

    ServiceOptions _options;
    CacheStore _store;
    /** Construction time; stats derives uptime_s / jobs_per_s. */
    std::chrono::steady_clock::time_point _started;
    std::atomic<bool> _shutdown{false};
    std::atomic<std::size_t> _in_flight{0};
    std::atomic<std::size_t> _jobs_completed{0};
    std::atomic<std::size_t> _jobs_cached{0};
    std::atomic<std::size_t> _jobs_rejected{0};
    std::atomic<std::size_t> _requests{0};
};

} // namespace snail

#endif // SNAILQC_SERVE_SERVICE_HPP
