#include "serve/job.hpp"

#include "circuits/registry.hpp"
#include "common/error.hpp"
#include "common/hash.hpp"
#include "ir/qasm.hpp"
#include "ir/qasm_parser.hpp"
#include "transpiler/pass_registry.hpp"
#include "transpiler/pipeline.hpp"

namespace snail
{

JobSpec
JobSpec::fromJson(const JsonValue &json)
{
    JobSpec spec;
    const JsonValue &circuit = json.at("circuit");
    if (const JsonValue *qasm = circuit.find("qasm")) {
        spec.qasm = qasm->asString();
        SNAIL_REQUIRE(!spec.qasm.empty(), "job: empty qasm source");
    } else {
        spec.bench = circuit.at("bench").asString();
        spec.width = circuit.at("width").asInt();
    }

    const JsonValue &target = json.at("target");
    if (const JsonValue *device = target.find("device")) {
        spec.device = *device;
        SNAIL_REQUIRE(spec.device.isObject(),
                      "job: target.device must be an object");
    } else {
        spec.target_name = target.at("name").asString();
    }

    spec.pipeline = json.stringOr("pipeline", "");
    const std::string seed = json.stringOr("seed", "");
    if (!seed.empty()) {
        try {
            spec.seed = std::stoull(seed, nullptr, 16);
        } catch (const std::exception &) {
            SNAIL_THROW("job: seed must be a hex string, got '" << seed
                                                                << "'");
        }
    }
    return spec;
}

JsonValue
JobSpec::toJson() const
{
    JsonValue::Object circuit;
    if (!qasm.empty()) {
        circuit["qasm"] = JsonValue(qasm);
    } else {
        circuit["bench"] = JsonValue(bench);
        circuit["width"] = JsonValue(width);
    }
    JsonValue::Object target;
    if (device.isObject()) {
        target["device"] = device;
    } else {
        target["name"] = JsonValue(target_name);
    }
    JsonValue::Object out;
    out["circuit"] = JsonValue(std::move(circuit));
    out["target"] = JsonValue(std::move(target));
    if (!pipeline.empty()) {
        out["pipeline"] = JsonValue(pipeline);
    }
    out["seed"] = JsonValue(hex64(seed));
    return JsonValue(std::move(out));
}

CacheKey
ResolvedJob::cacheKey() const
{
    CacheKey key;
    key.circuit_hash = circuit.contentHash();
    key.target_hash = target.contentHash();
    key.pipeline = pipeline_spec;
    key.seed = seed;
    return key;
}

ResolvedJob
resolveJob(const JobSpec &spec)
{
    Circuit circuit = spec.qasm.empty()
                          ? makeBenchmark(spec.bench, spec.width)
                          : parseQasm(spec.qasm, "<request>").circuit;
    Target target = spec.device.isObject() ? targetFromJson(spec.device)
                                           : namedTarget(spec.target_name);

    PassManager pipeline;
    if (spec.pipeline.empty()) {
        // The default Fig. 10 flow, scoring the device's own basis.
        TranspileOptions options;
        options.basis = target.defaultBasis();
        pipeline = passManagerFromOptions(options);
    } else {
        pipeline = passManagerFromSpec(spec.pipeline);
    }

    std::string normalized = pipeline.spec();
    return ResolvedJob(std::move(circuit), std::move(target),
                       std::move(pipeline), std::move(normalized),
                       spec.seed);
}

std::string
serializeResult(const TranspileResult &result)
{
    JsonValue::Object metrics;
    metrics["swaps_total"] =
        JsonValue(static_cast<double>(result.metrics.swaps_total));
    metrics["swaps_critical"] = JsonValue(result.metrics.swaps_critical);
    metrics["ops_2q_pre"] =
        JsonValue(static_cast<double>(result.metrics.ops_2q_pre));
    metrics["basis_2q_total"] =
        JsonValue(static_cast<double>(result.metrics.basis_2q_total));
    metrics["basis_2q_critical"] =
        JsonValue(result.metrics.basis_2q_critical);
    metrics["duration_total"] = JsonValue(result.metrics.duration_total);
    metrics["duration_critical"] =
        JsonValue(result.metrics.duration_critical);

    JsonValue::Object properties;
    for (const auto &[key, value] : result.properties.all()) {
        properties[key] = JsonValue(value);
    }

    JsonValue::Object routed;
    routed["content"] = JsonValue(hex64(result.routed.contentHash()));
    routed["qubits"] = JsonValue(result.routed.numQubits());
    routed["gates"] =
        JsonValue(static_cast<double>(result.routed.size()));
    routed["ops_2q"] =
        JsonValue(static_cast<double>(result.routed.countTwoQubit()));

    JsonValue::Object out;
    out["metrics"] = JsonValue(std::move(metrics));
    out["properties"] = JsonValue(std::move(properties));
    out["routed"] = JsonValue(std::move(routed));
    if (isQasmExportable(result.routed)) {
        out["routed_qasm"] = JsonValue(toQasm(result.routed));
    }
    return JsonValue(std::move(out)).dump();
}

} // namespace snail
