#include "serve/service.hpp"

#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "common/scheduler.hpp"
#include "common/thread_pool.hpp"
#include "common/version.hpp"
#include "common/hash.hpp"
#include "explore/checkpoint.hpp"
#include "explore/engine.hpp"
#include "explore/report.hpp"
#include "explore/shard.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/protocol.hpp"

namespace snail
{

namespace
{

/**
 * RAII admission ticket: reserves `jobs` slots against the limit up
 * front, releasing them when the request finishes.  Reservation is a
 * single fetch_add so two racing batches cannot both squeeze past the
 * limit.
 */
class Admission
{
  public:
    Admission(std::atomic<std::size_t> &in_flight, std::size_t jobs,
              std::size_t limit)
        : _in_flight(in_flight), _jobs(jobs)
    {
        const std::size_t before = _in_flight.fetch_add(jobs);
        if (before + jobs > limit) {
            _in_flight.fetch_sub(jobs);
            _jobs = 0;
            _admitted = false;
        }
    }

    ~Admission()
    {
        if (_jobs > 0) {
            _in_flight.fetch_sub(_jobs);
        }
    }

    Admission(const Admission &) = delete;
    Admission &operator=(const Admission &) = delete;

    bool admitted() const { return _admitted; }

  private:
    std::atomic<std::size_t> &_in_flight;
    std::size_t _jobs;
    bool _admitted = true;
};

/** Mirror an admission rejection into the registry. */
void
countRejected(std::size_t jobs)
{
    static Counter &rejected = MetricsRegistry::global().counter(
        "snailqc_serve_jobs_rejected_total");
    rejected.add(jobs);
}

/** Retry hint scaled to how much work is already queued. */
int
retryAfterMs(std::size_t in_flight)
{
    // ~50 ms per queued job, clamped: enough for a small backlog to
    // drain, never parking a client for more than 5 s.
    const std::size_t ms = 50 * (in_flight == 0 ? 1 : in_flight);
    return static_cast<int>(ms > 5000 ? 5000 : ms);
}

} // namespace

Service::Service(const ServiceOptions &options)
    : _options(options),
      _store(options.cache_dir.empty() ? CacheStore::defaultDirectory()
                                       : options.cache_dir,
             options.cache_max_bytes),
      _started(std::chrono::steady_clock::now())
{
    // Touch the pool now so its monitoring gauges exist, and
    // pre-create the serve series so a `metrics` request on an idle
    // daemon already exports them (at zero) instead of omitting them.
    Scheduler::global();
    MetricsRegistry &registry = MetricsRegistry::global();
    registry.counter("snailqc_serve_requests_total");
    registry.counter("snailqc_serve_jobs_completed_total");
    registry.counter("snailqc_serve_jobs_cached_total");
    registry.counter("snailqc_serve_jobs_rejected_total");
    registry.histogram("snailqc_serve_request_us");
    registry.registerGauge("snailqc_serve_in_flight", [this]() {
        return static_cast<double>(_in_flight.load());
    });
}

Service::~Service()
{
    // The gauge callback captures `this`; remove it before the
    // members it reads go away.
    MetricsRegistry::global().unregisterGauge("snailqc_serve_in_flight");
}

std::string
Service::runJob(const ResolvedJob &job, bool &cached)
{
    ScopedSpan span("serve:job", "serve");
    static Counter &completed = MetricsRegistry::global().counter(
        "snailqc_serve_jobs_completed_total");
    static Counter &from_cache = MetricsRegistry::global().counter(
        "snailqc_serve_jobs_cached_total");
    const CacheKey key = job.cacheKey();
    if (std::optional<std::string> stored = _store.fetch(key)) {
        cached = true;
        _jobs_cached.fetch_add(1);
        _jobs_completed.fetch_add(1);
        from_cache.add();
        completed.add();
        return *stored;
    }
    cached = false;
    const TranspileResult result =
        job.pipeline.run(job.circuit, job.target, job.seed);
    std::string payload = serializeResult(result);
    _store.store(key, payload);
    _jobs_completed.fetch_add(1);
    completed.add();
    return payload;
}

JsonValue
Service::handleTranspile(const JsonValue &request)
{
    const Admission ticket(_in_flight, 1, _options.queue_limit);
    if (!ticket.admitted()) {
        _jobs_rejected.fetch_add(1);
        countRejected(1);
        return errorResponse("queue full (limit " +
                                 std::to_string(_options.queue_limit) + ")",
                             retryAfterMs(_in_flight.load()));
    }

    const ResolvedJob job = resolveJob(JobSpec::fromJson(request));
    bool cached = false;
    const std::string payload = runJob(job, cached);

    JsonValue::Object out = okResponse("transpile");
    out["cached"] = JsonValue(cached);
    out["key"] = JsonValue(CacheStore::entryName(job.cacheKey()));
    out["result"] = JsonValue::parse(payload);
    return JsonValue(std::move(out));
}

JsonValue
Service::handleBatch(const JsonValue &request)
{
    const JsonValue &jobs_json = request.at("jobs");
    SNAIL_REQUIRE(jobs_json.isArray() && !jobs_json.asArray().empty(),
                  "batch: `jobs` must be a non-empty array");
    const std::size_t count = jobs_json.asArray().size();

    const Admission ticket(_in_flight, count, _options.queue_limit);
    if (!ticket.admitted()) {
        _jobs_rejected.fetch_add(count);
        countRejected(count);
        return errorResponse("queue full (" + std::to_string(count) +
                                 " jobs, limit " +
                                 std::to_string(_options.queue_limit) + ")",
                             retryAfterMs(_in_flight.load()));
    }

    // Resolve serially (cheap, and keeps malformed-job errors crisp),
    // then fan the transpiles across the shared scheduler.  Each job
    // may itself fan out (stochastic trials) — nested submission keeps
    // the thread count bounded by the pool regardless.
    std::vector<ResolvedJob> resolved;
    resolved.reserve(count);
    for (const JsonValue &job_json : jobs_json.asArray()) {
        resolved.push_back(resolveJob(JobSpec::fromJson(job_json)));
    }

    std::vector<std::string> payloads(count);
    std::vector<char> hits(count, 0);
    parallelFor(count, _options.batch_threads, [&](std::size_t i) {
        bool cached = false;
        payloads[i] = runJob(resolved[i], cached);
        hits[i] = cached ? 1 : 0;
    });

    JsonValue::Array results;
    results.reserve(count);
    std::size_t cache_hits = 0;
    for (std::size_t i = 0; i < count; ++i) {
        JsonValue::Object entry;
        entry["cached"] = JsonValue(hits[i] != 0);
        entry["key"] =
            JsonValue(CacheStore::entryName(resolved[i].cacheKey()));
        entry["result"] = JsonValue::parse(payloads[i]);
        results.push_back(JsonValue(std::move(entry)));
        cache_hits += hits[i] != 0 ? 1 : 0;
    }

    JsonValue::Object out = okResponse("batch");
    out["jobs"] = JsonValue(static_cast<double>(count));
    out["cache_hits"] = JsonValue(static_cast<double>(cache_hits));
    out["results"] = JsonValue(std::move(results));
    return JsonValue(std::move(out));
}

JsonValue
Service::handleSweep(const JsonValue &request)
{
    const SweepSpec spec = sweepSpecFromJson(request.at("spec"));

    // A sweep occupies one admission slot: its fan-out runs on the
    // shared scheduler, so its *thread* footprint is already bounded;
    // the slot just keeps shutdown/stats honest about live work.
    const Admission ticket(_in_flight, 1, _options.queue_limit);
    if (!ticket.admitted()) {
        _jobs_rejected.fetch_add(1);
        countRejected(1);
        return errorResponse("queue full (limit " +
                                 std::to_string(_options.queue_limit) + ")",
                             retryAfterMs(_in_flight.load()));
    }

    EngineOptions engine;
    engine.threads = _options.batch_threads;
    engine.cache_store = &_store;
    const SweepRun run = runSweep(spec, engine);

    std::ostringstream rendered;
    writeSweepJson(rendered, run);

    JsonValue::Object out = okResponse("sweep");
    out["points"] = JsonValue(static_cast<double>(run.points.size()));
    out["computed"] = JsonValue(static_cast<double>(run.stats.computed));
    out["from_store"] =
        JsonValue(static_cast<double>(run.stats.from_store));
    out["run"] = JsonValue::parse(rendered.str());
    return JsonValue(std::move(out));
}

JsonValue
Service::handleSweepShard(const JsonValue &request)
{
    const SweepSpec spec = sweepSpecFromJson(request.at("spec"));
    const JsonValue &shard_json = request.at("shard");
    ShardSlice slice;
    slice.index =
        static_cast<unsigned>(shard_json.at("index").asNumber());
    slice.count =
        static_cast<unsigned>(shard_json.at("count").asNumber());
    SNAIL_REQUIRE(slice.count >= 1 && slice.index < slice.count,
                  "sweep_shard: shard index " << slice.index
                      << " out of range for " << slice.count
                      << " shards");

    // Same one-slot accounting as a whole sweep (handleSweep).
    const Admission ticket(_in_flight, 1, _options.queue_limit);
    if (!ticket.admitted()) {
        _jobs_rejected.fetch_add(1);
        countRejected(1);
        return errorResponse("queue full (limit " +
                                 std::to_string(_options.queue_limit) + ")",
                             retryAfterMs(_in_flight.load()));
    }

    EngineOptions engine;
    engine.threads = _options.batch_threads;
    engine.cache_store = &_store;
    engine.shard_index = slice.index;
    engine.shard_count = slice.count;
    const SweepRun run = runSweep(spec, engine);

    // The response carries exactly what a `sweep --shard` checkpoint
    // would hold — header plus one record per point — so a client can
    // write it to a .jsonl file and hand it to `sweep-merge`.
    ShardHeader header;
    header.shard = slice;
    header.spec_name = spec.name;
    header.point_set_hash = run.point_set_hash;
    header.total_points = run.total_points;

    JsonValue::Array records;
    records.reserve(run.points.size());
    for (std::size_t i = 0; i < run.keys.size(); ++i) {
        records.push_back(
            checkpointLineToJson(run.keys[i], run.metrics[i]));
    }

    JsonValue::Object out = okResponse("sweep_shard");
    out["shard_index"] = JsonValue(static_cast<double>(slice.index));
    out["shard_count"] = JsonValue(static_cast<double>(slice.count));
    out["points"] = JsonValue(static_cast<double>(run.points.size()));
    out["total_points"] =
        JsonValue(static_cast<double>(run.total_points));
    out["point_set"] = JsonValue(hex64(run.point_set_hash));
    out["computed"] = JsonValue(static_cast<double>(run.stats.computed));
    out["from_store"] =
        JsonValue(static_cast<double>(run.stats.from_store));
    out["header"] = shardHeaderToJson(header);
    out["records"] = JsonValue(std::move(records));
    return JsonValue(std::move(out));
}

JsonValue
Service::handleStats()
{
    const CacheStoreStats cache = _store.stats();
    const double uptime_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      _started)
            .count();

    JsonValue::Object cache_out;
    cache_out["directory"] = JsonValue(_store.directory());
    cache_out["hits"] = JsonValue(static_cast<double>(cache.hits));
    cache_out["misses"] = JsonValue(static_cast<double>(cache.misses));
    cache_out["evictions"] =
        JsonValue(static_cast<double>(cache.evictions));
    cache_out["entries"] = JsonValue(static_cast<double>(cache.entries));
    cache_out["bytes"] = JsonValue(static_cast<double>(cache.bytes));
    cache_out["max_bytes"] =
        JsonValue(static_cast<double>(cache.max_bytes));
    // Derived so operators don't do the math; 0 before any lookup.
    const double lookups =
        static_cast<double>(cache.hits + cache.misses);
    cache_out["hit_rate"] = JsonValue(
        lookups > 0.0 ? static_cast<double>(cache.hits) / lookups : 0.0);

    const std::size_t completed = _jobs_completed.load();
    JsonValue::Object jobs;
    jobs["completed"] = JsonValue(static_cast<double>(completed));
    jobs["cached"] = JsonValue(static_cast<double>(_jobs_cached.load()));
    jobs["rejected"] =
        JsonValue(static_cast<double>(_jobs_rejected.load()));
    jobs["in_flight"] =
        JsonValue(static_cast<double>(_in_flight.load()));
    jobs["queue_limit"] =
        JsonValue(static_cast<double>(_options.queue_limit));
    jobs["jobs_per_s"] = JsonValue(
        uptime_s > 0.0 ? static_cast<double>(completed) / uptime_s
                       : 0.0);

    JsonValue::Object scheduler;
    scheduler["workers"] =
        JsonValue(static_cast<double>(Scheduler::global().workerCount()));
    // "pool_size" aliases "workers" under the monitoring-facing name;
    // queue_depth is the unclaimed-index backlog snapshot.
    scheduler["pool_size"] =
        JsonValue(static_cast<double>(Scheduler::global().workerCount()));
    scheduler["queue_depth"] =
        JsonValue(static_cast<double>(Scheduler::global().queueDepth()));

    JsonValue::Object out = okResponse("stats");
    out["requests"] = JsonValue(static_cast<double>(_requests.load()));
    out["uptime_s"] = JsonValue(uptime_s);
    out["cache"] = JsonValue(std::move(cache_out));
    out["jobs"] = JsonValue(std::move(jobs));
    out["scheduler"] = JsonValue(std::move(scheduler));
    return JsonValue(std::move(out));
}

JsonValue
Service::handleMetrics()
{
    const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
    JsonValue::Object out = okResponse("metrics");
    out["prometheus"] = JsonValue(snap.toPrometheusText());
    out["metrics"] = snap.toJson();
    return JsonValue(std::move(out));
}

JsonValue
Service::handleVersion()
{
    const VersionInfo info = versionInfo();
    JsonValue::Object out = okResponse("version");
    out["git_sha"] = JsonValue(info.git_sha);
    out["build_type"] = JsonValue(info.build_type);
    out["protocol"] = JsonValue(info.protocol);
    out["version"] = JsonValue(versionString());
    return JsonValue(std::move(out));
}

JsonValue
Service::handle(const JsonValue &request)
{
    _requests.fetch_add(1);
    static Counter &requests = MetricsRegistry::global().counter(
        "snailqc_serve_requests_total");
    static Histogram &request_us = MetricsRegistry::global().histogram(
        "snailqc_serve_request_us");
    requests.add();
    // The whole request lifecycle — admission, fetch-or-compute, and
    // response assembly — runs inside this span/latency pair; the
    // nested serve:job and cache:* spans break it down.
    ScopedSpan span("serve:request", "serve");
    ScopedLatency latency(request_us);
    try {
        const std::string op = request.at("op").asString();
        if (op == "ping") {
            return JsonValue(okResponse("ping"));
        }
        if (op == "version") {
            return handleVersion();
        }
        if (op == "stats") {
            return handleStats();
        }
        if (op == "metrics") {
            return handleMetrics();
        }
        if (op == "shutdown") {
            _shutdown.store(true);
            return JsonValue(okResponse("shutdown"));
        }
        if (op == "transpile") {
            return handleTranspile(request);
        }
        if (op == "batch") {
            return handleBatch(request);
        }
        if (op == "sweep") {
            return handleSweep(request);
        }
        if (op == "sweep_shard") {
            return handleSweepShard(request);
        }
        return errorResponse("unknown op '" + op + "'");
    } catch (const std::exception &error) {
        return errorResponse(error.what());
    }
}

std::string
Service::handleLine(const std::string &line)
{
    JsonValue response;
    try {
        response = handle(JsonValue::parse(line));
    } catch (const std::exception &error) {
        response = errorResponse(std::string("bad request: ") +
                                 error.what());
    }
    return response.dump();
}

} // namespace snail
