/**
 * @file
 * Client side of the serve protocol.
 *
 * A Client is a persistent connection speaking one-request/
 * one-response lines.  request() is the raw exchange; call() layers
 * the backpressure contract on top: when the daemon answers
 * {"ok":false,"retry_after_ms":N} it sleeps N ms and resends, up to
 * a retry budget, so shell scripts and CI get queue-full handling
 * for free.
 */

#ifndef SNAILQC_SERVE_CLIENT_HPP
#define SNAILQC_SERVE_CLIENT_HPP

#include <memory>
#include <string>

#include "common/json.hpp"
#include "serve/protocol.hpp"

namespace snail
{

/** One connection to a serve daemon (see file comment). */
class Client
{
  public:
    /**
     * Connect to the daemon at `socket_path` ("" = defaultSocketPath).
     * @throws SnailError when no daemon is listening.
     */
    explicit Client(const std::string &socket_path = "");

    /**
     * Send one request, return the daemon's response verbatim.
     * @throws SnailError when the daemon hangs up mid-exchange.
     */
    JsonValue request(const JsonValue &body);

    /**
     * request(), honoring retry_after_ms up to `max_retries` resends.
     * Returns the final response (which may still be a rejection if
     * the daemon stayed saturated past the budget).
     */
    JsonValue call(const JsonValue &body, int max_retries = 10);

    const std::string &socketPath() const { return _socket_path; }

  private:
    std::string _socket_path;
    std::unique_ptr<LineChannel> _channel;
};

} // namespace snail

#endif // SNAILQC_SERVE_CLIENT_HPP
