/**
 * @file
 * Greedy shortest-path router: for each blocked 2Q gate, walk one operand
 * along a shortest path until the pair is adjacent.  Simple, deterministic
 * baseline for the smarter routers.
 */

#include "common/error.hpp"
#include "transpiler/routing.hpp"

namespace snail
{

RoutingResult
BasicRouter::route(const Circuit &circuit, const CouplingGraph &graph,
                   const Layout &initial, Rng &rng) const
{
    (void)rng; // deterministic pass
    SNAIL_REQUIRE(initial.isComplete(), "routing needs a complete layout");
    Circuit out(graph.numQubits(), circuit.name() + "-routed");
    out.reserve(circuit.size());
    Layout layout = initial;
    std::size_t swaps = 0;

    for (const auto &op : circuit.instructions()) {
        if (op.numQubits() == 1) {
            out.append(op.gate(), {layout.physical(op.q0())});
            continue;
        }
        int p0 = layout.physical(op.q0());
        int p1 = layout.physical(op.q1());
        if (!graph.hasEdge(p0, p1)) {
            const std::vector<int> path = graph.shortestPath(p0, p1);
            // Walk the first operand down the path until adjacent.
            for (std::size_t step = 0; step + 2 < path.size(); ++step) {
                out.swap(path[step], path[step + 1]);
                layout.swapPhysical(path[step], path[step + 1]);
                ++swaps;
            }
            p0 = layout.physical(op.q0());
            p1 = layout.physical(op.q1());
            SNAIL_ASSERT(graph.hasEdge(p0, p1),
                         "path walk failed to make the pair adjacent");
        }
        out.append(op.gate(), {p0, p1});
    }

    RoutingResult result(std::move(out), initial, layout);
    result.swaps_added = swaps;
    return result;
}

} // namespace snail
