/**
 * @file
 * PassRegistry: name -> factory lookup for transpiler passes, and the
 * pipeline-spec parser that turns a string into a PassManager.
 *
 * Spec grammar (whitespace around entries is ignored):
 *
 *   spec  := entry ("," entry)*
 *   entry := name | name "=" arg
 *
 * Examples:
 *
 *   "dense,stochastic-route,score"
 *   "vf2,sabre-route,elide,basis=sqiswap"
 *   "optimize=1,sabre-layout,lookahead-route"
 *
 * Registered built-ins (see passes.hpp):
 *
 *   layout:   trivial | dense | sabre-layout[=iters] | vf2 | vf2-strict
 *   routing:  basic-route | stochastic-route[=trials] | sabre-route |
 *             lookahead-route | noise-route[=weight]
 *   rewrite:  optimize[=level] | elide
 *   scoring:  basis=<cx|sqiswap|iswap|syc|auto> | score | score-fidelity
 *
 * A pipeline that never runs "score" is scored implicitly at the end by
 * the PassManager, so terse specs like "dense,sabre-route" still yield
 * full metrics.  User passes can be added with registerPass(); lookup
 * is case-sensitive and thread-safe.
 */

#ifndef SNAILQC_TRANSPILER_PASS_REGISTRY_HPP
#define SNAILQC_TRANSPILER_PASS_REGISTRY_HPP

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "transpiler/pass_manager.hpp"

namespace snail
{

/** Builds a pass from the (possibly empty) spec argument. */
using PassFactory =
    std::function<std::shared_ptr<const Pass>(const std::string &arg)>;

/** One registry row: factory plus the help shown by --list-passes. */
struct PassRegistration
{
    std::string name;     //!< spec name, e.g. "stochastic-route"
    std::string summary;  //!< one-line description
    std::string arg_help; //!< argument description, "" when none
    PassFactory factory;
};

/**
 * Register a pass (replacing any previous registration of the same
 * name).  @throws SnailError for an empty name or missing factory.
 */
void registerPass(PassRegistration registration);

/** All registrations (built-ins included), sorted by name. */
std::vector<PassRegistration> registeredPasses();

/**
 * Build one pass from a spec entry ("name" or "name=arg").
 * @throws SnailError for unknown names or malformed arguments.
 */
std::shared_ptr<const Pass> makeRegisteredPass(const std::string &entry);

/** Parse a full pipeline spec into a PassManager. */
PassManager passManagerFromSpec(const std::string &spec);

} // namespace snail

#endif // SNAILQC_TRANSPILER_PASS_REGISTRY_HPP
