/**
 * @file
 * Routing passes: make every 2Q gate nearest-neighbor by inserting SWAPs.
 *
 * Three routers are provided:
 *  - BasicRouter: greedy shortest-path swapping, no reordering (baseline).
 *  - StochasticSwapRouter: the paper's router (Qiskit StochasticSwap) —
 *    randomized trials choose SWAP sequences that make the current front
 *    layer executable, keeping the best trial.
 *  - SabreRouter: lookahead heuristic router (ablation comparison).
 *
 * All routers emit a physical-qubit circuit whose 2Q gates act only on
 * coupled pairs, and report the final layout so the computation can be
 * verified (sim/equivalence.hpp).
 */

#ifndef SNAILQC_TRANSPILER_ROUTING_HPP
#define SNAILQC_TRANSPILER_ROUTING_HPP

#include <functional>
#include <memory>

#include "common/rng.hpp"
#include "ir/circuit.hpp"
#include "topology/coupling_graph.hpp"
#include "transpiler/layout.hpp"

namespace snail
{

/**
 * Zero-copy view of a Layout with one hypothetical SWAP applied.
 *
 * Routers score every candidate SWAP of every routing step; copying the
 * whole Layout per candidate (an O(n) allocate-and-copy) used to
 * dominate the hot loop.  A SwappedView answers physical() as if
 * swapPhysical(a, b) had been applied to the base layout, without
 * touching it: a virtual qubit mapped to `a` reads as mapped to `b`
 * and vice versa.  The view borrows the base layout — keep it on the
 * stack for the duration of one score evaluation only.
 *
 * The shipped routers now score by incremental per-gate terms
 * (transpiler/delta_scorer.hpp) rather than re-summing through a view;
 * SwappedView remains the reference semantics that the randomized
 * cross-check tests and the BM_RouterStepResum bench row compare
 * against.
 */
class SwappedView
{
  public:
    SwappedView(const Layout &base, int a, int b)
        : _base(base), _a(a), _b(b)
    {
    }

    /** Physical home of virtual qubit v under the hypothetical swap. */
    int
    physical(int v) const
    {
        const int p = _base.physical(v);
        if (p == _a) {
            return _b;
        }
        if (p == _b) {
            return _a;
        }
        return p;
    }

  private:
    const Layout &_base;
    int _a;
    int _b;
};

/** Output of a routing pass. */
struct RoutingResult
{
    Circuit circuit;        //!< physical circuit (SWAPs inserted)
    Layout initial_layout;  //!< virtual -> physical before the circuit
    Layout final_layout;    //!< virtual -> physical after the circuit
    std::size_t swaps_added = 0;

    RoutingResult(Circuit c, Layout init, Layout fin)
        : circuit(std::move(c)),
          initial_layout(std::move(init)),
          final_layout(std::move(fin))
    {
    }
};

/** Interface shared by the routing passes. */
class Router
{
  public:
    virtual ~Router() = default;

    /** Route `circuit` onto `graph` starting from `initial`. */
    virtual RoutingResult route(const Circuit &circuit,
                                const CouplingGraph &graph,
                                const Layout &initial, Rng &rng) const = 0;

    /** Human-readable pass name. */
    virtual const char *name() const = 0;
};

/** Greedy shortest-path router (no gate reordering). */
class BasicRouter : public Router
{
  public:
    RoutingResult route(const Circuit &circuit, const CouplingGraph &graph,
                        const Layout &initial, Rng &rng) const override;
    const char *name() const override { return "basic"; }
};

/** Qiskit-StochasticSwap-style randomized layer router. */
class StochasticSwapRouter : public Router
{
  public:
    /**
     * @param trials randomized attempts per blocked layer.
     * @param threads workers fanning the trials of one blocked layer
     *        across the shared pool (common/thread_pool.hpp); 1 runs
     *        them inline, 0 uses all hardware threads.  Trial
     *        randomness is counter-derived (Rng::stream), so routed
     *        output is bit-identical at any thread count.
     */
    explicit StochasticSwapRouter(int trials = 20, unsigned threads = 1)
        : _trials(trials), _threads(threads)
    {
    }

    RoutingResult route(const Circuit &circuit, const CouplingGraph &graph,
                        const Layout &initial, Rng &rng) const override;
    const char *name() const override { return "stochastic"; }

  private:
    int _trials;
    unsigned _threads;
};

/** SABRE-style lookahead router. */
class SabreRouter : public Router
{
  public:
    /**
     * Additive cost charged to a candidate SWAP on edge (a, b), on top
     * of the distance heuristic.  The fidelity-aware "noise-route"
     * pass supplies one derived from the target's EdgeProperties; an
     * empty function charges nothing (plain SABRE).
     */
    using EdgePenaltyFn = std::function<double(int a, int b)>;

    /** Default search tuning, shared with the noise-aware variant. */
    static constexpr int kDefaultExtendedSize = 20;
    static constexpr double kDefaultExtendedWeight = 0.5;
    static constexpr double kDefaultDecayFactor = 0.001;

    /**
     * @param extended_size lookahead window size.
     * @param extended_weight weight of the lookahead term.
     * @param decay_factor per-swap decay discouraging qubit ping-pong.
     * @param swap_penalty optional per-edge SWAP cost (see EdgePenaltyFn).
     */
    SabreRouter(int extended_size = kDefaultExtendedSize,
                double extended_weight = kDefaultExtendedWeight,
                double decay_factor = kDefaultDecayFactor,
                EdgePenaltyFn swap_penalty = {})
        : _extendedSize(extended_size),
          _extendedWeight(extended_weight),
          _decayFactor(decay_factor),
          _swapPenalty(std::move(swap_penalty))
    {
    }

    /** Default tuning with a per-edge SWAP penalty ("noise-route"). */
    explicit SabreRouter(EdgePenaltyFn swap_penalty)
        : SabreRouter(kDefaultExtendedSize, kDefaultExtendedWeight,
                      kDefaultDecayFactor, std::move(swap_penalty))
    {
    }

    RoutingResult route(const Circuit &circuit, const CouplingGraph &graph,
                        const Layout &initial, Rng &rng) const override;
    const char *name() const override { return "sabre"; }

  private:
    int _extendedSize;
    double _extendedWeight;
    double _decayFactor;
    EdgePenaltyFn _swapPenalty;
};

/**
 * Qiskit-LookaheadSwap-style router: breadth-limited tree search over
 * SWAP sequences.  Each blocked step expands candidate SWAPs to a fixed
 * depth, keeping the best `beam_width` partial sequences by a cost that
 * sums mapped distances over the front gates plus a discounted window
 * of upcoming 2Q gates, then commits the first SWAP of the winner.
 */
class LookaheadRouter : public Router
{
  public:
    /**
     * @param search_depth SWAP-sequence lookahead depth.
     * @param beam_width surviving candidates per expansion level.
     * @param window upcoming 2Q gates included in the cost.
     */
    LookaheadRouter(int search_depth = 3, int beam_width = 4,
                    int window = 16)
        : _searchDepth(search_depth),
          _beamWidth(beam_width),
          _window(window)
    {
    }

    RoutingResult route(const Circuit &circuit, const CouplingGraph &graph,
                        const Layout &initial, Rng &rng) const override;
    const char *name() const override { return "lookahead"; }

  private:
    int _searchDepth;
    int _beamWidth;
    int _window;
};

/**
 * Remove trailing SWAPs from a routed circuit.
 *
 * A SWAP whose qubits are never touched again by any non-elided
 * instruction only permutes the output wiring; deleting it and folding
 * the permutation into the final layout leaves the computation
 * unchanged (the classical readout map absorbs it).  Returns the
 * number of SWAPs elided; `result.final_layout` and
 * `result.swaps_added` are updated in place.
 */
std::size_t elideTrailingSwaps(RoutingResult &result);

} // namespace snail

#endif // SNAILQC_TRANSPILER_ROUTING_HPP
