/**
 * @file
 * Trailing-SWAP elision (see routing.hpp).
 *
 * Scans the routed circuit backward: while a qubit has not yet been
 * touched by a kept instruction, SWAPs on it are pure output
 * permutations and can be folded into the final layout.
 */

#include <vector>

#include "transpiler/passes.hpp"
#include "transpiler/routing.hpp"

namespace snail
{

std::size_t
elideTrailingSwaps(RoutingResult &result)
{
    const Circuit &circuit = result.circuit;
    const int n = circuit.numQubits();

    // clean[p]: no kept instruction after the scan point touches p.
    std::vector<bool> clean(static_cast<std::size_t>(n), true);
    std::vector<bool> elide(circuit.size(), false);
    std::size_t elided = 0;

    for (std::size_t i = circuit.size(); i-- > 0;) {
        const Instruction &op = circuit.instructions()[i];
        if (op.isSwap() &&
            clean[static_cast<std::size_t>(op.q0())] &&
            clean[static_cast<std::size_t>(op.q1())]) {
            elide[i] = true;
            ++elided;
            continue;
        }
        for (Qubit q : op.qubits()) {
            clean[static_cast<std::size_t>(q)] = false;
        }
    }
    if (elided == 0) {
        return 0;
    }

    // Fold the removed permutation into the final layout.  Un-applying
    // the trailing SWAPs from last to first restores where the data
    // actually sits without them.
    for (std::size_t i = circuit.size(); i-- > 0;) {
        if (elide[i]) {
            const Instruction &op = circuit.instructions()[i];
            result.final_layout.swapPhysical(op.q0(), op.q1());
        }
    }

    Circuit kept(circuit.numQubits(), circuit.name());
    for (std::size_t i = 0; i < circuit.size(); ++i) {
        if (!elide[i]) {
            kept.append(circuit.instructions()[i]);
        }
    }
    result.circuit = std::move(kept);
    result.swaps_added -= elided;
    return elided;
}

void
ElideSwapsPass::run(PassContext &ctx) const
{
    if (!ctx.final_layout || !ctx.initial_layout) {
        return; // nothing routed yet: no trailing SWAPs to fold
    }
    RoutingResult routed(std::move(ctx.circuit), *ctx.initial_layout,
                         std::move(*ctx.final_layout));
    const std::size_t elided = elideTrailingSwaps(routed);
    ctx.circuit = std::move(routed.circuit);
    ctx.final_layout = std::move(routed.final_layout);
    ctx.properties.increment("swaps_elided", static_cast<double>(elided));
    ctx.properties.increment("swaps_added", -static_cast<double>(elided));
}

} // namespace snail
