/**
 * @file
 * Virtual-to-physical qubit layouts.
 *
 * A Layout is an injective map from a circuit's virtual qubits onto a
 * device's physical qubits.  Routing updates the map as SWAPs move
 * virtual qubits around; the pre- and post-routing layouts together
 * certify what the routed circuit computes (see sim/equivalence.hpp).
 */

#ifndef SNAILQC_TRANSPILER_LAYOUT_HPP
#define SNAILQC_TRANSPILER_LAYOUT_HPP

#include <vector>

#include "common/rng.hpp"
#include "topology/coupling_graph.hpp"

namespace snail
{

class Circuit;

/** Injective virtual -> physical qubit assignment. */
class Layout
{
  public:
    /** Unassigned layout for num_virtual qubits on num_physical qubits. */
    Layout(int num_virtual, int num_physical);

    /** The identity embedding v -> v. */
    static Layout identity(int num_virtual, int num_physical);

    int numVirtual() const { return _numVirtual; }
    int numPhysical() const { return _numPhysical; }

    /** Assign virtual qubit v to physical qubit p. */
    void assign(int v, int p);

    /** Physical qubit hosting v (throws when unassigned). */
    int physical(int v) const;

    /** Virtual qubit at physical p, or -1 when p is a spectator. */
    int virtualAt(int p) const;

    /** True when every virtual qubit has a physical home. */
    bool isComplete() const;

    /** Exchange the virtual occupants of two physical qubits (a SWAP). */
    void swapPhysical(int p1, int p2);

    /** The virtual -> physical vector (all assigned). */
    std::vector<int> v2p() const;

  private:
    int _numVirtual;
    int _numPhysical;
    std::vector<int> _v2p;
    std::vector<int> _p2v;
};

/** The identity layout used as a baseline (Qiskit TrivialLayout). */
Layout trivialLayout(const Circuit &circuit, const CouplingGraph &graph);

/**
 * Qiskit-style DenseLayout: pick the `n`-qubit subset of the device with
 * the most internal couplings (grown breadth-first from each seed qubit)
 * and map the most interaction-heavy virtual qubits onto the
 * best-connected physical qubits of that subset.
 */
Layout denseLayout(const Circuit &circuit, const CouplingGraph &graph);

/**
 * SABRE-style layout refinement: alternate forward and reverse routing
 * passes from a dense seed placement; the surviving layout serves both
 * ends of the circuit and usually needs fewer SWAPs than DenseLayout
 * alone.
 */
Layout sabreLayout(const Circuit &circuit, const CouplingGraph &graph,
                   int iterations, Rng &rng);

} // namespace snail

#endif // SNAILQC_TRANSPILER_LAYOUT_HPP
