#include "transpiler/pass_manager.hpp"

#include <chrono>
#include <optional>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "transpiler/passes.hpp"

namespace snail
{

namespace
{

/** Execute one pass on the context, appending its instrumentation. */
void
runInstrumented(const Pass &pass, PassContext &ctx,
                std::vector<PassStat> &stats)
{
    PassStat stat;
    stat.pass = pass.spec();
    const auto swaps_before =
        static_cast<long long>(ctx.circuit.countKind(GateKind::Swap));
    const auto ops2q_before =
        static_cast<long long>(ctx.circuit.countTwoQubit());
    const auto t0 = std::chrono::steady_clock::now();

    {
        ScopedSpan span(stat.pass, "pass");
        pass.run(ctx);
    }

    const auto t1 = std::chrono::steady_clock::now();
    stat.wall_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();

    // The same measurement feeds the process-wide registry, so pass
    // timing is visible without plumbing TranspileResult around.
    static Counter &runs =
        MetricsRegistry::global().counter("snailqc_pass_runs_total");
    static Histogram &wall =
        MetricsRegistry::global().histogram("snailqc_pass_wall_us");
    runs.add();
    wall.observe(stat.wall_ms * 1000.0);
    stat.swap_delta =
        static_cast<long long>(ctx.circuit.countKind(GateKind::Swap)) -
        swaps_before;
    stat.ops2q_delta =
        static_cast<long long>(ctx.circuit.countTwoQubit()) - ops2q_before;
    stats.push_back(std::move(stat));
}

/** Translate the scored PropertySet into the legacy metrics struct. */
TranspileMetrics
metricsFromProperties(const PropertySet &props)
{
    TranspileMetrics m;
    m.swaps_total = static_cast<std::size_t>(props.get("swaps_total"));
    m.swaps_critical = props.get("swaps_critical");
    m.ops_2q_pre = static_cast<std::size_t>(props.get("ops_2q_pre"));
    m.basis_2q_total = static_cast<std::size_t>(props.get("basis_2q_total"));
    m.basis_2q_critical = props.get("basis_2q_critical");
    m.duration_total = props.get("duration_total");
    m.duration_critical = props.get("duration_critical");
    return m;
}

} // namespace

PassManager &
PassManager::append(std::shared_ptr<const Pass> pass)
{
    SNAIL_REQUIRE(pass != nullptr, "PassManager::append: null pass");
    _passes.push_back(std::move(pass));
    return *this;
}

std::string
PassManager::spec() const
{
    std::string out;
    for (const auto &pass : _passes) {
        if (!out.empty()) {
            out += ',';
        }
        out += pass->spec();
    }
    return out;
}

TranspileResult
PassManager::runContext(PassContext &ctx) const
{
    std::vector<PassStat> stats;
    stats.reserve(_passes.size() + 1);
    for (const auto &pass : _passes) {
        runInstrumented(*pass, ctx, stats);
    }
    if (!ctx.properties.contains("scored")) {
        runInstrumented(ScoreMetricsPass(), ctx, stats);
    }

    Layout initial = ctx.initial_layout
                         ? std::move(*ctx.initial_layout)
                         : trivialLayout(ctx.circuit, ctx.graph);
    Layout final_layout =
        ctx.final_layout ? std::move(*ctx.final_layout) : initial;
    TranspileResult result(std::move(ctx.circuit), std::move(initial),
                           std::move(final_layout));
    result.metrics = metricsFromProperties(ctx.properties);
    result.pass_stats = std::move(stats);
    result.properties = std::move(ctx.properties);
    return result;
}

TranspileResult
PassManager::run(const Circuit &circuit, const Target &target,
                 unsigned long long seed) const
{
    PassContext ctx(circuit, target, seed);
    return runContext(ctx);
}

TranspileResult
PassManager::run(const Circuit &circuit, const CouplingGraph &graph,
                 unsigned long long seed, const BasisSpec &basis) const
{
    PassContext ctx(circuit, graph, basis, seed);
    return runContext(ctx);
}

std::vector<TranspileResult>
transpileBatch(const std::vector<TranspileJob> &jobs, const PassManager &pm,
               unsigned num_threads)
{
    std::vector<std::optional<TranspileResult>> slots(jobs.size());
    parallelFor(jobs.size(), num_threads, [&](std::size_t i) {
        slots[i] = pm.run(jobs[i].circuit, jobs[i].graph, jobs[i].seed,
                          jobs[i].basis);
    });

    std::vector<TranspileResult> results;
    results.reserve(jobs.size());
    for (auto &slot : slots) {
        results.push_back(std::move(*slot));
    }
    return results;
}

} // namespace snail
