#include "transpiler/pipeline.hpp"

#include <memory>

#include "common/error.hpp"
#include "transpiler/optimize.hpp"
#include "transpiler/vf2_layout.hpp"

namespace snail
{

TranspileResult
transpile(const Circuit &input, const CouplingGraph &graph,
          const TranspileOptions &options)
{
    Circuit circuit = input;
    if (options.optimization_level > 0) {
        optimizeCircuit(circuit, options.optimization_level);
    }

    // Placement.
    Layout initial = trivialLayout(circuit, graph);
    if (options.layout == LayoutKind::Dense) {
        initial = denseLayout(circuit, graph);
    } else if (options.layout == LayoutKind::Sabre) {
        Rng layout_rng(options.seed ^ 0xAB5EULL);
        initial = sabreLayout(circuit, graph, 2, layout_rng);
    } else if (options.layout == LayoutKind::Vf2OrDense) {
        if (auto perfect = vf2Layout(circuit, graph)) {
            initial = std::move(*perfect);
        } else {
            initial = denseLayout(circuit, graph);
        }
    }

    // Routing.
    std::unique_ptr<Router> router;
    switch (options.router) {
      case RouterKind::Basic:
        router = std::make_unique<BasicRouter>();
        break;
      case RouterKind::Stochastic:
        router =
            std::make_unique<StochasticSwapRouter>(options.stochastic_trials);
        break;
      case RouterKind::Sabre:
        router = std::make_unique<SabreRouter>();
        break;
      case RouterKind::Lookahead:
        router = std::make_unique<LookaheadRouter>();
        break;
    }
    Rng rng(options.seed);
    RoutingResult routed = router->route(circuit, graph, initial, rng);
    if (options.elide_trailing_swaps) {
        elideTrailingSwaps(routed);
    }

    // Metrics, mirroring Fig. 10's collection points.
    TranspileResult result(std::move(routed.circuit),
                           std::move(routed.initial_layout),
                           std::move(routed.final_layout));
    result.metrics.swaps_total = result.routed.countKind(GateKind::Swap);
    result.metrics.swaps_critical = result.routed.weightedCriticalPath(
        [](const Instruction &op) { return op.isSwap() ? 1.0 : 0.0; });
    result.metrics.ops_2q_pre = result.routed.countTwoQubit();

    const TranslationStats stats =
        translationStats(result.routed, options.basis);
    result.metrics.basis_2q_total = stats.total_2q;
    result.metrics.basis_2q_critical = stats.critical_2q;
    result.metrics.duration_total = stats.total_duration;
    result.metrics.duration_critical = stats.critical_duration;
    return result;
}

} // namespace snail
