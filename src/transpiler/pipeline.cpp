#include "transpiler/pipeline.hpp"

#include "common/error.hpp"
#include "transpiler/passes.hpp"

namespace snail
{

namespace
{

/** The options pipeline minus basis selection and scoring. */
PassManager
corePassManager(const TranspileOptions &options)
{
    PassManager pm;
    if (options.optimization_level > 0) {
        pm.emplace<OptimizePass>(options.optimization_level);
    }

    switch (options.layout) {
      case LayoutKind::Trivial:
        pm.emplace<TrivialLayoutPass>();
        break;
      case LayoutKind::Dense:
        pm.emplace<DenseLayoutPass>();
        break;
      case LayoutKind::Sabre:
        pm.emplace<SabreLayoutPass>();
        break;
      case LayoutKind::Vf2OrDense:
        pm.emplace<Vf2LayoutPass>();
        break;
    }

    switch (options.router) {
      case RouterKind::Basic:
        pm.emplace<BasicRoutePass>();
        break;
      case RouterKind::Stochastic:
        pm.emplace<StochasticRoutePass>(options.stochastic_trials);
        break;
      case RouterKind::Sabre:
        pm.emplace<SabreRoutePass>();
        break;
      case RouterKind::Lookahead:
        pm.emplace<LookaheadRoutePass>();
        break;
    }

    if (options.elide_trailing_swaps) {
        pm.emplace<ElideSwapsPass>();
    }
    return pm;
}

} // namespace

PassManager
passManagerFromOptions(const TranspileOptions &options)
{
    PassManager pm = corePassManager(options);
    pm.emplace<SetBasisPass>(options.basis);
    pm.emplace<ScoreMetricsPass>();
    return pm;
}

TranspileResult
transpile(const Circuit &circuit, const CouplingGraph &graph,
          const TranspileOptions &options)
{
    return passManagerFromOptions(options).run(circuit, graph, options.seed,
                                               options.basis);
}

std::vector<TranspileResult>
transpileBatch(const std::vector<TranspileJob> &jobs,
               const TranspileOptions &options, unsigned num_threads)
{
    // The core pipeline carries no SetBasisPass, so the implicit final
    // scoring sees each job's own basis, as the header promises.
    return transpileBatch(jobs, corePassManager(options), num_threads);
}

} // namespace snail
