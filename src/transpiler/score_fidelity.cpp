/**
 * @file
 * ScoreFidelityPass ("score-fidelity"): predicted circuit fidelity
 * from the target's calibration via the paper's Eq. 12/13 model.
 *
 * Each 2Q operation decomposes into k native pulses of the basis
 * installed on its edge (the analytic Weyl-class counts of
 * weyl/basis_counts.hpp); with per-pulse fidelity Fb from the edge's
 * EdgeProperties, it contributes Fb^k — Eq. 13's Fd * Fb^k with the
 * decomposition taken as exact (Fd = 1).  1Q gates contribute the host
 * qubit's fidelity_1q.  Qubits with a finite T2 additionally decay by
 * exp(-idle / T2) over the schedule makespan, where the ASAP schedule
 * weights each operation by its per-edge pulse duration (1Q gates are
 * free, following the paper's normalization).
 */

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "transpiler/basis_translation.hpp"
#include "transpiler/passes.hpp"

namespace snail
{

namespace
{

/** Floor applied before taking logs of calibration fidelities. */
constexpr double kFidelityFloor = 1e-12;

double
safeLog(double fidelity)
{
    return std::log(std::max(fidelity, kFidelityFloor));
}

} // namespace

void
ScoreFidelityPass::run(PassContext &ctx) const
{
    const Target &target = ctx.target();
    const CouplingGraph &graph = ctx.graph;
    const Circuit &circuit = ctx.circuit;
    const std::size_t n = static_cast<std::size_t>(graph.numQubits());

    double log_2q = 0.0;
    double log_1q = 0.0;
    std::vector<double> ready(n, 0.0); //!< per-qubit ASAP frontier
    std::vector<double> busy(n, 0.0);  //!< per-qubit occupied time
    std::vector<bool> used(n, false);
    std::unordered_map<std::string, int> count_cache;

    for (const auto &op : circuit.instructions()) {
        if (op.numQubits() == 1) {
            const int q = op.q0();
            SNAIL_REQUIRE(q >= 0 && q < graph.numQubits(),
                          name() << ": qubit " << q
                                 << " outside the target");
            log_1q += safeLog(target.qubit(q).fidelity_1q);
            used[static_cast<std::size_t>(q)] = true;
            continue;
        }
        const int a = op.q0();
        const int b = op.q1();
        SNAIL_REQUIRE(graph.hasEdge(a, b),
                      name() << ": 2Q op on uncoupled pair (" << a << ", "
                             << b << ") of " << target.name()
                             << "; run a routing pass first");
        const EdgeProperties &props = target.edge(a, b);

        const int count =
            cachedBasisCount(count_cache, props.basis, op.gate());

        log_2q += static_cast<double>(count) * safeLog(props.fidelity_2q);
        const double duration =
            static_cast<double>(count) * props.pulseDuration();
        const std::size_t ia = static_cast<std::size_t>(a);
        const std::size_t ib = static_cast<std::size_t>(b);
        const double start = std::max(ready[ia], ready[ib]);
        ready[ia] = ready[ib] = start + duration;
        busy[ia] += duration;
        busy[ib] += duration;
        used[ia] = used[ib] = true;
    }

    const double makespan =
        ready.empty() ? 0.0 : *std::max_element(ready.begin(), ready.end());

    double log_idle = 0.0;
    for (std::size_t q = 0; q < n; ++q) {
        if (!used[q]) {
            continue; // spectator qubits carry no state to decohere
        }
        const double t2 = target.qubit(static_cast<int>(q)).t2;
        if (t2 > 0.0) {
            log_idle -= (makespan - busy[q]) / t2;
        }
    }

    PropertySet &props = ctx.properties;
    props.set("fidelity_2q_part", std::exp(log_2q));
    props.set("fidelity_1q_part", std::exp(log_1q));
    props.set("fidelity_idle_part", std::exp(log_idle));
    props.set("fidelity_makespan", makespan);
    props.set("fidelity_predicted", std::exp(log_2q + log_1q + log_idle));
}

} // namespace snail
