/**
 * @file
 * Heterogeneous (per-edge) basis gates.
 *
 * The paper closes by naming "exploration of heterogeneous basis gates
 * to further reduce pulse time" as future work: a SNAIL machine is not
 * obliged to calibrate the same n-root-iSWAP pulse on every coupling,
 * and a chiplet machine may mix modulator families entirely.  This
 * module scores a routed circuit against a device whose couplings carry
 * individually assigned BasisSpecs.
 *
 * Scoring mirrors transpiler/basis_translation.hpp: each 2Q operation
 * contributes the analytic basis count of the basis installed on the
 * edge it executes on, and pulse durations use that basis's per-pulse
 * normalization (1/n for the n-root iSWAP family).
 */

#ifndef SNAILQC_TRANSPILER_HETERO_BASIS_HPP
#define SNAILQC_TRANSPILER_HETERO_BASIS_HPP

#include <functional>
#include <map>
#include <utility>

#include "topology/coupling_graph.hpp"
#include "transpiler/basis_translation.hpp"

namespace snail
{

/** A per-edge basis assignment over a device's coupling graph. */
class HeterogeneousBasis
{
  public:
    /**
     * @param graph the device (edges define assignable couplings).
     * @param fallback basis used by edges without an explicit entry.
     */
    HeterogeneousBasis(const CouplingGraph &graph, BasisSpec fallback);

    /** Install a basis on one edge. @throws SnailError when no edge. */
    void setEdgeBasis(int a, int b, const BasisSpec &spec);

    /**
     * Install a basis on every edge selected by a predicate; returns
     * the number of edges assigned.
     */
    std::size_t setWhere(
        const std::function<bool(int a, int b)> &predicate,
        const BasisSpec &spec);

    /** Basis installed on (a, b) (the fallback when unset). */
    const BasisSpec &edgeBasis(int a, int b) const;

    const BasisSpec &fallback() const { return _fallback; }
    const CouplingGraph &graph() const { return _graph; }

    /** Number of edges with an explicit (non-fallback) assignment. */
    std::size_t assignedEdges() const { return _assigned.size(); }

  private:
    static std::pair<int, int> canonical(int a, int b);

    const CouplingGraph &_graph;
    BasisSpec _fallback;
    std::map<std::pair<int, int>, BasisSpec> _assigned;
};

/**
 * Post-translation statistics of a routed (physical-qubit) circuit on a
 * heterogeneous-basis device.  Every 2Q instruction must act on a
 * coupled pair.
 */
TranslationStats heterogeneousTranslationStats(
    const Circuit &routed, const HeterogeneousBasis &bases);

} // namespace snail

#endif // SNAILQC_TRANSPILER_HETERO_BASIS_HPP
