/**
 * @file
 * Peephole circuit optimization passes.
 *
 * The paper's evaluation transpiles benchmark circuits verbatim (its
 * Qiskit flow runs placement/routing/translation only), but a production
 * toolchain wants the standard cleanup passes too.  Three are provided,
 * plus a fixpoint driver:
 *
 *  - removeIdentities: drop any gate whose matrix is the identity up to
 *    global phase (explicit `id`, zero-angle rotations, 2pi wraps).
 *  - fuseSingleQubitGates: merge maximal runs of adjacent 1Q gates on
 *    the same qubit into a single U3 (or nothing when the run collapses
 *    to the identity).
 *  - cancelTwoQubitGates: cancel adjacent self-inverse 2Q pairs
 *    (CX/CZ/SWAP) and merge adjacent parameterized phase couplings
 *    (CPhase/RZZ) by angle addition.
 *
 * Every pass preserves the circuit's unitary exactly (up to global
 * phase); the property test suite verifies this by simulation.
 */

#ifndef SNAILQC_TRANSPILER_OPTIMIZE_HPP
#define SNAILQC_TRANSPILER_OPTIMIZE_HPP

#include <cstddef>

#include "ir/circuit.hpp"

namespace snail
{

/** What an optimization pass (or the fixpoint driver) changed. */
struct OptimizeStats
{
    std::size_t removed_identities = 0; //!< identity-up-to-phase gates cut
    std::size_t fused_1q = 0;           //!< 1Q gates eliminated by fusion
    std::size_t cancelled_2q = 0;       //!< 2Q gates cut by pair cancellation
    std::size_t merged_2q = 0;          //!< 2Q gates merged by angle addition
    int iterations = 0;                 //!< fixpoint rounds executed

    /** Total instructions eliminated. */
    std::size_t
    total() const
    {
        return removed_identities + fused_1q + cancelled_2q + merged_2q;
    }
};

/** Drop gates that equal the identity up to global phase. */
OptimizeStats removeIdentities(Circuit &circuit, double tol = 1e-10);

/**
 * Fuse maximal runs of 1Q gates per qubit into one U3 gate.  Runs of
 * length one are left untouched so named gates keep their identity.
 */
OptimizeStats fuseSingleQubitGates(Circuit &circuit, double tol = 1e-10);

/**
 * Cancel or merge adjacent 2Q gates on the same qubit pair with no
 * intervening operation on either qubit:
 *  - CX (same orientation), CZ, SWAP pairs cancel;
 *  - CPhase/RZZ angles add (and vanish at multiples of 2pi).
 */
OptimizeStats cancelTwoQubitGates(Circuit &circuit, double tol = 1e-10);

/**
 * Run all passes to a fixpoint (bounded number of rounds).
 * @param level 0 = no-op; 1 = identities + 2Q cancellation;
 *              2 = additionally fuse 1Q runs into U3.
 */
OptimizeStats optimizeCircuit(Circuit &circuit, int level = 2,
                              double tol = 1e-10);

} // namespace snail

#endif // SNAILQC_TRANSPILER_OPTIMIZE_HPP
