/**
 * @file
 * DenseLayout: map the circuit onto the densest device region.
 *
 * Mirrors Qiskit's DenseLayout pass, which the paper uses for initial
 * qubit mapping: for each seed qubit, grow a breadth-first region of the
 * circuit's width, preferring candidates with more links back into the
 * region; keep the region with the most internal couplings.  Virtual
 * qubits with heavier 2Q interaction loads land on the better-connected
 * physical qubits of the winning region.
 */

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "ir/circuit.hpp"
#include "transpiler/layout.hpp"
#include "transpiler/passes.hpp"

namespace snail
{

namespace
{

/** Internal edge count of a vertex subset. */
int
internalEdges(const CouplingGraph &graph, const std::vector<int> &subset)
{
    std::vector<bool> in(static_cast<std::size_t>(graph.numQubits()), false);
    for (int q : subset) {
        in[static_cast<std::size_t>(q)] = true;
    }
    int count = 0;
    for (int q : subset) {
        for (int nb : graph.neighbors(q)) {
            if (nb > q && in[static_cast<std::size_t>(nb)]) {
                ++count;
            }
        }
    }
    return count;
}

/** Grow an n-qubit region from seed, greedily maximizing back-links. */
std::vector<int>
growRegion(const CouplingGraph &graph, int seed, int n)
{
    std::vector<bool> in(static_cast<std::size_t>(graph.numQubits()), false);
    std::vector<int> region{seed};
    in[static_cast<std::size_t>(seed)] = true;

    while (static_cast<int>(region.size()) < n) {
        // Candidate frontier: neighbors of the region.
        int best = -1;
        int best_links = -1;
        for (int q : region) {
            for (int nb : graph.neighbors(q)) {
                if (in[static_cast<std::size_t>(nb)]) {
                    continue;
                }
                int links = 0;
                for (int nn : graph.neighbors(nb)) {
                    if (in[static_cast<std::size_t>(nn)]) {
                        ++links;
                    }
                }
                // Deterministic tie-break on the smaller index.
                if (links > best_links ||
                    (links == best_links && nb < best)) {
                    best_links = links;
                    best = nb;
                }
            }
        }
        if (best < 0) {
            break; // disconnected device; caller validates size
        }
        region.push_back(best);
        in[static_cast<std::size_t>(best)] = true;
    }
    return region;
}

} // namespace

Layout
denseLayout(const Circuit &circuit, const CouplingGraph &graph)
{
    const int n = circuit.numQubits();
    SNAIL_REQUIRE(n <= graph.numQubits(),
                  "circuit needs " << n << " qubits, device has "
                                   << graph.numQubits());

    // Pick the densest n-qubit region over all seeds.
    std::vector<int> best_region;
    int best_edges = -1;
    for (int seed = 0; seed < graph.numQubits(); ++seed) {
        const std::vector<int> region = growRegion(graph, seed, n);
        if (static_cast<int>(region.size()) < n) {
            continue;
        }
        const int e = internalEdges(graph, region);
        if (e > best_edges) {
            best_edges = e;
            best_region = region;
        }
    }
    SNAIL_REQUIRE(!best_region.empty(),
                  "device cannot host a connected " << n << "-qubit region");

    // Virtual interaction load: number of 2Q gates touching each qubit.
    std::vector<std::pair<int, int>> load(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v) {
        load[static_cast<std::size_t>(v)] = {0, v};
    }
    for (const auto &op : circuit.instructions()) {
        if (op.isTwoQubit()) {
            ++load[static_cast<std::size_t>(op.q0())].first;
            ++load[static_cast<std::size_t>(op.q1())].first;
        }
    }
    std::sort(load.begin(), load.end(), [](const auto &a, const auto &b) {
        if (a.first != b.first) {
            return a.first > b.first;
        }
        return a.second < b.second;
    });

    // Physical ranking: degree within the chosen region.
    std::vector<bool> in(static_cast<std::size_t>(graph.numQubits()), false);
    for (int q : best_region) {
        in[static_cast<std::size_t>(q)] = true;
    }
    std::vector<std::pair<int, int>> rank;
    rank.reserve(best_region.size());
    for (int q : best_region) {
        int deg = 0;
        for (int nb : graph.neighbors(q)) {
            if (in[static_cast<std::size_t>(nb)]) {
                ++deg;
            }
        }
        rank.emplace_back(deg, q);
    }
    std::sort(rank.begin(), rank.end(), [](const auto &a, const auto &b) {
        if (a.first != b.first) {
            return a.first > b.first;
        }
        return a.second < b.second;
    });

    Layout layout(n, graph.numQubits());
    for (int i = 0; i < n; ++i) {
        layout.assign(load[static_cast<std::size_t>(i)].second,
                      rank[static_cast<std::size_t>(i)].second);
    }
    return layout;
}

void
DenseLayoutPass::run(PassContext &ctx) const
{
    SNAIL_REQUIRE(!ctx.final_layout,
                  name() << ": circuit is already routed; layout passes "
                            "must run before routing");
    ctx.initial_layout = denseLayout(ctx.circuit, ctx.graph);
}

} // namespace snail
