/**
 * @file
 * The built-in passes: every stage of the paper's Fig. 10 flow (and the
 * extensions grown around it) wrapped as a named Pass.
 *
 * Declarations live here; each adapter is implemented next to the stage
 * it wraps (DenseLayoutPass in dense_layout.cpp, StochasticRoutePass in
 * stochastic_router.cpp, ...).  All of them are registered with the
 * PassRegistry under the name returned by name(); see pass_registry.hpp
 * for the spec grammar that assembles them into pipelines.
 */

#ifndef SNAILQC_TRANSPILER_PASSES_HPP
#define SNAILQC_TRANSPILER_PASSES_HPP

#include <cstddef>

#include "transpiler/pass.hpp"
#include "transpiler/routing.hpp"

namespace snail
{

/** @name Layout passes — set ctx.initial_layout. */
/** @{ */

/** Identity embedding (Qiskit TrivialLayout). */
class TrivialLayoutPass : public Pass
{
  public:
    std::string name() const override { return "trivial"; }
    void run(PassContext &ctx) const override;
};

/** Densest-subgraph placement (Qiskit DenseLayout). */
class DenseLayoutPass : public Pass
{
  public:
    std::string name() const override { return "dense"; }
    void run(PassContext &ctx) const override;
};

/** Dense seed refined by forward/backward routing rounds (SABRE). */
class SabreLayoutPass : public Pass
{
  public:
    static constexpr int kDefaultIterations = 2;
    /** RNG salt; keeps the stream identical to the legacy pipeline. */
    static constexpr unsigned long long kRngSalt = 0xAB5EULL;

    explicit SabreLayoutPass(int iterations = kDefaultIterations)
        : _iterations(iterations)
    {
    }

    std::string name() const override { return "sabre-layout"; }
    std::string spec() const override;
    void run(PassContext &ctx) const override;

  private:
    int _iterations;
};

/**
 * Zero-SWAP subgraph embedding (VF2).  With `fallback_dense` (the
 * registered "vf2"), falls back to DenseLayout when no embedding is
 * found; without it (the registered "vf2-strict"), throws instead.
 */
class Vf2LayoutPass : public Pass
{
  public:
    explicit Vf2LayoutPass(bool fallback_dense = true,
                           std::size_t max_nodes = 200000)
        : _fallbackDense(fallback_dense), _maxNodes(max_nodes)
    {
    }

    std::string
    name() const override
    {
        return _fallbackDense ? "vf2" : "vf2-strict";
    }
    void run(PassContext &ctx) const override;

  private:
    bool _fallbackDense;
    std::size_t _maxNodes;
};

/** @} */

/** @name Routing passes — insert SWAPs, set both layouts. */
/** @{ */

/**
 * Shared routing-adapter bookkeeping: reject double routing and default
 * the initial layout (begin); install the result and publish
 * "swaps_added" (finish).  Used by RoutePassBase and NoiseRoutePass.
 */
void beginRouting(PassContext &ctx, const std::string &pass_name);
void finishRouting(PassContext &ctx, RoutingResult &&routed);

/**
 * Base for routing adapters: routes ctx.circuit with the wrapped
 * Router, starting from ctx.initial_layout (trivial when unset), and
 * publishes the "swaps_added" property.  The router draws from a fresh
 * Rng(ctx.seed), matching the legacy pipeline stream.
 */
class RoutePassBase : public Pass
{
  public:
    void run(PassContext &ctx) const override;

  protected:
    virtual const Router &router() const = 0;
};

/** Greedy shortest-path router. */
class BasicRoutePass : public RoutePassBase
{
  public:
    std::string name() const override { return "basic-route"; }

  protected:
    const Router &router() const override { return _router; }

  private:
    BasicRouter _router;
};

/** The paper's randomized-trial router (Qiskit StochasticSwap). */
class StochasticRoutePass : public RoutePassBase
{
  public:
    static constexpr int kDefaultTrials = 20;
    static constexpr unsigned kDefaultThreads = 1;

    /**
     * @param threads workers for the per-layer trials (spec suffix
     *        "xN", e.g. "stochastic-route=20x4"); routed output is
     *        bit-identical at any value.
     */
    explicit StochasticRoutePass(int trials = kDefaultTrials,
                                 unsigned threads = kDefaultThreads)
        : _trials(trials), _threads(threads), _router(trials, threads)
    {
    }

    std::string name() const override { return "stochastic-route"; }
    std::string spec() const override;

  protected:
    const Router &router() const override { return _router; }

  private:
    int _trials;
    unsigned _threads;
    StochasticSwapRouter _router;
};

/** SABRE lookahead-heuristic router. */
class SabreRoutePass : public RoutePassBase
{
  public:
    std::string name() const override { return "sabre-route"; }

  protected:
    const Router &router() const override { return _router; }

  private:
    SabreRouter _router;
};

/** Beam-search router (Qiskit LookaheadSwap). */
class LookaheadRoutePass : public RoutePassBase
{
  public:
    std::string name() const override { return "lookahead-route"; }

  protected:
    const Router &router() const override { return _router; }

  private:
    LookaheadRouter _router;
};

/**
 * Fidelity-aware router ("noise-route"): SABRE-style lookahead search
 * whose SWAP cost adds a penalty proportional to the SWAP's predicted
 * infidelity on the edge it would execute on — the per-pulse count of
 * a SWAP in the edge's native basis times -log(edge fidelity), scaled
 * by `weight` — so equal-distance alternatives resolve toward
 * high-fidelity couplings and badly calibrated edges are avoided
 * unless the detour is worse.  Reads EdgeProperties from the context's
 * Target; on a uniform target every edge costs the same and the pass
 * routes identically to plain "sabre-route".  Publishes "swaps_added"
 * and "noise_route_penalty" (the routed circuit's total unweighted
 * SWAP penalty).
 */
class NoiseRoutePass : public Pass
{
  public:
    static constexpr double kDefaultWeight = 1.0;

    explicit NoiseRoutePass(double weight = kDefaultWeight)
        : _weight(weight)
    {
    }

    std::string name() const override { return "noise-route"; }
    std::string spec() const override;
    void run(PassContext &ctx) const override;

  private:
    double _weight;
};

/** @} */

/** @name Circuit-rewrite and scoring passes. */
/** @{ */

/** Peephole optimization to a fixpoint (transpiler/optimize.hpp). */
class OptimizePass : public Pass
{
  public:
    static constexpr int kDefaultLevel = 2;

    explicit OptimizePass(int level = kDefaultLevel) : _level(level) {}

    std::string name() const override { return "optimize"; }
    std::string spec() const override;
    void run(PassContext &ctx) const override;

  private:
    int _level;
};

/**
 * Drop trailing SWAPs, folding the permutation they implement into
 * ctx.final_layout; publishes "swaps_elided".  A no-op before routing.
 */
class ElideSwapsPass : public Pass
{
  public:
    std::string name() const override { return "elide"; }
    void run(PassContext &ctx) const override;
};

/**
 * Select the native basis used by subsequent scoring ("basis=<name>").
 * The "basis=auto" form instead adopts the context target's device
 * calibration: the default basis for uniform scoring, plus the
 * per-edge bases for translation scoring on heterogeneous targets
 * (score_target_bases).
 */
class SetBasisPass : public Pass
{
  public:
    /** Tag selecting the target-driven ("auto") mode. */
    struct FromTarget
    {
    };

    explicit SetBasisPass(BasisSpec basis)
        : _basis(std::move(basis)), _fromTarget(false)
    {
    }

    explicit SetBasisPass(FromTarget) : _fromTarget(true) {}

    std::string name() const override { return "basis"; }
    std::string spec() const override;
    void run(PassContext &ctx) const override;

  private:
    BasisSpec _basis;
    bool _fromTarget;
};

/**
 * Metric scoring: publishes the paper's Fig. 10 collection points
 * (swaps_total, swaps_critical, ops_2q_pre, basis_2q_total,
 * basis_2q_critical, duration_total, duration_critical) plus "scored".
 * The PassManager appends one automatically when a pipeline ends
 * without having scored.
 */
class ScoreMetricsPass : public Pass
{
  public:
    std::string name() const override { return "score"; }
    void run(PassContext &ctx) const override;
};

/**
 * Predicted circuit fidelity from the target's per-edge and per-qubit
 * calibration via the paper's Eq. 12/13 model ("score-fidelity").
 *
 * Every 2Q operation on edge (a, b) contributes
 * edge.fidelity_2q ^ k(op), where k is the operation's analytic pulse
 * count in the edge's native basis; 1Q gates contribute the host
 * qubit's fidelity_1q; and qubits with a finite T2 lose exp(-idle/T2)
 * while waiting for the circuit's per-edge-duration makespan.  The
 * circuit must be routed (every 2Q op on a coupled pair).
 *
 * Publishes: fidelity_predicted, fidelity_2q_part, fidelity_1q_part,
 * fidelity_idle_part, fidelity_makespan.  Does NOT publish "scored" —
 * the standard Fig. 10 metric pass still runs (implicitly) alongside.
 */
class ScoreFidelityPass : public Pass
{
  public:
    std::string name() const override { return "score-fidelity"; }
    void run(PassContext &ctx) const override;
};

/** @} */

} // namespace snail

#endif // SNAILQC_TRANSPILER_PASSES_HPP
