/**
 * @file
 * SABRE-style lookahead router (Li, Ding, Xie — ASPLOS'19), provided as
 * an ablation alternative to StochasticSwap: scores candidate SWAPs on
 * the ready ("front") 2Q gates plus a discounted extended set, with a
 * decay factor discouraging back-and-forth moves on the same qubits.
 *
 * Candidate SWAPs are scored incrementally: a DeltaScorer keeps one
 * distance term per front/extended gate and answers each hypothetical
 * (a, b) exchange by visiting only the terms touching a or b, so the
 * per-candidate cost is O(1) in the front size and no Layout copies
 * are made (delta_scorer.hpp; the exact-integer-sum invariant keeps
 * routed output bit-identical to a full re-sum).
 */

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "ir/dag.hpp"
#include "transpiler/delta_scorer.hpp"
#include "transpiler/routing.hpp"

namespace snail
{

RoutingResult
SabreRouter::route(const Circuit &circuit, const CouplingGraph &graph,
                   const Layout &initial, Rng &rng) const
{
    SNAIL_REQUIRE(initial.isComplete(), "routing needs a complete layout");
    Circuit out(graph.numQubits(), circuit.name() + "-routed");
    out.reserve(circuit.size());
    Layout layout = initial;
    std::size_t swaps = 0;

    DependencyFrontier frontier(circuit);
    const auto &ops = circuit.instructions();
    std::vector<double> decay(static_cast<std::size_t>(graph.numQubits()),
                              1.0);
    int since_progress = 0;

    // Thrash limits: past `valve_steps` fruitless SWAPs the decay table
    // resets (the classic SABRE escape hatch); past `hard_cap` the
    // search is provably stuck (an adversarial swap penalty can pin the
    // candidate choice regardless of decay) and the router throws
    // instead of spinning forever.
    const int valve_steps = 8 * graph.numQubits() + 64;
    const long hard_cap = 64L * static_cast<long>(valve_steps);
    long stuck_steps = 0;

    // Scratch reused across routing steps (hot loop: no per-step
    // allocations in steady state).
    std::vector<const Instruction *> front;
    std::vector<const Instruction *> extended;
    std::vector<std::size_t> ahead;
    DependencyFrontier::LookaheadScratch ahead_scratch;

    // Incremental scoring state.  `scorer_dirty` marks that the
    // front/extended sets changed (a gate was executed) and the terms
    // must be rebuilt; steps that only swap keep the terms current
    // through commitSwap(), so a long SWAP run between executions
    // never re-reads the front.
    DeltaScorer scorer(graph);
    bool scorer_dirty = true;

    while (!frontier.done()) {
        bool progressed = true;
        while (progressed) {
            progressed = false;
            for (std::size_t idx : frontier.ready()) {
                const Instruction &op = ops[idx];
                if (op.numQubits() == 1) {
                    out.append(op.gate(), {layout.physical(op.q0())});
                    frontier.consume(idx);
                    progressed = true;
                    break;
                }
                const int p0 = layout.physical(op.q0());
                const int p1 = layout.physical(op.q1());
                if (graph.hasEdge(p0, p1)) {
                    out.append(op.gate(), {p0, p1});
                    frontier.consume(idx);
                    progressed = true;
                    break;
                }
            }
            if (progressed) {
                since_progress = 0;
                stuck_steps = 0;
                scorer_dirty = true;
                std::fill(decay.begin(), decay.end(), 1.0);
            }
        }
        if (frontier.done()) {
            break;
        }

        // Front 2Q gates (all blocked now) and the extended set.
        if (scorer_dirty) {
            front.clear();
            for (std::size_t idx : frontier.ready()) {
                front.push_back(&ops[idx]);
            }
            extended.clear();
            frontier.lookahead(static_cast<std::size_t>(_extendedSize),
                               ahead_scratch, ahead);
            for (std::size_t idx : ahead) {
                if (ops[idx].isTwoQubit()) {
                    extended.push_back(&ops[idx]);
                }
            }
            scorer.rebuild(layout, front, extended);
            scorer_dirty = false;
        }

        // Score of the hypothetical (a, b) exchange, by delta: only
        // the terms of gates touching a or b are revisited.  The sums
        // are exact integers, so the result is bit-identical to the
        // full re-sum this replaces (delta_scorer.hpp).
        const double front_n =
            static_cast<double>(scorer.frontTerms().size());
        const double ext_n =
            static_cast<double>(scorer.extendedTerms().size());
        auto score = [&](int a, int b) {
            const DeltaScorer::Delta delta = scorer.swapDelta(a, b);
            const double front_cost =
                static_cast<double>(scorer.frontSum() + delta.front) /
                front_n;
            double ext_cost = 0.0;
            if (ext_n != 0.0) {
                ext_cost = static_cast<double>(scorer.extendedSum() +
                                               delta.extended) /
                           ext_n;
            }
            const double d = std::max(decay[static_cast<std::size_t>(a)],
                                      decay[static_cast<std::size_t>(b)]);
            const double penalty =
                _swapPenalty ? _swapPenalty(a, b) : 0.0;
            return d * (front_cost + _extendedWeight * ext_cost) + penalty;
        };

        // Candidate swaps: edges touching front-gate qubits (the term
        // endpoints are the live mapped operands).
        double best_score = std::numeric_limits<double>::max();
        std::pair<int, int> best_edge{-1, -1};
        for (const DeltaScorer::Term &t : scorer.frontTerms()) {
            for (int pq : {t.p0, t.p1}) {
                for (int nb : graph.neighbors(pq)) {
                    double s = score(pq, nb);
                    // Tiny jitter for deterministic-tie randomization.
                    s += 1e-9 * rng.uniform();
                    if (s < best_score) {
                        best_score = s;
                        best_edge = {pq, nb};
                    }
                }
            }
        }
        SNAIL_ASSERT(best_edge.first >= 0, "no candidate swap found");

        out.swap(best_edge.first, best_edge.second);
        layout.swapPhysical(best_edge.first, best_edge.second);
        scorer.commitSwap(best_edge.first, best_edge.second);
        decay[static_cast<std::size_t>(best_edge.first)] += _decayFactor;
        decay[static_cast<std::size_t>(best_edge.second)] += _decayFactor;
        ++swaps;

        if (++stuck_steps > hard_cap) {
            throw RoutingError(name(), circuit.name(), graph.name(),
                               stuck_steps);
        }

        // Safety valve against pathological thrash.
        if (++since_progress > valve_steps) {
            std::fill(decay.begin(), decay.end(), 1.0);
            since_progress = 0;
        }
    }

    RoutingResult result(std::move(out), initial, layout);
    result.swaps_added = swaps;
    return result;
}

} // namespace snail
