/**
 * @file
 * NoiseRoutePass ("noise-route"): fidelity-aware SABRE-style routing.
 *
 * The search is SabreRouter's (sabre_router.cpp), instantiated with a
 * per-edge SWAP penalty read from the context target's EdgeProperties:
 *
 *   penalty(a, b) = k_swap(basis on (a,b)) * -log(fidelity_2q(a,b))
 *
 * scaled by the pass's weight.  k_swap is the analytic pulse count of
 * a SWAP in the edge's native basis (3 CNOTs, 3 iSWAPs, ...), so the
 * penalty is exactly the -log fidelity the score-fidelity pass would
 * charge for that SWAP — the router and the scorer optimize the same
 * objective.  Distances stay hop-based: the penalty steers among
 * routes of comparable length rather than redefining reachability.
 * On a uniform target every edge costs the same and the pass routes
 * identically to plain "sabre-route".
 */

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/json.hpp"
#include "gates/gate.hpp"
#include "transpiler/passes.hpp"
#include "weyl/coordinates.hpp"

namespace snail
{

namespace
{

/** Floor applied before taking -log of an edge fidelity. */
constexpr double kFidelityFloor = 1e-12;

/**
 * Per-edge SWAP penalties for every coupling of the target, indexed by
 * the flattened (a * n + b) pair.  Computed once per run: pulse counts
 * depend only on the edge basis kind, and -log(fidelity) only on the
 * edge calibration.
 */
std::vector<double>
swapPenaltyTable(const Target &target)
{
    const CouplingGraph &graph = target.graph();
    const std::size_t n = static_cast<std::size_t>(graph.numQubits());
    std::vector<double> table(n * n, 0.0);
    const WeylCoords swap_coords = weylCoordinates(gates::swapGate());
    for (const auto &[a, b] : graph.edges()) {
        const EdgeProperties &props = target.edge(a, b);
        const int k_swap = basisCount(props.basis, swap_coords);
        const double f = std::max(props.fidelity_2q, kFidelityFloor);
        const double penalty =
            static_cast<double>(k_swap) * -std::log(f);
        table[static_cast<std::size_t>(a) * n +
              static_cast<std::size_t>(b)] = penalty;
        table[static_cast<std::size_t>(b) * n +
              static_cast<std::size_t>(a)] = penalty;
    }
    return table;
}

} // namespace

std::string
NoiseRoutePass::spec() const
{
    if (_weight == kDefaultWeight) {
        return name();
    }
    return name() + "=" + shortestDouble(_weight);
}

void
NoiseRoutePass::run(PassContext &ctx) const
{
    beginRouting(ctx, name());
    const std::size_t n = static_cast<std::size_t>(ctx.graph.numQubits());
    const std::vector<double> penalties = swapPenaltyTable(ctx.target());
    auto raw_penalty = [&penalties, n](int a, int b) {
        return penalties[static_cast<std::size_t>(a) * n +
                         static_cast<std::size_t>(b)];
    };

    const double weight = _weight;
    const SabreRouter router([raw_penalty, weight](int a, int b) {
        return weight * raw_penalty(a, b);
    });
    Rng rng(ctx.seed);
    RoutingResult routed =
        router.route(ctx.circuit, ctx.graph, *ctx.initial_layout, rng);

    // Total (unweighted) SWAP penalty of the routed circuit — the
    // -log-fidelity cost score-fidelity will charge for its SWAPs.
    double penalty_total = 0.0;
    for (const auto &op : routed.circuit.instructions()) {
        if (op.isSwap()) {
            penalty_total += raw_penalty(op.q0(), op.q1());
        }
    }
    finishRouting(ctx, std::move(routed));
    ctx.properties.set("noise_route_penalty", penalty_total);
}

} // namespace snail
