/**
 * @file
 * StochasticSwap-style router (the paper's routing pass).
 *
 * The circuit is consumed front layer by front layer.  Ready 1Q gates and
 * executable 2Q gates are emitted immediately.  When every ready 2Q gate
 * is blocked, the router runs several randomized trials: each trial
 * greedily applies the SWAP that most reduces a noise-perturbed sum of
 * distances between the blocked pairs, until some gate becomes
 * executable.  The trial needing the fewest SWAPs wins and its SWAP
 * sequence is committed.
 *
 * Randomness: one draw from the caller's seeded Rng fixes a per-route
 * stream base; each trial then runs on its own counter-derived
 * generator (Rng::stream of the blocked-layer index and trial index).
 * Trials therefore depend only on (seed, event, trial) — never on how
 * many draws earlier trials consumed, nor on which worker thread ran
 * them — which keeps routing bit-exact across serial, batch, and
 * parallel-trial execution (`threads` fans the trials of one blocked
 * layer across the shared pool; common/thread_pool.hpp).
 *
 * Candidate SWAPs are scored incrementally: each trial's DeltaScorer
 * keeps one distance term per blocked gate, a candidate costs only
 * the terms touching the swapped pair (exact integer sums — bit-
 * identical to the old full re-sum), commitSwap() advances the trial
 * without ever copying a Layout, and "some gate executable?" is an
 * O(1) read of the adjacent-term count.
 */

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "ir/dag.hpp"
#include "transpiler/delta_scorer.hpp"
#include "transpiler/passes.hpp"
#include "transpiler/routing.hpp"

namespace snail
{

namespace
{

/** One randomized trial: SWAP sequence that unblocks at least one gate. */
struct Trial
{
    std::vector<std::pair<int, int>> swaps;
    bool success = false;
};

Trial
runTrial(const CouplingGraph &graph, const Layout &layout,
         const std::vector<const Instruction *> &blocked, Rng &rng,
         std::size_t swap_budget, DeltaScorer &scorer)
{
    Trial trial;
    scorer.rebuild(layout, blocked, {});

    // A blocked gate is executable iff its term distance is 1, so the
    // old O(blocked) hasEdge scan is one counter read.
    while (scorer.frontAdjacentCount() == 0) {
        if (trial.swaps.size() >= swap_budget) {
            return trial; // failed
        }
        // Candidate swaps: edges touching any blocked qubit (the term
        // endpoints track the trial's hypothetical layout).
        int best_cost = std::numeric_limits<int>::max();
        double best_noisy = std::numeric_limits<double>::max();
        std::pair<int, int> best_edge{-1, -1};
        for (const DeltaScorer::Term &t : scorer.frontTerms()) {
            for (int pq : {t.p0, t.p1}) {
                for (int nb : graph.neighbors(pq)) {
                    const int cost = static_cast<int>(
                        scorer.frontSum() +
                        scorer.swapDelta(pq, nb).front);
                    // Multiplicative noise makes trials explore different
                    // tie-breaks and near-optimal moves.
                    const double noisy =
                        static_cast<double>(cost) *
                        (1.0 + 0.1 * std::abs(rng.normal()));
                    if (noisy < best_noisy) {
                        best_noisy = noisy;
                        best_cost = cost;
                        best_edge = {pq, nb};
                    }
                }
            }
        }
        SNAIL_ASSERT(best_edge.first >= 0, "no candidate swap found");
        (void)best_cost;
        scorer.commitSwap(best_edge.first, best_edge.second);
        trial.swaps.push_back(best_edge);
    }
    trial.success = true;
    return trial;
}

} // namespace

RoutingResult
StochasticSwapRouter::route(const Circuit &circuit,
                            const CouplingGraph &graph,
                            const Layout &initial, Rng &rng) const
{
    SNAIL_REQUIRE(initial.isComplete(), "routing needs a complete layout");
    // Trials may query distance() concurrently; the lazy oracle build
    // is not thread-safe, so force it from this thread first.  (The
    // landmark oracle additionally serializes its memo internally.)
    graph.ensureDistanceOracle();
    Circuit out(graph.numQubits(), circuit.name() + "-routed");
    out.reserve(circuit.size());
    Layout layout = initial;
    std::size_t swaps = 0;

    DependencyFrontier frontier(circuit);
    const auto &ops = circuit.instructions();
    const std::size_t swap_budget =
        4 * static_cast<std::size_t>(graph.numQubits()) + 16;

    // Scratch reused across routing steps.  `ready_scratch` snapshots
    // the frontier because consume() mutates it mid-iteration.
    std::vector<std::size_t> ready_scratch;
    std::vector<const Instruction *> blocked;

    // Counter-based trial streams: (blocked-event index, trial index)
    // addresses a generator derived from one base draw, so trial t of
    // event e sees the same randomness no matter what ran before it.
    const std::uint64_t stream_base = rng.next();
    std::uint64_t blocked_event = 0;
    SNAIL_ASSERT(_trials < (1 << 16), "trial count overflows stream id");

    // One scorer per trial slot, reused across blocked events (trial
    // t always runs on scorers[t], whichever worker picks it up), so
    // the hot loop allocates nothing in steady state.
    std::vector<DeltaScorer> scorers;
    scorers.reserve(static_cast<std::size_t>(_trials));
    for (int t = 0; t < _trials; ++t) {
        scorers.emplace_back(graph);
    }

    while (!frontier.done()) {
        // Emit everything executable in the current frontier.
        bool progressed = true;
        while (progressed) {
            progressed = false;
            ready_scratch.assign(frontier.ready().begin(),
                                 frontier.ready().end());
            for (std::size_t idx : ready_scratch) {
                const Instruction &op = ops[idx];
                if (op.numQubits() == 1) {
                    out.append(op.gate(), {layout.physical(op.q0())});
                    frontier.consume(idx);
                    progressed = true;
                } else {
                    const int p0 = layout.physical(op.q0());
                    const int p1 = layout.physical(op.q1());
                    if (graph.hasEdge(p0, p1)) {
                        out.append(op.gate(), {p0, p1});
                        frontier.consume(idx);
                        progressed = true;
                    }
                }
            }
        }
        if (frontier.done()) {
            break;
        }

        // Everything ready is a blocked 2Q gate; pick the best SWAP
        // sequence over randomized trials.
        blocked.clear();
        for (std::size_t idx : frontier.ready()) {
            blocked.push_back(&ops[idx]);
        }
        SNAIL_ASSERT(!blocked.empty(), "router stalled with no ready gates");

        // Trials are independent by construction (each owns its
        // counter-derived Rng and DeltaScorer), so they fan across the
        // shared pool; the winner is selected serially afterwards —
        // fewest SWAPs, earliest trial index on ties — so the choice
        // is bit-identical at any thread count.
        std::vector<Trial> trials(static_cast<std::size_t>(_trials));
        parallelFor(static_cast<std::size_t>(_trials), _threads,
                    [&](std::size_t t) {
                        Rng trial_rng = Rng::stream(
                            stream_base,
                            (blocked_event << 16) |
                                static_cast<std::uint64_t>(t));
                        trials[t] = runTrial(graph, layout, blocked,
                                             trial_rng, swap_budget,
                                             scorers[t]);
                    });

        Trial best;
        bool have_best = false;
        for (Trial &trial : trials) {
            if (!trial.success) {
                continue;
            }
            if (!have_best || trial.swaps.size() < best.swaps.size()) {
                best = std::move(trial);
                have_best = true;
            }
        }
        SNAIL_REQUIRE(have_best,
                      "stochastic routing failed on " << graph.name());

        for (const auto &[a, b] : best.swaps) {
            out.swap(a, b);
            layout.swapPhysical(a, b);
            ++swaps;
        }
        ++blocked_event;
    }

    RoutingResult result(std::move(out), initial, layout);
    result.swaps_added = swaps;
    return result;
}

std::string
StochasticRoutePass::spec() const
{
    std::string out = name();
    if (_trials != kDefaultTrials || _threads != kDefaultThreads) {
        out += "=" + std::to_string(_trials);
    }
    if (_threads != kDefaultThreads) {
        out += "x" + std::to_string(_threads);
    }
    return out;
}

} // namespace snail
