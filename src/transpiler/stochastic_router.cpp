/**
 * @file
 * StochasticSwap-style router (the paper's routing pass).
 *
 * The circuit is consumed front layer by front layer.  Ready 1Q gates and
 * executable 2Q gates are emitted immediately.  When every ready 2Q gate
 * is blocked, the router runs several randomized trials: each trial
 * greedily applies the SWAP that most reduces a noise-perturbed sum of
 * distances between the blocked pairs, until some gate becomes
 * executable.  The trial needing the fewest SWAPs wins and its SWAP
 * sequence is committed.
 *
 * Randomness: one draw from the caller's seeded Rng fixes a per-route
 * stream base; each trial then runs on its own counter-derived
 * generator (Rng::stream of the blocked-layer index and trial index).
 * Trials therefore depend only on (seed, event, trial) — never on how
 * many draws earlier trials consumed — which keeps routing bit-exact
 * across serial and batch execution and leaves the door open to
 * evaluating trials concurrently.
 */

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "ir/dag.hpp"
#include "transpiler/passes.hpp"
#include "transpiler/routing.hpp"

namespace snail
{

namespace
{

/**
 * Sum of device distances for the blocked gate list under a layout —
 * generic over Layout and SwappedView so candidate SWAPs are scored by
 * delta without copying the trial layout.
 */
template <typename LayoutLike>
int
totalDistance(const CouplingGraph &graph, const LayoutLike &layout,
              const std::vector<const Instruction *> &blocked)
{
    int total = 0;
    for (const Instruction *op : blocked) {
        total += graph.distance(layout.physical(op->q0()),
                                layout.physical(op->q1()));
    }
    return total;
}

/** One randomized trial: SWAP sequence that unblocks at least one gate. */
struct Trial
{
    std::vector<std::pair<int, int>> swaps;
    bool success = false;
};

Trial
runTrial(const CouplingGraph &graph, Layout layout,
         const std::vector<const Instruction *> &blocked, Rng &rng,
         std::size_t swap_budget)
{
    Trial trial;
    auto executable = [&]() {
        for (const Instruction *op : blocked) {
            if (graph.hasEdge(layout.physical(op->q0()),
                              layout.physical(op->q1()))) {
                return true;
            }
        }
        return false;
    };

    while (!executable()) {
        if (trial.swaps.size() >= swap_budget) {
            return trial; // failed
        }
        // Candidate swaps: edges touching any blocked qubit.
        int best_cost = std::numeric_limits<int>::max();
        double best_noisy = std::numeric_limits<double>::max();
        std::pair<int, int> best_edge{-1, -1};
        for (const Instruction *op : blocked) {
            for (int pq : {layout.physical(op->q0()),
                           layout.physical(op->q1())}) {
                for (int nb : graph.neighbors(pq)) {
                    const int cost = totalDistance(
                        graph, SwappedView(layout, pq, nb), blocked);
                    // Multiplicative noise makes trials explore different
                    // tie-breaks and near-optimal moves.
                    const double noisy =
                        static_cast<double>(cost) *
                        (1.0 + 0.1 * std::abs(rng.normal()));
                    if (noisy < best_noisy) {
                        best_noisy = noisy;
                        best_cost = cost;
                        best_edge = {pq, nb};
                    }
                }
            }
        }
        SNAIL_ASSERT(best_edge.first >= 0, "no candidate swap found");
        (void)best_cost;
        layout.swapPhysical(best_edge.first, best_edge.second);
        trial.swaps.push_back(best_edge);
    }
    trial.success = true;
    return trial;
}

} // namespace

RoutingResult
StochasticSwapRouter::route(const Circuit &circuit,
                            const CouplingGraph &graph,
                            const Layout &initial, Rng &rng) const
{
    SNAIL_REQUIRE(initial.isComplete(), "routing needs a complete layout");
    Circuit out(graph.numQubits(), circuit.name() + "-routed");
    out.reserve(circuit.size());
    Layout layout = initial;
    std::size_t swaps = 0;

    DependencyFrontier frontier(circuit);
    const auto &ops = circuit.instructions();
    const std::size_t swap_budget =
        4 * static_cast<std::size_t>(graph.numQubits()) + 16;

    // Scratch reused across routing steps.  `ready_scratch` snapshots
    // the frontier because consume() mutates it mid-iteration.
    std::vector<std::size_t> ready_scratch;
    std::vector<const Instruction *> blocked;

    // Counter-based trial streams: (blocked-event index, trial index)
    // addresses a generator derived from one base draw, so trial t of
    // event e sees the same randomness no matter what ran before it.
    const std::uint64_t stream_base = rng.next();
    std::uint64_t blocked_event = 0;
    SNAIL_ASSERT(_trials < (1 << 16), "trial count overflows stream id");

    while (!frontier.done()) {
        // Emit everything executable in the current frontier.
        bool progressed = true;
        while (progressed) {
            progressed = false;
            ready_scratch.assign(frontier.ready().begin(),
                                 frontier.ready().end());
            for (std::size_t idx : ready_scratch) {
                const Instruction &op = ops[idx];
                if (op.numQubits() == 1) {
                    out.append(op.gate(), {layout.physical(op.q0())});
                    frontier.consume(idx);
                    progressed = true;
                } else {
                    const int p0 = layout.physical(op.q0());
                    const int p1 = layout.physical(op.q1());
                    if (graph.hasEdge(p0, p1)) {
                        out.append(op.gate(), {p0, p1});
                        frontier.consume(idx);
                        progressed = true;
                    }
                }
            }
        }
        if (frontier.done()) {
            break;
        }

        // Everything ready is a blocked 2Q gate; pick the best SWAP
        // sequence over randomized trials.
        blocked.clear();
        for (std::size_t idx : frontier.ready()) {
            blocked.push_back(&ops[idx]);
        }
        SNAIL_ASSERT(!blocked.empty(), "router stalled with no ready gates");

        Trial best;
        bool have_best = false;
        for (int t = 0; t < _trials; ++t) {
            Rng trial_rng = Rng::stream(
                stream_base, (blocked_event << 16) |
                                 static_cast<std::uint64_t>(t));
            Trial trial =
                runTrial(graph, layout, blocked, trial_rng, swap_budget);
            if (!trial.success) {
                continue;
            }
            if (!have_best || trial.swaps.size() < best.swaps.size()) {
                best = std::move(trial);
                have_best = true;
            }
        }
        SNAIL_REQUIRE(have_best,
                      "stochastic routing failed on " << graph.name());

        for (const auto &[a, b] : best.swaps) {
            out.swap(a, b);
            layout.swapPhysical(a, b);
            ++swaps;
        }
        ++blocked_event;
    }

    RoutingResult result(std::move(out), initial, layout);
    result.swaps_added = swaps;
    return result;
}

std::string
StochasticRoutePass::spec() const
{
    return _trials == kDefaultTrials
               ? name()
               : name() + "=" + std::to_string(_trials);
}

} // namespace snail
