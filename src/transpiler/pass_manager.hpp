/**
 * @file
 * PassManager: ordered execution of transpiler passes with per-pass
 * instrumentation, plus the parallel batch entry point.
 *
 * A PassManager owns a sequence of shared, immutable Pass objects.
 * Running it on a (circuit, graph, seed, basis) job executes the passes
 * in order on one PassContext, records wall time and SWAP / 2Q-gate
 * deltas per pass, and returns a TranspileResult whose metrics mirror
 * the paper's Fig. 10 collection points.  If no pass published the
 * metrics ("scored" property), a ScoreMetricsPass runs implicitly at
 * the end, so every pipeline yields complete metrics.
 *
 * transpileBatch() fans independent jobs across the shared
 * work-stealing pool (common/thread_pool.hpp).  Each job gets its own
 * PassContext seeded from its own job seed, so results are
 * bit-identical at any thread count, including 1.
 */

#ifndef SNAILQC_TRANSPILER_PASS_MANAGER_HPP
#define SNAILQC_TRANSPILER_PASS_MANAGER_HPP

#include <memory>
#include <string>
#include <vector>

#include "transpiler/pass.hpp"

namespace snail
{

/** Default job seed, shared with the legacy TranspileOptions. */
inline constexpr unsigned long long kDefaultTranspileSeed = 0xC0DE5EEDULL;

/** Everything the paper's data-collection flow records. */
struct TranspileMetrics
{
    std::size_t swaps_total = 0;     //!< SWAPs induced by routing
    double swaps_critical = 0.0;     //!< SWAPs on the critical path
    std::size_t ops_2q_pre = 0;      //!< 2Q ops before translation (incl SWAPs)
    std::size_t basis_2q_total = 0;  //!< native 2Q gates after translation
    double basis_2q_critical = 0.0;  //!< native 2Q gates on critical path
    double duration_total = 0.0;     //!< total pulse time (normalized)
    double duration_critical = 0.0;  //!< critical-path pulse time
};

/** Per-pass instrumentation recorded by PassManager::run. */
struct PassStat
{
    std::string pass;        //!< the pass's spec entry
    double wall_ms = 0.0;    //!< wall-clock time spent in the pass
    long long swap_delta = 0;  //!< change in SWAP count
    long long ops2q_delta = 0; //!< change in 2Q instruction count
};

/** Transpilation output: routed circuit, layouts, and metrics. */
struct TranspileResult
{
    Circuit routed;
    Layout initial_layout;
    Layout final_layout;
    TranspileMetrics metrics;
    std::vector<PassStat> pass_stats; //!< one entry per executed pass
    PropertySet properties;           //!< everything the passes published

    TranspileResult(Circuit c, Layout init, Layout fin)
        : routed(std::move(c)),
          initial_layout(std::move(init)),
          final_layout(std::move(fin))
    {
    }
};

/** Ordered, instrumented pipeline of transpiler passes. */
class PassManager
{
  public:
    PassManager() = default;

    /** Append a pass; returns *this for chaining. */
    PassManager &append(std::shared_ptr<const Pass> pass);

    /** Construct-and-append convenience. */
    template <typename PassT, typename... Args>
    PassManager &
    emplace(Args &&...args)
    {
        return append(
            std::make_shared<const PassT>(std::forward<Args>(args)...));
    }

    const std::vector<std::shared_ptr<const Pass>> &
    passes() const
    {
        return _passes;
    }

    bool empty() const { return _passes.empty(); }

    /**
     * The pipeline-spec string describing this manager, e.g.
     * "dense,stochastic-route=12,elide,basis=sqiswap".  Feeding it back
     * through passManagerFromSpec() reproduces the pipeline.
     */
    std::string spec() const;

    /**
     * Run the pipeline on one job against a device model.  The target
     * supplies the coupling graph, the default scoring basis, and the
     * per-edge/per-qubit calibration the noise-aware passes read.
     */
    TranspileResult run(const Circuit &circuit, const Target &target,
                        unsigned long long seed = kDefaultTranspileSeed)
        const;

    /**
     * Legacy device surface: run against a bare (graph, basis) pair.
     * Deprecated — wraps the pair into a uniform ideal-calibration
     * Target (bit-identical metrics); prefer the Target overload.
     */
    TranspileResult run(const Circuit &circuit, const CouplingGraph &graph,
                        unsigned long long seed = kDefaultTranspileSeed,
                        const BasisSpec &basis = BasisSpec{}) const;

  private:
    /** Shared run loop: instrument, implicit score, package results. */
    TranspileResult runContext(PassContext &ctx) const;

    std::vector<std::shared_ptr<const Pass>> _passes;
};

/** One unit of work for transpileBatch. */
struct TranspileJob
{
    Circuit circuit;
    CouplingGraph graph;
    unsigned long long seed = kDefaultTranspileSeed;
    BasisSpec basis{};

    TranspileJob(Circuit c, CouplingGraph g,
                 unsigned long long job_seed = kDefaultTranspileSeed,
                 BasisSpec b = BasisSpec{})
        : circuit(std::move(c)), graph(std::move(g)), seed(job_seed),
          basis(std::move(b))
    {
    }
};

/**
 * Transpile every job with the same pipeline, fanning the jobs across
 * `num_threads` workers (0 = std::thread::hardware_concurrency).
 * Results come back in job order and are bit-identical to running the
 * jobs serially: every job derives all randomness from its own seed.
 * The first exception thrown by any job is rethrown after all workers
 * finish.
 */
std::vector<TranspileResult>
transpileBatch(const std::vector<TranspileJob> &jobs, const PassManager &pm,
               unsigned num_threads = 0);

} // namespace snail

#endif // SNAILQC_TRANSPILER_PASS_MANAGER_HPP
