#include "transpiler/optimize.hpp"

#include <cmath>
#include <optional>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "linalg/su2.hpp"
#include "transpiler/passes.hpp"

namespace snail
{

namespace
{

/** True when m is the identity times a unit phase, within tol. */
bool
isIdentityUpToPhase(const Matrix &m, double tol)
{
    const std::size_t n = m.rows();
    const Complex phase = m(0, 0);
    if (std::abs(std::abs(phase) - 1.0) > tol) {
        return false;
    }
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < n; ++c) {
            const Complex want = r == c ? phase : Complex{0.0, 0.0};
            if (std::abs(m(r, c) - want) > tol) {
                return false;
            }
        }
    }
    return true;
}

/** Angle folded into (-pi, pi]; used to detect 2pi wraps. */
double
foldAngle(double theta)
{
    double t = std::remainder(theta, 2.0 * M_PI);
    return t;
}

/** Rebuild `circuit` from `ops`, preserving width and name. */
void
rebuild(Circuit &circuit, std::vector<Instruction> ops)
{
    Circuit fresh(circuit.numQubits(), circuit.name());
    for (auto &op : ops) {
        fresh.append(std::move(op));
    }
    circuit = std::move(fresh);
}

} // namespace

OptimizeStats
removeIdentities(Circuit &circuit, double tol)
{
    OptimizeStats stats;
    std::vector<Instruction> kept;
    kept.reserve(circuit.size());
    for (const auto &op : circuit.instructions()) {
        if (isIdentityUpToPhase(op.gate().matrix(), tol)) {
            ++stats.removed_identities;
        } else {
            kept.push_back(op);
        }
    }
    if (stats.removed_identities > 0) {
        rebuild(circuit, std::move(kept));
    }
    return stats;
}

OptimizeStats
fuseSingleQubitGates(Circuit &circuit, double tol)
{
    OptimizeStats stats;
    const int n = circuit.numQubits();

    // Per-qubit run of pending 1Q instructions awaiting a flush.
    std::vector<std::vector<Instruction>> pending(n);
    std::vector<Instruction> out;
    out.reserve(circuit.size());

    auto flush = [&](int q) {
        auto &run = pending[q];
        if (run.empty()) {
            return;
        }
        if (run.size() == 1) {
            // Leave singletons alone: 'h' should stay 'h'.
            out.push_back(run.front());
            run.clear();
            return;
        }
        Matrix product = Matrix::identity(2);
        for (const auto &op : run) {
            product = op.gate().matrix() * product;
        }
        if (isIdentityUpToPhase(product, tol)) {
            stats.fused_1q += run.size();
        } else {
            const ZyzAngles angles = zyzDecompose(product);
            out.push_back(Instruction(
                Gate(GateKind::U3,
                     {angles.theta, angles.phi, angles.lam}),
                {q}));
            stats.fused_1q += run.size() - 1;
        }
        run.clear();
    };

    for (const auto &op : circuit.instructions()) {
        if (op.numQubits() == 1) {
            pending[op.q0()].push_back(op);
        } else {
            flush(op.q0());
            flush(op.q1());
            out.push_back(op);
        }
    }
    for (int q = 0; q < n; ++q) {
        flush(q);
    }
    if (stats.fused_1q > 0) {
        rebuild(circuit, std::move(out));
    }
    return stats;
}

OptimizeStats
cancelTwoQubitGates(Circuit &circuit, double tol)
{
    OptimizeStats stats;
    std::vector<Instruction> out;
    out.reserve(circuit.size());

    // Index into `out` of the last op touching each qubit (-1 = none).
    std::vector<long> last_touch(circuit.numQubits(), -1);
    // Marks ops in `out` scheduled for deletion.
    std::vector<bool> dead;

    auto touch = [&](const Instruction &op) {
        for (Qubit q : op.qubits()) {
            last_touch[q] = static_cast<long>(out.size());
        }
        out.push_back(op);
        dead.push_back(false);
    };

    for (const auto &op : circuit.instructions()) {
        if (op.numQubits() != 2) {
            touch(op);
            continue;
        }
        const Qubit a = op.q0();
        const Qubit b = op.q1();
        const long k = last_touch[a];
        std::optional<Instruction> merged;
        bool cancel = false;

        if (k >= 0 && k == last_touch[b] && !dead[k] &&
            out[k].numQubits() == 2) {
            const Instruction &prev = out[k];
            const GateKind kind = op.gate().kind();
            const GateKind pkind = prev.gate().kind();
            const bool same_pair_ordered =
                prev.q0() == a && prev.q1() == b;
            const bool same_pair = same_pair_ordered ||
                                   (prev.q0() == b && prev.q1() == a);

            if (kind == pkind && same_pair) {
                switch (kind) {
                  case GateKind::CX:
                    cancel = same_pair_ordered;
                    break;
                  case GateKind::CZ:
                  case GateKind::Swap:
                    cancel = true; // symmetric gates
                    break;
                  case GateKind::CPhase:
                  case GateKind::RZZ: {
                    const double sum = op.gate().params()[0] +
                                       prev.gate().params()[0];
                    if (std::abs(foldAngle(sum)) <= tol) {
                        cancel = true;
                    } else {
                        merged = Instruction(
                            Gate(kind, {foldAngle(sum)}),
                            {prev.q0(), prev.q1()});
                    }
                    break;
                  }
                  default:
                    break;
                }
            }
        }

        if (cancel) {
            dead[k] = true;
            stats.cancelled_2q += 2;
            // Re-expose whatever preceded the cancelled pair: rebuild
            // the touch indices for a and b by scanning backwards.
            for (Qubit q : {a, b}) {
                last_touch[q] = -1;
                for (long i = static_cast<long>(out.size()) - 1; i >= 0;
                     --i) {
                    if (dead[i]) {
                        continue;
                    }
                    const auto &qs = out[i].qubits();
                    bool touches = false;
                    for (Qubit oq : qs) {
                        if (oq == q) {
                            touches = true;
                            break;
                        }
                    }
                    if (touches) {
                        last_touch[q] = i;
                        break;
                    }
                }
            }
        } else if (merged) {
            out[k] = *merged;
            ++stats.merged_2q;
            // last_touch already points at k for both qubits.
        } else {
            touch(op);
        }
    }

    if (stats.cancelled_2q + stats.merged_2q > 0) {
        std::vector<Instruction> kept;
        kept.reserve(out.size());
        for (std::size_t i = 0; i < out.size(); ++i) {
            if (!dead[i]) {
                kept.push_back(std::move(out[i]));
            }
        }
        rebuild(circuit, std::move(kept));
    }
    return stats;
}

OptimizeStats
optimizeCircuit(Circuit &circuit, int level, double tol)
{
    OptimizeStats total;
    if (level <= 0) {
        return total;
    }
    constexpr int kMaxRounds = 16;
    for (int round = 0; round < kMaxRounds; ++round) {
        OptimizeStats step;
        const OptimizeStats ident = removeIdentities(circuit, tol);
        step.removed_identities = ident.removed_identities;
        const OptimizeStats cancel = cancelTwoQubitGates(circuit, tol);
        step.cancelled_2q = cancel.cancelled_2q;
        step.merged_2q = cancel.merged_2q;
        if (level >= 2) {
            const OptimizeStats fuse = fuseSingleQubitGates(circuit, tol);
            step.fused_1q = fuse.fused_1q;
        }
        total.removed_identities += step.removed_identities;
        total.cancelled_2q += step.cancelled_2q;
        total.merged_2q += step.merged_2q;
        total.fused_1q += step.fused_1q;
        ++total.iterations;
        if (step.total() == 0) {
            break;
        }
    }
    return total;
}

std::string
OptimizePass::spec() const
{
    return _level == kDefaultLevel
               ? name()
               : name() + "=" + std::to_string(_level);
}

void
OptimizePass::run(PassContext &ctx) const
{
    const OptimizeStats stats = optimizeCircuit(ctx.circuit, _level);
    ctx.properties.increment("optimize_removed",
                             static_cast<double>(stats.total()));
}

} // namespace snail
