/**
 * @file
 * VF2-style perfect layout search.
 *
 * Attempts to embed the circuit's interaction graph (virtual qubits,
 * edges = pairs that share a 2Q gate) into the device coupling graph as
 * a subgraph, so that routing needs zero SWAPs.  The paper observes that
 * its transpiler "manages to find an initial mapping that often requires
 * zero SWAP gates for Corral 1,1" — this pass makes that observation an
 * explicit, testable guarantee whenever an embedding exists and is found
 * within the node budget.
 *
 * The search is a depth-first backtracking match in the VF2 family:
 * virtual qubits are ordered by connectivity to the already-matched
 * region (most-constrained first), candidates are pruned by degree and
 * by adjacency consistency with every matched neighbor.
 */

#ifndef SNAILQC_TRANSPILER_VF2_LAYOUT_HPP
#define SNAILQC_TRANSPILER_VF2_LAYOUT_HPP

#include <cstddef>
#include <optional>

#include "transpiler/layout.hpp"

namespace snail
{

/**
 * Search for a zero-SWAP embedding of `circuit`'s interaction graph in
 * `graph`.
 *
 * @param max_nodes backtracking budget (candidate placements tried);
 *        the search gives up and returns nullopt when exhausted.
 * @return a complete Layout under which every 2Q gate of the circuit
 *         acts on coupled qubits, or nullopt when no embedding was
 *         found (none exists, or the budget ran out).
 */
std::optional<Layout> vf2Layout(const Circuit &circuit,
                                const CouplingGraph &graph,
                                std::size_t max_nodes = 200000);

} // namespace snail

#endif // SNAILQC_TRANSPILER_VF2_LAYOUT_HPP
