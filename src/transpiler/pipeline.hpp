/**
 * @file
 * The full transpilation pipeline of the paper's Fig. 10:
 *
 *   circuit -> [layout] -> [routing, count SWAPs]
 *           -> [basis translation, count 2Q gates] -> metrics
 *
 * Collected metrics mirror the paper's four datasets: total SWAPs and
 * critical-path SWAPs after routing; total 2Q gates and critical-path 2Q
 * pulse duration after basis translation.
 */

#ifndef SNAILQC_TRANSPILER_PIPELINE_HPP
#define SNAILQC_TRANSPILER_PIPELINE_HPP

#include "transpiler/basis_translation.hpp"
#include "transpiler/routing.hpp"

namespace snail
{

/** Layout pass selection. */
enum class LayoutKind
{
    Trivial,
    Dense,
    Sabre,      //!< dense seed refined by forward/backward routing rounds
    Vf2OrDense, //!< zero-SWAP subgraph embedding, falling back to Dense
};

/** Routing pass selection. */
enum class RouterKind
{
    Basic,
    Stochastic,
    Sabre,
    Lookahead, //!< beam search over SWAP sequences (LookaheadSwap)
};

/** Pipeline configuration. */
struct TranspileOptions
{
    LayoutKind layout = LayoutKind::Dense;
    RouterKind router = RouterKind::Stochastic;
    int stochastic_trials = 20;
    BasisSpec basis{BasisKind::CNOT};
    unsigned long long seed = 0xC0DE5EEDULL;

    /**
     * Peephole optimization applied to the input circuit before layout
     * (see transpiler/optimize.hpp).  0 (the default) reproduces the
     * paper's flow, which transpiles the benchmarks verbatim.
     */
    int optimization_level = 0;

    /**
     * Drop trailing SWAPs after routing, folding them into the final
     * layout (see elideTrailingSwaps).  Off by default: the paper's
     * SWAP counts include them.
     */
    bool elide_trailing_swaps = false;
};

/** Everything the paper's data-collection flow records. */
struct TranspileMetrics
{
    std::size_t swaps_total = 0;     //!< SWAPs induced by routing
    double swaps_critical = 0.0;     //!< SWAPs on the critical path
    std::size_t ops_2q_pre = 0;      //!< 2Q ops before translation (incl SWAPs)
    std::size_t basis_2q_total = 0;  //!< native 2Q gates after translation
    double basis_2q_critical = 0.0;  //!< native 2Q gates on critical path
    double duration_total = 0.0;     //!< total pulse time (normalized)
    double duration_critical = 0.0;  //!< critical-path pulse time
};

/** Transpilation output: routed circuit, layouts, and metrics. */
struct TranspileResult
{
    Circuit routed;
    Layout initial_layout;
    Layout final_layout;
    TranspileMetrics metrics;

    TranspileResult(Circuit c, Layout init, Layout fin)
        : routed(std::move(c)),
          initial_layout(std::move(init)),
          final_layout(std::move(fin))
    {
    }
};

/** Run layout, routing, and basis-translation scoring. */
TranspileResult transpile(const Circuit &circuit, const CouplingGraph &graph,
                          const TranspileOptions &options);

} // namespace snail

#endif // SNAILQC_TRANSPILER_PIPELINE_HPP
