/**
 * @file
 * Backward-compatible front end to the pass-based transpiler.
 *
 * The transpiler is organized as a PassManager (pass_manager.hpp)
 * running named passes from the PassRegistry (pass_registry.hpp); the
 * pipeline of the paper's Fig. 10 data-collection flow,
 *
 *   circuit -> [layout] -> [routing, count SWAPs]
 *           -> [basis translation, count 2Q gates] -> metrics
 *
 * is just one composition: "dense,stochastic-route,basis=...,score".
 * This header keeps the original closed-enum configuration surface on
 * top of it: TranspileOptions selects among the built-in layout and
 * routing passes, and transpile() builds and runs the equivalent
 * PassManager (see passManagerFromOptions), returning the same
 * TranspileResult — with per-pass instrumentation now filled in.
 *
 * Collected metrics mirror the paper's four datasets: total SWAPs and
 * critical-path SWAPs after routing; total 2Q gates and critical-path
 * 2Q pulse duration after basis translation.  New code composing its
 * own pipelines should prefer passManagerFromSpec / PassManager
 * directly; batch workloads should use transpileBatch.
 */

#ifndef SNAILQC_TRANSPILER_PIPELINE_HPP
#define SNAILQC_TRANSPILER_PIPELINE_HPP

#include "transpiler/basis_translation.hpp"
#include "transpiler/pass_manager.hpp"
#include "transpiler/routing.hpp"

namespace snail
{

/** Layout pass selection. */
enum class LayoutKind
{
    Trivial,
    Dense,
    Sabre,      //!< dense seed refined by forward/backward routing rounds
    Vf2OrDense, //!< zero-SWAP subgraph embedding, falling back to Dense
};

/** Routing pass selection. */
enum class RouterKind
{
    Basic,
    Stochastic,
    Sabre,
    Lookahead, //!< beam search over SWAP sequences (LookaheadSwap)
};

/** Pipeline configuration. */
struct TranspileOptions
{
    LayoutKind layout = LayoutKind::Dense;
    RouterKind router = RouterKind::Stochastic;
    int stochastic_trials = 20;
    BasisSpec basis{BasisKind::CNOT};
    unsigned long long seed = kDefaultTranspileSeed;

    /**
     * Peephole optimization applied to the input circuit before layout
     * (see transpiler/optimize.hpp).  0 (the default) reproduces the
     * paper's flow, which transpiles the benchmarks verbatim.
     */
    int optimization_level = 0;

    /**
     * Drop trailing SWAPs after routing, folding them into the final
     * layout (see elideTrailingSwaps).  Off by default: the paper's
     * SWAP counts include them.
     */
    bool elide_trailing_swaps = false;
};

/**
 * The PassManager equivalent to an options struct: optimize (when
 * level > 0), the selected layout pass, the selected routing pass,
 * elide (when enabled), basis selection, and metric scoring.
 */
PassManager passManagerFromOptions(const TranspileOptions &options);

/**
 * Run layout, routing, and basis-translation scoring.
 *
 * @deprecated Thin shim over the Target device model: the
 * (graph, options.basis) pair is wrapped into a uniform
 * ideal-calibration Target (target/target.hpp), producing bit-for-bit
 * the PR-1 metrics.  New code should build a Target (or load one from
 * a JSON device file) and call PassManager::run(circuit, target, seed)
 * so the noise-aware passes can see real per-edge calibration.
 */
TranspileResult transpile(const Circuit &circuit, const CouplingGraph &graph,
                          const TranspileOptions &options);

/**
 * Batch variant of transpile(): every job runs the pipeline described
 * by `options` on its own worker, with its own per-job seed and basis
 * (the seed/basis fields of `options` are ignored).  Bit-identical to
 * the serial loop at any thread count.
 */
std::vector<TranspileResult>
transpileBatch(const std::vector<TranspileJob> &jobs,
               const TranspileOptions &options, unsigned num_threads = 0);

} // namespace snail

#endif // SNAILQC_TRANSPILER_PIPELINE_HPP
