/**
 * @file
 * Lookahead router: breadth-limited tree search over SWAP sequences
 * (the approach of Qiskit's LookaheadSwap).  Compared to SABRE's
 * single-step greedy scoring, the tree search can see that two SWAPs
 * which individually look neutral jointly unblock a front gate.
 *
 * Candidate SWAPs are scored incrementally: per beam node a
 * DeltaScorer holds one distance term per front/window gate, each
 * candidate's front sum is answered by delta (visiting only the terms
 * touching the swapped pair), and only the discounted window chain —
 * bounded by the constant `window` parameter, not the front width —
 * is replayed per candidate, preserving the exact floating-point
 * accumulation order (see docs/routing-internals.md).  Only the
 * `beam_width` survivors of each expansion level materialize a real
 * Layout copy.
 */

#include <algorithm>
#include <limits>
#include <vector>

#include "common/error.hpp"
#include "ir/dag.hpp"
#include "transpiler/delta_scorer.hpp"
#include "transpiler/routing.hpp"

namespace snail
{

namespace
{

/** One surviving SWAP sequence in the beam. */
struct SearchNode
{
    Layout layout;
    std::pair<int, int> first_swap{-1, -1};
    double cost = 0.0;

    SearchNode(Layout l) : layout(std::move(l)) {}
};

/** A scored candidate expansion, before its layout is materialized. */
struct Candidate
{
    std::size_t parent;             //!< index into the current beam
    int a;                          //!< candidate SWAP edge
    int b;
    std::pair<int, int> first_swap; //!< propagated first move
    double cost;
};

} // namespace

RoutingResult
LookaheadRouter::route(const Circuit &circuit, const CouplingGraph &graph,
                       const Layout &initial, Rng &rng) const
{
    SNAIL_REQUIRE(initial.isComplete(), "routing needs a complete layout");
    Circuit out(graph.numQubits(), circuit.name() + "-routed");
    out.reserve(circuit.size());
    Layout layout = initial;
    std::size_t swaps = 0;

    DependencyFrontier frontier(circuit);
    const auto &ops = circuit.instructions();
    int since_progress = 0;

    // Scratch reused across routing steps.
    std::vector<const Instruction *> front;
    std::vector<const Instruction *> window;
    std::vector<std::size_t> ahead;
    DependencyFrontier::LookaheadScratch ahead_scratch;
    std::vector<std::pair<int, int>> edges;
    std::vector<Candidate> expansion;
    DeltaScorer scorer(graph);

    // Cost of the scorer's current node with the hypothetical (a, b)
    // exchange applied (pass a == b for "no exchange"): the exact
    // integer front sum, then the discounted window terms replayed in
    // order.  The replay reproduces the old full re-sum's
    // floating-point accumulation step for step — the front partials
    // were all exact integer sums — so costs are bit-identical.
    auto evaluate = [&](int a, int b) {
        long long front_sum = scorer.frontSum();
        if (a != b) {
            front_sum += scorer.swapDelta(a, b).front;
        }
        double cost = static_cast<double>(front_sum);
        double discount = 0.5;
        for (const DeltaScorer::Term &t : scorer.extendedTerms()) {
            int dist = t.dist;
            if (a != b) {
                const int np0 = t.p0 == a ? b : t.p0 == b ? a : t.p0;
                const int np1 = t.p1 == a ? b : t.p1 == b ? a : t.p1;
                if (np0 != t.p0 || np1 != t.p1) {
                    dist = graph.distance(np0, np1);
                }
            }
            cost += discount * static_cast<double>(dist);
            discount *= 0.9;
        }
        return cost;
    };

    while (!frontier.done()) {
        // Drain everything executable under the current layout.
        bool progressed = true;
        while (progressed) {
            progressed = false;
            for (std::size_t idx : frontier.ready()) {
                const Instruction &op = ops[idx];
                if (op.numQubits() == 1) {
                    out.append(op.gate(), {layout.physical(op.q0())});
                    frontier.consume(idx);
                    progressed = true;
                    break;
                }
                const int p0 = layout.physical(op.q0());
                const int p1 = layout.physical(op.q1());
                if (graph.hasEdge(p0, p1)) {
                    out.append(op.gate(), {p0, p1});
                    frontier.consume(idx);
                    progressed = true;
                    break;
                }
            }
            if (progressed) {
                since_progress = 0;
            }
        }
        if (frontier.done()) {
            break;
        }

        // Safety valve: if the search thrashes without executing a
        // gate, deterministically walk the first blocked pair together
        // along a shortest path (the BasicRouter strategy).
        if (since_progress > 4 * graph.numQubits() + 32) {
            const Instruction *blocked = nullptr;
            for (std::size_t idx : frontier.ready()) {
                if (ops[idx].isTwoQubit()) {
                    blocked = &ops[idx];
                    break;
                }
            }
            SNAIL_ASSERT(blocked != nullptr, "no blocked 2Q gate");
            const std::vector<int> path =
                graph.shortestPath(layout.physical(blocked->q0()),
                                   layout.physical(blocked->q1()));
            for (std::size_t step = 0; step + 2 < path.size(); ++step) {
                out.swap(path[step], path[step + 1]);
                layout.swapPhysical(path[step], path[step + 1]);
                ++swaps;
            }
            since_progress = 0;
            continue;
        }

        front.clear();
        for (std::size_t idx : frontier.ready()) {
            front.push_back(&ops[idx]);
        }
        window.clear();
        frontier.lookahead(static_cast<std::size_t>(_window), ahead_scratch,
                           ahead);
        for (std::size_t idx : ahead) {
            if (ops[idx].isTwoQubit()) {
                window.push_back(&ops[idx]);
            }
        }

        // Candidate SWAPs at a node: device edges touching the mapped
        // operands of blocked front gates.
        auto candidates = [&](const Layout &probe) {
            edges.clear();
            for (const Instruction *op : front) {
                for (int pq : {probe.physical(op->q0()),
                               probe.physical(op->q1())}) {
                    for (int nb : graph.neighbors(pq)) {
                        edges.emplace_back(pq, nb);
                    }
                }
            }
        };

        // Beam search over SWAP sequences of length <= _searchDepth.
        std::vector<SearchNode> beam;
        beam.emplace_back(layout);
        scorer.rebuild(layout, front, window);
        beam.back().cost = evaluate(0, 0);
        SearchNode best = beam.front();
        bool best_is_root = true;

        for (int depth = 0; depth < _searchDepth; ++depth) {
            expansion.clear();
            for (std::size_t i = 0; i < beam.size(); ++i) {
                const SearchNode &node = beam[i];
                // One O(front + window) rebuild per node; every
                // candidate below is then scored by delta.
                scorer.rebuild(node.layout, front, window);
                candidates(node.layout);
                for (auto [a, b] : edges) {
                    const double cost =
                        evaluate(a, b) + 1e-9 * rng.uniform();
                    expansion.push_back(
                        {i, a, b,
                         node.first_swap.first < 0 ? std::make_pair(a, b)
                                                   : node.first_swap,
                         cost});
                }
            }
            if (expansion.empty()) {
                break;
            }
            std::sort(expansion.begin(), expansion.end(),
                      [](const Candidate &x, const Candidate &y) {
                          return x.cost < y.cost;
                      });
            if (static_cast<int>(expansion.size()) > _beamWidth) {
                expansion.erase(expansion.begin() + _beamWidth,
                                expansion.end());
            }
            // Materialize layouts for the survivors only.
            std::vector<SearchNode> next;
            next.reserve(expansion.size());
            for (const Candidate &cand : expansion) {
                SearchNode child(beam[cand.parent].layout);
                child.layout.swapPhysical(cand.a, cand.b);
                child.first_swap = cand.first_swap;
                child.cost = cand.cost;
                next.push_back(std::move(child));
            }
            beam = std::move(next);
            if (beam.front().cost < best.cost || best_is_root) {
                best = beam.front();
                best_is_root = false;
            }
        }

        SNAIL_ASSERT(best.first_swap.first >= 0,
                     "lookahead search found no swap");
        out.swap(best.first_swap.first, best.first_swap.second);
        layout.swapPhysical(best.first_swap.first, best.first_swap.second);
        ++swaps;
        ++since_progress;
    }

    RoutingResult result(std::move(out), initial, layout);
    result.swaps_added = swaps;
    return result;
}

} // namespace snail
