/**
 * @file
 * Incremental SWAP-candidate scoring kernel shared by the routers.
 *
 * Scoring a candidate SWAP used to re-sum device distances over the
 * whole front/extended gate set — O(front) work per candidate, inside
 * the innermost loop of every routing step of every sweep point.  A
 * DeltaScorer instead maintains one distance term per gate (its mapped
 * physical endpoints and their hop distance) plus the running sums,
 * and answers "how would the sums change under the hypothetical
 * exchange of physical qubits a and b?" by visiting only the terms
 * that touch a or b (a per-qubit touch index), which is O(1) in the
 * front size.
 *
 * Bit-identity invariant: hop distances are small integers, so every
 * partial sum the old code accumulated in a double was exact; the
 * scorer keeps the sums in 64-bit integers, which are *equal* (not
 * just close) to the old accumulation for any term order.  Routers
 * divide / weight / jitter the summed value exactly as before, so the
 * scores — and with them every routed circuit — are bit-identical to
 * the full re-sum.  docs/routing-internals.md derives this invariant;
 * tests/test_transpiler.cpp cross-checks it on randomized inputs.
 */

#ifndef SNAILQC_TRANSPILER_DELTA_SCORER_HPP
#define SNAILQC_TRANSPILER_DELTA_SCORER_HPP

#include <cstdint>
#include <vector>

#include "ir/instruction.hpp"
#include "topology/coupling_graph.hpp"
#include "transpiler/layout.hpp"

namespace snail
{

/** Per-gate distance terms with O(touching-gates) delta queries. */
class DeltaScorer
{
  public:
    /**
     * One gate's term: mapped physical endpoints in gate order
     * (p0 hosts the gate's first operand) and their hop distance.
     */
    struct Term
    {
        int p0;
        int p1;
        int dist;
    };

    /** Change of the front / extended distance sums under a swap. */
    struct Delta
    {
        long long front;
        long long extended;
    };

    /** The graph reference must outlive the scorer. */
    explicit DeltaScorer(const CouplingGraph &graph);

    /**
     * Recompute all terms for `front` and `extended` as mapped by
     * `layout`.  O(front + extended); call when the gate sets change.
     */
    void rebuild(const Layout &layout,
                 const std::vector<const Instruction *> &front,
                 const std::vector<const Instruction *> &extended);

    /** Sum of front-gate distances (exact; see file comment). */
    long long frontSum() const { return _frontSum; }

    /** Sum of extended-set distances. */
    long long extendedSum() const { return _extSum; }

    /**
     * Number of front terms at distance exactly 1 — i.e. gates whose
     * operands sit on a coupled pair.  Nonzero iff some front gate is
     * executable, which gives the stochastic trials an O(1)
     * "executable?" check.
     */
    int frontAdjacentCount() const { return _frontAdjacent; }

    /** Front terms in rebuild order (endpoints kept current). */
    const std::vector<Term> &frontTerms() const { return _front; }

    /** Extended-set terms in rebuild order. */
    const std::vector<Term> &extendedTerms() const { return _ext; }

    /**
     * Sum changes under the hypothetical exchange of physical qubits
     * a and b.  Visits only terms touching a or b.
     */
    Delta swapDelta(int a, int b) const;

    /**
     * Apply the exchange of a and b for real: remap endpoints, update
     * distances, sums, the adjacency count, and the touch index —
     * O(terms touching a or b).  Equivalent to rebuild() against the
     * swapped layout, without the O(front) pass.
     */
    void commitSwap(int a, int b);

  private:
    Term &term(std::int32_t code);
    const Term &term(std::int32_t code) const;
    void addTerm(const Layout &layout, const Instruction *op, bool extended);
    void addTouch(int qubit, std::int32_t code);

    const CouplingGraph &_graph;
    std::vector<Term> _front;
    std::vector<Term> _ext;
    long long _frontSum = 0;
    long long _extSum = 0;
    int _frontAdjacent = 0;
    /**
     * Touch index: per physical qubit, the terms with an endpoint
     * there, encoded (term_index << 1) | is_extended.  _touched lists
     * the qubits with entries so rebuild() clears in O(touched).
     */
    std::vector<std::vector<std::int32_t>> _touch;
    std::vector<int> _touched;
};

} // namespace snail

#endif // SNAILQC_TRANSPILER_DELTA_SCORER_HPP
