#include "transpiler/vf2_layout.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "ir/circuit.hpp"
#include "transpiler/passes.hpp"

namespace snail
{

namespace
{

/** Adjacency-matrix view of the circuit's interaction graph. */
struct InteractionGraph
{
    int n = 0;
    std::vector<std::vector<bool>> adj;
    std::vector<std::vector<int>> neighbors;
    std::vector<int> degree;

    explicit InteractionGraph(const Circuit &circuit)
        : n(circuit.numQubits()),
          adj(n, std::vector<bool>(n, false)),
          neighbors(n),
          degree(n, 0)
    {
        for (const auto &op : circuit.instructions()) {
            if (op.numQubits() != 2) {
                continue;
            }
            const int a = op.q0();
            const int b = op.q1();
            if (!adj[a][b]) {
                adj[a][b] = adj[b][a] = true;
                neighbors[a].push_back(b);
                neighbors[b].push_back(a);
                ++degree[a];
                ++degree[b];
            }
        }
    }
};

/** Depth-first VF2-style matcher with a node budget. */
class Matcher
{
  public:
    Matcher(const InteractionGraph &ig, const CouplingGraph &graph,
            std::size_t max_nodes)
        : _ig(ig),
          _graph(graph),
          _budget(max_nodes),
          _v2p(ig.n, -1),
          _used(graph.numQubits(), false)
    {
        buildOrder();
    }

    bool
    run()
    {
        return place(0);
    }

    const std::vector<int> &v2p() const { return _v2p; }

  private:
    /**
     * Most-constrained-first ordering: highest-degree seed, then always
     * the unplaced vertex with the most already-placed neighbors
     * (ties: higher interaction degree).
     */
    void
    buildOrder()
    {
        const int n = _ig.n;
        std::vector<bool> chosen(n, false);
        std::vector<int> placed_neighbors(n, 0);
        for (int step = 0; step < n; ++step) {
            int best = -1;
            for (int v = 0; v < n; ++v) {
                if (chosen[v]) {
                    continue;
                }
                if (best < 0 ||
                    placed_neighbors[v] > placed_neighbors[best] ||
                    (placed_neighbors[v] == placed_neighbors[best] &&
                     _ig.degree[v] > _ig.degree[best])) {
                    best = v;
                }
            }
            chosen[best] = true;
            _order.push_back(best);
            for (int nb : _ig.neighbors[best]) {
                ++placed_neighbors[nb];
            }
        }
    }

    /** Try to place _order[depth]; true when all vertices placed. */
    bool
    place(std::size_t depth)
    {
        if (depth == _order.size()) {
            return true;
        }
        const int v = _order[depth];

        // Candidate physical homes: neighbors of an already-placed
        // interaction neighbor when one exists (connectivity pruning),
        // otherwise every unused physical qubit.
        std::vector<int> candidates;
        int anchor = -1;
        for (int nb : _ig.neighbors[v]) {
            if (_v2p[nb] >= 0) {
                anchor = _v2p[nb];
                break;
            }
        }
        if (anchor >= 0) {
            candidates = _graph.neighbors(anchor);
        } else {
            candidates.reserve(_used.size());
            for (int p = 0; p < _graph.numQubits(); ++p) {
                candidates.push_back(p);
            }
        }

        for (int p : candidates) {
            if (_used[p]) {
                continue;
            }
            if (_budget == 0) {
                return false;
            }
            --_budget;
            if (_graph.degree(p) < _ig.degree[v]) {
                continue;
            }
            bool consistent = true;
            for (int nb : _ig.neighbors[v]) {
                if (_v2p[nb] >= 0 && !_graph.hasEdge(p, _v2p[nb])) {
                    consistent = false;
                    break;
                }
            }
            if (!consistent) {
                continue;
            }
            _v2p[v] = p;
            _used[p] = true;
            if (place(depth + 1)) {
                return true;
            }
            _v2p[v] = -1;
            _used[p] = false;
            if (_budget == 0) {
                return false;
            }
        }
        return false;
    }

    const InteractionGraph &_ig;
    const CouplingGraph &_graph;
    std::size_t _budget;
    std::vector<int> _v2p;
    std::vector<bool> _used;
    std::vector<int> _order;
};

} // namespace

std::optional<Layout>
vf2Layout(const Circuit &circuit, const CouplingGraph &graph,
          std::size_t max_nodes)
{
    SNAIL_REQUIRE(circuit.numQubits() <= graph.numQubits(),
                  "circuit is wider (" << circuit.numQubits()
                                       << ") than the device ("
                                       << graph.numQubits() << ")");
    const InteractionGraph ig(circuit);

    // Quick necessary-condition rejections before the search.
    if (static_cast<std::size_t>(
            std::count_if(ig.degree.begin(), ig.degree.end(),
                          [](int d) { return d > 0; })) >
        static_cast<std::size_t>(graph.numQubits())) {
        return std::nullopt;
    }
    const int max_virtual_degree =
        ig.degree.empty() ? 0
                          : *std::max_element(ig.degree.begin(),
                                              ig.degree.end());
    int max_physical_degree = 0;
    for (int p = 0; p < graph.numQubits(); ++p) {
        max_physical_degree = std::max(max_physical_degree,
                                       graph.degree(p));
    }
    if (max_virtual_degree > max_physical_degree) {
        return std::nullopt;
    }

    Matcher matcher(ig, graph, max_nodes);
    if (!matcher.run()) {
        return std::nullopt;
    }

    Layout layout(circuit.numQubits(), graph.numQubits());
    for (int v = 0; v < circuit.numQubits(); ++v) {
        layout.assign(v, matcher.v2p()[v]);
    }
    SNAIL_ASSERT(layout.isComplete(), "vf2 produced a partial layout");
    return layout;
}

void
Vf2LayoutPass::run(PassContext &ctx) const
{
    SNAIL_REQUIRE(!ctx.final_layout,
                  name() << ": circuit is already routed; layout passes "
                            "must run before routing");
    if (auto perfect = vf2Layout(ctx.circuit, ctx.graph, _maxNodes)) {
        ctx.initial_layout = std::move(*perfect);
        ctx.properties.set("vf2_embedded", 1.0);
    } else {
        SNAIL_REQUIRE(_fallbackDense,
                      "vf2-strict: no zero-SWAP embedding of "
                          << ctx.circuit.name() << " in "
                          << ctx.graph.name());
        ctx.properties.set("vf2_embedded", 0.0);
        ctx.initial_layout = denseLayout(ctx.circuit, ctx.graph);
    }
}

} // namespace snail
