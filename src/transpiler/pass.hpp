/**
 * @file
 * The transpiler's composable pass abstraction.
 *
 * A Pass is a named, stateless-at-run-time transformation of a
 * PassContext: the circuit being compiled, the Target device model
 * (coupling graph plus per-edge and per-qubit calibration — see
 * target/target.hpp), the virtual-to-physical layouts, the scoring
 * basis, the job seed, and a string-keyed PropertySet where passes
 * publish metrics.  Passes are assembled into pipelines by the
 * PassManager (pass_manager.hpp) and looked up by name through the
 * PassRegistry (pass_registry.hpp).
 *
 * Determinism contract: a pass must derive any randomness it needs from
 * the context's job seed (rngFor / Rng::stream), never from global
 * state, so that a pipeline's output depends only on (circuit, target,
 * seed, pipeline spec) — independent of what ran before it and of how
 * many worker threads a batch uses.
 */

#ifndef SNAILQC_TRANSPILER_PASS_HPP
#define SNAILQC_TRANSPILER_PASS_HPP

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "common/rng.hpp"
#include "ir/circuit.hpp"
#include "target/target.hpp"
#include "topology/coupling_graph.hpp"
#include "transpiler/layout.hpp"
#include "weyl/basis_counts.hpp"

namespace snail
{

/** String-keyed metric store shared by the passes of one pipeline run. */
class PropertySet
{
  public:
    /** Set (or overwrite) a metric. */
    void set(const std::string &key, double value);

    /** Add `delta` to a metric, creating it at zero first. */
    void increment(const std::string &key, double delta = 1.0);

    /** Read a metric, or `fallback` when it was never set. */
    double get(const std::string &key, double fallback = 0.0) const;

    /** True when the metric exists. */
    bool contains(const std::string &key) const;

    /** All metrics, ordered by key. */
    const std::map<std::string, double> &all() const { return _values; }

  private:
    std::map<std::string, double> _values;
};

/** Everything a pass may read or transform during a pipeline run. */
struct PassContext
{
    /**
     * Compile against a device model.  The target must outlive the
     * context (PassManager::run keeps it alive for the duration).
     */
    PassContext(Circuit c, const Target &t, unsigned long long job_seed)
        : circuit(std::move(c)), _target(&t), graph(t.graph()),
          basis(t.defaultBasis()), seed(job_seed), rng(job_seed)
    {
    }

    /**
     * Legacy device surface: wraps (graph, basis) into an owned uniform
     * Target with ideal calibration.  Deprecated — prefer the Target
     * constructor; this shim exists so PR-1-era pipelines keep
     * producing bit-identical results.
     */
    PassContext(Circuit c, const CouplingGraph &g, BasisSpec b,
                unsigned long long job_seed)
        : circuit(std::move(c)),
          _owned(std::make_shared<Target>(Target::uniform(g, b))),
          _target(_owned.get()), graph(_target->graph()),
          basis(std::move(b)), seed(job_seed), rng(job_seed)
    {
    }

    Circuit circuit; //!< current circuit (passes transform it)

  private:
    std::shared_ptr<const Target> _owned; //!< set by the legacy ctor
    const Target *_target;                //!< never null

  public:
    /** The device model: graph plus per-edge/per-qubit calibration. */
    const Target &target() const { return *_target; }

    const CouplingGraph &graph; //!< target's coupling graph (shorthand)
    BasisSpec basis;            //!< basis used by uniform scoring
    unsigned long long seed;    //!< job seed: the root of all randomness
    Rng rng;                    //!< shared stream for ad-hoc user passes

    /** Set by layout passes; routing starts from it (trivial if unset). */
    std::optional<Layout> initial_layout;
    /** Set by routing passes; tracks the post-circuit permutation. */
    std::optional<Layout> final_layout;

    /**
     * Set by "basis=auto": scoring should use the target's per-edge
     * bases (heterogeneous translation) instead of the single `basis`.
     */
    bool score_target_bases = false;

    PropertySet properties; //!< metrics published by the passes

    /**
     * A fresh generator derived from the job seed and a pass-specific
     * salt.  Using a per-pass derivation (instead of drawing from the
     * shared `rng`) keeps each pass's stream independent of pipeline
     * composition, which is what makes batch runs bit-identical to
     * serial ones.
     */
    Rng
    rngFor(unsigned long long salt) const
    {
        return Rng(seed ^ salt);
    }
};

/** Interface implemented by every transpiler pass. */
class Pass
{
  public:
    virtual ~Pass() = default;

    /** Registry name, e.g. "stochastic-route". */
    virtual std::string name() const = 0;

    /**
     * Round-trippable pipeline-spec entry, e.g. "stochastic-route=12".
     * Defaults to name(); override when the pass carries an argument.
     */
    virtual std::string
    spec() const
    {
        return name();
    }

    /**
     * Transform the context.  Must be safe to call concurrently on
     * distinct contexts (pass objects are shared across batch workers).
     */
    virtual void run(PassContext &ctx) const = 0;
};

} // namespace snail

#endif // SNAILQC_TRANSPILER_PASS_HPP
