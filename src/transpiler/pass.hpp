/**
 * @file
 * The transpiler's composable pass abstraction.
 *
 * A Pass is a named, stateless-at-run-time transformation of a
 * PassContext: the circuit being compiled, the device coupling graph,
 * the virtual-to-physical layouts, the native basis, the job seed, and
 * a string-keyed PropertySet where passes publish metrics.  Passes are
 * assembled into pipelines by the PassManager (pass_manager.hpp) and
 * looked up by name through the PassRegistry (pass_registry.hpp).
 *
 * Determinism contract: a pass must derive any randomness it needs from
 * the context's job seed (rngFor / Rng::stream), never from global
 * state, so that a pipeline's output depends only on (circuit, graph,
 * seed, pipeline spec) — independent of what ran before it and of how
 * many worker threads a batch uses.
 */

#ifndef SNAILQC_TRANSPILER_PASS_HPP
#define SNAILQC_TRANSPILER_PASS_HPP

#include <map>
#include <optional>
#include <string>

#include "common/rng.hpp"
#include "ir/circuit.hpp"
#include "topology/coupling_graph.hpp"
#include "transpiler/layout.hpp"
#include "weyl/basis_counts.hpp"

namespace snail
{

/** String-keyed metric store shared by the passes of one pipeline run. */
class PropertySet
{
  public:
    /** Set (or overwrite) a metric. */
    void set(const std::string &key, double value);

    /** Add `delta` to a metric, creating it at zero first. */
    void increment(const std::string &key, double delta = 1.0);

    /** Read a metric, or `fallback` when it was never set. */
    double get(const std::string &key, double fallback = 0.0) const;

    /** True when the metric exists. */
    bool contains(const std::string &key) const;

    /** All metrics, ordered by key. */
    const std::map<std::string, double> &all() const { return _values; }

  private:
    std::map<std::string, double> _values;
};

/** Everything a pass may read or transform during a pipeline run. */
struct PassContext
{
    PassContext(Circuit c, const CouplingGraph &g, BasisSpec b,
                unsigned long long job_seed)
        : circuit(std::move(c)), graph(g), basis(std::move(b)),
          seed(job_seed), rng(job_seed)
    {
    }

    Circuit circuit;            //!< current circuit (passes transform it)
    const CouplingGraph &graph; //!< target device
    BasisSpec basis;            //!< native basis used for scoring
    unsigned long long seed;    //!< job seed: the root of all randomness
    Rng rng;                    //!< shared stream for ad-hoc user passes

    /** Set by layout passes; routing starts from it (trivial if unset). */
    std::optional<Layout> initial_layout;
    /** Set by routing passes; tracks the post-circuit permutation. */
    std::optional<Layout> final_layout;

    PropertySet properties; //!< metrics published by the passes

    /**
     * A fresh generator derived from the job seed and a pass-specific
     * salt.  Using a per-pass derivation (instead of drawing from the
     * shared `rng`) keeps each pass's stream independent of pipeline
     * composition, which is what makes batch runs bit-identical to
     * serial ones.
     */
    Rng
    rngFor(unsigned long long salt) const
    {
        return Rng(seed ^ salt);
    }
};

/** Interface implemented by every transpiler pass. */
class Pass
{
  public:
    virtual ~Pass() = default;

    /** Registry name, e.g. "stochastic-route". */
    virtual std::string name() const = 0;

    /**
     * Round-trippable pipeline-spec entry, e.g. "stochastic-route=12".
     * Defaults to name(); override when the pass carries an argument.
     */
    virtual std::string
    spec() const
    {
        return name();
    }

    /**
     * Transform the context.  Must be safe to call concurrently on
     * distinct contexts (pass objects are shared across batch workers).
     */
    virtual void run(PassContext &ctx) const = 0;
};

} // namespace snail

#endif // SNAILQC_TRANSPILER_PASS_HPP
