/**
 * @file
 * Registry of named transpiler passes and the pipeline-spec parser
 * (pass_registry.hpp).  Built-ins are registered on first lookup.
 */

#include "transpiler/pass_registry.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <map>
#include <mutex>
#include <sstream>

#include "common/error.hpp"
#include "transpiler/passes.hpp"

namespace snail
{

namespace
{

std::mutex &
registryMutex()
{
    static std::mutex mutex;
    return mutex;
}

/** Reject a value outside [lo, hi] with a typed error. */
template <typename T>
void
requireInRange(const std::string &pass, const std::string &arg, T value,
               T lo, T hi)
{
    // Negated form so NaN lands here too, should one ever get past the
    // callers' syntax guards.
    if (!(value >= lo && value <= hi)) {
        std::ostringstream oss;
        oss << "outside [" << lo << ", " << hi << "]";
        throw PassArgumentError(pass, arg, oss.str());
    }
}

/**
 * Parse an integral spec argument.  std::from_chars is
 * locale-independent (std::stoi honors LC_NUMERIC groupings) and the
 * failure is a typed PassArgumentError instead of a bare
 * std::invalid_argument out of the std:: parser.
 */
int
intArg(const std::string &pass, const std::string &arg, int lo, int hi)
{
    int value = 0;
    const char *begin = arg.c_str();
    const char *end = begin + arg.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (arg.empty() || ec != std::errc{} || ptr != end) {
        throw PassArgumentError(pass, arg, "malformed integer");
    }
    requireInRange(pass, arg, value, lo, hi);
    return value;
}

/** Reject a spec argument for passes that take none. */
void
noArg(const std::string &pass, const std::string &arg)
{
    SNAIL_REQUIRE(arg.empty(),
                  pass << " takes no argument (got '" << arg << "')");
}

/**
 * Parse a floating-point spec argument.  Locale-independent
 * (std::stod parses "1.5" as 1 under a comma-decimal LC_NUMERIC) and
 * typed like intArg; the syntax guard rejects the non-spec forms
 * from_chars would accept ("inf", "nan", "-inf", "-nan").
 */
double
doubleArg(const std::string &pass, const std::string &arg, double lo,
          double hi)
{
    const char *begin = arg.c_str();
    const char *end = begin + arg.size();
    // After an optional sign the spec requires a digit or '.', which
    // rejects the non-spec forms from_chars would accept ("inf",
    // "nan", and their negated spellings) as malformed.
    const std::size_t first = (!arg.empty() && arg[0] == '-') ? 1 : 0;
    if (first >= arg.size() ||
        (arg[first] != '.' &&
         !std::isdigit(static_cast<unsigned char>(arg[first])))) {
        throw PassArgumentError(pass, arg, "malformed number");
    }
    double value = 0.0;
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || ptr != end) {
        throw PassArgumentError(pass, arg, "malformed number");
    }
    requireInRange(pass, arg, value, lo, hi);
    return value;
}

void
registerBuiltins(std::map<std::string, PassRegistration> &rows)
{
    auto add = [&rows](const char *name, const char *summary,
                       const char *arg_help, PassFactory factory) {
        rows[name] = PassRegistration{name, summary, arg_help,
                                      std::move(factory)};
    };

    // Layout.
    add("trivial", "identity placement (Qiskit TrivialLayout)", "",
        [](const std::string &arg) -> std::shared_ptr<const Pass> {
            noArg("trivial", arg);
            return std::make_shared<TrivialLayoutPass>();
        });
    add("dense", "densest-subgraph placement (Qiskit DenseLayout)", "",
        [](const std::string &arg) -> std::shared_ptr<const Pass> {
            noArg("dense", arg);
            return std::make_shared<DenseLayoutPass>();
        });
    add("sabre-layout",
        "dense seed refined by forward/backward routing rounds",
        "iterations (default 2)",
        [](const std::string &arg) -> std::shared_ptr<const Pass> {
            const int iters =
                arg.empty() ? SabreLayoutPass::kDefaultIterations
                            : intArg("sabre-layout", arg, 1, 64);
            return std::make_shared<SabreLayoutPass>(iters);
        });
    add("vf2", "zero-SWAP subgraph embedding, dense fallback", "",
        [](const std::string &arg) -> std::shared_ptr<const Pass> {
            noArg("vf2", arg);
            return std::make_shared<Vf2LayoutPass>(true);
        });
    add("vf2-strict", "zero-SWAP subgraph embedding, error on failure", "",
        [](const std::string &arg) -> std::shared_ptr<const Pass> {
            noArg("vf2-strict", arg);
            return std::make_shared<Vf2LayoutPass>(false);
        });

    // Routing.
    add("basic-route", "greedy shortest-path router", "",
        [](const std::string &arg) -> std::shared_ptr<const Pass> {
            noArg("basic-route", arg);
            return std::make_shared<BasicRoutePass>();
        });
    add("stochastic-route",
        "randomized-trial router (Qiskit StochasticSwap, paper default)",
        "trials[xthreads] (default 20x1; output identical at any "
        "thread count)",
        [](const std::string &arg) -> std::shared_ptr<const Pass> {
            if (arg.empty()) {
                return std::make_shared<StochasticRoutePass>();
            }
            // "trials" or "trialsxthreads", e.g. "10" / "10x4".
            const std::size_t split = arg.find('x');
            const std::string trials_text = arg.substr(0, split);
            const int trials =
                intArg("stochastic-route", trials_text, 1, 10000);
            unsigned threads = StochasticRoutePass::kDefaultThreads;
            if (split != std::string::npos) {
                threads = static_cast<unsigned>(intArg(
                    "stochastic-route", arg.substr(split + 1), 1, 256));
            }
            return std::make_shared<StochasticRoutePass>(trials, threads);
        });
    add("sabre-route", "SABRE lookahead-heuristic router", "",
        [](const std::string &arg) -> std::shared_ptr<const Pass> {
            noArg("sabre-route", arg);
            return std::make_shared<SabreRoutePass>();
        });
    add("lookahead-route", "beam-search router (Qiskit LookaheadSwap)", "",
        [](const std::string &arg) -> std::shared_ptr<const Pass> {
            noArg("lookahead-route", arg);
            return std::make_shared<LookaheadRoutePass>();
        });
    add("noise-route",
        "fidelity-aware SABRE router penalizing SWAPs on low-fidelity "
        "edges",
        "penalty weight >= 0 (default 1)",
        [](const std::string &arg) -> std::shared_ptr<const Pass> {
            const double weight =
                arg.empty() ? NoiseRoutePass::kDefaultWeight
                            : doubleArg("noise-route", arg, 0.0, 1e6);
            return std::make_shared<NoiseRoutePass>(weight);
        });

    // Rewrite.
    add("optimize", "peephole optimization to a fixpoint",
        "level 0-2 (default 2)",
        [](const std::string &arg) -> std::shared_ptr<const Pass> {
            const int level = arg.empty()
                                  ? OptimizePass::kDefaultLevel
                                  : intArg("optimize", arg, 0, 2);
            return std::make_shared<OptimizePass>(level);
        });
    add("elide", "drop trailing SWAPs, folding them into the final layout",
        "",
        [](const std::string &arg) -> std::shared_ptr<const Pass> {
            noArg("elide", arg);
            return std::make_shared<ElideSwapsPass>();
        });

    // Scoring.
    add("basis",
        "select the scoring basis; auto = the target's per-edge bases",
        "cx|sqiswap|iswap|syc|auto (required)",
        [](const std::string &arg) -> std::shared_ptr<const Pass> {
            SNAIL_REQUIRE(!arg.empty(),
                          "basis needs an argument, e.g. basis=sqiswap");
            if (arg == "auto") {
                return std::make_shared<SetBasisPass>(
                    SetBasisPass::FromTarget{});
            }
            return std::make_shared<SetBasisPass>(parseBasisSpec(arg));
        });
    add("score", "publish the paper's Fig. 10 metrics", "",
        [](const std::string &arg) -> std::shared_ptr<const Pass> {
            noArg("score", arg);
            return std::make_shared<ScoreMetricsPass>();
        });
    add("score-fidelity",
        "predicted circuit fidelity from the target's calibration "
        "(Eq. 12/13)",
        "",
        [](const std::string &arg) -> std::shared_ptr<const Pass> {
            noArg("score-fidelity", arg);
            return std::make_shared<ScoreFidelityPass>();
        });
}

std::map<std::string, PassRegistration> &
registryRows()
{
    static std::map<std::string, PassRegistration> rows = [] {
        std::map<std::string, PassRegistration> builtins;
        registerBuiltins(builtins);
        return builtins;
    }();
    return rows;
}

/** Strip leading/trailing whitespace. */
std::string
trimmed(const std::string &text)
{
    const auto begin = text.find_first_not_of(" \t\r\n");
    if (begin == std::string::npos) {
        return {};
    }
    const auto end = text.find_last_not_of(" \t\r\n");
    return text.substr(begin, end - begin + 1);
}

} // namespace

void
registerPass(PassRegistration registration)
{
    SNAIL_REQUIRE(!registration.name.empty(),
                  "registerPass: empty pass name");
    SNAIL_REQUIRE(registration.factory != nullptr,
                  "registerPass: missing factory for "
                      << registration.name);
    std::lock_guard<std::mutex> lock(registryMutex());
    registryRows()[registration.name] = std::move(registration);
}

std::vector<PassRegistration>
registeredPasses()
{
    std::lock_guard<std::mutex> lock(registryMutex());
    std::vector<PassRegistration> rows;
    rows.reserve(registryRows().size());
    for (const auto &[name, row] : registryRows()) {
        rows.push_back(row);
    }
    return rows; // std::map iteration is already name-sorted
}

std::shared_ptr<const Pass>
makeRegisteredPass(const std::string &entry)
{
    const std::string cleaned = trimmed(entry);
    SNAIL_REQUIRE(!cleaned.empty(), "empty pipeline-spec entry");
    const auto eq = cleaned.find('=');
    const std::string name = trimmed(cleaned.substr(0, eq));
    const std::string arg =
        eq == std::string::npos ? "" : trimmed(cleaned.substr(eq + 1));

    PassFactory factory;
    {
        std::lock_guard<std::mutex> lock(registryMutex());
        const auto &rows = registryRows();
        const auto it = rows.find(name);
        if (it == rows.end()) {
            std::string known;
            for (const auto &[known_name, row] : rows) {
                known += known.empty() ? known_name : ", " + known_name;
            }
            SNAIL_THROW("unknown pass '" << name << "' (known: " << known
                                         << ")");
        }
        factory = it->second.factory;
    }
    return factory(arg);
}

PassManager
passManagerFromSpec(const std::string &spec)
{
    PassManager pm;
    std::size_t start = 0;
    while (start <= spec.size()) {
        const auto comma = spec.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? spec.size() : comma;
        pm.append(makeRegisteredPass(spec.substr(start, end - start)));
        if (comma == std::string::npos) {
            break;
        }
        start = comma + 1;
    }
    return pm;
}

} // namespace snail
