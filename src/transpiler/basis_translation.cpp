#include "transpiler/basis_translation.hpp"

#include <unordered_map>

#include "common/error.hpp"
#include "decomp/synthesis.hpp"
#include "transpiler/hetero_basis.hpp"
#include "transpiler/passes.hpp"
#include "weyl/coordinates.hpp"

namespace snail
{

int
cachedBasisCount(std::unordered_map<std::string, int> &cache,
                 const BasisSpec &basis, const Gate &gate)
{
    if (!gate.cacheable()) {
        return basisCount(basis, weylCoordinates(gate.matrix()));
    }
    const std::string key = basis.name() +
                            (basis.optimistic_syc ? "~opt|" : "|") +
                            gate.cacheKey();
    auto it = cache.find(key);
    if (it == cache.end()) {
        it = cache.emplace(key, basisCount(basis, weylCoordinates(gate)))
                 .first;
    }
    return it->second;
}

std::vector<int>
basisCountsPerInstruction(const Circuit &circuit, const BasisSpec &basis)
{
    std::unordered_map<std::string, int> cache;
    std::vector<int> counts;
    counts.reserve(circuit.size());
    for (const auto &op : circuit.instructions()) {
        counts.push_back(op.isTwoQubit()
                             ? cachedBasisCount(cache, basis, op.gate())
                             : 0);
    }
    return counts;
}

TranslationStats
translationStats(const Circuit &circuit, const BasisSpec &basis)
{
    const std::vector<int> counts =
        basisCountsPerInstruction(circuit, basis);
    const double pulse = basis.pulseDuration();

    TranslationStats stats;
    for (int c : counts) {
        stats.total_2q += static_cast<std::size_t>(c);
    }
    stats.total_duration = static_cast<double>(stats.total_2q) * pulse;

    // Critical paths with per-instruction weights; a k-count operation
    // occupies its pair for k sequential native pulses.
    std::size_t index = 0;
    stats.critical_2q = circuit.weightedCriticalPath(
        [&counts, &index](const Instruction &) {
            return static_cast<double>(counts[index++]);
        });
    index = 0;
    stats.critical_duration = circuit.weightedCriticalPath(
        [&counts, &index, pulse](const Instruction &) {
            return static_cast<double>(counts[index++]) * pulse;
        });
    return stats;
}

Circuit
expandToBasis(const Circuit &circuit, const BasisSpec &basis)
{
    Circuit out(circuit.numQubits(), circuit.name() + "-" + basis.name());
    for (const auto &op : circuit.instructions()) {
        if (!op.isTwoQubit()) {
            out.append(op);
            continue;
        }
        const SynthesisResult synth =
            synthesizeInBasis(op.gate().matrix(), basis);
        // Splice the 2-qubit synthesized circuit onto the operands: its
        // qubit 1 (the high tensor factor) is the instruction's first
        // operand.
        for (const auto &inner : synth.circuit.instructions()) {
            std::vector<Qubit> mapped;
            for (Qubit q : inner.qubits()) {
                mapped.push_back(q == 1 ? op.q0() : op.q1());
            }
            out.append(inner.gate(), mapped);
        }
    }
    return out;
}

std::string
SetBasisPass::spec() const
{
    return name() + "=" + (_fromTarget ? "auto" : _basis.name());
}

void
SetBasisPass::run(PassContext &ctx) const
{
    if (_fromTarget) {
        ctx.basis = ctx.target().defaultBasis();
        ctx.score_target_bases = true;
    } else {
        ctx.basis = _basis;
        ctx.score_target_bases = false;
    }
}

void
ScoreMetricsPass::run(PassContext &ctx) const
{
    PropertySet &props = ctx.properties;
    props.set("swaps_total",
              static_cast<double>(ctx.circuit.countKind(GateKind::Swap)));
    props.set("swaps_critical",
              ctx.circuit.weightedCriticalPath([](const Instruction &op) {
                  return op.isSwap() ? 1.0 : 0.0;
              }));
    props.set("ops_2q_pre",
              static_cast<double>(ctx.circuit.countTwoQubit()));

    // "basis=auto" on a routed circuit scores with the target's
    // per-edge bases (heterogeneous translation); everywhere else the
    // single scoring basis applies.  An unrouted circuit cannot map 2Q
    // ops onto specific couplings, so auto falls back to the uniform
    // default basis there (identical on uniform targets anyway).
    TranslationStats stats;
    const bool hetero = ctx.score_target_bases && ctx.final_layout &&
                        ctx.target().isHeterogeneous();
    if (hetero) {
        const HeterogeneousBasis bases = ctx.target().heterogeneousBasis();
        stats = heterogeneousTranslationStats(ctx.circuit, bases);
        props.set("scored_hetero", 1.0);
    } else {
        stats = translationStats(ctx.circuit, ctx.basis);
    }
    props.set("basis_2q_total", static_cast<double>(stats.total_2q));
    props.set("basis_2q_critical", stats.critical_2q);
    props.set("duration_total", stats.total_duration);
    props.set("duration_critical", stats.critical_duration);
    // Record which basis these numbers belong to (BasisKind as index),
    // so consumers report the basis scoring actually used rather than
    // guessing from the pipeline spec.
    props.set("scored_basis",
              static_cast<double>(static_cast<int>(ctx.basis.kind)));
    props.set("scored", 1.0);
}

} // namespace snail
