#include "transpiler/basis_translation.hpp"

#include <unordered_map>

#include "common/error.hpp"
#include "decomp/synthesis.hpp"
#include "transpiler/passes.hpp"
#include "weyl/coordinates.hpp"

namespace snail
{

std::vector<int>
basisCountsPerInstruction(const Circuit &circuit, const BasisSpec &basis)
{
    std::unordered_map<std::string, int> cache;
    std::vector<int> counts;
    counts.reserve(circuit.size());
    for (const auto &op : circuit.instructions()) {
        if (!op.isTwoQubit()) {
            counts.push_back(0);
            continue;
        }
        const Gate &g = op.gate();
        if (g.cacheable()) {
            const std::string key = g.cacheKey();
            auto it = cache.find(key);
            if (it == cache.end()) {
                it = cache.emplace(key,
                                   basisCount(basis, weylCoordinates(g)))
                         .first;
            }
            counts.push_back(it->second);
        } else {
            counts.push_back(basisCount(basis, weylCoordinates(g.matrix())));
        }
    }
    return counts;
}

TranslationStats
translationStats(const Circuit &circuit, const BasisSpec &basis)
{
    const std::vector<int> counts =
        basisCountsPerInstruction(circuit, basis);
    const double pulse = basis.pulseDuration();

    TranslationStats stats;
    for (int c : counts) {
        stats.total_2q += static_cast<std::size_t>(c);
    }
    stats.total_duration = static_cast<double>(stats.total_2q) * pulse;

    // Critical paths with per-instruction weights; a k-count operation
    // occupies its pair for k sequential native pulses.
    std::size_t index = 0;
    stats.critical_2q = circuit.weightedCriticalPath(
        [&counts, &index](const Instruction &) {
            return static_cast<double>(counts[index++]);
        });
    index = 0;
    stats.critical_duration = circuit.weightedCriticalPath(
        [&counts, &index, pulse](const Instruction &) {
            return static_cast<double>(counts[index++]) * pulse;
        });
    return stats;
}

Circuit
expandToBasis(const Circuit &circuit, const BasisSpec &basis)
{
    Circuit out(circuit.numQubits(), circuit.name() + "-" + basis.name());
    for (const auto &op : circuit.instructions()) {
        if (!op.isTwoQubit()) {
            out.append(op);
            continue;
        }
        const SynthesisResult synth =
            synthesizeInBasis(op.gate().matrix(), basis);
        // Splice the 2-qubit synthesized circuit onto the operands: its
        // qubit 1 (the high tensor factor) is the instruction's first
        // operand.
        for (const auto &inner : synth.circuit.instructions()) {
            std::vector<Qubit> mapped;
            for (Qubit q : inner.qubits()) {
                mapped.push_back(q == 1 ? op.q0() : op.q1());
            }
            out.append(inner.gate(), mapped);
        }
    }
    return out;
}

std::string
SetBasisPass::spec() const
{
    return name() + "=" + _basis.name();
}

void
SetBasisPass::run(PassContext &ctx) const
{
    ctx.basis = _basis;
}

void
ScoreMetricsPass::run(PassContext &ctx) const
{
    PropertySet &props = ctx.properties;
    props.set("swaps_total",
              static_cast<double>(ctx.circuit.countKind(GateKind::Swap)));
    props.set("swaps_critical",
              ctx.circuit.weightedCriticalPath([](const Instruction &op) {
                  return op.isSwap() ? 1.0 : 0.0;
              }));
    props.set("ops_2q_pre",
              static_cast<double>(ctx.circuit.countTwoQubit()));

    const TranslationStats stats = translationStats(ctx.circuit, ctx.basis);
    props.set("basis_2q_total", static_cast<double>(stats.total_2q));
    props.set("basis_2q_critical", stats.critical_2q);
    props.set("duration_total", stats.total_duration);
    props.set("duration_critical", stats.critical_duration);
    // Record which basis these numbers belong to (BasisKind as index),
    // so consumers report the basis scoring actually used rather than
    // guessing from the pipeline spec.
    props.set("scored_basis",
              static_cast<double>(static_cast<int>(ctx.basis.kind)));
    props.set("scored", 1.0);
}

} // namespace snail
