/**
 * @file
 * Basis translation: score or expand a routed circuit in a native basis.
 *
 * The paper's data collection (Fig. 10) counts, after basis translation,
 * the total 2Q basis gates and the critical-path 2Q gates / pulse
 * duration.  Those quantities depend only on each operation's Weyl class,
 * so the default path *weights* operations by their analytic basis count
 * instead of materializing the decomposed circuit; expandToBasis()
 * produces the explicit circuit when one is needed (tests, examples).
 */

#ifndef SNAILQC_TRANSPILER_BASIS_TRANSLATION_HPP
#define SNAILQC_TRANSPILER_BASIS_TRANSLATION_HPP

#include <string>
#include <unordered_map>

#include "ir/circuit.hpp"
#include "weyl/basis_counts.hpp"

namespace snail
{

/** Post-translation 2Q statistics (paper Figs. 13 and 14). */
struct TranslationStats
{
    std::size_t total_2q = 0;      //!< total native 2Q gates
    double critical_2q = 0.0;      //!< native 2Q gates on the critical path
    double total_duration = 0.0;   //!< total pulse time, normalized units
    double critical_duration = 0.0;//!< critical-path pulse time
};

/**
 * Analytic basis counts per instruction (1Q gates count 0).  Weyl
 * coordinates of parameterized standard gates are cached by gate kind and
 * rounded parameters; opaque Unitary4 blocks are decomposed individually.
 */
std::vector<int> basisCountsPerInstruction(const Circuit &circuit,
                                           const BasisSpec &basis);

/**
 * Analytic count of one 2Q gate in `basis`, memoized in `cache` for
 * cacheable gates.  The cache key covers every basis field counts
 * depend on (kind and the SYC counting ablation), so one cache can be
 * shared across edges with different bases — the per-edge scorers
 * (hetero_basis.cpp, score_fidelity.cpp) rely on this.
 */
int cachedBasisCount(std::unordered_map<std::string, int> &cache,
                     const BasisSpec &basis, const Gate &gate);

/** Compute the paper's post-translation statistics for a circuit. */
TranslationStats translationStats(const Circuit &circuit,
                                  const BasisSpec &basis);

/**
 * Materialize the circuit in the native basis: every 2Q operation is
 * replaced by its synthesized 1Q + basis-gate sequence.  Intended for
 * small circuits (synthesis solves a numerical problem per unique 2Q op).
 */
Circuit expandToBasis(const Circuit &circuit, const BasisSpec &basis);

} // namespace snail

#endif // SNAILQC_TRANSPILER_BASIS_TRANSLATION_HPP
