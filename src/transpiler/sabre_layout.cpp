/**
 * @file
 * SABRE-style layout refinement (Li, Ding, Xie — ASPLOS'19).
 *
 * The initial placement is improved by routing the circuit forward, then
 * routing its reverse starting from the final layout, alternating a few
 * rounds.  Each pass drags the layout toward a fixed point that serves
 * both ends of the circuit, typically beating a one-shot dense placement
 * on SWAP count.  Provided as an ablation alternative to DenseLayout.
 */

#include "common/error.hpp"
#include "ir/circuit.hpp"
#include "transpiler/layout.hpp"
#include "transpiler/passes.hpp"
#include "transpiler/routing.hpp"

namespace snail
{

Layout
sabreLayout(const Circuit &circuit, const CouplingGraph &graph,
            int iterations, Rng &rng)
{
    SNAIL_REQUIRE(iterations >= 1, "sabreLayout needs >= 1 iteration");

    // Reversed-instruction view of the circuit (gate identity does not
    // matter for layout search, only the interaction pattern).
    Circuit reversed(circuit.numQubits(), circuit.name() + "-rev");
    for (auto it = circuit.instructions().rbegin();
         it != circuit.instructions().rend(); ++it) {
        reversed.append(*it);
    }

    const SabreRouter router;
    Layout layout = denseLayout(circuit, graph);
    for (int round = 0; round < iterations; ++round) {
        const RoutingResult fwd = router.route(circuit, graph, layout, rng);
        const RoutingResult bwd =
            router.route(reversed, graph, fwd.final_layout, rng);
        layout = bwd.final_layout;
    }
    return layout;
}

std::string
SabreLayoutPass::spec() const
{
    return _iterations == kDefaultIterations
               ? name()
               : name() + "=" + std::to_string(_iterations);
}

void
SabreLayoutPass::run(PassContext &ctx) const
{
    SNAIL_REQUIRE(!ctx.final_layout,
                  name() << ": circuit is already routed; layout passes "
                            "must run before routing");
    Rng rng = ctx.rngFor(kRngSalt);
    ctx.initial_layout =
        sabreLayout(ctx.circuit, ctx.graph, _iterations, rng);
}

} // namespace snail
