#include "transpiler/hetero_basis.hpp"

#include <string>
#include <unordered_map>

#include "common/error.hpp"
#include "weyl/coordinates.hpp"

namespace snail
{

HeterogeneousBasis::HeterogeneousBasis(const CouplingGraph &graph,
                                       BasisSpec fallback)
    : _graph(graph), _fallback(fallback)
{
}

std::pair<int, int>
HeterogeneousBasis::canonical(int a, int b)
{
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

void
HeterogeneousBasis::setEdgeBasis(int a, int b, const BasisSpec &spec)
{
    SNAIL_REQUIRE(_graph.hasEdge(a, b),
                  "no coupling between qubits " << a << " and " << b
                                                << " on " << _graph.name());
    _assigned[canonical(a, b)] = spec;
}

std::size_t
HeterogeneousBasis::setWhere(
    const std::function<bool(int a, int b)> &predicate,
    const BasisSpec &spec)
{
    std::size_t assigned = 0;
    for (const auto &[a, b] : _graph.edges()) {
        if (predicate(a, b)) {
            _assigned[canonical(a, b)] = spec;
            ++assigned;
        }
    }
    return assigned;
}

const BasisSpec &
HeterogeneousBasis::edgeBasis(int a, int b) const
{
    auto it = _assigned.find(canonical(a, b));
    return it == _assigned.end() ? _fallback : it->second;
}

TranslationStats
heterogeneousTranslationStats(const Circuit &routed,
                              const HeterogeneousBasis &bases)
{
    // Per-instruction (count, duration) under the edge-local basis.
    // Weyl coordinates are cached per gate; counts depend on the edge's
    // basis kind, so the cache key also carries the basis name.
    std::unordered_map<std::string, int> count_cache;
    std::vector<int> counts;
    std::vector<double> durations;
    counts.reserve(routed.size());
    durations.reserve(routed.size());

    for (const auto &op : routed.instructions()) {
        if (!op.isTwoQubit()) {
            counts.push_back(0);
            durations.push_back(0.0);
            continue;
        }
        const BasisSpec &spec = bases.edgeBasis(op.q0(), op.q1());
        SNAIL_REQUIRE(bases.graph().hasEdge(op.q0(), op.q1()),
                      "2Q op on uncoupled pair (" << op.q0() << ", "
                                                  << op.q1()
                                                  << "); route first");
        const int count = cachedBasisCount(count_cache, spec, op.gate());
        counts.push_back(count);
        durations.push_back(static_cast<double>(count) *
                            spec.pulseDuration());
    }

    TranslationStats stats;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        stats.total_2q += static_cast<std::size_t>(counts[i]);
        stats.total_duration += durations[i];
    }
    std::size_t index = 0;
    stats.critical_2q = routed.weightedCriticalPath(
        [&counts, &index](const Instruction &) {
            return static_cast<double>(counts[index++]);
        });
    index = 0;
    stats.critical_duration = routed.weightedCriticalPath(
        [&durations, &index](const Instruction &) {
            return durations[index++];
        });
    return stats;
}

} // namespace snail
