/**
 * @file
 * PropertySet and the shared routing-adapter logic (pass.hpp,
 * passes.hpp).  Stage-specific adapters live next to their stages.
 */

#include "transpiler/passes.hpp"

#include "common/error.hpp"

namespace snail
{

void
PropertySet::set(const std::string &key, double value)
{
    _values[key] = value;
}

void
PropertySet::increment(const std::string &key, double delta)
{
    _values[key] += delta;
}

double
PropertySet::get(const std::string &key, double fallback) const
{
    const auto it = _values.find(key);
    return it == _values.end() ? fallback : it->second;
}

bool
PropertySet::contains(const std::string &key) const
{
    return _values.find(key) != _values.end();
}

void
beginRouting(PassContext &ctx, const std::string &pass_name)
{
    // Routing maps virtual qubits to physical ones; a second routing
    // pass would re-map the already-physical circuit against the stale
    // virtual layout and corrupt the layout bookkeeping.
    SNAIL_REQUIRE(!ctx.final_layout,
                  pass_name << ": circuit is already routed; a pipeline "
                               "may only contain one routing pass");
    if (!ctx.initial_layout) {
        ctx.initial_layout = trivialLayout(ctx.circuit, ctx.graph);
    }
}

void
finishRouting(PassContext &ctx, RoutingResult &&routed)
{
    ctx.circuit = std::move(routed.circuit);
    ctx.initial_layout = std::move(routed.initial_layout);
    ctx.final_layout = std::move(routed.final_layout);
    ctx.properties.increment("swaps_added",
                             static_cast<double>(routed.swaps_added));
}

void
RoutePassBase::run(PassContext &ctx) const
{
    beginRouting(ctx, name());
    // A fresh Rng(seed) per routing pass reproduces the legacy pipeline
    // stream and keeps routing independent of earlier passes.
    Rng rng(ctx.seed);
    finishRouting(ctx, router().route(ctx.circuit, ctx.graph,
                                      *ctx.initial_layout, rng));
}

} // namespace snail
