#include "transpiler/layout.hpp"

#include "transpiler/passes.hpp"

#include "common/error.hpp"
#include "ir/circuit.hpp"

namespace snail
{

Layout::Layout(int num_virtual, int num_physical)
    : _numVirtual(num_virtual),
      _numPhysical(num_physical),
      _v2p(static_cast<std::size_t>(num_virtual), -1),
      _p2v(static_cast<std::size_t>(num_physical), -1)
{
    SNAIL_REQUIRE(num_virtual > 0, "layout needs at least one virtual qubit");
    SNAIL_REQUIRE(num_physical >= num_virtual,
                  "device has " << num_physical
                                << " qubits, circuit needs "
                                << num_virtual);
}

Layout
Layout::identity(int num_virtual, int num_physical)
{
    Layout l(num_virtual, num_physical);
    for (int v = 0; v < num_virtual; ++v) {
        l.assign(v, v);
    }
    return l;
}

void
Layout::assign(int v, int p)
{
    SNAIL_REQUIRE(v >= 0 && v < _numVirtual, "virtual qubit out of range");
    SNAIL_REQUIRE(p >= 0 && p < _numPhysical, "physical qubit out of range");
    SNAIL_REQUIRE(_p2v[static_cast<std::size_t>(p)] < 0,
                  "physical qubit " << p << " already occupied");
    SNAIL_REQUIRE(_v2p[static_cast<std::size_t>(v)] < 0,
                  "virtual qubit " << v << " already placed");
    _v2p[static_cast<std::size_t>(v)] = p;
    _p2v[static_cast<std::size_t>(p)] = v;
}

int
Layout::physical(int v) const
{
    SNAIL_REQUIRE(v >= 0 && v < _numVirtual, "virtual qubit out of range");
    const int p = _v2p[static_cast<std::size_t>(v)];
    SNAIL_REQUIRE(p >= 0, "virtual qubit " << v << " is unassigned");
    return p;
}

int
Layout::virtualAt(int p) const
{
    SNAIL_REQUIRE(p >= 0 && p < _numPhysical, "physical qubit out of range");
    return _p2v[static_cast<std::size_t>(p)];
}

bool
Layout::isComplete() const
{
    for (int v = 0; v < _numVirtual; ++v) {
        if (_v2p[static_cast<std::size_t>(v)] < 0) {
            return false;
        }
    }
    return true;
}

void
Layout::swapPhysical(int p1, int p2)
{
    SNAIL_REQUIRE(p1 >= 0 && p1 < _numPhysical && p2 >= 0 &&
                      p2 < _numPhysical && p1 != p2,
                  "invalid physical swap (" << p1 << ", " << p2 << ")");
    const int v1 = _p2v[static_cast<std::size_t>(p1)];
    const int v2 = _p2v[static_cast<std::size_t>(p2)];
    _p2v[static_cast<std::size_t>(p1)] = v2;
    _p2v[static_cast<std::size_t>(p2)] = v1;
    if (v1 >= 0) {
        _v2p[static_cast<std::size_t>(v1)] = p2;
    }
    if (v2 >= 0) {
        _v2p[static_cast<std::size_t>(v2)] = p1;
    }
}

std::vector<int>
Layout::v2p() const
{
    for (int v = 0; v < _numVirtual; ++v) {
        SNAIL_REQUIRE(_v2p[static_cast<std::size_t>(v)] >= 0,
                      "virtual qubit " << v << " is unassigned");
    }
    return _v2p;
}

Layout
trivialLayout(const Circuit &circuit, const CouplingGraph &graph)
{
    return Layout::identity(circuit.numQubits(), graph.numQubits());
}

void
TrivialLayoutPass::run(PassContext &ctx) const
{
    SNAIL_REQUIRE(!ctx.final_layout,
                  name() << ": circuit is already routed; layout passes "
                            "must run before routing");
    ctx.initial_layout = trivialLayout(ctx.circuit, ctx.graph);
}

} // namespace snail
