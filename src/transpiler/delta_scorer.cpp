#include "transpiler/delta_scorer.hpp"

#include <utility>

#include "common/error.hpp"

namespace snail
{

namespace
{

/** Physical qubit p as seen after exchanging a and b. */
inline int
remapped(int p, int a, int b)
{
    if (p == a) {
        return b;
    }
    if (p == b) {
        return a;
    }
    return p;
}

} // namespace

DeltaScorer::DeltaScorer(const CouplingGraph &graph)
    : _graph(graph),
      _touch(static_cast<std::size_t>(graph.numQubits()))
{
}

DeltaScorer::Term &
DeltaScorer::term(std::int32_t code)
{
    const auto index = static_cast<std::size_t>(code >> 1);
    return (code & 1) != 0 ? _ext[index] : _front[index];
}

const DeltaScorer::Term &
DeltaScorer::term(std::int32_t code) const
{
    const auto index = static_cast<std::size_t>(code >> 1);
    return (code & 1) != 0 ? _ext[index] : _front[index];
}

void
DeltaScorer::addTouch(int qubit, std::int32_t code)
{
    auto &list = _touch[static_cast<std::size_t>(qubit)];
    if (list.empty()) {
        _touched.push_back(qubit);
    }
    list.push_back(code);
}

void
DeltaScorer::addTerm(const Layout &layout, const Instruction *op,
                     bool extended)
{
    const int p0 = layout.physical(op->q0());
    const int p1 = layout.physical(op->q1());
    const int dist = _graph.distance(p0, p1);
    auto &terms = extended ? _ext : _front;
    const std::int32_t code = static_cast<std::int32_t>(
        (terms.size() << 1) | (extended ? 1u : 0u));
    terms.push_back(Term{p0, p1, dist});
    if (extended) {
        _extSum += dist;
    } else {
        _frontSum += dist;
        if (dist == 1) {
            ++_frontAdjacent;
        }
    }
    addTouch(p0, code);
    addTouch(p1, code);
}

void
DeltaScorer::rebuild(const Layout &layout,
                     const std::vector<const Instruction *> &front,
                     const std::vector<const Instruction *> &extended)
{
    for (int q : _touched) {
        _touch[static_cast<std::size_t>(q)].clear();
    }
    _touched.clear();
    _front.clear();
    _ext.clear();
    _frontSum = 0;
    _extSum = 0;
    _frontAdjacent = 0;
    for (const Instruction *op : front) {
        addTerm(layout, op, false);
    }
    for (const Instruction *op : extended) {
        addTerm(layout, op, true);
    }
}

DeltaScorer::Delta
DeltaScorer::swapDelta(int a, int b) const
{
    Delta delta{0, 0};
    for (std::int32_t code : _touch[static_cast<std::size_t>(a)]) {
        const Term &t = term(code);
        const int nd = _graph.distance(remapped(t.p0, a, b),
                                       remapped(t.p1, a, b));
        const long long change = nd - t.dist;
        if ((code & 1) != 0) {
            delta.extended += change;
        } else {
            delta.front += change;
        }
    }
    for (std::int32_t code : _touch[static_cast<std::size_t>(b)]) {
        const Term &t = term(code);
        // A gate on (a, b) itself sits in both touch lists; it was
        // fully remapped by the loop above (its distance is unchanged
        // under the exchange), so skip it here.
        if (t.p0 == a || t.p1 == a) {
            continue;
        }
        const int nd = _graph.distance(remapped(t.p0, a, b),
                                       remapped(t.p1, a, b));
        const long long change = nd - t.dist;
        if ((code & 1) != 0) {
            delta.extended += change;
        } else {
            delta.front += change;
        }
    }
    return delta;
}

void
DeltaScorer::commitSwap(int a, int b)
{
    auto apply = [this](std::int32_t code, int a_, int b_) {
        Term &t = term(code);
        const int np0 = remapped(t.p0, a_, b_);
        const int np1 = remapped(t.p1, a_, b_);
        const int nd = _graph.distance(np0, np1);
        if ((code & 1) != 0) {
            _extSum += nd - t.dist;
        } else {
            _frontSum += nd - t.dist;
            _frontAdjacent += (nd == 1 ? 1 : 0) - (t.dist == 1 ? 1 : 0);
        }
        t.p0 = np0;
        t.p1 = np1;
        t.dist = nd;
    };

    for (std::int32_t code : _touch[static_cast<std::size_t>(a)]) {
        apply(code, a, b);
    }
    for (std::int32_t code : _touch[static_cast<std::size_t>(b)]) {
        const Term &t = term(code);
        // Gates on (a, b) were remapped by the loop above and now read
        // an endpoint of a again (b -> a); don't remap them back.
        if (t.p0 == a || t.p1 == a) {
            continue;
        }
        apply(code, a, b);
    }
    // Every term with an endpoint on a now lives on b and vice versa,
    // so the touch lists simply change places.  Register both qubits
    // for the next rebuild()'s clear in case one list was empty.
    std::swap(_touch[static_cast<std::size_t>(a)],
              _touch[static_cast<std::size_t>(b)]);
    _touched.push_back(a);
    _touched.push_back(b);
}

} // namespace snail
