/**
 * @file
 * The guided co-design search driver.
 *
 * Where a sweep (explore/engine.hpp) exhaustively evaluates a fixed
 * grid, the search *walks*: simulated annealing (or steepest descent)
 * over the parametric generator space, each step proposing a few
 * mutated candidates (mutate.hpp), scoring them by transpiling the
 * whole workload set through the explore engine, and folding feasible
 * ones into a running Pareto frontier (frontier.hpp).
 *
 * Determinism and resumability:
 *
 *  - Every random decision draws from a counter-based stream keyed on
 *    (iteration, proposal) — Rng::stream — never from shared mutable
 *    RNG state, so the walk is bit-identical at any --threads value.
 *  - Workload evaluations derive per-point seeds by the sweep rule
 *    (spec seed ^ width ^ target-label hash ^ circuit salt) and are
 *    cached content-addressed, so re-visited designs cost nothing and
 *    search points interchange with sweep points in the persistent
 *    CacheStore.
 *  - The driver owns its JSONL checkpoint: completed evaluations are
 *    appended in deterministic job order (deduplicated against what a
 *    resumed file already holds).  On --resume the walk replays from
 *    the start, but every checkpointed point is a cache hit — a
 *    killed-and-resumed search computes only the missing points and
 *    produces byte-identical trace/frontier reports.
 *
 * The evaluation budget (--budget) bounds *freshly computed* points:
 * the walk stops at the first iteration boundary where the count is
 * reached.  Resuming a budget-cut run replays the prefix from cache
 * (0 computed) and then continues spending the budget on new points.
 */

#ifndef SNAILQC_SEARCH_DRIVER_HPP
#define SNAILQC_SEARCH_DRIVER_HPP

#include <iosfwd>

#include "explore/cache_store.hpp"
#include "search/frontier.hpp"

namespace snail
{

/** Runtime configuration (the spec holds the science). */
struct SearchOptions
{
    unsigned threads = 0; //!< 0 = hardware concurrency
    /** Stop at an iteration boundary after computing this many fresh
     *  points (0 = unlimited). */
    std::size_t budget = 0;
    std::string checkpoint_path; //!< "" disables checkpointing
    bool resume = false;         //!< preload + append the checkpoint
    std::ostream *progress = nullptr; //!< per-step notes; nullptr = quiet
    CacheStore *cache_store = nullptr; //!< optional persistent cache
};

/**
 * Run the search to completion (or budget exhaustion).
 * @throws SnailError on unbuildable spaces, unknown metrics, or
 *         pipeline parse failures.
 */
SearchRun runSearch(const SearchSpec &spec, const SearchOptions &options);

} // namespace snail

#endif // SNAILQC_SEARCH_DRIVER_HPP
