/**
 * @file
 * Candidate representation and mutation moves for co-design search.
 *
 * A Candidate is a point in the parametric design space: a generator
 * family with integer arguments, a basis, and a uniform per-pulse 2Q
 * fidelity.  Mutation perturbs one of those coordinates at a time —
 * tweak an argument, jump family (re-fitting arguments toward the
 * current qubit count), swap basis, swap fidelity — and building
 * filters out candidates the generators reject, that fall outside the
 * qubit box, or that are disconnected (corral stride parity can
 * splinter the fence into independent rings).
 *
 * All randomness flows through the caller-provided Rng, so the driver
 * can hand each proposal its own counter-based stream and keep the
 * walk bit-identical at any thread count.
 */

#ifndef SNAILQC_SEARCH_MUTATE_HPP
#define SNAILQC_SEARCH_MUTATE_HPP

#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "search/cost_model.hpp"
#include "search/search_spec.hpp"
#include "target/target.hpp"

namespace snail
{

/** One point in the parametric design space. */
struct Candidate
{
    std::string family;    //!< generator name (topology/generators.hpp)
    std::vector<int> args; //!< generator arguments
    std::string basis;     //!< basis spec string ("sqiswap", ...)
    double fidelity_2q = 1.0; //!< uniform per-pulse 2Q fidelity
};

/**
 * Display label, e.g. "corral(8,1,2)-sqiswap".  Matches the sweep
 * generator-target naming exactly (graph label + canonical basis
 * name) so search and sweep evaluations of the same design derive the
 * same per-point seeds and share cache entries.  Non-unit fidelities
 * append "@f<value>" — they are a different device.
 */
std::string candidateLabel(const Candidate &candidate);

/** A candidate that built successfully, ready to evaluate. */
struct BuiltCandidate
{
    Candidate candidate;
    Target target;     //!< uniform target named candidateLabel()
    HardwareCost cost; //!< hardware score of the built graph
};

/**
 * Build `candidate`, or nullopt when the generator rejects the
 * arguments, the graph's qubit count falls outside
 * [min_qubits, max_qubits], or the graph is disconnected.
 */
std::optional<BuiltCandidate> tryBuildCandidate(const Candidate &candidate,
                                                int min_qubits,
                                                int max_qubits);

/**
 * Deterministic arguments fitting `family` to roughly `qubits`
 * qubits, clamped to the family's search box.  The seed of every
 * refamily move and of the initial candidate.
 */
std::vector<int> fitArgs(const std::string &family, int qubits);

/**
 * The walk's deterministic starting point: the first family in spec
 * order whose fitted arguments build a valid candidate at the space's
 * first basis and fidelity. @throws SnailError when no family fits —
 * the space is over-constrained (e.g. min_qubits above every family's
 * reach).
 */
BuiltCandidate initialCandidate(const SearchSpace &space, int min_qubits);

/**
 * One mutation move on `current` (unbuilt — the caller validates via
 * tryBuildCandidate).  `current_qubits` anchors refamily re-fits.
 */
Candidate mutateCandidate(const Candidate &current, int current_qubits,
                          const SearchSpace &space, Rng &rng);

/**
 * Draw mutations of `current` until one builds (at most 64 attempts);
 * falls back to a copy of `current` so a proposal slot always holds a
 * valid candidate and the RNG stream advances deterministically.
 */
BuiltCandidate proposeCandidate(const BuiltCandidate &current,
                                const SearchSpace &space, int min_qubits,
                                Rng &rng);

} // namespace snail

#endif // SNAILQC_SEARCH_MUTATE_HPP
