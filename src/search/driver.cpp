#include "search/driver.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <ostream>
#include <set>

#include "common/error.hpp"
#include "explore/analysis.hpp"
#include "explore/checkpoint.hpp"
#include "explore/engine.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "transpiler/pass_registry.hpp"

namespace snail
{

namespace
{

// Salt the proposal and acceptance streams apart from each other and
// from anything the engine derives from the same spec seed.
constexpr unsigned long long kProposalSalt = 0x50524F50ULL; // "PROP"
constexpr unsigned long long kAcceptSalt = 0x41434345ULL;   // "ACCE"

/** The geometric temperature at step `k` of the schedule. */
double
temperatureAt(const AnnealSchedule &anneal, int k)
{
    if (anneal.iterations <= 1) {
        return anneal.t0;
    }
    const double progress =
        static_cast<double>(k) /
        static_cast<double>(anneal.iterations - 1);
    return anneal.t0 * std::pow(anneal.t1 / anneal.t0, progress);
}

/** Everything one batch evaluation needs, shared across the walk. */
struct Evaluator
{
    const SearchSpec &spec;
    const SearchOptions &options;
    const std::vector<CircuitInstance> &workloads;
    const PassManager &pipeline;
    TranspileCache &cache;
    CheckpointWriter *checkpoint = nullptr;
    std::set<CacheKey> &persisted;
    std::vector<unsigned long long> &workload_hashes;
    EvaluationStats &totals;
    std::size_t &evaluations;

    /**
     * Score `built` candidates: one engine batch over the full
     * candidate x workload cross-product, then per-candidate quality
     * meaned over workloads.  Checkpoints every new point serially in
     * job order, so the file's contents depend only on walk progress.
     */
    std::vector<EvaluatedCandidate>
    operator()(const std::vector<BuiltCandidate> &built)
    {
        std::vector<ExploreJob> jobs;
        std::vector<CacheKey> keys;
        jobs.reserve(built.size() * workloads.size());
        keys.reserve(jobs.capacity());
        for (const BuiltCandidate &candidate : built) {
            const unsigned long long target_hash =
                candidate.target.contentHash();
            for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
                const CircuitInstance &workload = workloads[wi];
                ExploreJob job;
                job.circuit = &workload.circuit;
                job.target = &candidate.target;
                job.pipeline = &pipeline;
                job.pipeline_spec = spec.pipeline;
                // The sweep per-point rule: search evaluations of a
                // design interchange with sweep evaluations of it.
                job.seed =
                    spec.seed ^
                    (static_cast<unsigned long long>(workload.width)
                     << 32) ^
                    std::hash<std::string>{}(candidate.target.name()) ^
                    workload.salt;
                if (options.progress) {
                    job.label = workload.label + " w" +
                                std::to_string(workload.width) + " on " +
                                candidate.target.name();
                }
                CacheKey key;
                key.circuit_hash = workload_hashes[wi];
                key.target_hash = target_hash;
                key.pipeline = spec.pipeline;
                key.seed = job.seed;
                jobs.push_back(std::move(job));
                keys.push_back(std::move(key));
            }
        }

        EngineOptions engine;
        engine.threads = options.threads;
        engine.progress = options.progress;
        engine.cache_store = options.cache_store;
        EvaluationStats batch;
        const std::vector<PointMetrics> results =
            evaluateJobs(jobs, cache, engine, &batch);
        totals.computed += batch.computed;
        totals.from_cache += batch.from_cache;
        totals.from_store += batch.from_store;

        // The driver owns checkpointing: append in deterministic job
        // order, skipping keys the resumed file already holds, so a
        // resumed run's file converges to the uninterrupted one's.
        if (checkpoint != nullptr) {
            for (std::size_t i = 0; i < keys.size(); ++i) {
                if (persisted.insert(keys[i]).second) {
                    checkpoint->append(keys[i], results[i]);
                }
            }
        }

        std::vector<EvaluatedCandidate> evaluated;
        evaluated.reserve(built.size());
        for (std::size_t bi = 0; bi < built.size(); ++bi) {
            const BuiltCandidate &candidate = built[bi];
            double quality = 0.0;
            for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
                quality += pointMetricValue(
                    results[bi * workloads.size() + wi],
                    spec.objective.metric);
            }
            quality /= static_cast<double>(workloads.size());

            EvaluatedCandidate point;
            point.candidate = candidate.candidate;
            point.label = candidate.target.name();
            point.cost = candidate.cost;
            point.violation = spec.constraints.violation(candidate.cost);
            point.feasible = point.violation == 0.0;
            point.quality = quality;
            point.energy =
                (spec.objective.maximize ? -quality : quality) +
                spec.objective.cost_weight * candidate.cost.devices() +
                spec.objective.penalty_weight * point.violation;
            evaluated.push_back(std::move(point));
        }
        evaluations += evaluated.size();
        return evaluated;
    }
};

} // namespace

SearchRun
runSearch(const SearchSpec &spec, const SearchOptions &options)
{
    SearchRun run;
    run.spec = spec;

    const PassManager pipeline = passManagerFromSpec(spec.pipeline);

    // Workloads reuse the sweep circuit expansion (same labels, same
    // seed salts), shimmed through a minimal SweepSpec.
    SweepSpec shim;
    shim.seed = spec.seed;
    shim.circuits = spec.workloads;
    const std::vector<CircuitInstance> workloads =
        expandCircuits(shim, spec.space.max_qubits);
    SNAIL_REQUIRE(!workloads.empty(),
                  "search '" << spec.name
                             << "' expands to no workloads");
    int effective_min = spec.space.min_qubits;
    for (const CircuitInstance &workload : workloads) {
        SNAIL_REQUIRE(workload.width <= spec.space.max_qubits,
                      "workload " << workload.label << " w"
                                  << workload.width
                                  << " exceeds max_qubits "
                                  << spec.space.max_qubits);
        effective_min = std::max(effective_min, workload.width);
    }

    TranspileCache cache;
    std::set<CacheKey> persisted;
    if (options.resume && !options.checkpoint_path.empty()) {
        std::vector<CacheKey> restored;
        run.stats.restored =
            loadCheckpoint(options.checkpoint_path, cache, &restored);
        persisted.insert(restored.begin(), restored.end());
    }
    std::unique_ptr<CheckpointWriter> checkpoint;
    if (!options.checkpoint_path.empty()) {
        checkpoint = std::make_unique<CheckpointWriter>(
            options.checkpoint_path, options.resume);
    }

    std::vector<unsigned long long> workload_hashes;
    workload_hashes.reserve(workloads.size());
    for (const CircuitInstance &workload : workloads) {
        workload_hashes.push_back(workload.circuit.contentHash());
    }

    Evaluator evaluate{spec,          options,
                       workloads,     pipeline,
                       cache,         checkpoint.get(),
                       persisted,     workload_hashes,
                       run.stats,     run.evaluations};

    const auto fold = [&](const EvaluatedCandidate &point) {
        updateFrontier(run.frontier, point, spec.objective.maximize);
        if (point.feasible &&
            (!run.has_best || point.energy < run.best.energy)) {
            run.best = point;
            run.has_best = true;
        }
    };

    BuiltCandidate current_built =
        initialCandidate(spec.space, effective_min);
    EvaluatedCandidate current = evaluate({current_built}).front();
    fold(current);
    if (options.progress) {
        *options.progress << "[search] start: " << current.label
                          << " energy "
                          << shortestDouble(current.energy) << "\n";
    }

    static Counter &iterations = MetricsRegistry::global().counter(
        "snailqc_search_iterations_total");
    const AnnealSchedule &anneal = spec.anneal;
    for (int k = 0; k < anneal.iterations; ++k) {
        if (options.budget != 0 &&
            run.stats.computed >= options.budget) {
            run.budget_exhausted = true;
            break;
        }
        ScopedSpan span("search:iteration", "search");
        iterations.add();
        const double temperature = temperatureAt(anneal, k);

        std::vector<BuiltCandidate> proposals;
        proposals.reserve(anneal.proposals);
        for (int j = 0; j < anneal.proposals; ++j) {
            Rng rng = Rng::stream(
                spec.seed ^ kProposalSalt,
                static_cast<unsigned long long>(k) *
                        static_cast<unsigned long long>(
                            anneal.proposals) +
                    static_cast<unsigned long long>(j));
            proposals.push_back(proposeCandidate(
                current_built, spec.space, effective_min, rng));
        }
        const std::vector<EvaluatedCandidate> evaluated =
            evaluate(proposals);
        for (const EvaluatedCandidate &point : evaluated) {
            fold(point);
        }

        int chosen = 0;
        for (int j = 1; j < static_cast<int>(evaluated.size()); ++j) {
            if (evaluated[j].energy < evaluated[chosen].energy) {
                chosen = j;
            }
        }
        const double delta = evaluated[chosen].energy - current.energy;
        bool accepted = delta <= 0.0;
        if (!accepted && anneal.mode == SearchMode::Anneal) {
            const double u =
                Rng::stream(spec.seed ^ kAcceptSalt,
                            static_cast<unsigned long long>(k))
                    .uniform();
            accepted = u < std::exp(-delta / temperature);
        }
        if (accepted) {
            current_built = proposals[chosen];
            current = evaluated[chosen];
        }

        IterationRecord record;
        record.iteration = k;
        record.temperature = temperature;
        record.proposals = evaluated;
        record.chosen = chosen;
        record.accepted = accepted;
        record.current = current;
        run.trace.push_back(std::move(record));

        if (options.progress) {
            *options.progress
                << "[search] iter " << k << "/" << anneal.iterations
                << " T=" << shortestDouble(temperature) << " "
                << (accepted ? "accept " : "reject ")
                << evaluated[chosen].label << " energy "
                << shortestDouble(evaluated[chosen].energy) << "\n";
        }
    }

    run.cache_hits = cache.hits();
    run.cache_misses = cache.misses();
    return run;
}

} // namespace snail
