#include "search/frontier.hpp"

#include <algorithm>
#include <ostream>

#include "common/table.hpp"

namespace snail
{

namespace
{

/** True when quality `a` beats `b` under the objective direction. */
bool
better(double a, double b, bool maximize)
{
    return maximize ? a > b : a < b;
}

std::string
argsColumn(const std::vector<int> &args)
{
    std::string out;
    for (int a : args) {
        out += out.empty() ? std::to_string(a)
                           : " " + std::to_string(a);
    }
    return out;
}

} // namespace

void
updateFrontier(std::vector<EvaluatedCandidate> &frontier,
               const EvaluatedCandidate &point, bool maximize)
{
    if (!point.feasible) {
        return;
    }
    for (const EvaluatedCandidate &member : frontier) {
        if (member.label == point.label) {
            return; // same design, already placed
        }
        if (member.cost.devices() <= point.cost.devices() &&
            !better(point.quality, member.quality, maximize)) {
            return; // dominated (ties keep the incumbent)
        }
    }
    frontier.erase(
        std::remove_if(frontier.begin(), frontier.end(),
                       [&](const EvaluatedCandidate &member) {
                           return point.cost.devices() <=
                                      member.cost.devices() &&
                                  !better(member.quality, point.quality,
                                          maximize);
                       }),
        frontier.end());
    frontier.push_back(point);
    std::sort(frontier.begin(), frontier.end(),
              [&](const EvaluatedCandidate &a,
                  const EvaluatedCandidate &b) {
                  if (a.cost.devices() != b.cost.devices()) {
                      return a.cost.devices() < b.cost.devices();
                  }
                  if (a.quality != b.quality) {
                      return better(a.quality, b.quality, maximize);
                  }
                  return a.label < b.label;
              });
}

JsonValue
evaluatedCandidateToJson(const EvaluatedCandidate &point)
{
    JsonValue::Object out;
    out["family"] = JsonValue(point.candidate.family);
    JsonValue::Array args;
    for (int a : point.candidate.args) {
        args.push_back(JsonValue(a));
    }
    out["args"] = JsonValue(std::move(args));
    out["basis"] = JsonValue(point.candidate.basis);
    out["fidelity"] = JsonValue(point.candidate.fidelity_2q);
    out["label"] = JsonValue(point.label);
    out["qubits"] = JsonValue(point.cost.qubits);
    out["couplers"] = JsonValue(static_cast<double>(point.cost.couplers));
    out["snails"] = JsonValue(static_cast<double>(point.cost.snails));
    out["max_degree"] = JsonValue(point.cost.max_degree);
    out["mean_degree"] = JsonValue(point.cost.mean_degree);
    out["wiring"] = JsonValue(point.cost.wiring);
    out["feasible"] = JsonValue(point.feasible);
    out["violation"] = JsonValue(point.violation);
    out["quality"] = JsonValue(point.quality);
    out["energy"] = JsonValue(point.energy);
    return JsonValue(std::move(out));
}

void
writeSearchTrace(std::ostream &os, const SearchRun &run)
{
    for (const IterationRecord &record : run.trace) {
        JsonValue::Object line;
        line["iteration"] = JsonValue(record.iteration);
        line["temperature"] = JsonValue(record.temperature);
        JsonValue::Array proposals;
        for (const EvaluatedCandidate &proposal : record.proposals) {
            proposals.push_back(evaluatedCandidateToJson(proposal));
        }
        line["proposals"] = JsonValue(std::move(proposals));
        line["chosen"] = JsonValue(record.chosen);
        line["accepted"] = JsonValue(record.accepted);
        line["current"] = evaluatedCandidateToJson(record.current);
        os << JsonValue(std::move(line)).dump() << "\n";
    }
}

void
writeFrontierCsv(std::ostream &os, const SearchRun &run)
{
    os << "family,args,basis,fidelity,label,qubits,couplers,snails,"
          "max_degree,mean_degree,wiring,"
       << run.spec.objective.metric << ",energy\n";
    for (const EvaluatedCandidate &member : run.frontier) {
        os << member.candidate.family << ","
           << argsColumn(member.candidate.args) << ","
           << member.candidate.basis << ","
           << shortestDouble(member.candidate.fidelity_2q) << ","
           << member.label << "," << member.cost.qubits << ","
           << member.cost.couplers << "," << member.cost.snails << ","
           << member.cost.max_degree << ","
           << shortestDouble(member.cost.mean_degree) << ","
           << shortestDouble(member.cost.wiring) << ","
           << shortestDouble(member.quality) << ","
           << shortestDouble(member.energy) << "\n";
    }
}

void
writeSearchJson(std::ostream &os, const SearchRun &run)
{
    JsonValue::Object root;
    root["spec"] = searchSpecToJson(run.spec);
    JsonValue::Array trace;
    for (const IterationRecord &record : run.trace) {
        JsonValue::Object step;
        step["iteration"] = JsonValue(record.iteration);
        step["temperature"] = JsonValue(record.temperature);
        JsonValue::Array proposals;
        for (const EvaluatedCandidate &proposal : record.proposals) {
            proposals.push_back(evaluatedCandidateToJson(proposal));
        }
        step["proposals"] = JsonValue(std::move(proposals));
        step["chosen"] = JsonValue(record.chosen);
        step["accepted"] = JsonValue(record.accepted);
        step["current"] = evaluatedCandidateToJson(record.current);
        trace.push_back(JsonValue(std::move(step)));
    }
    root["trace"] = JsonValue(std::move(trace));
    JsonValue::Array frontier;
    for (const EvaluatedCandidate &member : run.frontier) {
        frontier.push_back(evaluatedCandidateToJson(member));
    }
    root["frontier"] = JsonValue(std::move(frontier));
    if (run.has_best) {
        root["best"] = evaluatedCandidateToJson(run.best);
    }
    JsonValue::Object stats;
    stats["evaluations"] =
        JsonValue(static_cast<double>(run.evaluations));
    stats["computed"] = JsonValue(static_cast<double>(run.stats.computed));
    stats["from_cache"] =
        JsonValue(static_cast<double>(run.stats.from_cache));
    stats["from_store"] =
        JsonValue(static_cast<double>(run.stats.from_store));
    stats["restored"] = JsonValue(static_cast<double>(run.stats.restored));
    stats["budget_exhausted"] = JsonValue(run.budget_exhausted);
    root["stats"] = JsonValue(std::move(stats));
    os << JsonValue(std::move(root)).dump(2) << "\n";
}

void
printSearchSummary(std::ostream &os, const SearchRun &run)
{
    printBanner(os, "co-design search: " + run.spec.name);
    os << "objective: " << (run.spec.objective.maximize ? "max " : "min ")
       << run.spec.objective.metric << " over " << run.spec.workloads.size()
       << " workload(s); "
       << (run.spec.anneal.mode == SearchMode::Anneal ? "anneal"
                                                      : "descent")
       << " x" << run.trace.size() << " iterations\n\n";

    printBanner(os, "Pareto frontier (devices vs " +
                        run.spec.objective.metric + ")");
    TableWriter table({"candidate", "qubits", "couplers", "snails",
                       "max deg", "wiring", run.spec.objective.metric,
                       "energy"});
    for (const EvaluatedCandidate &member : run.frontier) {
        table.addRow({member.label, std::to_string(member.cost.qubits),
                      std::to_string(member.cost.couplers),
                      std::to_string(member.cost.snails),
                      std::to_string(member.cost.max_degree),
                      TableWriter::num(member.cost.wiring, 1),
                      TableWriter::num(member.quality, 3),
                      TableWriter::num(member.energy, 3)});
    }
    table.print(os);
    if (run.frontier.empty()) {
        os << "(no feasible candidate found)\n";
    }

    if (run.has_best) {
        os << "\nbest: " << run.best.label << " (energy "
           << shortestDouble(run.best.energy) << ", "
           << run.spec.objective.metric << " "
           << shortestDouble(run.best.quality) << ", couplers "
           << run.best.cost.couplers << ")\n";
    }

    os << "\nevaluations: " << run.evaluations << " (computed "
       << run.stats.computed << ", from cache " << run.stats.from_cache
       << "); cache hits " << run.cache_hits << ", misses "
       << run.cache_misses;
    if (run.stats.restored > 0) {
        os << "; restored " << run.stats.restored
           << " checkpointed points";
    }
    os << "\n";
    if (run.budget_exhausted) {
        os << "budget exhausted before the schedule completed\n";
    }
}

} // namespace snail
