#include "search/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace snail
{

namespace
{

/**
 * SNAIL modules in a `levels`-deep 4-ary tree: the central SNAIL plus
 * one per internal module head — 1, 5, 21, 85, ... ((4^levels - 1)/3).
 * Shared by tree and tree-rr (the round-robin variant rewires the
 * couplings, not the module count).
 */
std::size_t
treeModules(int levels)
{
    std::size_t modules = 0;
    std::size_t layer = 1;
    for (int l = 0; l < levels; ++l) {
        modules += layer;
        layer *= 4;
    }
    return modules;
}

/** Planar length sum over lattice edges, row-major rows x cols ids. */
double
latticeWiring(const CouplingGraph &graph, int cols)
{
    double total = 0.0;
    for (const auto &[a, b] : graph.edges()) {
        const double dr = static_cast<double>(a / cols - b / cols);
        const double dc = static_cast<double>(a % cols - b % cols);
        total += std::hypot(dr, dc);
    }
    return total;
}

/** Linear-embedding length sum: hypercube edges differ in one bit. */
double
hypercubeWiring(const CouplingGraph &graph)
{
    double total = 0.0;
    for (const auto &[a, b] : graph.edges()) {
        total += static_cast<double>(b > a ? b - a : a - b);
    }
    return total;
}

} // namespace

HardwareCost
hardwareCost(const std::string &generator, const std::vector<int> &args,
             const CouplingGraph &graph)
{
    HardwareCost cost;
    cost.qubits = graph.numQubits();
    cost.mean_degree = graph.averageDegree();
    for (int q = 0; q < graph.numQubits(); ++q) {
        cost.max_degree = std::max(cost.max_degree, graph.degree(q));
    }

    const std::size_t edges = graph.edgeCount();
    if (generator == "corral" && args.size() == 3) {
        // One SNAIL per fence post; each of the `posts` qubits per
        // fence spans stride post-pitches of physical ring.
        const std::size_t posts = static_cast<std::size_t>(args[0]);
        cost.snails = posts;
        cost.couplers = posts;
        cost.wiring = static_cast<double>(posts) *
                      static_cast<double>(args[1] + args[2]);
    } else if ((generator == "tree" || generator == "tree-rr") &&
               args.size() == 1) {
        const std::size_t modules = treeModules(args[0]);
        cost.snails = modules;
        cost.couplers = modules;
        // Qubit-to-SNAIL links: 4 for the root clique, then per child
        // module 4 children + the head uplink; round-robin adds the
        // four cross-router wires per module that remove the paper's
        // single-router bottleneck.
        const double per_module = generator == "tree" ? 5.0 : 8.0;
        cost.wiring = 4.0 + per_module * static_cast<double>(modules - 1);
    } else if (generator == "hypercube" ||
               generator == "incomplete-hypercube") {
        cost.couplers = edges;
        cost.wiring = hypercubeWiring(graph);
    } else if ((generator == "square" || generator == "hex" ||
                generator == "lattice-altdiag" ||
                generator == "heavy-hex") &&
               args.size() == 2) {
        cost.couplers = edges;
        // Heavy-hex inserts qubits on couplings, breaking the
        // row-major coordinate assumption; its couplings are all unit
        // length anyway, like square/hex.  Only the alternating
        // diagonals need real geometry (length sqrt 2).
        cost.wiring = generator == "lattice-altdiag"
                          ? latticeWiring(graph, args[1])
                          : static_cast<double>(edges);
    } else {
        cost.couplers = edges;
        cost.wiring = static_cast<double>(edges);
    }
    return cost;
}

bool
ConstraintSet::feasible(const HardwareCost &cost) const
{
    return violation(cost) == 0.0;
}

double
ConstraintSet::violation(const HardwareCost &cost) const
{
    double total = 0.0;
    const auto over = [&](double value, double limit) {
        if (limit > 0.0 && value > limit) {
            total += (value - limit) / limit;
        }
    };
    over(static_cast<double>(cost.couplers), max_couplers);
    over(static_cast<double>(cost.snails), max_snails);
    over(static_cast<double>(cost.max_degree), max_degree);
    over(cost.mean_degree, max_mean_degree);
    over(cost.wiring, max_wiring);
    return total;
}

ConstraintSet
constraintSetFromJson(const JsonValue &json)
{
    ConstraintSet constraints;
    for (const auto &[key, value] : json.asObject()) {
        if (key == "max_couplers") {
            constraints.max_couplers = value.asNumber();
        } else if (key == "max_snails") {
            constraints.max_snails = value.asNumber();
        } else if (key == "max_degree") {
            constraints.max_degree = value.asNumber();
        } else if (key == "max_mean_degree") {
            constraints.max_mean_degree = value.asNumber();
        } else if (key == "max_wiring") {
            constraints.max_wiring = value.asNumber();
        } else {
            SNAIL_THROW("unknown key '" << key << "' in constraints");
        }
        SNAIL_REQUIRE(value.asNumber() > 0,
                      "constraint " << key << " must be positive");
    }
    return constraints;
}

JsonValue
constraintSetToJson(const ConstraintSet &constraints)
{
    JsonValue::Object out;
    const auto put = [&](const char *key, double value) {
        if (value > 0.0) {
            out[key] = JsonValue(value);
        }
    };
    put("max_couplers", constraints.max_couplers);
    put("max_snails", constraints.max_snails);
    put("max_degree", constraints.max_degree);
    put("max_mean_degree", constraints.max_mean_degree);
    put("max_wiring", constraints.max_wiring);
    return JsonValue(std::move(out));
}

} // namespace snail
