/**
 * @file
 * Hardware cost model for co-design search (McPAT-style).
 *
 * The paper compares a handful of fixed SNAIL topologies on transpiled
 * quality alone; an actual co-design loop also needs the *hardware*
 * side of the trade: how many coupling devices a candidate spends, how
 * concentrated its connectivity is, and how much wiring its physical
 * embedding implies.  hardwareCost() scores a generated topology from
 * its generator parameters plus the built graph:
 *
 *   couplers     physical coupling devices.  For the SNAIL families
 *                (corral, tree, tree-rr) one SNAIL couples a whole
 *                post/module of qubits, so couplers = SNAIL count —
 *                far below the edge count, which is exactly the
 *                paper's hardware argument.  For pairwise-coupler
 *                families (lattices, hypercubes) couplers = edges.
 *   snails       SNAIL count alone (0 for pairwise families).
 *   max/mean degree   connectivity concentration (frequency crowding).
 *   wiring       a unitless length proxy from the generator geometry:
 *                fence spans for corrals, qubit-to-SNAIL links for
 *                trees, planar edge lengths for lattices, linear-
 *                embedding bit distance for hypercubes.
 *
 * A ConstraintSet is the JSON-specified feasibility box ("<= 40
 * couplers", "degree <= 4").  violation() is a smooth normalized
 * overage so the annealer can cross shallow infeasible regions
 * instead of cliff-rejecting them.
 */

#ifndef SNAILQC_SEARCH_COST_MODEL_HPP
#define SNAILQC_SEARCH_COST_MODEL_HPP

#include <string>
#include <vector>

#include "common/json.hpp"
#include "topology/coupling_graph.hpp"

namespace snail
{

/** Hardware-side score of one candidate topology. */
struct HardwareCost
{
    int qubits = 0;
    std::size_t couplers = 0; //!< physical coupling devices
    std::size_t snails = 0;   //!< SNAILs among them (0 = pairwise)
    int max_degree = 0;
    double mean_degree = 0.0;
    double wiring = 0.0; //!< unitless wiring-length proxy

    /** Scalar device count folded into the search energy. */
    double
    devices() const
    {
        return static_cast<double>(couplers) +
               static_cast<double>(snails);
    }
};

/**
 * Cost of the graph built by `generator` with `args`
 * (topology/generators.hpp).  Unknown generator names fall back to
 * couplers = edges, wiring = edges — graph-derivable, family-blind.
 */
HardwareCost hardwareCost(const std::string &generator,
                          const std::vector<int> &args,
                          const CouplingGraph &graph);

/**
 * Feasibility box over HardwareCost.  Every bound is optional; a
 * non-positive value (the default) disables it.  JSON schema:
 *
 *   {"max_couplers": 40, "max_snails": 32, "max_degree": 4,
 *    "max_mean_degree": 3.5, "max_wiring": 96}
 */
struct ConstraintSet
{
    double max_couplers = 0.0;
    double max_snails = 0.0;
    double max_degree = 0.0;
    double max_mean_degree = 0.0;
    double max_wiring = 0.0;

    /** True when every enabled bound holds. */
    bool feasible(const HardwareCost &cost) const;

    /**
     * Sum over enabled bounds of max(0, value - limit) / limit: 0 when
     * feasible, growing smoothly with overage so annealing energies
     * can rank infeasible candidates instead of treating them alike.
     */
    double violation(const HardwareCost &cost) const;
};

/** Parse; unknown keys rejected. @throws SnailError. */
ConstraintSet constraintSetFromJson(const JsonValue &json);

/** Serialize (enabled bounds only); round-trips. */
JsonValue constraintSetToJson(const ConstraintSet &constraints);

} // namespace snail

#endif // SNAILQC_SEARCH_COST_MODEL_HPP
