#include "search/search_spec.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "explore/analysis.hpp"
#include "topology/generators.hpp"
#include "weyl/basis_counts.hpp"

namespace snail
{

namespace
{

/** Reject keys outside `allowed` (typo guard for hand-written specs). */
void
requireKnownKeys(const JsonValue &json, const char *where,
                 std::initializer_list<const char *> allowed)
{
    for (const auto &[key, value] : json.asObject()) {
        (void)value;
        bool known = false;
        for (const char *candidate : allowed) {
            if (key == candidate) {
                known = true;
                break;
            }
        }
        SNAIL_REQUIRE(known, "unknown key '" << key << "' in " << where);
    }
}

SearchSpace
searchSpaceFromJson(const JsonValue &json)
{
    requireKnownKeys(json, "search space",
                     {"families", "bases", "fidelities", "min_qubits",
                      "max_qubits"});
    SearchSpace space;
    for (const JsonValue &entry : json.at("families").asArray()) {
        const std::string family = entry.asString();
        SNAIL_REQUIRE(findGenerator(family) != nullptr,
                      "unknown generator family '" << family
                                                   << "' in search space");
        space.families.push_back(family);
    }
    SNAIL_REQUIRE(!space.families.empty(),
                  "search space needs at least one family");
    for (const JsonValue &entry : json.at("bases").asArray()) {
        parseBasisSpec(entry.asString()); // validate eagerly
        space.bases.push_back(entry.asString());
    }
    SNAIL_REQUIRE(!space.bases.empty(),
                  "search space needs at least one basis");
    if (const JsonValue *fidelities = json.find("fidelities")) {
        space.fidelities.clear();
        for (const JsonValue &entry : fidelities->asArray()) {
            const double f = entry.asNumber();
            SNAIL_REQUIRE(f > 0.0 && f <= 1.0,
                          "fidelity " << f << " outside (0, 1]");
            space.fidelities.push_back(f);
        }
        SNAIL_REQUIRE(!space.fidelities.empty(),
                      "empty fidelities list in search space");
    }
    space.min_qubits =
        static_cast<int>(json.numberOr("min_qubits", 2.0));
    space.max_qubits =
        static_cast<int>(json.numberOr("max_qubits", 128.0));
    SNAIL_REQUIRE(space.min_qubits >= 2 &&
                      space.max_qubits >= space.min_qubits,
                  "search space needs 2 <= min_qubits <= max_qubits");
    return space;
}

ObjectiveSpec
objectiveFromJson(const JsonValue &json)
{
    requireKnownKeys(json, "objective",
                     {"metric", "maximize", "cost_weight",
                      "penalty_weight"});
    ObjectiveSpec objective;
    objective.metric = json.stringOr("metric", objective.metric);
    pointHasMetric(PointMetrics{}, objective.metric); // name check
    if (const JsonValue *maximize = json.find("maximize")) {
        objective.maximize = maximize->asBool();
    }
    objective.cost_weight = json.numberOr("cost_weight", 0.0);
    objective.penalty_weight = json.numberOr("penalty_weight", 1000.0);
    SNAIL_REQUIRE(objective.cost_weight >= 0.0 &&
                      objective.penalty_weight >= 0.0,
                  "objective weights must be non-negative");
    return objective;
}

AnnealSchedule
annealFromJson(const JsonValue &json)
{
    requireKnownKeys(json, "anneal",
                     {"iterations", "proposals", "t0", "t1", "mode"});
    AnnealSchedule anneal;
    anneal.iterations =
        static_cast<int>(json.numberOr("iterations", 32.0));
    anneal.proposals = static_cast<int>(json.numberOr("proposals", 3.0));
    anneal.t0 = json.numberOr("t0", 4.0);
    anneal.t1 = json.numberOr("t1", 0.25);
    const std::string mode = json.stringOr("mode", "anneal");
    if (mode == "anneal") {
        anneal.mode = SearchMode::Anneal;
    } else if (mode == "descent") {
        anneal.mode = SearchMode::Descent;
    } else {
        SNAIL_THROW("unknown anneal mode '" << mode
                                            << "' (anneal, descent)");
    }
    SNAIL_REQUIRE(anneal.iterations >= 1 && anneal.proposals >= 1,
                  "anneal needs iterations >= 1 and proposals >= 1");
    SNAIL_REQUIRE(anneal.t0 >= anneal.t1 && anneal.t1 > 0.0,
                  "anneal needs t0 >= t1 > 0");
    return anneal;
}

} // namespace

SearchSpec
searchSpecFromJson(const JsonValue &json)
{
    requireKnownKeys(json, "search spec",
                     {"name", "seed", "workloads", "pipeline", "space",
                      "constraints", "objective", "anneal"});
    SearchSpec spec;
    spec.name = json.stringOr("name", "search");
    if (const JsonValue *seed = json.find("seed")) {
        spec.seed = seedFromJson(*seed);
    }
    for (const JsonValue &entry : json.at("workloads").asArray()) {
        spec.workloads.push_back(circuitSpecFromJson(entry));
    }
    SNAIL_REQUIRE(!spec.workloads.empty(),
                  "search spec has no workloads");
    spec.pipeline = json.at("pipeline").asString();
    SNAIL_REQUIRE(!spec.pipeline.empty(),
                  "search spec needs a non-empty pipeline");
    spec.space = searchSpaceFromJson(json.at("space"));
    if (const JsonValue *constraints = json.find("constraints")) {
        spec.constraints = constraintSetFromJson(*constraints);
    }
    if (const JsonValue *objective = json.find("objective")) {
        spec.objective = objectiveFromJson(*objective);
    }
    if (const JsonValue *anneal = json.find("anneal")) {
        spec.anneal = annealFromJson(*anneal);
    }
    return spec;
}

JsonValue
searchSpecToJson(const SearchSpec &spec)
{
    JsonValue::Object root;
    root["name"] = JsonValue(spec.name);
    root["seed"] = seedToJson(spec.seed);

    JsonValue::Array workloads;
    for (const CircuitSpec &w : spec.workloads) {
        workloads.push_back(circuitSpecToJson(w));
    }
    root["workloads"] = JsonValue(std::move(workloads));
    root["pipeline"] = JsonValue(spec.pipeline);

    JsonValue::Object space;
    JsonValue::Array families;
    for (const std::string &family : spec.space.families) {
        families.push_back(JsonValue(family));
    }
    space["families"] = JsonValue(std::move(families));
    JsonValue::Array bases;
    for (const std::string &basis : spec.space.bases) {
        bases.push_back(JsonValue(basis));
    }
    space["bases"] = JsonValue(std::move(bases));
    JsonValue::Array fidelities;
    for (double f : spec.space.fidelities) {
        fidelities.push_back(JsonValue(f));
    }
    space["fidelities"] = JsonValue(std::move(fidelities));
    space["min_qubits"] = JsonValue(spec.space.min_qubits);
    space["max_qubits"] = JsonValue(spec.space.max_qubits);
    root["space"] = JsonValue(std::move(space));

    root["constraints"] = constraintSetToJson(spec.constraints);

    JsonValue::Object objective;
    objective["metric"] = JsonValue(spec.objective.metric);
    objective["maximize"] = JsonValue(spec.objective.maximize);
    objective["cost_weight"] = JsonValue(spec.objective.cost_weight);
    objective["penalty_weight"] =
        JsonValue(spec.objective.penalty_weight);
    root["objective"] = JsonValue(std::move(objective));

    JsonValue::Object anneal;
    anneal["iterations"] = JsonValue(spec.anneal.iterations);
    anneal["proposals"] = JsonValue(spec.anneal.proposals);
    anneal["t0"] = JsonValue(spec.anneal.t0);
    anneal["t1"] = JsonValue(spec.anneal.t1);
    anneal["mode"] = JsonValue(
        spec.anneal.mode == SearchMode::Anneal ? "anneal" : "descent");
    root["anneal"] = JsonValue(std::move(anneal));
    return JsonValue(std::move(root));
}

SearchSpec
loadSearchSpecFile(const std::string &path)
{
    std::ifstream in(path);
    SNAIL_REQUIRE(in.good(), "cannot open search spec '" << path << "'");
    std::ostringstream text;
    text << in.rdbuf();
    try {
        return searchSpecFromJson(JsonValue::parse(text.str()));
    } catch (const SnailError &e) {
        SNAIL_THROW("search spec '" << path << "': " << e.what());
    }
}

} // namespace snail
