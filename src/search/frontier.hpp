/**
 * @file
 * Search results: the annealing trace, the running quality-vs-cost
 * Pareto frontier, and the CSV/JSON/summary reporters.
 *
 * Every reporter is a deterministic function of the SearchRun —
 * candidates in walk order, doubles via shortestDouble — so a resumed
 * or re-threaded run's reports are byte-identical to an uninterrupted
 * single-threaded one (the property the determinism tests and the CI
 * search smoke pin down).
 */

#ifndef SNAILQC_SEARCH_FRONTIER_HPP
#define SNAILQC_SEARCH_FRONTIER_HPP

#include <iosfwd>
#include <vector>

#include "explore/engine.hpp"
#include "search/mutate.hpp"

namespace snail
{

/** One candidate scored on both sides of the co-design trade. */
struct EvaluatedCandidate
{
    Candidate candidate;
    std::string label;  //!< candidateLabel() — the trace/frontier key
    HardwareCost cost;
    bool feasible = true;
    double violation = 0.0; //!< ConstraintSet::violation
    double quality = 0.0;   //!< objective metric, meaned over workloads
    double energy = 0.0;    //!< scalar the walk minimizes
};

/** One annealing step: what was proposed, chosen, and kept. */
struct IterationRecord
{
    int iteration = 0;
    double temperature = 0.0;
    std::vector<EvaluatedCandidate> proposals;
    int chosen = -1;      //!< index into `proposals`
    bool accepted = false;
    EvaluatedCandidate current; //!< walk state after this step
};

/** Everything a finished (or budget-cut) search produced. */
struct SearchRun
{
    SearchSpec spec;
    std::vector<IterationRecord> trace;
    /** Feasible candidates Pareto-optimal on (devices, quality). */
    std::vector<EvaluatedCandidate> frontier;
    EvaluatedCandidate best; //!< lowest-energy feasible candidate
    bool has_best = false;
    EvaluationStats stats;
    std::size_t cache_hits = 0;
    std::size_t cache_misses = 0;
    std::size_t evaluations = 0; //!< candidate evaluations performed
    bool budget_exhausted = false;
};

/**
 * Fold a feasible `point` into the frontier: drop it if some member
 * is at least as good on both axes (first-seen wins exact ties, and a
 * label already present is skipped), else insert it and evict members
 * it dominates.  Infeasible points are ignored.  The frontier stays
 * sorted by (devices asc, quality, label) so serialization is stable.
 */
void updateFrontier(std::vector<EvaluatedCandidate> &frontier,
                    const EvaluatedCandidate &point, bool maximize);

/** JSON form shared by the trace, frontier reports, and tests. */
JsonValue evaluatedCandidateToJson(const EvaluatedCandidate &point);

/** JSONL trace: one compact JSON object per iteration, walk order. */
void writeSearchTrace(std::ostream &os, const SearchRun &run);

/** Frontier CSV: one row per member, cheapest first. */
void writeFrontierCsv(std::ostream &os, const SearchRun &run);

/** The run as one JSON document: spec echo, trace, frontier, best. */
void writeSearchJson(std::ostream &os, const SearchRun &run);

/**
 * Human-facing summary: the frontier table, the best candidate, and
 * the evaluation-statistics line ("... computed N ..."), which the CI
 * search smoke greps.
 */
void printSearchSummary(std::ostream &os, const SearchRun &run);

} // namespace snail

#endif // SNAILQC_SEARCH_FRONTIER_HPP
