#include "search/mutate.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "topology/generators.hpp"
#include "weyl/basis_counts.hpp"

namespace snail
{

namespace
{

/** Clamp every argument into its family's declared search box. */
void
clampToBox(const std::string &family, std::vector<int> &args)
{
    const GeneratorInfo *info = findGenerator(family);
    SNAIL_REQUIRE(info != nullptr, "unknown generator family '"
                                       << family << "'");
    SNAIL_REQUIRE(args.size() == info->params.size(),
                  "generator '" << family << "' takes "
                                << info->params.size() << " arguments");
    for (std::size_t i = 0; i < args.size(); ++i) {
        args[i] = std::clamp(args[i], info->params[i].min,
                             info->params[i].max);
    }
}

/** Pick uniformly from `values` excluding `current` (when possible). */
template <typename T>
T
pickOther(const std::vector<T> &values, const T &current, Rng &rng)
{
    std::vector<const T *> others;
    for (const T &value : values) {
        if (!(value == current)) {
            others.push_back(&value);
        }
    }
    if (others.empty()) {
        return current;
    }
    return *others[rng.index(others.size())];
}

} // namespace

std::string
candidateLabel(const Candidate &candidate)
{
    std::string label = candidate.family + "(";
    for (std::size_t i = 0; i < candidate.args.size(); ++i) {
        if (i) {
            label += ",";
        }
        label += std::to_string(candidate.args[i]);
    }
    label += ")-" + parseBasisSpec(candidate.basis).name();
    if (candidate.fidelity_2q != 1.0) {
        label += "@f" + shortestDouble(candidate.fidelity_2q);
    }
    return label;
}

std::optional<BuiltCandidate>
tryBuildCandidate(const Candidate &candidate, int min_qubits,
                  int max_qubits)
{
    std::optional<CouplingGraph> maybe_graph;
    try {
        maybe_graph.emplace(buildGeneratedTopology(candidate.family,
                                                   candidate.args));
    } catch (const SnailError &) {
        return std::nullopt; // arguments the builder rejects
    }
    const CouplingGraph &graph = *maybe_graph;
    if (graph.numQubits() < min_qubits ||
        graph.numQubits() > max_qubits || !graph.isConnected()) {
        return std::nullopt;
    }
    BuiltCandidate built{candidate,
                         Target::uniform(graph,
                                         parseBasisSpec(candidate.basis),
                                         candidate.fidelity_2q),
                         hardwareCost(candidate.family, candidate.args,
                                      graph)};
    built.target.setName(candidateLabel(candidate));
    return built;
}

std::vector<int>
fitArgs(const std::string &family, int qubits)
{
    const int q = std::max(qubits, 2);
    std::vector<int> args;
    if (family == "corral") {
        // Two fences of `posts` qubits each.
        const int posts = (q + 1) / 2;
        args = {posts, 1, std::min(posts - 1, 2)};
    } else if (family == "tree" || family == "tree-rr") {
        // Smallest depth whose leaf capacity (4^(levels+1) - 4)/3
        // reaches q: 4, 20, 84, 340, 1364.
        int levels = 1;
        long capacity = 4;
        while (levels < 5 && capacity < q) {
            ++levels;
            capacity = 4 * capacity + 4;
        }
        args = {levels};
    } else if (family == "hypercube") {
        int dims = 1;
        while ((1 << dims) < q && dims < 12) {
            ++dims;
        }
        args = {dims};
    } else if (family == "incomplete-hypercube") {
        args = {q};
    } else if (family == "heavy-hex") {
        // Heavy-hex places roughly 2.5 qubits per unit cell.
        const int side = static_cast<int>(
            std::lround(std::sqrt(static_cast<double>(q) / 2.5)));
        args = {side, side};
    } else {
        // Row-major lattices: the squarest rows x cols >= q.
        const int rows = std::max(
            1, static_cast<int>(
                   std::lround(std::sqrt(static_cast<double>(q)))));
        const int cols = (q + rows - 1) / rows;
        args = {rows, cols};
    }
    clampToBox(family, args);
    return args;
}

BuiltCandidate
initialCandidate(const SearchSpace &space, int min_qubits)
{
    for (const std::string &family : space.families) {
        Candidate candidate{family, fitArgs(family, min_qubits),
                            space.bases.front(),
                            space.fidelities.front()};
        std::optional<BuiltCandidate> built =
            tryBuildCandidate(candidate, min_qubits, space.max_qubits);
        if (built) {
            return *built;
        }
    }
    SNAIL_THROW("no family in the search space fits "
                << min_qubits << ".." << space.max_qubits
                << " qubits; widen the space or shrink the workloads");
}

Candidate
mutateCandidate(const Candidate &current, int current_qubits,
                const SearchSpace &space, Rng &rng)
{
    enum class Move
    {
        Tweak,
        Refamily,
        Rebasis,
        Refidelity,
    };
    // Tweaks dominate so the walk mostly explores within a family;
    // basis/fidelity moves only exist when there is a choice.
    std::vector<Move> moves{Move::Tweak, Move::Tweak, Move::Tweak,
                            Move::Refamily};
    if (space.bases.size() > 1) {
        moves.push_back(Move::Rebasis);
    }
    if (space.fidelities.size() > 1) {
        moves.push_back(Move::Refidelity);
    }

    Candidate next = current;
    switch (moves[rng.index(moves.size())]) {
    case Move::Tweak: {
        const GeneratorInfo *info = findGenerator(current.family);
        SNAIL_REQUIRE(info != nullptr, "unknown generator family '"
                                           << current.family << "'");
        const std::size_t slot = rng.index(next.args.size());
        const int step = 1 + static_cast<int>(rng.index(2));
        const int sign = rng.uniform() < 0.5 ? -1 : 1;
        const int lo = info->params[slot].min;
        const int hi = info->params[slot].max;
        int value = std::clamp(next.args[slot] + sign * step, lo, hi);
        if (value == next.args[slot]) {
            value = std::clamp(next.args[slot] - sign * step, lo, hi);
        }
        next.args[slot] = value;
        break;
    }
    case Move::Refamily:
        next.family = space.families[rng.index(space.families.size())];
        next.args = fitArgs(next.family, current_qubits);
        break;
    case Move::Rebasis:
        next.basis = pickOther(space.bases, current.basis, rng);
        break;
    case Move::Refidelity:
        next.fidelity_2q =
            pickOther(space.fidelities, current.fidelity_2q, rng);
        break;
    }
    return next;
}

BuiltCandidate
proposeCandidate(const BuiltCandidate &current, const SearchSpace &space,
                 int min_qubits, Rng &rng)
{
    for (int attempt = 0; attempt < 64; ++attempt) {
        const Candidate mutated =
            mutateCandidate(current.candidate, current.cost.qubits,
                            space, rng);
        std::optional<BuiltCandidate> built =
            tryBuildCandidate(mutated, min_qubits, space.max_qubits);
        if (built) {
            return *built;
        }
    }
    return current;
}

} // namespace snail
