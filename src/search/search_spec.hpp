/**
 * @file
 * Declarative co-design search specifications.
 *
 * Where a SweepSpec enumerates a fixed grid, a SearchSpec describes a
 * *space* to walk: which generator families mutation may visit, which
 * bases and per-edge noise targets it may assign, the feasibility box
 * (cost_model.hpp), the objective, and the annealing schedule.  JSON
 * schema (examples/search/README.md):
 *
 *   {
 *     "name": "qaoa64-under-40-couplers",
 *     "seed": 11,
 *     "workloads": [{"bench": "qaoa", "widths": [64]}],
 *     "pipeline": "dense,stochastic-route=4,elide,basis=sqiswap",
 *     "space": {
 *       "families": ["corral", "tree", "tree-rr", "hypercube"],
 *       "bases": ["sqiswap"],
 *       "fidelities": [0.995],
 *       "min_qubits": 64, "max_qubits": 128
 *     },
 *     "constraints": {"max_couplers": 40, "max_degree": 8},
 *     "objective": {"metric": "basis_2q_total", "maximize": false},
 *     "anneal": {"iterations": 32, "proposals": 3,
 *                "t0": 4, "t1": 0.25, "mode": "anneal"}
 *   }
 *
 * `workloads` reuses the sweep circuits schema (benchmarks at widths,
 * or QASM files); every candidate is evaluated by transpiling the
 * whole workload set, so candidates must host the widest workload.
 */

#ifndef SNAILQC_SEARCH_SEARCH_SPEC_HPP
#define SNAILQC_SEARCH_SEARCH_SPEC_HPP

#include <string>
#include <vector>

#include "common/json.hpp"
#include "explore/sweep_spec.hpp"
#include "search/cost_model.hpp"

namespace snail
{

/** The parametric design space mutation may walk. */
struct SearchSpace
{
    /** Generator families (topology/generators.hpp names). */
    std::vector<std::string> families;
    /** Basis choices (parseBasisSpec names); first is the start. */
    std::vector<std::string> bases;
    /**
     * Uniform per-pulse 2Q fidelity targets a candidate may assume
     * (1.0 = noiseless, the structural-comparison default).
     */
    std::vector<double> fidelities = {1.0};
    int min_qubits = 2;
    int max_qubits = 128;
};

/** What "better" means, and how hard constraints push back. */
struct ObjectiveSpec
{
    std::string metric = "basis_2q_total"; //!< pointMetricValue name
    bool maximize = false;
    /** Energy weight per coupling device (0 = quality-only energy). */
    double cost_weight = 0.0;
    /** Energy weight per unit of normalized constraint violation. */
    double penalty_weight = 1000.0;
};

/** Acceptance modes: annealing, or strict steepest descent. */
enum class SearchMode
{
    Anneal,  //!< Metropolis acceptance on a cooling schedule
    Descent, //!< accept improvements only
};

/** The walk's shape: length, branching, and temperature ramp. */
struct AnnealSchedule
{
    int iterations = 32;
    int proposals = 3; //!< candidates drawn per iteration
    double t0 = 4.0;   //!< initial temperature
    double t1 = 0.25;  //!< final temperature (geometric ramp)
    SearchMode mode = SearchMode::Anneal;
};

/** The full declarative search. */
struct SearchSpec
{
    std::string name = "search";
    unsigned long long seed = kDefaultSweepSeed;
    std::vector<CircuitSpec> workloads;
    std::string pipeline;
    SearchSpace space;
    ConstraintSet constraints;
    ObjectiveSpec objective;
    AnnealSchedule anneal;
};

/**
 * Parse and validate: unknown keys anywhere are rejected, families
 * and the objective metric are checked against their registries, and
 * bases parse eagerly. @throws SnailError naming the offender.
 */
SearchSpec searchSpecFromJson(const JsonValue &json);

/** Serialize; searchSpecFromJson(searchSpecToJson(s)) round-trips. */
JsonValue searchSpecToJson(const SearchSpec &spec);

/** Load a spec file. @throws SnailError on I/O or schema errors. */
SearchSpec loadSearchSpecFile(const std::string &path);

} // namespace snail

#endif // SNAILQC_SEARCH_SEARCH_SPEC_HPP
