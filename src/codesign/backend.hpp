/**
 * @file
 * A Backend is the paper's unit of co-design: a qubit coupling topology
 * paired with the native basis gate its modulator provides.
 *
 *   CR modulator (IBM)      -> CNOT on Heavy-Hex
 *   FSIM modulator (Google) -> SYC on Square-Lattice
 *   SNAIL modulator         -> sqrt(iSWAP) on Tree / Tree-RR / Corral /
 *                              Hypercube
 */

#ifndef SNAILQC_CODESIGN_BACKEND_HPP
#define SNAILQC_CODESIGN_BACKEND_HPP

#include <string>
#include <vector>

#include "topology/registry.hpp"
#include "weyl/basis_counts.hpp"

namespace snail
{

/**
 * Topology + native basis gate.
 *
 * @deprecated Backend is the legacy two-field device description; the
 * first-class model is Target (target/target.hpp), which adds per-edge
 * and per-qubit calibration, JSON device files, and the noise-aware
 * transpiler passes.  Backend remains as a thin source for
 * targetFromBackend() and the paper's fig13/fig14 machine lists.
 */
struct Backend
{
    std::string name;       //!< display label, e.g. "Tree-sqiswap"
    CouplingGraph topology;
    BasisSpec basis;
};

/** Build a backend from a registered topology name and a basis kind. */
Backend makeBackend(const std::string &topology_name, BasisKind basis);

/** The co-designed machines of Fig. 13 (16-20 qubits). */
std::vector<Backend> fig13Backends();

/** The co-designed machines of Fig. 14 (84 qubits). */
std::vector<Backend> fig14Backends();

} // namespace snail

#endif // SNAILQC_CODESIGN_BACKEND_HPP
