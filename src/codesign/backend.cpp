#include "codesign/backend.hpp"

namespace snail
{

Backend
makeBackend(const std::string &topology_name, BasisKind basis)
{
    BasisSpec spec;
    spec.kind = basis;
    Backend backend{topology_name + "-" + spec.name(),
                    namedTopology(topology_name), spec};
    return backend;
}

std::vector<Backend>
fig13Backends()
{
    return {
        makeBackend("heavy-hex-20", BasisKind::CNOT),
        makeBackend("square-16", BasisKind::Sycamore),
        makeBackend("tree-20", BasisKind::SqISwap),
        makeBackend("tree-rr-20", BasisKind::SqISwap),
        makeBackend("hypercube-16", BasisKind::SqISwap),
        makeBackend("corral11-16", BasisKind::SqISwap),
    };
}

std::vector<Backend>
fig14Backends()
{
    return {
        makeBackend("heavy-hex-84", BasisKind::CNOT),
        makeBackend("square-84", BasisKind::Sycamore),
        makeBackend("tree-84", BasisKind::SqISwap),
        makeBackend("tree-rr-84", BasisKind::SqISwap),
        makeBackend("hypercube-84", BasisKind::SqISwap),
    };
}

} // namespace snail
