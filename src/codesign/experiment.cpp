#include "codesign/experiment.hpp"

#include <algorithm>
#include <iostream>
#include <map>
#include <ostream>

#include "common/error.hpp"
#include "common/table.hpp"
#include "explore/engine.hpp"

namespace snail
{

namespace
{

/** Shared sweep driver: `machines` provides topology + basis + label. */
struct MachineRef
{
    std::string label;
    const CouplingGraph *topology;
    BasisSpec basis;
};

/**
 * Thin client of the exploration engine: build exactly the jobs the
 * original sequential loop ran — same circuits (generated with the
 * sweep seed), same per-cell seed derivation, same options-derived
 * pipeline per machine — then evaluate them on the shared pool.  The
 * per-job determinism contract makes the resulting series bit-identical
 * to the old loop at any thread count.
 */
std::vector<Series>
runSweep(const std::vector<BenchmarkKind> &benchmarks,
         const std::vector<MachineRef> &machines, const SweepOptions &options)
{
    // Per-machine device models and pipelines (the basis differs).
    std::vector<Target> targets;
    std::vector<PassManager> pipelines;
    targets.reserve(machines.size());
    pipelines.reserve(machines.size());
    for (const MachineRef &machine : machines) {
        Target target = Target::uniform(*machine.topology, machine.basis);
        target.setName(machine.label);
        targets.push_back(std::move(target));
        TranspileOptions topts;
        topts.layout = options.layout;
        topts.router = options.router;
        topts.stochastic_trials = options.stochastic_trials;
        topts.basis = machine.basis;
        pipelines.push_back(passManagerFromOptions(topts));
    }

    // Circuits, one per (benchmark, width) — shared across machines.
    // Widths no machine can host are never built: an 84-qubit QV
    // instance is expensive to generate and would only be skipped.
    int max_qubits = 0;
    for (const MachineRef &machine : machines) {
        max_qubits = std::max(max_qubits, machine.topology->numQubits());
    }
    std::map<std::pair<BenchmarkKind, int>, Circuit> circuits;
    for (BenchmarkKind bench : benchmarks) {
        for (int width : options.widths) {
            if (width >= 2 && width <= max_qubits) {
                circuits.emplace(std::make_pair(bench, width),
                                 makeBenchmark(bench, width, options.seed));
            }
        }
    }

    // Expand cells in the legacy bench -> machine -> width nesting.
    struct Cell
    {
        std::size_t series;
        int width;
    };
    std::vector<Series> out;
    std::vector<Cell> cells;
    std::vector<ExploreJob> jobs;
    for (BenchmarkKind bench : benchmarks) {
        for (std::size_t mi = 0; mi < machines.size(); ++mi) {
            const MachineRef &machine = machines[mi];
            Series series;
            series.benchmark = benchmarkLabel(bench);
            series.machine = machine.label;
            out.push_back(std::move(series));
            for (int width : options.widths) {
                if (width < 2 || width > machine.topology->numQubits()) {
                    continue;
                }
                ExploreJob job;
                job.circuit = &circuits.at({bench, width});
                job.target = &targets[mi];
                job.pipeline = &pipelines[mi];
                if (options.verbose) {
                    // Printed live by the engine as a worker starts
                    // the cell.
                    job.label = std::string(benchmarkLabel(bench)) +
                                " w=" + std::to_string(width) + " on " +
                                machine.label;
                }
                // Derive a per-cell seed so runs are independent yet
                // reproducible.
                job.seed = options.seed ^
                           (static_cast<unsigned long long>(width) << 32) ^
                           std::hash<std::string>{}(machine.label) ^
                           static_cast<unsigned long long>(bench);
                cells.push_back(Cell{out.size() - 1, width});
                jobs.push_back(std::move(job));
            }
        }
    }

    TranspileCache cache;
    EngineOptions engine;
    engine.threads = options.threads;
    if (options.verbose) {
        engine.progress = &std::cerr;
    }
    const std::vector<PointMetrics> metrics =
        evaluateJobs(jobs, cache, engine);

    for (std::size_t i = 0; i < cells.size(); ++i) {
        out[cells[i].series].points.push_back(
            SeriesPoint{cells[i].width, metrics[i].metrics});
    }
    return out;
}

} // namespace

std::vector<Series>
swapSweep(const std::vector<BenchmarkKind> &benchmarks,
          const std::vector<std::string> &topologies,
          const SweepOptions &options)
{
    // Keep graphs alive for the duration of the sweep.
    std::vector<CouplingGraph> graphs;
    graphs.reserve(topologies.size());
    for (const auto &name : topologies) {
        graphs.push_back(namedTopology(name));
    }
    std::vector<MachineRef> machines;
    for (std::size_t i = 0; i < topologies.size(); ++i) {
        machines.push_back(
            MachineRef{topologies[i], &graphs[i], BasisSpec{BasisKind::CNOT}});
    }
    return runSweep(benchmarks, machines, options);
}

std::vector<Series>
codesignSweep(const std::vector<BenchmarkKind> &benchmarks,
              const std::vector<Backend> &backends,
              const SweepOptions &options)
{
    std::vector<MachineRef> machines;
    machines.reserve(backends.size());
    for (const Backend &b : backends) {
        machines.push_back(MachineRef{b.name, &b.topology, b.basis});
    }
    return runSweep(benchmarks, machines, options);
}

double
metricSwapsTotal(const TranspileMetrics &m)
{
    return static_cast<double>(m.swaps_total);
}

double
metricSwapsCritical(const TranspileMetrics &m)
{
    return m.swaps_critical;
}

double
metricBasis2qTotal(const TranspileMetrics &m)
{
    return static_cast<double>(m.basis_2q_total);
}

double
metricDurationCritical(const TranspileMetrics &m)
{
    return m.duration_critical;
}

void
printSeriesTables(std::ostream &os, const std::vector<Series> &series,
                  MetricSelector metric, const std::string &title)
{
    // Group series by benchmark, preserving insertion order.
    std::vector<std::string> bench_order;
    std::map<std::string, std::vector<const Series *>> grouped;
    for (const Series &s : series) {
        if (grouped.find(s.benchmark) == grouped.end()) {
            bench_order.push_back(s.benchmark);
        }
        grouped[s.benchmark].push_back(&s);
    }

    for (const std::string &bench : bench_order) {
        const auto &group = grouped[bench];
        printBanner(os, title + " -- " + bench);

        // Collect the union of widths.
        std::vector<int> widths;
        for (const Series *s : group) {
            for (const auto &p : s->points) {
                if (std::find(widths.begin(), widths.end(), p.width) ==
                    widths.end()) {
                    widths.push_back(p.width);
                }
            }
        }
        std::sort(widths.begin(), widths.end());

        std::vector<std::string> headers{"width"};
        for (const Series *s : group) {
            headers.push_back(s->machine);
        }
        TableWriter table(headers);
        for (int w : widths) {
            std::vector<std::string> row{std::to_string(w)};
            for (const Series *s : group) {
                const auto it = std::find_if(
                    s->points.begin(), s->points.end(),
                    [w](const SeriesPoint &p) { return p.width == w; });
                row.push_back(it == s->points.end()
                                  ? std::string("-")
                                  : TableWriter::num(metric(it->metrics), 1));
            }
            table.addRow(std::move(row));
        }
        table.print(os);
    }
}

} // namespace snail
