#include "codesign/experiment.hpp"

#include <algorithm>
#include <iostream>
#include <map>
#include <ostream>

#include "common/error.hpp"
#include "common/table.hpp"

namespace snail
{

namespace
{

/** Shared sweep driver: `machines` provides topology + basis + label. */
struct MachineRef
{
    std::string label;
    const CouplingGraph *topology;
    BasisSpec basis;
};

std::vector<Series>
runSweep(const std::vector<BenchmarkKind> &benchmarks,
         const std::vector<MachineRef> &machines, const SweepOptions &options)
{
    std::vector<Series> out;
    for (BenchmarkKind bench : benchmarks) {
        for (const MachineRef &machine : machines) {
            Series series;
            series.benchmark = benchmarkLabel(bench);
            series.machine = machine.label;
            for (int width : options.widths) {
                if (width < 2 || width > machine.topology->numQubits()) {
                    continue;
                }
                const Circuit circuit =
                    makeBenchmark(bench, width, options.seed);
                TranspileOptions topts;
                topts.layout = options.layout;
                topts.router = options.router;
                topts.stochastic_trials = options.stochastic_trials;
                topts.basis = machine.basis;
                // Derive a per-cell seed so runs are independent yet
                // reproducible.
                topts.seed = options.seed ^
                             (static_cast<unsigned long long>(width) << 32) ^
                             std::hash<std::string>{}(machine.label) ^
                             static_cast<unsigned long long>(bench);
                if (options.verbose) {
                    std::cerr << "  [sweep] " << series.benchmark << " w="
                              << width << " on " << machine.label << "\n";
                }
                const TranspileResult r =
                    transpile(circuit, *machine.topology, topts);
                series.points.push_back(SeriesPoint{width, r.metrics});
            }
            out.push_back(std::move(series));
        }
    }
    return out;
}

} // namespace

std::vector<Series>
swapSweep(const std::vector<BenchmarkKind> &benchmarks,
          const std::vector<std::string> &topologies,
          const SweepOptions &options)
{
    // Keep graphs alive for the duration of the sweep.
    std::vector<CouplingGraph> graphs;
    graphs.reserve(topologies.size());
    for (const auto &name : topologies) {
        graphs.push_back(namedTopology(name));
    }
    std::vector<MachineRef> machines;
    for (std::size_t i = 0; i < topologies.size(); ++i) {
        machines.push_back(
            MachineRef{topologies[i], &graphs[i], BasisSpec{BasisKind::CNOT}});
    }
    return runSweep(benchmarks, machines, options);
}

std::vector<Series>
codesignSweep(const std::vector<BenchmarkKind> &benchmarks,
              const std::vector<Backend> &backends,
              const SweepOptions &options)
{
    std::vector<MachineRef> machines;
    machines.reserve(backends.size());
    for (const Backend &b : backends) {
        machines.push_back(MachineRef{b.name, &b.topology, b.basis});
    }
    return runSweep(benchmarks, machines, options);
}

double
metricSwapsTotal(const TranspileMetrics &m)
{
    return static_cast<double>(m.swaps_total);
}

double
metricSwapsCritical(const TranspileMetrics &m)
{
    return m.swaps_critical;
}

double
metricBasis2qTotal(const TranspileMetrics &m)
{
    return static_cast<double>(m.basis_2q_total);
}

double
metricDurationCritical(const TranspileMetrics &m)
{
    return m.duration_critical;
}

void
printSeriesTables(std::ostream &os, const std::vector<Series> &series,
                  MetricSelector metric, const std::string &title)
{
    // Group series by benchmark, preserving insertion order.
    std::vector<std::string> bench_order;
    std::map<std::string, std::vector<const Series *>> grouped;
    for (const Series &s : series) {
        if (grouped.find(s.benchmark) == grouped.end()) {
            bench_order.push_back(s.benchmark);
        }
        grouped[s.benchmark].push_back(&s);
    }

    for (const std::string &bench : bench_order) {
        const auto &group = grouped[bench];
        printBanner(os, title + " -- " + bench);

        // Collect the union of widths.
        std::vector<int> widths;
        for (const Series *s : group) {
            for (const auto &p : s->points) {
                if (std::find(widths.begin(), widths.end(), p.width) ==
                    widths.end()) {
                    widths.push_back(p.width);
                }
            }
        }
        std::sort(widths.begin(), widths.end());

        std::vector<std::string> headers{"width"};
        for (const Series *s : group) {
            headers.push_back(s->machine);
        }
        TableWriter table(headers);
        for (int w : widths) {
            std::vector<std::string> row{std::to_string(w)};
            for (const Series *s : group) {
                const auto it = std::find_if(
                    s->points.begin(), s->points.end(),
                    [w](const SeriesPoint &p) { return p.width == w; });
                row.push_back(it == s->points.end()
                                  ? std::string("-")
                                  : TableWriter::num(metric(it->metrics), 1));
            }
            table.addRow(std::move(row));
        }
        table.print(os);
    }
}

} // namespace snail
