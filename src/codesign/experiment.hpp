/**
 * @file
 * Experiment runner: benchmark x machine sweeps producing the series the
 * paper plots (Figs. 4, 11, 12, 13, 14).
 *
 * A sweep transpiles each benchmark at each width onto each machine and
 * records the Fig. 10 metrics.  SWAP studies (Figs. 4/11/12) are basis
 * agnostic; co-design studies (Figs. 13/14) additionally score the basis
 * translation.
 *
 * Since the design-space exploration engine landed (explore/engine.hpp)
 * this layer is a thin client of it: it builds the same per-cell jobs
 * the old sequential loop ran — identical circuits, seeds, and
 * pipelines, hence bit-identical series — and hands them to
 * evaluateJobs(), which fans them across the shared thread pool.
 * Sweeps beyond the paper's fixed machine lists should use the engine's
 * declarative SweepSpec directly (`snailqc sweep`).
 */

#ifndef SNAILQC_CODESIGN_EXPERIMENT_HPP
#define SNAILQC_CODESIGN_EXPERIMENT_HPP

#include <iosfwd>
#include <string>
#include <vector>

#include "circuits/registry.hpp"
#include "codesign/backend.hpp"
#include "transpiler/pipeline.hpp"

namespace snail
{

/** Sweep configuration. */
struct SweepOptions
{
    std::vector<int> widths;          //!< circuit sizes (x axis)
    LayoutKind layout = LayoutKind::Dense;
    RouterKind router = RouterKind::Stochastic;
    int stochastic_trials = 10;
    unsigned long long seed = 0xBEEF5EEDULL;
    bool verbose = false;             //!< progress notes to stderr
    unsigned threads = 0;             //!< sweep workers; 0 = hardware
};

/** One (width, metrics) sample of a series. */
struct SeriesPoint
{
    int width = 0;
    TranspileMetrics metrics;
};

/** One curve of a paper figure: a benchmark on a machine. */
struct Series
{
    std::string benchmark; //!< paper label, e.g. "Quantum Volume"
    std::string machine;   //!< topology or backend label
    std::vector<SeriesPoint> points;
};

/**
 * Gate-agnostic SWAP study over plain topologies (Figs. 4, 11, 12);
 * widths exceeding a topology's size are skipped for that machine.
 */
std::vector<Series> swapSweep(const std::vector<BenchmarkKind> &benchmarks,
                              const std::vector<std::string> &topologies,
                              const SweepOptions &options);

/** Full co-design study over backends (Figs. 13, 14). */
std::vector<Series> codesignSweep(
    const std::vector<BenchmarkKind> &benchmarks,
    const std::vector<Backend> &backends, const SweepOptions &options);

/** Selector for printing one metric of a series. */
using MetricSelector = double (*)(const TranspileMetrics &);

/** @name Metric selectors matching the paper's y axes. */
/** @{ */
double metricSwapsTotal(const TranspileMetrics &m);
double metricSwapsCritical(const TranspileMetrics &m);
double metricBasis2qTotal(const TranspileMetrics &m);
double metricDurationCritical(const TranspileMetrics &m);
/** @} */

/**
 * Print a figure-style block: one table per benchmark with a width column
 * and one column per machine, in both aligned and CSV form.
 */
void printSeriesTables(std::ostream &os, const std::vector<Series> &series,
                       MetricSelector metric, const std::string &title);

} // namespace snail

#endif // SNAILQC_CODESIGN_EXPERIMENT_HPP
