/**
 * @file
 * The paper's headline quantitative claims, computed from our pipeline.
 *
 * Abstract / Sec. 6:
 *  - On QV circuits from 16 to 80 qubits, Hypercube (sqrt-iSWAP) vs
 *    Heavy-Hex (CNOT): 2.57x fewer total SWAPs, 5.63x fewer critical-path
 *    SWAPs, 3.16x fewer total 2Q gates, 6.11x less 2Q pulse duration.
 *  - For a 99%-fidelity iSWAP basis, the 4th root of iSWAP reduces average
 *    infidelity by ~25% relative to sqrt(iSWAP) (Fig. 15).
 */

#ifndef SNAILQC_CODESIGN_PAPER_HPP
#define SNAILQC_CODESIGN_PAPER_HPP

#include "codesign/experiment.hpp"
#include "fidelity/nroot_study.hpp"

namespace snail
{

/** Geometric-mean advantage ratios of machine B over machine A. */
struct HeadlineRatios
{
    double swaps_total = 0.0;      //!< paper: 2.57x
    double swaps_critical = 0.0;   //!< paper: 5.63x
    double basis_2q_total = 0.0;   //!< paper: 3.16x
    double duration_critical = 0.0;//!< paper: 6.11x
};

/**
 * Run QV at the given widths on two backends and report the geometric
 * mean of baseline/challenger metric ratios (values > 1 favor the
 * challenger).
 */
HeadlineRatios headlineRatios(const Backend &baseline,
                              const Backend &challenger,
                              const std::vector<int> &widths,
                              const SweepOptions &options);

/** The paper's QV-16..80 Hypercube-vs-Heavy-Hex comparison. */
HeadlineRatios hypercubeVsHeavyHex(const SweepOptions &options);

/**
 * Relative infidelity reduction of root_b vs root_a at base iSWAP
 * fidelity f_iswap: 1 - (1 - Ft_b) / (1 - Ft_a).  Paper: ~0.25 for
 * 4th root vs sqrt at f_iswap = 0.99.
 */
double infidelityReduction(const NRootStudyResult &study, double root_a,
                           double root_b, double f_iswap);

} // namespace snail

#endif // SNAILQC_CODESIGN_PAPER_HPP
