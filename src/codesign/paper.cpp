#include "codesign/paper.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/statistics.hpp"

namespace snail
{

HeadlineRatios
headlineRatios(const Backend &baseline, const Backend &challenger,
               const std::vector<int> &widths, const SweepOptions &options)
{
    SweepOptions opts = options;
    opts.widths = widths;
    const std::vector<Series> series =
        codesignSweep({BenchmarkKind::QuantumVolume},
                      {baseline, challenger}, opts);
    SNAIL_ASSERT(series.size() == 2, "expected exactly two series");
    const Series &base = series[0];
    const Series &chal = series[1];

    std::vector<double> r_swaps;
    std::vector<double> r_swapsc;
    std::vector<double> r_2q;
    std::vector<double> r_dur;
    for (const SeriesPoint &bp : base.points) {
        const auto it = std::find_if(
            chal.points.begin(), chal.points.end(),
            [&](const SeriesPoint &cp) { return cp.width == bp.width; });
        if (it == chal.points.end()) {
            continue;
        }
        auto ratio = [](double a, double b) {
            // Guard zero denominators (e.g. zero SWAPs on rich graphs)
            // with a half-count floor so the geometric mean stays finite.
            return std::max(a, 0.5) / std::max(b, 0.5);
        };
        r_swaps.push_back(
            ratio(metricSwapsTotal(bp.metrics), metricSwapsTotal(it->metrics)));
        r_swapsc.push_back(ratio(metricSwapsCritical(bp.metrics),
                                 metricSwapsCritical(it->metrics)));
        r_2q.push_back(ratio(metricBasis2qTotal(bp.metrics),
                             metricBasis2qTotal(it->metrics)));
        r_dur.push_back(ratio(metricDurationCritical(bp.metrics),
                              metricDurationCritical(it->metrics)));
    }
    SNAIL_REQUIRE(!r_swaps.empty(), "no overlapping widths in the sweep");

    HeadlineRatios out;
    out.swaps_total = geometricMean(r_swaps);
    out.swaps_critical = geometricMean(r_swapsc);
    out.basis_2q_total = geometricMean(r_2q);
    out.duration_critical = geometricMean(r_dur);
    return out;
}

HeadlineRatios
hypercubeVsHeavyHex(const SweepOptions &options)
{
    const Backend heavy_hex = makeBackend("heavy-hex-84", BasisKind::CNOT);
    const Backend hypercube = makeBackend("hypercube-84", BasisKind::SqISwap);
    std::vector<int> widths;
    for (int w = 16; w <= 80; w += 8) {
        widths.push_back(w);
    }
    return headlineRatios(heavy_hex, hypercube, widths, options);
}

double
infidelityReduction(const NRootStudyResult &study, double root_a,
                    double root_b, double f_iswap)
{
    const auto &roots = study.roots();
    const auto index_of = [&](double root) {
        for (std::size_t i = 0; i < roots.size(); ++i) {
            if (std::abs(roots[i] - root) < 1e-9) {
                return i;
            }
        }
        SNAIL_THROW("root " << root << " not part of the study");
    };
    const double ft_a =
        study.averageTotalFidelity(index_of(root_a), f_iswap);
    const double ft_b =
        study.averageTotalFidelity(index_of(root_b), f_iswap);
    return 1.0 - (1.0 - ft_b) / (1.0 - ft_a);
}

} // namespace snail
