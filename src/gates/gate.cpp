#include "gates/gate.hpp"

#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace snail
{

const GateInfo &
gateInfo(GateKind kind)
{
    static const GateInfo table[] = {
        {"id", 1, 0},      {"x", 1, 0},        {"y", 1, 0},
        {"z", 1, 0},       {"h", 1, 0},        {"s", 1, 0},
        {"sdg", 1, 0},     {"t", 1, 0},        {"tdg", 1, 0},
        {"sx", 1, 0},      {"rx", 1, 1},       {"ry", 1, 1},
        {"rz", 1, 1},      {"p", 1, 1},        {"u3", 1, 3},
        {"unitary2", 1, 0},
        {"cx", 2, 0},      {"cz", 2, 0},       {"cp", 2, 1},
        {"rzz", 2, 1},     {"swap", 2, 0},     {"iswap", 2, 0},
        {"sqiswap", 2, 0}, {"nroot_iswap", 2, 1},
        {"fsim", 2, 2},    {"syc", 2, 0},      {"zx", 2, 1},
        {"b", 2, 0},       {"can", 2, 3},      {"unitary4", 2, 0},
    };
    return table[static_cast<int>(kind)];
}

Gate::Gate(GateKind kind) : _kind(kind)
{
    SNAIL_REQUIRE(gateInfo(kind).num_params == 0,
                  "gate " << gateInfo(kind).name << " needs parameters");
    SNAIL_REQUIRE(kind != GateKind::Unitary2 && kind != GateKind::Unitary4,
                  "opaque unitary gates need an explicit matrix");
}

Gate::Gate(GateKind kind, std::vector<double> params)
    : _kind(kind), _params(std::move(params))
{
    SNAIL_REQUIRE(static_cast<int>(_params.size()) ==
                      gateInfo(kind).num_params,
                  "gate " << gateInfo(kind).name << " expects "
                          << gateInfo(kind).num_params << " parameters, got "
                          << _params.size());
}

Gate::Gate(GateKind kind, Matrix matrix)
    : _kind(kind), _matrix(std::make_shared<const Matrix>(std::move(matrix)))
{
    SNAIL_REQUIRE(kind == GateKind::Unitary2 || kind == GateKind::Unitary4,
                  "explicit matrices are only for opaque unitary gates");
    const std::size_t dim = (kind == GateKind::Unitary2) ? 2 : 4;
    SNAIL_REQUIRE(_matrix->rows() == dim && _matrix->cols() == dim,
                  "opaque unitary has wrong dimension");
}

std::string
Gate::name() const
{
    return gateInfo(_kind).name;
}

bool
Gate::cacheable() const
{
    return _kind != GateKind::Unitary2 && _kind != GateKind::Unitary4;
}

std::string
Gate::cacheKey() const
{
    std::ostringstream oss;
    oss << gateInfo(_kind).name;
    for (double p : _params) {
        // Round to 1e-12 so cache keys are stable against formatting noise.
        oss << ':' << static_cast<long long>(std::llround(p * 1e12));
    }
    return oss.str();
}

Matrix
Gate::matrix() const
{
    using std::cos;
    using std::sin;
    const Complex i1(0.0, 1.0);
    switch (_kind) {
      case GateKind::I:
        return Matrix::identity(2);
      case GateKind::X:
        return Matrix{{0, 1}, {1, 0}};
      case GateKind::Y:
        return Matrix{{0, -i1}, {i1, 0}};
      case GateKind::Z:
        return Matrix{{1, 0}, {0, -1}};
      case GateKind::H: {
        const double r = 1.0 / std::sqrt(2.0);
        return Matrix{{r, r}, {r, -r}};
      }
      case GateKind::S:
        return Matrix{{1, 0}, {0, i1}};
      case GateKind::Sdg:
        return Matrix{{1, 0}, {0, -i1}};
      case GateKind::T:
        return Matrix{{1, 0}, {0, std::polar(1.0, M_PI / 4.0)}};
      case GateKind::Tdg:
        return Matrix{{1, 0}, {0, std::polar(1.0, -M_PI / 4.0)}};
      case GateKind::SX: {
        const Complex p = Complex(0.5, 0.5);
        const Complex m = Complex(0.5, -0.5);
        return Matrix{{p, m}, {m, p}};
      }
      case GateKind::RX: {
        const double c = cos(_params[0] / 2.0);
        const double s = sin(_params[0] / 2.0);
        return Matrix{{Complex(c, 0.0), Complex(0.0, -s)},
                      {Complex(0.0, -s), Complex(c, 0.0)}};
      }
      case GateKind::RY: {
        const double c = cos(_params[0] / 2.0);
        const double s = sin(_params[0] / 2.0);
        return Matrix{{c, -s}, {s, c}};
      }
      case GateKind::RZ:
        return Matrix{{std::polar(1.0, -_params[0] / 2.0), 0.0},
                      {0.0, std::polar(1.0, _params[0] / 2.0)}};
      case GateKind::Phase:
        return Matrix{{1, 0}, {0, std::polar(1.0, _params[0])}};
      case GateKind::U3: {
        const double c = cos(_params[0] / 2.0);
        const double s = sin(_params[0] / 2.0);
        return Matrix{{Complex(c, 0.0), -std::polar(s, _params[2])},
                      {std::polar(s, _params[1]),
                       std::polar(c, _params[1] + _params[2])}};
      }
      case GateKind::Unitary2:
      case GateKind::Unitary4:
        return *_matrix;
      case GateKind::CX:
        return Matrix{{1, 0, 0, 0},
                      {0, 1, 0, 0},
                      {0, 0, 0, 1},
                      {0, 0, 1, 0}};
      case GateKind::CZ:
        return Matrix{{1, 0, 0, 0},
                      {0, 1, 0, 0},
                      {0, 0, 1, 0},
                      {0, 0, 0, -1}};
      case GateKind::CPhase:
        return Matrix{{1, 0, 0, 0},
                      {0, 1, 0, 0},
                      {0, 0, 1, 0},
                      {0, 0, 0, std::polar(1.0, _params[0])}};
      case GateKind::RZZ: {
        const Complex em = std::polar(1.0, -_params[0] / 2.0);
        const Complex ep = std::polar(1.0, _params[0] / 2.0);
        return Matrix{{em, 0, 0, 0},
                      {0, ep, 0, 0},
                      {0, 0, ep, 0},
                      {0, 0, 0, em}};
      }
      case GateKind::Swap:
        return Matrix{{1, 0, 0, 0},
                      {0, 0, 1, 0},
                      {0, 1, 0, 0},
                      {0, 0, 0, 1}};
      case GateKind::ISwap:
        return gates::nrootIswap(1.0).matrix();
      case GateKind::SqISwap:
        return gates::nrootIswap(2.0).matrix();
      case GateKind::NRootISwap: {
        // Eq. 2 of the paper.
        const double n = _params[0];
        SNAIL_REQUIRE(n >= 1.0, "nroot_iswap order must be >= 1");
        const double c = cos(M_PI / (2.0 * n));
        const double s = sin(M_PI / (2.0 * n));
        return Matrix{{1, 0, 0, 0},
                      {0, Complex(c, 0.0), Complex(0.0, s), 0},
                      {0, Complex(0.0, s), Complex(c, 0.0), 0},
                      {0, 0, 0, 1}};
      }
      case GateKind::FSim: {
        // Eq. 6 of the paper.
        const double theta = _params[0];
        const double phi = _params[1];
        const double c = cos(theta);
        const double s = sin(theta);
        return Matrix{{1, 0, 0, 0},
                      {0, Complex(c, 0.0), Complex(0.0, -s), 0},
                      {0, Complex(0.0, -s), Complex(c, 0.0), 0},
                      {0, 0, 0, std::polar(1.0, -phi)}};
      }
      case GateKind::Sycamore:
        return gates::fsim(M_PI / 2.0, M_PI / 6.0).matrix();
      case GateKind::CrossRes: {
        // Eq. 4 of the paper: ZX(theta).
        const double c = cos(_params[0] / 2.0);
        const double s = sin(_params[0] / 2.0);
        return Matrix{{Complex(c, 0.0), 0, Complex(0.0, -s), 0},
                      {0, Complex(c, 0.0), 0, Complex(0.0, s)},
                      {Complex(0.0, -s), 0, Complex(c, 0.0), 0},
                      {0, Complex(0.0, s), 0, Complex(c, 0.0)}};
      }
      case GateKind::BGate:
        // Berkeley gate: canonical coordinates (pi/4, pi/8, 0).
        return gates::canonical(M_PI / 4.0, M_PI / 8.0, 0.0).matrix();
      case GateKind::Canonical: {
        // exp(i (a XX + b YY + c ZZ)); XX, YY, ZZ commute, so the matrix
        // splits into closed-form 2x2 blocks on {|00>,|11>} and
        // {|01>,|10>}.
        const double a = _params[0];
        const double b = _params[1];
        const double c = _params[2];
        const Complex outer_phase = std::polar(1.0, c);
        const Complex inner_phase = std::polar(1.0, -c);
        const double co = cos(a - b);
        const double so = sin(a - b);
        const double ci = cos(a + b);
        const double si = sin(a + b);
        Matrix m(4, 4);
        m(0, 0) = outer_phase * Complex(co, 0.0);
        m(0, 3) = outer_phase * Complex(0.0, so);
        m(3, 0) = outer_phase * Complex(0.0, so);
        m(3, 3) = outer_phase * Complex(co, 0.0);
        m(1, 1) = inner_phase * Complex(ci, 0.0);
        m(1, 2) = inner_phase * Complex(0.0, si);
        m(2, 1) = inner_phase * Complex(0.0, si);
        m(2, 2) = inner_phase * Complex(ci, 0.0);
        return m;
      }
    }
    SNAIL_ASSERT(false, "unhandled gate kind");
    return Matrix();
}

} // namespace snail
