/**
 * @file
 * Named constructors for the standard gate set (declared in gate.hpp).
 */

#include "gates/gate.hpp"

namespace snail
{
namespace gates
{

Gate i() { return Gate(GateKind::I); }
Gate x() { return Gate(GateKind::X); }
Gate y() { return Gate(GateKind::Y); }
Gate z() { return Gate(GateKind::Z); }
Gate h() { return Gate(GateKind::H); }
Gate s() { return Gate(GateKind::S); }
Gate sdg() { return Gate(GateKind::Sdg); }
Gate t() { return Gate(GateKind::T); }
Gate tdg() { return Gate(GateKind::Tdg); }
Gate sx() { return Gate(GateKind::SX); }
Gate rx(double theta) { return Gate(GateKind::RX, {theta}); }
Gate ry(double theta) { return Gate(GateKind::RY, {theta}); }
Gate rz(double theta) { return Gate(GateKind::RZ, {theta}); }
Gate phase(double theta) { return Gate(GateKind::Phase, {theta}); }

Gate
u3(double theta, double phi, double lam)
{
    return Gate(GateKind::U3, {theta, phi, lam});
}

Gate unitary2(const Matrix &m) { return Gate(GateKind::Unitary2, m); }

Gate cx() { return Gate(GateKind::CX); }
Gate cz() { return Gate(GateKind::CZ); }
Gate cphase(double theta) { return Gate(GateKind::CPhase, {theta}); }
Gate rzz(double theta) { return Gate(GateKind::RZZ, {theta}); }
Gate swapGate() { return Gate(GateKind::Swap); }
Gate iswap() { return Gate(GateKind::ISwap); }
Gate sqiswap() { return Gate(GateKind::SqISwap); }
Gate nrootIswap(double n) { return Gate(GateKind::NRootISwap, {n}); }

Gate
fsim(double theta, double phi)
{
    return Gate(GateKind::FSim, std::vector<double>{theta, phi});
}

Gate sycamore() { return Gate(GateKind::Sycamore); }
Gate crossRes(double theta) { return Gate(GateKind::CrossRes, {theta}); }
Gate bgate() { return Gate(GateKind::BGate); }

Gate
canonical(double a, double b, double c)
{
    return Gate(GateKind::Canonical, {a, b, c});
}

Gate unitary4(const Matrix &m) { return Gate(GateKind::Unitary4, m); }

} // namespace gates
} // namespace snail
