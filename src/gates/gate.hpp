/**
 * @file
 * Gate kinds and the Gate value type.
 *
 * A Gate is a kind plus real parameters (rotation angles, fractional-root
 * order, ...) and, for opaque Haar-random blocks, an explicit matrix.  The
 * set of kinds covers every gate the paper touches: the CR/ZX family (IBM),
 * the FSIM/SYC family (Google), the n-th-root-of-iSWAP family (SNAIL), the
 * canonical CAN(a,b,c) interaction, and the usual 1Q/2Q circuit gates.
 */

#ifndef SNAILQC_GATES_GATE_HPP
#define SNAILQC_GATES_GATE_HPP

#include <memory>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace snail
{

/** Every gate kind known to the library. */
enum class GateKind
{
    // 1Q
    I,
    X,
    Y,
    Z,
    H,
    S,
    Sdg,
    T,
    Tdg,
    SX,
    RX,
    RY,
    RZ,
    Phase,
    U3,
    Unitary2,
    // 2Q
    CX,
    CZ,
    CPhase,
    RZZ,
    Swap,
    ISwap,
    SqISwap,
    NRootISwap,
    FSim,
    Sycamore,
    CrossRes,
    BGate,
    Canonical,
    Unitary4,
};

/** Static metadata for a gate kind. */
struct GateInfo
{
    const char *name;      //!< mnemonic, e.g. "cx"
    int num_qubits;        //!< 1 or 2
    int num_params;        //!< expected parameter count
};

/** Metadata lookup. */
const GateInfo &gateInfo(GateKind kind);

/** A concrete gate: kind + parameters (+ explicit matrix for opaque 2Q). */
class Gate
{
  public:
    /** Parameterless gate. */
    explicit Gate(GateKind kind);

    /** Parameterized gate. */
    Gate(GateKind kind, std::vector<double> params);

    /** Opaque gate carrying an explicit unitary (Unitary2 / Unitary4). */
    Gate(GateKind kind, Matrix matrix);

    GateKind kind() const { return _kind; }
    const std::vector<double> &params() const { return _params; }
    int numQubits() const { return gateInfo(_kind).num_qubits; }
    std::string name() const;

    /** The unitary matrix of this gate (2x2 or 4x4). */
    Matrix matrix() const;

    /** True for any two-qubit kind. */
    bool isTwoQubit() const { return numQubits() == 2; }

    /**
     * A stable key identifying the gate's unitary for caching Weyl
     * coordinates (kind tag plus rounded parameters); opaque unitaries are
     * never cached.
     */
    bool cacheable() const;
    std::string cacheKey() const;

  private:
    GateKind _kind;
    std::vector<double> _params;
    std::shared_ptr<const Matrix> _matrix; //!< only for Unitary2/4
};

/** Named constructors for every gate kind. */
namespace gates
{

Gate i();
Gate x();
Gate y();
Gate z();
Gate h();
Gate s();
Gate sdg();
Gate t();
Gate tdg();
Gate sx();
Gate rx(double theta);
Gate ry(double theta);
Gate rz(double theta);
Gate phase(double theta);
Gate u3(double theta, double phi, double lam);
Gate unitary2(const Matrix &m);

Gate cx();
Gate cz();
Gate cphase(double theta);
Gate rzz(double theta);
Gate swapGate();
Gate iswap();
Gate sqiswap();
/** n-th root of iSWAP (Eq. 2 of the paper); n = 1 is iSWAP itself. */
Gate nrootIswap(double n);
Gate fsim(double theta, double phi);
Gate sycamore();
/** Cross-resonance ZX(theta) (Eq. 4 of the paper). */
Gate crossRes(double theta);
Gate bgate();
/** Canonical interaction exp(i (a XX + b YY + c ZZ)). */
Gate canonical(double a, double b, double c);
Gate unitary4(const Matrix &m);

} // namespace gates

} // namespace snail

#endif // SNAILQC_GATES_GATE_HPP
