/**
 * @file
 * The quantum circuit container.
 *
 * A Circuit is an ordered list of instructions over a fixed number of
 * qubits.  It provides convenience appenders for the standard gate set,
 * basic gate statistics, and is the unit of work for the transpiler
 * (layout, routing, basis translation) and the simulator.
 */

#ifndef SNAILQC_IR_CIRCUIT_HPP
#define SNAILQC_IR_CIRCUIT_HPP

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "ir/instruction.hpp"

namespace snail
{

/** Ordered list of gates over a fixed register of qubits. */
class Circuit
{
  public:
    /** Empty circuit over num_qubits qubits. */
    explicit Circuit(int num_qubits, std::string name = "circuit");

    int numQubits() const { return _numQubits; }
    const std::string &name() const { return _name; }
    void setName(std::string name) { _name = std::move(name); }

    const std::vector<Instruction> &instructions() const { return _ops; }
    std::size_t size() const { return _ops.size(); }
    bool empty() const { return _ops.empty(); }

    /**
     * Pre-size the instruction list.  Routers reserve the input
     * instruction count up front so appending the routed stream does
     * not reallocate for swap-free stretches.
     */
    void reserve(std::size_t capacity) { _ops.reserve(capacity); }

    /** Append a prebuilt instruction. */
    void append(Instruction inst);

    /** Append a gate on explicit qubits. */
    void append(const Gate &gate, const std::vector<Qubit> &qubits);

    /** @name Convenience appenders for the standard gate set. */
    /** @{ */
    void i(Qubit q);
    void x(Qubit q);
    void y(Qubit q);
    void z(Qubit q);
    void h(Qubit q);
    void s(Qubit q);
    void sdg(Qubit q);
    void t(Qubit q);
    void tdg(Qubit q);
    void sx(Qubit q);
    void rx(double theta, Qubit q);
    void ry(double theta, Qubit q);
    void rz(double theta, Qubit q);
    void p(double theta, Qubit q);
    void u3(double theta, double phi, double lam, Qubit q);
    void unitary2(const Matrix &m, Qubit q);
    void cx(Qubit control, Qubit target);
    void cz(Qubit a, Qubit b);
    void cp(double theta, Qubit a, Qubit b);
    void rzz(double theta, Qubit a, Qubit b);
    void swap(Qubit a, Qubit b);
    void iswap(Qubit a, Qubit b);
    void sqiswap(Qubit a, Qubit b);
    void unitary4(const Matrix &m, Qubit a, Qubit b);
    /** @} */

    /**
     * Append a Toffoli (CCX) as its standard 6-CNOT + 1Q decomposition so
     * the circuit stays within the 1Q/2Q instruction set the transpiler
     * understands.
     */
    void ccxDecomposed(Qubit a, Qubit b, Qubit target);

    /** Append every instruction of another circuit (same width or less). */
    void extend(const Circuit &other);

    /** Total number of two-qubit instructions. */
    std::size_t countTwoQubit() const;

    /** Number of instructions of a given kind. */
    std::size_t countKind(GateKind kind) const;

    /** Set of qubits actually used by at least one instruction. */
    std::vector<Qubit> activeQubits() const;

    /**
     * Longest dependency chain where each instruction contributes
     * weight(inst); 1Q gates may be given weight 0 to reflect the paper's
     * "1Q gates are negligible" normalization.
     */
    double weightedCriticalPath(
        const std::function<double(const Instruction &)> &weight) const;

    /** Critical path counting every 2Q gate as 1 (1Q gates free). */
    double twoQubitDepth() const;

    /**
     * Stable 64-bit content hash (common/hash.hpp): qubit count plus
     * every instruction's gate kind, parameters, operand qubits, and —
     * for opaque Unitary2/Unitary4 gates — the explicit matrix
     * entries.  The display name is deliberately excluded: two
     * circuits that apply the same gates to the same qubits are the
     * same content.  Used by the explore/ transpile cache to address
     * results across runs, so the value must never depend on process
     * state (pointer values, std::hash).
     */
    unsigned long long contentHash() const;

    /** Human-readable listing. */
    void dump(std::ostream &os) const;

  private:
    int _numQubits;
    std::string _name;
    std::vector<Instruction> _ops;
};

} // namespace snail

#endif // SNAILQC_IR_CIRCUIT_HPP
