/**
 * @file
 * DAG-style views of a circuit: ASAP layering and front-layer iteration.
 *
 * The routers consume circuits as a sequence of "front layers" (maximal
 * sets of instructions whose qubit dependencies are satisfied), mirroring
 * how Qiskit's StochasticSwap and SABRE walk the DAG.
 */

#ifndef SNAILQC_IR_DAG_HPP
#define SNAILQC_IR_DAG_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ir/circuit.hpp"

namespace snail
{

/**
 * Assign each instruction an ASAP layer index (all gates weight 1) and
 * return the layer of every instruction, in circuit order.
 */
std::vector<std::size_t> asapLayers(const Circuit &circuit);

/** Group instruction indices by ASAP layer. */
std::vector<std::vector<std::size_t>> layeredSchedule(const Circuit &circuit);

/**
 * Iterator over the data-dependency frontier of a circuit.
 *
 * The frontier contains the earliest not-yet-consumed instruction per
 * qubit chain; consuming instructions advances the frontier.  Routers pull
 * executable gates from the frontier and insert SWAPs when the frontier's
 * 2Q gates are not adjacent on the device.
 */
class DependencyFrontier
{
  public:
    explicit DependencyFrontier(const Circuit &circuit);

    /** Indices of instructions currently ready (all predecessors done). */
    const std::vector<std::size_t> &ready() const { return _ready; }

    /** True when every instruction has been consumed. */
    bool done() const { return _remaining == 0; }

    /** Mark one ready instruction as executed and advance the frontier. */
    void consume(std::size_t instruction_index);

    /**
     * Reusable state for the allocation-free lookahead() overload.  One
     * instance serves every call from one routing loop; the epoch stamp
     * replaces clearing the visited marks between calls.
     */
    struct LookaheadScratch
    {
        std::vector<std::size_t> queue;
        std::vector<std::size_t> next;
        std::vector<std::uint64_t> seen; //!< seen[i] == epoch -> visited
        std::uint64_t epoch = 0;
    };

    /**
     * Successor instructions of the current frontier, up to `horizon` per
     * qubit chain — the "extended set" used by lookahead routers.
     */
    std::vector<std::size_t> lookahead(std::size_t horizon) const;

    /**
     * Allocation-free variant for router hot loops: fills `out` (cleared
     * first) instead of returning a fresh vector, and keeps the BFS
     * working set in `scratch` so steady-state calls allocate nothing.
     */
    void lookahead(std::size_t horizon, LookaheadScratch &scratch,
                   std::vector<std::size_t> &out) const;

  private:
    const Circuit &_circuit;
    /** For each instruction, number of unfinished predecessors. */
    std::vector<int> _pending;
    /** For each instruction, its qubit-chain successors. */
    std::vector<std::vector<std::size_t>> _successors;
    std::vector<std::size_t> _ready;
    std::size_t _remaining;
};

} // namespace snail

#endif // SNAILQC_IR_DAG_HPP
