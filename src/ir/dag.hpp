/**
 * @file
 * DAG-style views of a circuit: ASAP layering and front-layer iteration.
 *
 * The routers consume circuits as a sequence of "front layers" (maximal
 * sets of instructions whose qubit dependencies are satisfied), mirroring
 * how Qiskit's StochasticSwap and SABRE walk the DAG.
 */

#ifndef SNAILQC_IR_DAG_HPP
#define SNAILQC_IR_DAG_HPP

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <vector>

#include "ir/circuit.hpp"

namespace snail
{

/**
 * Assign each instruction an ASAP layer index (all gates weight 1) and
 * return the layer of every instruction, in circuit order.
 */
std::vector<std::size_t> asapLayers(const Circuit &circuit);

/** Group instruction indices by ASAP layer. */
std::vector<std::vector<std::size_t>> layeredSchedule(const Circuit &circuit);

/**
 * Iterator over the data-dependency frontier of a circuit.
 *
 * The frontier contains the earliest not-yet-consumed instruction per
 * qubit chain; consuming instructions advances the frontier.  Routers pull
 * executable gates from the frontier and insert SWAPs when the frontier's
 * 2Q gates are not adjacent on the device.
 *
 * The ready set is an intrusive doubly-linked list threaded through
 * per-instruction index arrays (a position index: _next[i] / _prev[i]
 * name instruction i's neighbors in ready order).  consume() is
 * therefore O(1) + successor wiring, instead of the old O(front)
 * std::find over a vector — 84-qubit circuits keep fronts tens of
 * gates wide, and every routing step consumes from them.  Iteration
 * order is identical to the old vector semantics: new ready
 * instructions append at the tail, and removal preserves the relative
 * order of the rest (routers' executable-gate choices, and with them
 * routed output, are order-sensitive).
 */
class DependencyFrontier
{
  public:
    explicit DependencyFrontier(const Circuit &circuit);

    /**
     * Lightweight forward range over the ready instructions (all
     * predecessors done), in frontier order.  Borrow only: the view
     * walks the frontier's live links, so consume() invalidates
     * iterators to the consumed element (routers that consume
     * mid-iteration restart or snapshot first).
     */
    class ReadyView
    {
      public:
        class iterator
        {
          public:
            using iterator_category = std::forward_iterator_tag;
            using value_type = std::size_t;
            using difference_type = std::ptrdiff_t;
            using pointer = const std::size_t *;
            using reference = std::size_t;

            iterator(const std::vector<std::size_t> *next, std::size_t at)
                : _next(next), _at(at)
            {
            }

            std::size_t operator*() const { return _at; }
            iterator &
            operator++()
            {
                _at = (*_next)[_at];
                return *this;
            }
            iterator
            operator++(int)
            {
                iterator copy = *this;
                ++(*this);
                return copy;
            }
            bool
            operator==(const iterator &other) const
            {
                return _at == other._at;
            }
            bool
            operator!=(const iterator &other) const
            {
                return !(*this == other);
            }

          private:
            const std::vector<std::size_t> *_next;
            std::size_t _at;
        };

        ReadyView(const std::vector<std::size_t> &next, std::size_t sentinel)
            : _next(&next), _sentinel(sentinel)
        {
        }

        iterator begin() const { return {_next, (*_next)[_sentinel]}; }
        iterator end() const { return {_next, _sentinel}; }
        bool empty() const { return (*_next)[_sentinel] == _sentinel; }

      private:
        const std::vector<std::size_t> *_next;
        std::size_t _sentinel;
    };

    /** The instructions currently ready, in frontier order. */
    ReadyView ready() const { return ReadyView(_next, _sentinel); }

    /** Number of instructions currently ready. */
    std::size_t readyCount() const { return _readyCount; }

    /** True when instruction i is in the ready set. */
    bool
    isReady(std::size_t instruction_index) const
    {
        return instruction_index < _inReady.size() &&
               _inReady[instruction_index] != 0;
    }

    /** True when every instruction has been consumed. */
    bool done() const { return _remaining == 0; }

    /** Mark one ready instruction as executed and advance the frontier. */
    void consume(std::size_t instruction_index);

    /**
     * Reusable state for the allocation-free lookahead() overload.  One
     * instance serves every call from one routing loop; the epoch stamp
     * replaces clearing the visited marks between calls.
     */
    struct LookaheadScratch
    {
        std::vector<std::size_t> queue;
        std::vector<std::size_t> next;
        std::vector<std::uint64_t> seen; //!< seen[i] == epoch -> visited
        std::uint64_t epoch = 0;
    };

    /**
     * Successor instructions of the current frontier, up to `horizon` per
     * qubit chain — the "extended set" used by lookahead routers.
     */
    std::vector<std::size_t> lookahead(std::size_t horizon) const;

    /**
     * Allocation-free variant for router hot loops: fills `out` (cleared
     * first) instead of returning a fresh vector, and keeps the BFS
     * working set in `scratch` so steady-state calls allocate nothing.
     */
    void lookahead(std::size_t horizon, LookaheadScratch &scratch,
                   std::vector<std::size_t> &out) const;

  private:
    /** Append instruction i at the tail of the ready list. */
    void linkReady(std::size_t i);

    const Circuit &_circuit;
    /** For each instruction, number of unfinished predecessors. */
    std::vector<int> _pending;
    /** For each instruction, its qubit-chain successors. */
    std::vector<std::vector<std::size_t>> _successors;
    /**
     * Intrusive ready list: _next/_prev are indexed by instruction,
     * with one extra sentinel slot (_sentinel == circuit.size())
     * closing the circle.  _inReady flags membership for O(1) lookup.
     */
    std::vector<std::size_t> _next;
    std::vector<std::size_t> _prev;
    std::vector<std::uint8_t> _inReady;
    std::size_t _sentinel;
    std::size_t _readyCount;
    std::size_t _remaining;
};

} // namespace snail

#endif // SNAILQC_IR_DAG_HPP
