#include "ir/qasm_parser.hpp"

#include <cmath>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>

#include "common/error.hpp"
#include "ir/qasm_lexer.hpp"

namespace snail
{

namespace
{

/**
 * Embedded copy of the OpenQASM 2.0 standard library (qelib1.inc),
 * lightly extended with iswap.  Gates whose names have native snailqc
 * kinds are intercepted before these bodies are consulted; the bodies
 * matter only for composite gates (ccx, crz, cu3, rxx, ...).
 */
const char *const kQelib1Source = R"QASM(
gate u3(theta,phi,lambda) q { U(theta,phi,lambda) q; }
gate u2(phi,lambda) q { U(pi/2,phi,lambda) q; }
gate u1(lambda) q { U(0,0,lambda) q; }
gate cx c,t { CX c,t; }
gate id a { U(0,0,0) a; }
gate u0(gamma) q { U(0,0,0) q; }
gate u(theta,phi,lambda) q { U(theta,phi,lambda) q; }
gate p(lambda) q { U(0,0,lambda) q; }
gate x a { u3(pi,0,pi) a; }
gate y a { u3(pi,pi/2,pi/2) a; }
gate z a { u1(pi) a; }
gate h a { u2(0,pi) a; }
gate s a { u1(pi/2) a; }
gate sdg a { u1(-pi/2) a; }
gate t a { u1(pi/4) a; }
gate tdg a { u1(-pi/4) a; }
gate rx(theta) a { u3(theta,-pi/2,pi/2) a; }
gate ry(theta) a { u3(theta,0,0) a; }
gate rz(phi) a { u1(phi) a; }
gate sx a { sdg a; h a; sdg a; }
gate sxdg a { s a; h a; s a; }
gate cz a,b { h b; cx a,b; h b; }
gate cy a,b { sdg b; cx a,b; s b; }
gate swap a,b { cx a,b; cx b,a; cx a,b; }
gate ch a,b { h b; sdg b; cx a,b; h b; t b; cx a,b; t b; h b; s b; x b; s a; }
gate ccx a,b,c { h c; cx b,c; tdg c; cx a,c; t c; cx b,c; tdg c; cx a,c; t b; t c; h c; cx a,b; t a; tdg b; cx a,b; }
gate cswap a,b,c { cx c,b; ccx a,b,c; cx c,b; }
gate crx(lambda) a,b { u1(pi/2) b; cx a,b; u3(-lambda/2,0,0) b; cx a,b; u3(lambda/2,-pi/2,0) b; }
gate cry(lambda) a,b { ry(lambda/2) b; cx a,b; ry(-lambda/2) b; cx a,b; }
gate crz(lambda) a,b { rz(lambda/2) b; cx a,b; rz(-lambda/2) b; cx a,b; }
gate cu1(lambda) a,b { u1(lambda/2) a; cx a,b; u1(-lambda/2) b; cx a,b; u1(lambda/2) b; }
gate cp(lambda) a,b { cu1(lambda) a,b; }
gate cu3(theta,phi,lambda) c,t { u1((lambda+phi)/2) c; u1((lambda-phi)/2) t; cx c,t; u3(-theta/2,0,-(phi+lambda)/2) t; cx c,t; u3(theta/2,phi,0) t; }
gate csx a,b { h b; cu1(pi/2) a,b; h b; }
gate cu(theta,phi,lambda,gamma) c,t { p(gamma) c; p((lambda+phi)/2) c; p((lambda-phi)/2) t; cx c,t; u(-theta/2,0,-(phi+lambda)/2) t; cx c,t; u(theta/2,phi,0) t; }
gate rxx(theta) a,b { u3(pi/2,theta,0) a; h b; cx a,b; u1(-theta) b; cx a,b; h b; u2(-pi,pi-theta) a; }
gate rzz(theta) a,b { cx a,b; u1(theta) b; cx a,b; }
gate iswap a,b { s a; s b; h a; cx a,b; cx b,a; h b; }
)QASM";

/** Parameter expression AST evaluated against a name -> value scope. */
class Expr
{
  public:
    virtual ~Expr() = default;
    virtual double eval(const std::map<std::string, double> &env) const = 0;
};

using ExprPtr = std::unique_ptr<Expr>;

class NumberExpr : public Expr
{
  public:
    explicit NumberExpr(double v) : _value(v) {}
    double
    eval(const std::map<std::string, double> &) const override
    {
        return _value;
    }

  private:
    double _value;
};

class ParamExpr : public Expr
{
  public:
    ParamExpr(std::string name, std::string location)
        : _name(std::move(name)), _location(std::move(location))
    {
    }

    double
    eval(const std::map<std::string, double> &env) const override
    {
        auto it = env.find(_name);
        if (it == env.end()) {
            SNAIL_THROW(_location << ": unknown parameter '" << _name
                                  << "' in expression");
        }
        return it->second;
    }

  private:
    std::string _name;
    std::string _location;
};

class UnaryExpr : public Expr
{
  public:
    explicit UnaryExpr(ExprPtr operand) : _operand(std::move(operand)) {}

    double
    eval(const std::map<std::string, double> &env) const override
    {
        return -_operand->eval(env);
    }

  private:
    ExprPtr _operand;
};

class BinaryExpr : public Expr
{
  public:
    BinaryExpr(char op, ExprPtr lhs, ExprPtr rhs, std::string location)
        : _op(op),
          _lhs(std::move(lhs)),
          _rhs(std::move(rhs)),
          _location(std::move(location))
    {
    }

    double
    eval(const std::map<std::string, double> &env) const override
    {
        double a = _lhs->eval(env);
        double b = _rhs->eval(env);
        switch (_op) {
          case '+':
            return a + b;
          case '-':
            return a - b;
          case '*':
            return a * b;
          case '/':
            if (b == 0.0) {
                SNAIL_THROW(_location << ": division by zero in parameter "
                                         "expression");
            }
            return a / b;
          case '^':
            return std::pow(a, b);
        }
        SNAIL_THROW(_location << ": bad operator");
    }

  private:
    char _op;
    ExprPtr _lhs;
    ExprPtr _rhs;
    std::string _location;
};

class CallExpr : public Expr
{
  public:
    CallExpr(std::string func, ExprPtr arg, std::string location)
        : _func(std::move(func)),
          _arg(std::move(arg)),
          _location(std::move(location))
    {
    }

    double
    eval(const std::map<std::string, double> &env) const override
    {
        double x = _arg->eval(env);
        if (_func == "sin") {
            return std::sin(x);
        }
        if (_func == "cos") {
            return std::cos(x);
        }
        if (_func == "tan") {
            return std::tan(x);
        }
        if (_func == "exp") {
            return std::exp(x);
        }
        if (_func == "ln") {
            if (x <= 0.0) {
                SNAIL_THROW(_location << ": ln of non-positive value");
            }
            return std::log(x);
        }
        if (_func == "sqrt") {
            if (x < 0.0) {
                SNAIL_THROW(_location << ": sqrt of negative value");
            }
            return std::sqrt(x);
        }
        SNAIL_THROW(_location << ": unknown function '" << _func << "'");
    }

  private:
    std::string _func;
    ExprPtr _arg;
    std::string _location;
};

/** A call inside a gate body: name(params) formal-arg-indices. */
struct BodyCall
{
    std::string name;
    std::vector<std::shared_ptr<Expr>> params;
    std::vector<int> arg_indices;
    int line = 0;
};

/** A user or qelib1 gate definition. */
struct GateDef
{
    std::string name;
    std::vector<std::string> param_names;
    int num_qargs = 0;
    std::vector<BodyCall> body;
    bool opaque = false;
    bool from_qelib = false;
};

/** Mapping from a QASM gate name to a native snailqc gate kind. */
struct NativeGate
{
    GateKind kind;
    int num_params;
    int num_qargs;
};

const std::map<std::string, NativeGate> &
nativeGateMap()
{
    static const std::map<std::string, NativeGate> map = {
        {"id", {GateKind::I, 0, 1}},      {"x", {GateKind::X, 0, 1}},
        {"y", {GateKind::Y, 0, 1}},       {"z", {GateKind::Z, 0, 1}},
        {"h", {GateKind::H, 0, 1}},       {"s", {GateKind::S, 0, 1}},
        {"sdg", {GateKind::Sdg, 0, 1}},   {"t", {GateKind::T, 0, 1}},
        {"tdg", {GateKind::Tdg, 0, 1}},   {"sx", {GateKind::SX, 0, 1}},
        {"rx", {GateKind::RX, 1, 1}},     {"ry", {GateKind::RY, 1, 1}},
        {"rz", {GateKind::RZ, 1, 1}},     {"p", {GateKind::Phase, 1, 1}},
        {"u1", {GateKind::Phase, 1, 1}},  {"u3", {GateKind::U3, 3, 1}},
        {"u", {GateKind::U3, 3, 1}},      {"cx", {GateKind::CX, 0, 2}},
        {"CX", {GateKind::CX, 0, 2}},     {"cz", {GateKind::CZ, 0, 2}},
        {"cp", {GateKind::CPhase, 1, 2}}, {"cu1", {GateKind::CPhase, 1, 2}},
        {"rzz", {GateKind::RZZ, 1, 2}},   {"swap", {GateKind::Swap, 0, 2}},
        {"iswap", {GateKind::ISwap, 0, 2}},
    };
    return map;
}

/** An operand in a gate-application statement: register or single qubit. */
struct Operand
{
    std::string reg;
    int index = -1; //!< -1 when the whole register is named
    int line = 0;
};

/** Recursive-descent parser for one QASM 2.0 translation unit. */
class Parser
{
  public:
    Parser(const std::string &source, const std::string &filename)
        : _lexer(source, filename), _filename(filename)
    {
        advance();
    }

    QasmParseResult
    parse()
    {
        parseHeader();
        while (_tok.kind != QasmTokenKind::EndOfFile) {
            parseStatement();
        }
        QasmParseResult result;
        result.circuit = buildCircuit();
        result.qregs = _qregs;
        result.cregs = _cregs;
        result.measurements = std::move(_measurements);
        result.barriers = _barriers;
        return result;
    }

  private:
    // --- token plumbing ---------------------------------------------------

    void advance() { _tok = _lexer.next(); }

    std::string
    location(int line = -1) const
    {
        std::ostringstream oss;
        oss << _filename << ':' << (line < 0 ? _tok.line : line);
        return oss.str();
    }

    [[noreturn]] void
    fail(const std::string &msg) const
    {
        SNAIL_THROW(_filename << ':' << _tok.line << ':' << _tok.column
                              << ": " << msg);
    }

    void
    expect(QasmTokenKind kind, const char *what)
    {
        if (_tok.kind != kind) {
            fail(std::string("expected ") + what + ", got " +
                 qasmTokenKindName(_tok.kind) +
                 (_tok.text.empty() ? "" : " '" + _tok.text + "'"));
        }
        advance();
    }

    bool
    accept(QasmTokenKind kind)
    {
        if (_tok.kind == kind) {
            advance();
            return true;
        }
        return false;
    }

    std::string
    expectIdentifier(const char *what)
    {
        if (_tok.kind != QasmTokenKind::Identifier) {
            fail(std::string("expected ") + what);
        }
        std::string name = _tok.text;
        advance();
        return name;
    }

    int
    expectInteger(const char *what)
    {
        if (_tok.kind != QasmTokenKind::Integer) {
            fail(std::string("expected ") + what);
        }
        int value = static_cast<int>(_tok.int_value);
        advance();
        return value;
    }

    // --- program structure ------------------------------------------------

    void
    parseHeader()
    {
        if (_tok.kind == QasmTokenKind::Identifier &&
            _tok.text == "OPENQASM") {
            advance();
            if (_tok.kind != QasmTokenKind::Real &&
                _tok.kind != QasmTokenKind::Integer) {
                fail("expected version number after OPENQASM");
            }
            if (_tok.real_value >= 3.0) {
                fail("only OpenQASM 2.x is supported (got version " +
                     _tok.text + ")");
            }
            advance();
            expect(QasmTokenKind::Semicolon, "';' after version");
        }
    }

    void
    parseStatement()
    {
        if (_tok.kind != QasmTokenKind::Identifier) {
            fail("expected a statement");
        }
        const std::string &kw = _tok.text;
        if (kw == "include") {
            parseInclude();
        } else if (kw == "qreg") {
            parseReg(true);
        } else if (kw == "creg") {
            parseReg(false);
        } else if (kw == "gate") {
            parseGateDef(false);
        } else if (kw == "opaque") {
            parseGateDef(true);
        } else if (kw == "barrier") {
            parseBarrier();
        } else if (kw == "measure") {
            parseMeasure();
        } else if (kw == "reset") {
            fail("'reset' is not representable in a unitary circuit; "
                 "remove it or split the program at the reset");
        } else if (kw == "if") {
            fail("classically controlled operations ('if') are not "
                 "supported");
        } else {
            parseApplication();
        }
    }

    void
    parseInclude()
    {
        advance();
        if (_tok.kind != QasmTokenKind::String) {
            fail("expected filename string after include");
        }
        std::string file = _tok.text;
        advance();
        expect(QasmTokenKind::Semicolon, "';' after include");
        if (file == "qelib1.inc") {
            loadQelib1();
        } else {
            fail("cannot include '" + file +
                 "': only the embedded qelib1.inc is available");
        }
    }

    void
    loadQelib1()
    {
        if (_qelibLoaded) {
            return;
        }
        _qelibLoaded = true;
        Parser lib(kQelib1Source, "qelib1.inc");
        while (lib._tok.kind != QasmTokenKind::EndOfFile) {
            lib.parseGateDef(false);
        }
        for (auto &entry : lib._defs) {
            entry.second.from_qelib = true;
            _defs.insert(std::move(entry));
        }
    }

    void
    parseReg(bool quantum)
    {
        int line = _tok.line;
        advance();
        std::string name = expectIdentifier("register name");
        expect(QasmTokenKind::LBracket, "'['");
        int size = expectInteger("register size");
        expect(QasmTokenKind::RBracket, "']'");
        expect(QasmTokenKind::Semicolon, "';'");
        if (size <= 0) {
            SNAIL_THROW(location(line)
                        << ": register '" << name
                        << "' must have positive size, got " << size);
        }
        if (findReg(name, true) || findReg(name, false)) {
            SNAIL_THROW(location(line) << ": register '" << name
                                       << "' already declared");
        }
        auto &regs = quantum ? _qregs : _cregs;
        int offset = regs.empty() ? 0 : regs.back().offset +
                                        regs.back().size;
        regs.push_back(QasmRegister{name, offset, size});
    }

    const QasmRegister *
    findReg(const std::string &name, bool quantum) const
    {
        const auto &regs = quantum ? _qregs : _cregs;
        for (const auto &reg : regs) {
            if (reg.name == name) {
                return &reg;
            }
        }
        return nullptr;
    }

    // --- gate definitions ---------------------------------------------

    void
    parseGateDef(bool opaque)
    {
        int line = _tok.line;
        advance(); // 'gate' / 'opaque'
        GateDef def;
        def.opaque = opaque;
        def.name = expectIdentifier("gate name");
        if (_defs.count(def.name)) {
            SNAIL_THROW(location(line) << ": gate '" << def.name
                                       << "' already defined");
        }

        if (accept(QasmTokenKind::LParen)) {
            if (_tok.kind != QasmTokenKind::RParen) {
                def.param_names.push_back(expectIdentifier("parameter"));
                while (accept(QasmTokenKind::Comma)) {
                    def.param_names.push_back(
                        expectIdentifier("parameter"));
                }
            }
            expect(QasmTokenKind::RParen, "')'");
        }

        std::vector<std::string> qarg_names;
        qarg_names.push_back(expectIdentifier("qubit argument"));
        while (accept(QasmTokenKind::Comma)) {
            qarg_names.push_back(expectIdentifier("qubit argument"));
        }
        def.num_qargs = static_cast<int>(qarg_names.size());

        if (opaque) {
            expect(QasmTokenKind::Semicolon, "';' after opaque");
            _defs.emplace(def.name, std::move(def));
            return;
        }

        expect(QasmTokenKind::LBrace, "'{'");
        while (_tok.kind != QasmTokenKind::RBrace) {
            if (_tok.kind == QasmTokenKind::EndOfFile) {
                fail("unterminated gate body");
            }
            if (_tok.kind == QasmTokenKind::Identifier &&
                _tok.text == "barrier") {
                // Barriers inside gate bodies carry no unitary meaning.
                while (_tok.kind != QasmTokenKind::Semicolon) {
                    if (_tok.kind == QasmTokenKind::EndOfFile) {
                        fail("unterminated barrier");
                    }
                    advance();
                }
                advance();
                continue;
            }
            def.body.push_back(parseBodyCall(def, qarg_names));
        }
        advance(); // '}'
        _defs.emplace(def.name, std::move(def));
    }

    BodyCall
    parseBodyCall(const GateDef &def,
                  const std::vector<std::string> &qarg_names)
    {
        BodyCall call;
        call.line = _tok.line;
        call.name = expectIdentifier("gate name");
        if (accept(QasmTokenKind::LParen)) {
            if (_tok.kind != QasmTokenKind::RParen) {
                call.params.push_back(parseExpr(def.param_names));
                while (accept(QasmTokenKind::Comma)) {
                    call.params.push_back(parseExpr(def.param_names));
                }
            }
            expect(QasmTokenKind::RParen, "')'");
        }
        while (true) {
            std::string arg = expectIdentifier("qubit argument");
            int index = -1;
            for (std::size_t i = 0; i < qarg_names.size(); ++i) {
                if (qarg_names[i] == arg) {
                    index = static_cast<int>(i);
                    break;
                }
            }
            if (index < 0) {
                SNAIL_THROW(location(call.line)
                            << ": '" << arg << "' is not an argument of "
                            << "gate '" << def.name << "'");
            }
            call.arg_indices.push_back(index);
            if (!accept(QasmTokenKind::Comma)) {
                break;
            }
        }
        expect(QasmTokenKind::Semicolon, "';'");
        return call;
    }

    // --- expressions ----------------------------------------------------

    std::shared_ptr<Expr>
    parseExpr(const std::vector<std::string> &params)
    {
        ExprPtr e = parseAdditive(params);
        return std::shared_ptr<Expr>(std::move(e));
    }

    ExprPtr
    parseAdditive(const std::vector<std::string> &params)
    {
        ExprPtr lhs = parseMultiplicative(params);
        while (_tok.kind == QasmTokenKind::Plus ||
               _tok.kind == QasmTokenKind::Minus) {
            char op = _tok.kind == QasmTokenKind::Plus ? '+' : '-';
            std::string loc = location();
            advance();
            ExprPtr rhs = parseMultiplicative(params);
            lhs = std::make_unique<BinaryExpr>(op, std::move(lhs),
                                               std::move(rhs), loc);
        }
        return lhs;
    }

    ExprPtr
    parseMultiplicative(const std::vector<std::string> &params)
    {
        ExprPtr lhs = parseUnary(params);
        while (_tok.kind == QasmTokenKind::Star ||
               _tok.kind == QasmTokenKind::Slash) {
            char op = _tok.kind == QasmTokenKind::Star ? '*' : '/';
            std::string loc = location();
            advance();
            ExprPtr rhs = parseUnary(params);
            lhs = std::make_unique<BinaryExpr>(op, std::move(lhs),
                                               std::move(rhs), loc);
        }
        return lhs;
    }

    ExprPtr
    parseUnary(const std::vector<std::string> &params)
    {
        if (accept(QasmTokenKind::Minus)) {
            return std::make_unique<UnaryExpr>(parseUnary(params));
        }
        if (accept(QasmTokenKind::Plus)) {
            return parseUnary(params);
        }
        return parsePower(params);
    }

    ExprPtr
    parsePower(const std::vector<std::string> &params)
    {
        ExprPtr base = parsePrimary(params);
        if (_tok.kind == QasmTokenKind::Caret) {
            std::string loc = location();
            advance();
            // Right-associative: a^b^c = a^(b^c).
            ExprPtr exponent = parseUnary(params);
            return std::make_unique<BinaryExpr>('^', std::move(base),
                                                std::move(exponent), loc);
        }
        return base;
    }

    ExprPtr
    parsePrimary(const std::vector<std::string> &params)
    {
        if (_tok.kind == QasmTokenKind::Real ||
            _tok.kind == QasmTokenKind::Integer) {
            double v = _tok.real_value;
            advance();
            return std::make_unique<NumberExpr>(v);
        }
        if (accept(QasmTokenKind::LParen)) {
            ExprPtr inner = parseAdditive(params);
            expect(QasmTokenKind::RParen, "')'");
            return inner;
        }
        if (_tok.kind == QasmTokenKind::Identifier) {
            std::string name = _tok.text;
            std::string loc = location();
            advance();
            if (name == "pi") {
                return std::make_unique<NumberExpr>(M_PI);
            }
            if (accept(QasmTokenKind::LParen)) {
                ExprPtr arg = parseAdditive(params);
                expect(QasmTokenKind::RParen, "')'");
                return std::make_unique<CallExpr>(name, std::move(arg),
                                                  loc);
            }
            bool is_param = false;
            for (const auto &p : params) {
                if (p == name) {
                    is_param = true;
                    break;
                }
            }
            if (!is_param) {
                SNAIL_THROW(loc << ": unknown identifier '" << name
                                << "' in expression");
            }
            return std::make_unique<ParamExpr>(name, loc);
        }
        fail("expected an expression");
    }

    // --- top-level operations ---------------------------------------------

    void
    parseBarrier()
    {
        advance();
        parseOperandList();
        expect(QasmTokenKind::Semicolon, "';'");
        ++_barriers;
    }

    void
    parseMeasure()
    {
        int line = _tok.line;
        advance();
        Operand src = parseOperand();
        expect(QasmTokenKind::Arrow, "'->'");
        Operand dst = parseOperand();
        expect(QasmTokenKind::Semicolon, "';'");

        std::vector<int> qubits = expandOperand(src, true, line);
        std::vector<int> clbits = expandOperand(dst, false, line);
        if (qubits.size() != clbits.size()) {
            SNAIL_THROW(location(line)
                        << ": measure operands have mismatched sizes ("
                        << qubits.size() << " vs " << clbits.size() << ")");
        }
        for (std::size_t i = 0; i < qubits.size(); ++i) {
            _measurements.emplace_back(qubits[i], clbits[i]);
        }
    }

    Operand
    parseOperand()
    {
        Operand op;
        op.line = _tok.line;
        op.reg = expectIdentifier("register name");
        if (accept(QasmTokenKind::LBracket)) {
            op.index = expectInteger("index");
            expect(QasmTokenKind::RBracket, "']'");
        }
        return op;
    }

    std::vector<Operand>
    parseOperandList()
    {
        std::vector<Operand> ops;
        ops.push_back(parseOperand());
        while (accept(QasmTokenKind::Comma)) {
            ops.push_back(parseOperand());
        }
        return ops;
    }

    /** Flatten an operand to absolute indices (whole register or one). */
    std::vector<int>
    expandOperand(const Operand &op, bool quantum, int line)
    {
        const QasmRegister *reg = findReg(op.reg, quantum);
        if (reg == nullptr) {
            SNAIL_THROW(location(line)
                        << ": unknown " << (quantum ? "quantum" : "classical")
                        << " register '" << op.reg << "'");
        }
        if (op.index >= 0) {
            if (op.index >= reg->size) {
                SNAIL_THROW(location(line)
                            << ": index " << op.index << " out of range for "
                            << op.reg << '[' << reg->size << ']');
            }
            return {reg->offset + op.index};
        }
        std::vector<int> out(reg->size);
        for (int i = 0; i < reg->size; ++i) {
            out[i] = reg->offset + i;
        }
        return out;
    }

    void
    parseApplication()
    {
        int line = _tok.line;
        std::string name = _tok.text;
        advance();

        std::vector<double> params;
        if (accept(QasmTokenKind::LParen)) {
            static const std::vector<std::string> no_params;
            if (_tok.kind != QasmTokenKind::RParen) {
                params.push_back(parseExpr(no_params)->eval({}));
                while (accept(QasmTokenKind::Comma)) {
                    params.push_back(parseExpr(no_params)->eval({}));
                }
            }
            expect(QasmTokenKind::RParen, "')'");
        }

        std::vector<Operand> operands = parseOperandList();
        expect(QasmTokenKind::Semicolon, "';'");

        // Resolve operands and broadcast registers.
        std::vector<std::vector<int>> expanded;
        expanded.reserve(operands.size());
        std::size_t broadcast = 1;
        for (const auto &op : operands) {
            expanded.push_back(expandOperand(op, true, line));
            std::size_t n = op.index >= 0 ? 1 : expanded.back().size();
            if (n > 1) {
                if (broadcast > 1 && n != broadcast) {
                    SNAIL_THROW(location(line)
                                << ": mismatched register sizes in '" << name
                                << "' (" << broadcast << " vs " << n << ")");
                }
                broadcast = n;
            }
        }
        for (std::size_t rep = 0; rep < broadcast; ++rep) {
            std::vector<int> qubits;
            qubits.reserve(operands.size());
            for (std::size_t i = 0; i < operands.size(); ++i) {
                if (operands[i].index >= 0 || expanded[i].size() == 1) {
                    qubits.push_back(expanded[i][0]);
                } else {
                    qubits.push_back(expanded[i][rep]);
                }
            }
            for (std::size_t i = 0; i < qubits.size(); ++i) {
                for (std::size_t j = i + 1; j < qubits.size(); ++j) {
                    if (qubits[i] == qubits[j]) {
                        SNAIL_THROW(location(line)
                                    << ": duplicate qubit operand in '"
                                    << name << "'");
                    }
                }
            }
            applyGate(name, params, qubits, line, 0);
        }
    }

    /** Emit a gate by native kind or by recursive definition expansion. */
    void
    applyGate(const std::string &name, const std::vector<double> &params,
              const std::vector<int> &qubits, int line, int depth)
    {
        if (depth > 64) {
            SNAIL_THROW(location(line)
                        << ": gate expansion too deep (recursive "
                        << "definition of '" << name << "'?)");
        }

        // The U/CX primitives always short-circuit.
        if (name == "U") {
            requireArity(name, 3, 1, params, qubits, line);
            emit(Gate(GateKind::U3, params), qubits);
            return;
        }

        // A user-authored definition takes precedence over the native
        // kind of the same name; qelib1's definitions do not, because
        // they are unitarily identical to the native kinds and the
        // native form keeps gate counts meaningful.
        auto it = _defs.find(name);
        bool user_defined = it != _defs.end() && !it->second.from_qelib;
        auto native = nativeGateMap().find(name);
        if (!user_defined && native != nativeGateMap().end()) {
            const NativeGate &ng = native->second;
            requireArity(name, ng.num_params, ng.num_qargs, params, qubits,
                         line);
            if (ng.num_params == 0) {
                emit(Gate(ng.kind), qubits);
            } else {
                emit(Gate(ng.kind, params), qubits);
            }
            return;
        }

        if (it == _defs.end()) {
            SNAIL_THROW(location(line)
                        << ": unknown gate '" << name
                        << "' (did you forget include \"qelib1.inc\"?)");
        }
        const GateDef &def = it->second;
        if (def.opaque) {
            SNAIL_THROW(location(line)
                        << ": gate '" << name
                        << "' is opaque and cannot be expanded");
        }
        requireArity(name, static_cast<int>(def.param_names.size()),
                     def.num_qargs, params, qubits, line);

        std::map<std::string, double> env;
        for (std::size_t i = 0; i < def.param_names.size(); ++i) {
            env[def.param_names[i]] = params[i];
        }
        for (const auto &call : def.body) {
            std::vector<double> call_params;
            call_params.reserve(call.params.size());
            for (const auto &expr : call.params) {
                call_params.push_back(expr->eval(env));
            }
            std::vector<int> call_qubits;
            call_qubits.reserve(call.arg_indices.size());
            for (int idx : call.arg_indices) {
                call_qubits.push_back(qubits[idx]);
            }
            applyGate(call.name, call_params, call_qubits, call.line,
                      depth + 1);
        }
    }

    void
    requireArity(const std::string &name, int want_params, int want_qargs,
                 const std::vector<double> &params,
                 const std::vector<int> &qubits, int line)
    {
        if (static_cast<int>(params.size()) != want_params) {
            SNAIL_THROW(location(line)
                        << ": gate '" << name << "' expects " << want_params
                        << " parameter(s), got " << params.size());
        }
        if (static_cast<int>(qubits.size()) != want_qargs) {
            SNAIL_THROW(location(line)
                        << ": gate '" << name << "' expects " << want_qargs
                        << " qubit(s), got " << qubits.size());
        }
    }

    void
    emit(Gate gate, const std::vector<int> &qubits)
    {
        _ops.emplace_back(std::move(gate), qubits);
    }

    Circuit
    buildCircuit()
    {
        int total = _qregs.empty()
                        ? 0
                        : _qregs.back().offset + _qregs.back().size;
        Circuit circuit(total, _filename == "<qasm>" ? "qasm" : _filename);
        for (auto &op : _ops) {
            circuit.append(std::move(op));
        }
        return circuit;
    }

    QasmLexer _lexer;
    std::string _filename;
    QasmToken _tok;
    std::vector<QasmRegister> _qregs;
    std::vector<QasmRegister> _cregs;
    std::map<std::string, GateDef> _defs;
    std::vector<Instruction> _ops;
    std::vector<std::pair<int, int>> _measurements;
    int _barriers = 0;
    bool _qelibLoaded = false;
};

} // namespace

QasmParseResult
parseQasm(const std::string &source, const std::string &filename)
{
    Parser parser(source, filename);
    return parser.parse();
}

QasmParseResult
parseQasmFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        SNAIL_THROW("cannot open QASM file '" << path << "'");
    }
    std::ostringstream oss;
    oss << in.rdbuf();
    return parseQasm(oss.str(), path);
}

} // namespace snail
