#include "ir/instruction.hpp"

#include <sstream>

#include "common/error.hpp"

namespace snail
{

Instruction::Instruction(Gate gate, std::vector<Qubit> qubits)
    : _gate(std::move(gate)), _qubits(std::move(qubits))
{
    SNAIL_REQUIRE(static_cast<int>(_qubits.size()) == _gate.numQubits(),
                  "gate " << _gate.name() << " expects "
                          << _gate.numQubits() << " qubits, got "
                          << _qubits.size());
    if (_qubits.size() == 2) {
        SNAIL_REQUIRE(_qubits[0] != _qubits[1],
                      "two-qubit gate with identical operands q"
                          << _qubits[0]);
    }
}

Qubit
Instruction::q0() const
{
    SNAIL_ASSERT(!_qubits.empty(), "instruction has no operands");
    return _qubits[0];
}

Qubit
Instruction::q1() const
{
    SNAIL_ASSERT(_qubits.size() >= 2, "instruction has fewer than 2 operands");
    return _qubits[1];
}

Instruction
Instruction::remapped(const std::vector<Qubit> &new_qubits) const
{
    return Instruction(_gate, new_qubits);
}

std::string
Instruction::toString() const
{
    std::ostringstream oss;
    oss << _gate.name();
    if (!_gate.params().empty()) {
        oss << '(';
        for (std::size_t i = 0; i < _gate.params().size(); ++i) {
            if (i > 0) {
                oss << ", ";
            }
            oss << _gate.params()[i];
        }
        oss << ')';
    }
    oss << ' ';
    for (std::size_t i = 0; i < _qubits.size(); ++i) {
        if (i > 0) {
            oss << ", ";
        }
        oss << 'q' << _qubits[i];
    }
    return oss.str();
}

} // namespace snail
