#include "ir/qasm.hpp"

#include <ostream>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "common/json.hpp"

namespace snail
{

namespace
{

/** QASM gate name for an exportable kind; nullptr when not exportable. */
const char *
qasmName(GateKind kind)
{
    switch (kind) {
      case GateKind::I:
        return "id";
      case GateKind::X:
        return "x";
      case GateKind::Y:
        return "y";
      case GateKind::Z:
        return "z";
      case GateKind::H:
        return "h";
      case GateKind::S:
        return "s";
      case GateKind::Sdg:
        return "sdg";
      case GateKind::T:
        return "t";
      case GateKind::Tdg:
        return "tdg";
      case GateKind::SX:
        return "sx";
      case GateKind::RX:
        return "rx";
      case GateKind::RY:
        return "ry";
      case GateKind::RZ:
        return "rz";
      case GateKind::Phase:
        return "p";
      case GateKind::U3:
        return "u3";
      case GateKind::CX:
        return "cx";
      case GateKind::CZ:
        return "cz";
      case GateKind::CPhase:
        return "cp";
      case GateKind::RZZ:
        return "rzz";
      case GateKind::Swap:
        return "swap";
      default:
        return nullptr;
    }
}

} // namespace

bool
isQasmExportable(const Circuit &circuit)
{
    for (const auto &op : circuit.instructions()) {
        if (qasmName(op.gate().kind()) == nullptr) {
            return false;
        }
    }
    return true;
}

void
writeQasm(std::ostream &os, const Circuit &circuit)
{
    // All numbers are formatted through std::to_chars (shortestDouble
    // / std::to_string), never streamed: iostream numeric output
    // honors std::locale::global, and an exporter that writes
    // "rz(0,5)" under a comma-decimal locale produces QASM no parser
    // accepts.  shortestDouble round-trips every double exactly, so
    // export -> import preserves parameters bit for bit.
    os << "OPENQASM 2.0;\n"
       << "include \"qelib1.inc\";\n"
       << "// " << circuit.name() << "\n"
       << "qreg q[" << std::to_string(circuit.numQubits()) << "];\n";
    for (const auto &op : circuit.instructions()) {
        const char *name = qasmName(op.gate().kind());
        SNAIL_REQUIRE(name != nullptr,
                      "gate kind '" << op.gate().name()
                                    << "' is not expressible in OpenQASM 2; "
                                       "lower the circuit with "
                                       "expandToBasis() first");
        os << name;
        const auto &params = op.gate().params();
        if (!params.empty()) {
            os << '(';
            for (std::size_t i = 0; i < params.size(); ++i) {
                if (i > 0) {
                    os << ", ";
                }
                os << shortestDouble(params[i]);
            }
            os << ')';
        }
        os << ' ';
        const auto &qubits = op.qubits();
        for (std::size_t i = 0; i < qubits.size(); ++i) {
            if (i > 0) {
                os << ", ";
            }
            os << "q[" << std::to_string(qubits[i]) << ']';
        }
        os << ";\n";
    }
}

std::string
toQasm(const Circuit &circuit)
{
    std::ostringstream oss;
    writeQasm(oss, circuit);
    return oss.str();
}

} // namespace snail
