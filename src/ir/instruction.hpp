/**
 * @file
 * A single circuit instruction: a gate applied to specific qubits.
 */

#ifndef SNAILQC_IR_INSTRUCTION_HPP
#define SNAILQC_IR_INSTRUCTION_HPP

#include <string>
#include <vector>

#include "gates/gate.hpp"

namespace snail
{

/** Index of a qubit within a circuit or device. */
using Qubit = int;

/** A gate bound to its operand qubits. */
class Instruction
{
  public:
    Instruction(Gate gate, std::vector<Qubit> qubits);

    const Gate &gate() const { return _gate; }
    const std::vector<Qubit> &qubits() const { return _qubits; }

    /** Operand count (1 or 2). */
    int numQubits() const { return static_cast<int>(_qubits.size()); }

    bool isTwoQubit() const { return _qubits.size() == 2; }
    bool isSwap() const { return _gate.kind() == GateKind::Swap; }

    /** First / second operand (asserts the arity). */
    Qubit q0() const;
    Qubit q1() const;

    /** Rebind the instruction onto new qubits (used by layout/routing). */
    Instruction remapped(const std::vector<Qubit> &new_qubits) const;

    /** Human-readable rendering, e.g. "cx q3, q7". */
    std::string toString() const;

  private:
    Gate _gate;
    std::vector<Qubit> _qubits;
};

} // namespace snail

#endif // SNAILQC_IR_INSTRUCTION_HPP
