#include "ir/circuit.hpp"

#include <algorithm>
#include <ostream>

#include "common/error.hpp"
#include "common/hash.hpp"

namespace snail
{

Circuit::Circuit(int num_qubits, std::string name)
    : _numQubits(num_qubits), _name(std::move(name))
{
    // Zero-qubit circuits are permitted as empty containers (e.g. the
    // result of parsing a QASM program with no qreg); appending any
    // instruction to one fails the operand range check.
    SNAIL_REQUIRE(num_qubits >= 0, "circuit qubit count must be >= 0");
}

void
Circuit::append(Instruction inst)
{
    for (Qubit q : inst.qubits()) {
        SNAIL_REQUIRE(q >= 0 && q < _numQubits,
                      "qubit q" << q << " out of range for " << _numQubits
                                << "-qubit circuit");
    }
    _ops.push_back(std::move(inst));
}

void
Circuit::append(const Gate &gate, const std::vector<Qubit> &qubits)
{
    append(Instruction(gate, qubits));
}

void Circuit::i(Qubit q) { append(gates::i(), {q}); }
void Circuit::x(Qubit q) { append(gates::x(), {q}); }
void Circuit::y(Qubit q) { append(gates::y(), {q}); }
void Circuit::z(Qubit q) { append(gates::z(), {q}); }
void Circuit::h(Qubit q) { append(gates::h(), {q}); }
void Circuit::s(Qubit q) { append(gates::s(), {q}); }
void Circuit::sdg(Qubit q) { append(gates::sdg(), {q}); }
void Circuit::t(Qubit q) { append(gates::t(), {q}); }
void Circuit::tdg(Qubit q) { append(gates::tdg(), {q}); }
void Circuit::sx(Qubit q) { append(gates::sx(), {q}); }
void Circuit::rx(double theta, Qubit q) { append(gates::rx(theta), {q}); }
void Circuit::ry(double theta, Qubit q) { append(gates::ry(theta), {q}); }
void Circuit::rz(double theta, Qubit q) { append(gates::rz(theta), {q}); }
void Circuit::p(double theta, Qubit q) { append(gates::phase(theta), {q}); }

void
Circuit::u3(double theta, double phi, double lam, Qubit q)
{
    append(gates::u3(theta, phi, lam), {q});
}

void
Circuit::unitary2(const Matrix &m, Qubit q)
{
    append(gates::unitary2(m), {q});
}

void Circuit::cx(Qubit c, Qubit t) { append(gates::cx(), {c, t}); }
void Circuit::cz(Qubit a, Qubit b) { append(gates::cz(), {a, b}); }

void
Circuit::cp(double theta, Qubit a, Qubit b)
{
    append(gates::cphase(theta), {a, b});
}

void
Circuit::rzz(double theta, Qubit a, Qubit b)
{
    append(gates::rzz(theta), {a, b});
}

void Circuit::swap(Qubit a, Qubit b) { append(gates::swapGate(), {a, b}); }
void Circuit::iswap(Qubit a, Qubit b) { append(gates::iswap(), {a, b}); }

void
Circuit::sqiswap(Qubit a, Qubit b)
{
    append(gates::sqiswap(), {a, b});
}

void
Circuit::unitary4(const Matrix &m, Qubit a, Qubit b)
{
    append(gates::unitary4(m), {a, b});
}

void
Circuit::ccxDecomposed(Qubit a, Qubit b, Qubit target)
{
    // Standard 6-CNOT Toffoli (Nielsen & Chuang Fig. 4.9).
    h(target);
    cx(b, target);
    tdg(target);
    cx(a, target);
    t(target);
    cx(b, target);
    tdg(target);
    cx(a, target);
    t(b);
    t(target);
    h(target);
    cx(a, b);
    t(a);
    tdg(b);
    cx(a, b);
}

void
Circuit::extend(const Circuit &other)
{
    SNAIL_REQUIRE(other.numQubits() <= _numQubits,
                  "cannot extend a " << _numQubits
                                     << "-qubit circuit with a wider one");
    for (const auto &inst : other.instructions()) {
        append(inst);
    }
}

std::size_t
Circuit::countTwoQubit() const
{
    return static_cast<std::size_t>(
        std::count_if(_ops.begin(), _ops.end(),
                      [](const Instruction &op) { return op.isTwoQubit(); }));
}

std::size_t
Circuit::countKind(GateKind kind) const
{
    return static_cast<std::size_t>(
        std::count_if(_ops.begin(), _ops.end(), [&](const Instruction &op) {
            return op.gate().kind() == kind;
        }));
}

std::vector<Qubit>
Circuit::activeQubits() const
{
    std::vector<bool> used(static_cast<std::size_t>(_numQubits), false);
    for (const auto &op : _ops) {
        for (Qubit q : op.qubits()) {
            used[static_cast<std::size_t>(q)] = true;
        }
    }
    std::vector<Qubit> out;
    for (int q = 0; q < _numQubits; ++q) {
        if (used[static_cast<std::size_t>(q)]) {
            out.push_back(q);
        }
    }
    return out;
}

double
Circuit::weightedCriticalPath(
    const std::function<double(const Instruction &)> &weight) const
{
    std::vector<double> qubit_time(static_cast<std::size_t>(_numQubits), 0.0);
    double longest = 0.0;
    for (const auto &op : _ops) {
        double start = 0.0;
        for (Qubit q : op.qubits()) {
            start = std::max(start, qubit_time[static_cast<std::size_t>(q)]);
        }
        const double finish = start + weight(op);
        for (Qubit q : op.qubits()) {
            qubit_time[static_cast<std::size_t>(q)] = finish;
        }
        longest = std::max(longest, finish);
    }
    return longest;
}

double
Circuit::twoQubitDepth() const
{
    return weightedCriticalPath(
        [](const Instruction &op) { return op.isTwoQubit() ? 1.0 : 0.0; });
}

unsigned long long
Circuit::contentHash() const
{
    ContentHasher h;
    h.i64(_numQubits);
    h.u64(_ops.size());
    for (const Instruction &op : _ops) {
        const Gate &gate = op.gate();
        h.i64(static_cast<long long>(gate.kind()));
        h.u64(gate.params().size());
        for (double param : gate.params()) {
            h.f64(param);
        }
        if (gate.kind() == GateKind::Unitary2 ||
            gate.kind() == GateKind::Unitary4) {
            const Matrix matrix = gate.matrix();
            for (const auto &cell : matrix.data()) {
                h.f64(cell.real());
                h.f64(cell.imag());
            }
        }
        for (Qubit q : op.qubits()) {
            h.i64(q);
        }
    }
    return h.value();
}

void
Circuit::dump(std::ostream &os) const
{
    os << _name << " (" << _numQubits << " qubits, " << _ops.size()
       << " ops)\n";
    for (const auto &op : _ops) {
        os << "  " << op.toString() << '\n';
    }
}

} // namespace snail
