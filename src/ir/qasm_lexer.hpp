/**
 * @file
 * Tokenizer for OpenQASM 2.0 source text.
 *
 * The lexer is exposed separately from the parser so that tests can
 * exercise tokenization edge cases (numeric literals, comments, string
 * literals) directly, and so that future QASM 3 support can reuse it.
 */

#ifndef SNAILQC_IR_QASM_LEXER_HPP
#define SNAILQC_IR_QASM_LEXER_HPP

#include <string>
#include <vector>

namespace snail
{

/** Lexical category of a QASM token. */
enum class QasmTokenKind
{
    Identifier,   //!< gate / register / parameter names, keywords
    Real,         //!< floating literal (has a '.', 'e', or both)
    Integer,      //!< non-negative integer literal
    String,       //!< double-quoted string (include filenames)
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Semicolon,
    Comma,
    Arrow,        //!< "->" in measure statements
    EqualEqual,   //!< "==" in if statements
    Plus,
    Minus,
    Star,
    Slash,
    Caret,        //!< exponentiation in parameter expressions
    EndOfFile,
};

/** Printable name of a token kind (for diagnostics). */
const char *qasmTokenKindName(QasmTokenKind kind);

/** One lexed token with its source position (1-based line/column). */
struct QasmToken
{
    QasmTokenKind kind = QasmTokenKind::EndOfFile;
    std::string text;        //!< identifier / string payload
    double real_value = 0.0; //!< valid for Real and Integer
    long int_value = 0;      //!< valid for Integer
    int line = 0;
    int column = 0;
};

/**
 * Streaming tokenizer over a QASM 2.0 source buffer.
 *
 * Skips whitespace, line comments ("// ..."), and block comments.
 * Throws SnailError (with line/column) on characters outside the QASM
 * grammar.
 */
class QasmLexer
{
  public:
    /** @param source full program text; @param filename for diagnostics. */
    explicit QasmLexer(std::string source, std::string filename = "<qasm>");

    /** Consume and return the next token. */
    QasmToken next();

    /** Look at the upcoming token without consuming it. */
    const QasmToken &peek();

    /** Name used in error messages. */
    const std::string &filename() const { return _filename; }

    /** Tokenize the whole buffer (testing convenience). */
    std::vector<QasmToken> tokenizeAll();

  private:
    void skipTrivia();
    QasmToken lexNumber();
    QasmToken lexIdentifier();
    QasmToken lexString();
    QasmToken make(QasmTokenKind kind, std::string text);
    [[noreturn]] void fail(const std::string &msg) const;

    char current() const { return _source[_pos]; }
    bool atEnd() const { return _pos >= _source.size(); }
    void advance();

    std::string _source;
    std::string _filename;
    std::size_t _pos = 0;
    int _line = 1;
    int _column = 1;
    QasmToken _lookahead;
    bool _hasLookahead = false;
};

} // namespace snail

#endif // SNAILQC_IR_QASM_LEXER_HPP
