/**
 * @file
 * OpenQASM 2.0 import.
 *
 * Parses QASM 2.0 source (the interchange format of the paper's original
 * Qiskit toolchain) into a snail::Circuit so that externally generated
 * benchmark circuits can be transpiled onto the SNAIL topologies.
 *
 * Coverage:
 *  - the full statement grammar: OPENQASM, include, qreg/creg, gate
 *    definitions, opaque declarations, barrier, measure, and gate
 *    application with register broadcasting;
 *  - parameter expressions (+ - * / ^, unary minus, pi, sin/cos/tan/
 *    exp/ln/sqrt) evaluated to doubles at parse time;
 *  - `include "qelib1.inc"` resolves to an embedded copy of the standard
 *    library, so parsing is hermetic (no filesystem access needed);
 *  - gates with native snailqc kinds (h, cx, rz, cp, rzz, swap, iswap,
 *    ...) map directly onto those kinds; everything else (ccx, crz, cu3,
 *    rxx, ...) is expanded through its definition body, so any qelib1
 *    circuit lowers to the 1Q/2Q instruction set the transpiler handles.
 *
 * Out of scope (rejected with a clear error): reset and classically
 * controlled operations (`if (c==n) ...`), which have no meaning in the
 * unitary-circuit IR; measure statements are recorded in the parse
 * result but do not become instructions.
 */

#ifndef SNAILQC_IR_QASM_PARSER_HPP
#define SNAILQC_IR_QASM_PARSER_HPP

#include <string>
#include <utility>
#include <vector>

#include "ir/circuit.hpp"

namespace snail
{

/** A declared qreg/creg: contiguous block [offset, offset+size). */
struct QasmRegister
{
    std::string name;
    int offset = 0;
    int size = 0;
};

/** Everything recovered from a QASM 2.0 program. */
struct QasmParseResult
{
    /** The unitary part of the program (measurements excluded). */
    Circuit circuit{0};

    /** Quantum registers in declaration order (flattened indexing). */
    std::vector<QasmRegister> qregs;

    /** Classical registers in declaration order. */
    std::vector<QasmRegister> cregs;

    /** measure statements as (flat qubit index, flat clbit index). */
    std::vector<std::pair<int, int>> measurements;

    /** Number of barrier statements encountered (all ignored). */
    int barriers = 0;
};

/**
 * Parse QASM 2.0 source text.
 * @param source   the program text.
 * @param filename name used in error messages.
 * @throws SnailError with file:line:column context on any lexical,
 *         syntactic, or semantic error.
 */
QasmParseResult parseQasm(const std::string &source,
                          const std::string &filename = "<qasm>");

/** Parse a QASM 2.0 file from disk. */
QasmParseResult parseQasmFile(const std::string &path);

} // namespace snail

#endif // SNAILQC_IR_QASM_PARSER_HPP
