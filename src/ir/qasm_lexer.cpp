#include "ir/qasm_lexer.hpp"

#include <cctype>
#include <charconv>
#include <utility>

#include "common/error.hpp"

namespace snail
{

const char *
qasmTokenKindName(QasmTokenKind kind)
{
    switch (kind) {
      case QasmTokenKind::Identifier:
        return "identifier";
      case QasmTokenKind::Real:
        return "real literal";
      case QasmTokenKind::Integer:
        return "integer literal";
      case QasmTokenKind::String:
        return "string literal";
      case QasmTokenKind::LParen:
        return "'('";
      case QasmTokenKind::RParen:
        return "')'";
      case QasmTokenKind::LBracket:
        return "'['";
      case QasmTokenKind::RBracket:
        return "']'";
      case QasmTokenKind::LBrace:
        return "'{'";
      case QasmTokenKind::RBrace:
        return "'}'";
      case QasmTokenKind::Semicolon:
        return "';'";
      case QasmTokenKind::Comma:
        return "','";
      case QasmTokenKind::Arrow:
        return "'->'";
      case QasmTokenKind::EqualEqual:
        return "'=='";
      case QasmTokenKind::Plus:
        return "'+'";
      case QasmTokenKind::Minus:
        return "'-'";
      case QasmTokenKind::Star:
        return "'*'";
      case QasmTokenKind::Slash:
        return "'/'";
      case QasmTokenKind::Caret:
        return "'^'";
      case QasmTokenKind::EndOfFile:
        return "end of file";
    }
    return "unknown";
}

QasmLexer::QasmLexer(std::string source, std::string filename)
    : _source(std::move(source)), _filename(std::move(filename))
{
}

void
QasmLexer::advance()
{
    if (atEnd()) {
        return;
    }
    if (current() == '\n') {
        ++_line;
        _column = 1;
    } else {
        ++_column;
    }
    ++_pos;
}

void
QasmLexer::fail(const std::string &msg) const
{
    SNAIL_THROW(_filename << ':' << _line << ':' << _column << ": " << msg);
}

void
QasmLexer::skipTrivia()
{
    while (!atEnd()) {
        char c = current();
        if (std::isspace(static_cast<unsigned char>(c))) {
            advance();
        } else if (c == '/' && _pos + 1 < _source.size() &&
                   _source[_pos + 1] == '/') {
            while (!atEnd() && current() != '\n') {
                advance();
            }
        } else if (c == '/' && _pos + 1 < _source.size() &&
                   _source[_pos + 1] == '*') {
            int start_line = _line;
            advance();
            advance();
            while (true) {
                if (atEnd()) {
                    SNAIL_THROW(_filename << ':' << start_line
                                          << ": unterminated block comment");
                }
                if (current() == '*' && _pos + 1 < _source.size() &&
                    _source[_pos + 1] == '/') {
                    advance();
                    advance();
                    break;
                }
                advance();
            }
        } else {
            break;
        }
    }
}

QasmToken
QasmLexer::make(QasmTokenKind kind, std::string text)
{
    QasmToken tok;
    tok.kind = kind;
    tok.text = std::move(text);
    tok.line = _line;
    tok.column = _column;
    return tok;
}

QasmToken
QasmLexer::lexNumber()
{
    QasmToken tok = make(QasmTokenKind::Integer, "");
    std::size_t start = _pos;
    bool is_real = false;
    while (!atEnd() && std::isdigit(static_cast<unsigned char>(current()))) {
        advance();
    }
    if (!atEnd() && current() == '.') {
        is_real = true;
        advance();
        while (!atEnd() &&
               std::isdigit(static_cast<unsigned char>(current()))) {
            advance();
        }
    }
    if (!atEnd() && (current() == 'e' || current() == 'E')) {
        std::size_t mark = _pos;
        advance();
        if (!atEnd() && (current() == '+' || current() == '-')) {
            advance();
        }
        if (!atEnd() && std::isdigit(static_cast<unsigned char>(current()))) {
            is_real = true;
            while (!atEnd() &&
                   std::isdigit(static_cast<unsigned char>(current()))) {
                advance();
            }
        } else {
            // 'e' was the start of an identifier, not an exponent.
            _pos = mark;
        }
    }
    tok.text = _source.substr(start, _pos - start);
    // std::from_chars is locale-independent: under a comma-decimal
    // LC_NUMERIC locale strtod("0.5") stops at the '.' and yields 0,
    // silently corrupting every gate angle (common/json.cpp made the
    // same fix).  The scanner above only admits [0-9.eE+-], so hex and
    // inf/nan spellings never reach this point; full-consumption is
    // still checked to reject a lone '.'.
    const char *begin = tok.text.c_str();
    const char *end = begin + tok.text.size();
    const auto [real_ptr, real_ec] =
        std::from_chars(begin, end, tok.real_value);
    if (real_ec != std::errc{} || real_ptr != end) {
        fail("malformed numeric literal '" + tok.text + "'");
    }
    if (is_real) {
        tok.kind = QasmTokenKind::Real;
    } else {
        tok.kind = QasmTokenKind::Integer;
        const auto [int_ptr, int_ec] =
            std::from_chars(begin, end, tok.int_value);
        if (int_ec != std::errc{} || int_ptr != end) {
            fail("integer literal '" + tok.text + "' out of range");
        }
    }
    return tok;
}

QasmToken
QasmLexer::lexIdentifier()
{
    QasmToken tok = make(QasmTokenKind::Identifier, "");
    std::size_t start = _pos;
    while (!atEnd() &&
           (std::isalnum(static_cast<unsigned char>(current())) ||
            current() == '_')) {
        advance();
    }
    tok.text = _source.substr(start, _pos - start);
    return tok;
}

QasmToken
QasmLexer::lexString()
{
    QasmToken tok = make(QasmTokenKind::String, "");
    advance(); // opening quote
    std::size_t start = _pos;
    while (!atEnd() && current() != '"') {
        if (current() == '\n') {
            fail("unterminated string literal");
        }
        advance();
    }
    if (atEnd()) {
        fail("unterminated string literal");
    }
    tok.text = _source.substr(start, _pos - start);
    advance(); // closing quote
    return tok;
}

QasmToken
QasmLexer::next()
{
    if (_hasLookahead) {
        _hasLookahead = false;
        return _lookahead;
    }
    skipTrivia();
    if (atEnd()) {
        return make(QasmTokenKind::EndOfFile, "");
    }
    char c = current();
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
        return lexNumber();
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        return lexIdentifier();
    }
    if (c == '"') {
        return lexString();
    }

    QasmToken tok = make(QasmTokenKind::EndOfFile, std::string(1, c));
    switch (c) {
      case '(':
        tok.kind = QasmTokenKind::LParen;
        break;
      case ')':
        tok.kind = QasmTokenKind::RParen;
        break;
      case '[':
        tok.kind = QasmTokenKind::LBracket;
        break;
      case ']':
        tok.kind = QasmTokenKind::RBracket;
        break;
      case '{':
        tok.kind = QasmTokenKind::LBrace;
        break;
      case '}':
        tok.kind = QasmTokenKind::RBrace;
        break;
      case ';':
        tok.kind = QasmTokenKind::Semicolon;
        break;
      case ',':
        tok.kind = QasmTokenKind::Comma;
        break;
      case '+':
        tok.kind = QasmTokenKind::Plus;
        break;
      case '*':
        tok.kind = QasmTokenKind::Star;
        break;
      case '/':
        tok.kind = QasmTokenKind::Slash;
        break;
      case '^':
        tok.kind = QasmTokenKind::Caret;
        break;
      case '-':
        if (_pos + 1 < _source.size() && _source[_pos + 1] == '>') {
            advance();
            tok.kind = QasmTokenKind::Arrow;
            tok.text = "->";
        } else {
            tok.kind = QasmTokenKind::Minus;
        }
        break;
      case '=':
        if (_pos + 1 < _source.size() && _source[_pos + 1] == '=') {
            advance();
            tok.kind = QasmTokenKind::EqualEqual;
            tok.text = "==";
        } else {
            fail("stray '=' (did you mean '==')");
        }
        break;
      default:
        fail("unexpected character '" + std::string(1, c) + "'");
    }
    advance();
    return tok;
}

const QasmToken &
QasmLexer::peek()
{
    if (!_hasLookahead) {
        _lookahead = next();
        _hasLookahead = true;
    }
    return _lookahead;
}

std::vector<QasmToken>
QasmLexer::tokenizeAll()
{
    std::vector<QasmToken> out;
    while (true) {
        out.push_back(next());
        if (out.back().kind == QasmTokenKind::EndOfFile) {
            break;
        }
    }
    return out;
}

} // namespace snail
