/**
 * @file
 * OpenQASM 2.0 export.
 *
 * Lets a downstream user cross-check any snailqc circuit against Qiskit
 * (the paper's original toolchain).  The exporter covers the gate kinds
 * OpenQASM 2 can express directly (qelib1 1Q gates, cx/cz/cp/rzz/swap);
 * exotic kinds (iSWAP family, FSIM, CR, canonical, opaque SU(4)) should
 * first be lowered with expandToBasis() to the CNOT basis, after which
 * every circuit exports.
 */

#ifndef SNAILQC_IR_QASM_HPP
#define SNAILQC_IR_QASM_HPP

#include <iosfwd>
#include <string>

#include "ir/circuit.hpp"

namespace snail
{

/** True when every instruction of the circuit is QASM-expressible. */
bool isQasmExportable(const Circuit &circuit);

/**
 * Emit OpenQASM 2.0 for the circuit.
 * @throws SnailError when the circuit contains a non-exportable kind
 *         (lower it with expandToBasis(circuit, BasisSpec{CNOT}) first).
 */
void writeQasm(std::ostream &os, const Circuit &circuit);

/** Convenience string form of writeQasm. */
std::string toQasm(const Circuit &circuit);

} // namespace snail

#endif // SNAILQC_IR_QASM_HPP
