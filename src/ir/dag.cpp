#include "ir/dag.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace snail
{

std::vector<std::size_t>
asapLayers(const Circuit &circuit)
{
    std::vector<std::size_t> qubit_level(
        static_cast<std::size_t>(circuit.numQubits()), 0);
    std::vector<std::size_t> layers;
    layers.reserve(circuit.size());
    for (const auto &op : circuit.instructions()) {
        std::size_t level = 0;
        for (Qubit q : op.qubits()) {
            level = std::max(level, qubit_level[static_cast<std::size_t>(q)]);
        }
        layers.push_back(level);
        for (Qubit q : op.qubits()) {
            qubit_level[static_cast<std::size_t>(q)] = level + 1;
        }
    }
    return layers;
}

std::vector<std::vector<std::size_t>>
layeredSchedule(const Circuit &circuit)
{
    const auto layers = asapLayers(circuit);
    std::size_t depth = 0;
    for (auto l : layers) {
        depth = std::max(depth, l + 1);
    }
    std::vector<std::vector<std::size_t>> grouped(depth);
    for (std::size_t i = 0; i < layers.size(); ++i) {
        grouped[layers[i]].push_back(i);
    }
    return grouped;
}

DependencyFrontier::DependencyFrontier(const Circuit &circuit)
    : _circuit(circuit),
      _pending(circuit.size(), 0),
      _successors(circuit.size()),
      _next(circuit.size() + 1),
      _prev(circuit.size() + 1),
      _inReady(circuit.size(), 0),
      _sentinel(circuit.size()),
      _readyCount(0),
      _remaining(circuit.size())
{
    _next[_sentinel] = _sentinel;
    _prev[_sentinel] = _sentinel;

    // Wire qubit chains: the previous instruction touching a qubit is a
    // predecessor of the next instruction touching it.
    std::vector<long> last(static_cast<std::size_t>(circuit.numQubits()), -1);
    for (std::size_t i = 0; i < circuit.size(); ++i) {
        for (Qubit q : circuit.instructions()[i].qubits()) {
            const long prev = last[static_cast<std::size_t>(q)];
            if (prev >= 0) {
                _successors[static_cast<std::size_t>(prev)].push_back(i);
                ++_pending[i];
            }
            last[static_cast<std::size_t>(q)] = static_cast<long>(i);
        }
    }
    for (std::size_t i = 0; i < circuit.size(); ++i) {
        if (_pending[i] == 0) {
            linkReady(i);
        }
    }
}

void
DependencyFrontier::linkReady(std::size_t i)
{
    const std::size_t tail = _prev[_sentinel];
    _next[tail] = i;
    _prev[i] = tail;
    _next[i] = _sentinel;
    _prev[_sentinel] = i;
    _inReady[i] = 1;
    ++_readyCount;
}

void
DependencyFrontier::consume(std::size_t instruction_index)
{
    SNAIL_ASSERT(isReady(instruction_index),
                 "consume() of instruction " << instruction_index
                                             << " that is not ready");
    // O(1) unlink through the position index (vs the old linear
    // std::find + erase over a ready vector).
    const std::size_t p = _prev[instruction_index];
    const std::size_t n = _next[instruction_index];
    _next[p] = n;
    _prev[n] = p;
    _inReady[instruction_index] = 0;
    --_readyCount;
    --_remaining;
    for (std::size_t succ : _successors[instruction_index]) {
        if (--_pending[succ] == 0) {
            linkReady(succ);
        }
    }
}

std::vector<std::size_t>
DependencyFrontier::lookahead(std::size_t horizon) const
{
    LookaheadScratch scratch;
    std::vector<std::size_t> out;
    lookahead(horizon, scratch, out);
    return out;
}

void
DependencyFrontier::lookahead(std::size_t horizon, LookaheadScratch &scratch,
                              std::vector<std::size_t> &out) const
{
    // Breadth-first walk over successors, bounded by `horizon` total ops.
    // The epoch stamp makes `seen` reusable without clearing: a mark from
    // an earlier call carries an older epoch and reads as unvisited.
    out.clear();
    const std::uint64_t epoch = ++scratch.epoch;
    scratch.seen.resize(_circuit.size(), 0);
    scratch.queue.clear();
    for (std::size_t idx : ready()) {
        scratch.queue.push_back(idx);
        scratch.seen[idx] = epoch;
    }
    while (!scratch.queue.empty() && out.size() < horizon) {
        scratch.next.clear();
        for (std::size_t idx : scratch.queue) {
            for (std::size_t succ : _successors[idx]) {
                if (scratch.seen[succ] != epoch) {
                    scratch.seen[succ] = epoch;
                    scratch.next.push_back(succ);
                    out.push_back(succ);
                    if (out.size() >= horizon) {
                        return;
                    }
                }
            }
        }
        std::swap(scratch.queue, scratch.next);
    }
}

} // namespace snail
