#include "ir/dag.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace snail
{

std::vector<std::size_t>
asapLayers(const Circuit &circuit)
{
    std::vector<std::size_t> qubit_level(
        static_cast<std::size_t>(circuit.numQubits()), 0);
    std::vector<std::size_t> layers;
    layers.reserve(circuit.size());
    for (const auto &op : circuit.instructions()) {
        std::size_t level = 0;
        for (Qubit q : op.qubits()) {
            level = std::max(level, qubit_level[static_cast<std::size_t>(q)]);
        }
        layers.push_back(level);
        for (Qubit q : op.qubits()) {
            qubit_level[static_cast<std::size_t>(q)] = level + 1;
        }
    }
    return layers;
}

std::vector<std::vector<std::size_t>>
layeredSchedule(const Circuit &circuit)
{
    const auto layers = asapLayers(circuit);
    std::size_t depth = 0;
    for (auto l : layers) {
        depth = std::max(depth, l + 1);
    }
    std::vector<std::vector<std::size_t>> grouped(depth);
    for (std::size_t i = 0; i < layers.size(); ++i) {
        grouped[layers[i]].push_back(i);
    }
    return grouped;
}

DependencyFrontier::DependencyFrontier(const Circuit &circuit)
    : _circuit(circuit),
      _pending(circuit.size(), 0),
      _successors(circuit.size()),
      _remaining(circuit.size())
{
    // Wire qubit chains: the previous instruction touching a qubit is a
    // predecessor of the next instruction touching it.
    std::vector<long> last(static_cast<std::size_t>(circuit.numQubits()), -1);
    for (std::size_t i = 0; i < circuit.size(); ++i) {
        for (Qubit q : circuit.instructions()[i].qubits()) {
            const long prev = last[static_cast<std::size_t>(q)];
            if (prev >= 0) {
                _successors[static_cast<std::size_t>(prev)].push_back(i);
                ++_pending[i];
            }
            last[static_cast<std::size_t>(q)] = static_cast<long>(i);
        }
    }
    for (std::size_t i = 0; i < circuit.size(); ++i) {
        if (_pending[i] == 0) {
            _ready.push_back(i);
        }
    }
}

void
DependencyFrontier::consume(std::size_t instruction_index)
{
    auto it = std::find(_ready.begin(), _ready.end(), instruction_index);
    SNAIL_ASSERT(it != _ready.end(),
                 "consume() of instruction " << instruction_index
                                             << " that is not ready");
    _ready.erase(it);
    --_remaining;
    for (std::size_t succ : _successors[instruction_index]) {
        if (--_pending[succ] == 0) {
            _ready.push_back(succ);
        }
    }
}

std::vector<std::size_t>
DependencyFrontier::lookahead(std::size_t horizon) const
{
    LookaheadScratch scratch;
    std::vector<std::size_t> out;
    lookahead(horizon, scratch, out);
    return out;
}

void
DependencyFrontier::lookahead(std::size_t horizon, LookaheadScratch &scratch,
                              std::vector<std::size_t> &out) const
{
    // Breadth-first walk over successors, bounded by `horizon` total ops.
    // The epoch stamp makes `seen` reusable without clearing: a mark from
    // an earlier call carries an older epoch and reads as unvisited.
    out.clear();
    const std::uint64_t epoch = ++scratch.epoch;
    scratch.seen.resize(_circuit.size(), 0);
    scratch.queue.assign(_ready.begin(), _ready.end());
    for (std::size_t idx : scratch.queue) {
        scratch.seen[idx] = epoch;
    }
    while (!scratch.queue.empty() && out.size() < horizon) {
        scratch.next.clear();
        for (std::size_t idx : scratch.queue) {
            for (std::size_t succ : _successors[idx]) {
                if (scratch.seen[succ] != epoch) {
                    scratch.seen[succ] = epoch;
                    scratch.next.push_back(succ);
                    out.push_back(succ);
                    if (out.size() >= horizon) {
                        return;
                    }
                }
            }
        }
        std::swap(scratch.queue, scratch.next);
    }
}

} // namespace snail
