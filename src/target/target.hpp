/**
 * @file
 * Target: a first-class device model in the style of Qiskit's Target.
 *
 * The paper's unit of co-design is a machine — a coupling topology
 * *plus* the native gate its modulator calibrates on each coupling,
 * with per-pulse fidelity set by pulse duration (Eqs. 12 and 13).  A
 * Target owns that whole picture:
 *
 *   Target
 *    ├─ CouplingGraph            physical qubits + couplings
 *    ├─ EdgeProperties (default + per-edge overrides)
 *    │    ├─ BasisSpec basis     native 2Q gate on the coupling
 *    │    ├─ fidelity_2q         per-native-pulse fidelity (Eq. 12)
 *    │    └─ duration            per-pulse time (basis default: 1/n)
 *    └─ QubitProperties (default + per-qubit overrides)
 *         ├─ fidelity_1q         per-1Q-gate fidelity
 *         └─ t1 / t2             coherence, normalized pulse units
 *
 * Uniform targets (no overrides) behave exactly like the legacy
 * (CouplingGraph, BasisSpec) pair the transpiler used before, which is
 * what keeps the transpile()/Backend shims bit-for-bit compatible.
 * Heterogeneous targets install different bases / fidelities per edge,
 * opening the paper's stated future work (heterogeneous basis gates)
 * as a real transpiler scenario: noise-aware routing ("noise-route"),
 * per-edge basis scoring ("basis=auto"), and predicted-fidelity
 * scoring ("score-fidelity") all read these properties through the
 * PassContext.
 *
 * Targets serialize to a small JSON schema (documented in
 * examples/devices/README.md) so the CLI can transpile against a
 * device file without recompiling:  snailqc transpile ... --device f.json
 */

#ifndef SNAILQC_TARGET_TARGET_HPP
#define SNAILQC_TARGET_TARGET_HPP

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "codesign/backend.hpp"
#include "common/json.hpp"
#include "topology/coupling_graph.hpp"
#include "transpiler/hetero_basis.hpp"
#include "weyl/basis_counts.hpp"

namespace snail
{

/** Per-qubit calibration data. */
struct QubitProperties
{
    double fidelity_1q = 1.0; //!< fidelity of one 1Q gate
    double t1 = 0.0;          //!< relaxation time, normalized pulse units
    double t2 = 0.0;          //!< dephasing time; 0 means ideal (no decay)

    bool operator==(const QubitProperties &o) const
    {
        return fidelity_1q == o.fidelity_1q && t1 == o.t1 && t2 == o.t2;
    }
};

/** Per-coupling calibration data. */
struct EdgeProperties
{
    BasisSpec basis{};        //!< native 2Q gate installed on the edge
    double fidelity_2q = 1.0; //!< fidelity of ONE native pulse
    /** Per-pulse time; negative means "use basis.pulseDuration()". */
    double duration = -1.0;

    /** Effective per-pulse duration (the basis default when unset). */
    double
    pulseDuration() const
    {
        return duration >= 0.0 ? duration : basis.pulseDuration();
    }

    bool operator==(const EdgeProperties &o) const
    {
        return basis.kind == o.basis.kind &&
               basis.optimistic_syc == o.basis.optimistic_syc &&
               fidelity_2q == o.fidelity_2q && duration == o.duration;
    }
};

/**
 * Eq. 12 applied to a basis choice: the per-pulse fidelity of `basis`
 * on hardware whose full-length (duration 1.0) pulse has fidelity
 * `full_pulse_fidelity`.  The n-root-iSWAP family shortens the pulse to
 * 1/n of a full iSWAP, so infidelity scales down by the same factor;
 * full-length bases (CNOT, SYC, iSWAP) keep the base fidelity.
 */
double basisPulseFidelity(const BasisSpec &basis,
                          double full_pulse_fidelity);

/** Default calibration used by the built-in targets (paper Sec. 6.3). */
inline constexpr double kDefaultFullPulseFidelity = 0.99;
inline constexpr double kDefault1qFidelity = 0.9999;

/** Coupling graph plus per-edge and per-qubit calibration. */
class Target
{
  public:
    /**
     * A target over `graph` whose every edge/qubit carries the given
     * defaults until overridden.
     */
    explicit Target(CouplingGraph graph,
                    EdgeProperties default_edge = EdgeProperties{},
                    QubitProperties default_qubit = QubitProperties{});

    /**
     * Uniform factory: every edge hosts `basis` at fidelity
     * `fidelity_2q` per pulse, every qubit `fidelity_1q`.  With the
     * default perfect fidelities this is exactly the legacy
     * (graph, basis) device the PR-1 pipelines ran against.
     */
    static Target uniform(const CouplingGraph &graph,
                          const BasisSpec &basis,
                          double fidelity_2q = 1.0,
                          double fidelity_1q = 1.0);

    /** Display name; defaults to the graph's name. */
    const std::string &name() const { return _name; }
    void setName(std::string name) { _name = std::move(name); }

    const CouplingGraph &graph() const { return _graph; }
    int numQubits() const { return _graph.numQubits(); }

    const EdgeProperties &defaultEdge() const { return _defaultEdge; }
    const QubitProperties &defaultQubit() const { return _defaultQubit; }
    /** The basis a basis-unaware consumer should score against. */
    const BasisSpec &defaultBasis() const { return _defaultEdge.basis; }

    /**
     * Override one edge's properties.
     * @throws SnailError when (a, b) is not a coupling of the graph.
     */
    void setEdgeProperties(int a, int b, const EdgeProperties &props);

    /** Override one qubit's properties. @throws SnailError on range. */
    void setQubitProperties(int q, const QubitProperties &props);

    /**
     * Properties of edge (a, b) — the default when never overridden.
     * @throws SnailError when (a, b) is not a coupling of the graph.
     */
    const EdgeProperties &edge(int a, int b) const;

    /** Properties of qubit q. @throws SnailError on range. */
    const QubitProperties &qubit(int q) const;

    /** Number of edges with explicit overrides. */
    std::size_t overriddenEdges() const { return _edges.size(); }

    /** True when any edge or qubit override exists. */
    bool
    isHeterogeneous() const
    {
        return !_edges.empty() || !_qubits.empty();
    }

    /**
     * Per-edge basis view for heterogeneous translation scoring
     * (transpiler/hetero_basis.hpp).  The view references this
     * target's graph; keep the target alive while using it.
     */
    HeterogeneousBasis heterogeneousBasis() const;

    /** All explicitly overridden edges as ((a, b), properties). */
    std::vector<std::pair<std::pair<int, int>, EdgeProperties>>
    edgeOverrides() const;

    /** All explicitly overridden qubits as (q, properties). */
    std::vector<std::pair<int, QubitProperties>> qubitOverrides() const;

    /**
     * Stable 64-bit content hash (common/hash.hpp): qubit count, edge
     * list, default edge/qubit calibration, and every per-edge and
     * per-qubit override.  The display name is deliberately excluded —
     * two targets describing the same machine are the same content
     * regardless of what they are called.  Used by the explore/
     * transpile cache, so the value must be stable across processes.
     */
    unsigned long long contentHash() const;

  private:
    static std::pair<int, int> canonical(int a, int b);

    std::string _name;
    CouplingGraph _graph;
    EdgeProperties _defaultEdge;
    QubitProperties _defaultQubit;
    std::map<std::pair<int, int>, EdgeProperties> _edges;
    std::map<int, QubitProperties> _qubits;
};

/**
 * Lift a legacy Backend into a Target: the backend's topology and
 * basis, with per-pulse 2Q fidelity derived from
 * `full_pulse_fidelity` via Eq. 12 (basisPulseFidelity) and uniform
 * 1Q fidelity.
 */
Target targetFromBackend(
    const Backend &backend,
    double full_pulse_fidelity = kDefaultFullPulseFidelity,
    double fidelity_1q = kDefault1qFidelity);

/** The co-designed machines of Fig. 13 (16-20 qubits) as Targets. */
std::vector<Target> fig13Targets();

/** The co-designed machines of Fig. 14 (84 qubits) as Targets. */
std::vector<Target> fig14Targets();

/** All built-in targets (fig13 then fig14 machines). */
std::vector<Target> builtinTargets();

/**
 * Built-in target by name (e.g. "tree-20-sqiswap").
 * @throws SnailError listing the known names for unknown ones.
 */
Target namedTarget(const std::string &name);

/** @name JSON device descriptions (schema: examples/devices/README.md). */
/** @{ */

/** Serialize a target to its JSON device description. */
JsonValue targetToJson(const Target &target);

/** Build a target from a parsed device description. */
Target targetFromJson(const JsonValue &json);

/** Load a device description file. @throws SnailError on I/O errors. */
Target loadTargetFile(const std::string &path);

/** Write a device description file. @throws SnailError on I/O errors. */
void saveTargetFile(const Target &target, const std::string &path);

/** @} */

} // namespace snail

#endif // SNAILQC_TARGET_TARGET_HPP
