#include "target/target.hpp"

#include <fstream>
#include <sstream>

#include <set>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "fidelity/model.hpp"

namespace snail
{

double
basisPulseFidelity(const BasisSpec &basis, double full_pulse_fidelity)
{
    SNAIL_REQUIRE(full_pulse_fidelity > 0.0 && full_pulse_fidelity <= 1.0,
                  "full-pulse fidelity " << full_pulse_fidelity
                                         << " outside (0, 1]");
    const double duration = basis.pulseDuration();
    if (duration >= 1.0) {
        return full_pulse_fidelity;
    }
    // Eq. 12 with root n = 1 / duration: a pulse 1/n as long carries
    // 1/n of the full pulse's decoherence-driven infidelity.
    return scaledBasisFidelity(full_pulse_fidelity, 1.0 / duration);
}

Target::Target(CouplingGraph graph, EdgeProperties default_edge,
               QubitProperties default_qubit)
    : _name(graph.name()), _graph(std::move(graph)),
      _defaultEdge(default_edge), _defaultQubit(default_qubit)
{
}

Target
Target::uniform(const CouplingGraph &graph, const BasisSpec &basis,
                double fidelity_2q, double fidelity_1q)
{
    EdgeProperties edge;
    edge.basis = basis;
    edge.fidelity_2q = fidelity_2q;
    QubitProperties qubit;
    qubit.fidelity_1q = fidelity_1q;
    return Target(graph, edge, qubit);
}

namespace
{

/** The one edge-pair canonicalization rule of this file. */
std::pair<int, int>
canonicalPair(int a, int b)
{
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

} // namespace

std::pair<int, int>
Target::canonical(int a, int b)
{
    return canonicalPair(a, b);
}

void
Target::setEdgeProperties(int a, int b, const EdgeProperties &props)
{
    SNAIL_REQUIRE(_graph.hasEdge(a, b),
                  "no coupling between qubits " << a << " and " << b
                                                << " on " << name());
    _edges[canonical(a, b)] = props;
}

void
Target::setQubitProperties(int q, const QubitProperties &props)
{
    SNAIL_REQUIRE(q >= 0 && q < numQubits(),
                  "qubit " << q << " out of range on " << name());
    _qubits[q] = props;
}

const EdgeProperties &
Target::edge(int a, int b) const
{
    SNAIL_REQUIRE(_graph.hasEdge(a, b),
                  "no coupling between qubits " << a << " and " << b
                                                << " on " << name());
    const auto it = _edges.find(canonical(a, b));
    return it == _edges.end() ? _defaultEdge : it->second;
}

const QubitProperties &
Target::qubit(int q) const
{
    SNAIL_REQUIRE(q >= 0 && q < numQubits(),
                  "qubit " << q << " out of range on " << name());
    const auto it = _qubits.find(q);
    return it == _qubits.end() ? _defaultQubit : it->second;
}

HeterogeneousBasis
Target::heterogeneousBasis() const
{
    HeterogeneousBasis bases(_graph, _defaultEdge.basis);
    for (const auto &[pair, props] : _edges) {
        bases.setEdgeBasis(pair.first, pair.second, props.basis);
    }
    return bases;
}

std::vector<std::pair<std::pair<int, int>, EdgeProperties>>
Target::edgeOverrides() const
{
    return {_edges.begin(), _edges.end()};
}

std::vector<std::pair<int, QubitProperties>>
Target::qubitOverrides() const
{
    return {_qubits.begin(), _qubits.end()};
}

namespace
{

void
hashEdgeProps(ContentHasher &h, const EdgeProperties &props)
{
    h.i64(static_cast<long long>(props.basis.kind));
    h.byte(props.basis.optimistic_syc ? 1 : 0);
    h.f64(props.fidelity_2q);
    h.f64(props.duration);
}

void
hashQubitProps(ContentHasher &h, const QubitProperties &props)
{
    h.f64(props.fidelity_1q);
    h.f64(props.t1);
    h.f64(props.t2);
}

} // namespace

unsigned long long
Target::contentHash() const
{
    ContentHasher h;
    h.i64(numQubits());
    const auto edge_list = _graph.edges();
    h.u64(edge_list.size());
    for (const auto &[a, b] : edge_list) {
        h.i64(a);
        h.i64(b);
    }
    hashEdgeProps(h, _defaultEdge);
    hashQubitProps(h, _defaultQubit);
    h.u64(_edges.size());
    for (const auto &[pair, props] : _edges) {
        h.i64(pair.first);
        h.i64(pair.second);
        hashEdgeProps(h, props);
    }
    h.u64(_qubits.size());
    for (const auto &[q, props] : _qubits) {
        h.i64(q);
        hashQubitProps(h, props);
    }
    return h.value();
}

Target
targetFromBackend(const Backend &backend, double full_pulse_fidelity,
                  double fidelity_1q)
{
    Target target = Target::uniform(
        backend.topology, backend.basis,
        basisPulseFidelity(backend.basis, full_pulse_fidelity),
        fidelity_1q);
    target.setName(backend.name);
    return target;
}

std::vector<Target>
fig13Targets()
{
    std::vector<Target> targets;
    for (const Backend &backend : fig13Backends()) {
        targets.push_back(targetFromBackend(backend));
    }
    return targets;
}

std::vector<Target>
fig14Targets()
{
    std::vector<Target> targets;
    for (const Backend &backend : fig14Backends()) {
        targets.push_back(targetFromBackend(backend));
    }
    return targets;
}

std::vector<Target>
builtinTargets()
{
    std::vector<Target> targets = fig13Targets();
    for (Target &target : fig14Targets()) {
        targets.push_back(std::move(target));
    }
    return targets;
}

Target
namedTarget(const std::string &name)
{
    std::string known;
    for (const Target &target : builtinTargets()) {
        if (target.name() == name) {
            return target;
        }
        known += known.empty() ? target.name() : ", " + target.name();
    }
    SNAIL_THROW("unknown target '" << name << "' (known: " << known << ")");
}

namespace
{

/**
 * Serialize edge calibration relative to `fallback` (the loader's
 * inheritance source).  The duration sentinel (< 0, "use the basis
 * default") is normally expressed by omitting the key, but when the
 * fallback carries an explicit duration the omission would inherit
 * that instead — an explicit null keeps the round-trip exact.
 */
JsonValue
edgePropsJson(const EdgeProperties &props, const EdgeProperties &fallback)
{
    JsonValue::Object o;
    o["basis"] = JsonValue(props.basis.name());
    if (props.basis.optimistic_syc) {
        o["optimistic_syc"] = JsonValue(true);
    }
    o["fidelity_2q"] = JsonValue(props.fidelity_2q);
    if (props.duration >= 0.0) {
        o["duration"] = JsonValue(props.duration);
    } else if (fallback.duration >= 0.0) {
        o["duration"] = JsonValue(); // null: reset to the basis default
    }
    return JsonValue(std::move(o));
}

EdgeProperties
edgePropsFromJson(const JsonValue &json, const EdgeProperties &fallback)
{
    EdgeProperties props = fallback;
    if (const JsonValue *basis = json.find("basis")) {
        props.basis = parseBasisSpec(basis->asString());
    }
    if (const JsonValue *opt = json.find("optimistic_syc")) {
        props.basis.optimistic_syc = opt->asBool();
    }
    props.fidelity_2q = json.numberOr("fidelity_2q", props.fidelity_2q);
    if (const JsonValue *duration = json.find("duration")) {
        props.duration = duration->isNull() ? -1.0 : duration->asNumber();
    }
    SNAIL_REQUIRE(props.fidelity_2q > 0.0 && props.fidelity_2q <= 1.0,
                  "edge fidelity_2q " << props.fidelity_2q
                                      << " outside (0, 1]");
    return props;
}

JsonValue
qubitPropsJson(const QubitProperties &props)
{
    JsonValue::Object o;
    o["fidelity_1q"] = JsonValue(props.fidelity_1q);
    if (props.t1 > 0.0) {
        o["t1"] = JsonValue(props.t1);
    }
    if (props.t2 > 0.0) {
        o["t2"] = JsonValue(props.t2);
    }
    return JsonValue(std::move(o));
}

QubitProperties
qubitPropsFromJson(const JsonValue &json, const QubitProperties &fallback)
{
    QubitProperties props = fallback;
    props.fidelity_1q = json.numberOr("fidelity_1q", props.fidelity_1q);
    props.t1 = json.numberOr("t1", props.t1);
    props.t2 = json.numberOr("t2", props.t2);
    SNAIL_REQUIRE(props.fidelity_1q > 0.0 && props.fidelity_1q <= 1.0,
                  "fidelity_1q " << props.fidelity_1q << " outside (0, 1]");
    return props;
}

} // namespace

JsonValue
targetToJson(const Target &target)
{
    JsonValue::Object root;
    root["name"] = JsonValue(target.name());
    root["qubits"] = JsonValue(target.numQubits());
    root["default_edge"] =
        edgePropsJson(target.defaultEdge(), EdgeProperties{});
    root["default_qubit"] = qubitPropsJson(target.defaultQubit());

    JsonValue::Array edges;
    for (const auto &[a, b] : target.graph().edges()) {
        const EdgeProperties &props = target.edge(a, b);
        if (props == target.defaultEdge()) {
            edges.push_back(
                JsonValue(JsonValue::Array{JsonValue(a), JsonValue(b)}));
        } else {
            JsonValue entry = edgePropsJson(props, target.defaultEdge());
            entry.object()["a"] = JsonValue(a);
            entry.object()["b"] = JsonValue(b);
            edges.push_back(std::move(entry));
        }
    }
    root["edges"] = JsonValue(std::move(edges));

    JsonValue::Array qubits;
    for (const auto &[q, props] : target.qubitOverrides()) {
        JsonValue entry = qubitPropsJson(props);
        entry.object()["q"] = JsonValue(q);
        qubits.push_back(std::move(entry));
    }
    if (!qubits.empty()) {
        root["qubit_overrides"] = JsonValue(std::move(qubits));
    }
    return JsonValue(std::move(root));
}

Target
targetFromJson(const JsonValue &json)
{
    const int num_qubits = json.at("qubits").asInt();
    SNAIL_REQUIRE(num_qubits > 0,
                  "device needs at least one qubit, got " << num_qubits);
    const std::string name = json.stringOr("name", "device");

    EdgeProperties default_edge;
    if (const JsonValue *d = json.find("default_edge")) {
        default_edge = edgePropsFromJson(*d, EdgeProperties{});
    }
    QubitProperties default_qubit;
    if (const JsonValue *d = json.find("default_qubit")) {
        default_qubit = qubitPropsFromJson(*d, QubitProperties{});
    }

    CouplingGraph graph(num_qubits, name);
    // First pass: build the topology (overrides need existing edges).
    // addEdge is idempotent, so duplicates must be rejected here: a
    // repeated entry is at best redundant and at worst two conflicting
    // calibration blocks for the same coupling.
    std::set<std::pair<int, int>> seen;
    const JsonValue &edges = json.at("edges");
    for (const JsonValue &entry : edges.asArray()) {
        int a = 0;
        int b = 0;
        if (entry.isArray()) {
            const auto &pair = entry.asArray();
            SNAIL_REQUIRE(pair.size() == 2,
                          "edge entry needs exactly two endpoints");
            a = pair[0].asInt();
            b = pair[1].asInt();
        } else {
            a = entry.at("a").asInt();
            b = entry.at("b").asInt();
        }
        if (!seen.insert(canonicalPair(a, b)).second) {
            throw DuplicateEdgeError(name, a, b);
        }
        graph.addEdge(a, b);
    }

    Target target(std::move(graph), default_edge, default_qubit);
    target.setName(name);
    for (const JsonValue &entry : edges.asArray()) {
        if (entry.isObject()) {
            target.setEdgeProperties(
                entry.at("a").asInt(), entry.at("b").asInt(),
                edgePropsFromJson(entry, default_edge));
        }
    }
    if (const JsonValue *qubits = json.find("qubit_overrides")) {
        for (const JsonValue &entry : qubits->asArray()) {
            target.setQubitProperties(
                entry.at("q").asInt(),
                qubitPropsFromJson(entry, default_qubit));
        }
    }
    return target;
}

Target
loadTargetFile(const std::string &path)
{
    std::ifstream in(path);
    SNAIL_REQUIRE(in.good(), "cannot open device file '" << path << "'");
    std::ostringstream text;
    text << in.rdbuf();
    try {
        return targetFromJson(JsonValue::parse(text.str()));
    } catch (const DuplicateEdgeError &e) {
        // Re-wrap with the path but keep the typed error — and its
        // deviceName()/pair accessors intact — so callers can still
        // react to the specific failure.
        throw DuplicateEdgeError(e.deviceName(), e.qubitA(), e.qubitB(),
                                 "device file '" + path + "': ");
    } catch (const SnailError &e) {
        SNAIL_THROW("device file '" << path << "': " << e.what());
    }
}

void
saveTargetFile(const Target &target, const std::string &path)
{
    std::ofstream out(path);
    SNAIL_REQUIRE(out.good(), "cannot write device file '" << path << "'");
    out << targetToJson(target).dump(2) << "\n";
    SNAIL_REQUIRE(out.good(), "write to '" << path << "' failed");
}

} // namespace snail
