#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace snail
{

namespace
{

/** Round-robin shard assignment; wraps, collisions only share a cell. */
std::atomic<std::size_t> g_next_shard{0};

} // namespace

std::size_t
Counter::threadShard()
{
    thread_local const std::size_t slot =
        g_next_shard.fetch_add(1, std::memory_order_relaxed) % kShards;
    return slot;
}

void
Histogram::observe(double us)
{
    if (!(us >= 0.0)) { // also catches NaN
        us = 0.0;
    }
    std::size_t bucket = 0;
    while (bucket + 1 < kBuckets && us > bucketBound(bucket)) {
        ++bucket;
    }
    _buckets[bucket].fetch_add(1, std::memory_order_relaxed);
    _count.fetch_add(1, std::memory_order_relaxed);
    const double ns = us * 1000.0;
    const unsigned long long ns_int =
        ns >= 0.0 ? static_cast<unsigned long long>(ns + 0.5) : 0ull;
    _sum_ns.fetch_add(ns_int, std::memory_order_relaxed);
}

double
Histogram::bucketBound(std::size_t i)
{
    return std::ldexp(1.0, static_cast<int>(i)); // 2^i
}

unsigned long long
Histogram::cumulativeCount(std::size_t i) const
{
    unsigned long long total = 0;
    for (std::size_t b = 0; b <= i && b < kBuckets; ++b) {
        total += _buckets[b].load(std::memory_order_relaxed);
    }
    return total;
}

JsonValue
MetricsSnapshot::toJson() const
{
    JsonValue::Object counters_obj;
    for (const CounterValue &c : counters) {
        counters_obj[c.name] = JsonValue(static_cast<double>(c.value));
    }
    JsonValue::Object gauges_obj;
    for (const GaugeValue &g : gauges) {
        gauges_obj[g.name] = JsonValue(g.value);
    }
    JsonValue::Object histograms_obj;
    for (const HistogramValue &h : histograms) {
        JsonValue::Array buckets;
        for (std::size_t i = 0; i < h.cumulative.size(); ++i) {
            JsonValue::Object bucket;
            bucket["le"] = JsonValue(Histogram::bucketBound(i));
            bucket["count"] =
                JsonValue(static_cast<double>(h.cumulative[i]));
            buckets.push_back(JsonValue(std::move(bucket)));
        }
        JsonValue::Object hist;
        hist["count"] = JsonValue(static_cast<double>(h.count));
        hist["sum_us"] = JsonValue(h.sum_us);
        hist["buckets"] = JsonValue(std::move(buckets));
        histograms_obj[h.name] = JsonValue(std::move(hist));
    }
    JsonValue::Object root;
    root["counters"] = JsonValue(std::move(counters_obj));
    root["gauges"] = JsonValue(std::move(gauges_obj));
    root["histograms"] = JsonValue(std::move(histograms_obj));
    return JsonValue(std::move(root));
}

std::string
MetricsSnapshot::toPrometheusText() const
{
    std::string out;
    for (const CounterValue &c : counters) {
        out += "# TYPE " + c.name + " counter\n";
        out += c.name + " " + std::to_string(c.value) + "\n";
    }
    for (const GaugeValue &g : gauges) {
        out += "# TYPE " + g.name + " gauge\n";
        out += g.name + " " + shortestDouble(g.value) + "\n";
    }
    for (const HistogramValue &h : histograms) {
        out += "# TYPE " + h.name + " histogram\n";
        for (std::size_t i = 0; i < h.cumulative.size(); ++i) {
            out += h.name + "_bucket{le=\"" +
                   shortestDouble(Histogram::bucketBound(i)) + "\"} " +
                   std::to_string(h.cumulative[i]) + "\n";
        }
        out += h.name + "_bucket{le=\"+Inf\"} " +
               std::to_string(h.count) + "\n";
        out += h.name + "_sum " + shortestDouble(h.sum_us) + "\n";
        out += h.name + "_count " + std::to_string(h.count) + "\n";
    }
    return out;
}

MetricsRegistry &
MetricsRegistry::global()
{
    // Leaked so shutdown-order races with gauge callbacks cannot
    // observe a destroyed registry.
    static MetricsRegistry *registry = new MetricsRegistry();
    return *registry;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(_mutex);
    std::unique_ptr<Counter> &slot = _counters[name];
    if (!slot) {
        slot = std::make_unique<Counter>();
    }
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(_mutex);
    std::unique_ptr<Gauge> &slot = _gauges[name];
    if (!slot) {
        slot = std::make_unique<Gauge>();
    }
    return *slot;
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(_mutex);
    std::unique_ptr<Histogram> &slot = _histograms[name];
    if (!slot) {
        slot = std::make_unique<Histogram>();
    }
    return *slot;
}

void
MetricsRegistry::registerGauge(const std::string &name,
                               std::function<double()> fn)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _callback_gauges[name] = std::move(fn);
}

void
MetricsRegistry::unregisterGauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _callback_gauges.erase(name);
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    // Callback gauges run outside _mutex: a callback is free to take
    // its own subsystem lock (scheduler, cache) without ordering
    // against registry operations.
    std::vector<std::pair<std::string, std::function<double()>>>
        callbacks;
    MetricsSnapshot snap;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        for (const auto &entry : _counters) {
            snap.counters.push_back({entry.first,
                                     entry.second->value()});
        }
        for (const auto &entry : _gauges) {
            snap.gauges.push_back({entry.first,
                                   entry.second->value()});
        }
        for (const auto &entry : _callback_gauges) {
            callbacks.emplace_back(entry.first, entry.second);
        }
        for (const auto &entry : _histograms) {
            MetricsSnapshot::HistogramValue value;
            value.name = entry.first;
            value.cumulative.reserve(Histogram::kBuckets);
            for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
                value.cumulative.push_back(
                    entry.second->cumulativeCount(i));
            }
            value.count = entry.second->count();
            value.sum_us = entry.second->sumUs();
            snap.histograms.push_back(std::move(value));
        }
    }
    for (auto &callback : callbacks) {
        snap.gauges.push_back({callback.first, callback.second()});
    }
    std::sort(snap.gauges.begin(), snap.gauges.end(),
              [](const MetricsSnapshot::GaugeValue &a,
                 const MetricsSnapshot::GaugeValue &b) {
                  return a.name < b.name;
              });
    return snap;
}

} // namespace snail
