#include "obs/trace.hpp"

#include <algorithm>

#include "common/json.hpp"

namespace snail
{

namespace
{

std::atomic<Tracer *> g_active{nullptr};
std::atomic<std::uint64_t> g_tracer_ids{0};

/** One thread's cached (tracer id -> buffer) association. */
struct ThreadCache
{
    std::uint64_t tracer_id = 0;
    void *buffer = nullptr;
};

thread_local ThreadCache t_cache;

} // namespace

Tracer *
activeTracer()
{
    return g_active.load(std::memory_order_acquire);
}

void
setActiveTracer(Tracer *tracer)
{
    g_active.store(tracer, std::memory_order_release);
}

Tracer::Tracer()
    : _id(g_tracer_ids.fetch_add(1, std::memory_order_relaxed) + 1),
      _epoch(std::chrono::steady_clock::now())
{
}

Tracer::ThreadBuffer &
Tracer::threadBuffer()
{
    // The id check (not a pointer check) makes the cache safe against
    // a new Tracer reusing a destroyed one's address.
    if (t_cache.tracer_id == _id) {
        return *static_cast<ThreadBuffer *>(t_cache.buffer);
    }
    std::lock_guard<std::mutex> lock(_mutex);
    _buffers.push_back(std::make_unique<ThreadBuffer>());
    ThreadBuffer &buffer = *_buffers.back();
    buffer.tid = static_cast<std::uint32_t>(_buffers.size());
    t_cache.tracer_id = _id;
    t_cache.buffer = &buffer;
    return buffer;
}

std::uint64_t
Tracer::nowNs() const
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - _epoch)
            .count());
}

void
Tracer::begin(const std::string &name, const char *category)
{
    ThreadBuffer &buffer = threadBuffer();
    if (buffer.events.size() >= kMaxEventsPerThread) {
        ++buffer.dropped;
        ++buffer.dropped_depth;
        return;
    }
    Event event;
    event.name = name;
    event.category = category;
    event.phase = 'B';
    event.ts_ns = nowNs();
    buffer.events.push_back(std::move(event));
    buffer.open.push_back(name);
}

void
Tracer::end()
{
    ThreadBuffer &buffer = threadBuffer();
    if (buffer.dropped_depth > 0) {
        // The matching B was discarded; suppress the E to stay
        // balanced.
        --buffer.dropped_depth;
        return;
    }
    if (buffer.open.empty()) {
        return; // unmatched end; ignore rather than corrupt the stream
    }
    Event event;
    event.name = buffer.open.back();
    event.phase = 'E';
    event.ts_ns = nowNs();
    buffer.open.pop_back();
    buffer.events.push_back(std::move(event));
}

std::size_t
Tracer::eventCount() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    std::size_t total = 0;
    for (const std::unique_ptr<ThreadBuffer> &buffer : _buffers) {
        total += buffer->events.size();
    }
    return total;
}

std::size_t
Tracer::droppedCount() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    std::size_t total = 0;
    for (const std::unique_ptr<ThreadBuffer> &buffer : _buffers) {
        total += buffer->dropped;
    }
    return total;
}

void
Tracer::writeJson(std::ostream &out) const
{
    std::lock_guard<std::mutex> lock(_mutex);

    std::vector<const ThreadBuffer *> buffers;
    buffers.reserve(_buffers.size());
    for (const std::unique_ptr<ThreadBuffer> &buffer : _buffers) {
        buffers.push_back(buffer.get());
    }
    std::sort(buffers.begin(), buffers.end(),
              [](const ThreadBuffer *a, const ThreadBuffer *b) {
                  return a->tid < b->tid;
              });

    out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    auto comma = [&]() {
        if (!first) {
            out << ",";
        }
        first = false;
    };

    comma();
    out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
           "\"tid\":0,\"ts\":0,\"args\":{\"name\":\"snailqc\"}}";

    for (const ThreadBuffer *buffer : buffers) {
        comma();
        out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
            << "\"tid\":" << buffer->tid
            << ",\"ts\":0,\"args\":{\"name\":\"thread-" << buffer->tid
            << "\"}}";
        for (const Event &event : buffer->events) {
            comma();
            // ts is microseconds; keep ns resolution as a fraction.
            out << "{\"name\":" << JsonValue(event.name).dump()
                << ",\"cat\":\""
                << (event.phase == 'B' ? event.category : "")
                << "\",\"ph\":\"" << event.phase
                << "\",\"pid\":1,\"tid\":" << buffer->tid
                << ",\"ts\":"
                << fixedDouble(static_cast<double>(event.ts_ns) /
                                   1000.0,
                               3)
                << "}";
        }
        // Spans still open at serialization time (e.g. the daemon's
        // accept loop) are closed at "now" so the stream stays
        // balanced for strict validators.
        const std::uint64_t now = nowNs();
        for (std::size_t i = buffer->open.size(); i > 0; --i) {
            comma();
            out << "{\"name\":"
                << JsonValue(buffer->open[i - 1]).dump()
                << ",\"cat\":\"\",\"ph\":\"E\",\"pid\":1,\"tid\":"
                << buffer->tid << ",\"ts\":"
                << fixedDouble(static_cast<double>(now) / 1000.0, 3)
                << "}";
        }
    }
    out << "]}";
}

} // namespace snail
