/**
 * @file
 * Process-wide metrics registry: counters, gauges, histograms.
 *
 * Every subsystem that used to keep private ad-hoc counters — pass
 * timings in TranspileResult, cache hit/miss/eviction tallies in
 * CacheStore, pool/queue depth polled off the Scheduler, admission
 * counters in the serve Service — now also publishes into one named
 * registry, so a single snapshot describes the whole process and one
 * wire op (`metrics`) exports it.
 *
 * Instrument types:
 *
 *  - Counter: monotonic, add-only.  The hot path is sharded: each
 *    thread hashes to one of a fixed set of cache-line-padded atomic
 *    cells, so concurrent workers never contend on one line; value()
 *    sums the shards.
 *  - Gauge: a point-in-time double, either stored (set()) or computed
 *    at snapshot time from a registered callback — the live export
 *    surface for values like Scheduler::queueDepth() that only exist
 *    by asking.
 *  - Histogram: log2-bucketed latency distribution in microseconds
 *    (bucket i counts observations <= 2^i us), with exact count and
 *    sum, matching Prometheus histogram exposition.
 *
 * Handles returned by counter()/gauge()/histogram() are stable for
 * the registry's lifetime — instruments are created once and never
 * removed — so call sites cache them in function-local statics and
 * the per-observation cost is a relaxed atomic add.
 *
 * Snapshots serialize two ways: toJson() (the `serve
 * --metrics-interval` JSONL dump and the `metrics` op's structured
 * field) and toPrometheusText() (text exposition format, version
 * 0.0.4).  Both are locale-proof (shortestDouble).
 *
 * Metrics are observational only: nothing in this header feeds back
 * into any report, checkpoint, or fingerprint, so all result bytes
 * stay identical whether or not anyone ever snapshots.
 */

#ifndef SNAILQC_OBS_METRICS_HPP
#define SNAILQC_OBS_METRICS_HPP

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace snail
{

/** Monotonic counter with per-thread sharded cells (see file doc). */
class Counter
{
  public:
    static constexpr std::size_t kShards = 16;

    void
    add(unsigned long long n = 1)
    {
        _shards[threadShard()].value.fetch_add(n,
                                               std::memory_order_relaxed);
    }

    unsigned long long
    value() const
    {
        unsigned long long total = 0;
        for (const Shard &shard : _shards) {
            total += shard.value.load(std::memory_order_relaxed);
        }
        return total;
    }

  private:
    struct alignas(64) Shard
    {
        std::atomic<unsigned long long> value{0};
    };

    /** This thread's shard index (assigned round-robin on first use). */
    static std::size_t threadShard();

    Shard _shards[kShards];
};

/** Stored point-in-time value (callback gauges live in the registry). */
class Gauge
{
  public:
    void
    set(double value)
    {
        _value.store(value, std::memory_order_relaxed);
    }

    double
    value() const
    {
        return _value.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> _value{0.0};
};

/** Log2-bucketed microsecond latency histogram. */
class Histogram
{
  public:
    /** Bucket i counts observations with us <= 2^i; 28 -> ~268 s. */
    static constexpr std::size_t kBuckets = 28;

    /** Record one observation of `us` microseconds (clamped >= 0). */
    void observe(double us);

    /** Upper bound (inclusive, us) of bucket `i`: 2^i. */
    static double bucketBound(std::size_t i);

    unsigned long long
    count() const
    {
        return _count.load(std::memory_order_relaxed);
    }

    /** Total of all observations, microseconds. */
    double
    sumUs() const
    {
        // Stored in nanoseconds so the hot path is an integer add.
        return static_cast<double>(
                   _sum_ns.load(std::memory_order_relaxed)) /
               1000.0;
    }

    /** Cumulative count of observations in buckets [0, i]. */
    unsigned long long cumulativeCount(std::size_t i) const;

  private:
    std::atomic<unsigned long long> _buckets[kBuckets]{};
    std::atomic<unsigned long long> _count{0};
    std::atomic<unsigned long long> _sum_ns{0};
};

/** RAII: records the enclosing scope's duration into a Histogram. */
class ScopedLatency
{
  public:
    explicit ScopedLatency(Histogram &histogram)
        : _histogram(histogram),
          _start(std::chrono::steady_clock::now())
    {
    }

    ~ScopedLatency()
    {
        _histogram.observe(
            std::chrono::duration<double, std::micro>(
                std::chrono::steady_clock::now() - _start)
                .count());
    }

    ScopedLatency(const ScopedLatency &) = delete;
    ScopedLatency &operator=(const ScopedLatency &) = delete;

  private:
    Histogram &_histogram;
    const std::chrono::steady_clock::time_point _start;
};

/** One instrument's values at snapshot time. */
struct MetricsSnapshot
{
    struct CounterValue
    {
        std::string name;
        unsigned long long value = 0;
    };
    struct GaugeValue
    {
        std::string name;
        double value = 0.0;
    };
    struct HistogramValue
    {
        std::string name;
        /** Cumulative counts per bucket (Prometheus `le` semantics). */
        std::vector<unsigned long long> cumulative;
        unsigned long long count = 0;
        double sum_us = 0.0;
    };

    std::vector<CounterValue> counters;     //!< sorted by name
    std::vector<GaugeValue> gauges;         //!< sorted by name
    std::vector<HistogramValue> histograms; //!< sorted by name

    /** {"counters":{...},"gauges":{...},"histograms":{...}}. */
    JsonValue toJson() const;

    /** Prometheus text exposition (0.0.4): TYPE lines + samples. */
    std::string toPrometheusText() const;
};

/**
 * Named instrument registry.  Instantiable for tests; production code
 * uses the process-wide global() (a leaked singleton, so callbacks
 * registered by other static-lifetime objects never dangle during
 * shutdown snapshots).
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** The process-wide registry every subsystem publishes into. */
    static MetricsRegistry &global();

    /** Find-or-create; the reference is stable forever (file doc). */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /**
     * Register (or replace) a callback gauge: `fn` is evaluated at
     * every snapshot.  The callback must stay valid for the registry's
     * lifetime or until unregisterGauge(name).
     */
    void registerGauge(const std::string &name,
                       std::function<double()> fn);

    /** Drop a callback gauge (no-op when absent). */
    void unregisterGauge(const std::string &name);

    /** Consistent point-in-time read of every instrument. */
    MetricsSnapshot snapshot() const;

  private:
    mutable std::mutex _mutex;
    std::map<std::string, std::unique_ptr<Counter>> _counters;
    std::map<std::string, std::unique_ptr<Gauge>> _gauges;
    std::map<std::string, std::function<double()>> _callback_gauges;
    std::map<std::string, std::unique_ptr<Histogram>> _histograms;
};

} // namespace snail

#endif // SNAILQC_OBS_METRICS_HPP
