/**
 * @file
 * Span tracer emitting Chrome trace-event / Perfetto-loadable JSON.
 *
 * A Tracer collects begin/end ("B"/"E") duration events into
 * per-thread buffers — each recording thread appends to its own
 * vector, so tracing adds no cross-thread contention to the hot paths
 * it observes — and serializes them as the Trace Event Format object
 * `{"traceEvents":[...]}` that chrome://tracing and ui.perfetto.dev
 * load directly.  Threads are registered on first use, get stable
 * small tids, and are labelled with `thread_name` metadata events;
 * nesting within a thread comes from balanced B/E pairs.
 *
 * The default is a **null sink**: the process-wide active tracer is a
 * single `std::atomic<Tracer *>` initialized to nullptr, and every
 * instrumentation site goes through ScopedSpan, whose constructor
 * loads that pointer once.  With no tracer installed the whole span
 * is one pointer load and branch — cheap enough to leave in the
 * router, scheduler, and cache hot paths permanently (the bench row
 * BM_ObsDisabledSpan guards this).
 *
 * A ScopedSpan captures the tracer at construction and closes against
 * the same tracer, so installing/uninstalling mid-span never produces
 * an unbalanced event stream.  Buffers are bounded
 * (kMaxEventsPerThread); once a thread's buffer fills, new B events
 * are counted as dropped (and their matching E suppressed) so the
 * emitted stream stays balanced.
 *
 * Tracing is observational only: span data never feeds back into any
 * result, report, checkpoint, or fingerprint.
 */

#ifndef SNAILQC_OBS_TRACE_HPP
#define SNAILQC_OBS_TRACE_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace snail
{

/** Collects spans from any number of threads; see file doc. */
class Tracer
{
  public:
    /** Per-thread event cap; beyond it, new spans count as dropped. */
    static constexpr std::size_t kMaxEventsPerThread = 1u << 20;

    Tracer();
    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /** Open a span on the calling thread (B event, timestamped now). */
    void begin(const std::string &name, const char *category);

    /** Close the calling thread's innermost open span (E event). */
    void end();

    /** Total recorded events across all threads (B + E, excl. meta). */
    std::size_t eventCount() const;

    /** Spans discarded because a thread buffer was full. */
    std::size_t droppedCount() const;

    /**
     * Serialize everything recorded so far as a Chrome trace-event
     * JSON object.  Deterministic given the same events: threads sort
     * by tid, events stay in per-thread record order.
     */
    void writeJson(std::ostream &out) const;

  private:
    struct Event
    {
        std::string name; //!< empty for E events (name lives on B)
        const char *category = "";
        char phase = 'B';
        std::uint64_t ts_ns = 0; //!< since tracer construction
    };

    struct ThreadBuffer
    {
        std::uint32_t tid = 0;
        std::vector<Event> events;
        std::vector<std::string> open; //!< names of open spans (stack)
        std::size_t dropped = 0;       //!< spans discarded when full
        std::size_t dropped_depth = 0; //!< open-but-dropped span count
    };

    /** The calling thread's buffer (registered under _mutex once). */
    ThreadBuffer &threadBuffer();

    std::uint64_t nowNs() const;

    const std::uint64_t _id; //!< unique per Tracer; keys the TL cache
    const std::chrono::steady_clock::time_point _epoch;
    mutable std::mutex _mutex; //!< guards _buffers registration/read
    std::vector<std::unique_ptr<ThreadBuffer>> _buffers;
};

/** The process-wide active tracer; nullptr = tracing disabled. */
Tracer *activeTracer();

/** Install (or with nullptr, remove) the process-wide tracer. */
void setActiveTracer(Tracer *tracer);

/**
 * RAII span against the tracer active at construction.  With tracing
 * disabled (the default), constructor and destructor are each a
 * relaxed pointer load and branch.
 */
class ScopedSpan
{
  public:
    ScopedSpan(const std::string &name, const char *category)
        : _tracer(activeTracer())
    {
        if (_tracer != nullptr) {
            _tracer->begin(name, category);
        }
    }

    ScopedSpan(const char *name, const char *category)
        : _tracer(activeTracer())
    {
        if (_tracer != nullptr) {
            _tracer->begin(name, category);
        }
    }

    ~ScopedSpan()
    {
        if (_tracer != nullptr) {
            _tracer->end();
        }
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    Tracer *const _tracer;
};

} // namespace snail

#endif // SNAILQC_OBS_TRACE_HPP
