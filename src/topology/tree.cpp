/**
 * @file
 * Modular 4-ary tree topologies (paper Sec. 4.3, Figs. 7 and 8).
 *
 * Node numbering is breadth-first: level-1 routers are 0..3, their
 * children 4..19, and so on; level l holds 4^l nodes.  In the standard
 * Tree every parent couples all-to-all with its four children (the module
 * SNAIL links all five), and the four level-1 routers couple all-to-all
 * through the central router SNAIL.  In the Round-Robin variant a sibling
 * group still forms a module clique, but its members fan out to the four
 * routers of the parent group, one each, eliminating the single-router
 * bottleneck.
 */

#include "topology/builders.hpp"

#include <sstream>
#include <vector>

#include "common/error.hpp"

namespace snail
{

namespace
{

/** First node index of level l (1-based): 4 + 16 + ... + 4^(l-1). */
int
levelStart(int l)
{
    int start = 0;
    for (int i = 1; i < l; ++i) {
        start += 1 << (2 * i); // 4^i
    }
    return start;
}

int
totalNodes(int levels)
{
    return levelStart(levels + 1);
}

/**
 * Declare the tree's modular structure for the distance oracle:
 * cluster 0 is the router quartet, and every level-2 node heads one
 * cluster holding its whole subtree.  Subtree roots are the only
 * vertices with standard-tree edges leaving the cluster (round-robin
 * uplinks add the level-3 nodes), so the portal sets stay a handful
 * per cluster however deep the tree grows.
 */
void
declareSubtreeClusters(CouplingGraph &g, int levels)
{
    std::vector<int> hint(static_cast<std::size_t>(totalNodes(levels)), 0);
    for (int l = 2; l <= levels; ++l) {
        const int start = levelStart(l);
        const int count = 1 << (2 * l);
        for (int i = 0; i < count; ++i) {
            // The level-2 ancestor's offset within its level.
            const int ancestor = i / (1 << (2 * (l - 2)));
            hint[static_cast<std::size_t>(start + i)] = 1 + ancestor;
        }
    }
    g.setClusterHint(std::move(hint));
}

} // namespace

CouplingGraph
modularTree(int levels)
{
    SNAIL_REQUIRE(levels >= 1 && levels <= 5, "tree levels out of range");
    std::ostringstream name;
    name << "tree-" << totalNodes(levels);
    CouplingGraph g(totalNodes(levels), name.str());

    // Central router SNAIL: level-1 clique.
    for (int a = 0; a < 4; ++a) {
        for (int b = a + 1; b < 4; ++b) {
            g.addEdge(a, b);
        }
    }

    // Each non-leaf node heads a module with its four children: the module
    // SNAIL couples all five members pairwise.
    for (int l = 1; l < levels; ++l) {
        const int start = levelStart(l);
        const int count = 1 << (2 * l);
        const int child_start = levelStart(l + 1);
        for (int i = 0; i < count; ++i) {
            const int parent = start + i;
            std::vector<int> module{parent};
            for (int j = 0; j < 4; ++j) {
                module.push_back(child_start + 4 * i + j);
            }
            for (std::size_t a = 0; a < module.size(); ++a) {
                for (std::size_t b = a + 1; b < module.size(); ++b) {
                    g.addEdge(module[a], module[b]);
                }
            }
        }
    }
    declareSubtreeClusters(g, levels);
    return g;
}

CouplingGraph
modularTreeRoundRobin(int levels)
{
    SNAIL_REQUIRE(levels >= 1 && levels <= 5, "tree levels out of range");
    std::ostringstream name;
    name << "tree-rr-" << totalNodes(levels);
    CouplingGraph g(totalNodes(levels), name.str());

    // Central router SNAIL: level-1 clique.
    for (int a = 0; a < 4; ++a) {
        for (int b = a + 1; b < 4; ++b) {
            g.addEdge(a, b);
        }
    }

    // Children group i at level l+1 forms its own module clique; child j
    // couples to router ((i + j) mod 4) of the parent sibling group, so
    // each parent-group router receives exactly one uplink per module.
    for (int l = 1; l < levels; ++l) {
        const int start = levelStart(l);
        const int count = 1 << (2 * l);
        const int child_start = levelStart(l + 1);
        for (int i = 0; i < count; ++i) {
            // Parent sibling group: the four nodes sharing i's parent
            // module (for level 1 this is the router quartet itself).
            const int group_base = start + (i / 4) * 4;
            std::vector<int> module;
            for (int j = 0; j < 4; ++j) {
                module.push_back(child_start + 4 * i + j);
            }
            for (std::size_t a = 0; a < module.size(); ++a) {
                for (std::size_t b = a + 1; b < module.size(); ++b) {
                    g.addEdge(module[a], module[b]);
                }
            }
            for (int j = 0; j < 4; ++j) {
                g.addEdge(module[static_cast<std::size_t>(j)],
                          group_base + (i + j) % 4);
            }
        }
    }
    declareSubtreeClusters(g, levels);
    return g;
}

} // namespace snail
