/**
 * @file
 * Chiplet-lattice topology: the kiloqubit scaling target (ROADMAP
 * "Kiloqubit targets", paper Sec. 7 outlook).
 *
 * A rows x cols grid of SNAIL chiplets.  Each chiplet is a module of
 * `chiplet_qubits` qubits coupled all-to-all through the chiplet SNAIL
 * (the same idiom as the tree modules and corral posts); four port
 * qubits per chiplet — local indices 0 (west), 1 (north), 2 (east),
 * 3 (south) — carry one inter-chiplet coupling each to the facing
 * port of the neighboring chiplet.  chipletLattice(16, 16, 16) is the
 * 4096-qubit instance the kiloscale-smoke CI job routes.
 *
 * The modular structure is declared as a cluster hint (one cluster
 * per chiplet), so the Auto oracle policy picks the hierarchical
 * oracle above the flat-table threshold: 4 portals per chiplet keep
 * the portal matrix tiny (a few MB where the flat table needs 32 MB
 * at 4096 qubits) and cross-chiplet queries at ~16 portal pairs.
 */

#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "topology/builders.hpp"

namespace snail
{

CouplingGraph
chipletLattice(int rows, int cols, int chiplet_qubits)
{
    SNAIL_REQUIRE(rows > 0 && cols > 0,
                  "chiplet lattice needs positive dimensions");
    SNAIL_REQUIRE(chiplet_qubits >= 4,
                  "a chiplet needs at least 4 qubits (the ports)");
    const long long total = static_cast<long long>(rows) * cols *
                            chiplet_qubits;
    SNAIL_REQUIRE(total <= CouplingGraph::kMaxTabledQubits,
                  "chiplet lattice of " << total
                                        << " qubits exceeds the "
                                        << CouplingGraph::kMaxTabledQubits
                                        << "-qubit distance limit");

    std::ostringstream name;
    name << "chiplet-" << rows << "x" << cols << "x" << chiplet_qubits;
    CouplingGraph g(static_cast<int>(total), name.str());

    const auto base = [&](int r, int c) {
        return (r * cols + c) * chiplet_qubits;
    };
    // Port local indices: west, north, east, south.
    constexpr int kWest = 0, kNorth = 1, kEast = 2, kSouth = 3;
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            const int q0 = base(r, c);
            // Chiplet SNAIL couples every member pairwise.
            for (int a = 0; a < chiplet_qubits; ++a) {
                for (int b = a + 1; b < chiplet_qubits; ++b) {
                    g.addEdge(q0 + a, q0 + b);
                }
            }
            if (c + 1 < cols) {
                g.addEdge(q0 + kEast, base(r, c + 1) + kWest);
            }
            if (r + 1 < rows) {
                g.addEdge(q0 + kSouth, base(r + 1, c) + kNorth);
            }
        }
    }

    std::vector<int> hint(static_cast<std::size_t>(total));
    for (int q = 0; q < static_cast<int>(total); ++q) {
        hint[static_cast<std::size_t>(q)] = q / chiplet_qubits;
    }
    g.setClusterHint(std::move(hint));
    return g;
}

} // namespace snail
