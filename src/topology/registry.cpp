#include "topology/registry.hpp"

#include "common/error.hpp"
#include "topology/builders.hpp"

namespace snail
{

CouplingGraph
namedTopology(const std::string &name)
{
    // --- Table 1 instances (16-20 qubits) ---
    if (name == "heavy-hex-20") {
        // A 20-qubit slice of IBM's published Falcon-27 heavy-hex map.
        CouplingGraph g = ibmFalconHeavyHex().trimToSize(20);
        g.setName(name);
        return g;
    }
    if (name == "ibm-falcon-27") {
        return ibmFalconHeavyHex();
    }
    if (name == "hex-20") {
        CouplingGraph g = hexLattice(4, 5);
        g.setName(name);
        return g;
    }
    if (name == "square-16") {
        CouplingGraph g = squareLattice(4, 4);
        g.setName(name);
        return g;
    }
    if (name == "tree-20") {
        CouplingGraph g = modularTree(2);
        g.setName(name);
        return g;
    }
    if (name == "tree-rr-20") {
        CouplingGraph g = modularTreeRoundRobin(2);
        g.setName(name);
        return g;
    }
    if (name == "corral11-16") {
        CouplingGraph g = corral(8, 1, 1);
        g.setName(name);
        return g;
    }
    if (name == "corral12-16") {
        CouplingGraph g = corral(8, 1, 2);
        g.setName(name);
        return g;
    }
    if (name == "hypercube-16") {
        CouplingGraph g = hypercube(4);
        g.setName(name);
        return g;
    }

    // --- Table 2 instances (84 qubits) ---
    if (name == "heavy-hex-84") {
        // Heavy version of a 5x8 brick-wall hex (91 qubits) trimmed to 84.
        CouplingGraph g = heavyHexLattice(5, 8).trimToSize(84);
        g.setName(name);
        return g;
    }
    if (name == "hex-84") {
        CouplingGraph g = hexLattice(7, 12);
        g.setName(name);
        return g;
    }
    if (name == "square-84") {
        // 7x12 grid: matches Table 2 exactly (Dia 17, AvgC 3.55).
        CouplingGraph g = squareLattice(7, 12);
        g.setName(name);
        return g;
    }
    if (name == "lattice-altdiag-84") {
        // 7x12 grid + checkerboard diagonals: AvgC 5.12 as in Table 2.
        CouplingGraph g = latticeWithAltDiagonals(7, 12);
        g.setName(name);
        return g;
    }
    if (name == "tree-84") {
        CouplingGraph g = modularTree(3);
        g.setName(name);
        return g;
    }
    if (name == "tree-rr-84") {
        CouplingGraph g = modularTreeRoundRobin(3);
        g.setName(name);
        return g;
    }
    if (name == "hypercube-84") {
        // Incomplete 7-cube on ids 0..83: AvgC 6.0, diameter 7 (Table 2).
        CouplingGraph g = incompleteHypercube(84);
        g.setName(name);
        return g;
    }

    // --- Kiloqubit scaling instances (ROADMAP "Kiloqubit targets") ---
    // Not part of the paper tables; named here so the CLI, the
    // kiloscale-smoke CI job, and the benches can route them by name.
    if (name == "chiplet-1024") {
        CouplingGraph g = chipletLattice(8, 8, 16);
        g.setName(name);
        return g;
    }
    if (name == "chiplet-4096") {
        CouplingGraph g = chipletLattice(16, 16, 16);
        g.setName(name);
        return g;
    }

    SNAIL_THROW("unknown topology name: " << name);
}

std::vector<std::string>
topologyNames()
{
    std::vector<std::string> names = table1Names();
    for (const auto &n : table2Names()) {
        names.push_back(n);
    }
    return names;
}

std::vector<std::string>
table1Names()
{
    return {"heavy-hex-20", "hex-20",      "square-16",   "tree-20",
            "tree-rr-20",   "corral11-16", "corral12-16", "hypercube-16"};
}

std::vector<std::string>
table2Names()
{
    return {"heavy-hex-84",       "hex-84",     "square-84",
            "lattice-altdiag-84", "tree-84",    "tree-rr-84",
            "hypercube-84"};
}

} // namespace snail
