/**
 * @file
 * Named paper-sized topology instances (Tables 1 and 2).
 *
 * The registry maps the names used throughout the benches to concrete
 * graphs:
 *
 *   16-20 qubit (Table 1):  heavy-hex-20, hex-20, square-16, tree-20,
 *     tree-rr-20, corral11-16, corral12-16, hypercube-16
 *   84 qubit (Table 2):  heavy-hex-84, hex-84, square-84,
 *     lattice-altdiag-84, tree-84, tree-rr-84, hypercube-84
 */

#ifndef SNAILQC_TOPOLOGY_REGISTRY_HPP
#define SNAILQC_TOPOLOGY_REGISTRY_HPP

#include <string>
#include <vector>

#include "topology/coupling_graph.hpp"

namespace snail
{

/** Build a named paper topology. @throws SnailError for unknown names. */
CouplingGraph namedTopology(const std::string &name);

/** All registered topology names. */
std::vector<std::string> topologyNames();

/** The Table 1 (16-20 qubit) topology names in paper order. */
std::vector<std::string> table1Names();

/** The Table 2 (84 qubit) topology names in paper order. */
std::vector<std::string> table2Names();

} // namespace snail

#endif // SNAILQC_TOPOLOGY_REGISTRY_HPP
