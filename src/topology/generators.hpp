/**
 * @file
 * Introspectable registry of the parametric topology generators.
 *
 * builders.hpp exposes the generator *functions* (corral, modularTree,
 * the lattices, ...); this registry exposes their *parameter spaces*:
 * every generator's name, argument list, and per-argument search
 * bounds, plus a uniform build entry point.  Two consumers:
 *
 *  - sweep specs ({"generator": "corral", "args": [8, 1, 2]}) resolve
 *    through buildGeneratedTopology(), and
 *  - the co-design search (search/mutate.hpp) walks the parameter
 *    boxes — mutation needs to know that corral takes (posts,
 *    stride_a, stride_b) and which deltas stay inside the box.
 *
 * The bounds are the *search box*, not the validity predicate: the
 * builder functions remain the source of truth (corral additionally
 * requires stride < posts, heavy-hex rejects 1-row grids, ...) and
 * still throw SnailError on bad arguments.  Callers probing the box
 * must treat a builder throw as "outside the space".
 */

#ifndef SNAILQC_TOPOLOGY_GENERATORS_HPP
#define SNAILQC_TOPOLOGY_GENERATORS_HPP

#include <string>
#include <vector>

#include "topology/coupling_graph.hpp"

namespace snail
{

/** One generator argument: display name plus its search bounds. */
struct GeneratorParam
{
    const char *name; //!< e.g. "posts", "rows", "levels"
    int min = 1;      //!< smallest value the search may propose
    int max = 1;      //!< largest value the search may propose
};

/** One parametric generator: name, arguments, build function. */
struct GeneratorInfo
{
    std::string name;
    std::vector<GeneratorParam> params;
    CouplingGraph (*build)(const std::vector<int> &args);
    const char *summary;
};

/** Every registered generator, in stable registration order. */
const std::vector<GeneratorInfo> &topologyGenerators();

/** Registry lookup; nullptr when `name` is unknown. */
const GeneratorInfo *findGenerator(const std::string &name);

/** Registered generator names, in registration order. */
std::vector<std::string> generatorNames();

/**
 * Build `name` with `args` and label the graph "name(a,b,...)" — the
 * canonical display form shared by sweep targets and search
 * candidates.
 * @throws SnailError for unknown generators, wrong arity, or
 *         arguments the underlying builder rejects.
 */
CouplingGraph buildGeneratedTopology(const std::string &name,
                                     const std::vector<int> &args);

} // namespace snail

#endif // SNAILQC_TOPOLOGY_GENERATORS_HPP
