/**
 * @file
 * Pluggable hop-distance oracles for CouplingGraph (ROADMAP "Kiloqubit
 * targets").
 *
 * The flat all-pairs uint16 table is perfect at paper scale (an
 * 84-qubit table is ~14 KB) and hopeless at chiplet scale (a
 * 4096-qubit table is 32 MB; 16384 qubits would be 512 MB).  The
 * paper's modular SNAIL architectures are explicitly built from small
 * densely-coupled modules with sparse inter-module links, so their
 * distance structure compresses: store exact distances *between module
 * boundary qubits* plus each qubit's distances to its own module's
 * boundary, and reconstruct any pair on demand.
 *
 * Three oracles, all EXACT (bit-identical routed output is the
 * contract — the fingerprint matrix and compare_bench counters gate
 * it):
 *
 *  - FlatTableOracle: the historical row-major n^2 table, default
 *    below kFlatOracleMaxQubits.  CouplingGraph keeps an inline
 *    raw-pointer fast path to it so router hot loops are unchanged.
 *  - HierarchicalOracle: cluster/portal decomposition.  For ANY
 *    partition of the vertices into clusters, let P(c) be cluster c's
 *    portals (vertices with an edge leaving c).  Then for u, v in
 *    different clusters
 *
 *        d(u,v) = min over b in P(cl(u)), b' in P(cl(v)) of
 *                 d(u,b) + d(b,b') + d(b',v)
 *
 *    with every term a full-graph distance, and for u, v in the same
 *    cluster the same minimum additionally compared against the
 *    BFS distance restricted to the cluster.  This is exact for any
 *    partition (a shortest path that leaves a cluster crosses a
 *    portal of that cluster; prefixes/suffixes of shortest paths are
 *    shortest paths), so the partition only affects memory and query
 *    latency, never results.  Stored: the portal-portal matrix, each
 *    vertex's distances to its own cluster's portals, and per-cluster
 *    restricted tables — a few MB where the flat table needs tens.
 *  - LandmarkOracle: fallback when no useful modular decomposition
 *    exists (hypercubes: every vertex is a boundary vertex).  Exact
 *    per-query bidirectional BFS with memoized frontiers: full BFS
 *    rows are cached for frequently-queried sources (bounded cache),
 *    so repeated hot-loop queries amortize to row lookups.  Queries
 *    mutate the memo under a mutex — safe but contended from parallel
 *    stochastic trials; prefer declared clusters where possible.
 *
 * Generators declare their modular structure via
 * CouplingGraph::setClusterHint() (chiplet lattices: the chiplet;
 * trees: the module; corrals: ring arcs; grids: tiles), and
 * buildDistanceOracle() picks per the policy below.  The environment
 * variable SNAILQC_DISTANCE_ORACLE=auto|flat|hier|landmark overrides
 * every policy — CI's kiloscale-smoke uses it to prove the flat table
 * busts the RSS cap the hierarchical oracle fits under.
 */

#ifndef SNAILQC_TOPOLOGY_DISTANCE_ORACLE_HPP
#define SNAILQC_TOPOLOGY_DISTANCE_ORACLE_HPP

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace snail
{

class CouplingGraph;

/** Sentinel for "no path" in every oracle's raw-distance answers. */
constexpr std::uint16_t kDistUnreachable = 0xFFFF;

/**
 * Largest graph whose Auto policy resolves to the flat table: a
 * 1024-qubit table is 2 MB — cheap — and everything the paper tables
 * study (<= 84 qubits) stays on the historical fast path.
 */
constexpr int kFlatOracleMaxQubits = 1024;

/** What a built oracle is. */
enum class DistanceOracleKind : int
{
    Flat,
    Hierarchical,
    Landmark,
};

/** What the caller asked for (Auto resolves per graph structure). */
enum class DistanceOraclePolicy : int
{
    Auto,
    Flat,
    Hierarchical,
    Landmark,
};

const char *toString(DistanceOracleKind kind);
const char *toString(DistanceOraclePolicy policy);

/** Bytes of the flat n^2 uint16 table for an n-qubit graph. */
constexpr std::size_t
flatTableBytes(int num_qubits)
{
    return static_cast<std::size_t>(num_qubits) *
           static_cast<std::size_t>(num_qubits) * sizeof(std::uint16_t);
}

/**
 * Exact hop-distance oracle over a fixed graph snapshot.  Instances
 * are immutable from the caller's view and shared copy-on-write
 * across CouplingGraph copies; CouplingGraph::addEdge() drops its
 * reference instead of mutating (co-owners keep consistent answers).
 */
class DistanceOracle
{
  public:
    virtual ~DistanceOracle() = default;

    virtual DistanceOracleKind kind() const = 0;

    /**
     * Hop distance, or kDistUnreachable when no path exists.  Never
     * throws on disconnection — CouplingGraph::distance() owns the
     * typed DisconnectedError contract.  Thread-safe after build
     * (LandmarkOracle serializes its memo internally).
     */
    virtual int distanceRaw(int a, int b) const = 0;

    /**
     * Bytes of distance structure held right now (the flat table, the
     * portal matrices, or the landmark adjacency + memoized rows).
     * Exported as the snailqc_distance_oracle_bytes gauge and printed
     * by `snailqc targets --stats`.
     */
    virtual std::size_t memoryBytes() const = 0;

    /**
     * Raw pointer to the row-major n^2 table when this oracle is
     * flat, nullptr otherwise.  CouplingGraph caches it so the inline
     * distance() fast path stays one bounds-checked array read.
     */
    virtual const std::uint16_t *flatData() const { return nullptr; }
};

/**
 * Build the oracle for `graph` under `policy` (after applying the
 * SNAILQC_DISTANCE_ORACLE override).  Auto resolves to: flat at or
 * below kFlatOracleMaxQubits; hierarchical when the graph declares a
 * cluster hint, or when an auto-grown partition compresses to under a
 * quarter of the flat table; landmark otherwise.  Also refreshes the
 * snailqc_distance_oracle_bytes gauge.
 *
 * @throws DistanceOverflowError for graphs above
 *         CouplingGraph::kMaxTabledQubits — every oracle stores
 *         distances as uint16, so the historical guard is
 *         oracle-independent.
 * @throws SnailError for an unparseable SNAILQC_DISTANCE_ORACLE value.
 */
std::shared_ptr<const DistanceOracle>
buildDistanceOracle(const CouplingGraph &graph, DistanceOraclePolicy policy);

} // namespace snail

#endif // SNAILQC_TOPOLOGY_DISTANCE_ORACLE_HPP
