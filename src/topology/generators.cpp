#include "topology/generators.hpp"

#include "common/error.hpp"
#include "topology/builders.hpp"

namespace snail
{

namespace
{

/**
 * The search bounds cap sizes well below the builders' own guards
 * (hypercube accepts 16 dimensions = 65536 qubits; the distance table
 * guard is 65535): a co-design walk proposing multi-thousand-qubit
 * machines would spend its whole budget routing one candidate.  The
 * boxes below cover everything the paper studies (Tables 1-2 top out
 * at 84 qubits) with generous headroom.
 */
const std::vector<GeneratorInfo> &
registry()
{
    static const std::vector<GeneratorInfo> generators = {
        {"square",
         {{"rows", 1, 64}, {"cols", 1, 64}},
         [](const std::vector<int> &a) {
             return squareLattice(a[0], a[1]);
         },
         "rows x cols nearest-neighbor grid"},
        {"lattice-altdiag",
         {{"rows", 1, 64}, {"cols", 1, 64}},
         [](const std::vector<int> &a) {
             return latticeWithAltDiagonals(a[0], a[1]);
         },
         "square lattice + diagonals on alternating tiles"},
        {"hex",
         {{"rows", 1, 64}, {"cols", 1, 64}},
         [](const std::vector<int> &a) { return hexLattice(a[0], a[1]); },
         "honeycomb (brick-wall) lattice"},
        {"heavy-hex",
         {{"rows", 2, 48}, {"cols", 2, 48}},
         [](const std::vector<int> &a) {
             return heavyHexLattice(a[0], a[1]);
         },
         "hex lattice with a qubit on every coupling"},
        {"hypercube",
         {{"dimensions", 1, 12}},
         [](const std::vector<int> &a) { return hypercube(a[0]); },
         "complete binary hypercube on 2^d nodes"},
        {"incomplete-hypercube",
         {{"qubits", 2, 4096}},
         [](const std::vector<int> &a) {
             return incompleteHypercube(a[0]);
         },
         "first n vertices of the enclosing hypercube"},
        {"tree",
         {{"levels", 1, 5}},
         [](const std::vector<int> &a) { return modularTree(a[0]); },
         "modular 4-ary SNAIL tree"},
        {"tree-rr",
         {{"levels", 1, 5}},
         [](const std::vector<int> &a) {
             return modularTreeRoundRobin(a[0]);
         },
         "round-robin modular 4-ary SNAIL tree"},
        {"corral",
         {{"posts", 3, 512}, {"stride_a", 1, 31}, {"stride_b", 1, 31}},
         [](const std::vector<int> &a) {
             return corral(a[0], a[1], a[2]);
         },
         "SNAIL fence-post ring with two qubit fences"},
        {"chiplet-lattice",
         {{"rows", 1, 16}, {"cols", 1, 16}, {"chiplet_qubits", 4, 32}},
         [](const std::vector<int> &a) {
             return chipletLattice(a[0], a[1], a[2]);
         },
         "grid of all-to-all SNAIL chiplets with 4 port qubits each"},
    };
    return generators;
}

} // namespace

const std::vector<GeneratorInfo> &
topologyGenerators()
{
    return registry();
}

const GeneratorInfo *
findGenerator(const std::string &name)
{
    for (const GeneratorInfo &info : registry()) {
        if (info.name == name) {
            return &info;
        }
    }
    return nullptr;
}

std::vector<std::string>
generatorNames()
{
    std::vector<std::string> names;
    names.reserve(registry().size());
    for (const GeneratorInfo &info : registry()) {
        names.push_back(info.name);
    }
    return names;
}

CouplingGraph
buildGeneratedTopology(const std::string &name,
                       const std::vector<int> &args)
{
    const GeneratorInfo *info = findGenerator(name);
    if (info == nullptr) {
        std::string known;
        for (const GeneratorInfo &g : registry()) {
            known += known.empty() ? g.name : ", " + g.name;
        }
        SNAIL_THROW("unknown topology generator '" << name << "' (known: "
                                                   << known << ")");
    }
    SNAIL_REQUIRE(args.size() == info->params.size(),
                  "generator '" << name << "' takes "
                                << info->params.size() << " args, got "
                                << args.size());
    CouplingGraph graph = info->build(args);
    std::string label = name + "(";
    for (std::size_t i = 0; i < args.size(); ++i) {
        label += (i ? "," : "") + std::to_string(args[i]);
    }
    graph.setName(label + ")");
    return graph;
}

} // namespace snail
