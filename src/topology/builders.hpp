/**
 * @file
 * Parametric topology generators (paper Secs. 2.4.4 and 4.3).
 *
 * Baseline lattices (Square, Hex, Heavy-Hex, Lattice+AltDiagonals), the
 * hypercube family, and the SNAIL-enabled modular topologies (4-ary Tree,
 * Round-Robin Tree, and Corral).  Named paper-sized instances live in
 * topology/registry.hpp.
 */

#ifndef SNAILQC_TOPOLOGY_BUILDERS_HPP
#define SNAILQC_TOPOLOGY_BUILDERS_HPP

#include "topology/coupling_graph.hpp"

namespace snail
{

/** rows x cols grid with nearest-neighbor couplings. */
CouplingGraph squareLattice(int rows, int cols);

/**
 * Square lattice plus both diagonals on alternating (checkerboard) tiles —
 * IBM's early "Penguin" connectivity (paper Fig. 2c).
 */
CouplingGraph latticeWithAltDiagonals(int rows, int cols);

/**
 * Honeycomb lattice in brick-wall coordinates: all horizontal couplings,
 * vertical couplings where (row + col) is even (paper Fig. 2d).
 */
CouplingGraph hexLattice(int rows, int cols);

/**
 * Heavy-hex lattice: the hex lattice with an extra qubit inserted on every
 * coupling (qubits live on vertices and edges, paper Fig. 2b).
 */
CouplingGraph heavyHexLattice(int rows, int cols);

/**
 * IBM Falcon 27-qubit heavy-hex coupling map (the published
 * ibmq_montreal/mumbai layout) — the real-hardware reference for the
 * heavy-hex family.
 */
CouplingGraph ibmFalconHeavyHex();

/** Complete binary hypercube on 2^dimensions nodes (paper Fig. 3). */
CouplingGraph hypercube(int dimensions);

/**
 * Incomplete hypercube on exactly num_qubits nodes: vertices 0..n-1 of the
 * enclosing 2^ceil(log2 n) cube, edges between ids differing in one bit.
 * For n = 84 this reproduces Table 2 exactly (AvgC 6.0, diameter 7).
 */
CouplingGraph incompleteHypercube(int num_qubits);

/**
 * Modular 4-ary tree of SNAIL modules (paper Figs. 7a, 8).  Level 1 is the
 * four router qubits W1..W4 fully coupled through the central SNAIL; every
 * node above the last level heads a module of four children, coupled
 * all-to-all with its children through the module SNAIL.
 * Total qubits: 4 + 16 + ... + 4^levels.
 */
CouplingGraph modularTree(int levels);

/**
 * Round-robin 4-ary tree (paper Fig. 7b): children of a sibling group form
 * a module clique among themselves and couple round-robin across the four
 * routers of the parent group, removing the single-router bottleneck.
 */
CouplingGraph modularTreeRoundRobin(int levels);

/**
 * Corral of SNAIL fence posts (paper Fig. 9): `posts` SNAILs in a ring and
 * two fences of qubits; fence-A qubit i spans posts (i, i+stride_a), fence-B
 * qubit i spans posts (i, i+stride_b).  Qubits sharing a post are coupled
 * (through that post's SNAIL).  Corral(8,1,1) and Corral(8,1,2) are the
 * paper's 16-qubit Corral_{1,1} and Corral_{1,2}.
 */
CouplingGraph corral(int posts, int stride_a, int stride_b);

/**
 * rows x cols grid of SNAIL chiplets, `chiplet_qubits` qubits each
 * coupled all-to-all through the chiplet SNAIL; four port qubits per
 * chiplet link to the facing ports of grid neighbors.  The kiloqubit
 * scaling target: declares one distance-oracle cluster per chiplet,
 * so routing a 4096-qubit instance needs megabytes, not the flat
 * table's 32 MB (see topology/distance_oracle.hpp).
 */
CouplingGraph chipletLattice(int rows, int cols, int chiplet_qubits);

} // namespace snail

#endif // SNAILQC_TOPOLOGY_BUILDERS_HPP
