/**
 * @file
 * Lattice-family generators: square, alternating-diagonal, hex (brick
 * wall), and heavy-hex.
 */

#include "topology/builders.hpp"

#include <sstream>

#include "common/error.hpp"

namespace snail
{

namespace
{

int
gridIndex(int r, int c, int cols)
{
    return r * cols + c;
}

/**
 * Declare 16x16 grid tiles as distance-oracle clusters.  Lattices are
 * not modular hardware, but tiles still compress their distance
 * structure: only the tile perimeter is a portal, so a kiloqubit grid
 * stores portal matrices instead of the flat n^2 table.
 */
void
declareTileClusters(CouplingGraph &g, int rows, int cols)
{
    constexpr int kTile = 16;
    const int tiles_per_row = (cols + kTile - 1) / kTile;
    std::vector<int> hint(static_cast<std::size_t>(rows) *
                          static_cast<std::size_t>(cols));
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            hint[static_cast<std::size_t>(gridIndex(r, c, cols))] =
                (r / kTile) * tiles_per_row + c / kTile;
        }
    }
    g.setClusterHint(std::move(hint));
}

} // namespace

CouplingGraph
squareLattice(int rows, int cols)
{
    SNAIL_REQUIRE(rows > 0 && cols > 0, "lattice needs positive dimensions");
    std::ostringstream name;
    name << "square-" << rows << "x" << cols;
    CouplingGraph g(rows * cols, name.str());
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            if (c + 1 < cols) {
                g.addEdge(gridIndex(r, c, cols), gridIndex(r, c + 1, cols));
            }
            if (r + 1 < rows) {
                g.addEdge(gridIndex(r, c, cols), gridIndex(r + 1, c, cols));
            }
        }
    }
    declareTileClusters(g, rows, cols);
    return g;
}

CouplingGraph
latticeWithAltDiagonals(int rows, int cols)
{
    SNAIL_REQUIRE(rows > 1 && cols > 1,
                  "diagonal lattice needs at least 2x2");
    CouplingGraph g = squareLattice(rows, cols);
    std::ostringstream name;
    name << "lattice-altdiag-" << rows << "x" << cols;
    g.setName(name.str());
    // Both diagonals on checkerboard-alternating tiles.
    for (int r = 0; r + 1 < rows; ++r) {
        for (int c = 0; c + 1 < cols; ++c) {
            if ((r + c) % 2 == 0) {
                g.addEdge(gridIndex(r, c, cols),
                          gridIndex(r + 1, c + 1, cols));
                g.addEdge(gridIndex(r, c + 1, cols),
                          gridIndex(r + 1, c, cols));
            }
        }
    }
    return g;
}

CouplingGraph
hexLattice(int rows, int cols)
{
    SNAIL_REQUIRE(rows > 0 && cols > 0, "lattice needs positive dimensions");
    std::ostringstream name;
    name << "hex-" << rows << "x" << cols;
    CouplingGraph g(rows * cols, name.str());
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            if (c + 1 < cols) {
                g.addEdge(gridIndex(r, c, cols), gridIndex(r, c + 1, cols));
            }
            // Brick-wall verticals: alternate columns per row so every
            // vertex has degree at most 3 (honeycomb).
            if (r + 1 < rows && (r + c) % 2 == 0) {
                g.addEdge(gridIndex(r, c, cols), gridIndex(r + 1, c, cols));
            }
        }
    }
    declareTileClusters(g, rows, cols);
    return g;
}

CouplingGraph
ibmFalconHeavyHex()
{
    CouplingGraph g(27, "ibm-falcon-27");
    static const int kEdges[][2] = {
        {0, 1},   {1, 2},   {2, 3},   {3, 5},   {1, 4},   {4, 7},
        {5, 8},   {6, 7},   {7, 10},  {8, 9},   {8, 11},  {10, 12},
        {11, 14}, {12, 13}, {12, 15}, {13, 14}, {14, 16}, {15, 18},
        {16, 19}, {17, 18}, {18, 21}, {19, 20}, {19, 22}, {21, 23},
        {22, 25}, {23, 24}, {24, 25}, {25, 26}};
    for (const auto &e : kEdges) {
        g.addEdge(e[0], e[1]);
    }
    return g;
}

CouplingGraph
heavyHexLattice(int rows, int cols)
{
    // Build the hex skeleton, then subdivide every edge with a "heavy"
    // qubit, which is how IBM's heavy-hex places qubits on both vertices
    // and couplings.
    const CouplingGraph hex = hexLattice(rows, cols);
    const auto skeleton_edges = hex.edges();
    const int n_vertices = hex.numQubits();
    const int n_total = n_vertices + static_cast<int>(skeleton_edges.size());

    std::ostringstream name;
    name << "heavy-hex-" << rows << "x" << cols;
    CouplingGraph g(n_total, name.str());
    std::vector<int> hint(static_cast<std::size_t>(n_total));
    const auto &skeleton_hint = *hex.clusterHint();
    for (int v = 0; v < n_vertices; ++v) {
        hint[static_cast<std::size_t>(v)] =
            skeleton_hint[static_cast<std::size_t>(v)];
    }
    int next = n_vertices;
    for (const auto &[a, b] : skeleton_edges) {
        g.addEdge(a, next);
        g.addEdge(next, b);
        // The inserted "heavy" qubit joins one endpoint's tile.
        hint[static_cast<std::size_t>(next)] =
            skeleton_hint[static_cast<std::size_t>(a)];
        ++next;
    }
    g.setClusterHint(std::move(hint));
    return g;
}

} // namespace snail
