/**
 * @file
 * Corral topologies (paper Sec. 4.3, Fig. 9).
 *
 * A Corral is a ring of SNAIL "fence posts" with two levels of qubit
 * "fences".  Fence-A qubit i spans posts (i, i + stride_a); fence-B qubit
 * i spans posts (i, i + stride_b), indices mod the post count.  Every
 * qubit couples, through the SNAIL at each post it touches, to every
 * other qubit touching that post.  Corral(8,1,1) groups four qubits
 * all-to-all at each post; Corral(8,1,2) stretches the second fence to
 * the second-nearest post, cutting the average distance (Table 1).
 */

#include "topology/builders.hpp"

#include <sstream>
#include <vector>

#include "common/error.hpp"

namespace snail
{

CouplingGraph
corral(int posts, int stride_a, int stride_b)
{
    SNAIL_REQUIRE(posts >= 3, "corral needs at least 3 posts");
    SNAIL_REQUIRE(stride_a >= 1 && stride_a < posts && stride_b >= 1 &&
                      stride_b < posts,
                  "corral strides must be in [1, posts)");
    const int n = 2 * posts;
    std::ostringstream name;
    name << "corral" << stride_a << "," << stride_b << "-" << n;
    CouplingGraph g(n, name.str());

    // Qubit ids: fence A = 0..posts-1, fence B = posts..2*posts-1.
    // posts_of[q] = the two posts the qubit couples to.
    std::vector<std::vector<int>> at_post(static_cast<std::size_t>(posts));
    for (int i = 0; i < posts; ++i) {
        at_post[static_cast<std::size_t>(i)].push_back(i);
        at_post[static_cast<std::size_t>((i + stride_a) % posts)].push_back(i);
        at_post[static_cast<std::size_t>(i)].push_back(posts + i);
        at_post[static_cast<std::size_t>((i + stride_b) % posts)]
            .push_back(posts + i);
    }
    for (const auto &members : at_post) {
        for (std::size_t a = 0; a < members.size(); ++a) {
            for (std::size_t b = a + 1; b < members.size(); ++b) {
                if (members[a] != members[b]) {
                    g.addEdge(members[a], members[b]);
                }
            }
        }
    }

    // Modular structure for the distance oracle: contiguous ring arcs
    // of 8 posts (both fences of a post share its arc).  Only qubits
    // whose span crosses an arc boundary become portals, so portal
    // counts scale with the strides, not the ring size.
    constexpr int kArcPosts = 8;
    std::vector<int> hint(static_cast<std::size_t>(n));
    for (int i = 0; i < posts; ++i) {
        hint[static_cast<std::size_t>(i)] = i / kArcPosts;
        hint[static_cast<std::size_t>(posts + i)] = i / kArcPosts;
    }
    g.setClusterHint(std::move(hint));
    return g;
}

} // namespace snail
