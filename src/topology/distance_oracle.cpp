/**
 * @file
 * The three exact distance oracles and the selection policy (see
 * distance_oracle.hpp for the scheme and the exactness argument).
 */

#include "topology/distance_oracle.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <unordered_map>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "topology/coupling_graph.hpp"

namespace snail
{

namespace
{

/**
 * Flattened (CSR) adjacency snapshot.  Oracles keep their own copy so
 * a shared oracle stays valid however the originating graph is copied
 * or later mutated (addEdge() drops the graph's reference; co-owners
 * keep answering from the snapshot their graph still matches).
 */
struct CsrAdjacency
{
    std::vector<std::int32_t> offsets; //!< n + 1
    std::vector<std::int32_t> targets; //!< 2 * edges

    explicit CsrAdjacency(const CouplingGraph &graph)
    {
        const int n = graph.numQubits();
        offsets.reserve(static_cast<std::size_t>(n) + 1);
        offsets.push_back(0);
        for (int q = 0; q < n; ++q) {
            const auto &adj = graph.neighbors(q);
            targets.insert(targets.end(), adj.begin(), adj.end());
            offsets.push_back(static_cast<std::int32_t>(targets.size()));
        }
    }

    int numVertices() const
    {
        return static_cast<int>(offsets.size()) - 1;
    }

    std::size_t
    bytes() const
    {
        return offsets.size() * sizeof(std::int32_t) +
               targets.size() * sizeof(std::int32_t);
    }
};

/** Full-graph BFS from src into `row` (size n, kDistUnreachable-filled). */
void
bfsRow(const CsrAdjacency &csr, int src, std::uint16_t *row,
       std::vector<std::int32_t> &queue)
{
    const int n = csr.numVertices();
    std::fill(row, row + n, kDistUnreachable);
    row[src] = 0;
    queue.assign(1, src);
    for (std::size_t head = 0; head < queue.size(); ++head) {
        const std::int32_t cur = queue[head];
        const std::uint16_t next =
            static_cast<std::uint16_t>(row[cur] + 1);
        for (std::int32_t at = csr.offsets[cur]; at < csr.offsets[cur + 1];
             ++at) {
            const std::int32_t nb = csr.targets[at];
            if (row[nb] == kDistUnreachable) {
                row[nb] = next;
                queue.push_back(nb);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// FlatTableOracle
// ---------------------------------------------------------------------------

/** The historical row-major n^2 table (BFS per vertex). */
class FlatTableOracle final : public DistanceOracle
{
  public:
    explicit FlatTableOracle(const CouplingGraph &graph)
        : _n(graph.numQubits())
    {
        const CsrAdjacency csr(graph);
        const auto n = static_cast<std::size_t>(_n);
        _table.assign(n * n, kDistUnreachable);
        std::vector<std::int32_t> queue;
        queue.reserve(n);
        for (int src = 0; src < _n; ++src) {
            bfsRow(csr, src, _table.data() + static_cast<std::size_t>(src) * n,
                   queue);
        }
    }

    DistanceOracleKind kind() const override
    {
        return DistanceOracleKind::Flat;
    }

    int
    distanceRaw(int a, int b) const override
    {
        return _table[static_cast<std::size_t>(a) *
                          static_cast<std::size_t>(_n) +
                      static_cast<std::size_t>(b)];
    }

    std::size_t
    memoryBytes() const override
    {
        return _table.size() * sizeof(std::uint16_t);
    }

    const std::uint16_t *flatData() const override { return _table.data(); }

  private:
    int _n;
    std::vector<std::uint16_t> _table;
};

// ---------------------------------------------------------------------------
// Partitioning
// ---------------------------------------------------------------------------

/** A vertex partition compacted to dense cluster ids 0..C-1. */
struct Partition
{
    std::vector<std::int32_t> clusterOf; //!< n, dense ids
    int numClusters = 0;
};

/** Compact arbitrary non-negative hint ids to 0..C-1 (id-order). */
Partition
compactHint(const std::vector<int> &hint)
{
    Partition part;
    part.clusterOf.reserve(hint.size());
    std::unordered_map<int, std::int32_t> remap;
    for (int id : hint) {
        SNAIL_REQUIRE(id >= 0, "cluster hint ids must be non-negative");
        auto [it, inserted] =
            remap.emplace(id, static_cast<std::int32_t>(remap.size()));
        part.clusterOf.push_back(it->second);
        (void)inserted;
    }
    part.numClusters = static_cast<int>(remap.size());
    return part;
}

/**
 * Deterministic BFS-grown partition for graphs without a hint: repeat
 * "seed at the lowest-id unassigned vertex, grow a BFS blob of up to
 * `target` vertices over unassigned neighbors".  On modular graphs
 * blobs track modules; on expanders the blobs have huge boundaries
 * and the memory estimate rejects the result (landmark fallback).
 */
Partition
growPartition(const CsrAdjacency &csr, int target)
{
    const int n = csr.numVertices();
    Partition part;
    part.clusterOf.assign(static_cast<std::size_t>(n), -1);
    std::vector<std::int32_t> queue;
    for (int seed = 0; seed < n; ++seed) {
        if (part.clusterOf[static_cast<std::size_t>(seed)] >= 0) {
            continue;
        }
        const std::int32_t cluster = part.numClusters++;
        part.clusterOf[static_cast<std::size_t>(seed)] = cluster;
        queue.assign(1, seed);
        int taken = 1;
        for (std::size_t head = 0; head < queue.size() && taken < target;
             ++head) {
            const std::int32_t cur = queue[head];
            for (std::int32_t at = csr.offsets[cur];
                 at < csr.offsets[cur + 1] && taken < target; ++at) {
                const std::int32_t nb = csr.targets[at];
                if (part.clusterOf[static_cast<std::size_t>(nb)] < 0) {
                    part.clusterOf[static_cast<std::size_t>(nb)] = cluster;
                    queue.push_back(nb);
                    ++taken;
                }
            }
        }
    }
    return part;
}

// ---------------------------------------------------------------------------
// HierarchicalOracle
// ---------------------------------------------------------------------------

/**
 * Cluster/portal decomposition (header doc has the formula and the
 * exactness argument).  All arrays are immutable after the
 * constructor, so queries are lock-free and thread-safe.
 */
class HierarchicalOracle final : public DistanceOracle
{
  public:
    HierarchicalOracle(const CouplingGraph &graph, Partition part)
        : _n(graph.numQubits()), _clusterOf(std::move(part.clusterOf))
    {
        const CsrAdjacency csr(graph);
        const int clusters = part.numClusters;
        const auto n = static_cast<std::size_t>(_n);
        const auto num_clusters = static_cast<std::size_t>(clusters);

        // Local index + member lists, in vertex-id order (deterministic).
        _localIndex.assign(n, 0);
        _clusterSize.assign(num_clusters, 0);
        for (std::size_t v = 0; v < n; ++v) {
            auto &size = _clusterSize[static_cast<std::size_t>(_clusterOf[v])];
            _localIndex[v] = size;
            ++size;
        }
        std::vector<std::vector<std::int32_t>> members(num_clusters);
        for (std::size_t c = 0; c < num_clusters; ++c) {
            members[c].reserve(
                static_cast<std::size_t>(_clusterSize[c]));
        }
        for (std::size_t v = 0; v < n; ++v) {
            members[static_cast<std::size_t>(_clusterOf[v])].push_back(
                static_cast<std::int32_t>(v));
        }

        // Portals: a vertex with an edge leaving its cluster.  Global
        // portal ids in vertex order; per-cluster lists of global ids.
        std::vector<std::int32_t> portal_of_vertex(n, -1);
        std::vector<std::int32_t> portal_vertices;
        _portalStart.assign(num_clusters + 1, 0);
        for (std::size_t v = 0; v < n; ++v) {
            for (std::int32_t at = csr.offsets[v]; at < csr.offsets[v + 1];
                 ++at) {
                if (_clusterOf[static_cast<std::size_t>(csr.targets[at])] !=
                    _clusterOf[v]) {
                    portal_of_vertex[v] =
                        static_cast<std::int32_t>(portal_vertices.size());
                    portal_vertices.push_back(static_cast<std::int32_t>(v));
                    break;
                }
            }
        }
        const auto num_portals = portal_vertices.size();
        for (std::int32_t p : portal_vertices) {
            ++_portalStart[static_cast<std::size_t>(_clusterOf[p]) + 1];
        }
        for (std::size_t c = 0; c < num_clusters; ++c) {
            _portalStart[c + 1] += _portalStart[c];
        }
        // Clusters need not be contiguous vertex ranges (grown
        // partitions interleave), so a portal's slot within its
        // cluster's list must be recorded explicitly — it is NOT
        // `i - _portalStart[c]` in general.
        _portalIds.assign(num_portals, 0);
        std::vector<std::int32_t> portal_slot(num_portals, 0);
        {
            std::vector<std::int32_t> fill(_portalStart.begin(),
                                           _portalStart.end() - 1);
            for (std::size_t i = 0; i < num_portals; ++i) {
                const auto c = static_cast<std::size_t>(
                    _clusterOf[static_cast<std::size_t>(portal_vertices[i])]);
                portal_slot[i] = fill[c] - _portalStart[c];
                _portalIds[static_cast<std::size_t>(fill[c]++)] =
                    static_cast<std::int32_t>(i);
            }
        }
        _numPortals = static_cast<std::int32_t>(num_portals);

        // Block offsets: per-cluster local-distance and intra tables.
        _localBlock.assign(num_clusters + 1, 0);
        _intraBlock.assign(num_clusters + 1, 0);
        for (std::size_t c = 0; c < num_clusters; ++c) {
            const auto size = static_cast<std::int64_t>(_clusterSize[c]);
            const std::int64_t portals =
                _portalStart[c + 1] - _portalStart[c];
            _localBlock[c + 1] = _localBlock[c] + size * portals;
            _intraBlock[c + 1] = _intraBlock[c] + size * size;
        }
        _local.assign(static_cast<std::size_t>(_localBlock.back()),
                      kDistUnreachable);
        _intra.assign(static_cast<std::size_t>(_intraBlock.back()),
                      kDistUnreachable);
        _pp.assign(num_portals * num_portals, kDistUnreachable);

        // One full-graph BFS per portal fills its portal-portal row and
        // the own-cluster local distances (full-graph distances both —
        // that is what the exactness argument needs).
        std::vector<std::uint16_t> row(n);
        std::vector<std::int32_t> queue;
        queue.reserve(n);
        for (std::size_t i = 0; i < num_portals; ++i) {
            const std::int32_t src = portal_vertices[i];
            bfsRow(csr, src, row.data(), queue);
            std::uint16_t *pp_row = _pp.data() + i * num_portals;
            for (std::size_t j = 0; j < num_portals; ++j) {
                pp_row[j] = row[static_cast<std::size_t>(portal_vertices[j])];
            }
            const auto c =
                static_cast<std::size_t>(_clusterOf[static_cast<std::size_t>(src)]);
            const std::int64_t portals = _portalStart[c + 1] - _portalStart[c];
            const std::int64_t slot = portal_slot[i];
            for (const std::int32_t v : members[c]) {
                _local[static_cast<std::size_t>(
                    _localBlock[c] +
                    static_cast<std::int64_t>(
                        _localIndex[static_cast<std::size_t>(v)]) *
                        portals +
                    slot)] = row[static_cast<std::size_t>(v)];
            }
        }

        // Per-cluster BFS restricted to the cluster's vertices: the
        // "path never leaves" arm of the same-cluster minimum.
        for (std::size_t c = 0; c < num_clusters; ++c) {
            const auto size = static_cast<std::int64_t>(_clusterSize[c]);
            std::uint16_t *block =
                _intra.data() + static_cast<std::size_t>(_intraBlock[c]);
            for (const std::int32_t src : members[c]) {
                std::uint16_t *intra_row =
                    block + static_cast<std::int64_t>(
                                _localIndex[static_cast<std::size_t>(src)]) *
                                size;
                intra_row[_localIndex[static_cast<std::size_t>(src)]] = 0;
                queue.assign(1, src);
                for (std::size_t head = 0; head < queue.size(); ++head) {
                    const std::int32_t cur = queue[head];
                    const std::uint16_t next = static_cast<std::uint16_t>(
                        intra_row[_localIndex[static_cast<std::size_t>(cur)]] +
                        1);
                    for (std::int32_t at = csr.offsets[cur];
                         at < csr.offsets[cur + 1]; ++at) {
                        const std::int32_t nb = csr.targets[at];
                        if (static_cast<std::size_t>(
                                _clusterOf[static_cast<std::size_t>(nb)]) !=
                            c) {
                            continue;
                        }
                        auto &cell =
                            intra_row[_localIndex[static_cast<std::size_t>(
                                nb)]];
                        if (cell == kDistUnreachable) {
                            cell = next;
                            queue.push_back(nb);
                        }
                    }
                }
            }
        }
    }

    /**
     * Structure size for a prospective (graph, partition) pair without
     * building anything — the Auto policy's accept/reject estimate.
     */
    static std::size_t
    estimateBytes(const CsrAdjacency &csr, const Partition &part)
    {
        const auto num_clusters = static_cast<std::size_t>(part.numClusters);
        std::vector<std::int64_t> size(num_clusters, 0);
        std::vector<std::int64_t> portals(num_clusters, 0);
        std::int64_t total_portals = 0;
        const int n = csr.numVertices();
        for (int v = 0; v < n; ++v) {
            const auto c = static_cast<std::size_t>(
                part.clusterOf[static_cast<std::size_t>(v)]);
            ++size[c];
            for (std::int32_t at = csr.offsets[v]; at < csr.offsets[v + 1];
                 ++at) {
                if (part.clusterOf[static_cast<std::size_t>(
                        csr.targets[at])] !=
                    part.clusterOf[static_cast<std::size_t>(v)]) {
                    ++portals[c];
                    ++total_portals;
                    break;
                }
            }
        }
        std::int64_t entries = total_portals * total_portals;
        for (std::size_t c = 0; c < num_clusters; ++c) {
            entries += size[c] * portals[c] + size[c] * size[c];
        }
        return static_cast<std::size_t>(entries) * sizeof(std::uint16_t);
    }

    DistanceOracleKind kind() const override
    {
        return DistanceOracleKind::Hierarchical;
    }

    int
    distanceRaw(int a, int b) const override
    {
        if (a == b) {
            return 0;
        }
        const auto ca = static_cast<std::size_t>(
            _clusterOf[static_cast<std::size_t>(a)]);
        const auto cb = static_cast<std::size_t>(
            _clusterOf[static_cast<std::size_t>(b)]);
        int best = std::numeric_limits<int>::max();
        if (ca == cb) {
            const std::uint16_t d = _intra[static_cast<std::size_t>(
                _intraBlock[ca] +
                static_cast<std::int64_t>(
                    _localIndex[static_cast<std::size_t>(a)]) *
                    _clusterSize[ca] +
                _localIndex[static_cast<std::size_t>(b)])];
            if (d != kDistUnreachable) {
                best = d;
            }
        }
        const std::int64_t pa = _portalStart[ca + 1] - _portalStart[ca];
        const std::int64_t pb = _portalStart[cb + 1] - _portalStart[cb];
        const std::uint16_t *la =
            _local.data() +
            static_cast<std::size_t>(
                _localBlock[ca] +
                static_cast<std::int64_t>(
                    _localIndex[static_cast<std::size_t>(a)]) *
                    pa);
        const std::uint16_t *lb =
            _local.data() +
            static_cast<std::size_t>(
                _localBlock[cb] +
                static_cast<std::int64_t>(
                    _localIndex[static_cast<std::size_t>(b)]) *
                    pb);
        const std::int32_t *ids_a =
            _portalIds.data() + _portalStart[ca];
        const std::int32_t *ids_b =
            _portalIds.data() + _portalStart[cb];
        for (std::int64_t i = 0; i < pa; ++i) {
            const std::uint16_t du = la[i];
            if (du == kDistUnreachable || du >= best) {
                continue;
            }
            const std::uint16_t *pp_row =
                _pp.data() + static_cast<std::size_t>(ids_a[i]) *
                                 static_cast<std::size_t>(_numPortals);
            for (std::int64_t j = 0; j < pb; ++j) {
                const std::uint16_t dv = lb[j];
                const std::uint16_t mid =
                    pp_row[static_cast<std::size_t>(ids_b[j])];
                if (dv == kDistUnreachable || mid == kDistUnreachable) {
                    continue;
                }
                const int through = static_cast<int>(du) +
                                    static_cast<int>(mid) +
                                    static_cast<int>(dv);
                best = std::min(best, through);
            }
        }
        return best == std::numeric_limits<int>::max() ? kDistUnreachable
                                                       : best;
    }

    std::size_t
    memoryBytes() const override
    {
        return (_pp.size() + _local.size() + _intra.size()) *
                   sizeof(std::uint16_t) +
               (_clusterOf.size() + _localIndex.size() + _portalIds.size() +
                _portalStart.size() + _clusterSize.size()) *
                   sizeof(std::int32_t) +
               (_localBlock.size() + _intraBlock.size()) *
                   sizeof(std::int64_t);
    }

  private:
    int _n;
    std::int32_t _numPortals = 0;
    std::vector<std::int32_t> _clusterOf;   //!< n
    std::vector<std::int32_t> _localIndex;  //!< n, index within cluster
    std::vector<std::int32_t> _clusterSize; //!< per cluster
    std::vector<std::int32_t> _portalStart; //!< per cluster, into _portalIds
    std::vector<std::int32_t> _portalIds;   //!< global portal ids per cluster
    std::vector<std::int64_t> _localBlock;  //!< per cluster, into _local
    std::vector<std::int64_t> _intraBlock;  //!< per cluster, into _intra
    std::vector<std::uint16_t> _pp;         //!< portal x portal, full graph
    std::vector<std::uint16_t> _local;      //!< vertex x own-cluster portals
    std::vector<std::uint16_t> _intra;      //!< cluster-restricted all-pairs
};

// ---------------------------------------------------------------------------
// LandmarkOracle
// ---------------------------------------------------------------------------

/**
 * Exact per-query bidirectional BFS with memoized rows.  A query runs
 * two frontiers toward each other (always expanding the smaller one)
 * and stops once the best meeting distance cannot be beaten; vertices
 * queried kPromoteAfter times get a full BFS row cached (bounded at
 * kMaxCachedRows, FIFO eviction), so hot-loop sources degrade to a
 * row read.  The memo is mutex-protected: correct under parallel
 * stochastic trials, but contended — the selection policy only picks
 * this oracle when no decomposition compresses.
 */
class LandmarkOracle final : public DistanceOracle
{
  public:
    static constexpr int kPromoteAfter = 4;
    static constexpr std::size_t kMaxCachedRows = 64;

    explicit LandmarkOracle(const CouplingGraph &graph)
        : _csr(graph),
          _queries(static_cast<std::size_t>(graph.numQubits()), 0)
    {
    }

    DistanceOracleKind kind() const override
    {
        return DistanceOracleKind::Landmark;
    }

    int
    distanceRaw(int a, int b) const override
    {
        if (a == b) {
            return 0;
        }
        std::lock_guard<std::mutex> lock(_mutex);
        if (const std::uint16_t *row = cachedRow(a)) {
            return row[b];
        }
        if (const std::uint16_t *row = cachedRow(b)) {
            return row[a];
        }
        if (++_queries[static_cast<std::size_t>(a)] >= kPromoteAfter) {
            return promote(a)[b];
        }
        if (++_queries[static_cast<std::size_t>(b)] >= kPromoteAfter) {
            return promote(b)[a];
        }
        return bidirectional(a, b);
    }

    std::size_t
    memoryBytes() const override
    {
        std::lock_guard<std::mutex> lock(_mutex);
        return _csr.bytes() + _queries.size() * sizeof(std::uint16_t) +
               _rows.size() * (static_cast<std::size_t>(_csr.numVertices()) *
                               sizeof(std::uint16_t));
    }

  private:
    const std::uint16_t *
    cachedRow(int v) const
    {
        const auto it = _rows.find(v);
        return it == _rows.end() ? nullptr : it->second.data();
    }

    /** Compute and cache v's full BFS row (evict FIFO at capacity). */
    const std::uint16_t *
    promote(int v) const
    {
        auto it = _rows.find(v);
        if (it == _rows.end()) {
            if (_rows.size() >= kMaxCachedRows) {
                _rows.erase(static_cast<int>(_cacheOrder.front()));
                _cacheOrder.erase(_cacheOrder.begin());
            }
            std::vector<std::uint16_t> row(
                static_cast<std::size_t>(_csr.numVertices()));
            std::vector<std::int32_t> queue;
            bfsRow(_csr, v, row.data(), queue);
            it = _rows.emplace(v, std::move(row)).first;
            _cacheOrder.push_back(v);
        }
        return it->second.data();
    }

    /**
     * Alternating-frontier bidirectional BFS.  After expanding side A
     * to radius ra and side B to rb, any path of length <= ra + rb has
     * a vertex settled by both sides, so once the best meeting sum is
     * <= ra + rb it is the exact distance.
     */
    int
    bidirectional(int a, int b) const
    {
        const auto n = static_cast<std::size_t>(_csr.numVertices());
        if (_dist[0].size() != n) {
            _dist[0].assign(n, kDistUnreachable);
            _dist[1].assign(n, kDistUnreachable);
            _stamp.assign(n, 0);
            _version = 0;
        }
        ++_version;
        const auto touch = [&](std::size_t v) {
            if (_stamp[v] != _version) {
                _stamp[v] = _version;
                _dist[0][v] = kDistUnreachable;
                _dist[1][v] = kDistUnreachable;
            }
        };
        touch(static_cast<std::size_t>(a));
        touch(static_cast<std::size_t>(b));
        _dist[0][static_cast<std::size_t>(a)] = 0;
        _dist[1][static_cast<std::size_t>(b)] = 0;
        _frontier[0].assign(1, a);
        _frontier[1].assign(1, b);
        int radius[2] = {0, 0};
        int best = std::numeric_limits<int>::max();
        while (!_frontier[0].empty() && !_frontier[1].empty()) {
            if (best <= radius[0] + radius[1]) {
                return best;
            }
            const int side =
                _frontier[0].size() <= _frontier[1].size() ? 0 : 1;
            const int other = 1 - side;
            _next.clear();
            const std::uint16_t depth =
                static_cast<std::uint16_t>(radius[side] + 1);
            for (const std::int32_t cur : _frontier[side]) {
                for (std::int32_t at = _csr.offsets[cur];
                     at < _csr.offsets[cur + 1]; ++at) {
                    const auto nb = static_cast<std::size_t>(_csr.targets[at]);
                    touch(nb);
                    if (_dist[side][nb] != kDistUnreachable) {
                        continue;
                    }
                    _dist[side][nb] = depth;
                    _next.push_back(static_cast<std::int32_t>(nb));
                    if (_dist[other][nb] != kDistUnreachable) {
                        best = std::min(best,
                                        static_cast<int>(depth) +
                                            static_cast<int>(_dist[other][nb]));
                    }
                }
            }
            _frontier[side].swap(_next);
            radius[side] = depth;
        }
        return best == std::numeric_limits<int>::max() ? kDistUnreachable
                                                       : best;
    }

    CsrAdjacency _csr;
    mutable std::mutex _mutex;
    mutable std::vector<std::uint16_t> _queries; //!< promotion counters
    mutable std::unordered_map<int, std::vector<std::uint16_t>> _rows;
    mutable std::vector<int> _cacheOrder; //!< FIFO eviction order
    // Scratch for bidirectional(), reused across queries (guarded by
    // _mutex): version-stamped distance arrays avoid an O(n) clear.
    mutable std::vector<std::uint16_t> _dist[2];
    mutable std::vector<std::uint32_t> _stamp;
    mutable std::uint32_t _version = 0;
    mutable std::vector<std::int32_t> _frontier[2];
    mutable std::vector<std::int32_t> _next;
};

/** SNAILQC_DISTANCE_ORACLE, or the passed policy when unset/auto. */
DistanceOraclePolicy
applyEnvOverride(DistanceOraclePolicy policy)
{
    const char *env = std::getenv("SNAILQC_DISTANCE_ORACLE");
    if (env == nullptr || *env == '\0') {
        return policy;
    }
    const std::string value(env);
    if (value == "auto") {
        return policy;
    }
    if (value == "flat") {
        return DistanceOraclePolicy::Flat;
    }
    if (value == "hier" || value == "hierarchical") {
        return DistanceOraclePolicy::Hierarchical;
    }
    if (value == "landmark") {
        return DistanceOraclePolicy::Landmark;
    }
    SNAIL_THROW("SNAILQC_DISTANCE_ORACLE='"
                << value << "' is not one of auto|flat|hier|landmark");
}

/** Auto-partition target blob size: modules are small; blobs track them. */
int
autoPartitionTarget(int num_qubits)
{
    int root = 1;
    while ((root + 1) * (root + 1) <= num_qubits) {
        ++root;
    }
    return std::max(16, root);
}

} // namespace

const char *
toString(DistanceOracleKind kind)
{
    switch (kind) {
    case DistanceOracleKind::Flat:
        return "flat";
    case DistanceOracleKind::Hierarchical:
        return "hierarchical";
    case DistanceOracleKind::Landmark:
        return "landmark";
    }
    return "unknown";
}

const char *
toString(DistanceOraclePolicy policy)
{
    switch (policy) {
    case DistanceOraclePolicy::Auto:
        return "auto";
    case DistanceOraclePolicy::Flat:
        return "flat";
    case DistanceOraclePolicy::Hierarchical:
        return "hierarchical";
    case DistanceOraclePolicy::Landmark:
        return "landmark";
    }
    return "unknown";
}

std::shared_ptr<const DistanceOracle>
buildDistanceOracle(const CouplingGraph &graph, DistanceOraclePolicy policy)
{
    // The historical guard, now oracle-independent: every oracle keeps
    // distances as uint16, and a hop distance is at most n - 1.
    if (graph.numQubits() > CouplingGraph::kMaxTabledQubits) {
        throw DistanceOverflowError(graph.name(), graph.numQubits(),
                                    CouplingGraph::kMaxTabledQubits);
    }
    policy = applyEnvOverride(policy);

    std::shared_ptr<const DistanceOracle> oracle;
    switch (policy) {
    case DistanceOraclePolicy::Flat:
        oracle = std::make_shared<FlatTableOracle>(graph);
        break;
    case DistanceOraclePolicy::Hierarchical: {
        Partition part =
            graph.clusterHint()
                ? compactHint(*graph.clusterHint())
                : growPartition(CsrAdjacency(graph),
                                autoPartitionTarget(graph.numQubits()));
        oracle =
            std::make_shared<HierarchicalOracle>(graph, std::move(part));
        break;
    }
    case DistanceOraclePolicy::Landmark:
        oracle = std::make_shared<LandmarkOracle>(graph);
        break;
    case DistanceOraclePolicy::Auto: {
        if (graph.numQubits() <= kFlatOracleMaxQubits) {
            oracle = std::make_shared<FlatTableOracle>(graph);
            break;
        }
        if (graph.clusterHint()) {
            // Generators declare real modular structure; trust it.
            oracle = std::make_shared<HierarchicalOracle>(
                graph, compactHint(*graph.clusterHint()));
            break;
        }
        const CsrAdjacency csr(graph);
        Partition part =
            growPartition(csr, autoPartitionTarget(graph.numQubits()));
        if (HierarchicalOracle::estimateBytes(csr, part) <=
            flatTableBytes(graph.numQubits()) / 4) {
            oracle = std::make_shared<HierarchicalOracle>(graph,
                                                          std::move(part));
        } else {
            // No decomposition compresses (expander-like graph).
            oracle = std::make_shared<LandmarkOracle>(graph);
        }
        break;
    }
    }
    SNAIL_ASSERT(oracle != nullptr, "oracle selection fell through");
    MetricsRegistry::global()
        .gauge("snailqc_distance_oracle_bytes")
        .set(static_cast<double>(oracle->memoryBytes()));
    return oracle;
}

} // namespace snail
