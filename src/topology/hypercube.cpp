/**
 * @file
 * Hypercube-family generators.
 */

#include "topology/builders.hpp"

#include <sstream>

#include "common/error.hpp"

namespace snail
{

CouplingGraph
hypercube(int dimensions)
{
    SNAIL_REQUIRE(dimensions >= 1 && dimensions <= 16,
                  "hypercube dimension out of range");
    const int n = 1 << dimensions;
    std::ostringstream name;
    name << "hypercube-" << dimensions << "d";
    CouplingGraph g(n, name.str());
    for (int v = 0; v < n; ++v) {
        for (int bit = 0; bit < dimensions; ++bit) {
            const int w = v ^ (1 << bit);
            if (w > v) {
                g.addEdge(v, w);
            }
        }
    }
    return g;
}

CouplingGraph
incompleteHypercube(int num_qubits)
{
    SNAIL_REQUIRE(num_qubits >= 2, "incomplete hypercube needs >= 2 qubits");
    int dims = 0;
    while ((1 << dims) < num_qubits) {
        ++dims;
    }
    std::ostringstream name;
    name << "hypercube-" << num_qubits;
    CouplingGraph g(num_qubits, name.str());
    for (int v = 0; v < num_qubits; ++v) {
        for (int bit = 0; bit < dims; ++bit) {
            const int w = v ^ (1 << bit);
            if (w > v && w < num_qubits) {
                g.addEdge(v, w);
            }
        }
    }
    return g;
}

} // namespace snail
