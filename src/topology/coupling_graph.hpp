/**
 * @file
 * Qubit coupling topology as an undirected graph (paper Sec. 2.4).
 *
 * Vertices are physical qubits; an edge means the hardware can perform a
 * 2Q gate between the pair.  The graph exposes the structural metrics of
 * the paper's Tables 1 and 2 — diameter, average distance, average
 * connectivity — plus the all-pairs shortest-path distances the layout
 * and routing passes consume, served by a pluggable exact DistanceOracle
 * (topology/distance_oracle.hpp): the flat uint16 table at paper scale,
 * a cluster/portal decomposition or landmark BFS at kiloqubit scale.
 */

#ifndef SNAILQC_TOPOLOGY_COUPLING_GRAPH_HPP
#define SNAILQC_TOPOLOGY_COUPLING_GRAPH_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "topology/distance_oracle.hpp"

namespace snail
{

/** Undirected coupling graph over physical qubits 0..n-1. */
class CouplingGraph
{
  public:
    /**
     * Largest graph any distance oracle can represent: distances are
     * stored as std::uint16_t with 0xFFFF reserved for "unreachable",
     * so the longest representable hop distance is 65534 =
     * kMaxTabledQubits - 1 (a path graph's diameter).
     */
    static constexpr int kMaxTabledQubits = 65535;

    /** Sentinel stored in distance structures for unreachable pairs. */
    static constexpr std::uint16_t kUnreachable = kDistUnreachable;

    /** Edgeless graph over num_qubits qubits. */
    explicit CouplingGraph(int num_qubits, std::string name = "graph");

    int numQubits() const { return _numQubits; }
    const std::string &name() const { return _name; }
    void setName(std::string name) { _name = std::move(name); }

    /** Add an undirected edge (idempotent). */
    void addEdge(int a, int b);

    /** True when (a, b) can host a 2Q gate directly. */
    bool hasEdge(int a, int b) const;

    /** Sorted neighbor list of q. */
    const std::vector<int> &neighbors(int q) const;

    /** Degree of q. */
    int degree(int q) const;

    /** Number of undirected edges. */
    std::size_t edgeCount() const;

    /** All edges as (a, b) with a < b. */
    std::vector<std::pair<int, int>> edges() const;

    /**
     * Hop distance between two qubits, served by the active
     * DistanceOracle (built lazily on the first query).
     *
     * When the oracle is the flat table the read is one bounds-checked
     * array access defined in the header, so it inlines into the
     * scoring kernels exactly as the pre-oracle code did; the other
     * oracles answer through one out-of-line virtual call.  Every
     * oracle is exact, so routed output is bit-identical whichever one
     * is active.
     *
     * @throws DisconnectedError (common/error.hpp) when no path exists,
     *         carrying the pair and this graph's name.
     * @throws DistanceOverflowError when the graph exceeds
     *         kMaxTabledQubits (a diameter > 65534 cannot be stored).
     */
    int
    distance(int a, int b) const
    {
        SNAIL_REQUIRE(a >= 0 && a < _numQubits && b >= 0 && b < _numQubits,
                      "qubit out of range");
        if (_dist_data != nullptr) {
            const std::uint16_t d =
                _dist_data[static_cast<std::size_t>(a) *
                               static_cast<std::size_t>(_numQubits) +
                           static_cast<std::size_t>(b)];
            if (d == kUnreachable) {
                throw DisconnectedError(_name, a, b);
            }
            return static_cast<int>(d);
        }
        return distanceViaOracle(a, b);
    }

    /**
     * Force the lazy distance oracle to exist now.  The oracle build
     * mutates a `mutable` cache and is NOT thread-safe; any code that
     * is about to query distance() from several threads against a
     * shared graph (parallel stochastic trials, sweep workers) must
     * call this once from the owning thread first.  Idempotent.
     * @throws DistanceOverflowError (see distance()).
     */
    void ensureDistanceOracle() const;

    /**
     * The active oracle (built now if needed): kind and memory
     * footprint for stats, benches, and the kiloscale memory audits.
     */
    const DistanceOracle &distanceOracle() const;

    /**
     * How the oracle is chosen (default Auto; see
     * buildDistanceOracle()).  Setting a policy drops any built
     * oracle; the SNAILQC_DISTANCE_ORACLE environment variable
     * overrides whatever is set here.
     */
    void setOraclePolicy(DistanceOraclePolicy policy);
    DistanceOraclePolicy oraclePolicy() const { return _oraclePolicy; }

    /**
     * Declare this graph's modular structure: cluster_of_qubit[q] is
     * an arbitrary non-negative cluster id (chiplet index, tree
     * module, ring arc...).  The HierarchicalOracle is exact for ANY
     * partition, so the hint only steers memory and query latency —
     * generators declare their real modules.  Shared (not copied)
     * across graph copies; survives addEdge() (a partition stays a
     * valid partition); NOT part of any content hash, so transpile
     * cache keys and reports are hint-independent.  trimToSize() drops
     * it (relabeling invalidates the ids).
     */
    void setClusterHint(std::vector<int> cluster_of_qubit);

    /** The declared partition, or nullptr when none. */
    const std::shared_ptr<const std::vector<int>> &
    clusterHint() const
    {
        return _clusterHint;
    }

    /**
     * True when this graph currently shares its distance oracle with
     * another CouplingGraph (or Target) instance.  Copies share the
     * immutable oracle copy-on-write: copying a graph whose oracle is
     * built costs pointer copies, not the distance structure, and the
     * first addEdge() on either copy detaches it.  Diagnostic — the
     * kiloqubit memory audits assert on it.
     */
    bool
    sharesDistanceTable() const
    {
        return _oracle != nullptr && _oracle.use_count() > 1;
    }

    /** True when every qubit can reach every other. */
    bool isConnected() const;

    /** Longest shortest path (paper "Dia."). */
    int diameter() const;

    /** Mean pairwise shortest-path distance (paper "AvgD"). */
    double averageDistance() const;

    /** Mean degree (paper "AvgC"). */
    double averageDegree() const;

    /**
     * Shortest path between two qubits, inclusive of endpoints.
     * @throws DisconnectedError up front when no path exists.
     */
    std::vector<int> shortestPath(int a, int b) const;

    /**
     * Keep the first `n` vertices in breadth-first order from `root`,
     * relabel them 0..n-1, and return the induced subgraph.  Used to carve
     * paper-sized instances out of parametric lattices.
     */
    CouplingGraph trimToSize(int n, int root = 0) const;

  private:
    /**
     * Slow path of distance(): build the oracle if needed, query it,
     * map the sentinel to the typed error.  Out of line: the inline
     * fast path only pays for the null check.
     */
    int distanceViaOracle(int a, int b) const;

    int _numQubits;
    std::string _name;
    std::vector<std::vector<int>> _adjacency;
    DistanceOraclePolicy _oraclePolicy = DistanceOraclePolicy::Auto;
    /** Generator-declared partition, shared across copies (see setter). */
    std::shared_ptr<const std::vector<int>> _clusterHint;
    /**
     * Lazy distance oracle, immutable once built and shared
     * copy-on-write across graph copies (an 84-qubit flat table is
     * ~14 KB; a 4096-qubit one is 32 MB — daemon-resident targets and
     * sweep target expansion copy graphs freely, so the structure must
     * not duplicate).  addEdge() drops the reference instead of
     * mutating, which keeps other owners' oracles valid.  `_dist_data`
     * caches the flat oracle's raw table (nullptr for the other
     * kinds) so the inline distance() hot path reads one raw array,
     * exactly as it did when the vector lived inside the graph.
     */
    mutable std::shared_ptr<const DistanceOracle> _oracle;
    mutable const std::uint16_t *_dist_data = nullptr;
};

} // namespace snail

#endif // SNAILQC_TOPOLOGY_COUPLING_GRAPH_HPP
