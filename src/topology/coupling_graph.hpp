/**
 * @file
 * Qubit coupling topology as an undirected graph (paper Sec. 2.4).
 *
 * Vertices are physical qubits; an edge means the hardware can perform a
 * 2Q gate between the pair.  The graph exposes the structural metrics of
 * the paper's Tables 1 and 2 — diameter, average distance, average
 * connectivity — plus the all-pairs shortest-path distances the layout
 * and routing passes consume.
 */

#ifndef SNAILQC_TOPOLOGY_COUPLING_GRAPH_HPP
#define SNAILQC_TOPOLOGY_COUPLING_GRAPH_HPP

#include <string>
#include <utility>
#include <vector>

namespace snail
{

/** Undirected coupling graph over physical qubits 0..n-1. */
class CouplingGraph
{
  public:
    /** Edgeless graph over num_qubits qubits. */
    explicit CouplingGraph(int num_qubits, std::string name = "graph");

    int numQubits() const { return _numQubits; }
    const std::string &name() const { return _name; }
    void setName(std::string name) { _name = std::move(name); }

    /** Add an undirected edge (idempotent). */
    void addEdge(int a, int b);

    /** True when (a, b) can host a 2Q gate directly. */
    bool hasEdge(int a, int b) const;

    /** Sorted neighbor list of q. */
    const std::vector<int> &neighbors(int q) const;

    /** Degree of q. */
    int degree(int q) const;

    /** Number of undirected edges. */
    std::size_t edgeCount() const;

    /** All edges as (a, b) with a < b. */
    std::vector<std::pair<int, int>> edges() const;

    /**
     * Hop distance between two qubits.
     * @throws DisconnectedError (common/error.hpp) when no path exists,
     *         carrying the pair and this graph's name.
     */
    int distance(int a, int b) const;

    /** True when every qubit can reach every other. */
    bool isConnected() const;

    /** Longest shortest path (paper "Dia."). */
    int diameter() const;

    /** Mean pairwise shortest-path distance (paper "AvgD"). */
    double averageDistance() const;

    /** Mean degree (paper "AvgC"). */
    double averageDegree() const;

    /** Shortest path between two qubits, inclusive of endpoints. */
    std::vector<int> shortestPath(int a, int b) const;

    /**
     * Keep the first `n` vertices in breadth-first order from `root`,
     * relabel them 0..n-1, and return the induced subgraph.  Used to carve
     * paper-sized instances out of parametric lattices.
     */
    CouplingGraph trimToSize(int n, int root = 0) const;

  private:
    /** Compute and cache all-pairs shortest paths (BFS per vertex). */
    void ensureDistances() const;

    int _numQubits;
    std::string _name;
    std::vector<std::vector<int>> _adjacency;
    mutable std::vector<std::vector<int>> _dist; //!< lazy APSP cache
};

} // namespace snail

#endif // SNAILQC_TOPOLOGY_COUPLING_GRAPH_HPP
