/**
 * @file
 * Qubit coupling topology as an undirected graph (paper Sec. 2.4).
 *
 * Vertices are physical qubits; an edge means the hardware can perform a
 * 2Q gate between the pair.  The graph exposes the structural metrics of
 * the paper's Tables 1 and 2 — diameter, average distance, average
 * connectivity — plus the all-pairs shortest-path distances the layout
 * and routing passes consume.
 */

#ifndef SNAILQC_TOPOLOGY_COUPLING_GRAPH_HPP
#define SNAILQC_TOPOLOGY_COUPLING_GRAPH_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace snail
{

/** Undirected coupling graph over physical qubits 0..n-1. */
class CouplingGraph
{
  public:
    /**
     * Largest graph the flat distance table can represent: distances
     * are stored as std::uint16_t with 0xFFFF reserved for
     * "unreachable", so the longest representable hop distance is
     * 65534 = kMaxTabledQubits - 1 (a path graph's diameter).
     */
    static constexpr int kMaxTabledQubits = 65535;

    /** Sentinel stored in the distance table for unreachable pairs. */
    static constexpr std::uint16_t kUnreachable = 0xFFFF;

    /** Edgeless graph over num_qubits qubits. */
    explicit CouplingGraph(int num_qubits, std::string name = "graph");

    int numQubits() const { return _numQubits; }
    const std::string &name() const { return _name; }
    void setName(std::string name) { _name = std::move(name); }

    /** Add an undirected edge (idempotent). */
    void addEdge(int a, int b);

    /** True when (a, b) can host a 2Q gate directly. */
    bool hasEdge(int a, int b) const;

    /** Sorted neighbor list of q. */
    const std::vector<int> &neighbors(int q) const;

    /** Degree of q. */
    int degree(int q) const;

    /** Number of undirected edges. */
    std::size_t edgeCount() const;

    /** All edges as (a, b) with a < b. */
    std::vector<std::pair<int, int>> edges() const;

    /**
     * Hop distance between two qubits.
     *
     * Backed by a flat row-major std::uint16_t table built once (BFS
     * per vertex) on the first query, so the router hot loops read one
     * cache-friendly array instead of chasing a vector-of-vectors.
     * Bounds-checked; defined in the header so the table read inlines
     * into the scoring kernels.
     *
     * @throws DisconnectedError (common/error.hpp) when no path exists,
     *         carrying the pair and this graph's name.
     * @throws DistanceOverflowError when the graph exceeds
     *         kMaxTabledQubits (a diameter > 65534 cannot be stored).
     */
    int
    distance(int a, int b) const
    {
        SNAIL_REQUIRE(a >= 0 && a < _numQubits && b >= 0 && b < _numQubits,
                      "qubit out of range");
        if (_dist_data == nullptr) {
            buildDistanceTable();
        }
        const std::uint16_t d =
            _dist_data[static_cast<std::size_t>(a) *
                           static_cast<std::size_t>(_numQubits) +
                       static_cast<std::size_t>(b)];
        if (d == kUnreachable) {
            throw DisconnectedError(_name, a, b);
        }
        return static_cast<int>(d);
    }

    /**
     * Force the lazy distance table to exist now.  The table build
     * mutates a `mutable` cache and is NOT thread-safe; any code that
     * is about to query distance() from several threads against a
     * shared graph (parallel stochastic trials, sweep workers) must
     * call this once from the owning thread first.  Idempotent.
     * @throws DistanceOverflowError (see distance()).
     */
    void
    ensureDistanceTable() const
    {
        if (_dist_data == nullptr) {
            buildDistanceTable();
        }
    }

    /**
     * True when this graph currently shares its distance table with
     * another CouplingGraph (or Target) instance.  Copies share the
     * immutable table copy-on-write: copying a graph whose table is
     * built costs two pointer copies, not the n^2 uint16 buffer, and
     * the first addEdge() on either copy detaches it.  Diagnostic —
     * the kiloqubit memory audits assert on it.
     */
    bool
    sharesDistanceTable() const
    {
        return _dist != nullptr && _dist.use_count() > 1;
    }

    /** True when every qubit can reach every other. */
    bool isConnected() const;

    /** Longest shortest path (paper "Dia."). */
    int diameter() const;

    /** Mean pairwise shortest-path distance (paper "AvgD"). */
    double averageDistance() const;

    /** Mean degree (paper "AvgC"). */
    double averageDegree() const;

    /** Shortest path between two qubits, inclusive of endpoints. */
    std::vector<int> shortestPath(int a, int b) const;

    /**
     * Keep the first `n` vertices in breadth-first order from `root`,
     * relabel them 0..n-1, and return the induced subgraph.  Used to carve
     * paper-sized instances out of parametric lattices.
     */
    CouplingGraph trimToSize(int n, int root = 0) const;

  private:
    /**
     * Build the flat row-major all-pairs distance table (BFS per
     * vertex).  Out of line: the inline distance() fast path only pays
     * for the emptiness check.
     */
    void buildDistanceTable() const;

    int _numQubits;
    std::string _name;
    std::vector<std::vector<int>> _adjacency;
    /**
     * Lazy row-major n*n hop-distance table (kUnreachable sentinel),
     * immutable once built and shared copy-on-write across graph
     * copies (an 84-qubit table is ~14 KB; a 4096-qubit one is 32 MB
     * — daemon-resident targets and sweep target expansion copy
     * graphs freely, so the buffer must not duplicate).  addEdge()
     * drops the reference instead of mutating, which keeps other
     * owners' tables valid.  `_dist_data` caches data() so the
     * inline distance() hot path reads one raw array, exactly as it
     * did when the vector lived inside the graph.
     */
    mutable std::shared_ptr<const std::vector<std::uint16_t>> _dist;
    mutable const std::uint16_t *_dist_data = nullptr;
};

} // namespace snail

#endif // SNAILQC_TOPOLOGY_COUPLING_GRAPH_HPP
