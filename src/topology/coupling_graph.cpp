#include "topology/coupling_graph.hpp"

#include <algorithm>
#include <deque>

#include "common/error.hpp"

namespace snail
{

CouplingGraph::CouplingGraph(int num_qubits, std::string name)
    : _numQubits(num_qubits),
      _name(std::move(name)),
      _adjacency(static_cast<std::size_t>(num_qubits))
{
    SNAIL_REQUIRE(num_qubits > 0, "coupling graph needs at least one qubit");
}

void
CouplingGraph::addEdge(int a, int b)
{
    SNAIL_REQUIRE(a >= 0 && a < _numQubits && b >= 0 && b < _numQubits,
                  "edge endpoint out of range: (" << a << ", " << b << ")");
    SNAIL_REQUIRE(a != b, "self-loop on qubit " << a);
    auto &na = _adjacency[static_cast<std::size_t>(a)];
    if (std::find(na.begin(), na.end(), b) != na.end()) {
        return;
    }
    na.insert(std::lower_bound(na.begin(), na.end(), b), b);
    auto &nb = _adjacency[static_cast<std::size_t>(b)];
    nb.insert(std::lower_bound(nb.begin(), nb.end(), a), a);
    // Copy-on-write: drop our reference — co-owners keep the old
    // table (their graph is unchanged); this one rebuilds on query.
    _dist.reset();
    _dist_data = nullptr;
}

bool
CouplingGraph::hasEdge(int a, int b) const
{
    if (a < 0 || a >= _numQubits || b < 0 || b >= _numQubits || a == b) {
        return false;
    }
    const auto &na = _adjacency[static_cast<std::size_t>(a)];
    return std::binary_search(na.begin(), na.end(), b);
}

const std::vector<int> &
CouplingGraph::neighbors(int q) const
{
    SNAIL_REQUIRE(q >= 0 && q < _numQubits, "qubit out of range");
    return _adjacency[static_cast<std::size_t>(q)];
}

int
CouplingGraph::degree(int q) const
{
    return static_cast<int>(neighbors(q).size());
}

std::size_t
CouplingGraph::edgeCount() const
{
    std::size_t total = 0;
    for (const auto &adj : _adjacency) {
        total += adj.size();
    }
    return total / 2;
}

std::vector<std::pair<int, int>>
CouplingGraph::edges() const
{
    std::vector<std::pair<int, int>> out;
    out.reserve(edgeCount());
    for (int a = 0; a < _numQubits; ++a) {
        for (int b : _adjacency[static_cast<std::size_t>(a)]) {
            if (a < b) {
                out.emplace_back(a, b);
            }
        }
    }
    return out;
}

void
CouplingGraph::buildDistanceTable() const
{
    // Guard before allocating: a hop distance is at most n - 1, so any
    // graph that fits in kMaxTabledQubits also fits every distance in
    // uint16 below the kUnreachable sentinel — and any graph whose
    // diameter could exceed 65534 necessarily trips this check.
    if (_numQubits > kMaxTabledQubits) {
        throw DistanceOverflowError(_name, _numQubits, kMaxTabledQubits);
    }
    const auto n = static_cast<std::size_t>(_numQubits);
    auto table = std::make_shared<std::vector<std::uint16_t>>(
        n * n, kUnreachable);
    std::vector<int> queue;
    queue.reserve(n);
    for (std::size_t src = 0; src < n; ++src) {
        std::uint16_t *row = table->data() + src * n;
        row[src] = 0;
        queue.assign(1, static_cast<int>(src));
        for (std::size_t head = 0; head < queue.size(); ++head) {
            const int cur = queue[head];
            const std::uint16_t next =
                static_cast<std::uint16_t>(
                    row[static_cast<std::size_t>(cur)] + 1);
            for (int nb : _adjacency[static_cast<std::size_t>(cur)]) {
                if (row[static_cast<std::size_t>(nb)] == kUnreachable) {
                    row[static_cast<std::size_t>(nb)] = next;
                    queue.push_back(nb);
                }
            }
        }
    }
    _dist = std::move(table);
    _dist_data = _dist->data();
}

bool
CouplingGraph::isConnected() const
{
    ensureDistanceTable();
    for (int q = 1; q < _numQubits; ++q) {
        if (_dist_data[static_cast<std::size_t>(q)] == kUnreachable) {
            return false;
        }
    }
    return true;
}

int
CouplingGraph::diameter() const
{
    int best = 0;
    for (int a = 0; a < _numQubits; ++a) {
        for (int b = a + 1; b < _numQubits; ++b) {
            const int d = distance(a, b);
            best = std::max(best, d);
        }
    }
    return best;
}

double
CouplingGraph::averageDistance() const
{
    // Paper convention (Tables 1 and 2): average over all ordered pairs
    // including self-pairs (which contribute distance 0), i.e. the distance
    // sum normalized by n^2.  With this normalization the paper's reported
    // values for square/hypercube/tree/corral are reproduced exactly.
    double total = 0.0;
    for (int a = 0; a < _numQubits; ++a) {
        for (int b = a + 1; b < _numQubits; ++b) {
            total += static_cast<double>(distance(a, b));
        }
    }
    const double n = static_cast<double>(_numQubits);
    return 2.0 * total / (n * n);
}

double
CouplingGraph::averageDegree() const
{
    return 2.0 * static_cast<double>(edgeCount()) /
           static_cast<double>(_numQubits);
}

std::vector<int>
CouplingGraph::shortestPath(int a, int b) const
{
    SNAIL_REQUIRE(a >= 0 && a < _numQubits && b >= 0 && b < _numQubits,
                  "qubit out of range");
    // Walk from b back toward a following strictly decreasing distance.
    std::vector<int> path{a};
    int cur = a;
    while (cur != b) {
        const int d = distance(cur, b);
        int next = -1;
        for (int nb : neighbors(cur)) {
            if (distance(nb, b) == d - 1) {
                next = nb;
                break;
            }
        }
        SNAIL_ASSERT(next >= 0, "shortest path walk failed");
        path.push_back(next);
        cur = next;
    }
    return path;
}

CouplingGraph
CouplingGraph::trimToSize(int n, int root) const
{
    SNAIL_REQUIRE(n > 0 && n <= _numQubits,
                  "cannot trim " << _numQubits << "-qubit graph to " << n);
    // BFS order from root.
    std::vector<int> order;
    std::vector<bool> seen(static_cast<std::size_t>(_numQubits), false);
    std::deque<int> queue{root};
    seen[static_cast<std::size_t>(root)] = true;
    while (!queue.empty() && static_cast<int>(order.size()) < n) {
        const int cur = queue.front();
        queue.pop_front();
        order.push_back(cur);
        for (int nb : neighbors(cur)) {
            if (!seen[static_cast<std::size_t>(nb)]) {
                seen[static_cast<std::size_t>(nb)] = true;
                queue.push_back(nb);
            }
        }
    }
    SNAIL_REQUIRE(static_cast<int>(order.size()) == n,
                  "graph has fewer than " << n << " reachable qubits");

    std::vector<int> relabel(static_cast<std::size_t>(_numQubits), -1);
    for (int i = 0; i < n; ++i) {
        relabel[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] =
            i;
    }
    CouplingGraph out(n, _name);
    for (int i = 0; i < n; ++i) {
        const int orig = order[static_cast<std::size_t>(i)];
        for (int nb : neighbors(orig)) {
            const int mapped = relabel[static_cast<std::size_t>(nb)];
            if (mapped >= 0 && mapped > i) {
                out.addEdge(i, mapped);
            }
        }
    }
    return out;
}

} // namespace snail
