#include "topology/coupling_graph.hpp"

#include <algorithm>
#include <deque>

#include "common/error.hpp"
#include "topology/distance_oracle.hpp"

namespace snail
{

CouplingGraph::CouplingGraph(int num_qubits, std::string name)
    : _numQubits(num_qubits),
      _name(std::move(name)),
      _adjacency(static_cast<std::size_t>(num_qubits))
{
    SNAIL_REQUIRE(num_qubits > 0, "coupling graph needs at least one qubit");
}

void
CouplingGraph::addEdge(int a, int b)
{
    SNAIL_REQUIRE(a >= 0 && a < _numQubits && b >= 0 && b < _numQubits,
                  "edge endpoint out of range: (" << a << ", " << b << ")");
    SNAIL_REQUIRE(a != b, "self-loop on qubit " << a);
    auto &na = _adjacency[static_cast<std::size_t>(a)];
    if (std::find(na.begin(), na.end(), b) != na.end()) {
        return;
    }
    na.insert(std::lower_bound(na.begin(), na.end(), b), b);
    auto &nb = _adjacency[static_cast<std::size_t>(b)];
    nb.insert(std::lower_bound(nb.begin(), nb.end(), a), a);
    // Copy-on-write: drop our reference — co-owners keep the old
    // oracle (their graph is unchanged); this one rebuilds on query.
    // The cluster hint stays: a partition remains a valid partition
    // under edge insertion (only portals change, recomputed at build).
    _oracle.reset();
    _dist_data = nullptr;
}

bool
CouplingGraph::hasEdge(int a, int b) const
{
    if (a < 0 || a >= _numQubits || b < 0 || b >= _numQubits || a == b) {
        return false;
    }
    const auto &na = _adjacency[static_cast<std::size_t>(a)];
    return std::binary_search(na.begin(), na.end(), b);
}

const std::vector<int> &
CouplingGraph::neighbors(int q) const
{
    SNAIL_REQUIRE(q >= 0 && q < _numQubits, "qubit out of range");
    return _adjacency[static_cast<std::size_t>(q)];
}

int
CouplingGraph::degree(int q) const
{
    return static_cast<int>(neighbors(q).size());
}

std::size_t
CouplingGraph::edgeCount() const
{
    std::size_t total = 0;
    for (const auto &adj : _adjacency) {
        total += adj.size();
    }
    return total / 2;
}

std::vector<std::pair<int, int>>
CouplingGraph::edges() const
{
    std::vector<std::pair<int, int>> out;
    out.reserve(edgeCount());
    for (int a = 0; a < _numQubits; ++a) {
        for (int b : _adjacency[static_cast<std::size_t>(a)]) {
            if (a < b) {
                out.emplace_back(a, b);
            }
        }
    }
    return out;
}

void
CouplingGraph::ensureDistanceOracle() const
{
    if (_oracle == nullptr) {
        _oracle = buildDistanceOracle(*this, _oraclePolicy);
        _dist_data = _oracle->flatData();
    }
}

const DistanceOracle &
CouplingGraph::distanceOracle() const
{
    ensureDistanceOracle();
    return *_oracle;
}

void
CouplingGraph::setOraclePolicy(DistanceOraclePolicy policy)
{
    _oraclePolicy = policy;
    _oracle.reset();
    _dist_data = nullptr;
}

void
CouplingGraph::setClusterHint(std::vector<int> cluster_of_qubit)
{
    SNAIL_REQUIRE(static_cast<int>(cluster_of_qubit.size()) == _numQubits,
                  "cluster hint covers " << cluster_of_qubit.size()
                                         << " qubits, graph has "
                                         << _numQubits);
    for (int id : cluster_of_qubit) {
        SNAIL_REQUIRE(id >= 0, "cluster hint ids must be non-negative");
    }
    _clusterHint = std::make_shared<const std::vector<int>>(
        std::move(cluster_of_qubit));
    // A built hierarchical oracle would be keyed to the old partition.
    _oracle.reset();
    _dist_data = nullptr;
}

int
CouplingGraph::distanceViaOracle(int a, int b) const
{
    ensureDistanceOracle();
    const int d = _oracle->distanceRaw(a, b);
    if (d == kUnreachable) {
        throw DisconnectedError(_name, a, b);
    }
    return d;
}

bool
CouplingGraph::isConnected() const
{
    ensureDistanceOracle();
    for (int q = 1; q < _numQubits; ++q) {
        if (_oracle->distanceRaw(0, q) == kUnreachable) {
            return false;
        }
    }
    return true;
}

int
CouplingGraph::diameter() const
{
    int best = 0;
    for (int a = 0; a < _numQubits; ++a) {
        for (int b = a + 1; b < _numQubits; ++b) {
            const int d = distance(a, b);
            best = std::max(best, d);
        }
    }
    return best;
}

double
CouplingGraph::averageDistance() const
{
    // Paper convention (Tables 1 and 2): average over all ordered pairs
    // including self-pairs (which contribute distance 0), i.e. the distance
    // sum normalized by n^2.  With this normalization the paper's reported
    // values for square/hypercube/tree/corral are reproduced exactly.
    double total = 0.0;
    for (int a = 0; a < _numQubits; ++a) {
        for (int b = a + 1; b < _numQubits; ++b) {
            total += static_cast<double>(distance(a, b));
        }
    }
    const double n = static_cast<double>(_numQubits);
    return 2.0 * total / (n * n);
}

double
CouplingGraph::averageDegree() const
{
    return 2.0 * static_cast<double>(edgeCount()) /
           static_cast<double>(_numQubits);
}

std::vector<int>
CouplingGraph::shortestPath(int a, int b) const
{
    SNAIL_REQUIRE(a >= 0 && a < _numQubits && b >= 0 && b < _numQubits,
                  "qubit out of range");
    // Reject unreachable pairs up front with the typed error: the walk
    // below follows strictly decreasing distance and must never start
    // on a sentinel pair.
    const int total = distance(a, b);
    std::vector<int> path;
    path.reserve(static_cast<std::size_t>(total) + 1);
    path.push_back(a);
    int cur = a;
    while (cur != b) {
        const int d = distance(cur, b);
        int next = -1;
        for (int nb : neighbors(cur)) {
            if (distance(nb, b) == d - 1) {
                next = nb;
                break;
            }
        }
        SNAIL_ASSERT(next >= 0, "shortest path walk failed");
        path.push_back(next);
        cur = next;
    }
    return path;
}

CouplingGraph
CouplingGraph::trimToSize(int n, int root) const
{
    SNAIL_REQUIRE(n > 0 && n <= _numQubits,
                  "cannot trim " << _numQubits << "-qubit graph to " << n);
    // BFS order from root.
    std::vector<int> order;
    std::vector<bool> seen(static_cast<std::size_t>(_numQubits), false);
    std::deque<int> queue{root};
    seen[static_cast<std::size_t>(root)] = true;
    while (!queue.empty() && static_cast<int>(order.size()) < n) {
        const int cur = queue.front();
        queue.pop_front();
        order.push_back(cur);
        for (int nb : neighbors(cur)) {
            if (!seen[static_cast<std::size_t>(nb)]) {
                seen[static_cast<std::size_t>(nb)] = true;
                queue.push_back(nb);
            }
        }
    }
    SNAIL_REQUIRE(static_cast<int>(order.size()) == n,
                  "graph has fewer than " << n << " reachable qubits");

    std::vector<int> relabel(static_cast<std::size_t>(_numQubits), -1);
    for (int i = 0; i < n; ++i) {
        relabel[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] =
            i;
    }
    CouplingGraph out(n, _name);
    for (int i = 0; i < n; ++i) {
        const int orig = order[static_cast<std::size_t>(i)];
        for (int nb : neighbors(orig)) {
            const int mapped = relabel[static_cast<std::size_t>(nb)];
            if (mapped >= 0 && mapped > i) {
                out.addEdge(i, mapped);
            }
        }
    }
    return out;
}

} // namespace snail
