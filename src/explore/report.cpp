#include "explore/report.hpp"

#include <algorithm>
#include <map>
#include <ostream>

#include "common/hash.hpp"
#include "common/table.hpp"
#include "explore/checkpoint.hpp"

namespace snail
{

namespace
{

/** RFC-4180-style quoting: needed for pipeline specs (commas). */
std::string
csvField(const std::string &value)
{
    if (value.find_first_of(",\"\n") == std::string::npos) {
        return value;
    }
    std::string quoted = "\"";
    for (char c : value) {
        if (c == '"') {
            quoted += '"';
        }
        quoted += c;
    }
    return quoted + "\"";
}

std::string
metricCell(const PointMetrics &point, const std::string &metric)
{
    if (metric == "fidelity_predicted" && !point.has_fidelity) {
        return "";
    }
    return shortestDouble(pointMetricValue(point, metric));
}

/**
 * Workload groups for the summary tables: one per (circuit family,
 * pipeline), rows keyed by width, columns by target.  Preserves
 * first-appearance order of the groups.
 */
struct SummaryGroup
{
    std::string circuit_label;
    std::string pipeline;
    std::vector<int> widths;                //!< sorted, unique
    std::vector<std::string> targets;       //!< spec order
    /** (width, target slot) -> point index, -1 when skipped. */
    std::map<std::pair<int, std::size_t>, std::size_t> cells;
};

std::vector<SummaryGroup>
summaryGroups(const SweepRun &run)
{
    std::vector<SummaryGroup> groups;
    std::map<std::pair<std::string, std::size_t>, std::size_t> index;

    for (std::size_t i = 0; i < run.points.size(); ++i) {
        const SweepPoint &point = run.points[i];
        const auto key =
            std::make_pair(point.circuit_label, point.pipeline_index);
        auto it = index.find(key);
        if (it == index.end()) {
            it = index.emplace(key, groups.size()).first;
            groups.push_back(SummaryGroup{point.circuit_label,
                                          point.pipeline,
                                          {},
                                          {},
                                          {}});
        }
        SummaryGroup &group = groups[it->second];
        if (std::find(group.widths.begin(), group.widths.end(),
                      point.width) == group.widths.end()) {
            group.widths.push_back(point.width);
        }
        const auto slot =
            std::find(group.targets.begin(), group.targets.end(),
                      point.target_label);
        std::size_t column;
        if (slot == group.targets.end()) {
            column = group.targets.size();
            group.targets.push_back(point.target_label);
        } else {
            column =
                static_cast<std::size_t>(slot - group.targets.begin());
        }
        group.cells[{point.width, column}] = i;
    }
    for (SummaryGroup &group : groups) {
        std::sort(group.widths.begin(), group.widths.end());
    }
    return groups;
}

} // namespace

void
writeSweepCsv(std::ostream &os, const SweepRun &run)
{
    os << "circuit,width,target,pipeline,seed";
    for (const std::string &metric : pointMetricNames()) {
        os << ',' << metric;
    }
    os << '\n';
    for (std::size_t i = 0; i < run.points.size(); ++i) {
        const SweepPoint &point = run.points[i];
        // std::to_string, not operator<<: stream int output honors
        // std::locale::global digit grouping and CSV must not.
        os << csvField(point.circuit_label) << ','
           << std::to_string(point.width) << ','
           << csvField(point.target_label) << ','
           << csvField(point.pipeline) << ',' << hex64(point.seed);
        for (const std::string &metric : pointMetricNames()) {
            os << ',' << metricCell(run.metrics[i], metric);
        }
        os << '\n';
    }
}

void
writeSweepJson(std::ostream &os, const SweepRun &run)
{
    JsonValue::Object root;
    root["spec"] = sweepSpecToJson(run.spec);
    JsonValue::Array points;
    for (std::size_t i = 0; i < run.points.size(); ++i) {
        const SweepPoint &point = run.points[i];
        JsonValue::Object entry;
        entry["circuit"] = JsonValue(point.circuit_label);
        entry["width"] = JsonValue(point.width);
        entry["target"] = JsonValue(point.target_label);
        entry["pipeline"] = JsonValue(point.pipeline);
        entry["seed"] = JsonValue(hex64(point.seed));
        entry["metrics"] = pointMetricsToJson(run.metrics[i]);
        points.push_back(JsonValue(std::move(entry)));
    }
    root["points"] = JsonValue(std::move(points));
    os << JsonValue(std::move(root)).dump(2) << '\n';
}

void
printSweepSummary(std::ostream &os, const SweepRun &run,
                  const std::string &metric)
{
    const bool maximize = metric == "fidelity_predicted";

    for (const SummaryGroup &group : summaryGroups(run)) {
        printBanner(os, run.spec.name + " -- " + group.circuit_label +
                            " [" + group.pipeline + "] (" + metric +
                            ")");
        std::vector<std::string> headers{"width"};
        headers.insert(headers.end(), group.targets.begin(),
                       group.targets.end());
        TableWriter table(headers);
        for (int width : group.widths) {
            std::vector<std::string> row{std::to_string(width)};
            for (std::size_t t = 0; t < group.targets.size(); ++t) {
                const auto it = group.cells.find({width, t});
                if (it == group.cells.end()) {
                    row.push_back("-");
                } else {
                    const std::string cell =
                        metricCell(run.metrics[it->second], metric);
                    row.push_back(cell.empty() ? "-" : cell);
                }
            }
            table.addRow(std::move(row));
        }
        table.print(os);
    }

    const auto winners = winnersPerWorkload(run, metric, maximize);
    printBanner(os, "Winners per workload (" + metric +
                        (maximize ? ", max)" : ", min)"));
    TableWriter winner_table({"circuit", "width", "pipeline", "winner",
                              metric});
    for (const WorkloadWinner &winner : winners) {
        winner_table.addRow(
            {winner.circuit_label, std::to_string(winner.width),
             winner.pipeline,
             run.points[winner.point_index].target_label,
             shortestDouble(winner.value)});
    }
    winner_table.print(os);

    printBanner(os, "Architecture scoreboard");
    TableWriter score_table({"target", "workloads won"});
    for (const TargetScore &score : targetScoreboard(run, winners)) {
        score_table.addRow({score.target_label,
                            std::to_string(score.wins)});
    }
    score_table.print(os);

    // Multi-objective frontier: gate count vs critical duration, plus
    // predicted fidelity when every point carries one.
    std::vector<Objective> objectives{{"basis_2q_total", false},
                                      {"duration_critical", false}};
    bool all_fidelity = !run.metrics.empty();
    for (const PointMetrics &point : run.metrics) {
        all_fidelity = all_fidelity && point.has_fidelity;
    }
    if (all_fidelity) {
        objectives.push_back({"fidelity_predicted", true});
    }
    std::string objective_names;
    for (const Objective &objective : objectives) {
        objective_names += objective_names.empty()
                               ? objective.metric
                               : ", " + objective.metric;
    }
    printBanner(os, "Pareto frontier (" + objective_names + ")");
    TableWriter pareto_table({"circuit", "width", "target", "2Q",
                              "dur crit"});
    for (std::size_t i : paretoFrontier(run, objectives)) {
        const SweepPoint &point = run.points[i];
        pareto_table.addRow(
            {point.circuit_label, std::to_string(point.width),
             point.target_label,
             std::to_string(run.metrics[i].metrics.basis_2q_total),
             TableWriter::num(
                 run.metrics[i].metrics.duration_critical, 1)});
    }
    pareto_table.print(os);

    os << "\npoints: " << run.points.size() << " (computed "
       << run.stats.computed << ", from cache " << run.stats.from_cache
       << "); cache hits " << run.cache_hits << ", misses "
       << run.cache_misses;
    if (run.stats.restored > 0) {
        os << "; restored " << run.stats.restored
           << " checkpointed points";
    }
    os << "\n";
}

} // namespace snail
