/**
 * @file
 * Sweep reporters: CSV and JSON machine-readable dumps plus the
 * human-facing summary tables the CLI prints.
 *
 * Both machine formats are deterministic functions of the SweepRun —
 * points in expansion order, doubles via shortestDouble — so a resumed
 * run's report is byte-identical to an uninterrupted one (the property
 * the resume tests pin down).
 */

#ifndef SNAILQC_EXPLORE_REPORT_HPP
#define SNAILQC_EXPLORE_REPORT_HPP

#include <iosfwd>

#include "explore/analysis.hpp"

namespace snail
{

/**
 * One row per point: circuit, width, target, pipeline, seed (hex),
 * every TranspileMetrics column, and fidelity_predicted (empty cell
 * when the pipeline never scored it).
 */
void writeSweepCsv(std::ostream &os, const SweepRun &run);

/** The run as one JSON document: spec echo plus labelled points. */
void writeSweepJson(std::ostream &os, const SweepRun &run);

/**
 * Human-facing summary: per-workload tables (rows: width, columns:
 * targets) of `metric`, the winner scoreboard, the Pareto frontier on
 * (basis_2q_total, duration_critical) — plus fidelity_predicted,
 * maximized, when every point scored it — and the cache/evaluation
 * statistics line ("... computed N ..."), which the CI resume smoke
 * greps.
 */
void printSweepSummary(std::ostream &os, const SweepRun &run,
                       const std::string &metric);

} // namespace snail

#endif // SNAILQC_EXPLORE_REPORT_HPP
