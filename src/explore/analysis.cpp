#include "explore/analysis.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"

namespace snail
{

double
pointMetricValue(const PointMetrics &point, const std::string &metric)
{
    const TranspileMetrics &m = point.metrics;
    if (metric == "swaps_total") {
        return static_cast<double>(m.swaps_total);
    }
    if (metric == "swaps_critical") {
        return m.swaps_critical;
    }
    if (metric == "ops_2q_pre") {
        return static_cast<double>(m.ops_2q_pre);
    }
    if (metric == "basis_2q_total") {
        return static_cast<double>(m.basis_2q_total);
    }
    if (metric == "basis_2q_critical") {
        return m.basis_2q_critical;
    }
    if (metric == "duration_total") {
        return m.duration_total;
    }
    if (metric == "duration_critical") {
        return m.duration_critical;
    }
    if (metric == "fidelity_predicted") {
        SNAIL_REQUIRE(point.has_fidelity,
                      "point has no predicted fidelity; add "
                      "score-fidelity to the pipeline");
        return point.fidelity_predicted;
    }
    std::string known;
    for (const std::string &name : pointMetricNames()) {
        known += known.empty() ? name : ", " + name;
    }
    SNAIL_THROW("unknown metric '" << metric << "' (known: " << known
                                   << ")");
}

bool
pointHasMetric(const PointMetrics &point, const std::string &metric)
{
    if (metric == "fidelity_predicted") {
        return point.has_fidelity;
    }
    const std::vector<std::string> names = pointMetricNames();
    if (std::find(names.begin(), names.end(), metric) == names.end()) {
        pointMetricValue(point, metric); // throws the unknown-name error
    }
    return true;
}

std::vector<std::string>
pointMetricNames()
{
    return {"swaps_total",       "swaps_critical", "ops_2q_pre",
            "basis_2q_total",    "basis_2q_critical", "duration_total",
            "duration_critical", "fidelity_predicted"};
}

namespace
{

/** Points of one (circuit, pipeline) workload group, by point index. */
std::map<std::pair<std::size_t, std::size_t>, std::vector<std::size_t>>
workloadGroups(const SweepRun &run)
{
    std::map<std::pair<std::size_t, std::size_t>,
             std::vector<std::size_t>>
        groups;
    for (std::size_t i = 0; i < run.points.size(); ++i) {
        const SweepPoint &p = run.points[i];
        groups[{p.circuit_index, p.pipeline_index}].push_back(i);
    }
    return groups;
}

/** True when point a dominates point b on every objective. */
bool
dominates(const PointMetrics &a, const PointMetrics &b,
          const std::vector<Objective> &objectives)
{
    bool strictly_better = false;
    for (const Objective &objective : objectives) {
        double va = pointMetricValue(a, objective.metric);
        double vb = pointMetricValue(b, objective.metric);
        if (objective.maximize) {
            std::swap(va, vb);
        }
        if (va > vb) {
            return false;
        }
        if (va < vb) {
            strictly_better = true;
        }
    }
    return strictly_better;
}

} // namespace

std::vector<std::size_t>
paretoFrontier(const SweepRun &run,
               const std::vector<Objective> &objectives)
{
    SNAIL_REQUIRE(!objectives.empty(),
                  "paretoFrontier needs at least one objective");
    std::vector<std::size_t> frontier;
    for (const auto &[group, members] : workloadGroups(run)) {
        (void)group;
        for (std::size_t candidate : members) {
            bool dominated = false;
            for (std::size_t other : members) {
                if (other != candidate &&
                    dominates(run.metrics[other], run.metrics[candidate],
                              objectives)) {
                    dominated = true;
                    break;
                }
            }
            if (!dominated) {
                frontier.push_back(candidate);
            }
        }
    }
    std::sort(frontier.begin(), frontier.end());
    return frontier;
}

std::vector<WorkloadWinner>
winnersPerWorkload(const SweepRun &run, const std::string &metric,
                   bool maximize)
{
    std::vector<WorkloadWinner> winners;
    for (const auto &[group, members] : workloadGroups(run)) {
        (void)group;
        bool have_best = false;
        std::size_t best = 0;
        double best_value = 0.0;
        for (std::size_t candidate : members) {
            if (!pointHasMetric(run.metrics[candidate], metric)) {
                continue;
            }
            const double value =
                pointMetricValue(run.metrics[candidate], metric);
            if (!have_best ||
                (maximize ? value > best_value : value < best_value)) {
                have_best = true;
                best = candidate;
                best_value = value;
            }
        }
        if (!have_best) {
            continue; // nothing in this group scores the metric
        }
        const SweepPoint &point = run.points[best];
        winners.push_back(WorkloadWinner{point.circuit_label, point.width,
                                         point.pipeline, best,
                                         best_value});
    }
    return winners;
}

std::vector<TargetScore>
targetScoreboard(const SweepRun &run,
                 const std::vector<WorkloadWinner> &winners)
{
    // One row per target that hosts at least one point, in spec
    // order, including zero-win rows.  (A target every circuit
    // outgrew has no points and therefore no row.)
    std::map<std::size_t, std::size_t> wins;
    for (const WorkloadWinner &winner : winners) {
        ++wins[run.points[winner.point_index].target_index];
    }
    std::map<std::size_t, std::string> labels;
    for (const SweepPoint &point : run.points) {
        labels.emplace(point.target_index, point.target_label);
    }
    std::vector<TargetScore> scores;
    for (const auto &[index, label] : labels) {
        const auto it = wins.find(index);
        scores.push_back(
            TargetScore{label, it == wins.end() ? 0 : it->second});
    }
    return scores;
}

} // namespace snail
