/**
 * @file
 * Resumable sweep runs: a JSON-lines checkpoint of completed points.
 *
 * The engine appends one line per computed point — content-addressed
 * cache key plus extracted metrics — flushing after every line, so a
 * killed sweep loses at most the points in flight.  On --resume the
 * file is loaded back into the TranspileCache before evaluation: every
 * checkpointed point becomes a cache hit and only unfinished points
 * are re-transpiled.  Because restoration goes through the cache key
 * (not a point index), a resumed run tolerates spec edits — points
 * whose content survived the edit are reused, new ones are computed.
 *
 * Robustness: a process killed mid-write leaves a truncated final
 * line; loading skips lines that fail to parse instead of failing the
 * resume.  Metric doubles round-trip exactly (shortestDouble), which
 * is what makes a resumed run's final report byte-identical to an
 * uninterrupted one.
 *
 * Line format:
 *
 *   {"circuit":"<hex>","target":"<hex>","pipeline":"<spec>",
 *    "seed":"<hex>","metrics":{...}}
 */

#ifndef SNAILQC_EXPLORE_CHECKPOINT_HPP
#define SNAILQC_EXPLORE_CHECKPOINT_HPP

#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "explore/transpile_cache.hpp"

namespace snail
{

/** @name JSON forms shared by the checkpoint and the reporters. */
/** @{ */

/** Metrics as a JSON object (fidelity included only when scored). */
JsonValue pointMetricsToJson(const PointMetrics &metrics);

/** Inverse of pointMetricsToJson. */
PointMetrics pointMetricsFromJson(const JsonValue &json);

/** The content key as rendered in a checkpoint line (hex fields). */
JsonValue cacheKeyToJson(const CacheKey &key);

/** Inverse of cacheKeyToJson. @throws on missing/garbled fields. */
CacheKey cacheKeyFromJson(const JsonValue &json);

/**
 * One complete checkpoint line (key + "metrics"), the unit shared by
 * CheckpointWriter, loadCheckpoint, and the sharded-sweep merge
 * (explore/shard.hpp) — sweep-merge fuses exactly these records.
 */
JsonValue checkpointLineToJson(const CacheKey &key,
                               const PointMetrics &metrics);

/** @} */

/**
 * Append-only, mutex-guarded JSONL checkpoint writer.  Opening with
 * `append` false truncates any previous checkpoint (a fresh run);
 * true continues one (a resumed run).
 */
class CheckpointWriter
{
  public:
    /** @throws SnailError when the file cannot be opened. */
    CheckpointWriter(const std::string &path, bool append);

    /** Write one completed point and flush. */
    void append(const CacheKey &key, const PointMetrics &metrics);

    /**
     * Write one pre-rendered line (no trailing newline) and flush —
     * the shard-header escape hatch (explore/shard.hpp), kept out of
     * the typed append() so ordinary point records stay schema-bound.
     */
    void appendRaw(const std::string &line);

    /**
     * True when the file already held bytes at open (append mode
     * only): a resumed run, whose header — if any — is already on
     * disk and must not be written again.
     */
    bool hadContent() const { return _had_content; }

    const std::string &path() const { return _path; }

  private:
    std::string _path;
    std::mutex _mutex;
    std::ofstream _out;
    bool _had_content = false;
};

/**
 * Load a checkpoint file into the cache; returns the number of points
 * restored.  A missing file restores nothing (first run of a --resume
 * invocation); malformed lines — e.g. the torn last line of a killed
 * run — are skipped, as are shard-header lines (explore/shard.hpp).
 * When `keys` is non-null every restored key is also appended to it,
 * so callers that own their checkpointing (the search driver) know
 * which points are already on disk.
 *
 * @throws DuplicatePointError when one key appears twice with
 *         conflicting metrics — two runs sharing a checkpoint path;
 *         byte-identical repeats (the benign race of two workers
 *         computing the same deterministic point) restore once.
 */
std::size_t loadCheckpoint(const std::string &path, TranspileCache &cache,
                           std::vector<CacheKey> *keys = nullptr);

} // namespace snail

#endif // SNAILQC_EXPLORE_CHECKPOINT_HPP
