#include "explore/checkpoint.hpp"

#include <map>

#include "common/error.hpp"
#include "common/hash.hpp"

namespace snail
{

namespace
{

unsigned long long
parseHex64(const std::string &text)
{
    return std::stoull(text, nullptr, 16);
}

} // namespace

JsonValue
cacheKeyToJson(const CacheKey &key)
{
    JsonValue::Object o;
    o["circuit"] = JsonValue(hex64(key.circuit_hash));
    o["target"] = JsonValue(hex64(key.target_hash));
    o["pipeline"] = JsonValue(key.pipeline);
    o["seed"] = JsonValue(hex64(key.seed));
    return JsonValue(std::move(o));
}

CacheKey
cacheKeyFromJson(const JsonValue &json)
{
    CacheKey key;
    key.circuit_hash = parseHex64(json.at("circuit").asString());
    key.target_hash = parseHex64(json.at("target").asString());
    key.pipeline = json.at("pipeline").asString();
    key.seed = parseHex64(json.at("seed").asString());
    return key;
}

JsonValue
checkpointLineToJson(const CacheKey &key, const PointMetrics &metrics)
{
    JsonValue line = cacheKeyToJson(key);
    line.object()["metrics"] = pointMetricsToJson(metrics);
    return line;
}

JsonValue
pointMetricsToJson(const PointMetrics &point)
{
    const TranspileMetrics &m = point.metrics;
    JsonValue::Object o;
    o["swaps_total"] = JsonValue(static_cast<double>(m.swaps_total));
    o["swaps_critical"] = JsonValue(m.swaps_critical);
    o["ops_2q_pre"] = JsonValue(static_cast<double>(m.ops_2q_pre));
    o["basis_2q_total"] = JsonValue(static_cast<double>(m.basis_2q_total));
    o["basis_2q_critical"] = JsonValue(m.basis_2q_critical);
    o["duration_total"] = JsonValue(m.duration_total);
    o["duration_critical"] = JsonValue(m.duration_critical);
    if (point.has_fidelity) {
        o["fidelity_predicted"] = JsonValue(point.fidelity_predicted);
    }
    return JsonValue(std::move(o));
}

PointMetrics
pointMetricsFromJson(const JsonValue &json)
{
    PointMetrics point;
    TranspileMetrics &m = point.metrics;
    m.swaps_total =
        static_cast<std::size_t>(json.at("swaps_total").asNumber());
    m.swaps_critical = json.at("swaps_critical").asNumber();
    m.ops_2q_pre =
        static_cast<std::size_t>(json.at("ops_2q_pre").asNumber());
    m.basis_2q_total =
        static_cast<std::size_t>(json.at("basis_2q_total").asNumber());
    m.basis_2q_critical = json.at("basis_2q_critical").asNumber();
    m.duration_total = json.at("duration_total").asNumber();
    m.duration_critical = json.at("duration_critical").asNumber();
    if (const JsonValue *fidelity = json.find("fidelity_predicted")) {
        point.fidelity_predicted = fidelity->asNumber();
        point.has_fidelity = true;
    }
    return point;
}

CheckpointWriter::CheckpointWriter(const std::string &path, bool append)
    : _path(path)
{
    // A run killed mid-write leaves a torn, newline-less final line;
    // appending straight after it would merge the next point into the
    // garbage.  Terminate it first so the torn line stays isolated
    // (and is skipped by loadCheckpoint) while new lines stay intact.
    bool needs_newline = false;
    if (append) {
        std::ifstream existing(path, std::ios::binary | std::ios::ate);
        if (existing.good() && existing.tellg() > 0) {
            _had_content = true;
            existing.seekg(-1, std::ios::end);
            needs_newline = existing.get() != '\n';
        }
    }
    _out.open(path, append ? std::ios::app : std::ios::trunc);
    SNAIL_REQUIRE(_out.good(),
                  "cannot open checkpoint file '" << path << "'");
    if (needs_newline) {
        _out << '\n';
    }
}

void
CheckpointWriter::append(const CacheKey &key, const PointMetrics &metrics)
{
    appendRaw(checkpointLineToJson(key, metrics).dump());
}

void
CheckpointWriter::appendRaw(const std::string &line)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _out << line << '\n';
    _out.flush();
    SNAIL_REQUIRE(_out.good(),
                  "write to checkpoint '" << _path << "' failed");
}

std::size_t
loadCheckpoint(const std::string &path, TranspileCache &cache,
               std::vector<CacheKey> *keys)
{
    std::ifstream in(path);
    if (!in.good()) {
        return 0;
    }
    std::size_t restored = 0;
    std::string line;
    // Duplicate-point guard: a key recorded twice with *different*
    // metrics means two writers shared this path (or the file was
    // corrupted) — silently keeping the last record would let one
    // writer's results shadow the other's, so that is a typed error.
    // Byte-identical repeats are the benign race of two workers
    // computing the same deterministic point; they restore once.
    std::map<CacheKey, std::string> seen;
    while (std::getline(in, line)) {
        if (line.empty()) {
            continue;
        }
        CacheKey key;
        std::string metrics_text;
        PointMetrics metrics;
        try {
            const JsonValue json = JsonValue::parse(line);
            if (json.isObject() && json.find("sweep_shard") != nullptr) {
                continue; // shard header (explore/shard.hpp), not a point
            }
            key = cacheKeyFromJson(json);
            const JsonValue &metrics_json = json.at("metrics");
            metrics = pointMetricsFromJson(metrics_json);
            metrics_text = metrics_json.dump();
        } catch (const std::exception &) {
            // Torn line from a killed run — skip it; the point will
            // simply be recomputed.
            continue;
        }
        const auto it = seen.find(key);
        if (it != seen.end()) {
            if (it->second != metrics_text) {
                throw DuplicatePointError(
                    cacheKeyToJson(key).dump(), path,
                    "conflicting metrics — two runs sharing one "
                    "checkpoint path?");
            }
            continue; // identical repeat: already restored
        }
        seen.emplace(key, std::move(metrics_text));
        cache.insert(key, metrics);
        if (keys != nullptr) {
            keys->push_back(std::move(key));
        }
        ++restored;
    }
    return restored;
}

} // namespace snail
