#include "explore/transpile_cache.hpp"

namespace snail
{

std::optional<PointMetrics>
TranspileCache::lookup(const CacheKey &key) const
{
    std::lock_guard<std::mutex> lock(_mutex);
    const auto it = _entries.find(key);
    if (it == _entries.end()) {
        ++_misses;
        return std::nullopt;
    }
    ++_hits;
    return it->second;
}

void
TranspileCache::insert(const CacheKey &key, const PointMetrics &metrics)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _entries[key] = metrics;
}

std::size_t
TranspileCache::size() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _entries.size();
}

std::size_t
TranspileCache::hits() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _hits;
}

std::size_t
TranspileCache::misses() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _misses;
}

} // namespace snail
