/**
 * @file
 * Distributed sweep sharding: split one logical sweep across N worker
 * processes and fuse their checkpoints back into one run.
 *
 * The explore engine made every sweep point order- and location-
 * independent (deterministic per-point seeds, content-addressed
 * cache), so distribution — in the spirit of Graphite spreading one
 * simulation across processes and hosts — reduces to a pure
 * partitioning problem.  A point's shard is a function of its content
 * key alone:
 *
 *   shard(point) = FNV-1a(circuit_hash, target_hash, pipeline, seed)
 *                  mod shard_count
 *
 * so the partition is stable under spec-entry reordering, independent
 * of thread count, and identical on every host (the FNV construction
 * is fixed; the only caveat is the seed derivation's std::hash, which
 * pins a partition to one stdlib exactly as it pins checkpoint keys —
 * engine.hpp).
 *
 * A sharded run (`snailqc sweep <spec> --shard i/N`) evaluates only
 * its own points and streams them to a shard-tagged JSONL checkpoint:
 * an ordinary engine checkpoint whose first line is a header record
 *
 *   {"sweep_shard":{"index":i,"count":N,"spec":"<name>",
 *                   "point_set":"0x<hex>","points":<total>}}
 *
 * where point_set is an order-independent fingerprint of the FULL
 * expansion (the wrapping sum of every point's content hash), i.e. a
 * spec-identity check that survives spec-entry permutations.
 *
 * `snailqc sweep-merge <spec> --shards <files>` re-expands the spec
 * locally, fuses the shard checkpoints, and validates exactly-once
 * coverage: a point in no shard is a ShardCoverageError, a point in
 * two shards (or twice with different metrics) a DuplicatePointError,
 * a record outside the expansion a ForeignPointError, and a header
 * from another spec a ShardHeaderError — each naming the offending
 * point or file.  A validated merge rebuilds the SweepRun, whose
 * CSV/JSON reports are byte-identical to a single-process run's
 * (metric doubles round-trip exactly through the checkpoint; the
 * reporters are deterministic functions of points + metrics).
 */

#ifndef SNAILQC_EXPLORE_SHARD_HPP
#define SNAILQC_EXPLORE_SHARD_HPP

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "explore/engine.hpp"

namespace snail
{

/** Which slice of the point set a worker owns: index in [0, count). */
struct ShardSlice
{
    unsigned index = 0;
    unsigned count = 1;
};

/**
 * Parse a "--shard i/N" argument (0-based index).
 * @throws SnailError on malformed text, N < 1, or index >= N.
 */
ShardSlice parseShardSlice(const std::string &text);

/** Content hash of one point: the shard function's domain. */
unsigned long long pointContentHash(const CacheKey &key);

/** The shard owning `key` under an N-way partition. */
unsigned shardOf(const CacheKey &key, unsigned shard_count);

/**
 * Order-independent fingerprint of a point set (wrapping sum of the
 * per-point content hashes — a sum, not an XOR, so duplicated points
 * do not cancel out).  Two expansions of one spec — however its
 * entries are permuted — agree; any content difference disagrees.
 */
unsigned long long pointSetHash(const std::vector<CacheKey> &keys);

/**
 * Content keys for expanded sweep points, in expansion order: the
 * exact keys evaluateJobs derives, factored out so sharding and merge
 * validation address points identically to the engine.
 */
std::vector<CacheKey>
sweepPointKeys(const std::vector<SweepPoint> &points,
               const std::vector<CircuitInstance> &circuits,
               const std::vector<Target> &targets);

/** The shard-checkpoint header record (see file comment). */
struct ShardHeader
{
    ShardSlice shard;
    std::string spec_name;
    unsigned long long point_set_hash = 0; //!< of the FULL expansion
    std::size_t total_points = 0;          //!< full expansion size
};

/** The header as its JSONL line value. */
JsonValue shardHeaderToJson(const ShardHeader &header);

/** Parse one JSONL line; nullopt when it is not a header record. */
std::optional<ShardHeader> shardHeaderFromLine(const std::string &line);

/**
 * The first-line header of a checkpoint file, if the file exists and
 * starts with one (plain engine checkpoints and torn files yield
 * nullopt — headerless checkpoints stay mergeable and resumable).
 */
std::optional<ShardHeader> readShardHeader(const std::string &path);

/**
 * Expand a mixed list of checkpoint files and directories into the
 * shard-file list: directories contribute every *.jsonl inside them
 * (lexicographically sorted); files are taken as given.
 * @throws SnailError for a missing path or a directory holding no
 *         .jsonl checkpoints.
 */
std::vector<std::string>
expandShardFiles(const std::vector<std::string> &paths);

/** Merge accounting, for the CLI's summary line. */
struct ShardMergeStats
{
    std::size_t shard_files = 0; //!< checkpoints fused
    std::size_t records = 0;     //!< point records restored
    std::size_t headers = 0;     //!< shard headers seen (and validated)
};

/**
 * Fuse shard checkpoints into the run a single process would have
 * produced: re-expand `spec`, validate every expanded point is
 * covered exactly once, and return the reconstructed SweepRun (its
 * CSV/JSON reports are byte-identical to an uninterrupted
 * single-process run's).  Torn trailing lines are skipped exactly as
 * on --resume, so a killed-and-resumed shard merges cleanly; a killed
 * and *not* resumed shard surfaces as missing points.
 *
 * @throws ShardHeaderError    a header from a different spec
 * @throws ForeignPointError   a record outside the expansion
 * @throws DuplicatePointError a point in two shard files, or twice
 *                             with conflicting metrics in one file
 * @throws ShardCoverageError  an expanded point in no shard file
 */
SweepRun mergeSweepShards(const SweepSpec &spec,
                          const std::vector<std::string> &shard_files,
                          ShardMergeStats *stats = nullptr);

} // namespace snail

#endif // SNAILQC_EXPLORE_SHARD_HPP
