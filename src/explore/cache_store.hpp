/**
 * @file
 * Persistent on-disk store behind the content-addressed caches.
 *
 * The in-memory TranspileCache dies with its process; a serving
 * deployment (`snailqc serve`) and repeated sweep runs want transpile
 * work to survive restarts.  A CacheStore maps the existing cache key
 *
 *   (Circuit::contentHash, Target::contentHash, pipeline spec, seed)
 *
 * to an opaque payload string (the explore engine stores PointMetrics
 * JSON; the serve daemon stores full serialized TranspileResults) as
 * one file per entry under a cache directory:
 *
 *   <dir>/e-<circuit>-<target>-<pipeline-hash>-<seed>.json
 *
 * Entry files carry a magic tag, the full key (including the verbatim
 * pipeline spec, which the filename only hashes), and an FNV-1a
 * checksum of the payload.  fetch() re-validates all three, so a
 * torn write, a truncated file, or bit rot degrades to a miss that is
 * recomputed and rewritten — never a crash, never a wrong answer.
 *
 * Durability and concurrency: store() writes to a process-unique temp
 * file and renames it into place (atomic on POSIX), so concurrent
 * writers — threads of one daemon or entirely separate processes
 * sharing the directory — can only ever race to publish identical
 * content (the key is fully deterministic).  Readers that lose a race
 * with eviction simply miss.
 *
 * Eviction: the store is LRU with a byte budget.  An index kept in
 * memory (seeded from file mtimes at startup, refreshed on every
 * fetch/store) orders entries by recency; store() first rescans the
 * directory — other processes sharing it may have added or removed
 * entries since our index last looked, and evicting against a stale
 * byte count would let the directory outgrow the budget — then evicts
 * least-recently-used files until the directory fits it.
 * Hit/miss/eviction counters feed the daemon's `stats` response.
 */

#ifndef SNAILQC_EXPLORE_CACHE_STORE_HPP
#define SNAILQC_EXPLORE_CACHE_STORE_HPP

#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "explore/transpile_cache.hpp"

namespace snail
{

/** Counter snapshot surfaced through `snailqc serve` stats. */
struct CacheStoreStats
{
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t evictions = 0;
    std::size_t entries = 0;          //!< files currently indexed
    unsigned long long bytes = 0;     //!< total indexed payload bytes
    unsigned long long max_bytes = 0; //!< eviction budget
};

/** Size-bounded LRU file store of content-addressed payloads. */
class CacheStore
{
  public:
    /** Default eviction budget: 256 MiB. */
    static constexpr unsigned long long kDefaultMaxBytes =
        256ULL * 1024 * 1024;

    /**
     * Open (creating if needed) the store at `dir` with the given
     * byte budget.  Scans existing entries so recency survives
     * restarts (mtime order).
     * @throws SnailError when the directory cannot be created.
     */
    explicit CacheStore(std::string dir,
                        unsigned long long max_bytes = kDefaultMaxBytes);

    /**
     * The payload stored for `key`, or nullopt.  Corrupt, truncated,
     * or mismatched entry files are deleted and reported as misses.
     */
    std::optional<std::string> fetch(const CacheKey &key);

    /**
     * Persist `payload` for `key` (overwriting any previous entry),
     * re-sync the index with the directory's actual contents (other
     * processes may share it), then evict least-recently-used entries
     * while the store exceeds its budget.  I/O failures (disk full,
     * permissions) leave the store consistent and are swallowed: the
     * cache is an accelerator, not a source of truth.
     */
    void store(const CacheKey &key, const std::string &payload);

    CacheStoreStats stats() const;

    const std::string &directory() const { return _dir; }

    /**
     * $SNAILQC_CACHE_DIR when set, else ~/.cache/snailqc (via $HOME),
     * else /tmp/snailqc-cache.
     */
    static std::string defaultDirectory();

    /** The entry filename for a key (relative to the directory). */
    static std::string entryName(const CacheKey &key);

  private:
    struct Entry
    {
        unsigned long long bytes = 0;
        unsigned long long tick = 0; //!< larger = more recently used
    };

    std::string entryPath(const std::string &name) const;
    void touchLocked(const std::string &name, unsigned long long bytes);
    void forgetLocked(const std::string &name);
    void rescanLocked();
    void evictLocked();

    mutable std::mutex _mutex;
    std::string _dir;
    unsigned long long _max_bytes;
    unsigned long long _tick = 0;
    std::map<std::string, Entry> _entries; //!< filename -> accounting
    unsigned long long _bytes = 0;
    std::size_t _hits = 0;
    std::size_t _misses = 0;
    std::size_t _evictions = 0;
};

} // namespace snail

#endif // SNAILQC_EXPLORE_CACHE_STORE_HPP
