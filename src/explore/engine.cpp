#include "explore/engine.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <ostream>
#include <unordered_map>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/json.hpp"
#include "common/thread_pool.hpp"
#include "explore/checkpoint.hpp"
#include "explore/shard.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "transpiler/pass_registry.hpp"

namespace snail
{

namespace
{

/**
 * Content hashes memoized by object identity: each circuit and target
 * is shared by many points, and hashing an 84-qubit QV circuit per
 * point would needlessly serialize the fan-out prologue.
 */
template <typename T>
class HashMemo
{
  public:
    unsigned long long
    of(const T *object)
    {
        const auto it = _known.find(object);
        if (it != _known.end()) {
            return it->second;
        }
        const unsigned long long hash = object->contentHash();
        _known.emplace(object, hash);
        return hash;
    }

  private:
    std::unordered_map<const T *, unsigned long long> _known;
};

PointMetrics
extractPointMetrics(const TranspileResult &result)
{
    PointMetrics point;
    point.metrics = result.metrics;
    if (result.properties.contains("fidelity_predicted")) {
        point.fidelity_predicted =
            result.properties.get("fidelity_predicted");
        point.has_fidelity = true;
    }
    return point;
}

} // namespace

std::vector<PointMetrics>
evaluateJobs(const std::vector<ExploreJob> &jobs, TranspileCache &cache,
             const EngineOptions &options, EvaluationStats *stats)
{
    EvaluationStats local;

    if (options.resume && !options.checkpoint_path.empty()) {
        local.restored = loadCheckpoint(options.checkpoint_path, cache);
    }
    std::unique_ptr<CheckpointWriter> checkpoint;
    if (!options.checkpoint_path.empty()) {
        checkpoint = std::make_unique<CheckpointWriter>(
            options.checkpoint_path, options.resume);
        // Shard header (or any caller-supplied prologue): first line
        // of a fresh file; a resumed file already carries its own.
        if (!options.checkpoint_header.empty() &&
            !checkpoint->hadContent()) {
            checkpoint->appendRaw(options.checkpoint_header);
        }
    }

    // Keys are precomputed serially: hashing is cheap next to a
    // transpile, and the memo avoids redundant rehashing of shared
    // circuits/targets.
    HashMemo<Circuit> circuit_hashes;
    HashMemo<Target> target_hashes;
    std::vector<CacheKey> keys;
    keys.reserve(jobs.size());
    for (const ExploreJob &job : jobs) {
        SNAIL_REQUIRE(job.circuit && job.target && job.pipeline,
                      "evaluateJobs: job with null circuit/target/"
                      "pipeline");
        CacheKey key;
        key.circuit_hash = circuit_hashes.of(job.circuit);
        key.target_hash = target_hashes.of(job.target);
        key.pipeline = job.pipeline_spec.empty() ? job.pipeline->spec()
                                                 : job.pipeline_spec;
        key.seed = job.seed;
        keys.push_back(std::move(key));
        // Workers share Target pointers and the lazy distance-oracle
        // build is not thread-safe; force it serially here.
        job.target->graph().ensureDistanceOracle();
    }

    std::vector<PointMetrics> results(jobs.size());
    std::atomic<std::size_t> computed{0};
    std::atomic<std::size_t> from_cache{0};
    std::atomic<std::size_t> from_store{0};
    std::mutex progress_mutex;
    MetricsRegistry &registry = MetricsRegistry::global();
    Counter &points_total =
        registry.counter("snailqc_explore_points_total");
    Counter &points_computed =
        registry.counter("snailqc_explore_points_computed_total");
    Counter &points_cached =
        registry.counter("snailqc_explore_points_from_cache_total");
    Counter &points_stored =
        registry.counter("snailqc_explore_points_from_store_total");
    Histogram &point_us =
        registry.histogram("snailqc_explore_point_us");
    parallelFor(jobs.size(), options.threads, [&](std::size_t i) {
        const ExploreJob &job = jobs[i];
        ScopedSpan span("explore:point", "explore");
        ScopedLatency latency(point_us);
        points_total.add();
        if (const auto cached = cache.lookup(keys[i])) {
            results[i] = *cached;
            from_cache.fetch_add(1);
            points_cached.add();
            return;
        }
        // Second chance: the persistent store may hold the point from
        // an earlier run or another process.  Corrupt entries come
        // back as nullopt (or fail to parse) and are recomputed.
        if (options.cache_store) {
            if (const auto stored = options.cache_store->fetch(keys[i])) {
                try {
                    results[i] =
                        pointMetricsFromJson(JsonValue::parse(*stored));
                    cache.insert(keys[i], results[i]);
                    from_store.fetch_add(1);
                    points_stored.add();
                    if (checkpoint) {
                        checkpoint->append(keys[i], results[i]);
                    }
                    return;
                } catch (const std::exception &) {
                    // fall through to a fresh transpile
                }
            }
        }
        if (options.progress && !job.label.empty()) {
            std::lock_guard<std::mutex> lock(progress_mutex);
            *options.progress << "  [sweep] " << job.label << "\n";
        }
        const TranspileResult result =
            job.pipeline->run(*job.circuit, *job.target, job.seed);
        results[i] = extractPointMetrics(result);
        cache.insert(keys[i], results[i]);
        computed.fetch_add(1);
        points_computed.add();
        if (checkpoint) {
            checkpoint->append(keys[i], results[i]);
        }
        if (options.cache_store) {
            options.cache_store->store(
                keys[i], pointMetricsToJson(results[i]).dump());
        }
    });

    local.computed = computed.load();
    local.from_cache = from_cache.load();
    local.from_store = from_store.load();
    if (stats) {
        *stats = local;
    }
    return results;
}

std::vector<SweepPoint>
expandSweepPoints(const SweepSpec &spec,
                  const std::vector<CircuitInstance> &circuits,
                  const std::vector<Target> &targets)
{
    std::vector<SweepPoint> points;
    for (std::size_t ci = 0; ci < circuits.size(); ++ci) {
        const CircuitInstance &circuit = circuits[ci];
        for (std::size_t ti = 0; ti < targets.size(); ++ti) {
            const Target &target = targets[ti];
            if (circuit.width < 2 ||
                circuit.width > target.numQubits()) {
                continue; // the legacy sweep's skip rule
            }
            for (std::size_t pi = 0; pi < spec.pipelines.size(); ++pi) {
                SweepPoint point;
                point.circuit_index = ci;
                point.target_index = ti;
                point.pipeline_index = pi;
                point.circuit_label = circuit.label;
                point.target_label = target.name();
                point.pipeline = spec.pipelines[pi];
                point.width = circuit.width;
                // The legacy codesign::Experiment per-cell derivation:
                // independent yet reproducible points.  std::hash is
                // deliberate — bit-identity with the pre-engine paper
                // series pins this exact formula — so seeds (and with
                // them checkpoint keys) are stable per stdlib, not
                // across stdlibs; a checkpoint resumed under a
                // different stdlib just recomputes.
                point.seed =
                    spec.seed ^
                    (static_cast<unsigned long long>(circuit.width)
                     << 32) ^
                    std::hash<std::string>{}(target.name()) ^
                    circuit.salt;
                points.push_back(std::move(point));
            }
        }
    }
    return points;
}

SweepRun
runSweep(const SweepSpec &spec, const EngineOptions &options)
{
    SweepRun run;
    run.spec = spec;

    const std::vector<Target> targets = expandTargets(spec);
    int max_width = 0;
    for (const Target &target : targets) {
        max_width = std::max(max_width, target.numQubits());
    }
    const std::vector<CircuitInstance> circuits =
        expandCircuits(spec, max_width);
    std::vector<PassManager> pipelines;
    pipelines.reserve(spec.pipelines.size());
    for (const std::string &pipeline : spec.pipelines) {
        pipelines.push_back(passManagerFromSpec(pipeline));
    }

    run.points = expandSweepPoints(spec, circuits, targets);
    SNAIL_REQUIRE(!run.points.empty(),
                  "sweep '" << spec.name
                            << "' expands to no points (every width "
                               "exceeds its targets?)");
    run.keys = sweepPointKeys(run.points, circuits, targets);
    run.total_points = run.points.size();
    run.point_set_hash = pointSetHash(run.keys);
    run.shard_index = options.shard_index;
    run.shard_count = options.shard_count;

    EngineOptions engine_options = options;
    if (options.shard_count > 1) {
        SNAIL_REQUIRE(options.shard_index < options.shard_count,
                      "shard index " << options.shard_index
                                     << " out of range for "
                                     << options.shard_count << " shards");
        // Keep only this shard's slice of the expansion.  The shard
        // function sees content only, so the slice is identical no
        // matter how the spec's entries are ordered or which host
        // evaluates it (shard.hpp).
        std::vector<SweepPoint> mine;
        std::vector<CacheKey> mine_keys;
        for (std::size_t i = 0; i < run.points.size(); ++i) {
            if (shardOf(run.keys[i], options.shard_count) ==
                options.shard_index) {
                mine.push_back(std::move(run.points[i]));
                mine_keys.push_back(std::move(run.keys[i]));
            }
        }
        run.points = std::move(mine);
        run.keys = std::move(mine_keys);
        MetricsRegistry::global()
            .counter("snailqc_sweep_shard_points_total")
            .add(run.points.size());

        ShardHeader header;
        header.shard.index = options.shard_index;
        header.shard.count = options.shard_count;
        header.spec_name = spec.name;
        header.point_set_hash = run.point_set_hash;
        header.total_points = run.total_points;
        engine_options.checkpoint_header =
            shardHeaderToJson(header).dump();

        // Resuming onto some other shard's (or sweep's) checkpoint
        // would silently re-route its points through the cache; fail
        // loudly instead.
        if (options.resume && !options.checkpoint_path.empty()) {
            if (const auto existing =
                    readShardHeader(options.checkpoint_path)) {
                if (existing->shard.index != options.shard_index ||
                    existing->shard.count != options.shard_count ||
                    existing->point_set_hash != run.point_set_hash) {
                    throw ShardHeaderError(
                        options.checkpoint_path,
                        "holds shard " +
                            std::to_string(existing->shard.index) + "/" +
                            std::to_string(existing->shard.count) +
                            " of spec '" + existing->spec_name +
                            "' (point set " +
                            hex64(existing->point_set_hash) +
                            "); this run is shard " +
                            std::to_string(options.shard_index) + "/" +
                            std::to_string(options.shard_count) +
                            " of '" + spec.name + "' (point set " +
                            hex64(run.point_set_hash) + ")");
                }
            }
        }
    }

    std::vector<ExploreJob> jobs;
    jobs.reserve(run.points.size());
    for (const SweepPoint &point : run.points) {
        ExploreJob job;
        job.circuit = &circuits[point.circuit_index].circuit;
        job.target = &targets[point.target_index];
        job.pipeline = &pipelines[point.pipeline_index];
        job.pipeline_spec = point.pipeline;
        job.seed = point.seed;
        if (options.progress) {
            job.label = point.circuit_label + " w" +
                        std::to_string(point.width) + " on " +
                        point.target_label + " [" + point.pipeline + "]";
        }
        jobs.push_back(std::move(job));
    }

    TranspileCache cache;
    run.metrics = evaluateJobs(jobs, cache, engine_options, &run.stats);
    run.cache_hits = cache.hits();
    run.cache_misses = cache.misses();
    return run;
}

} // namespace snail
