/**
 * @file
 * Design-space analysis over completed sweeps: metric selection by
 * name, the per-workload winner table, the architecture scoreboard,
 * and the Pareto frontier of non-dominated machines.
 *
 * This is the "pick the architecture that wins" half of the paper's
 * co-design loop: after the engine fills in every (circuit, target,
 * pipeline) point, these helpers answer which machine wins each
 * workload outright, how often each machine wins overall, and which
 * machines survive multi-objective comparison (no other machine at
 * least as good on every objective and strictly better on one).
 */

#ifndef SNAILQC_EXPLORE_ANALYSIS_HPP
#define SNAILQC_EXPLORE_ANALYSIS_HPP

#include <string>
#include <vector>

#include "explore/engine.hpp"

namespace snail
{

/**
 * Metric of a point by name: any TranspileMetrics field
 * ("swaps_total", "swaps_critical", "ops_2q_pre", "basis_2q_total",
 * "basis_2q_critical", "duration_total", "duration_critical") or
 * "fidelity_predicted" (requires a score-fidelity pipeline).
 * @throws SnailError for unknown names, and for fidelity on a point
 *         that never scored it.
 */
double pointMetricValue(const PointMetrics &point,
                        const std::string &metric);

/** All metric names pointMetricValue accepts, in report order. */
std::vector<std::string> pointMetricNames();

/**
 * True when `metric` is meaningful on this point — always, except
 * "fidelity_predicted" on a point whose pipeline never scored it.
 * @throws SnailError for unknown metric names.
 */
bool pointHasMetric(const PointMetrics &point, const std::string &metric);

/** One optimization objective for Pareto comparison. */
struct Objective
{
    std::string metric;    //!< pointMetricValue name
    bool maximize = false; //!< default: smaller is better
};

/**
 * Indices (into run.points) of points on the Pareto frontier of their
 * workload group.  Points compete within one (circuit, pipeline)
 * group — same workload, same compilation strategy, different
 * machines — and survive when no other point of the group dominates
 * them on `objectives`.  Returned sorted ascending.
 */
std::vector<std::size_t> paretoFrontier(
    const SweepRun &run, const std::vector<Objective> &objectives);

/** The winning point of one workload group. */
struct WorkloadWinner
{
    std::string circuit_label;
    int width = 0;
    std::string pipeline;
    std::size_t point_index = 0; //!< into run.points
    double value = 0.0;          //!< the winning metric value
};

/**
 * Best target per (circuit, pipeline) group on one metric, in group
 * expansion order.  Ties go to the earlier target (spec order).
 * Points on which `metric` is undefined (pointHasMetric) do not
 * compete, and groups where no point defines it are omitted — so
 * "fidelity_predicted" over a mix of scoring and non-scoring
 * pipelines ranks just the scored groups instead of failing.
 */
std::vector<WorkloadWinner> winnersPerWorkload(const SweepRun &run,
                                               const std::string &metric,
                                               bool maximize = false);

/** Wins per target label, for the scoreboard (spec target order). */
struct TargetScore
{
    std::string target_label;
    std::size_t wins = 0;
};

/**
 * Aggregate winnersPerWorkload into per-target win counts.  Covers
 * every target hosting at least one point (zero-win rows included);
 * targets whose every width was skipped have no points and no row.
 */
std::vector<TargetScore> targetScoreboard(
    const SweepRun &run, const std::vector<WorkloadWinner> &winners);

} // namespace snail

#endif // SNAILQC_EXPLORE_ANALYSIS_HPP
