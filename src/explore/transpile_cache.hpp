/**
 * @file
 * Content-addressed transpile cache for the exploration engine.
 *
 * A sweep point is fully determined by (circuit, target, pipeline,
 * seed) — the transpiler's determinism contract (pass.hpp) — so its
 * metrics can be addressed by the tuple
 *
 *   (Circuit::contentHash, Target::contentHash, pipeline spec, seed)
 *
 * and reused: duplicate points inside one sweep hit the in-memory map,
 * and checkpointed points from an interrupted run are re-loaded into
 * it on --resume (explore/checkpoint.hpp), so only unfinished points
 * are ever re-transpiled.  The cache stores the extracted PointMetrics
 * rather than whole TranspileResults: a routed 84-qubit circuit is
 * orders of magnitude heavier than the handful of doubles a
 * design-space study actually compares.
 *
 * Thread safety: lookup/insert are mutex-guarded; the engine calls
 * them from pool workers.  Two workers computing the same key
 * concurrently both insert — harmless, since determinism makes their
 * values identical.
 */

#ifndef SNAILQC_EXPLORE_TRANSPILE_CACHE_HPP
#define SNAILQC_EXPLORE_TRANSPILE_CACHE_HPP

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <tuple>

#include "transpiler/pass_manager.hpp"

namespace snail
{

/** Content address of one sweep point. */
struct CacheKey
{
    unsigned long long circuit_hash = 0;
    unsigned long long target_hash = 0;
    std::string pipeline;
    unsigned long long seed = 0;

    bool
    operator<(const CacheKey &o) const
    {
        return std::tie(circuit_hash, target_hash, pipeline, seed) <
               std::tie(o.circuit_hash, o.target_hash, o.pipeline, o.seed);
    }

    bool
    operator==(const CacheKey &o) const
    {
        return circuit_hash == o.circuit_hash &&
               target_hash == o.target_hash && pipeline == o.pipeline &&
               seed == o.seed;
    }
};

/** The per-point data a design-space study compares. */
struct PointMetrics
{
    TranspileMetrics metrics; //!< the paper's Fig. 10 collection points
    /** "score-fidelity" prediction; meaningful iff has_fidelity. */
    double fidelity_predicted = 0.0;
    bool has_fidelity = false;
};

/** Thread-safe content-addressed PointMetrics store. */
class TranspileCache
{
  public:
    /** The cached metrics for `key`, counting a hit or miss. */
    std::optional<PointMetrics> lookup(const CacheKey &key) const;

    /** Store (or overwrite) the metrics for `key`. */
    void insert(const CacheKey &key, const PointMetrics &metrics);

    std::size_t size() const;
    std::size_t hits() const;
    std::size_t misses() const;

  private:
    mutable std::mutex _mutex;
    std::map<CacheKey, PointMetrics> _entries;
    mutable std::size_t _hits = 0;
    mutable std::size_t _misses = 0;
};

} // namespace snail

#endif // SNAILQC_EXPLORE_TRANSPILE_CACHE_HPP
