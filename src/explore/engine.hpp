/**
 * @file
 * The design-space exploration engine.
 *
 * The paper's central loop — transpile every workload onto every
 * candidate machine and compare the metrics — generalized into a
 * reusable subsystem.  A declarative SweepSpec (sweep_spec.hpp) names
 * the circuits x targets x pipelines cross-product; the engine
 * expands it into points, evaluates them on the shared work-stealing
 * pool (common/thread_pool.hpp), serves repeats from the
 * content-addressed TranspileCache, streams completed points to a
 * JSONL checkpoint for resumability (checkpoint.hpp), and returns the
 * metrics in deterministic point order.
 *
 * Determinism: every point's randomness derives from its own seed
 *
 *   spec.seed ^ (width << 32) ^ std::hash(target label) ^ circuit salt
 *
 * — exactly the legacy codesign::Experiment derivation, which is what
 * lets a spec over the fig-13 machines regenerate the paper series
 * bit for bit — so results are identical at any thread count and the
 * sequential layers (codesign/experiment.hpp, the fig benches) are
 * thin clients of evaluateJobs().
 */

#ifndef SNAILQC_EXPLORE_ENGINE_HPP
#define SNAILQC_EXPLORE_ENGINE_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "explore/cache_store.hpp"
#include "explore/sweep_spec.hpp"
#include "explore/transpile_cache.hpp"

namespace snail
{

/** One fully-resolved unit of work (pointers owned by the caller). */
struct ExploreJob
{
    const Circuit *circuit = nullptr;
    const Target *target = nullptr;
    const PassManager *pipeline = nullptr;
    /** Cache-key pipeline string; pipeline->spec() when empty. */
    std::string pipeline_spec;
    unsigned long long seed = kDefaultSweepSeed;
    /** Display label for progress notes; "" stays silent. */
    std::string label;
};

/** Evaluation configuration. */
struct EngineOptions
{
    unsigned threads = 0;        //!< 0 = hardware concurrency
    std::string checkpoint_path; //!< "" disables checkpointing
    /** Preload the checkpoint (and append to it) instead of truncating. */
    bool resume = false;
    /**
     * Live progress notes: each labelled job prints one line here as
     * a worker picks it up (nullptr stays silent).
     */
    std::ostream *progress = nullptr;
    /**
     * Persistent content-addressed store (cache_store.hpp), shared
     * across runs and processes: misses in the in-memory cache are
     * looked up here before transpiling, and every computed point is
     * written back.  nullptr keeps the sweep memory-only (the
     * caller owns the store; `snailqc sweep --cache-dir` wires one).
     */
    CacheStore *cache_store = nullptr;
    /**
     * Shard slice honored by runSweep (`sweep --shard i/N`,
     * explore/shard.hpp): with shard_count > 1 only the points whose
     * content hash maps to shard_index are evaluated, and the
     * checkpoint is tagged with a shard header.  The default 0/1 runs
     * the whole sweep.  evaluateJobs ignores these — callers passing
     * raw job lists own their own partitioning.
     */
    unsigned shard_index = 0;
    unsigned shard_count = 1;
    /**
     * Pre-rendered JSONL line written as the first line of a *fresh*
     * checkpoint (or one resumed from an empty/missing file); ""
     * writes nothing.  runSweep uses it for the shard header — it is
     * an engine option so evaluateJobs, which owns the writer, places
     * it before any point record.
     */
    std::string checkpoint_header;
};

/** What the evaluation did, for reporting. */
struct EvaluationStats
{
    std::size_t computed = 0;   //!< points actually transpiled
    std::size_t from_cache = 0; //!< served from cache (incl. resume)
    std::size_t restored = 0;   //!< checkpoint lines loaded on resume
    std::size_t from_store = 0; //!< served from the persistent store
};

/**
 * Evaluate every job, fanning them across the pool.  Results come
 * back in job order and are bit-identical at any thread count.  The
 * caller supplies the cache so it can span calls (or preload it);
 * checkpointing per EngineOptions.  The first job exception is
 * rethrown after all workers finish.
 */
std::vector<PointMetrics>
evaluateJobs(const std::vector<ExploreJob> &jobs, TranspileCache &cache,
             const EngineOptions &options, EvaluationStats *stats = nullptr);

/** One expanded point of a spec-level sweep. */
struct SweepPoint
{
    std::size_t circuit_index = 0;  //!< into expandCircuits(spec)
    std::size_t target_index = 0;   //!< into expandTargets(spec)
    std::size_t pipeline_index = 0; //!< into spec.pipelines
    std::string circuit_label;
    std::string target_label;
    std::string pipeline;
    int width = 0;
    unsigned long long seed = 0;
};

/** A completed sweep: points and metrics in expansion order. */
struct SweepRun
{
    SweepSpec spec;
    std::vector<SweepPoint> points;
    std::vector<PointMetrics> metrics; //!< parallel to `points`
    /** Content addresses, parallel to `points` (explore/shard.hpp). */
    std::vector<CacheKey> keys;
    EvaluationStats stats;
    std::size_t cache_hits = 0;
    std::size_t cache_misses = 0;
    /** @name Shard provenance (defaults describe a whole-sweep run). */
    /** @{ */
    /** Order-independent fingerprint of the FULL expansion. */
    unsigned long long point_set_hash = 0;
    std::size_t total_points = 0; //!< full expansion size, pre-filter
    unsigned shard_index = 0;
    unsigned shard_count = 1;
    /** @} */
};

/**
 * Expand a spec into its point list without evaluating anything:
 * circuits outermost, then targets, then pipelines — the legacy sweep
 * nesting — skipping widths the target cannot host (width < 2 or
 * width > qubits), with seeds derived per the rule above.
 */
std::vector<SweepPoint> expandSweepPoints(
    const SweepSpec &spec, const std::vector<CircuitInstance> &circuits,
    const std::vector<Target> &targets);

/**
 * Expand and evaluate a declarative sweep.
 * @throws SnailError for specs whose expansion is empty (every width
 *         skipped) or whose pipelines fail to parse.
 */
SweepRun runSweep(const SweepSpec &spec, const EngineOptions &options);

} // namespace snail

#endif // SNAILQC_EXPLORE_ENGINE_HPP
