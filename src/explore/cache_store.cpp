#include "explore/cache_store.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#ifdef _WIN32
#include <process.h>
#define SNAILQC_GETPID _getpid
#else
#include <unistd.h>
#define SNAILQC_GETPID getpid
#endif

namespace fs = std::filesystem;

namespace snail
{

namespace
{

constexpr const char *kMagic = "snailqc-cache-v1";

/** Fixed-width lowercase hex (filenames need uniform sortable width). */
std::string
hex16(unsigned long long value)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[value & 0xF];
        value >>= 4;
    }
    return out;
}

unsigned long long
payloadChecksum(const std::string &payload)
{
    ContentHasher hasher;
    hasher.str(payload);
    return hasher.value();
}

/** Registry handles for the persistent-store series (stable refs). */
struct CacheObs
{
    Counter &hits;
    Counter &misses;
    Counter &evictions;
    Counter &stores;
    Histogram &fetch_us;
    Histogram &store_us;

    static CacheObs &
    get()
    {
        MetricsRegistry &r = MetricsRegistry::global();
        static CacheObs obs{
            r.counter("snailqc_cache_hits_total"),
            r.counter("snailqc_cache_misses_total"),
            r.counter("snailqc_cache_evictions_total"),
            r.counter("snailqc_cache_stores_total"),
            r.histogram("snailqc_cache_fetch_us"),
            r.histogram("snailqc_cache_store_us"),
        };
        return obs;
    }
};

/** Whole-file read; nullopt on any I/O problem. */
std::optional<std::string>
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in.good()) {
        return std::nullopt;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (in.bad()) {
        return std::nullopt;
    }
    return buffer.str();
}

} // namespace

std::string
CacheStore::entryName(const CacheKey &key)
{
    ContentHasher pipeline_hash;
    pipeline_hash.str(key.pipeline);
    return "e-" + hex16(key.circuit_hash) + "-" + hex16(key.target_hash) +
           "-" + hex16(pipeline_hash.value()) + "-" + hex16(key.seed) +
           ".json";
}

std::string
CacheStore::defaultDirectory()
{
    if (const char *env = std::getenv("SNAILQC_CACHE_DIR")) {
        if (*env != '\0') {
            return env;
        }
    }
    if (const char *home = std::getenv("HOME")) {
        if (*home != '\0') {
            return std::string(home) + "/.cache/snailqc";
        }
    }
    return "/tmp/snailqc-cache";
}

CacheStore::CacheStore(std::string dir, unsigned long long max_bytes)
    : _dir(std::move(dir)), _max_bytes(max_bytes)
{
    std::error_code ec;
    fs::create_directories(_dir, ec);
    SNAIL_REQUIRE(!ec && fs::is_directory(_dir, ec),
                  "cannot create cache directory '" << _dir << "'");

    // Seed the LRU index from the directory: mtime order approximates
    // the recency a previous process observed.
    struct Found
    {
        std::string name;
        unsigned long long bytes;
        fs::file_time_type mtime;
    };
    std::vector<Found> found;
    for (const auto &item : fs::directory_iterator(_dir, ec)) {
        if (ec) {
            break;
        }
        std::error_code item_ec;
        if (!item.is_regular_file(item_ec)) {
            continue;
        }
        const std::string name = item.path().filename().string();
        if (name.rfind("e-", 0) != 0 ||
            name.find(".json") == std::string::npos) {
            continue;
        }
        if (name.size() < 5 || name.substr(name.size() - 5) != ".json") {
            continue; // leftover .tmp<pid> from a killed writer
        }
        Found entry;
        entry.name = name;
        entry.bytes = static_cast<unsigned long long>(
            item.file_size(item_ec));
        entry.mtime = item.last_write_time(item_ec);
        if (!item_ec) {
            found.push_back(std::move(entry));
        }
    }
    std::sort(found.begin(), found.end(),
              [](const Found &a, const Found &b) {
                  return a.mtime < b.mtime ||
                         (a.mtime == b.mtime && a.name < b.name);
              });
    for (const Found &entry : found) {
        _entries[entry.name] = Entry{entry.bytes, ++_tick};
        _bytes += entry.bytes;
    }

    // Pre-create the registry series so a metrics snapshot taken
    // before any traffic already exports them (at zero).
    CacheObs::get();
}

std::string
CacheStore::entryPath(const std::string &name) const
{
    return _dir + "/" + name;
}

void
CacheStore::touchLocked(const std::string &name, unsigned long long bytes)
{
    Entry &entry = _entries[name];
    _bytes += bytes - entry.bytes;
    entry.bytes = bytes;
    entry.tick = ++_tick;
}

void
CacheStore::forgetLocked(const std::string &name)
{
    const auto it = _entries.find(name);
    if (it != _entries.end()) {
        _bytes -= it->second.bytes;
        _entries.erase(it);
    }
}

std::optional<std::string>
CacheStore::fetch(const CacheKey &key)
{
    CacheObs &obs = CacheObs::get();
    ScopedSpan span("cache:fetch", "cache");
    ScopedLatency latency(obs.fetch_us);
    const std::string name = entryName(key);
    const std::string path = entryPath(name);

    // Read outside any validation assumptions: another process may
    // have written, truncated, or evicted this entry at any time.
    const std::optional<std::string> text = readFile(path);
    std::lock_guard<std::mutex> lock(_mutex);
    if (!text) {
        forgetLocked(name);
        ++_misses;
        obs.misses.add();
        return std::nullopt;
    }

    // Validate magic, full key (the filename only hashes the pipeline
    // spec), and payload checksum; any failure degrades to a miss and
    // removes the bad file so it is rewritten, not re-read forever.
    try {
        const JsonValue doc = JsonValue::parse(*text);
        if (doc.stringOr("magic", "") != kMagic ||
            doc.stringOr("circuit", "") != hex64(key.circuit_hash) ||
            doc.stringOr("target", "") != hex64(key.target_hash) ||
            doc.stringOr("pipeline", "") != key.pipeline ||
            doc.stringOr("seed", "") != hex64(key.seed)) {
            SNAIL_THROW("cache entry key mismatch");
        }
        const std::string &payload = doc.at("payload").asString();
        if (doc.stringOr("crc", "") != hex64(payloadChecksum(payload))) {
            SNAIL_THROW("cache entry checksum mismatch");
        }
        touchLocked(name, static_cast<unsigned long long>(text->size()));
        ++_hits;
        obs.hits.add();
        // Refresh the mtime so cross-restart LRU seeding sees the use.
        std::error_code ec;
        fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
        return payload;
    } catch (const std::exception &) {
        std::error_code ec;
        fs::remove(path, ec);
        forgetLocked(name);
        ++_misses;
        obs.misses.add();
        return std::nullopt;
    }
}

void
CacheStore::store(const CacheKey &key, const std::string &payload)
{
    CacheObs &obs = CacheObs::get();
    ScopedSpan span("cache:store", "cache");
    ScopedLatency latency(obs.store_us);
    obs.stores.add();
    const std::string name = entryName(key);
    const std::string path = entryPath(name);

    JsonValue::Object doc;
    doc["magic"] = JsonValue(kMagic);
    doc["circuit"] = JsonValue(hex64(key.circuit_hash));
    doc["target"] = JsonValue(hex64(key.target_hash));
    doc["pipeline"] = JsonValue(key.pipeline);
    doc["seed"] = JsonValue(hex64(key.seed));
    doc["crc"] = JsonValue(hex64(payloadChecksum(payload)));
    doc["payload"] = JsonValue(payload);
    const std::string text = JsonValue(std::move(doc)).dump();

    // Publish atomically: a process-unique temp name, then rename.
    // Concurrent writers of the same key publish identical bytes, so
    // whichever rename lands last is indistinguishable from first.
    const std::string tmp =
        path + ".tmp" + std::to_string(SNAILQC_GETPID());
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        out << text;
        out.flush();
        if (!out.good()) {
            std::error_code ec;
            fs::remove(tmp, ec);
            return; // disk full / unwritable: skip caching, stay valid
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::error_code ec;
        fs::remove(tmp, ec);
        return;
    }

    std::lock_guard<std::mutex> lock(_mutex);
    // Re-sync with the directory before eviction: another process may
    // have grown or shrunk it since the index last looked, and a stale
    // byte count either under-evicts (directory outgrows the budget)
    // or deletes entries that are already gone.  The rescan runs before
    // the touch so the entry just written keeps the newest tick.
    rescanLocked();
    touchLocked(name, static_cast<unsigned long long>(text.size()));
    evictLocked();
}

void
CacheStore::rescanLocked()
{
    struct Found
    {
        std::string name;
        unsigned long long bytes;
        fs::file_time_type mtime;
    };
    std::vector<Found> found;
    std::error_code ec;
    for (const auto &item : fs::directory_iterator(_dir, ec)) {
        if (ec) {
            return; // unreadable directory: keep the index we have
        }
        std::error_code item_ec;
        if (!item.is_regular_file(item_ec)) {
            continue;
        }
        const std::string name = item.path().filename().string();
        if (name.rfind("e-", 0) != 0 || name.size() < 5 ||
            name.substr(name.size() - 5) != ".json") {
            continue;
        }
        Found entry;
        entry.name = name;
        entry.bytes = static_cast<unsigned long long>(
            item.file_size(item_ec));
        entry.mtime = item.last_write_time(item_ec);
        if (!item_ec) {
            found.push_back(std::move(entry));
        }
    }

    // Drop indexed entries another process evicted, update sizes we
    // had wrong, and adopt foreign files — mtime order, all newer than
    // anything we already track, since a concurrent writer's entries
    // are by definition recent.
    std::map<std::string, Entry> fresh;
    unsigned long long bytes = 0;
    std::sort(found.begin(), found.end(),
              [](const Found &a, const Found &b) {
                  return a.mtime < b.mtime ||
                         (a.mtime == b.mtime && a.name < b.name);
              });
    for (const Found &entry : found) {
        const auto known = _entries.find(entry.name);
        Entry indexed;
        indexed.bytes = entry.bytes;
        indexed.tick =
            known != _entries.end() ? known->second.tick : ++_tick;
        fresh[entry.name] = indexed;
        bytes += entry.bytes;
    }
    _entries = std::move(fresh);
    _bytes = bytes;
}

void
CacheStore::evictLocked()
{
    // Evict strictly least-recently-used.  The entry just touched
    // holds the top tick, so it survives unless it alone exceeds the
    // budget (nothing sane to do then — keep the single entry).
    while (_bytes > _max_bytes && _entries.size() > 1) {
        auto victim = _entries.begin();
        for (auto it = _entries.begin(); it != _entries.end(); ++it) {
            if (it->second.tick < victim->second.tick) {
                victim = it;
            }
        }
        std::error_code ec;
        fs::remove(entryPath(victim->first), ec);
        _bytes -= victim->second.bytes;
        _entries.erase(victim);
        ++_evictions;
        CacheObs::get().evictions.add();
    }
}

CacheStoreStats
CacheStore::stats() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    CacheStoreStats out;
    out.hits = _hits;
    out.misses = _misses;
    out.evictions = _evictions;
    out.entries = _entries.size();
    out.bytes = _bytes;
    out.max_bytes = _max_bytes;
    return out;
}

} // namespace snail
