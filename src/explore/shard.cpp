#include "explore/shard.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "explore/checkpoint.hpp"
#include "obs/metrics.hpp"

namespace fs = std::filesystem;

namespace snail
{

namespace
{

/** Human-facing point name for coverage errors. */
std::string
pointLabel(const SweepPoint &point)
{
    return point.circuit_label + " w" + std::to_string(point.width) +
           " on " + point.target_label + " [" + point.pipeline + "]";
}

} // namespace

ShardSlice
parseShardSlice(const std::string &text)
{
    const std::size_t slash = text.find('/');
    SNAIL_REQUIRE(slash != std::string::npos && slash > 0 &&
                      slash + 1 < text.size(),
                  "--shard needs the form i/N (0-based, e.g. 0/3), got '"
                      << text << "'");
    const auto number = [&](const std::string &part) {
        SNAIL_REQUIRE(!part.empty() &&
                          part.find_first_not_of("0123456789") ==
                              std::string::npos,
                      "--shard needs the form i/N with non-negative "
                      "integers, got '"
                          << text << "'");
        return static_cast<unsigned>(std::stoul(part));
    };
    ShardSlice slice;
    slice.index = number(text.substr(0, slash));
    slice.count = number(text.substr(slash + 1));
    SNAIL_REQUIRE(slice.count >= 1,
                  "--shard count must be >= 1, got '" << text << "'");
    SNAIL_REQUIRE(slice.index < slice.count,
                  "--shard index must be in [0, " << slice.count
                      << "), got '" << text << "'");
    return slice;
}

unsigned long long
pointContentHash(const CacheKey &key)
{
    return ContentHasher()
        .u64(key.circuit_hash)
        .u64(key.target_hash)
        .str(key.pipeline)
        .u64(key.seed)
        .value();
}

unsigned
shardOf(const CacheKey &key, unsigned shard_count)
{
    SNAIL_REQUIRE(shard_count >= 1, "shard count must be >= 1");
    return static_cast<unsigned>(pointContentHash(key) % shard_count);
}

unsigned long long
pointSetHash(const std::vector<CacheKey> &keys)
{
    unsigned long long sum = 0;
    for (const CacheKey &key : keys) {
        sum += pointContentHash(key); // wrapping: order-independent
    }
    return sum;
}

std::vector<CacheKey>
sweepPointKeys(const std::vector<SweepPoint> &points,
               const std::vector<CircuitInstance> &circuits,
               const std::vector<Target> &targets)
{
    // Hash each circuit/target once, not once per point: a QV
    // instance's content hash walks every Haar matrix.
    std::vector<unsigned long long> circuit_hashes(circuits.size());
    for (std::size_t i = 0; i < circuits.size(); ++i) {
        circuit_hashes[i] = circuits[i].circuit.contentHash();
    }
    std::vector<unsigned long long> target_hashes(targets.size());
    for (std::size_t i = 0; i < targets.size(); ++i) {
        target_hashes[i] = targets[i].contentHash();
    }
    std::vector<CacheKey> keys;
    keys.reserve(points.size());
    for (const SweepPoint &point : points) {
        CacheKey key;
        key.circuit_hash = circuit_hashes[point.circuit_index];
        key.target_hash = target_hashes[point.target_index];
        key.pipeline = point.pipeline;
        key.seed = point.seed;
        keys.push_back(std::move(key));
    }
    return keys;
}

JsonValue
shardHeaderToJson(const ShardHeader &header)
{
    JsonValue::Object body;
    body["index"] = JsonValue(static_cast<double>(header.shard.index));
    body["count"] = JsonValue(static_cast<double>(header.shard.count));
    body["spec"] = JsonValue(header.spec_name);
    body["point_set"] = JsonValue(hex64(header.point_set_hash));
    body["points"] =
        JsonValue(static_cast<double>(header.total_points));
    JsonValue::Object root;
    root["sweep_shard"] = JsonValue(std::move(body));
    return JsonValue(std::move(root));
}

std::optional<ShardHeader>
shardHeaderFromLine(const std::string &line)
{
    try {
        const JsonValue json = JsonValue::parse(line);
        const JsonValue *body =
            json.isObject() ? json.find("sweep_shard") : nullptr;
        if (body == nullptr) {
            return std::nullopt;
        }
        ShardHeader header;
        header.shard.index =
            static_cast<unsigned>(body->at("index").asNumber());
        header.shard.count =
            static_cast<unsigned>(body->at("count").asNumber());
        header.spec_name = body->at("spec").asString();
        header.point_set_hash =
            std::stoull(body->at("point_set").asString(), nullptr, 16);
        header.total_points = static_cast<std::size_t>(
            body->at("points").asNumber());
        return header;
    } catch (const std::exception &) {
        return std::nullopt; // torn or non-header line
    }
}

std::optional<ShardHeader>
readShardHeader(const std::string &path)
{
    std::ifstream in(path);
    std::string first;
    if (!in.good() || !std::getline(in, first)) {
        return std::nullopt;
    }
    return shardHeaderFromLine(first);
}

std::vector<std::string>
expandShardFiles(const std::vector<std::string> &paths)
{
    std::vector<std::string> files;
    for (const std::string &path : paths) {
        std::error_code ec;
        if (fs::is_directory(path, ec)) {
            std::vector<std::string> found;
            for (const fs::directory_entry &entry :
                 fs::directory_iterator(path)) {
                if (entry.is_regular_file() &&
                    entry.path().extension() == ".jsonl") {
                    found.push_back(entry.path().string());
                }
            }
            SNAIL_REQUIRE(!found.empty(),
                          "no .jsonl shard checkpoints in directory '"
                              << path << "'");
            std::sort(found.begin(), found.end());
            files.insert(files.end(), found.begin(), found.end());
        } else {
            SNAIL_REQUIRE(fs::exists(path, ec),
                          "shard checkpoint '" << path
                                               << "' does not exist");
            files.push_back(path);
        }
    }
    SNAIL_REQUIRE(!files.empty(), "sweep-merge needs at least one shard "
                                  "checkpoint (--shards)");
    return files;
}

SweepRun
mergeSweepShards(const SweepSpec &spec,
                 const std::vector<std::string> &shard_files,
                 ShardMergeStats *stats)
{
    SweepRun run;
    run.spec = spec;

    // Re-expand locally — the merge's source of truth for what "every
    // point exactly once" means (mirrors runSweep's expansion).
    const std::vector<Target> targets = expandTargets(spec);
    int max_width = 0;
    for (const Target &target : targets) {
        max_width = std::max(max_width, target.numQubits());
    }
    const std::vector<CircuitInstance> circuits =
        expandCircuits(spec, max_width);
    run.points = expandSweepPoints(spec, circuits, targets);
    SNAIL_REQUIRE(!run.points.empty(),
                  "sweep '" << spec.name
                            << "' expands to no points (every width "
                               "exceeds its targets?)");
    run.keys = sweepPointKeys(run.points, circuits, targets);
    run.total_points = run.points.size();
    run.point_set_hash = pointSetHash(run.keys);

    std::set<CacheKey> expected(run.keys.begin(), run.keys.end());

    ShardMergeStats local;
    local.shard_files = shard_files.size();
    /** Fused records: key -> (metrics, metrics dump, source file). */
    struct Fused
    {
        PointMetrics metrics;
        std::string metrics_text;
        std::string file;
    };
    std::map<CacheKey, Fused> fused;

    for (const std::string &file : shard_files) {
        std::ifstream in(file);
        SNAIL_REQUIRE(in.good(),
                      "cannot read shard checkpoint '" << file << "'");
        std::string line;
        while (std::getline(in, line)) {
            if (line.empty()) {
                continue;
            }
            if (const auto header = shardHeaderFromLine(line)) {
                // Spec identity: the fingerprint is order-independent,
                // so a permuted-but-equal spec file still merges.
                if (header->point_set_hash != run.point_set_hash) {
                    throw ShardHeaderError(
                        file, "recorded for spec '" + header->spec_name +
                                  "' with point set " +
                                  hex64(header->point_set_hash) +
                                  ", but this merge expands '" +
                                  spec.name + "' to point set " +
                                  hex64(run.point_set_hash) +
                                  " — a shard from a different sweep");
                }
                ++local.headers;
                continue;
            }
            CacheKey key;
            Fused record;
            try {
                const JsonValue json = JsonValue::parse(line);
                key = cacheKeyFromJson(json);
                const JsonValue &metrics_json = json.at("metrics");
                record.metrics = pointMetricsFromJson(metrics_json);
                record.metrics_text = metrics_json.dump();
            } catch (const std::exception &) {
                continue; // torn tail of a killed shard
            }
            record.file = file;
            if (expected.find(key) == expected.end()) {
                throw ForeignPointError(cacheKeyToJson(key).dump(), file);
            }
            const auto it = fused.find(key);
            if (it != fused.end()) {
                if (it->second.file != file) {
                    throw DuplicatePointError(
                        cacheKeyToJson(key).dump(), file,
                        "also recorded in '" + it->second.file +
                            "' — overlapping shard runs?");
                }
                if (it->second.metrics_text != record.metrics_text) {
                    throw DuplicatePointError(
                        cacheKeyToJson(key).dump(), file,
                        "conflicting metrics — two runs sharing one "
                        "checkpoint path?");
                }
                continue; // identical same-file repeat: benign race
            }
            fused.emplace(std::move(key), std::move(record));
            ++local.records;
        }
    }

    if (fused.size() < expected.size()) {
        std::size_t missing = 0;
        std::string first_missing;
        std::set<CacheKey> reported;
        for (std::size_t i = 0; i < run.points.size(); ++i) {
            if (fused.find(run.keys[i]) != fused.end() ||
                !reported.insert(run.keys[i]).second) {
                continue;
            }
            if (missing == 0) {
                first_missing = pointLabel(run.points[i]);
            }
            ++missing;
        }
        throw ShardCoverageError(first_missing, missing,
                                 expected.size());
    }

    run.metrics.reserve(run.points.size());
    for (const CacheKey &key : run.keys) {
        run.metrics.push_back(fused.at(key).metrics);
    }
    // The merge restored everything from checkpoints; the summary's
    // accounting line reports it the same way a full --resume does.
    run.stats.restored = local.records;
    run.stats.from_cache = run.points.size();
    run.cache_hits = run.points.size();

    MetricsRegistry &registry = MetricsRegistry::global();
    registry.gauge("snailqc_sweep_merge_shard_files")
        .set(static_cast<double>(local.shard_files));
    registry.gauge("snailqc_sweep_merge_points")
        .set(static_cast<double>(fused.size()));
    registry.gauge("snailqc_sweep_merge_headers")
        .set(static_cast<double>(local.headers));

    if (stats != nullptr) {
        *stats = local;
    }
    return run;
}

} // namespace snail
