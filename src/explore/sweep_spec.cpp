#include "explore/sweep_spec.hpp"

#include <fstream>
#include <set>
#include <sstream>

#include "circuits/registry.hpp"
#include "common/error.hpp"
#include "ir/qasm_parser.hpp"
#include "topology/generators.hpp"
#include "topology/registry.hpp"

namespace snail
{

namespace
{

/** Reject keys outside `allowed` (typo guard for hand-written specs). */
void
requireKnownKeys(const JsonValue &json, const char *where,
                 std::initializer_list<const char *> allowed)
{
    for (const auto &[key, value] : json.asObject()) {
        (void)value;
        bool known = false;
        for (const char *candidate : allowed) {
            if (key == candidate) {
                known = true;
                break;
            }
        }
        SNAIL_REQUIRE(known, "unknown key '" << key << "' in " << where);
    }
}

/** Widths: an explicit array or a {"from", "to", "step"} range. */
std::vector<int>
parseWidths(const JsonValue &json)
{
    std::vector<int> widths;
    if (json.isArray()) {
        for (const JsonValue &entry : json.asArray()) {
            widths.push_back(entry.asInt());
        }
    } else {
        requireKnownKeys(json, "widths range", {"from", "to", "step"});
        const int from = json.at("from").asInt();
        const int to = json.at("to").asInt();
        const int step =
            static_cast<int>(json.numberOr("step", 1.0));
        SNAIL_REQUIRE(step > 0, "widths range needs step > 0");
        for (int w = from; w <= to; w += step) {
            widths.push_back(w);
        }
    }
    SNAIL_REQUIRE(!widths.empty(), "empty widths list in sweep spec");
    return widths;
}

JsonValue
widthsToJson(const std::vector<int> &widths)
{
    JsonValue::Array out;
    for (int w : widths) {
        out.push_back(JsonValue(w));
    }
    return JsonValue(std::move(out));
}

} // namespace

unsigned long long
seedFromJson(const JsonValue &json)
{
    if (json.isNumber()) {
        const double value = json.asNumber();
        SNAIL_REQUIRE(value >= 0 && value < 9007199254740992.0 &&
                          value == static_cast<double>(
                                       static_cast<unsigned long long>(
                                           value)),
                      "seed " << value
                              << " is not an exact non-negative integer; "
                                 "use a \"0x...\" string for large seeds");
        return static_cast<unsigned long long>(value);
    }
    const std::string &text = json.asString();
    try {
        return std::stoull(text, nullptr, 0);
    } catch (const std::exception &) {
        SNAIL_THROW("cannot parse seed '" << text << "'");
    }
}

JsonValue
seedToJson(unsigned long long seed)
{
    if (seed < (1ULL << 53)) {
        return JsonValue(static_cast<double>(seed));
    }
    std::ostringstream hex;
    hex << "0x" << std::hex << seed;
    return JsonValue(hex.str());
}

CircuitSpec
circuitSpecFromJson(const JsonValue &json)
{
    requireKnownKeys(json, "circuits entry", {"bench", "widths", "qasm"});
    CircuitSpec spec;
    if (const JsonValue *bench = json.find("bench")) {
        spec.bench = bench->asString();
        benchmarkFromName(spec.bench); // validate eagerly
        spec.widths = parseWidths(json.at("widths"));
    }
    if (const JsonValue *qasm = json.find("qasm")) {
        spec.qasm = qasm->asString();
        SNAIL_REQUIRE(json.find("widths") == nullptr,
                      "\"widths\" does not apply to a \"qasm\" entry "
                      "(the file fixes the width)");
    }
    SNAIL_REQUIRE(spec.bench.empty() != spec.qasm.empty(),
                  "circuits entry needs exactly one of "
                  "\"bench\" or \"qasm\"");
    return spec;
}

JsonValue
circuitSpecToJson(const CircuitSpec &spec)
{
    JsonValue::Object entry;
    if (!spec.bench.empty()) {
        entry["bench"] = JsonValue(spec.bench);
        entry["widths"] = widthsToJson(spec.widths);
    } else {
        entry["qasm"] = JsonValue(spec.qasm);
    }
    return JsonValue(std::move(entry));
}

namespace
{

TargetSpec
targetSpecFromJson(const JsonValue &json)
{
    requireKnownKeys(json, "targets entry",
                     {"target", "device", "topology", "generator", "args",
                      "basis", "label"});
    TargetSpec spec;
    spec.target = json.stringOr("target", "");
    spec.device = json.stringOr("device", "");
    spec.topology = json.stringOr("topology", "");
    spec.generator = json.stringOr("generator", "");
    spec.basis = json.stringOr("basis", "");
    spec.label = json.stringOr("label", "");
    if (const JsonValue *args = json.find("args")) {
        for (const JsonValue &arg : args->asArray()) {
            spec.args.push_back(arg.asInt());
        }
    }
    const int selectors = (spec.target.empty() ? 0 : 1) +
                          (spec.device.empty() ? 0 : 1) +
                          (spec.topology.empty() ? 0 : 1) +
                          (spec.generator.empty() ? 0 : 1);
    SNAIL_REQUIRE(selectors == 1,
                  "targets entry needs exactly one of \"target\", "
                  "\"device\", \"topology\", or \"generator\"");
    SNAIL_REQUIRE(spec.topology.empty() || !spec.basis.empty(),
                  "topology target '" << spec.topology
                                      << "' needs a \"basis\"");
    SNAIL_REQUIRE(spec.generator.empty() || !spec.basis.empty(),
                  "generator target '" << spec.generator
                                       << "' needs a \"basis\"");
    return spec;
}

Target
resolveTarget(const TargetSpec &spec)
{
    Target target = [&]() {
        if (!spec.target.empty()) {
            return namedTarget(spec.target);
        }
        if (!spec.device.empty()) {
            return loadTargetFile(spec.device);
        }
        const CouplingGraph graph =
            spec.topology.empty()
                ? buildGeneratedTopology(spec.generator, spec.args)
                : namedTopology(spec.topology);
        Target uniform =
            Target::uniform(graph, parseBasisSpec(spec.basis));
        uniform.setName(graph.name() + "-" + uniform.defaultBasis().name());
        return uniform;
    }();
    if (!spec.label.empty()) {
        target.setName(spec.label);
    }
    return target;
}

/** The file name without directories — the label for QASM circuits. */
std::string
baseName(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? path : path.substr(slash + 1);
}

} // namespace

SweepSpec
sweepSpecFromJson(const JsonValue &json)
{
    requireKnownKeys(json, "sweep spec",
                     {"name", "seed", "circuits", "targets", "pipelines"});
    SweepSpec spec;
    spec.name = json.stringOr("name", "sweep");
    if (const JsonValue *seed = json.find("seed")) {
        spec.seed = seedFromJson(*seed);
    }
    for (const JsonValue &entry : json.at("circuits").asArray()) {
        spec.circuits.push_back(circuitSpecFromJson(entry));
    }
    for (const JsonValue &entry : json.at("targets").asArray()) {
        spec.targets.push_back(targetSpecFromJson(entry));
    }
    for (const JsonValue &entry : json.at("pipelines").asArray()) {
        spec.pipelines.push_back(entry.asString());
    }
    SNAIL_REQUIRE(!spec.circuits.empty(), "sweep spec has no circuits");
    SNAIL_REQUIRE(!spec.targets.empty(), "sweep spec has no targets");
    SNAIL_REQUIRE(!spec.pipelines.empty(), "sweep spec has no pipelines");
    return spec;
}

JsonValue
sweepSpecToJson(const SweepSpec &spec)
{
    JsonValue::Object root;
    root["name"] = JsonValue(spec.name);
    root["seed"] = seedToJson(spec.seed);

    JsonValue::Array circuits;
    for (const CircuitSpec &c : spec.circuits) {
        circuits.push_back(circuitSpecToJson(c));
    }
    root["circuits"] = JsonValue(std::move(circuits));

    JsonValue::Array targets;
    for (const TargetSpec &t : spec.targets) {
        JsonValue::Object entry;
        if (!t.target.empty()) {
            entry["target"] = JsonValue(t.target);
        } else if (!t.device.empty()) {
            entry["device"] = JsonValue(t.device);
        } else if (!t.topology.empty()) {
            entry["topology"] = JsonValue(t.topology);
        } else {
            entry["generator"] = JsonValue(t.generator);
            JsonValue::Array args;
            for (int arg : t.args) {
                args.push_back(JsonValue(arg));
            }
            entry["args"] = JsonValue(std::move(args));
        }
        if (!t.basis.empty()) {
            entry["basis"] = JsonValue(t.basis);
        }
        if (!t.label.empty()) {
            entry["label"] = JsonValue(t.label);
        }
        targets.push_back(JsonValue(std::move(entry)));
    }
    root["targets"] = JsonValue(std::move(targets));

    JsonValue::Array pipelines;
    for (const std::string &p : spec.pipelines) {
        pipelines.push_back(JsonValue(p));
    }
    root["pipelines"] = JsonValue(std::move(pipelines));
    return JsonValue(std::move(root));
}

SweepSpec
loadSweepSpecFile(const std::string &path)
{
    std::ifstream in(path);
    SNAIL_REQUIRE(in.good(), "cannot open sweep spec '" << path << "'");
    std::ostringstream text;
    text << in.rdbuf();
    try {
        return sweepSpecFromJson(JsonValue::parse(text.str()));
    } catch (const SnailError &e) {
        SNAIL_THROW("sweep spec '" << path << "': " << e.what());
    }
}

std::vector<CircuitInstance>
expandCircuits(const SweepSpec &spec, int max_width)
{
    std::vector<CircuitInstance> out;
    // QASM circuits label by basename for readable reports, but two
    // files sharing a basename must not share a label (the summary
    // groups by label); fall back to the full path on collision.
    std::set<std::string> qasm_labels;
    for (const CircuitSpec &entry : spec.circuits) {
        if (!entry.bench.empty()) {
            const BenchmarkKind kind = benchmarkFromName(entry.bench);
            for (int width : entry.widths) {
                // The engine's documented skip rule, applied before
                // construction: a too-small width would make the
                // benchmark generator throw, and a too-large one
                // would only ever be discarded.
                if (width < 2 || width > max_width) {
                    continue;
                }
                CircuitInstance instance{
                    makeBenchmark(kind, width, spec.seed),
                    benchmarkLabel(kind), width,
                    static_cast<unsigned long long>(kind)};
                out.push_back(std::move(instance));
            }
        } else {
            Circuit circuit = parseQasmFile(entry.qasm).circuit;
            const int width = circuit.numQubits();
            // Content-derived salt: stable across processes, unlike
            // std::hash, and independent of where the file lives.
            const unsigned long long salt = circuit.contentHash();
            const std::string label =
                qasm_labels.insert(baseName(entry.qasm)).second
                    ? baseName(entry.qasm)
                    : entry.qasm;
            out.push_back(CircuitInstance{std::move(circuit), label,
                                          width, salt});
        }
    }
    return out;
}

std::vector<Target>
expandTargets(const SweepSpec &spec)
{
    std::vector<Target> out;
    std::set<std::string> labels;
    out.reserve(spec.targets.size());
    for (const TargetSpec &entry : spec.targets) {
        Target target = resolveTarget(entry);
        // The label keys summary columns and feeds per-point seeds;
        // a duplicate would silently shadow another target's results.
        SNAIL_REQUIRE(labels.insert(target.name()).second,
                      "two sweep targets share the label '"
                          << target.name()
                          << "'; disambiguate with \"label\"");
        out.push_back(std::move(target));
    }
    return out;
}

} // namespace snail
