/**
 * @file
 * Declarative sweep specifications for the design-space exploration
 * engine (explore/engine.hpp).
 *
 * A SweepSpec names three axes whose cross-product the engine
 * evaluates:
 *
 *   circuits   registry benchmarks at a list of widths, or OpenQASM
 *              files
 *   targets    built-in named targets, JSON device files, registered
 *              topologies paired with a basis, or parametric topology
 *              generators (corral / tree / hypercube / lattices)
 *   pipelines  transpiler pass specs (pass_registry.hpp)
 *
 * Specs serialize to a small JSON schema (documented in
 * examples/sweeps/README.md and the main README) so sweeps are
 * shareable, diffable artifacts:
 *
 *   {
 *     "name": "paper-fig13",
 *     "seed": 3203358445,
 *     "circuits": [{"bench": "qv", "widths": {"from": 4, "to": 16,
 *                                             "step": 2}}],
 *     "targets": [{"target": "corral11-16-sqiswap"},
 *                 {"device": "examples/devices/chiplet-hetero-16.json"},
 *                 {"topology": "square-16", "basis": "syc"},
 *                 {"generator": "corral", "args": [8, 1, 2],
 *                  "basis": "sqiswap"}],
 *     "pipelines": ["dense,stochastic-route=10"]
 *   }
 *
 * Seed derivation (expandSweepPoints in engine.hpp) reproduces the
 * legacy codesign::Experiment rule exactly, which is what lets a spec
 * over the fig-13 machines regenerate the paper series bit for bit.
 */

#ifndef SNAILQC_EXPLORE_SWEEP_SPEC_HPP
#define SNAILQC_EXPLORE_SWEEP_SPEC_HPP

#include <limits>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "ir/circuit.hpp"
#include "target/target.hpp"

namespace snail
{

/** Default sweep seed, shared with codesign::SweepOptions. */
inline constexpr unsigned long long kDefaultSweepSeed = 0xBEEF5EEDULL;

/** One circuits-axis entry: a benchmark family or a QASM file. */
struct CircuitSpec
{
    std::string bench;       //!< registry short name ("qv", ...)
    std::vector<int> widths; //!< widths to instantiate `bench` at
    std::string qasm;        //!< OpenQASM path (exclusive with bench)
};

/** One targets-axis entry; exactly one selector field is set. */
struct TargetSpec
{
    std::string target;     //!< built-in target name
    std::string device;     //!< JSON device file path
    std::string topology;   //!< registered topology name...
    std::string generator;  //!< ...or parametric generator name
    std::vector<int> args;  //!< generator arguments
    std::string basis;      //!< basis for topology/generator entries
    std::string label;      //!< optional display-label override
};

/** The full declarative sweep: circuits x targets x pipelines. */
struct SweepSpec
{
    std::string name = "sweep";
    unsigned long long seed = kDefaultSweepSeed;
    std::vector<CircuitSpec> circuits;
    std::vector<TargetSpec> targets;
    std::vector<std::string> pipelines;
};

/** A circuit instantiated from the spec, with its point-seed salt. */
struct CircuitInstance
{
    Circuit circuit;
    std::string label; //!< paper-style label, e.g. "Quantum Volume"
    int width = 0;
    /**
     * XOR-ed into every point seed for this circuit.  Registry
     * benchmarks use the BenchmarkKind value — the legacy
     * codesign::Experiment convention — and QASM files a stable
     * content-derived value.
     */
    unsigned long long salt = 0;
};

/** @name Spec (de)serialization. */
/** @{ */

/**
 * Parse one circuits-axis entry — {"bench", "widths"} or {"qasm"} —
 * validating the benchmark name eagerly.  Shared with the co-design
 * search spec (search/search_spec.hpp), whose workloads use the same
 * schema. @throws SnailError on unknown keys or bad selectors.
 */
CircuitSpec circuitSpecFromJson(const JsonValue &json);

/** Inverse of circuitSpecFromJson. */
JsonValue circuitSpecToJson(const CircuitSpec &spec);

/** Parse a seed: a JSON number, or a "0x..."/decimal string. */
unsigned long long seedFromJson(const JsonValue &json);

/** Serialize a seed (hex string beyond exact-double range). */
JsonValue seedToJson(unsigned long long seed);

/**
 * Parse a spec from its JSON form.  Unknown keys anywhere in the
 * document are rejected (typo guard), as are entries selecting zero or
 * several of the axis forms. @throws SnailError with the offending key.
 */
SweepSpec sweepSpecFromJson(const JsonValue &json);

/** Serialize; sweepSpecFromJson(sweepSpecToJson(s)) round-trips. */
JsonValue sweepSpecToJson(const SweepSpec &spec);

/** Load a spec file. @throws SnailError on I/O or schema errors. */
SweepSpec loadSweepSpecFile(const std::string &path);

/** @} */

/** @name Axis expansion. */
/** @{ */

/**
 * Instantiate every circuit of the spec: one CircuitInstance per
 * (benchmark, width) pair, built with the spec seed as the generator
 * seed (the codesign::Experiment convention), plus one per QASM file.
 * Benchmark widths above `max_width` are not built at all — callers
 * that know the largest target (runSweep) pass its qubit count so
 * oversized instances, which every target would skip anyway, never
 * pay their (Haar-random) generation cost.
 */
std::vector<CircuitInstance> expandCircuits(
    const SweepSpec &spec,
    int max_width = std::numeric_limits<int>::max());

/**
 * Resolve every target of the spec, applying label overrides.  Target
 * order follows the spec.  Duplicate labels are rejected: the label
 * is both the summary-table column key and a per-point seed input, so
 * two targets sharing one would silently shadow each other.
 */
std::vector<Target> expandTargets(const SweepSpec &spec);

/** @} */

} // namespace snail

#endif // SNAILQC_EXPLORE_SWEEP_SPEC_HPP
