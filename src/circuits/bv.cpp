/**
 * @file
 * Bernstein-Vazirani circuit generator.
 *
 * The oracle for hidden string s couples every data qubit with s_i = 1
 * to a single shared ancilla, making BV a stress test of one-to-many
 * connectivity: on a star-friendly topology (Tree router qubits, Corral
 * SNAIL neighborhoods) it routes cheaply, on sparse lattices the ancilla
 * has to be shuttled around.
 */

#include "circuits/circuits.hpp"

#include <string>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace snail
{

Circuit
bernsteinVazirani(int num_qubits, unsigned long long seed)
{
    SNAIL_REQUIRE(num_qubits >= 2,
                  "Bernstein-Vazirani needs >= 2 qubits, got "
                      << num_qubits);
    Circuit c(num_qubits, "bv-" + std::to_string(num_qubits));
    const int ancilla = num_qubits - 1;
    const int data = num_qubits - 1;

    Rng rng(seed);
    std::vector<bool> secret(data);
    bool any = false;
    for (int i = 0; i < data; ++i) {
        secret[i] = rng.index(2) == 1;
        any = any || secret[i];
    }
    if (!any) {
        secret[0] = true; // all-zero secrets make a trivial circuit
    }

    // Prepare |+>^data and |-> on the ancilla.
    for (int i = 0; i < data; ++i) {
        c.h(i);
    }
    c.x(ancilla);
    c.h(ancilla);

    // Oracle: phase kickback per set bit.
    for (int i = 0; i < data; ++i) {
        if (secret[i]) {
            c.cx(i, ancilla);
        }
    }

    // Uncompute the superposition; data register now reads s.
    for (int i = 0; i < data; ++i) {
        c.h(i);
    }
    return c;
}

} // namespace snail
