#include "circuits/circuits.hpp"

#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace snail
{

namespace
{

/** MAJ block of the CDKM adder (Cuccaro et al. 2004). */
void
maj(Circuit &c, int carry, int b, int a)
{
    c.cx(a, b);
    c.cx(a, carry);
    c.ccxDecomposed(carry, b, a);
}

/** UMA (2-CNOT variant) block of the CDKM adder. */
void
uma(Circuit &c, int carry, int b, int a)
{
    c.ccxDecomposed(carry, b, a);
    c.cx(a, carry);
    c.cx(carry, b);
}

} // namespace

Circuit
cdkmAdder(int num_qubits, unsigned long long seed)
{
    SNAIL_REQUIRE(num_qubits >= 4, "CDKM adder needs >= 4 qubits");
    // Layout: [cin, a_0..a_{m-1}, b_0..b_{m-1}, cout]; any leftover qubit
    // (odd widths) idles, matching how the paper sweeps sizes.
    const int m = (num_qubits - 2) / 2;
    std::ostringstream name;
    name << "adder-" << num_qubits;
    Circuit c(num_qubits, name.str());

    const int cin = 0;
    auto qa = [&](int i) { return 1 + i; };
    auto qb = [&](int i) { return 1 + m + i; };
    const int cout = 1 + 2 * m;

    // Random classical input preparation keeps the circuit non-trivial.
    Rng rng(seed);
    for (int i = 0; i < m; ++i) {
        if (rng.uniform() < 0.5) {
            c.x(qa(i));
        }
        if (rng.uniform() < 0.5) {
            c.x(qb(i));
        }
    }

    maj(c, cin, qb(0), qa(0));
    for (int i = 1; i < m; ++i) {
        maj(c, qa(i - 1), qb(i), qa(i));
    }
    c.cx(qa(m - 1), cout);
    for (int i = m - 1; i >= 1; --i) {
        uma(c, qa(i - 1), qb(i), qa(i));
    }
    uma(c, cin, qb(0), qa(0));
    return c;
}

} // namespace snail
