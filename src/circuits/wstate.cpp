/**
 * @file
 * W-state preparation circuit.
 *
 * Linear cascade construction: qubit 0 starts in |1>; each step moves a
 * calibrated share of the excitation one qubit down the chain with a
 * controlled rotation (RY conjugated CZ) followed by a CX that erases
 * the control's amplitude in the transferred branch.  Produces
 * (|100...> + |010...> + ... + |0...01>)/sqrt(n) exactly; the
 * statevector test checks every amplitude.
 */

#include "circuits/circuits.hpp"

#include <cmath>
#include <string>

#include "common/error.hpp"

namespace snail
{

Circuit
wState(int num_qubits)
{
    SNAIL_REQUIRE(num_qubits >= 2,
                  "W state needs >= 2 qubits, got " << num_qubits);
    const int n = num_qubits;
    Circuit c(n, "wstate-" + std::to_string(n));

    c.x(0);
    for (int k = 1; k < n; ++k) {
        // Split 1/(n-k+1) of the remaining excitation from qubit k-1
        // onto qubit k: controlled-RY via the RY/CZ/RY conjugation.
        const double theta =
            std::acos(std::sqrt(1.0 / static_cast<double>(n - k + 1)));
        c.ry(-theta, k);
        c.cz(k - 1, k);
        c.ry(theta, k);
        c.cx(k, k - 1);
    }
    return c;
}

} // namespace snail
