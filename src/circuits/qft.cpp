#include "circuits/circuits.hpp"

#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace snail
{

Circuit
qft(int num_qubits)
{
    SNAIL_REQUIRE(num_qubits >= 1, "QFT needs >= 1 qubit");
    std::ostringstream name;
    name << "qft-" << num_qubits;
    Circuit c(num_qubits, name.str());
    for (int i = num_qubits - 1; i >= 0; --i) {
        c.h(i);
        for (int j = i - 1; j >= 0; --j) {
            c.cp(M_PI / std::pow(2.0, i - j), j, i);
        }
    }
    // Bit-reversal SWAPs (Qiskit default do_swaps=true).
    for (int i = 0; i < num_qubits / 2; ++i) {
        c.swap(i, num_qubits - 1 - i);
    }
    return c;
}

} // namespace snail
