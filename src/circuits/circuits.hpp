/**
 * @file
 * Parameterized benchmark circuit generators (paper Sec. 5).
 *
 * The paper evaluates QuantumVolume, QFT and CDKMRippleCarryAdder (from
 * Qiskit) plus QAOA VanillaProxy, HamiltonianSimulation (TIM) and GHZ
 * (from SuperMarQ), all parameterized by qubit count so they can be swept
 * across machine sizes.  These generators reproduce those constructions.
 */

#ifndef SNAILQC_CIRCUITS_CIRCUITS_HPP
#define SNAILQC_CIRCUITS_CIRCUITS_HPP

#include "ir/circuit.hpp"

namespace snail
{

/**
 * QuantumVolume model circuit: `depth` layers, each pairing a random
 * permutation of the qubits and applying a Haar-random SU(4) block to
 * every pair.  depth <= 0 selects the square case depth = width.
 */
Circuit quantumVolume(int num_qubits, int depth = 0,
                      unsigned long long seed = 7);

/**
 * Quantum Fourier Transform with the standard controlled-phase ladder and
 * the final reversal SWAPs (Qiskit's do_swaps=true default).
 */
Circuit qft(int num_qubits);

/**
 * QAOA "vanilla proxy" (SuperMarQ): one level of the
 * Sherrington-Kirkpatrick model — Hadamards, ZZ(gamma * w_ij) on every
 * qubit pair with random +-1 weights, then the RX mixer.
 */
Circuit qaoaVanilla(int num_qubits, unsigned long long seed = 11);

/**
 * Transverse-field Ising model Hamiltonian simulation (SuperMarQ): first-
 * order Trotter steps of nearest-neighbor ZZ on a chain plus an RX field.
 */
Circuit timHamiltonian(int num_qubits, int trotter_steps = 1);

/**
 * CDKM ripple-carry adder over two (n-2)/2-bit registers with carry-in
 * and carry-out qubits; Toffolis are emitted in their standard 6-CNOT
 * decomposition.  @pre num_qubits >= 4.
 */
Circuit cdkmAdder(int num_qubits, unsigned long long seed = 13);

/** GHZ state preparation: Hadamard plus a CNOT chain. */
Circuit ghz(int num_qubits);

/**
 * Bernstein-Vazirani oracle circuit: n-1 data qubits, one ancilla, with
 * the hidden bitstring drawn deterministically from `seed`.  A single
 * run reads out the whole string, so the circuit is a standard test of
 * one-to-many connectivity (every set bit couples its data qubit to the
 * same ancilla).  @pre num_qubits >= 2.
 */
Circuit bernsteinVazirani(int num_qubits, unsigned long long seed = 17);

/**
 * Hardware-efficient VQE ansatz (SuperMarQ's VQE proxy): `layers`
 * repetitions of per-qubit RY/RZ rotations with pseudo-random angles
 * followed by a linear CX entangling ladder, and a final rotation
 * layer.  @pre num_qubits >= 2, layers >= 1.
 */
Circuit vqeAnsatz(int num_qubits, int layers = 2,
                  unsigned long long seed = 19);

/**
 * W-state preparation |W_n> = (|10...0> + |01...0> + ... + |0...01>) /
 * sqrt(n) via the standard linear cascade of controlled rotations.
 * @pre num_qubits >= 2.
 */
Circuit wState(int num_qubits);

} // namespace snail

#endif // SNAILQC_CIRCUITS_CIRCUITS_HPP
