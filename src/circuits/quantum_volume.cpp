#include "circuits/circuits.hpp"

#include <numeric>
#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "linalg/random_unitary.hpp"

namespace snail
{

Circuit
quantumVolume(int num_qubits, int depth, unsigned long long seed)
{
    SNAIL_REQUIRE(num_qubits >= 2, "QuantumVolume needs >= 2 qubits");
    if (depth <= 0) {
        depth = num_qubits;
    }
    std::ostringstream name;
    name << "qv-" << num_qubits << "x" << depth;
    Circuit c(num_qubits, name.str());
    Rng rng(seed);

    std::vector<int> order(static_cast<std::size_t>(num_qubits));
    std::iota(order.begin(), order.end(), 0);
    for (int layer = 0; layer < depth; ++layer) {
        rng.shuffle(order);
        for (int pair = 0; pair + 1 < num_qubits; pair += 2) {
            const Matrix su4 = haarSpecialUnitary(4, rng);
            c.unitary4(su4, order[static_cast<std::size_t>(pair)],
                       order[static_cast<std::size_t>(pair + 1)]);
        }
    }
    return c;
}

} // namespace snail
