#include "circuits/circuits.hpp"

#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace snail
{

Circuit
qaoaVanilla(int num_qubits, unsigned long long seed)
{
    SNAIL_REQUIRE(num_qubits >= 2, "QAOA needs >= 2 qubits");
    std::ostringstream name;
    name << "qaoa-" << num_qubits;
    Circuit c(num_qubits, name.str());
    Rng rng(seed);

    // SuperMarQ's vanilla proxy: p = 1 QAOA on the fully connected
    // Sherrington-Kirkpatrick model with random +-1 couplings.
    const double gamma = 0.4;
    const double beta = 0.8;

    for (int q = 0; q < num_qubits; ++q) {
        c.h(q);
    }
    for (int i = 0; i < num_qubits; ++i) {
        for (int j = i + 1; j < num_qubits; ++j) {
            const double w = (rng.uniform() < 0.5) ? -1.0 : 1.0;
            c.rzz(2.0 * gamma * w, i, j);
        }
    }
    for (int q = 0; q < num_qubits; ++q) {
        c.rx(2.0 * beta, q);
    }
    return c;
}

} // namespace snail
