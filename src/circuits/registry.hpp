/**
 * @file
 * Benchmark registry: build any of the paper's six benchmarks by name.
 */

#ifndef SNAILQC_CIRCUITS_REGISTRY_HPP
#define SNAILQC_CIRCUITS_REGISTRY_HPP

#include <string>
#include <vector>

#include "ir/circuit.hpp"

namespace snail
{

/**
 * Benchmark families: the paper's six plus three extended workloads
 * (Bernstein-Vazirani, a hardware-efficient VQE ansatz, W state) that
 * exercise one-to-many, nearest-neighbor, and chain connectivity.
 */
enum class BenchmarkKind
{
    QuantumVolume,
    Qft,
    QaoaVanilla,
    TimHamiltonian,
    Adder,
    Ghz,
    BernsteinVazirani,
    VqeAnsatz,
    WState,
};

/** Short name ("qv", "qft", "qaoa", "tim", "adder", "ghz", "bv",
 *  "vqe", "wstate"). */
const char *benchmarkName(BenchmarkKind kind);

/** Display label matching the paper's figure captions. */
const char *benchmarkLabel(BenchmarkKind kind);

/** The paper's six benchmark kinds, in its figure order. */
std::vector<BenchmarkKind> allBenchmarks();

/** The paper's six plus the extended workloads. */
std::vector<BenchmarkKind> extendedBenchmarks();

/**
 * Benchmark kind by short name ("qv", "qft", ...).
 * @throws SnailError listing the known names for unknown ones.
 */
BenchmarkKind benchmarkFromName(const std::string &name);

/** Build a benchmark at the given width with a deterministic seed. */
Circuit makeBenchmark(BenchmarkKind kind, int num_qubits,
                      unsigned long long seed = 7);

/** Build a benchmark by short name. @throws SnailError for unknown names. */
Circuit makeBenchmark(const std::string &name, int num_qubits,
                      unsigned long long seed = 7);

} // namespace snail

#endif // SNAILQC_CIRCUITS_REGISTRY_HPP
