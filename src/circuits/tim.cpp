#include "circuits/circuits.hpp"

#include <sstream>

#include "common/error.hpp"

namespace snail
{

Circuit
timHamiltonian(int num_qubits, int trotter_steps)
{
    SNAIL_REQUIRE(num_qubits >= 2, "TIM needs >= 2 qubits");
    SNAIL_REQUIRE(trotter_steps >= 1, "TIM needs >= 1 Trotter step");
    std::ostringstream name;
    name << "tim-" << num_qubits;
    Circuit c(num_qubits, name.str());

    // First-order Trotterization of H = -J sum ZZ - h sum X on a chain
    // (SuperMarQ HamiltonianSimulation defaults: J = h = 1, dt = 0.2).
    const double j_coupling = 1.0;
    const double field = 1.0;
    const double dt = 0.2;

    for (int q = 0; q < num_qubits; ++q) {
        c.h(q);
    }
    for (int step = 0; step < trotter_steps; ++step) {
        for (int q = 0; q + 1 < num_qubits; ++q) {
            c.rzz(-2.0 * j_coupling * dt, q, q + 1);
        }
        for (int q = 0; q < num_qubits; ++q) {
            c.rx(-2.0 * field * dt, q);
        }
    }
    return c;
}

} // namespace snail
