#include "circuits/registry.hpp"

#include "circuits/circuits.hpp"
#include "common/error.hpp"

namespace snail
{

const char *
benchmarkName(BenchmarkKind kind)
{
    switch (kind) {
      case BenchmarkKind::QuantumVolume:
        return "qv";
      case BenchmarkKind::Qft:
        return "qft";
      case BenchmarkKind::QaoaVanilla:
        return "qaoa";
      case BenchmarkKind::TimHamiltonian:
        return "tim";
      case BenchmarkKind::Adder:
        return "adder";
      case BenchmarkKind::Ghz:
        return "ghz";
      case BenchmarkKind::BernsteinVazirani:
        return "bv";
      case BenchmarkKind::VqeAnsatz:
        return "vqe";
      case BenchmarkKind::WState:
        return "wstate";
    }
    SNAIL_ASSERT(false, "unhandled benchmark kind");
    return "";
}

const char *
benchmarkLabel(BenchmarkKind kind)
{
    switch (kind) {
      case BenchmarkKind::QuantumVolume:
        return "Quantum Volume";
      case BenchmarkKind::Qft:
        return "QFT";
      case BenchmarkKind::QaoaVanilla:
        return "QAOA Vanilla";
      case BenchmarkKind::TimHamiltonian:
        return "TIM Hamiltonian";
      case BenchmarkKind::Adder:
        return "Adder";
      case BenchmarkKind::Ghz:
        return "GHZ";
      case BenchmarkKind::BernsteinVazirani:
        return "Bernstein-Vazirani";
      case BenchmarkKind::VqeAnsatz:
        return "VQE Ansatz";
      case BenchmarkKind::WState:
        return "W State";
    }
    SNAIL_ASSERT(false, "unhandled benchmark kind");
    return "";
}

std::vector<BenchmarkKind>
allBenchmarks()
{
    return {BenchmarkKind::QuantumVolume, BenchmarkKind::Qft,
            BenchmarkKind::QaoaVanilla,   BenchmarkKind::TimHamiltonian,
            BenchmarkKind::Adder,         BenchmarkKind::Ghz};
}

std::vector<BenchmarkKind>
extendedBenchmarks()
{
    std::vector<BenchmarkKind> kinds = allBenchmarks();
    kinds.push_back(BenchmarkKind::BernsteinVazirani);
    kinds.push_back(BenchmarkKind::VqeAnsatz);
    kinds.push_back(BenchmarkKind::WState);
    return kinds;
}

Circuit
makeBenchmark(BenchmarkKind kind, int num_qubits, unsigned long long seed)
{
    switch (kind) {
      case BenchmarkKind::QuantumVolume:
        return quantumVolume(num_qubits, 0, seed);
      case BenchmarkKind::Qft:
        return qft(num_qubits);
      case BenchmarkKind::QaoaVanilla:
        return qaoaVanilla(num_qubits, seed);
      case BenchmarkKind::TimHamiltonian:
        return timHamiltonian(num_qubits);
      case BenchmarkKind::Adder:
        return cdkmAdder(num_qubits, seed);
      case BenchmarkKind::Ghz:
        return ghz(num_qubits);
      case BenchmarkKind::BernsteinVazirani:
        return bernsteinVazirani(num_qubits, seed);
      case BenchmarkKind::VqeAnsatz:
        return vqeAnsatz(num_qubits, 2, seed);
      case BenchmarkKind::WState:
        return wState(num_qubits);
    }
    SNAIL_ASSERT(false, "unhandled benchmark kind");
    return Circuit(1);
}

BenchmarkKind
benchmarkFromName(const std::string &name)
{
    std::string known;
    for (BenchmarkKind kind : extendedBenchmarks()) {
        if (name == benchmarkName(kind)) {
            return kind;
        }
        known += known.empty() ? benchmarkName(kind)
                               : std::string(", ") + benchmarkName(kind);
    }
    SNAIL_THROW("unknown benchmark name '" << name << "' (known: " << known
                                           << ")");
}

Circuit
makeBenchmark(const std::string &name, int num_qubits,
              unsigned long long seed)
{
    return makeBenchmark(benchmarkFromName(name), num_qubits, seed);
}

} // namespace snail
