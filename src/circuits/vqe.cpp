/**
 * @file
 * Hardware-efficient VQE ansatz generator (SuperMarQ's VQE proxy).
 *
 * The ansatz alternates a rotation layer (RY, RZ on every qubit) with a
 * linear CX entangling ladder.  Angles are pseudo-random but seed-
 * deterministic — for transpilation studies only the structure matters,
 * and the linear ladder makes it a nearest-neighbor-friendly contrast
 * to QAOA's all-to-all couplings.
 */

#include "circuits/circuits.hpp"

#include <cmath>
#include <string>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace snail
{

Circuit
vqeAnsatz(int num_qubits, int layers, unsigned long long seed)
{
    SNAIL_REQUIRE(num_qubits >= 2,
                  "VQE ansatz needs >= 2 qubits, got " << num_qubits);
    SNAIL_REQUIRE(layers >= 1, "VQE ansatz needs >= 1 layer, got "
                                   << layers);
    Circuit c(num_qubits, "vqe-" + std::to_string(num_qubits));
    Rng rng(seed);

    auto rotation_layer = [&]() {
        for (int q = 0; q < num_qubits; ++q) {
            c.ry(rng.uniform(-M_PI, M_PI), q);
            c.rz(rng.uniform(-M_PI, M_PI), q);
        }
    };

    for (int layer = 0; layer < layers; ++layer) {
        rotation_layer();
        for (int q = 0; q + 1 < num_qubits; ++q) {
            c.cx(q, q + 1);
        }
    }
    rotation_layer();
    return c;
}

} // namespace snail
