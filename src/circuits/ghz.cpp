#include "circuits/circuits.hpp"

#include <sstream>

#include "common/error.hpp"

namespace snail
{

Circuit
ghz(int num_qubits)
{
    SNAIL_REQUIRE(num_qubits >= 2, "GHZ needs >= 2 qubits");
    std::ostringstream name;
    name << "ghz-" << num_qubits;
    Circuit c(num_qubits, name.str());
    c.h(0);
    for (int q = 0; q + 1 < num_qubits; ++q) {
        c.cx(q, q + 1);
    }
    return c;
}

} // namespace snail
