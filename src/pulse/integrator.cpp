#include "pulse/integrator.hpp"

#include <cmath>

#include "common/error.hpp"

namespace snail
{

namespace
{

/** y' = -i H(t) y evaluated into `out`. */
void
derivative(const Matrix &h, const std::vector<Complex> &y,
           std::vector<Complex> &out)
{
    const std::size_t n = y.size();
    const Complex minus_i{0.0, -1.0};
    for (std::size_t r = 0; r < n; ++r) {
        Complex acc{0.0, 0.0};
        for (std::size_t c = 0; c < n; ++c) {
            acc += h(r, c) * y[c];
        }
        out[r] = minus_i * acc;
    }
}

} // namespace

std::vector<Complex>
evolveState(const TimeDependentHamiltonian &h, std::vector<Complex> psi0,
            double t0, double t1, int steps)
{
    SNAIL_REQUIRE(steps >= 1, "integration needs >= 1 step, got " << steps);
    const std::size_t n = psi0.size();
    SNAIL_REQUIRE(n > 0, "empty state");

    const double dt = (t1 - t0) / steps;
    std::vector<Complex> y = std::move(psi0);
    std::vector<Complex> k1(n), k2(n), k3(n), k4(n), tmp(n);

    for (int s = 0; s < steps; ++s) {
        const double t = t0 + s * dt;

        const Matrix h1 = h(t);
        SNAIL_REQUIRE(h1.rows() == n && h1.cols() == n,
                      "H(t) size mismatch at t = " << t);
        derivative(h1, y, k1);

        const Matrix h2 = h(t + 0.5 * dt);
        for (std::size_t i = 0; i < n; ++i) {
            tmp[i] = y[i] + 0.5 * dt * k1[i];
        }
        derivative(h2, tmp, k2);

        for (std::size_t i = 0; i < n; ++i) {
            tmp[i] = y[i] + 0.5 * dt * k2[i];
        }
        derivative(h2, tmp, k3);

        const Matrix h4 = h(t + dt);
        for (std::size_t i = 0; i < n; ++i) {
            tmp[i] = y[i] + dt * k3[i];
        }
        derivative(h4, tmp, k4);

        for (std::size_t i = 0; i < n; ++i) {
            y[i] += dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
    }
    return y;
}

Matrix
evolvePropagator(const TimeDependentHamiltonian &h, std::size_t dim,
                 double t0, double t1, int steps)
{
    Matrix u(dim, dim);
    for (std::size_t col = 0; col < dim; ++col) {
        std::vector<Complex> e(dim, Complex{0.0, 0.0});
        e[col] = Complex{1.0, 0.0};
        const std::vector<Complex> final_state =
            evolveState(h, std::move(e), t0, t1, steps);
        for (std::size_t row = 0; row < dim; ++row) {
            u(row, col) = final_state[row];
        }
    }
    return u;
}

double
unitarityError(const Matrix &u)
{
    const Matrix product = u.dagger() * u;
    double worst = 0.0;
    for (std::size_t r = 0; r < product.rows(); ++r) {
        for (std::size_t c = 0; c < product.cols(); ++c) {
            const Complex want =
                r == c ? Complex{1.0, 0.0} : Complex{0.0, 0.0};
            worst = std::max(worst, std::abs(product(r, c) - want));
        }
    }
    return worst;
}

} // namespace snail
