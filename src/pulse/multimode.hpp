/**
 * @file
 * Multi-mode parametric gates from simultaneous SNAIL drives.
 *
 * Paper Sec. 4.1: "SNAIL modulators allow operation of multiple gates
 * in parallel in the same neighborhood, or even create three- or
 * more-mode (>= 3Q) gates by applying multiple, simultaneous drives to
 * the SNAIL."  This module simulates that capability in the single-
 * excitation subspace of one SNAIL neighborhood: k qubits all coupled
 * through the same SNAIL, with a separate difference-frequency drive
 * (own coupling strength and detuning) on any subset of pairs.
 *
 * In the rotating frame the subspace Hamiltonian is the k x k
 * Hermitian "hopping" matrix H[i][j] = g_ij e^{i delta_ij t}; the RK4
 * integrator evolves it exactly, covering:
 *
 *  - simultaneous gates on disjoint pairs (parallel-gate operation),
 *  - genuine three-mode exchange (one qubit driven toward two others),
 *    whose resonant dynamics are the analytically known lambda-system
 *    oscillations used by the tests.
 */

#ifndef SNAILQC_PULSE_MULTIMODE_HPP
#define SNAILQC_PULSE_MULTIMODE_HPP

#include <vector>

#include "pulse/integrator.hpp"

namespace snail
{

/** One difference-frequency drive on a pair of modes. */
struct PairDrive
{
    int mode_a = 0;
    int mode_b = 1;
    double coupling = 1.0; //!< g_ab (rad per time unit)
    double detuning = 0.0; //!< pump detuning from w_a - w_b
};

/** A SNAIL neighborhood driven by several simultaneous pumps. */
class MultiModeDrive
{
  public:
    /** @param num_modes qubits coupled through the SNAIL (>= 2). */
    explicit MultiModeDrive(int num_modes);

    /** Add a pump on one pair. @throws SnailError on bad modes. */
    void addDrive(const PairDrive &drive);

    int numModes() const { return _numModes; }
    const std::vector<PairDrive> &drives() const { return _drives; }

    /**
     * Propagator on the single-excitation subspace {|i>} after
     * driving for `duration` (dimension = numModes).
     */
    Matrix propagator(double duration, int steps = 0) const;

    /**
     * Excitation distribution after starting in mode `initial` and
     * driving for `duration`: element i is P(excitation on mode i).
     */
    std::vector<double> excitationDistribution(int initial,
                                               double duration) const;

  private:
    int _numModes;
    std::vector<PairDrive> _drives;
};

/**
 * Resonant three-mode transfer time: mode 0 driven toward modes 1 and
 * 2 with equal coupling g couples only to the bright state
 * (|1> + |2>)/sqrt(2) with strength g sqrt(2), so the excitation fully
 * transfers into that symmetric superposition after
 * t = pi / (2 sqrt(2) g).
 */
double threeModeTransferTime(double coupling);

} // namespace snail

#endif // SNAILQC_PULSE_MULTIMODE_HPP
