#include "pulse/exchange_pulse.hpp"

#include <algorithm>
#include <cmath>
#include <complex>

#include "common/error.hpp"

namespace snail
{

double
PulseEnvelope::value(double t, double duration) const
{
    if (t < 0.0 || t > duration) {
        return 0.0;
    }
    if (kind == EnvelopeKind::Square) {
        return 1.0;
    }
    const double r = std::min(rise_time, duration / 2.0);
    if (r <= 0.0) {
        return 1.0;
    }
    if (t < r) {
        return 0.5 * (1.0 - std::cos(M_PI * t / r));
    }
    if (t > duration - r) {
        return 0.5 * (1.0 - std::cos(M_PI * (duration - t) / r));
    }
    return 1.0;
}

double
PulseEnvelope::area(double duration) const
{
    if (kind == EnvelopeKind::Square) {
        return duration;
    }
    const double r = std::min(rise_time, duration / 2.0);
    // Each cosine ramp integrates to r/2; the flat middle is full.
    return duration - r;
}

namespace
{

/** RK4 step count resolving the fastest frequency in the pulse. */
int
defaultSteps(const ExchangePulse &pulse, double duration)
{
    const double fastest =
        std::max({std::abs(pulse.detuning),
                  std::abs(2.0 * pulse.qubit_delta - pulse.detuning),
                  pulse.coupling, 1.0});
    const double steps = duration * fastest * 400.0;
    return std::max(2000, static_cast<int>(std::ceil(steps)));
}

} // namespace

Matrix
drivenExchangePropagator(const ExchangePulse &pulse, double duration,
                         int steps)
{
    SNAIL_REQUIRE(duration >= 0.0, "negative pulse duration");
    if (steps <= 0) {
        steps = defaultSteps(pulse, duration);
    }
    const double g = pulse.coupling;
    const double delta = pulse.detuning;
    const double counter = 2.0 * pulse.qubit_delta - pulse.detuning;
    const bool rwa_only = pulse.qubit_delta == 0.0;
    const PulseEnvelope env = pulse.envelope;

    TimeDependentHamiltonian h = [=](double t) {
        Matrix m(2, 2);
        Complex phase = std::exp(Complex{0.0, delta * t});
        if (!rwa_only) {
            phase += std::exp(Complex{0.0, counter * t});
        }
        const Complex coupling = g * env.value(t, duration) * phase;
        m(0, 1) = coupling;
        m(1, 0) = std::conj(coupling);
        return m;
    };
    return evolvePropagator(h, 2, 0.0, duration, steps);
}

double
simulatedSwapProbability(const ExchangePulse &pulse, double duration)
{
    const Matrix u = drivenExchangePropagator(pulse, duration);
    // Column 0 is the evolution of |10>; row 1 is the |01> amplitude.
    return std::norm(u(1, 0));
}

std::vector<double>
simulatedChevronRow(const ExchangePulse &pulse,
                    const std::vector<double> &times)
{
    std::vector<double> row;
    row.reserve(times.size());
    for (double t : times) {
        row.push_back(simulatedSwapProbability(pulse, t));
    }
    return row;
}

double
rwaError(double coupling, double qubit_delta, double duration)
{
    ExchangePulse pulse;
    pulse.coupling = coupling;
    pulse.qubit_delta = qubit_delta;
    const Matrix u = drivenExchangePropagator(pulse, duration);

    // RWA closed form for the same Hamiltonian sign convention:
    // U = exp(-i g t sigma_x).
    const double angle = coupling * duration;
    Matrix rwa(2, 2);
    rwa(0, 0) = rwa(1, 1) = Complex{std::cos(angle), 0.0};
    rwa(0, 1) = rwa(1, 0) = Complex{0.0, -std::sin(angle)};

    double worst = 0.0;
    for (std::size_t r = 0; r < 2; ++r) {
        for (std::size_t c = 0; c < 2; ++c) {
            worst = std::max(worst, std::abs(u(r, c) - rwa(r, c)));
        }
    }
    return worst;
}

double
calibrateFlattopDuration(const PulseEnvelope &envelope,
                         double square_duration)
{
    SNAIL_REQUIRE(square_duration > 0.0, "pulse area must be positive");
    if (envelope.kind == EnvelopeKind::Square) {
        return square_duration;
    }
    // area(d) = d - min(rise, d/2); invert for d.
    const double r = envelope.rise_time;
    const double with_full_ramps = square_duration + r;
    if (with_full_ramps / 2.0 >= r) {
        return with_full_ramps;
    }
    // Ramps overlap (d < 2r): area = d/2, so d = 2 * area.
    return 2.0 * square_duration;
}

} // namespace snail
