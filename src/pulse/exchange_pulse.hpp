/**
 * @file
 * Time-domain simulation of the SNAIL's parametrically driven exchange.
 *
 * The paper's Fig. 6 and Eq. 9 describe the driven two-qubit exchange
 * in the rotating-wave approximation (RWA) with an implicit square
 * pulse.  This module integrates the interaction-picture Hamiltonian
 * *without* those idealizations:
 *
 *   H(t)/hbar = g env(t) [ (e^{i delta t} + e^{i (2 Delta - delta) t})
 *                          |10><01| + h.c. ]
 *
 * on the single-excitation subspace {|10>, |01>}, where Delta is the
 * qubit frequency difference the SNAIL pump bridges, delta the pump
 * detuning, and env(t) the pulse envelope.  The e^{i(2 Delta - delta)t}
 * term is the counter-rotating contribution the RWA drops; its effect
 * scales like g / Delta, so the module exposes exactly how far the
 * SNAIL's "n-th root by pulse length" knob (Eq. 9) can be trusted as
 * pulses shorten and couplings strengthen.
 */

#ifndef SNAILQC_PULSE_EXCHANGE_PULSE_HPP
#define SNAILQC_PULSE_EXCHANGE_PULSE_HPP

#include <vector>

#include "pulse/integrator.hpp"

namespace snail
{

/** Pulse envelope shapes. */
enum class EnvelopeKind
{
    Square,  //!< env = 1 over the pulse
    Flattop, //!< cosine ramps of `rise_time` at both ends, flat middle
};

/** A pulse envelope env(t) in [0, 1] over [0, duration]. */
struct PulseEnvelope
{
    EnvelopeKind kind = EnvelopeKind::Square;
    double rise_time = 0.0; //!< ramp length for Flattop

    /** Envelope value at time t within a pulse of length `duration`. */
    double value(double t, double duration) const;

    /** Integral of env over [0, duration] (the pulse area scale). */
    double area(double duration) const;
};

/** Full description of one driven-exchange pulse. */
struct ExchangePulse
{
    double coupling = 1.0;    //!< g (rad per time unit)
    double detuning = 0.0;    //!< pump detuning delta
    double qubit_delta = 0.0; //!< Delta = w1 - w2; 0 disables the
                              //!< counter-rotating term (pure RWA)
    PulseEnvelope envelope;
};

/**
 * Integrate the pulse over [0, duration] and return the 2x2 propagator
 * on the {|10>, |01>} subspace.
 * @param steps_per_unit RK4 steps per unit time x max frequency scale;
 *        the default resolves the counter-rotating oscillation.
 */
Matrix drivenExchangePropagator(const ExchangePulse &pulse, double duration,
                                int steps = 0);

/** P(|10> -> |01>) after the pulse — one pixel of the Fig. 6 chevron. */
double simulatedSwapProbability(const ExchangePulse &pulse,
                                double duration);

/** A full chevron row over a time grid (time-domain Fig. 6). */
std::vector<double> simulatedChevronRow(const ExchangePulse &pulse,
                                        const std::vector<double> &times);

/**
 * Max-norm distance between the integrated propagator and the RWA
 * closed form (Eq. 9 restricted to the exchange subspace) for a square
 * resonant pulse of the given duration.  Grows with coupling /
 * qubit_delta; ~0 when qubit_delta = 0 disables counter-rotation.
 */
double rwaError(double coupling, double qubit_delta, double duration);

/**
 * Flattop pulse duration whose area matches a square pulse of length
 * `square_duration` (the calibration a control stack applies so ramped
 * pulses hit the same rotation angle).
 */
double calibrateFlattopDuration(const PulseEnvelope &envelope,
                                double square_duration);

} // namespace snail

#endif // SNAILQC_PULSE_EXCHANGE_PULSE_HPP
