/**
 * @file
 * Fixed-step RK4 integrator for the time-dependent Schroedinger
 * equation, i dpsi/dt = H(t) psi (hbar = 1).
 *
 * The closed-form exchange results in sim/parametric_exchange.hpp are
 * rotating-wave solutions; this integrator evolves the full time-
 * dependent Hamiltonian (pulse envelopes, counter-rotating terms), so
 * the library can quantify when the closed forms are trustworthy
 * instead of assuming them.
 */

#ifndef SNAILQC_PULSE_INTEGRATOR_HPP
#define SNAILQC_PULSE_INTEGRATOR_HPP

#include <functional>
#include <vector>

#include "linalg/matrix.hpp"

namespace snail
{

/** Callback producing H(t) (square, Hermitian) at a given time. */
using TimeDependentHamiltonian = std::function<Matrix(double)>;

/**
 * Evolve a state under i dpsi/dt = H(t) psi from t0 to t1 with `steps`
 * RK4 steps.
 * @pre steps >= 1; H(t) must stay the size of psi0.
 */
std::vector<Complex> evolveState(const TimeDependentHamiltonian &h,
                                 std::vector<Complex> psi0, double t0,
                                 double t1, int steps);

/**
 * Propagator U(t1, t0) of the same equation, integrated column by
 * column.  Unitary to integration accuracy — callers can check
 * deviation via unitarityError().
 */
Matrix evolvePropagator(const TimeDependentHamiltonian &h, std::size_t dim,
                        double t0, double t1, int steps);

/** Max-norm of U dagger U - I: integration-quality diagnostic. */
double unitarityError(const Matrix &u);

} // namespace snail

#endif // SNAILQC_PULSE_INTEGRATOR_HPP
