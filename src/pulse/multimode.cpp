#include "pulse/multimode.hpp"

#include <cmath>
#include <complex>

#include "common/error.hpp"

namespace snail
{

MultiModeDrive::MultiModeDrive(int num_modes) : _numModes(num_modes)
{
    SNAIL_REQUIRE(num_modes >= 2,
                  "a SNAIL neighborhood needs >= 2 modes, got "
                      << num_modes);
}

void
MultiModeDrive::addDrive(const PairDrive &drive)
{
    SNAIL_REQUIRE(drive.mode_a >= 0 && drive.mode_a < _numModes &&
                      drive.mode_b >= 0 && drive.mode_b < _numModes,
                  "drive modes (" << drive.mode_a << ", " << drive.mode_b
                                  << ") out of range");
    SNAIL_REQUIRE(drive.mode_a != drive.mode_b,
                  "drive needs two distinct modes");
    SNAIL_REQUIRE(drive.coupling > 0.0, "drive coupling must be positive");
    _drives.push_back(drive);
}

Matrix
MultiModeDrive::propagator(double duration, int steps) const
{
    SNAIL_REQUIRE(duration >= 0.0, "negative drive duration");
    if (steps <= 0) {
        double fastest = 1.0;
        for (const auto &drive : _drives) {
            fastest = std::max({fastest, drive.coupling,
                                std::abs(drive.detuning)});
        }
        steps = std::max(2000,
                         static_cast<int>(
                             std::ceil(duration * fastest * 400.0)));
    }
    const int n = _numModes;
    const std::vector<PairDrive> drives = _drives;

    TimeDependentHamiltonian h = [n, drives](double t) {
        Matrix m(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
        for (const auto &drive : drives) {
            const Complex term =
                drive.coupling *
                std::exp(Complex{0.0, drive.detuning * t});
            m(static_cast<std::size_t>(drive.mode_a),
              static_cast<std::size_t>(drive.mode_b)) += term;
            m(static_cast<std::size_t>(drive.mode_b),
              static_cast<std::size_t>(drive.mode_a)) +=
                std::conj(term);
        }
        return m;
    };
    return evolvePropagator(h, static_cast<std::size_t>(n), 0.0, duration,
                            steps);
}

std::vector<double>
MultiModeDrive::excitationDistribution(int initial, double duration) const
{
    SNAIL_REQUIRE(initial >= 0 && initial < _numModes,
                  "initial mode " << initial << " out of range");
    const Matrix u = propagator(duration);
    std::vector<double> dist(static_cast<std::size_t>(_numModes));
    for (int i = 0; i < _numModes; ++i) {
        dist[static_cast<std::size_t>(i)] =
            std::norm(u(static_cast<std::size_t>(i),
                        static_cast<std::size_t>(initial)));
    }
    return dist;
}

double
threeModeTransferTime(double coupling)
{
    SNAIL_REQUIRE(coupling > 0.0, "coupling must be positive");
    return M_PI / (2.0 * std::sqrt(2.0) * coupling);
}

} // namespace snail
