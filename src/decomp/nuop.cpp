#include "decomp/nuop.hpp"

#include <array>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace snail
{

namespace
{

/**
 * Hot-loop kernels on fixed-size 4x4 matrices (std::array) — the Adam
 * iteration runs millions of 4x4 products, so we avoid heap-allocating
 * Matrix temporaries here.
 */
using M4 = std::array<Complex, 16>;
using M2 = std::array<Complex, 4>;

M4
toM4(const Matrix &m)
{
    M4 out;
    for (std::size_t i = 0; i < 4; ++i) {
        for (std::size_t j = 0; j < 4; ++j) {
            out[i * 4 + j] = m(i, j);
        }
    }
    return out;
}

Matrix
fromM4(const M4 &m)
{
    Matrix out(4, 4);
    for (std::size_t i = 0; i < 4; ++i) {
        for (std::size_t j = 0; j < 4; ++j) {
            out(i, j) = m[i * 4 + j];
        }
    }
    return out;
}

M4
identity4()
{
    M4 out{};
    out[0] = out[5] = out[10] = out[15] = Complex(1.0, 0.0);
    return out;
}

M4
mul4(const M4 &a, const M4 &b)
{
    M4 out{};
    for (std::size_t i = 0; i < 4; ++i) {
        for (std::size_t k = 0; k < 4; ++k) {
            const Complex aik = a[i * 4 + k];
            for (std::size_t j = 0; j < 4; ++j) {
                out[i * 4 + j] += aik * b[k * 4 + j];
            }
        }
    }
    return out;
}

M4
kron22(const M2 &a, const M2 &b)
{
    M4 out;
    for (std::size_t i = 0; i < 2; ++i) {
        for (std::size_t j = 0; j < 2; ++j) {
            const Complex aij = a[i * 2 + j];
            for (std::size_t k = 0; k < 2; ++k) {
                for (std::size_t l = 0; l < 2; ++l) {
                    out[(i * 2 + k) * 4 + (j * 2 + l)] = aij * b[k * 2 + l];
                }
            }
        }
    }
    return out;
}

/** Tr(f * g) for 4x4. */
Complex
traceProduct(const M4 &f, const M4 &g)
{
    Complex acc(0.0, 0.0);
    for (std::size_t r = 0; r < 4; ++r) {
        for (std::size_t c = 0; c < 4; ++c) {
            acc += f[r * 4 + c] * g[c * 4 + r];
        }
    }
    return acc;
}

/** U3 matrix and its three parameter derivatives. */
void
u3WithGrad(double theta, double phi, double lam, M2 &u, M2 &dth, M2 &dph,
           M2 &dlm)
{
    const double c = std::cos(theta / 2.0);
    const double s = std::sin(theta / 2.0);
    const Complex eil = std::polar(1.0, lam);
    const Complex eip = std::polar(1.0, phi);
    const Complex eipl = std::polar(1.0, phi + lam);
    const Complex i1(0.0, 1.0);

    u = {Complex(c, 0.0), -eil * s, eip * s, eipl * c};
    dth = {Complex(-s / 2.0, 0.0), -eil * (c / 2.0), eip * (c / 2.0),
           -eipl * (s / 2.0)};
    dph = {Complex(0.0, 0.0), Complex(0.0, 0.0), i1 * eip * s, i1 * eipl * c};
    dlm = {Complex(0.0, 0.0), -i1 * eil * s, Complex(0.0, 0.0),
           i1 * eipl * c};
}

/** The template state for one evaluation: layers, prefixes, suffixes. */
struct TemplateEval
{
    double infidelity;
    std::vector<double> grad;
    M4 achieved;
};

/**
 * Evaluate objective 1 - |Tr(T^dagger C)|/4 and its gradient.
 *
 * C = L_k B L_{k-1} B ... B L_0, with L_i = u3(a_i) (x) u3(b_i).
 * params layout: [layer i][qubit 0/1][theta, phi, lam].
 */
TemplateEval
evaluate(const M4 &target_dag, const M4 &basis,
         const std::vector<double> &params, int k)
{
    const int layers = k + 1;
    std::vector<M2> u_hi(layers), u_lo(layers);
    std::vector<std::array<M2, 3>> du_hi(layers), du_lo(layers);
    for (int i = 0; i < layers; ++i) {
        const double *p = &params[static_cast<std::size_t>(i) * 6];
        u3WithGrad(p[0], p[1], p[2], u_hi[i], du_hi[i][0], du_hi[i][1],
                   du_hi[i][2]);
        u3WithGrad(p[3], p[4], p[5], u_lo[i], du_lo[i][0], du_lo[i][1],
                   du_lo[i][2]);
    }

    std::vector<M4> layer(layers);
    for (int i = 0; i < layers; ++i) {
        layer[i] = kron22(u_hi[i], u_lo[i]);
    }

    // below[i] = B L_{i-1} B ... L_0 (everything applied before layer i).
    std::vector<M4> below(layers);
    below[0] = identity4();
    M4 acc = layer[0];
    for (int i = 1; i < layers; ++i) {
        below[i] = mul4(basis, acc);
        acc = mul4(layer[i], below[i]);
    }
    const M4 circuit = acc;

    // above[i] = L_k B ... B (everything applied after layer i).
    std::vector<M4> above(layers);
    above[layers - 1] = identity4();
    M4 up = identity4();
    for (int i = layers - 2; i >= 0; --i) {
        up = mul4(mul4(up, layer[i + 1]), basis);
        above[i] = up;
    }

    const Complex g = traceProduct(target_dag, circuit) * 0.25;
    const double mag = std::abs(g);
    TemplateEval out;
    out.infidelity = 1.0 - mag;
    out.achieved = circuit;
    out.grad.assign(params.size(), 0.0);
    if (mag < 1e-15) {
        return out; // gradient direction undefined at exactly zero
    }
    const Complex phase = std::conj(g) / mag;

    for (int i = 0; i < layers; ++i) {
        // dg/dp = Tr(F dL)/4 with F = below * T^dagger * above.
        const M4 f = mul4(below[i], mul4(target_dag, above[i]));
        for (int comp = 0; comp < 3; ++comp) {
            const M4 dl_hi = kron22(du_hi[i][static_cast<std::size_t>(comp)],
                                    u_lo[i]);
            const M4 dl_lo = kron22(u_hi[i],
                                    du_lo[i][static_cast<std::size_t>(comp)]);
            const Complex dg_hi = traceProduct(f, dl_hi) * 0.25;
            const Complex dg_lo = traceProduct(f, dl_lo) * 0.25;
            // d(1-|g|)/dp = -Re(conj(g)/|g| dg/dp)
            out.grad[static_cast<std::size_t>(i) * 6 +
                     static_cast<std::size_t>(comp)] =
                -(phase * dg_hi).real();
            out.grad[static_cast<std::size_t>(i) * 6 + 3 +
                     static_cast<std::size_t>(comp)] =
                -(phase * dg_lo).real();
        }
    }
    return out;
}

} // namespace

NuOpResult
nuopDecompose(const Matrix &target, const Gate &basis, int k,
              const NuOpOptions &options)
{
    SNAIL_REQUIRE(target.rows() == 4 && target.cols() == 4,
                  "nuopDecompose needs a 4x4 target");
    SNAIL_REQUIRE(k >= 0, "nuopDecompose needs k >= 0");
    SNAIL_REQUIRE(basis.isTwoQubit(), "basis gate must be a 2Q gate");

    const M4 target_dag = toM4(target.dagger());
    const M4 basis_m = toM4(basis.matrix());
    const int layers = k + 1;
    const std::size_t num_params = static_cast<std::size_t>(layers) * 6;

    Rng rng(options.seed);
    NuOpResult best;
    best.k = k;
    best.infidelity = 2.0;

    for (int restart = 0; restart < options.restarts; ++restart) {
        std::vector<double> params(num_params);
        for (auto &p : params) {
            p = rng.uniform(-M_PI, M_PI);
        }
        // Adam state.
        std::vector<double> m(num_params, 0.0);
        std::vector<double> v(num_params, 0.0);
        const double beta1 = 0.9;
        const double beta2 = 0.999;
        const double eps = 1e-9;

        // Phase 1: Adam finds the basin.
        TemplateEval eval = evaluate(target_dag, basis_m, params, k);
        for (int iter = 1; iter <= options.max_iterations; ++iter) {
            if (eval.infidelity < 1e-5) {
                break;
            }
            const double b1t = 1.0 - std::pow(beta1, iter);
            const double b2t = 1.0 - std::pow(beta2, iter);
            for (std::size_t i = 0; i < num_params; ++i) {
                m[i] = beta1 * m[i] + (1.0 - beta1) * eval.grad[i];
                v[i] = beta2 * v[i] +
                       (1.0 - beta2) * eval.grad[i] * eval.grad[i];
                params[i] -= options.learning_rate * (m[i] / b1t) /
                             (std::sqrt(v[i] / b2t) + eps);
            }
            eval = evaluate(target_dag, basis_m, params, k);
        }

        // Phase 2: Polak-Ribiere conjugate gradient with a backtracking
        // line search polishes to machine precision inside the basin
        // (Adam's normalized steps stall at ~1e-7, and plain gradient
        // descent crawls because the template parameterization has gauge
        // redundancy and an ill-conditioned Hessian).
        std::vector<double> dir(num_params);
        std::vector<double> prev_grad = eval.grad;
        for (std::size_t i = 0; i < num_params; ++i) {
            dir[i] = -eval.grad[i];
        }
        double step = 1.0;
        for (int iter = 0; iter < 800 && eval.infidelity > options.tolerance;
             ++iter) {
            std::vector<double> trial(num_params);
            TemplateEval trial_eval;
            bool accepted = false;
            for (int bt = 0; bt < 48; ++bt) {
                for (std::size_t i = 0; i < num_params; ++i) {
                    trial[i] = params[i] + step * dir[i];
                }
                trial_eval = evaluate(target_dag, basis_m, trial, k);
                if (trial_eval.infidelity < eval.infidelity) {
                    accepted = true;
                    break;
                }
                step *= 0.5;
                if (step < 1e-16) {
                    break;
                }
            }
            if (!accepted) {
                // Restart along steepest descent once before giving up.
                bool was_steepest = true;
                for (std::size_t i = 0; i < num_params; ++i) {
                    if (std::abs(dir[i] + eval.grad[i]) > 1e-18) {
                        was_steepest = false;
                        break;
                    }
                }
                if (was_steepest) {
                    break;
                }
                for (std::size_t i = 0; i < num_params; ++i) {
                    dir[i] = -eval.grad[i];
                }
                step = 1.0;
                continue;
            }
            params.swap(trial);
            prev_grad.swap(eval.grad);
            eval = trial_eval;
            step *= 2.0;

            // Polak-Ribiere update with automatic restart.
            double num = 0.0;
            double den = 0.0;
            for (std::size_t i = 0; i < num_params; ++i) {
                num += eval.grad[i] * (eval.grad[i] - prev_grad[i]);
                den += prev_grad[i] * prev_grad[i];
            }
            const double beta = (den > 0.0) ? std::max(0.0, num / den) : 0.0;
            double descent = 0.0;
            for (std::size_t i = 0; i < num_params; ++i) {
                dir[i] = -eval.grad[i] + beta * dir[i];
                descent += dir[i] * eval.grad[i];
            }
            if (descent >= 0.0) {
                for (std::size_t i = 0; i < num_params; ++i) {
                    dir[i] = -eval.grad[i];
                }
            }
        }

        if (eval.infidelity < best.infidelity) {
            best.params = params;
            best.infidelity = eval.infidelity;
            best.achieved = fromM4(eval.achieved);
        }
        if (best.infidelity < options.tolerance) {
            break;
        }
    }
    return best;
}

NuOpResult
nuopDecomposeAdaptive(const Matrix &target, const Gate &basis, int k_min,
                      int k_max, const NuOpOptions &options)
{
    SNAIL_REQUIRE(k_min >= 0 && k_max >= k_min,
                  "invalid k range for adaptive decomposition");
    // A template is accepted as "exact" at this threshold; the optimizer's
    // own tolerance may be stricter without forcing extra k.
    const double accept = std::max(options.tolerance, 1e-8);
    NuOpResult best;
    best.infidelity = 2.0;
    for (int k = k_min; k <= k_max; ++k) {
        NuOpResult r = nuopDecompose(target, basis, k, options);
        if (r.infidelity < best.infidelity) {
            best = r;
        }
        if (best.infidelity < accept) {
            break;
        }
    }
    return best;
}

Circuit
nuopToCircuit(const NuOpResult &result, const Gate &basis)
{
    Circuit c(2, "nuop");
    const int layers = result.k + 1;
    SNAIL_REQUIRE(result.params.size() ==
                      static_cast<std::size_t>(layers) * 6,
                  "result parameter vector has the wrong size");
    for (int i = 0; i < layers; ++i) {
        if (i > 0) {
            c.append(basis, {1, 0});
        }
        const double *p = &result.params[static_cast<std::size_t>(i) * 6];
        c.u3(p[0], p[1], p[2], 1);
        c.u3(p[3], p[4], p[5], 0);
    }
    return c;
}

} // namespace snail
