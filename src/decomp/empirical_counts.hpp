/**
 * @file
 * Empirical basis-count model for arbitrary 2Q basis gates.
 *
 * The analytic count rules (weyl/basis_counts.hpp) cover CNOT, iSWAP,
 * sqrt(iSWAP) and SYC.  The paper's future-work direction — transpiling
 * whole circuits to deeper fractional roots n-root-iSWAP (n > 2), where
 * no analytic decomposition is known — needs counts anyway, so this model
 * measures them: for a Weyl class (a, b, c) it synthesizes the canonical
 * representative CAN(a, b, c) with the NuOp engine, increasing the
 * template size until the decomposition is numerically exact, and caches
 * the result per class.  Local equivalence guarantees the count is a
 * class property.
 */

#ifndef SNAILQC_DECOMP_EMPIRICAL_COUNTS_HPP
#define SNAILQC_DECOMP_EMPIRICAL_COUNTS_HPP

#include <string>
#include <unordered_map>

#include "decomp/nuop.hpp"
#include "weyl/coordinates.hpp"

namespace snail
{

/** Measured (NuOp-backed) basis-count oracle for one basis gate. */
class EmpiricalBasisModel
{
  public:
    /**
     * @param basis the native 2Q gate (e.g. gates::nrootIswap(3)).
     * @param pulse_duration time of one native pulse in normalized units.
     * @param k_max template-size search ceiling.
     * @param tolerance infidelity below which a template counts as exact.
     */
    EmpiricalBasisModel(Gate basis, double pulse_duration, int k_max = 10,
                        double tolerance = 1e-7,
                        NuOpOptions optimizer = NuOpOptions());

    const Gate &basis() const { return _basis; }
    double pulseDuration() const { return _pulseDuration; }

    /** Minimal template size implementing the class (cached). */
    int count(const WeylCoords &coords) const;

    /** Count for a concrete unitary. */
    int count(const Matrix &u) const;

    /** Time cost of the class: count x pulse duration. */
    double duration(const WeylCoords &coords) const;

    /** Number of distinct classes measured so far. */
    std::size_t cacheSize() const { return _cache.size(); }

  private:
    Gate _basis;
    double _pulseDuration;
    int _kMax;
    double _tolerance;
    NuOpOptions _optimizer;
    mutable std::unordered_map<std::string, int> _cache;
};

/** The natural model for the n-th root of iSWAP: pulse duration 1/n. */
EmpiricalBasisModel nrootIswapModel(double n, int k_max = 10);

} // namespace snail

#endif // SNAILQC_DECOMP_EMPIRICAL_COUNTS_HPP
