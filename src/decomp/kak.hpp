/**
 * @file
 * Full Cartan (KAK) decomposition with explicit one-qubit factors.
 *
 * magicDecompose() (weyl/coordinates.hpp) produces the 4x4 local factors;
 * here they are split into their 2x2 tensor components so the result can
 * be emitted as a circuit:  U = e^{i phase} (after0 (x) after1) *
 * CAN(a,b,c) * (before0 (x) before1).
 */

#ifndef SNAILQC_DECOMP_KAK_HPP
#define SNAILQC_DECOMP_KAK_HPP

#include "ir/circuit.hpp"
#include "weyl/coordinates.hpp"

namespace snail
{

/** KAK factorization with 2x2 local factors. */
struct KakDecomposition
{
    Matrix before0;  //!< applied first on the first (high) qubit
    Matrix before1;  //!< applied first on the second (low) qubit
    Matrix after0;   //!< applied last on the first qubit
    Matrix after1;   //!< applied last on the second qubit
    double a = 0.0;  //!< canonical-interaction representative
    double b = 0.0;
    double c = 0.0;
    double phase = 0.0;

    /** Canonical Weyl coordinates of the class. */
    WeylCoords coordinates() const { return canonicalize(a, b, c); }
};

/** Compute the KAK decomposition of a 4x4 unitary. */
KakDecomposition kakDecompose(const Matrix &u);

/**
 * Emit the decomposition as a 2-qubit circuit
 *   [unitary2 before] [canonical(a,b,c)] [unitary2 after]
 * exactly reproducing u up to global phase.
 */
Circuit kakToCircuit(const KakDecomposition &kak);

} // namespace snail

#endif // SNAILQC_DECOMP_KAK_HPP
