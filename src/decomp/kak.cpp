#include "decomp/kak.hpp"

#include "common/error.hpp"
#include "linalg/kron_factor.hpp"

namespace snail
{

KakDecomposition
kakDecompose(const Matrix &u)
{
    const MagicDecomposition md = magicDecompose(u);

    const KronFactors k1 = factorKronecker(md.k1);
    const KronFactors k2 = factorKronecker(md.k2);
    SNAIL_ASSERT(k1.residual < 1e-6 && k2.residual < 1e-6,
                 "KAK local factors must be tensor products (residuals "
                     << k1.residual << ", " << k2.residual << ")");

    KakDecomposition out;
    out.after0 = k1.left;
    out.after1 = k1.right;
    out.before0 = k2.left;
    out.before1 = k2.right;
    out.a = md.a_rep;
    out.b = md.b_rep;
    out.c = md.c_rep;
    out.phase = md.phase;
    return out;
}

Circuit
kakToCircuit(const KakDecomposition &kak)
{
    Circuit c(2, "kak");
    // The circuit acts with qubit 1 as the "first"/high tensor factor so
    // that circuitUnitary() reproduces the 4x4 matrix convention.
    c.unitary2(kak.before0, 1);
    c.unitary2(kak.before1, 0);
    c.append(gates::canonical(kak.a, kak.b, kak.c), {1, 0});
    c.unitary2(kak.after0, 1);
    c.unitary2(kak.after1, 0);
    return c;
}

} // namespace snail
