#include "decomp/empirical_counts.hpp"

#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace snail
{

EmpiricalBasisModel::EmpiricalBasisModel(Gate basis, double pulse_duration,
                                         int k_max, double tolerance,
                                         NuOpOptions optimizer)
    : _basis(std::move(basis)),
      _pulseDuration(pulse_duration),
      _kMax(k_max),
      _tolerance(tolerance),
      _optimizer(optimizer)
{
    SNAIL_REQUIRE(_basis.isTwoQubit(), "basis gate must be 2Q");
    SNAIL_REQUIRE(pulse_duration > 0.0, "pulse duration must be positive");
    SNAIL_REQUIRE(k_max >= 1, "k_max must be >= 1");
}

int
EmpiricalBasisModel::count(const WeylCoords &coords) const
{
    // Class cache key with 1e-9 rounding; canonical coords are stable at
    // that precision.
    std::ostringstream key;
    key << static_cast<long long>(std::llround(coords.a * 1e9)) << ':'
        << static_cast<long long>(std::llround(coords.b * 1e9)) << ':'
        << static_cast<long long>(std::llround(coords.c * 1e9));
    const auto it = _cache.find(key.str());
    if (it != _cache.end()) {
        return it->second;
    }

    int result = -1;
    if (coords.isClose(WeylCoords{0.0, 0.0, 0.0})) {
        result = 0;
    } else {
        // Synthesize the canonical representative of the class; counts
        // are invariant under local dressing.
        const Matrix target =
            gates::canonical(coords.a, coords.b, coords.c).matrix();
        NuOpOptions opts = _optimizer;
        opts.tolerance = std::min(opts.tolerance, _tolerance * 0.1);
        const NuOpResult r =
            nuopDecomposeAdaptive(target, _basis, 1, _kMax, opts);
        SNAIL_REQUIRE(r.infidelity < _tolerance,
                      "no template of size <= " << _kMax
                          << " implements the class; best infidelity "
                          << r.infidelity);
        result = r.k;
    }
    _cache.emplace(key.str(), result);
    return result;
}

int
EmpiricalBasisModel::count(const Matrix &u) const
{
    return count(weylCoordinates(u));
}

double
EmpiricalBasisModel::duration(const WeylCoords &coords) const
{
    return static_cast<double>(count(coords)) * _pulseDuration;
}

EmpiricalBasisModel
nrootIswapModel(double n, int k_max)
{
    NuOpOptions opts;
    opts.restarts = 6;
    opts.max_iterations = 700;
    return EmpiricalBasisModel(gates::nrootIswap(n), 1.0 / n, k_max, 1e-7,
                               opts);
}

} // namespace snail
