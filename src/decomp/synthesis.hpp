/**
 * @file
 * Basis-gate circuit synthesis for arbitrary 2Q unitaries.
 *
 * The gate *count* is decided analytically from the target's Weyl
 * coordinates (weyl/basis_counts.hpp) exactly as in the paper's KAK-based
 * backends; the interleaved 1Q gates are then solved numerically with the
 * NuOp engine, which converges to machine precision because a k-count
 * decomposition is known to exist.  Tests verify the emitted circuits
 * reproduce their targets.
 */

#ifndef SNAILQC_DECOMP_SYNTHESIS_HPP
#define SNAILQC_DECOMP_SYNTHESIS_HPP

#include "decomp/nuop.hpp"
#include "ir/circuit.hpp"
#include "weyl/basis_counts.hpp"

namespace snail
{

/** The concrete Gate used as the native pulse for a basis choice. */
Gate basisSpecGate(const BasisSpec &basis);

/** Outcome of a synthesis request. */
struct SynthesisResult
{
    Circuit circuit;      //!< 2-qubit circuit in the requested basis
    int basis_uses = 0;   //!< native pulses consumed
    double infidelity = 0.0;
};

/**
 * Synthesize a 2-qubit circuit for `u` using only 1Q gates and the basis
 * gate.  The basis-use count is the analytic Weyl-class count; if the
 * numerical solve does not reach `tolerance` the count is escalated (this
 * never triggers in practice and is asserted against in tests).
 */
SynthesisResult synthesizeInBasis(const Matrix &u, const BasisSpec &basis,
                                  const NuOpOptions &options = NuOpOptions(),
                                  double tolerance = 1e-8);

/** Synthesize a local (tensor-product) 4x4 unitary as two U3 gates. */
Circuit synthesizeLocal(const Matrix &u);

} // namespace snail

#endif // SNAILQC_DECOMP_SYNTHESIS_HPP
