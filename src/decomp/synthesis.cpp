#include "decomp/synthesis.hpp"

#include "common/error.hpp"
#include "linalg/kron_factor.hpp"
#include "linalg/su2.hpp"

namespace snail
{

Gate
basisSpecGate(const BasisSpec &basis)
{
    switch (basis.kind) {
      case BasisKind::CNOT:
        return gates::cx();
      case BasisKind::SqISwap:
        return gates::sqiswap();
      case BasisKind::ISwap:
        return gates::iswap();
      case BasisKind::Sycamore:
        return gates::sycamore();
    }
    SNAIL_ASSERT(false, "unhandled basis kind");
    return gates::cx();
}

Circuit
synthesizeLocal(const Matrix &u)
{
    const KronFactors f = factorKronecker(u);
    SNAIL_REQUIRE(f.residual < 1e-7,
                  "synthesizeLocal needs a tensor-product input (residual "
                      << f.residual << ")");
    const ZyzAngles hi = zyzDecompose(f.left);
    const ZyzAngles lo = zyzDecompose(f.right);
    Circuit c(2, "local");
    // u3(theta, phi, lam) = e^{i(phi+lam)/2} Rz(phi) Ry(theta) Rz(lam);
    // global phases are dropped.
    c.u3(hi.theta, hi.phi, hi.lam, 1);
    c.u3(lo.theta, lo.phi, lo.lam, 0);
    return c;
}

SynthesisResult
synthesizeInBasis(const Matrix &u, const BasisSpec &basis,
                  const NuOpOptions &options, double tolerance)
{
    const WeylCoords coords = weylCoordinates(u);
    int k = basisCount(basis, coords);
    const Gate basis_gate = basisSpecGate(basis);

    if (k == 0) {
        SynthesisResult out{synthesizeLocal(u), 0, 0.0};
        return out;
    }

    // The analytic count is an existence guarantee; allow one escalation
    // step as a numerical safety valve.
    NuOpOptions opts = options;
    for (int attempt = 0; attempt < 2; ++attempt) {
        const NuOpResult r = nuopDecompose(u, basis_gate, k, opts);
        if (r.infidelity <= tolerance) {
            SynthesisResult out{nuopToCircuit(r, basis_gate), k,
                                r.infidelity};
            return out;
        }
        ++k;
        opts.restarts += 4;
    }
    SNAIL_THROW("synthesis failed to converge for basis " << basis.name());
}

} // namespace snail
