/**
 * @file
 * NuOp-style approximate decomposition (paper Sec. 6.3, Eq. 10).
 *
 * A target 2Q unitary is approximated by the template
 *     (u_k (x) v_k) B (u_{k-1} (x) v_{k-1}) B ... B (u_0 (x) v_0)
 * with B a fixed basis gate (typically an n-th root of iSWAP) and u_i,
 * v_i parameterized as U3 gates.  The 6(k+1) angles are optimized with an
 * analytic-gradient Adam loop under random restarts; the objective is the
 * Hilbert-Schmidt fidelity of Eq. 11,
 *     Fd = |Tr(Ud^dagger Ut)| / dim.
 *
 * This reproduces the engine behind Fig. 15 and doubles as an exact
 * synthesizer: when k matches the analytic basis count the optimizer
 * converges to machine precision.
 */

#ifndef SNAILQC_DECOMP_NUOP_HPP
#define SNAILQC_DECOMP_NUOP_HPP

#include <vector>

#include "gates/gate.hpp"
#include "ir/circuit.hpp"
#include "linalg/matrix.hpp"

namespace snail
{

/** Optimizer configuration for the template search. */
struct NuOpOptions
{
    int max_iterations = 1000;   //!< Adam steps per restart
    int restarts = 6;            //!< random restarts before giving up
    double tolerance = 1e-10;    //!< stop when infidelity drops below this
    double learning_rate = 0.08; //!< Adam step size
    unsigned long long seed = 0x5eedULL;
};

/** Result of a template optimization. */
struct NuOpResult
{
    /** U3 angles, layout [layer][qubit][theta, phi, lam]. */
    std::vector<double> params;
    double infidelity = 1.0; //!< 1 - Fd at the optimum
    int k = 0;               //!< number of basis-gate applications
    Matrix achieved;         //!< the template's unitary at the optimum
};

/**
 * Optimize a k-application template of `basis` toward `target`.
 * @param target 4x4 unitary to approximate.
 * @param basis the fixed 2Q basis gate B.
 * @param k number of B applications in the template (k >= 0).
 */
NuOpResult nuopDecompose(const Matrix &target, const Gate &basis, int k,
                         const NuOpOptions &options = NuOpOptions());

/**
 * Increase k until the template reaches `tolerance`, starting from k_min.
 * Returns the first result that converged (or the best attempt at k_max).
 */
NuOpResult nuopDecomposeAdaptive(const Matrix &target, const Gate &basis,
                                 int k_min, int k_max,
                                 const NuOpOptions &options = NuOpOptions());

/**
 * Render a result as a 2-qubit circuit: U3 layers interleaved with the
 * basis gate, acting with qubit 1 as the high tensor factor.
 */
Circuit nuopToCircuit(const NuOpResult &result, const Gate &basis);

} // namespace snail

#endif // SNAILQC_DECOMP_NUOP_HPP
