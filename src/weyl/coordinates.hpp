/**
 * @file
 * Weyl-chamber coordinates of two-qubit unitaries.
 *
 * Every 2Q unitary U factors (Cartan/KAK) as
 *     U = e^{i t} (K1) exp(i (a XX + b YY + c ZZ)) (K2)
 * with K1, K2 in SU(2) (x) SU(2).  The triple (a, b, c), canonicalized
 * into the Weyl chamber pi/4 >= a >= b >= |c|, labels the local-equivalence
 * class of U and determines how many uses of a given basis gate are needed
 * to implement it — the quantity the paper's evaluation counts.
 *
 * Reference points (this normalization):
 *   identity (0,0,0)          CNOT/CZ (pi/4, 0, 0)
 *   iSWAP (pi/4, pi/4, 0)     SWAP (pi/4, pi/4, pi/4)
 *   n-root-iSWAP (pi/4n, pi/4n, 0)   B gate (pi/4, pi/8, 0)
 */

#ifndef SNAILQC_WEYL_COORDINATES_HPP
#define SNAILQC_WEYL_COORDINATES_HPP

#include <array>

#include "gates/gate.hpp"
#include "linalg/matrix.hpp"

namespace snail
{

/** Canonical Weyl-chamber coordinates. */
struct WeylCoords
{
    double a = 0.0;
    double b = 0.0;
    double c = 0.0;

    /** Largest coordinate-wise distance to another triple. */
    double distance(const WeylCoords &other) const;

    /** True when within tol of another triple. */
    bool isClose(const WeylCoords &other, double tol = 1e-8) const;
};

/**
 * Raw magic-basis (Cartan) decomposition of a 4x4 unitary:
 *   U = e^{i phase} K1 * CAN(a_rep, b_rep, c_rep) * K2
 * where K1/K2 are local (tensor-product) unitaries and (a_rep, b_rep,
 * c_rep) is a not-necessarily-canonical representative of the class.
 */
struct MagicDecomposition
{
    Matrix k1;             //!< local factor applied last (4x4 tensor product)
    Matrix k2;             //!< local factor applied first
    double a_rep;          //!< canonical-interaction representative
    double b_rep;
    double c_rep;
    double phase;          //!< global phase t
};

/** Compute the raw Cartan decomposition. @pre u is a 4x4 unitary. */
MagicDecomposition magicDecompose(const Matrix &u);

/** Canonical Weyl coordinates of a 4x4 unitary. */
WeylCoords weylCoordinates(const Matrix &u);

/** Canonical Weyl coordinates of a 2Q gate. */
WeylCoords weylCoordinates(const Gate &gate);

/**
 * Canonicalize any coordinate representative into the Weyl chamber
 * pi/4 >= a >= b >= |c| (c may be negative for mirror classes; the +c
 * representative is chosen on the a = pi/4 boundary where both signs are
 * equivalent).
 */
WeylCoords canonicalize(double a, double b, double c);

/** True when the two unitaries are locally equivalent (same class). */
bool locallyEquivalent(const Matrix &u, const Matrix &v, double tol = 1e-7);

} // namespace snail

#endif // SNAILQC_WEYL_COORDINATES_HPP
