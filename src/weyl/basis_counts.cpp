#include "weyl/basis_counts.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "linalg/random_unitary.hpp"

namespace snail
{

namespace
{

constexpr double kQuarterPi = M_PI / 4.0;
constexpr double kEighthPi = M_PI / 8.0;

bool
isIdentityClass(const WeylCoords &w, double tol)
{
    return w.isClose(WeylCoords{0.0, 0.0, 0.0}, tol);
}

} // namespace

std::string
BasisSpec::name() const
{
    switch (kind) {
      case BasisKind::CNOT:
        return "cx";
      case BasisKind::SqISwap:
        return "sqiswap";
      case BasisKind::ISwap:
        return "iswap";
      case BasisKind::Sycamore:
        return "syc";
    }
    SNAIL_ASSERT(false, "unhandled basis kind");
    return {};
}

BasisSpec
parseBasisSpec(const std::string &name)
{
    BasisSpec spec;
    if (name == "cx" || name == "cnot") {
        spec.kind = BasisKind::CNOT;
    } else if (name == "sqiswap") {
        spec.kind = BasisKind::SqISwap;
    } else if (name == "iswap") {
        spec.kind = BasisKind::ISwap;
    } else if (name == "syc") {
        spec.kind = BasisKind::Sycamore;
    } else {
        SNAIL_THROW("unknown basis: " << name << " (cx|sqiswap|iswap|syc)");
    }
    return spec;
}

double
BasisSpec::pulseDuration() const
{
    switch (kind) {
      case BasisKind::CNOT:
        return 1.0;
      case BasisKind::SqISwap:
        // Half of a full iSWAP exchange pulse (paper Sec. 6.3).
        return 0.5;
      case BasisKind::ISwap:
        return 1.0;
      case BasisKind::Sycamore:
        return 1.0;
    }
    SNAIL_ASSERT(false, "unhandled basis kind");
    return 1.0;
}

int
cnotCount(const WeylCoords &w, double tol)
{
    if (isIdentityClass(w, tol)) {
        return 0;
    }
    if (w.isClose(WeylCoords{kQuarterPi, 0.0, 0.0}, tol)) {
        return 1;
    }
    // Two CNOTs cover exactly the c == 0 face of the chamber.
    if (std::abs(w.c) <= tol) {
        return 2;
    }
    return 3;
}

int
sqiswapCount(const WeylCoords &w, double tol)
{
    if (isIdentityClass(w, tol)) {
        return 0;
    }
    if (w.isClose(WeylCoords{kEighthPi, kEighthPi, 0.0}, tol)) {
        return 1;
    }
    // Huang et al. W region: reachable with two sqrt(iSWAP) iff
    // a >= b + |c|.
    if (w.a + tol >= w.b + std::abs(w.c)) {
        return 2;
    }
    return 3;
}

int
iswapCount(const WeylCoords &w, double tol)
{
    if (isIdentityClass(w, tol)) {
        return 0;
    }
    if (w.isClose(WeylCoords{kQuarterPi, kQuarterPi, 0.0}, tol)) {
        return 1;
    }
    if (std::abs(w.c) <= tol) {
        return 2;
    }
    return 3;
}

int
sycamoreCount(const WeylCoords &w, bool optimistic, double tol)
{
    if (isIdentityClass(w, tol)) {
        return 0;
    }
    static const WeylCoords syc_class =
        weylCoordinates(gates::sycamore().matrix());
    if (w.isClose(syc_class, tol)) {
        return 1;
    }
    return optimistic ? 3 : 4;
}

int
basisCount(const BasisSpec &basis, const WeylCoords &w)
{
    switch (basis.kind) {
      case BasisKind::CNOT:
        return cnotCount(w);
      case BasisKind::SqISwap:
        return sqiswapCount(w);
      case BasisKind::ISwap:
        return iswapCount(w);
      case BasisKind::Sycamore:
        return sycamoreCount(w, basis.optimistic_syc);
    }
    SNAIL_ASSERT(false, "unhandled basis kind");
    return 0;
}

double
basisDuration(const BasisSpec &basis, const WeylCoords &w)
{
    return static_cast<double>(basisCount(basis, w)) *
           basis.pulseDuration();
}

double
haarFractionWithin(const BasisSpec &basis, int k, int samples,
                   unsigned long long seed)
{
    SNAIL_REQUIRE(samples > 0, "haarFractionWithin needs samples > 0");
    Rng rng(seed);
    int hits = 0;
    for (int s = 0; s < samples; ++s) {
        const Matrix u = haarUnitary(4, rng);
        if (basisCount(basis, weylCoordinates(u)) <= k) {
            ++hits;
        }
    }
    return static_cast<double>(hits) / static_cast<double>(samples);
}

} // namespace snail
