/**
 * @file
 * The magic (Bell-phase) basis.
 *
 * Conjugating by the magic basis matrix M sends SU(2) (x) SU(2) to SO(4)
 * and diagonalizes the canonical interactions XX, YY, ZZ.  Everything in
 * the Weyl-chamber machinery is built on these two facts.
 */

#ifndef SNAILQC_WEYL_MAGIC_HPP
#define SNAILQC_WEYL_MAGIC_HPP

#include <array>

#include "linalg/eigen.hpp"
#include "linalg/matrix.hpp"

namespace snail
{

/** The magic basis matrix M (unitary). */
const Matrix &magicBasis();

/** M^dagger u M. */
Matrix toMagicBasis(const Matrix &u);

/** M u M^dagger. */
Matrix fromMagicBasis(const Matrix &u);

/**
 * Diagonal of M^dagger (P (x) P) M for P in {XX, YY, ZZ}; each entry is
 * +-1.  Used to convert magic-basis eigenphases into canonical (a, b, c)
 * coordinates.
 */
struct MagicDiagonals
{
    std::array<double, 4> xx;
    std::array<double, 4> yy;
    std::array<double, 4> zz;
};

/** The cached XX/YY/ZZ magic-basis diagonals. */
const MagicDiagonals &magicDiagonals();

/** Convert a real orthogonal 4x4 to a complex Matrix. */
Matrix realToComplex(const RealMatrix &m);

} // namespace snail

#endif // SNAILQC_WEYL_MAGIC_HPP
