/**
 * @file
 * Basis-gate usage counts from Weyl-chamber class membership.
 *
 * The paper's evaluation (Figs. 13, 14 and Observation 1) scores each
 * (topology, basis gate) co-design by the number of native 2Q pulses every
 * circuit operation decomposes into.  These counts are determined
 * analytically by the operation's canonical coordinates:
 *
 *  - CNOT basis (CR modulator): 1 for the CNOT class, 2 iff c == 0
 *    (Vidal/Dawson; Vatan-Williams), else 3.
 *  - sqrt(iSWAP) basis (SNAIL): 1 for its own class, 2 inside the W region
 *    a >= b + |c| (Huang et al., arXiv:2105.06074), else 3.
 *  - iSWAP basis: 1 for its own class, 2 iff c == 0, else 3.
 *  - SYC basis (FSIM modulator): 1 for its own class, else 4 — the best
 *    known analytic decomposition for arbitrary 2Q unitaries uses exactly
 *    four SYC gates (Crooks; paper Observation 1).  An ablation knob
 *    allows the optimistic count of 3 seen in numerical searches.
 *
 * Pulse-duration weights follow the paper's normalization: one full iSWAP
 * or CR or SYC pulse costs 1.0; the n-th root of iSWAP costs 1/n because
 * the SNAIL realizes it by proportionally shortening the pulse.
 */

#ifndef SNAILQC_WEYL_BASIS_COUNTS_HPP
#define SNAILQC_WEYL_BASIS_COUNTS_HPP

#include <string>

#include "weyl/coordinates.hpp"

namespace snail
{

/** The native basis gates the paper compares. */
enum class BasisKind
{
    CNOT,       //!< CR modulator (IBM)
    SqISwap,    //!< SNAIL modulator, n = 2
    ISwap,      //!< SNAIL modulator, n = 1
    Sycamore,   //!< FSIM modulator (Google)
};

/** A basis-gate choice plus counting options. */
struct BasisSpec
{
    BasisKind kind = BasisKind::CNOT;
    /** Use the optimistic 3-SYC generic count instead of the analytic 4. */
    bool optimistic_syc = false;

    /** Human-readable name, e.g. "sqiswap". */
    std::string name() const;

    /** Duration of one native pulse in normalized units. */
    double pulseDuration() const;
};

/**
 * Basis by short name: "cx"/"cnot", "sqiswap", "iswap", "syc".
 * @throws SnailError for unknown names.
 */
BasisSpec parseBasisSpec(const std::string &name);

/** Number of CNOTs required for a class (0..3). */
int cnotCount(const WeylCoords &w, double tol = 1e-8);

/** Number of sqrt(iSWAP) required for a class (0..3). */
int sqiswapCount(const WeylCoords &w, double tol = 1e-8);

/** Number of iSWAPs required for a class (0..3). */
int iswapCount(const WeylCoords &w, double tol = 1e-8);

/** Number of SYC gates required for a class (0, 1 or 4; 3 if optimistic). */
int sycamoreCount(const WeylCoords &w, bool optimistic = false,
                  double tol = 1e-8);

/** Count for an arbitrary basis choice. */
int basisCount(const BasisSpec &basis, const WeylCoords &w);

/** Count times per-pulse duration: the operation's time cost. */
double basisDuration(const BasisSpec &basis, const WeylCoords &w);

/** Fraction of Haar-random 2Q unitaries needing k or fewer basis gates
 *  computed by Monte-Carlo sampling; used to reproduce Observation 1. */
double haarFractionWithin(const BasisSpec &basis, int k, int samples,
                          unsigned long long seed);

} // namespace snail

#endif // SNAILQC_WEYL_BASIS_COUNTS_HPP
