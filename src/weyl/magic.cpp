#include "weyl/magic.hpp"

#include <cmath>

#include "common/error.hpp"
#include "gates/gate.hpp"

namespace snail
{

const Matrix &
magicBasis()
{
    static const Matrix m = [] {
        const double r = 1.0 / std::sqrt(2.0);
        const Complex i1(0.0, 1.0);
        Matrix out{{r, 0, 0, r * i1},
                   {0, r * i1, r, 0},
                   {0, r * i1, -r, 0},
                   {r, 0, 0, -r * i1}};
        SNAIL_ASSERT(out.isUnitary(1e-12), "magic basis must be unitary");
        return out;
    }();
    return m;
}

Matrix
toMagicBasis(const Matrix &u)
{
    return magicBasis().dagger() * u * magicBasis();
}

Matrix
fromMagicBasis(const Matrix &u)
{
    return magicBasis() * u * magicBasis().dagger();
}

const MagicDiagonals &
magicDiagonals()
{
    static const MagicDiagonals diag = [] {
        MagicDiagonals out;
        const Matrix x = gates::x().matrix();
        const Matrix y = gates::y().matrix();
        const Matrix z = gates::z().matrix();
        const Matrix pairs[3] = {kron(x, x), kron(y, y), kron(z, z)};
        std::array<double, 4> *slots[3] = {&out.xx, &out.yy, &out.zz};
        for (int p = 0; p < 3; ++p) {
            const Matrix d = toMagicBasis(pairs[p]);
            for (std::size_t i = 0; i < 4; ++i) {
                for (std::size_t j = 0; j < 4; ++j) {
                    if (i != j) {
                        SNAIL_ASSERT(std::abs(d(i, j)) < 1e-12,
                                     "XX/YY/ZZ must be diagonal in the "
                                     "magic basis");
                    }
                }
                SNAIL_ASSERT(std::abs(d(i, i).imag()) < 1e-12,
                             "magic diagonal must be real");
                (*slots[p])[i] = d(i, i).real();
            }
        }
        return out;
    }();
    return diag;
}

Matrix
realToComplex(const RealMatrix &m)
{
    Matrix out(m.size(), m.size());
    for (std::size_t i = 0; i < m.size(); ++i) {
        for (std::size_t j = 0; j < m.size(); ++j) {
            out(i, j) = Complex(m(i, j), 0.0);
        }
    }
    return out;
}

} // namespace snail
