#include "weyl/coordinates.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "weyl/magic.hpp"

namespace snail
{

namespace
{

constexpr double kPi = M_PI;
constexpr double kHalfPi = M_PI / 2.0;
constexpr double kQuarterPi = M_PI / 4.0;

/** Reduce x into [0, pi/2). */
double
modHalfPi(double x)
{
    double r = std::fmod(x, kHalfPi);
    if (r < 0.0) {
        r += kHalfPi;
    }
    // Snap values that are numerically pi/2 back to 0.
    if (kHalfPi - r < 1e-12) {
        r = 0.0;
    }
    return r;
}

/** Solve the 4x4 linear system m x = rhs by Gaussian elimination. */
std::array<double, 4>
solve4(std::array<std::array<double, 4>, 4> m, std::array<double, 4> rhs)
{
    for (int col = 0; col < 4; ++col) {
        int pivot = col;
        for (int r = col + 1; r < 4; ++r) {
            if (std::abs(m[r][col]) > std::abs(m[pivot][col])) {
                pivot = r;
            }
        }
        SNAIL_ASSERT(std::abs(m[pivot][col]) > 1e-12,
                     "singular system in Weyl coordinate solve");
        std::swap(m[col], m[pivot]);
        std::swap(rhs[col], rhs[pivot]);
        for (int r = 0; r < 4; ++r) {
            if (r == col) {
                continue;
            }
            const double f = m[r][col] / m[col][col];
            for (int c = col; c < 4; ++c) {
                m[r][c] -= f * m[col][c];
            }
            rhs[r] -= f * rhs[col];
        }
    }
    std::array<double, 4> x;
    for (int i = 0; i < 4; ++i) {
        x[i] = rhs[i] / m[i][i];
    }
    return x;
}

} // namespace

double
WeylCoords::distance(const WeylCoords &other) const
{
    return std::max({std::abs(a - other.a), std::abs(b - other.b),
                     std::abs(c - other.c)});
}

bool
WeylCoords::isClose(const WeylCoords &other, double tol) const
{
    return distance(other) <= tol;
}

MagicDecomposition
magicDecompose(const Matrix &u)
{
    SNAIL_REQUIRE(u.rows() == 4 && u.cols() == 4,
                  "magicDecompose needs a 4x4 matrix");
    SNAIL_REQUIRE(u.isUnitary(1e-7), "magicDecompose needs a unitary");

    // Land in SU(4), remembering the removed phase.
    const Complex det = u.determinant();
    const double det_phase = std::arg(det) / 4.0;
    const Matrix u_su = u * std::polar(1.0, -det_phase);

    const Matrix up = toMagicBasis(u_su);
    const Matrix m2 = up.transpose() * up;

    // M2 is complex symmetric unitary: its real and imaginary parts are
    // commuting real symmetric matrices.
    RealMatrix re(4);
    RealMatrix im(4);
    for (std::size_t i = 0; i < 4; ++i) {
        for (std::size_t j = 0; j < 4; ++j) {
            re(i, j) = m2(i, j).real();
            im(i, j) = m2(i, j).imag();
        }
    }
    const RealMatrix p = jointDiagonalize(re, im);

    // Eigenphases: lambda_j = exp(2 i theta_j).
    const RealMatrix dre = p.transpose() * re * p;
    const RealMatrix dim = p.transpose() * im * p;
    std::array<double, 4> theta;
    for (std::size_t j = 0; j < 4; ++j) {
        const Complex lambda(dre(j, j), dim(j, j));
        SNAIL_ASSERT(std::abs(std::abs(lambda) - 1.0) < 1e-7,
                     "eigenvalue of M2 must be unimodular");
        theta[j] = 0.5 * std::arg(lambda);
    }

    // Fix square-root branches so sum(theta) == 0 (det of the canonical
    // diagonal must be 1).  Each branch flip subtracts pi from one theta.
    double sum = theta[0] + theta[1] + theta[2] + theta[3];
    int flips = static_cast<int>(std::llround(sum / kPi));
    // Flip the largest angles first to keep values small.
    std::array<int, 4> order = {0, 1, 2, 3};
    std::sort(order.begin(), order.end(),
              [&](int x, int y) { return theta[x] > theta[y]; });
    for (int f = 0; f < flips; ++f) {
        theta[order[static_cast<std::size_t>(f % 4)]] -= kPi;
    }
    for (int f = 0; f > flips; --f) {
        theta[order[static_cast<std::size_t>(3 + f % 4)]] += kPi;
    }
    sum = theta[0] + theta[1] + theta[2] + theta[3];
    SNAIL_ASSERT(std::abs(sum) < 1e-6,
                 "theta branch fixing failed, residual sum " << sum);

    // Up = O1 * Delta * O2 with O2 = P^T, Delta = diag(e^{i theta}).
    Matrix delta_inv(4, 4);
    for (std::size_t j = 0; j < 4; ++j) {
        delta_inv(j, j) = std::polar(1.0, -theta[j]);
    }
    const Matrix pc = realToComplex(p);
    const Matrix o2 = pc.transpose();
    const Matrix o1 = up * pc * delta_inv;
    SNAIL_ASSERT(o1.isReal(1e-6),
                 "O1 must be real orthogonal (residual imag "
                     << o1.maxAbs() << ")");

    // Solve theta_j = t + a x_j + b y_j + c z_j for (t, a, b, c).
    const MagicDiagonals &d = magicDiagonals();
    std::array<std::array<double, 4>, 4> sys;
    for (int j = 0; j < 4; ++j) {
        sys[static_cast<std::size_t>(j)] = {1.0, d.xx[static_cast<std::size_t>(j)],
                                            d.yy[static_cast<std::size_t>(j)],
                                            d.zz[static_cast<std::size_t>(j)]};
    }
    const std::array<double, 4> sol = solve4(sys, theta);

    MagicDecomposition out;
    out.phase = sol[0] + det_phase;
    out.a_rep = sol[1];
    out.b_rep = sol[2];
    out.c_rep = sol[3];
    out.k1 = fromMagicBasis(o1);
    out.k2 = fromMagicBasis(o2);
    return out;
}

WeylCoords
canonicalize(double a, double b, double c)
{
    // Enumerate the finite orbit of (a, b, c) under the Weyl group:
    //  - even sign flips (flipping two coordinates is a local operation),
    //  - shifts by pi/2 on any single coordinate,
    //  - coordinate permutations,
    // and keep the representative inside pi/4 >= a >= b >= |c|.
    static const std::array<std::array<double, 3>, 4> kSigns = {{
        {+1.0, +1.0, +1.0},
        {+1.0, -1.0, -1.0},
        {-1.0, +1.0, -1.0},
        {-1.0, -1.0, +1.0},
    }};

    WeylCoords best;
    bool found = false;
    auto consider = [&](double x, double y, double z) {
        // Sort descending by value; the negative candidate (if any) has
        // magnitude below pi/4 and lands last.
        std::array<double, 3> v = {x, y, z};
        std::sort(v.begin(), v.end(), std::greater<double>());
        const double eps = 1e-9;
        if (v[0] > kQuarterPi + eps) {
            return;
        }
        if (v[2] < -kQuarterPi - eps) {
            return;
        }
        if (v[1] < std::abs(v[2]) - eps) {
            return;
        }
        if (v[1] < -eps) {
            return;
        }
        const WeylCoords cand{v[0], v[1], v[2]};
        if (!found) {
            best = cand;
            found = true;
            return;
        }
        // Prefer the non-negative-c representative on chamber boundaries.
        const auto key = [](const WeylCoords &w) {
            return std::array<double, 3>{w.a, w.b, w.c};
        };
        if (key(cand) > key(best)) {
            best = cand;
        }
    };

    for (const auto &sign : kSigns) {
        const double x = modHalfPi(sign[0] * a);
        const double y = modHalfPi(sign[1] * b);
        const double z = modHalfPi(sign[2] * c);
        // Each coordinate may additionally be shifted down by pi/2 to a
        // negative value of smaller magnitude.
        const std::array<double, 2> xs = {x, x - kHalfPi};
        const std::array<double, 2> ys = {y, y - kHalfPi};
        const std::array<double, 2> zs = {z, z - kHalfPi};
        for (double xv : xs) {
            for (double yv : ys) {
                for (double zv : zs) {
                    consider(xv, yv, zv);
                }
            }
        }
    }
    SNAIL_ASSERT(found, "no canonical Weyl representative found for ("
                            << a << ", " << b << ", " << c << ")");

    // Snap numerically tiny values for stable class comparisons.
    auto snap = [](double v) {
        if (std::abs(v) < 1e-11) {
            return 0.0;
        }
        if (std::abs(v - kQuarterPi) < 1e-11) {
            return kQuarterPi;
        }
        if (std::abs(v + kQuarterPi) < 1e-11) {
            return -kQuarterPi;
        }
        return v;
    };
    best.a = snap(best.a);
    best.b = snap(best.b);
    best.c = snap(best.c);
    return best;
}

WeylCoords
weylCoordinates(const Matrix &u)
{
    const MagicDecomposition d = magicDecompose(u);
    return canonicalize(d.a_rep, d.b_rep, d.c_rep);
}

WeylCoords
weylCoordinates(const Gate &gate)
{
    SNAIL_REQUIRE(gate.isTwoQubit(),
                  "Weyl coordinates are defined for 2Q gates only");
    return weylCoordinates(gate.matrix());
}

bool
locallyEquivalent(const Matrix &u, const Matrix &v, double tol)
{
    return weylCoordinates(u).isClose(weylCoordinates(v), tol);
}

} // namespace snail
