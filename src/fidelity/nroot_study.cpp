#include "fidelity/nroot_study.hpp"

#include "common/error.hpp"
#include "common/rng.hpp"
#include "linalg/random_unitary.hpp"

namespace snail
{

NRootStudyResult::NRootStudyResult(std::vector<double> roots, int k_min,
                                   int k_max, int samples)
    : _roots(std::move(roots)), _kMin(k_min), _kMax(k_max), _samples(samples)
{
    SNAIL_REQUIRE(!_roots.empty() && k_min >= 0 && k_max >= k_min &&
                      samples > 0,
                  "invalid study dimensions");
    _data.assign(_roots.size(),
                 std::vector<std::vector<double>>(
                     static_cast<std::size_t>(k_max - k_min + 1),
                     std::vector<double>(static_cast<std::size_t>(samples),
                                         1.0)));
}

void
NRootStudyResult::setInfidelity(std::size_t root_index, int k, int sample,
                                double infidelity)
{
    _data.at(root_index)
        .at(static_cast<std::size_t>(k - _kMin))
        .at(static_cast<std::size_t>(sample)) = infidelity;
}

double
NRootStudyResult::infidelity(std::size_t root_index, int k, int sample) const
{
    return _data.at(root_index)
        .at(static_cast<std::size_t>(k - _kMin))
        .at(static_cast<std::size_t>(sample));
}

double
NRootStudyResult::averageInfidelity(std::size_t root_index, int k) const
{
    const auto &row = _data.at(root_index)
                          .at(static_cast<std::size_t>(k - _kMin));
    double total = 0.0;
    for (double v : row) {
        total += v;
    }
    return total / static_cast<double>(row.size());
}

double
NRootStudyResult::pulseDuration(std::size_t root_index, int k) const
{
    return static_cast<double>(k) / _roots.at(root_index);
}

int
NRootStudyResult::minimalK(std::size_t root_index, double threshold) const
{
    for (int k = _kMin; k <= _kMax; ++k) {
        if (averageInfidelity(root_index, k) < threshold) {
            return k;
        }
    }
    return -1;
}

double
NRootStudyResult::averageTotalFidelity(std::size_t root_index,
                                       double f_iswap) const
{
    // Eq. 12: the per-pulse fidelity of this fractional root.
    const double fb = scaledBasisFidelity(f_iswap, _roots.at(root_index));
    double total = 0.0;
    for (int s = 0; s < _samples; ++s) {
        std::vector<DecompositionPoint> profile;
        profile.reserve(static_cast<std::size_t>(_kMax - _kMin + 1));
        for (int k = _kMin; k <= _kMax; ++k) {
            profile.push_back(
                DecompositionPoint{k, 1.0 - infidelity(root_index, k, s)});
        }
        total += bestTotalFidelity(profile, fb);
    }
    return total / static_cast<double>(_samples);
}

NRootStudyResult
runNRootStudy(const NRootStudyOptions &options)
{
    NRootStudyResult result(options.roots, options.k_min, options.k_max,
                            options.samples);
    Rng rng(options.seed);

    // Draw the Haar targets once so every (root, k) cell sees the same
    // unitaries, as in the paper's per-sample Eq. 13 maximization.
    std::vector<Matrix> targets;
    targets.reserve(static_cast<std::size_t>(options.samples));
    for (int s = 0; s < options.samples; ++s) {
        targets.push_back(haarUnitary(4, rng));
    }

    for (std::size_t ri = 0; ri < options.roots.size(); ++ri) {
        const Gate basis = gates::nrootIswap(options.roots[ri]);
        for (int k = options.k_min; k <= options.k_max; ++k) {
            for (int s = 0; s < options.samples; ++s) {
                NuOpOptions opts = options.optimizer;
                opts.seed = rng.next();
                const NuOpResult r = nuopDecompose(
                    targets[static_cast<std::size_t>(s)], basis, k, opts);
                result.setInfidelity(ri, k, s, r.infidelity);
            }
        }
    }
    return result;
}

} // namespace snail
