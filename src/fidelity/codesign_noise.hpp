/**
 * @file
 * End-to-end Monte-Carlo fidelity of a co-designed machine.
 *
 * Bridges the basis-translation scoring (counts and pulse durations per
 * routed operation) to the stochastic Pauli trajectory simulator: a 2Q
 * operation that translates to k native pulses suffers an error with
 * probability 1 - (1 - pulse_error)^k and occupies its pair for
 * k x pulseDuration time units of dephasing exposure.
 *
 * This turns the paper's two surrogate metrics (total pulses for the
 * gate-limited regime, critical-path duration for the time-limited
 * regime) into a single simulated figure: the expected state fidelity
 * of the transpiled circuit on that (topology, basis) machine.
 */

#ifndef SNAILQC_FIDELITY_CODESIGN_NOISE_HPP
#define SNAILQC_FIDELITY_CODESIGN_NOISE_HPP

#include <vector>

#include "sim/noise.hpp"
#include "transpiler/basis_translation.hpp"

namespace snail
{

/**
 * Per-instruction noise parameters of a routed circuit in a basis:
 * error probability 1-(1-pulse_error)^count, duration count x pulse.
 * 1Q gates carry pulse_error_1q and zero duration (the paper treats
 * them as free).
 */
std::vector<PerOpNoise> basisPerOpNoise(const Circuit &routed,
                                        const BasisSpec &basis,
                                        double pulse_error,
                                        double pulse_error_1q = 0.0);

/**
 * Monte-Carlo fidelity of the routed circuit on a machine whose native
 * pulses have error probability `pulse_error` and whose qubits dephase
 * with probability `idle_error` per normalized duration unit.
 */
NoiseEstimate codesignNoiseEstimate(const Circuit &routed,
                                    const BasisSpec &basis,
                                    double pulse_error, double idle_error,
                                    int trials, Rng &rng);

} // namespace snail

#endif // SNAILQC_FIDELITY_CODESIGN_NOISE_HPP
