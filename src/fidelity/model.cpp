#include "fidelity/model.hpp"

#include <cmath>

#include "common/error.hpp"

namespace snail
{

double
scaledBasisFidelity(double f_iswap, double root)
{
    SNAIL_REQUIRE(f_iswap >= 0.0 && f_iswap <= 1.0,
                  "basis fidelity must lie in [0, 1]");
    SNAIL_REQUIRE(root >= 1.0, "root must be >= 1");
    return 1.0 - (1.0 - f_iswap) / root;
}

double
totalFidelity(double decomposition_fidelity, double basis_fidelity, int k)
{
    SNAIL_REQUIRE(k >= 0, "negative gate count");
    return decomposition_fidelity * std::pow(basis_fidelity, k);
}

double
bestTotalFidelity(const std::vector<DecompositionPoint> &profile,
                  double basis_fidelity, int *best_k)
{
    double best = 0.0;
    int winner = 0;
    for (const auto &point : profile) {
        const double ft =
            totalFidelity(point.fidelity, basis_fidelity, point.k);
        if (ft > best) {
            best = ft;
            winner = point.k;
        }
    }
    if (best_k != nullptr) {
        *best_k = winner;
    }
    return best;
}

} // namespace snail
