#include "fidelity/regimes.hpp"

#include <cmath>

#include "common/error.hpp"

namespace snail
{

double
gateLimitedFidelity(const TranspileMetrics &metrics, double error_per_pulse)
{
    SNAIL_REQUIRE(error_per_pulse >= 0.0 && error_per_pulse < 1.0,
                  "per-pulse error must lie in [0, 1)");
    return std::pow(1.0 - error_per_pulse,
                    static_cast<double>(metrics.basis_2q_total));
}

double
timeLimitedFidelity(const TranspileMetrics &metrics,
                    double coherence_in_pulses)
{
    SNAIL_REQUIRE(coherence_in_pulses > 0.0,
                  "coherence time must be positive");
    return std::exp(-metrics.duration_critical / coherence_in_pulses);
}

double
combinedFidelity(const TranspileMetrics &metrics, double error_per_pulse,
                 double coherence_in_pulses)
{
    return gateLimitedFidelity(metrics, error_per_pulse) *
           timeLimitedFidelity(metrics, coherence_in_pulses);
}

} // namespace snail
