#include "fidelity/codesign_noise.hpp"

#include <cmath>

#include "common/error.hpp"

namespace snail
{

std::vector<PerOpNoise>
basisPerOpNoise(const Circuit &routed, const BasisSpec &basis,
                double pulse_error, double pulse_error_1q)
{
    SNAIL_REQUIRE(pulse_error >= 0.0 && pulse_error < 1.0,
                  "pulse error must be in [0, 1), got " << pulse_error);
    const std::vector<int> counts =
        basisCountsPerInstruction(routed, basis);
    const double pulse = basis.pulseDuration();

    std::vector<PerOpNoise> per_op;
    per_op.reserve(routed.size());
    for (std::size_t i = 0; i < routed.size(); ++i) {
        PerOpNoise noise;
        if (routed.instructions()[i].numQubits() == 1) {
            noise.p_error = pulse_error_1q;
            noise.duration = 0.0;
        } else {
            const int k = counts[i];
            noise.p_error = 1.0 - std::pow(1.0 - pulse_error, k);
            noise.duration = static_cast<double>(k) * pulse;
        }
        per_op.push_back(noise);
    }
    return per_op;
}

NoiseEstimate
codesignNoiseEstimate(const Circuit &routed, const BasisSpec &basis,
                      double pulse_error, double idle_error, int trials,
                      Rng &rng)
{
    const std::vector<PerOpNoise> per_op =
        basisPerOpNoise(routed, basis, pulse_error);
    return estimateCircuitFidelity(routed, per_op, idle_error, trials,
                                   rng);
}

} // namespace snail
