/**
 * @file
 * Decoherence-scaled fidelity model (paper Sec. 6.3, Eqs. 12 and 13).
 *
 * The SNAIL realizes the n-th root of iSWAP with a pulse 1/n as long as a
 * full iSWAP, and decoherence-driven infidelity is approximated as linear
 * in time:  Fb(n-root iSWAP) = 1 - (1 - Fb(iSWAP)) / n   (Eq. 12).
 * A k-application approximate decomposition with Hilbert-Schmidt fidelity
 * Fd then achieves total fidelity  Ft = Fd * Fb^k, and the best template
 * size maximizes it:  Ft = max_k Fd(k) Fb^k   (Eq. 13).
 */

#ifndef SNAILQC_FIDELITY_MODEL_HPP
#define SNAILQC_FIDELITY_MODEL_HPP

#include <cstddef>
#include <vector>

namespace snail
{

/** Eq. 12: per-pulse fidelity of the n-th root of iSWAP. */
double scaledBasisFidelity(double f_iswap, double root);

/** Ft for one template: decomposition fidelity times Fb^k. */
double totalFidelity(double decomposition_fidelity, double basis_fidelity,
                     int k);

/** One (k, Fd) point of a decomposition-fidelity profile. */
struct DecompositionPoint
{
    int k = 0;         //!< basis-gate applications
    double fidelity = 0.0; //!< achieved Hilbert-Schmidt fidelity Fd
};

/**
 * Eq. 13: pick the template size maximizing Fd(k) * Fb^k.
 * @return the winning point's total fidelity (0 for an empty profile).
 */
double bestTotalFidelity(const std::vector<DecompositionPoint> &profile,
                         double basis_fidelity, int *best_k = nullptr);

} // namespace snail

#endif // SNAILQC_FIDELITY_MODEL_HPP
