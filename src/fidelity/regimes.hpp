/**
 * @file
 * Error-regime figures of merit (paper Sec. 3.1).
 *
 * The paper keeps two parallel datasets because NISQ infidelity has two
 * very different sources: control imperfections, which accumulate per
 * *gate*, and decoherence, which accumulates per unit of *time*.  This
 * module turns the transpile metrics into estimated circuit success
 * probabilities under each regime:
 *
 *   gate-limited:  F = (1 - eps)^(total native 2Q pulses)
 *   time-limited:  F = exp(-critical pulse duration / T)
 *
 * and finds the per-pulse-error / coherence-time combinations where one
 * co-design overtakes another.
 */

#ifndef SNAILQC_FIDELITY_REGIMES_HPP
#define SNAILQC_FIDELITY_REGIMES_HPP

#include "transpiler/pipeline.hpp"

namespace snail
{

/** Gate-limited regime: every native pulse fails independently. */
double gateLimitedFidelity(const TranspileMetrics &metrics,
                           double error_per_pulse);

/** Time-limited regime: exponential decay over the critical schedule.
 *  @param coherence_in_pulses T expressed in normalized pulse units. */
double timeLimitedFidelity(const TranspileMetrics &metrics,
                           double coherence_in_pulses);

/** Combined model: both mechanisms act simultaneously. */
double combinedFidelity(const TranspileMetrics &metrics,
                        double error_per_pulse,
                        double coherence_in_pulses);

} // namespace snail

#endif // SNAILQC_FIDELITY_REGIMES_HPP
