/**
 * @file
 * The n-th-root-of-iSWAP pulse-duration sensitivity study (paper Fig. 15).
 *
 * For each root n and template size k, NuOp decompositions of Haar-random
 * 2Q unitaries measure the average approximation infidelity 1 - Fd.  The
 * decoherence model (Eq. 12/13) then converts per-sample (k, Fd) profiles
 * into total-fidelity curves as a function of the base iSWAP fidelity,
 * reproducing all three panels of Fig. 15.
 */

#ifndef SNAILQC_FIDELITY_NROOT_STUDY_HPP
#define SNAILQC_FIDELITY_NROOT_STUDY_HPP

#include <vector>

#include "decomp/nuop.hpp"
#include "fidelity/model.hpp"

namespace snail
{

/** Configuration of the Fig. 15 study. */
struct NRootStudyOptions
{
    std::vector<double> roots = {2, 3, 4, 5, 6, 7}; //!< n values
    int k_min = 2;
    int k_max = 8;
    int samples = 50;          //!< Haar-random targets (paper N = 50)
    unsigned long long seed = 0xF15ULL;
    NuOpOptions optimizer;     //!< inner NuOp settings
};

/** Study output: infidelity data per (root, k, sample). */
class NRootStudyResult
{
  public:
    NRootStudyResult(std::vector<double> roots, int k_min, int k_max,
                     int samples);

    const std::vector<double> &roots() const { return _roots; }
    int kMin() const { return _kMin; }
    int kMax() const { return _kMax; }
    int samples() const { return _samples; }

    /** Mutable access used by the runner. */
    void setInfidelity(std::size_t root_index, int k, int sample,
                       double infidelity);

    /** Infidelity 1 - Fd of one optimization. */
    double infidelity(std::size_t root_index, int k, int sample) const;

    /** Fig. 15 top-left: mean infidelity for (root, k). */
    double averageInfidelity(std::size_t root_index, int k) const;

    /** Normalized pulse duration of a (root, k) template: k / n. */
    double pulseDuration(std::size_t root_index, int k) const;

    /** Smallest k whose mean infidelity is below `threshold` (or -1). */
    int minimalK(std::size_t root_index, double threshold = 1e-6) const;

    /**
     * Fig. 15 bottom: mean over samples of the Eq. 13 best total
     * fidelity at base iSWAP fidelity `f_iswap`.
     */
    double averageTotalFidelity(std::size_t root_index,
                                double f_iswap) const;

  private:
    std::vector<double> _roots;
    int _kMin;
    int _kMax;
    int _samples;
    /** [root][k - k_min][sample] -> infidelity. */
    std::vector<std::vector<std::vector<double>>> _data;
};

/** Run the full study (deterministic under options.seed). */
NRootStudyResult runNRootStudy(const NRootStudyOptions &options);

} // namespace snail

#endif // SNAILQC_FIDELITY_NROOT_STUDY_HPP
