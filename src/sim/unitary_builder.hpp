/**
 * @file
 * Build the full unitary of a small circuit (column-by-column simulation).
 */

#ifndef SNAILQC_SIM_UNITARY_BUILDER_HPP
#define SNAILQC_SIM_UNITARY_BUILDER_HPP

#include "ir/circuit.hpp"
#include "linalg/matrix.hpp"

namespace snail
{

/**
 * The 2^n x 2^n unitary implemented by a circuit.
 * @pre circuit.numQubits() <= 10 (the matrix gets large quickly).
 */
Matrix circuitUnitary(const Circuit &circuit);

} // namespace snail

#endif // SNAILQC_SIM_UNITARY_BUILDER_HPP
