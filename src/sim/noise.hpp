/**
 * @file
 * Stochastic Pauli noise injection for the statevector simulator.
 *
 * The paper's Sec. 3.1 argues that circuit success is governed either
 * by the total gate count (control-error-dominated machines) or by the
 * circuit duration (decoherence-dominated machines), and scores designs
 * with analytic surrogates.  This module provides the microscopic
 * counterpart: a Monte-Carlo trajectory simulator that injects random
 * Pauli errors after gates and measures the resulting state fidelity
 * against the ideal run, letting the analytic regime estimates be
 * cross-checked on real (small) circuits.
 *
 * The model is the standard stochastic Pauli channel: after every 1Q
 * gate, with probability p1, a uniformly random non-identity Pauli hits
 * the operand; after every 2Q gate, with probability p2, a uniformly
 * random non-identity two-qubit Pauli (15 choices) hits the pair.  An
 * optional per-qubit idle-dephasing probability applies a Z with
 * probability p_idle x (duration weight) between layers, modeling the
 * duration-dominated regime.
 */

#ifndef SNAILQC_SIM_NOISE_HPP
#define SNAILQC_SIM_NOISE_HPP

#include "common/rng.hpp"
#include "ir/circuit.hpp"
#include "sim/statevector.hpp"

namespace snail
{

/** Stochastic Pauli channel parameters. */
struct PauliNoiseModel
{
    double p1 = 0.0;     //!< error probability per 1Q gate
    double p2 = 0.0;     //!< error probability per 2Q gate
    double p_idle = 0.0; //!< per-qubit Z probability per duration unit

    /**
     * Build from gate fidelities: a gate of fidelity F carries error
     * probability 1 - F.
     */
    static PauliNoiseModel
    fromFidelities(double f1, double f2)
    {
        PauliNoiseModel model;
        model.p1 = 1.0 - f1;
        model.p2 = 1.0 - f2;
        return model;
    }

    /** True when every noise probability is zero. */
    bool
    isNoiseless() const
    {
        return p1 == 0.0 && p2 == 0.0 && p_idle == 0.0;
    }
};

/**
 * Run one noisy trajectory of `circuit` from |0...0>.
 * @pre circuit.numQubits() <= 24 (statevector limit).
 */
Statevector runNoisyTrajectory(const Circuit &circuit,
                               const PauliNoiseModel &model, Rng &rng);

/** Monte-Carlo fidelity estimate with its statistical error. */
struct NoiseEstimate
{
    double mean_fidelity = 0.0;   //!< average |<ideal|noisy>|^2
    double standard_error = 0.0;  //!< std deviation of the mean
    double no_error_prob = 0.0;   //!< analytic P(no error anywhere)
    int trials = 0;
};

/**
 * Estimate the circuit's state fidelity under the noise model by
 * averaging |<psi_ideal | psi_noisy>|^2 over `trials` trajectories.
 *
 * The returned no_error_prob = prod (1-p) over all gates is the
 * Sec. 3.1 gate-count surrogate; the Monte-Carlo mean is >= it up to
 * statistical error because some injected Paulis leave the state
 * invariant.
 */
NoiseEstimate estimateCircuitFidelity(const Circuit &circuit,
                                      const PauliNoiseModel &model,
                                      int trials, Rng &rng);

/**
 * Per-instruction noise parameters, for circuits whose operations have
 * heterogeneous costs (e.g. 2Q ops weighted by their native basis-gate
 * count after translation).
 */
struct PerOpNoise
{
    double p_error = 0.0;  //!< error probability of this instruction
    double duration = 0.0; //!< duration in normalized pulse units
};

/**
 * Run one trajectory with per-instruction error probabilities and
 * durations.  Idle dephasing applies per duration unit as in the
 * uniform model, with the circuit duration given by the duration-
 * weighted critical path.
 * @pre per_op.size() == circuit.size().
 */
Statevector runNoisyTrajectory(const Circuit &circuit,
                               const std::vector<PerOpNoise> &per_op,
                               double p_idle, Rng &rng);

/** Monte-Carlo fidelity estimate with per-instruction noise. */
NoiseEstimate estimateCircuitFidelity(
    const Circuit &circuit, const std::vector<PerOpNoise> &per_op,
    double p_idle, int trials, Rng &rng);

} // namespace snail

#endif // SNAILQC_SIM_NOISE_HPP
