#include "sim/statevector.hpp"

#include <cmath>

#include "common/error.hpp"

namespace snail
{

Statevector::Statevector(int num_qubits) : Statevector(num_qubits, 0) {}

Statevector::Statevector(int num_qubits, std::size_t basis_index)
    : _numQubits(num_qubits)
{
    SNAIL_REQUIRE(num_qubits > 0 && num_qubits <= 24,
                  "statevector supports 1..24 qubits, got " << num_qubits);
    const std::size_t dim = std::size_t(1) << num_qubits;
    SNAIL_REQUIRE(basis_index < dim, "basis index out of range");
    _amps.assign(dim, Complex(0.0, 0.0));
    _amps[basis_index] = Complex(1.0, 0.0);
}

void
Statevector::applyOneQubit(const Matrix &u, Qubit q)
{
    SNAIL_REQUIRE(u.rows() == 2 && u.cols() == 2, "expected a 2x2 matrix");
    SNAIL_REQUIRE(q >= 0 && q < _numQubits, "qubit out of range");
    const std::size_t bit = std::size_t(1) << q;
    const std::size_t dim = _amps.size();
    const Complex u00 = u(0, 0);
    const Complex u01 = u(0, 1);
    const Complex u10 = u(1, 0);
    const Complex u11 = u(1, 1);
    for (std::size_t base = 0; base < dim; ++base) {
        if (base & bit) {
            continue;
        }
        const Complex a0 = _amps[base];
        const Complex a1 = _amps[base | bit];
        _amps[base] = u00 * a0 + u01 * a1;
        _amps[base | bit] = u10 * a0 + u11 * a1;
    }
}

void
Statevector::applyTwoQubit(const Matrix &u, Qubit high, Qubit low)
{
    SNAIL_REQUIRE(u.rows() == 4 && u.cols() == 4, "expected a 4x4 matrix");
    SNAIL_REQUIRE(high != low, "two-qubit gate needs distinct qubits");
    SNAIL_REQUIRE(high >= 0 && high < _numQubits && low >= 0 &&
                      low < _numQubits,
                  "qubit out of range");
    const std::size_t hbit = std::size_t(1) << high;
    const std::size_t lbit = std::size_t(1) << low;
    const std::size_t dim = _amps.size();
    for (std::size_t base = 0; base < dim; ++base) {
        if (base & (hbit | lbit)) {
            continue;
        }
        // Gather in |high low> order.
        const std::size_t i00 = base;
        const std::size_t i01 = base | lbit;
        const std::size_t i10 = base | hbit;
        const std::size_t i11 = base | hbit | lbit;
        const Complex a00 = _amps[i00];
        const Complex a01 = _amps[i01];
        const Complex a10 = _amps[i10];
        const Complex a11 = _amps[i11];
        _amps[i00] = u(0, 0) * a00 + u(0, 1) * a01 + u(0, 2) * a10 +
                     u(0, 3) * a11;
        _amps[i01] = u(1, 0) * a00 + u(1, 1) * a01 + u(1, 2) * a10 +
                     u(1, 3) * a11;
        _amps[i10] = u(2, 0) * a00 + u(2, 1) * a01 + u(2, 2) * a10 +
                     u(2, 3) * a11;
        _amps[i11] = u(3, 0) * a00 + u(3, 1) * a01 + u(3, 2) * a10 +
                     u(3, 3) * a11;
    }
}

void
Statevector::apply(const Instruction &inst)
{
    const Matrix m = inst.gate().matrix();
    if (inst.numQubits() == 1) {
        applyOneQubit(m, inst.q0());
    } else {
        applyTwoQubit(m, inst.q0(), inst.q1());
    }
}

void
Statevector::run(const Circuit &circuit)
{
    SNAIL_REQUIRE(circuit.numQubits() <= _numQubits,
                  "circuit wider than the statevector");
    for (const auto &inst : circuit.instructions()) {
        apply(inst);
    }
}

double
Statevector::normSquared() const
{
    double sum = 0.0;
    for (const auto &a : _amps) {
        sum += std::norm(a);
    }
    return sum;
}

Complex
Statevector::inner(const Statevector &other) const
{
    SNAIL_REQUIRE(_amps.size() == other._amps.size(),
                  "statevector dimension mismatch");
    Complex acc(0.0, 0.0);
    for (std::size_t i = 0; i < _amps.size(); ++i) {
        acc += std::conj(_amps[i]) * other._amps[i];
    }
    return acc;
}

} // namespace snail
