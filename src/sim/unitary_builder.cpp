#include "sim/unitary_builder.hpp"

#include "common/error.hpp"
#include "sim/statevector.hpp"

namespace snail
{

Matrix
circuitUnitary(const Circuit &circuit)
{
    const int n = circuit.numQubits();
    SNAIL_REQUIRE(n <= 10, "circuitUnitary limited to 10 qubits, got " << n);
    const std::size_t dim = std::size_t(1) << n;
    Matrix u(dim, dim);
    for (std::size_t col = 0; col < dim; ++col) {
        Statevector sv(n, col);
        sv.run(circuit);
        for (std::size_t row = 0; row < dim; ++row) {
            u(row, col) = sv.amplitudes()[row];
        }
    }
    return u;
}

} // namespace snail
