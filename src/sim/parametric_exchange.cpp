#include "sim/parametric_exchange.hpp"

#include <cmath>

#include "common/error.hpp"

namespace snail
{

double
excitationSwapProbability(const ExchangeDrive &drive, double time)
{
    SNAIL_REQUIRE(drive.coupling > 0.0, "coupling must be positive");
    const double g2 = drive.coupling * drive.coupling;
    const double omega2 = g2 + 0.25 * drive.detuning * drive.detuning;
    const double omega = std::sqrt(omega2);
    const double s = std::sin(omega * time);
    return (g2 / omega2) * s * s;
}

Matrix
resonantExchangeUnitary(double coupling, double time)
{
    SNAIL_REQUIRE(coupling > 0.0, "coupling must be positive");
    // Eq. 9: U(t) = exp(i H t) with H = g (a1^dag a2 + a1 a2^dag)
    // restricted to the two-level manifold.
    const double gt = coupling * time;
    const double c = std::cos(gt);
    const double s = std::sin(gt);
    return Matrix{{1, 0, 0, 0},
                  {0, Complex(c, 0.0), Complex(0.0, s), 0},
                  {0, Complex(0.0, s), Complex(c, 0.0), 0},
                  {0, 0, 0, 1}};
}

double
pulseLengthForRoot(double coupling, double root)
{
    SNAIL_REQUIRE(coupling > 0.0 && root >= 1.0,
                  "need positive coupling and root >= 1");
    return M_PI / (2.0 * root * coupling);
}

std::vector<double>
chevronRow(const ExchangeDrive &drive, const std::vector<double> &times)
{
    std::vector<double> out;
    out.reserve(times.size());
    for (double t : times) {
        out.push_back(excitationSwapProbability(drive, t));
    }
    return out;
}

} // namespace snail
