#include "sim/equivalence.hpp"

#include <cmath>

#include "common/error.hpp"
#include "linalg/random_unitary.hpp"
#include "sim/statevector.hpp"
#include "sim/unitary_builder.hpp"

namespace snail
{

bool
circuitsEquivalent(const Circuit &a, const Circuit &b, double tol)
{
    SNAIL_REQUIRE(a.numQubits() == b.numQubits(),
                  "circuitsEquivalent width mismatch");
    const Matrix ua = circuitUnitary(a);
    const Matrix ub = circuitUnitary(b);
    return std::abs(traceFidelity(ua, ub) - 1.0) < tol;
}

bool
routedCircuitEquivalent(const Circuit &original, const Circuit &routed,
                        const std::vector<int> &initial_v2p,
                        const std::vector<int> &final_v2p, int trials,
                        Rng &rng, double tol)
{
    const int nv = original.numQubits();
    const int np = routed.numQubits();
    SNAIL_REQUIRE(static_cast<int>(initial_v2p.size()) == nv &&
                      static_cast<int>(final_v2p.size()) == nv,
                  "layout size must match the virtual register");
    SNAIL_REQUIRE(np <= 20, "equivalence check limited to 20 physical "
                            "qubits");

    for (int trial = 0; trial < trials; ++trial) {
        // Random product input state, one Haar 1Q state per virtual qubit.
        std::vector<Matrix> prep(static_cast<std::size_t>(nv));
        for (int v = 0; v < nv; ++v) {
            prep[static_cast<std::size_t>(v)] = haarUnitary(2, rng);
        }

        // Virtual-side reference evolution.
        Statevector ref(nv);
        for (int v = 0; v < nv; ++v) {
            ref.applyOneQubit(prep[static_cast<std::size_t>(v)], v);
        }
        ref.run(original);

        // Physical-side evolution with the same preparation placed at the
        // initial layout.
        Statevector phys(np);
        for (int v = 0; v < nv; ++v) {
            phys.applyOneQubit(prep[static_cast<std::size_t>(v)],
                               initial_v2p[static_cast<std::size_t>(v)]);
        }
        phys.run(routed);

        // Expected physical state: reference amplitudes rearranged onto the
        // final layout, spectators in |0>.
        Statevector expect(np);
        std::vector<Complex> &amps = expect.amplitudes();
        amps.assign(amps.size(), Complex(0.0, 0.0));
        const std::size_t vdim = std::size_t(1) << nv;
        for (std::size_t vidx = 0; vidx < vdim; ++vidx) {
            std::size_t pidx = 0;
            for (int v = 0; v < nv; ++v) {
                if ((vidx >> v) & 1) {
                    pidx |= std::size_t(1)
                            << final_v2p[static_cast<std::size_t>(v)];
                }
            }
            amps[pidx] = ref.amplitudes()[vidx];
        }

        const double overlap = std::abs(phys.inner(expect));
        if (std::abs(overlap - 1.0) > tol) {
            return false;
        }
    }
    return true;
}

} // namespace snail
