/**
 * @file
 * Dense statevector simulator.
 *
 * Used by the test suite to verify that routed circuits are equivalent to
 * their originals (up to the tracked qubit permutation) and that the KAK /
 * NuOp synthesis engines reproduce their target unitaries.  Supports any
 * 1Q/2Q gate in the library, including opaque Haar-random blocks.
 *
 * Bit convention: qubit q is bit q of the amplitude index (qubit 0 is the
 * least significant bit).  Two-qubit gate matrices act in the basis
 * |q_first q_second> with the *first* operand as the high-order bit, which
 * matches the matrices in gates/gate.cpp.
 */

#ifndef SNAILQC_SIM_STATEVECTOR_HPP
#define SNAILQC_SIM_STATEVECTOR_HPP

#include <vector>

#include "ir/circuit.hpp"
#include "linalg/matrix.hpp"

namespace snail
{

/** Dense 2^n statevector with gate application. */
class Statevector
{
  public:
    /** |0...0> over num_qubits qubits. @pre num_qubits <= 24. */
    explicit Statevector(int num_qubits);

    /** Computational basis state |index>. */
    Statevector(int num_qubits, std::size_t basis_index);

    int numQubits() const { return _numQubits; }
    const std::vector<Complex> &amplitudes() const { return _amps; }
    std::vector<Complex> &amplitudes() { return _amps; }

    /** Apply a 2x2 unitary to one qubit. */
    void applyOneQubit(const Matrix &u, Qubit q);

    /** Apply a 4x4 unitary to (high, low) qubits. */
    void applyTwoQubit(const Matrix &u, Qubit high, Qubit low);

    /** Apply one instruction. */
    void apply(const Instruction &inst);

    /** Run a whole circuit. */
    void run(const Circuit &circuit);

    /** Squared norm (should stay 1 under unitary evolution). */
    double normSquared() const;

    /** Inner product <this | other>. */
    Complex inner(const Statevector &other) const;

  private:
    int _numQubits;
    std::vector<Complex> _amps;
};

} // namespace snail

#endif // SNAILQC_SIM_STATEVECTOR_HPP
