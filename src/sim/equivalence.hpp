/**
 * @file
 * Circuit equivalence checks used to validate the transpiler.
 *
 * A routed circuit acts on physical qubits and generally ends with its
 * virtual qubits living at different physical locations than they started
 * (SWAPs move data).  routedCircuitEquivalent() checks, by simulation,
 * that the routed circuit implements the original computation under the
 * transpiler's reported initial and final layouts.
 */

#ifndef SNAILQC_SIM_EQUIVALENCE_HPP
#define SNAILQC_SIM_EQUIVALENCE_HPP

#include <vector>

#include "common/rng.hpp"
#include "ir/circuit.hpp"

namespace snail
{

/** True when the two circuits implement the same unitary up to a global
 *  phase.  @pre both circuits are at most 10 qubits wide. */
bool circuitsEquivalent(const Circuit &a, const Circuit &b,
                        double tol = 1e-7);

/**
 * Verify that `routed` (over physical qubits) implements `original` (over
 * virtual qubits) given the virtual-to-physical maps before and after
 * routing.  Physical qubits not hosting a virtual qubit must start in and
 * act as |0> spectators.
 *
 * The check simulates `trials` random product-state inputs; any routing
 * bug that changes the computation shows up as an inner-product deviation.
 *
 * @param original the pre-routing circuit on n_virtual qubits.
 * @param routed the post-routing circuit on n_physical qubits.
 * @param initial_v2p virtual -> physical map at circuit start.
 * @param final_v2p virtual -> physical map at circuit end.
 */
bool routedCircuitEquivalent(const Circuit &original, const Circuit &routed,
                             const std::vector<int> &initial_v2p,
                             const std::vector<int> &final_v2p, int trials,
                             Rng &rng, double tol = 1e-7);

} // namespace snail

#endif // SNAILQC_SIM_EQUIVALENCE_HPP
