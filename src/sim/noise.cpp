#include "sim/noise.hpp"

#include <cmath>

#include "common/error.hpp"
#include "gates/gate.hpp"

namespace snail
{

namespace
{

/** Apply one uniformly random non-identity Pauli to qubit q. */
void
applyRandomPauli(Statevector &sv, Qubit q, Rng &rng)
{
    switch (rng.index(3)) {
      case 0:
        sv.applyOneQubit(Gate(GateKind::X).matrix(), q);
        break;
      case 1:
        sv.applyOneQubit(Gate(GateKind::Y).matrix(), q);
        break;
      default:
        sv.applyOneQubit(Gate(GateKind::Z).matrix(), q);
        break;
    }
}

/** Apply one of the 15 non-identity two-qubit Paulis to (a, b). */
void
applyRandomPauli2(Statevector &sv, Qubit a, Qubit b, Rng &rng)
{
    // Draw (pa, pb) uniformly from {I,X,Y,Z}^2 \ {(I,I)}.
    std::size_t code = 1 + rng.index(15);
    const std::size_t pa = code / 4;
    const std::size_t pb = code % 4;
    auto apply = [&](std::size_t p, Qubit q) {
        switch (p) {
          case 1:
            sv.applyOneQubit(Gate(GateKind::X).matrix(), q);
            break;
          case 2:
            sv.applyOneQubit(Gate(GateKind::Y).matrix(), q);
            break;
          case 3:
            sv.applyOneQubit(Gate(GateKind::Z).matrix(), q);
            break;
          default:
            break;
        }
    };
    apply(pa, a);
    apply(pb, b);
}

} // namespace

Statevector
runNoisyTrajectory(const Circuit &circuit, const PauliNoiseModel &model,
                   Rng &rng)
{
    Statevector sv(circuit.numQubits());
    // Busy time per qubit in the paper's duration normalization (2Q
    // gates take 1 unit, 1Q gates are free).
    std::vector<double> busy(static_cast<std::size_t>(circuit.numQubits()),
                             0.0);

    for (const auto &op : circuit.instructions()) {
        sv.apply(op);
        if (op.numQubits() == 1) {
            if (model.p1 > 0.0 && rng.uniform() < model.p1) {
                applyRandomPauli(sv, op.q0(), rng);
            }
        } else {
            if (model.p2 > 0.0 && rng.uniform() < model.p2) {
                applyRandomPauli2(sv, op.q0(), op.q1(), rng);
            }
            if (model.p_idle > 0.0) {
                // Operands were busy for one duration unit.
                for (Qubit q : {op.q0(), op.q1()}) {
                    if (rng.uniform() < model.p_idle) {
                        sv.applyOneQubit(Gate(GateKind::Z).matrix(), q);
                    }
                }
            }
            busy[static_cast<std::size_t>(op.q0())] += 1.0;
            busy[static_cast<std::size_t>(op.q1())] += 1.0;
        }
    }

    if (model.p_idle > 0.0) {
        // Every qubit exists for the whole circuit duration; the idle
        // remainder (duration minus busy time) dephases too.  Idle-time
        // Z errors are applied at circuit end — an approximation that
        // is exact for errors commuting past the remaining gates and
        // standard in stochastic Pauli analyses.
        const double duration = circuit.twoQubitDepth();
        for (int q = 0; q < circuit.numQubits(); ++q) {
            const double idle =
                std::max(0.0, duration - busy[static_cast<std::size_t>(q)]);
            const double p_flip =
                1.0 - std::pow(1.0 - model.p_idle, idle);
            if (rng.uniform() < p_flip) {
                sv.applyOneQubit(Gate(GateKind::Z).matrix(), q);
            }
        }
    }
    return sv;
}

Statevector
runNoisyTrajectory(const Circuit &circuit,
                   const std::vector<PerOpNoise> &per_op, double p_idle,
                   Rng &rng)
{
    SNAIL_REQUIRE(per_op.size() == circuit.size(),
                  "per-op noise size " << per_op.size()
                                       << " != circuit size "
                                       << circuit.size());
    Statevector sv(circuit.numQubits());
    std::vector<double> busy(static_cast<std::size_t>(circuit.numQubits()),
                             0.0);

    for (std::size_t i = 0; i < circuit.size(); ++i) {
        const Instruction &op = circuit.instructions()[i];
        sv.apply(op);
        const PerOpNoise &noise = per_op[i];
        if (noise.p_error > 0.0 && rng.uniform() < noise.p_error) {
            if (op.numQubits() == 1) {
                applyRandomPauli(sv, op.q0(), rng);
            } else {
                applyRandomPauli2(sv, op.q0(), op.q1(), rng);
            }
        }
        if (op.numQubits() == 2 && noise.duration > 0.0) {
            if (p_idle > 0.0) {
                const double p_busy =
                    1.0 - std::pow(1.0 - p_idle, noise.duration);
                for (Qubit q : {op.q0(), op.q1()}) {
                    if (rng.uniform() < p_busy) {
                        sv.applyOneQubit(Gate(GateKind::Z).matrix(), q);
                    }
                }
            }
            busy[static_cast<std::size_t>(op.q0())] += noise.duration;
            busy[static_cast<std::size_t>(op.q1())] += noise.duration;
        }
    }

    if (p_idle > 0.0) {
        std::size_t index = 0;
        const double duration = circuit.weightedCriticalPath(
            [&per_op, &index](const Instruction &) {
                return per_op[index++].duration;
            });
        for (int q = 0; q < circuit.numQubits(); ++q) {
            const double idle =
                std::max(0.0, duration - busy[static_cast<std::size_t>(q)]);
            const double p_flip = 1.0 - std::pow(1.0 - p_idle, idle);
            if (rng.uniform() < p_flip) {
                sv.applyOneQubit(Gate(GateKind::Z).matrix(), q);
            }
        }
    }
    return sv;
}

NoiseEstimate
estimateCircuitFidelity(const Circuit &circuit,
                        const std::vector<PerOpNoise> &per_op,
                        double p_idle, int trials, Rng &rng)
{
    SNAIL_REQUIRE(trials > 0, "need at least one trial, got " << trials);
    Statevector ideal(circuit.numQubits());
    ideal.run(circuit);

    NoiseEstimate estimate;
    estimate.trials = trials;
    double sum = 0.0;
    double sum_sq = 0.0;
    for (int t = 0; t < trials; ++t) {
        const Statevector noisy =
            runNoisyTrajectory(circuit, per_op, p_idle, rng);
        const double f = std::norm(ideal.inner(noisy));
        sum += f;
        sum_sq += f * f;
    }
    estimate.mean_fidelity = sum / trials;
    if (trials > 1) {
        const double var = (sum_sq - sum * sum / trials) / (trials - 1);
        estimate.standard_error = std::sqrt(std::max(0.0, var) / trials);
    }

    double no_error = 1.0;
    for (const auto &noise : per_op) {
        no_error *= 1.0 - noise.p_error;
    }
    if (p_idle > 0.0) {
        std::size_t index = 0;
        const double duration = circuit.weightedCriticalPath(
            [&per_op, &index](const Instruction &) {
                return per_op[index++].duration;
            });
        no_error *= std::pow(1.0 - p_idle,
                             duration * circuit.numQubits());
    }
    estimate.no_error_prob = no_error;
    return estimate;
}

NoiseEstimate
estimateCircuitFidelity(const Circuit &circuit,
                        const PauliNoiseModel &model, int trials, Rng &rng)
{
    SNAIL_REQUIRE(trials > 0, "need at least one trial, got " << trials);

    Statevector ideal(circuit.numQubits());
    ideal.run(circuit);

    NoiseEstimate estimate;
    estimate.trials = trials;

    double sum = 0.0;
    double sum_sq = 0.0;
    for (int t = 0; t < trials; ++t) {
        const Statevector noisy = runNoisyTrajectory(circuit, model, rng);
        const double f = std::norm(ideal.inner(noisy));
        sum += f;
        sum_sq += f * f;
    }
    estimate.mean_fidelity = sum / trials;
    if (trials > 1) {
        const double var =
            (sum_sq - sum * sum / trials) / (trials - 1);
        estimate.standard_error =
            std::sqrt(std::max(0.0, var) / trials);
    }

    // Analytic P(no error anywhere): the Sec. 3.1 gate-count surrogate.
    double no_error = 1.0;
    for (const auto &op : circuit.instructions()) {
        no_error *= op.numQubits() == 1 ? (1.0 - model.p1)
                                        : (1.0 - model.p2);
    }
    if (model.p_idle > 0.0) {
        const double duration = circuit.twoQubitDepth();
        no_error *= std::pow(1.0 - model.p_idle,
                             duration * circuit.numQubits());
    }
    estimate.no_error_prob = no_error;
    return estimate;
}

} // namespace snail
