#include "linalg/su2.hpp"

#include <cmath>

#include "common/error.hpp"

namespace snail
{

Matrix
rzMatrix(double angle)
{
    return Matrix{{std::polar(1.0, -angle / 2.0), 0.0},
                  {0.0, std::polar(1.0, angle / 2.0)}};
}

Matrix
ryMatrix(double angle)
{
    const double c = std::cos(angle / 2.0);
    const double s = std::sin(angle / 2.0);
    return Matrix{{c, -s}, {s, c}};
}

Matrix
rxMatrix(double angle)
{
    const double c = std::cos(angle / 2.0);
    const double s = std::sin(angle / 2.0);
    return Matrix{{Complex(c, 0.0), Complex(0.0, -s)},
                  {Complex(0.0, -s), Complex(c, 0.0)}};
}

Matrix
u3Matrix(double theta, double phi, double lam)
{
    const double c = std::cos(theta / 2.0);
    const double s = std::sin(theta / 2.0);
    return Matrix{
        {Complex(c, 0.0), -std::polar(s, lam)},
        {std::polar(s, phi), std::polar(c, phi + lam)}};
}

ZyzAngles
zyzDecompose(const Matrix &u, double tol)
{
    SNAIL_REQUIRE(u.rows() == 2 && u.cols() == 2,
                  "zyzDecompose needs a 2x2 matrix");
    SNAIL_REQUIRE(u.isUnitary(1e-7), "zyzDecompose needs a unitary matrix");

    // Pull out the determinant phase to land in SU(2).
    const Complex det = u.determinant();
    const double alpha = 0.5 * std::arg(det);
    const Matrix v = u * std::polar(1.0, -alpha);

    // v = [[ e^{-i(phi+lam)/2} c, -e^{-i(phi-lam)/2} s ],
    //      [ e^{+i(phi-lam)/2} s,  e^{+i(phi+lam)/2} c ]]
    const double c_mag = std::abs(v(0, 0));
    const double s_mag = std::abs(v(1, 0));
    const double theta = 2.0 * std::atan2(s_mag, c_mag);

    double phi = 0.0;
    double lam = 0.0;
    if (s_mag < tol) {
        // Diagonal gate: only phi + lam is defined; put it all in lam.
        const double sum = 2.0 * std::arg(v(1, 1));
        phi = 0.0;
        lam = sum;
    } else if (c_mag < tol) {
        // Anti-diagonal gate: only phi - lam is defined.
        const double diff = 2.0 * std::arg(v(1, 0));
        phi = diff;
        lam = 0.0;
    } else {
        const double sum = 2.0 * std::arg(v(1, 1));
        const double diff = 2.0 * std::arg(v(1, 0));
        phi = 0.5 * (sum + diff);
        lam = 0.5 * (sum - diff);
    }
    return ZyzAngles{alpha, theta, phi, lam};
}

Matrix
zyzMatrix(const ZyzAngles &angles)
{
    Matrix m = rzMatrix(angles.phi) * ryMatrix(angles.theta) *
               rzMatrix(angles.lam);
    return m * std::polar(1.0, angles.alpha);
}

} // namespace snail
