#include "linalg/random_unitary.hpp"

#include <cmath>

#include "common/error.hpp"

namespace snail
{

Matrix
haarUnitary(std::size_t n, Rng &rng)
{
    SNAIL_REQUIRE(n > 0, "haarUnitary needs n > 0");
    // Ginibre ensemble.
    Matrix z(n, n);
    for (auto &v : z.data()) {
        v = Complex(rng.normal(), rng.normal());
    }

    // Modified Gram-Schmidt QR; columns of q become orthonormal.
    Matrix q = z;
    std::vector<Complex> r_diag(n);
    for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t k = 0; k < j; ++k) {
            Complex proj(0.0, 0.0);
            for (std::size_t i = 0; i < n; ++i) {
                proj += std::conj(q(i, k)) * q(i, j);
            }
            for (std::size_t i = 0; i < n; ++i) {
                q(i, j) -= proj * q(i, k);
            }
        }
        double norm = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            norm += std::norm(q(i, j));
        }
        norm = std::sqrt(norm);
        SNAIL_ASSERT(norm > 1e-12, "rank-deficient Ginibre draw");
        for (std::size_t i = 0; i < n; ++i) {
            q(i, j) /= norm;
        }
        r_diag[j] = Complex(norm, 0.0);
    }

    // Gram-Schmidt produces the canonical QR with a real positive R
    // diagonal; for a Ginibre draw that canonical Q is exactly Haar
    // distributed, so no further phase correction is needed.
    (void)r_diag;
    return q;
}

Matrix
haarSpecialUnitary(std::size_t n, Rng &rng)
{
    Matrix u = haarUnitary(n, rng);
    const Complex det = u.determinant();
    // Remove the determinant phase by an n-th root.
    const double angle = std::arg(det) / static_cast<double>(n);
    const Complex correction = std::polar(1.0, -angle);
    return u * correction;
}

} // namespace snail
