#include "linalg/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace snail
{

RealMatrix::RealMatrix(std::size_t n) : _n(n), _data(n * n, 0.0) {}

RealMatrix
RealMatrix::identity(std::size_t n)
{
    RealMatrix m(n);
    for (std::size_t i = 0; i < n; ++i) {
        m(i, i) = 1.0;
    }
    return m;
}

double &
RealMatrix::operator()(std::size_t r, std::size_t c)
{
    SNAIL_ASSERT(r < _n && c < _n, "real matrix index out of range");
    return _data[r * _n + c];
}

double
RealMatrix::operator()(std::size_t r, std::size_t c) const
{
    SNAIL_ASSERT(r < _n && c < _n, "real matrix index out of range");
    return _data[r * _n + c];
}

RealMatrix
RealMatrix::operator*(const RealMatrix &other) const
{
    SNAIL_REQUIRE(_n == other._n, "real matrix shape mismatch");
    RealMatrix out(_n);
    for (std::size_t i = 0; i < _n; ++i) {
        for (std::size_t k = 0; k < _n; ++k) {
            const double aik = (*this)(i, k);
            if (aik == 0.0) {
                continue;
            }
            for (std::size_t j = 0; j < _n; ++j) {
                out(i, j) += aik * other(k, j);
            }
        }
    }
    return out;
}

RealMatrix
RealMatrix::transpose() const
{
    RealMatrix out(_n);
    for (std::size_t i = 0; i < _n; ++i) {
        for (std::size_t j = 0; j < _n; ++j) {
            out(j, i) = (*this)(i, j);
        }
    }
    return out;
}

double
RealMatrix::maxOffDiagonal() const
{
    double best = 0.0;
    for (std::size_t i = 0; i < _n; ++i) {
        for (std::size_t j = 0; j < _n; ++j) {
            if (i != j) {
                best = std::max(best, std::abs((*this)(i, j)));
            }
        }
    }
    return best;
}

bool
RealMatrix::isSymmetric(double tol) const
{
    for (std::size_t i = 0; i < _n; ++i) {
        for (std::size_t j = i + 1; j < _n; ++j) {
            if (std::abs((*this)(i, j) - (*this)(j, i)) > tol) {
                return false;
            }
        }
    }
    return true;
}

double
RealMatrix::determinant() const
{
    RealMatrix lu = *this;
    double det = 1.0;
    const std::size_t n = _n;
    for (std::size_t col = 0; col < n; ++col) {
        std::size_t pivot = col;
        double best = std::abs(lu(col, col));
        for (std::size_t r = col + 1; r < n; ++r) {
            if (std::abs(lu(r, col)) > best) {
                best = std::abs(lu(r, col));
                pivot = r;
            }
        }
        if (best == 0.0) {
            return 0.0;
        }
        if (pivot != col) {
            for (std::size_t c = 0; c < n; ++c) {
                std::swap(lu(col, c), lu(pivot, c));
            }
            det = -det;
        }
        det *= lu(col, col);
        for (std::size_t r = col + 1; r < n; ++r) {
            const double factor = lu(r, col) / lu(col, col);
            for (std::size_t c = col; c < n; ++c) {
                lu(r, c) -= factor * lu(col, c);
            }
        }
    }
    return det;
}

namespace
{

/** One Jacobi rotation zeroing (p, q); accumulates into V. */
void
jacobiRotate(RealMatrix &a, RealMatrix &v, std::size_t p, std::size_t q)
{
    const double apq = a(p, q);
    if (apq == 0.0) {
        return;
    }
    const double app = a(p, p);
    const double aqq = a(q, q);
    const double tau = (aqq - app) / (2.0 * apq);
    // Choose the smaller-magnitude root for numerical stability.
    const double t = (tau >= 0.0)
        ? 1.0 / (tau + std::sqrt(1.0 + tau * tau))
        : 1.0 / (tau - std::sqrt(1.0 + tau * tau));
    const double c = 1.0 / std::sqrt(1.0 + t * t);
    const double s = t * c;

    const std::size_t n = a.size();
    for (std::size_t k = 0; k < n; ++k) {
        const double akp = a(k, p);
        const double akq = a(k, q);
        a(k, p) = c * akp - s * akq;
        a(k, q) = s * akp + c * akq;
    }
    for (std::size_t k = 0; k < n; ++k) {
        const double apk = a(p, k);
        const double aqk = a(q, k);
        a(p, k) = c * apk - s * aqk;
        a(q, k) = s * apk + c * aqk;
    }
    for (std::size_t k = 0; k < n; ++k) {
        const double vkp = v(k, p);
        const double vkq = v(k, q);
        v(k, p) = c * vkp - s * vkq;
        v(k, q) = s * vkp + c * vkq;
    }
}

} // namespace

SymmetricEigen
eigSymmetric(const RealMatrix &a, double tol)
{
    SNAIL_REQUIRE(a.isSymmetric(1e-8),
                  "eigSymmetric expects a symmetric matrix");
    const std::size_t n = a.size();
    RealMatrix work = a;
    RealMatrix v = RealMatrix::identity(n);

    constexpr int max_sweeps = 100;
    for (int sweep = 0; sweep < max_sweeps; ++sweep) {
        if (work.maxOffDiagonal() <= tol) {
            break;
        }
        for (std::size_t p = 0; p < n; ++p) {
            for (std::size_t q = p + 1; q < n; ++q) {
                if (std::abs(work(p, q)) > tol) {
                    jacobiRotate(work, v, p, q);
                }
            }
        }
    }
    SNAIL_ASSERT(work.maxOffDiagonal() <= 1e-10,
                 "Jacobi iteration failed to converge");

    // Sort eigenpairs ascending by eigenvalue.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
        return work(x, x) < work(y, y);
    });

    SymmetricEigen out;
    out.values.resize(n);
    out.vectors = RealMatrix(n);
    for (std::size_t j = 0; j < n; ++j) {
        out.values[j] = work(order[j], order[j]);
        for (std::size_t i = 0; i < n; ++i) {
            out.vectors(i, j) = v(i, order[j]);
        }
    }
    return out;
}

namespace
{

/** One clustering attempt of the joint diagonalization; returns P. */
RealMatrix
jointDiagonalizeAttempt(const RealMatrix &a, const RealMatrix &b,
                        const SymmetricEigen &ea, double degeneracy_tol)
{
    const std::size_t n = a.size();
    RealMatrix p = ea.vectors;

    // Rotate b into a's eigenbasis and re-diagonalize inside each
    // degenerate eigenvalue cluster of a.
    RealMatrix b_rot = p.transpose() * b * p;
    std::size_t start = 0;
    while (start < n) {
        std::size_t end = start + 1;
        while (end < n &&
               std::abs(ea.values[end] - ea.values[start]) < degeneracy_tol) {
            ++end;
        }
        const std::size_t block = end - start;
        if (block > 1) {
            RealMatrix sub(block);
            for (std::size_t i = 0; i < block; ++i) {
                for (std::size_t j = 0; j < block; ++j) {
                    sub(i, j) = b_rot(start + i, start + j);
                }
            }
            // The restriction of b to an eigenspace of a is symmetric
            // because the two commute; symmetrize away rounding noise.
            for (std::size_t i = 0; i < block; ++i) {
                for (std::size_t j = i + 1; j < block; ++j) {
                    const double avg = 0.5 * (sub(i, j) + sub(j, i));
                    sub(i, j) = avg;
                    sub(j, i) = avg;
                }
            }
            const SymmetricEigen eb = eigSymmetric(sub);
            // Apply the block rotation to the columns of p.
            RealMatrix p_new = p;
            for (std::size_t col = 0; col < block; ++col) {
                for (std::size_t row = 0; row < n; ++row) {
                    double acc = 0.0;
                    for (std::size_t k = 0; k < block; ++k) {
                        acc += p(row, start + k) * eb.vectors(k, col);
                    }
                    p_new(row, start + col) = acc;
                }
            }
            p = p_new;
        }
        start = end;
    }
    return p;
}

} // namespace

RealMatrix
jointDiagonalize(const RealMatrix &a, const RealMatrix &b,
                 double degeneracy_tol)
{
    const std::size_t n = a.size();
    SNAIL_REQUIRE(b.size() == n, "jointDiagonalize shape mismatch");

    const SymmetricEigen ea = eigSymmetric(a);

    // Near-degenerate eigenvalues of `a` make the right clustering
    // tolerance input-dependent, so escalate until both matrices come out
    // diagonal.
    const double tols[] = {degeneracy_tol, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2};
    RealMatrix best_p;
    double best_residual = 1e300;
    for (double tol : tols) {
        RealMatrix p = jointDiagonalizeAttempt(a, b, ea, tol);
        const RealMatrix da = p.transpose() * a * p;
        const RealMatrix db = p.transpose() * b * p;
        const double residual =
            std::max(da.maxOffDiagonal(), db.maxOffDiagonal());
        if (residual < best_residual) {
            best_residual = residual;
            best_p = p;
        }
        if (residual < 1e-9) {
            break;
        }
    }
    SNAIL_ASSERT(best_residual < 1e-7,
                 "joint diagonalization failed; matrices may not commute "
                 "(residual " << best_residual << ")");

    // Normalize to a proper rotation so downstream SU(2) factors exist.
    RealMatrix p = best_p;
    if (p.determinant() < 0.0) {
        for (std::size_t i = 0; i < n; ++i) {
            p(i, 0) = -p(i, 0);
        }
    }
    return p;
}

} // namespace snail
