/**
 * @file
 * Euler-angle extraction for 2x2 unitaries.
 *
 * Every 1Q unitary can be written U = e^{i alpha} Rz(phi) Ry(theta) Rz(lam).
 * The KAK synthesizer and the NuOp template both express their interleaved
 * 1Q layers in these angles (equivalently, U3 parameters).
 */

#ifndef SNAILQC_LINALG_SU2_HPP
#define SNAILQC_LINALG_SU2_HPP

#include "linalg/matrix.hpp"

namespace snail
{

/** ZYZ Euler angles with global phase: U = e^{i alpha} Rz(phi) Ry(theta)
 *  Rz(lam). */
struct ZyzAngles
{
    double alpha; //!< global phase
    double theta; //!< Ry angle
    double phi;   //!< leading Rz angle
    double lam;   //!< trailing Rz angle
};

/** Rz(angle) = diag(e^{-i angle/2}, e^{+i angle/2}). */
Matrix rzMatrix(double angle);

/** Ry(angle) rotation matrix. */
Matrix ryMatrix(double angle);

/** Rx(angle) rotation matrix. */
Matrix rxMatrix(double angle);

/** U3(theta, phi, lam) in the Qiskit convention (det e^{i(phi+lam)}). */
Matrix u3Matrix(double theta, double phi, double lam);

/**
 * Decompose an arbitrary 2x2 unitary into ZYZ Euler angles.
 * @throws SnailError when u is not unitary.
 */
ZyzAngles zyzDecompose(const Matrix &u, double tol = 1e-9);

/** Rebuild the 2x2 matrix from ZYZ angles (for verification). */
Matrix zyzMatrix(const ZyzAngles &angles);

} // namespace snail

#endif // SNAILQC_LINALG_SU2_HPP
