/**
 * @file
 * Haar-random unitary sampling.
 *
 * The fidelity study of the paper (Fig. 15) averages over Haar-random 2Q
 * unitaries, and QuantumVolume layers apply Haar-random SU(4) blocks.  We
 * sample via the standard Ginibre + QR construction with the phase fix of
 * Mezzadri, which yields exactly Haar-distributed matrices.
 */

#ifndef SNAILQC_LINALG_RANDOM_UNITARY_HPP
#define SNAILQC_LINALG_RANDOM_UNITARY_HPP

#include "common/rng.hpp"
#include "linalg/matrix.hpp"

namespace snail
{

/** Haar-random n x n unitary. */
Matrix haarUnitary(std::size_t n, Rng &rng);

/** Haar-random unitary normalized to determinant one (SU(n)). */
Matrix haarSpecialUnitary(std::size_t n, Rng &rng);

} // namespace snail

#endif // SNAILQC_LINALG_RANDOM_UNITARY_HPP
