/**
 * @file
 * Dense complex matrices for snailqc.
 *
 * The library works almost exclusively with 2x2 and 4x4 unitaries plus the
 * occasional 2^n x 2^n unitary built from small circuits, so a simple
 * row-major dense matrix with value semantics is the right tool.  Hot loops
 * (the NuOp optimizer) use their own fixed-size kernels and only touch this
 * class at their boundaries.
 */

#ifndef SNAILQC_LINALG_MATRIX_HPP
#define SNAILQC_LINALG_MATRIX_HPP

#include <complex>
#include <initializer_list>
#include <iosfwd>
#include <vector>

namespace snail
{

using Complex = std::complex<double>;

/** Numerical tolerance used for matrix predicates by default. */
constexpr double kDefaultTol = 1e-9;

/** Row-major dense complex matrix with value semantics. */
class Matrix
{
  public:
    /** Empty 0x0 matrix. */
    Matrix() = default;

    /** Zero-initialized rows x cols matrix. */
    Matrix(std::size_t rows, std::size_t cols);

    /** Build from nested initializer lists (rows of cells). */
    Matrix(std::initializer_list<std::initializer_list<Complex>> rows);

    /** n x n identity. */
    static Matrix identity(std::size_t n);

    /** rows x cols zero matrix. */
    static Matrix zero(std::size_t rows, std::size_t cols);

    std::size_t rows() const { return _rows; }
    std::size_t cols() const { return _cols; }
    bool isSquare() const { return _rows == _cols; }

    /** Element access (row, col). */
    Complex &operator()(std::size_t r, std::size_t c);
    const Complex &operator()(std::size_t r, std::size_t c) const;

    /**
     * Raw storage (row-major).
     *
     * Rvalue-qualified overloads are deleted: `Gate::matrix()` returns
     * a Matrix by value, and `for (auto &c : gate.matrix().data())`
     * dangles — range-for lifetime extension does not reach through
     * the `.data()` call, so the loop reads a destroyed vector (this
     * produced a garbage-values bug once).  Materialize the Matrix
     * into a named local first; the deleted overloads turn the
     * dangling pattern into a compile error.
     */
    const std::vector<Complex> &data() const & { return _data; }
    std::vector<Complex> &data() & { return _data; }
    std::vector<Complex> data() && = delete;
    std::vector<Complex> data() const && = delete;

    Matrix operator+(const Matrix &other) const;
    Matrix operator-(const Matrix &other) const;
    Matrix operator*(const Matrix &other) const;
    Matrix operator*(const Complex &scalar) const;
    Matrix &operator*=(const Complex &scalar);

    /** Conjugate transpose. */
    Matrix dagger() const;

    /** Transpose without conjugation. */
    Matrix transpose() const;

    /** Elementwise conjugate. */
    Matrix conjugate() const;

    /** Sum of diagonal entries. @pre square. */
    Complex trace() const;

    /** Determinant via LU with partial pivoting. @pre square. */
    Complex determinant() const;

    /** Frobenius norm. */
    double frobeniusNorm() const;

    /** Largest absolute entry. */
    double maxAbs() const;

    /** True when U U^dagger == I within tol. @pre square. */
    bool isUnitary(double tol = kDefaultTol) const;

    /** True when A == A^dagger within tol. @pre square. */
    bool isHermitian(double tol = kDefaultTol) const;

    /** True when all imaginary parts vanish within tol. */
    bool isReal(double tol = kDefaultTol) const;

  private:
    std::size_t _rows = 0;
    std::size_t _cols = 0;
    std::vector<Complex> _data;
};

/** Kronecker (tensor) product a (x) b. */
Matrix kron(const Matrix &a, const Matrix &b);

/** Hilbert-Schmidt inner product Tr(a^dagger b). */
Complex hsInner(const Matrix &a, const Matrix &b);

/** Entrywise closeness within tol. */
bool allClose(const Matrix &a, const Matrix &b, double tol = kDefaultTol);

/**
 * Closeness up to a global phase: exists phi with a == e^{i phi} b.
 * The witness phase is aligned on the largest entry of b.
 */
bool equalUpToGlobalPhase(const Matrix &a, const Matrix &b,
                          double tol = kDefaultTol);

/**
 * Average-gate-style process match between two same-dimension unitaries:
 * |Tr(a^dagger b)| / dim, which is 1 exactly when a == b up to global phase.
 */
double traceFidelity(const Matrix &a, const Matrix &b);

/** Stream a matrix in a readable aligned format (for debugging). */
std::ostream &operator<<(std::ostream &os, const Matrix &m);

} // namespace snail

#endif // SNAILQC_LINALG_MATRIX_HPP
