#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>

#include "common/error.hpp"

namespace snail
{

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : _rows(rows), _cols(cols), _data(rows * cols, Complex(0.0, 0.0))
{
}

Matrix::Matrix(std::initializer_list<std::initializer_list<Complex>> rows)
{
    _rows = rows.size();
    _cols = _rows == 0 ? 0 : rows.begin()->size();
    _data.reserve(_rows * _cols);
    for (const auto &row : rows) {
        SNAIL_REQUIRE(row.size() == _cols, "ragged matrix initializer");
        _data.insert(_data.end(), row.begin(), row.end());
    }
}

Matrix
Matrix::identity(std::size_t n)
{
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        m(i, i) = Complex(1.0, 0.0);
    }
    return m;
}

Matrix
Matrix::zero(std::size_t rows, std::size_t cols)
{
    return Matrix(rows, cols);
}

Complex &
Matrix::operator()(std::size_t r, std::size_t c)
{
    SNAIL_ASSERT(r < _rows && c < _cols, "matrix index out of range");
    return _data[r * _cols + c];
}

const Complex &
Matrix::operator()(std::size_t r, std::size_t c) const
{
    SNAIL_ASSERT(r < _rows && c < _cols, "matrix index out of range");
    return _data[r * _cols + c];
}

Matrix
Matrix::operator+(const Matrix &other) const
{
    SNAIL_REQUIRE(_rows == other._rows && _cols == other._cols,
                  "matrix shape mismatch in addition");
    Matrix out(_rows, _cols);
    for (std::size_t i = 0; i < _data.size(); ++i) {
        out._data[i] = _data[i] + other._data[i];
    }
    return out;
}

Matrix
Matrix::operator-(const Matrix &other) const
{
    SNAIL_REQUIRE(_rows == other._rows && _cols == other._cols,
                  "matrix shape mismatch in subtraction");
    Matrix out(_rows, _cols);
    for (std::size_t i = 0; i < _data.size(); ++i) {
        out._data[i] = _data[i] - other._data[i];
    }
    return out;
}

Matrix
Matrix::operator*(const Matrix &other) const
{
    SNAIL_REQUIRE(_cols == other._rows, "matrix shape mismatch in product: "
                                            << _rows << "x" << _cols << " * "
                                            << other._rows << "x"
                                            << other._cols);
    Matrix out(_rows, other._cols);
    for (std::size_t i = 0; i < _rows; ++i) {
        for (std::size_t k = 0; k < _cols; ++k) {
            const Complex aik = _data[i * _cols + k];
            if (aik == Complex(0.0, 0.0)) {
                continue;
            }
            const Complex *brow = &other._data[k * other._cols];
            Complex *orow = &out._data[i * other._cols];
            for (std::size_t j = 0; j < other._cols; ++j) {
                orow[j] += aik * brow[j];
            }
        }
    }
    return out;
}

Matrix
Matrix::operator*(const Complex &scalar) const
{
    Matrix out = *this;
    out *= scalar;
    return out;
}

Matrix &
Matrix::operator*=(const Complex &scalar)
{
    for (auto &v : _data) {
        v *= scalar;
    }
    return *this;
}

Matrix
Matrix::dagger() const
{
    Matrix out(_cols, _rows);
    for (std::size_t i = 0; i < _rows; ++i) {
        for (std::size_t j = 0; j < _cols; ++j) {
            out(j, i) = std::conj((*this)(i, j));
        }
    }
    return out;
}

Matrix
Matrix::transpose() const
{
    Matrix out(_cols, _rows);
    for (std::size_t i = 0; i < _rows; ++i) {
        for (std::size_t j = 0; j < _cols; ++j) {
            out(j, i) = (*this)(i, j);
        }
    }
    return out;
}

Matrix
Matrix::conjugate() const
{
    Matrix out = *this;
    for (auto &v : out._data) {
        v = std::conj(v);
    }
    return out;
}

Complex
Matrix::trace() const
{
    SNAIL_REQUIRE(isSquare(), "trace of non-square matrix");
    Complex t(0.0, 0.0);
    for (std::size_t i = 0; i < _rows; ++i) {
        t += (*this)(i, i);
    }
    return t;
}

Complex
Matrix::determinant() const
{
    SNAIL_REQUIRE(isSquare(), "determinant of non-square matrix");
    const std::size_t n = _rows;
    Matrix lu = *this;
    Complex det(1.0, 0.0);
    for (std::size_t col = 0; col < n; ++col) {
        // Partial pivot on the largest remaining magnitude.
        std::size_t pivot = col;
        double best = std::abs(lu(col, col));
        for (std::size_t r = col + 1; r < n; ++r) {
            const double mag = std::abs(lu(r, col));
            if (mag > best) {
                best = mag;
                pivot = r;
            }
        }
        if (best == 0.0) {
            return Complex(0.0, 0.0);
        }
        if (pivot != col) {
            for (std::size_t c = 0; c < n; ++c) {
                std::swap(lu(col, c), lu(pivot, c));
            }
            det = -det;
        }
        det *= lu(col, col);
        for (std::size_t r = col + 1; r < n; ++r) {
            const Complex factor = lu(r, col) / lu(col, col);
            for (std::size_t c = col; c < n; ++c) {
                lu(r, c) -= factor * lu(col, c);
            }
        }
    }
    return det;
}

double
Matrix::frobeniusNorm() const
{
    double sum = 0.0;
    for (const auto &v : _data) {
        sum += std::norm(v);
    }
    return std::sqrt(sum);
}

double
Matrix::maxAbs() const
{
    double best = 0.0;
    for (const auto &v : _data) {
        best = std::max(best, std::abs(v));
    }
    return best;
}

bool
Matrix::isUnitary(double tol) const
{
    if (!isSquare()) {
        return false;
    }
    return allClose((*this) * dagger(), identity(_rows), tol);
}

bool
Matrix::isHermitian(double tol) const
{
    if (!isSquare()) {
        return false;
    }
    return allClose(*this, dagger(), tol);
}

bool
Matrix::isReal(double tol) const
{
    for (const auto &v : _data) {
        if (std::abs(v.imag()) > tol) {
            return false;
        }
    }
    return true;
}

Matrix
kron(const Matrix &a, const Matrix &b)
{
    Matrix out(a.rows() * b.rows(), a.cols() * b.cols());
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t j = 0; j < a.cols(); ++j) {
            const Complex aij = a(i, j);
            for (std::size_t k = 0; k < b.rows(); ++k) {
                for (std::size_t l = 0; l < b.cols(); ++l) {
                    out(i * b.rows() + k, j * b.cols() + l) = aij * b(k, l);
                }
            }
        }
    }
    return out;
}

Complex
hsInner(const Matrix &a, const Matrix &b)
{
    SNAIL_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(),
                  "shape mismatch in Hilbert-Schmidt inner product");
    Complex sum(0.0, 0.0);
    for (std::size_t i = 0; i < a.data().size(); ++i) {
        sum += std::conj(a.data()[i]) * b.data()[i];
    }
    return sum;
}

bool
allClose(const Matrix &a, const Matrix &b, double tol)
{
    if (a.rows() != b.rows() || a.cols() != b.cols()) {
        return false;
    }
    for (std::size_t i = 0; i < a.data().size(); ++i) {
        if (std::abs(a.data()[i] - b.data()[i]) > tol) {
            return false;
        }
    }
    return true;
}

bool
equalUpToGlobalPhase(const Matrix &a, const Matrix &b, double tol)
{
    if (a.rows() != b.rows() || a.cols() != b.cols()) {
        return false;
    }
    // Align phases on the largest entry of b to avoid dividing by noise.
    std::size_t best = 0;
    double best_mag = 0.0;
    for (std::size_t i = 0; i < b.data().size(); ++i) {
        const double mag = std::abs(b.data()[i]);
        if (mag > best_mag) {
            best_mag = mag;
            best = i;
        }
    }
    if (best_mag < tol) {
        return allClose(a, b, tol);
    }
    if (std::abs(a.data()[best]) < tol) {
        return false;
    }
    const Complex phase = a.data()[best] / b.data()[best];
    if (std::abs(std::abs(phase) - 1.0) > tol) {
        return false;
    }
    return allClose(a, b * phase, tol);
}

double
traceFidelity(const Matrix &a, const Matrix &b)
{
    SNAIL_REQUIRE(a.isSquare() && a.rows() == b.rows(),
                  "traceFidelity needs same-dimension square matrices");
    return std::abs(hsInner(a, b)) / static_cast<double>(a.rows());
}

std::ostream &
operator<<(std::ostream &os, const Matrix &m)
{
    os << std::fixed << std::setprecision(4);
    for (std::size_t i = 0; i < m.rows(); ++i) {
        os << (i == 0 ? "[[" : " [");
        for (std::size_t j = 0; j < m.cols(); ++j) {
            const Complex v = m(i, j);
            os << std::setw(8) << v.real() << (v.imag() < 0 ? "-" : "+")
               << std::setw(7) << std::abs(v.imag()) << "i";
            if (j + 1 < m.cols()) {
                os << ", ";
            }
        }
        os << (i + 1 == m.rows() ? "]]" : "],") << '\n';
    }
    return os;
}

} // namespace snail
