/**
 * @file
 * Real-symmetric eigensolvers used by the Weyl/KAK machinery.
 *
 * The magic-basis decomposition needs the joint diagonalization of the
 * commuting real symmetric pair (Re M2, Im M2) where M2 = Up^T Up is a
 * complex symmetric unitary.  A cyclic Jacobi sweep is exact enough and
 * robust for the small (4x4) matrices involved; the joint routine handles
 * degenerate eigenspaces by re-diagonalizing the second matrix inside each
 * eigenvalue cluster of the first.
 */

#ifndef SNAILQC_LINALG_EIGEN_HPP
#define SNAILQC_LINALG_EIGEN_HPP

#include <cstddef>
#include <vector>

namespace snail
{

/** Minimal dense real matrix used by the symmetric eigensolvers. */
class RealMatrix
{
  public:
    RealMatrix() = default;

    /** Zero-initialized n x n matrix. */
    explicit RealMatrix(std::size_t n);

    static RealMatrix identity(std::size_t n);

    std::size_t size() const { return _n; }

    double &operator()(std::size_t r, std::size_t c);
    double operator()(std::size_t r, std::size_t c) const;

    RealMatrix operator*(const RealMatrix &other) const;
    RealMatrix transpose() const;

    /** Largest absolute off-diagonal entry. */
    double maxOffDiagonal() const;

    /** True when symmetric within tol. */
    bool isSymmetric(double tol = 1e-9) const;

    /** Determinant (for orthogonal matrices this is +-1). */
    double determinant() const;

  private:
    std::size_t _n = 0;
    std::vector<double> _data;
};

/** Result of a symmetric eigendecomposition A = V diag(w) V^T. */
struct SymmetricEigen
{
    std::vector<double> values;  //!< eigenvalues, ascending
    RealMatrix vectors;          //!< columns are eigenvectors
};

/**
 * Cyclic Jacobi eigendecomposition of a real symmetric matrix.
 *
 * @param a symmetric matrix.
 * @param tol sweep convergence threshold on off-diagonal magnitude.
 * @return eigenvalues (ascending) and orthonormal eigenvectors.
 */
SymmetricEigen eigSymmetric(const RealMatrix &a, double tol = 1e-13);

/**
 * Jointly diagonalize a commuting pair of real symmetric matrices.
 *
 * @param a first symmetric matrix.
 * @param b second symmetric matrix; must commute with a.
 * @param degeneracy_tol eigenvalues of a closer than this are treated as a
 *        cluster, inside which b is diagonalized.
 * @return orthogonal P with determinant +1 such that P^T a P and P^T b P
 *         are both diagonal.
 * @throws InternalError when the pair fails to diagonalize (non-commuting).
 */
RealMatrix jointDiagonalize(const RealMatrix &a, const RealMatrix &b,
                            double degeneracy_tol = 1e-7);

} // namespace snail

#endif // SNAILQC_LINALG_EIGEN_HPP
