/**
 * @file
 * Nearest-Kronecker factorization of 4x4 matrices.
 *
 * The local factors produced by the KAK decomposition are elements of
 * SU(2) (x) SU(2) represented as 4x4 matrices; this routine recovers the
 * two 2x2 tensor factors.  It uses the reshuffling trick: the map
 * M[(a,b),(c,d)] -> R[(a,c),(b,d)] sends A (x) B to the rank-1 matrix
 * vec(A) vec(B)^T, from which both factors are read off a pivot row and
 * column.
 */

#ifndef SNAILQC_LINALG_KRON_FACTOR_HPP
#define SNAILQC_LINALG_KRON_FACTOR_HPP

#include <utility>

#include "linalg/matrix.hpp"

namespace snail
{

/** Result of a Kronecker factorization m ~= kron(left, right). */
struct KronFactors
{
    Matrix left;     //!< 2x2 factor acting on the first (high) qubit
    Matrix right;    //!< 2x2 factor acting on the second (low) qubit
    double residual; //!< Frobenius distance between kron(left,right) and m
};

/**
 * Factor a 4x4 matrix into a Kronecker product of two 2x2 matrices.
 *
 * When the input is an exact tensor product of unitaries, the returned
 * factors are unitary (each normalized, with the phase split evenly) and
 * residual is at rounding level.  For non-product inputs the residual
 * reports how far the best pivot-based rank-1 fit is from m.
 */
KronFactors factorKronecker(const Matrix &m);

} // namespace snail

#endif // SNAILQC_LINALG_KRON_FACTOR_HPP
