#include "linalg/kron_factor.hpp"

#include <cmath>

#include "common/error.hpp"

namespace snail
{

KronFactors
factorKronecker(const Matrix &m)
{
    SNAIL_REQUIRE(m.rows() == 4 && m.cols() == 4,
                  "factorKronecker needs a 4x4 matrix");

    // Reshuffle: R[(a,c), (b,d)] = M[(a,b), (c,d)], indices in {0,1}.
    Matrix r(4, 4);
    for (std::size_t a = 0; a < 2; ++a) {
        for (std::size_t b = 0; b < 2; ++b) {
            for (std::size_t c = 0; c < 2; ++c) {
                for (std::size_t d = 0; d < 2; ++d) {
                    r(a * 2 + c, b * 2 + d) = m(a * 2 + b, c * 2 + d);
                }
            }
        }
    }

    // Pivot on the largest entry for numerical stability.
    std::size_t pr = 0;
    std::size_t pc = 0;
    double best = 0.0;
    for (std::size_t i = 0; i < 4; ++i) {
        for (std::size_t j = 0; j < 4; ++j) {
            if (std::abs(r(i, j)) > best) {
                best = std::abs(r(i, j));
                pr = i;
                pc = j;
            }
        }
    }
    SNAIL_REQUIRE(best > 1e-12, "cannot factor the zero matrix");

    // R = u v^T with u = column pc scaled, v = row pr.
    std::vector<Complex> u(4);
    std::vector<Complex> v(4);
    for (std::size_t j = 0; j < 4; ++j) {
        v[j] = r(pr, j);
    }
    for (std::size_t i = 0; i < 4; ++i) {
        u[i] = r(i, pc) / v[pc];
    }

    Matrix left(2, 2);
    Matrix right(2, 2);
    left(0, 0) = u[0];
    left(0, 1) = u[1];
    left(1, 0) = u[2];
    left(1, 1) = u[3];
    right(0, 0) = v[0];
    right(0, 1) = v[1];
    right(1, 0) = v[2];
    right(1, 1) = v[3];

    // Balance the scale between the factors without changing the product:
    // for unitary inputs each factor should have Frobenius norm sqrt(2).
    const double ln = left.frobeniusNorm();
    const double rn = right.frobeniusNorm();
    SNAIL_REQUIRE(ln > 1e-12 && rn > 1e-12, "degenerate Kronecker factor");
    const double s = std::sqrt(2.0) / ln;
    Matrix left_bal = left * Complex(s, 0.0);
    Matrix right_bal = right * Complex(1.0 / s, 0.0);

    KronFactors out;
    out.left = left_bal;
    out.right = right_bal;
    out.residual = (kron(out.left, out.right) - m).frobeniusNorm();
    return out;
}

} // namespace snail
