/**
 * @file
 * Deterministic random number generation for snailqc.
 *
 * All stochastic components of the library (StochasticSwap trials, Haar
 * sampling, QuantumVolume generation, NuOp restarts) draw from an Rng
 * instance that is explicitly seeded, so that every experiment in the
 * reproduction is bit-for-bit repeatable.  The engine is xoshiro256**,
 * seeded through SplitMix64 as its authors recommend.
 */

#ifndef SNAILQC_COMMON_RNG_HPP
#define SNAILQC_COMMON_RNG_HPP

#include <array>
#include <cstdint>
#include <vector>

namespace snail
{

/** Deterministic, explicitly seeded pseudo random number generator. */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x5ea11c0de5ULL);

    /** UniformRandomBitGenerator interface. */
    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type(0); }
    result_type operator()() { return next(); }

    /** Next raw 64-bit draw. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). @pre n > 0. */
    std::size_t index(std::size_t n);

    /** Uniform integer in [lo, hi] inclusive. */
    long intRange(long lo, long hi);

    /** Standard normal draw (Box-Muller, cached pair). */
    double normal();

    /** Normal draw with given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::swap(v[i - 1], v[index(i)]);
        }
    }

    /** A fresh generator deterministically derived from this one. */
    Rng split();

    /**
     * Counter-based stream derivation: a generator that depends only on
     * (seed, stream_id), with no shared mutable state.  Concurrent
     * workers (and randomized trials that may later run concurrently)
     * each take their own stream id, so results are bit-identical
     * regardless of execution order or thread count.
     */
    static Rng stream(std::uint64_t seed, std::uint64_t stream_id);

  private:
    std::array<std::uint64_t, 4> _state;
    bool _hasCachedNormal = false;
    double _cachedNormal = 0.0;
};

} // namespace snail

#endif // SNAILQC_COMMON_RNG_HPP
