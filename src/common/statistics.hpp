/**
 * @file
 * Small statistics helpers used by the experiment harness.
 */

#ifndef SNAILQC_COMMON_STATISTICS_HPP
#define SNAILQC_COMMON_STATISTICS_HPP

#include <cstddef>
#include <vector>

namespace snail
{

/** Streaming mean/variance/min/max accumulator (Welford's algorithm). */
class RunningStats
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Number of observations so far. */
    std::size_t count() const { return _n; }

    /** Arithmetic mean (0 when empty). */
    double mean() const { return _mean; }

    /** Unbiased sample variance (0 when fewer than two samples). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Smallest observation (+inf when empty). */
    double min() const { return _min; }

    /** Largest observation (-inf when empty). */
    double max() const { return _max; }

    /** Sum of all observations. */
    double sum() const { return _mean * static_cast<double>(_n); }

  private:
    std::size_t _n = 0;
    double _mean = 0.0;
    double _m2 = 0.0;
    double _min;
    double _max;

  public:
    RunningStats();
};

/** Geometric mean of a vector of positive values. @pre all values > 0. */
double geometricMean(const std::vector<double> &values);

/** Arithmetic mean (0 for empty input). */
double arithmeticMean(const std::vector<double> &values);

/** Median (0 for empty input); averages the middle pair for even sizes. */
double median(std::vector<double> values);

} // namespace snail

#endif // SNAILQC_COMMON_STATISTICS_HPP
