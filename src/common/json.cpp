#include "common/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/error.hpp"

namespace snail
{

namespace
{

const char *
kindName(JsonValue::Kind kind)
{
    switch (kind) {
      case JsonValue::Kind::Null: return "null";
      case JsonValue::Kind::Bool: return "bool";
      case JsonValue::Kind::Number: return "number";
      case JsonValue::Kind::String: return "string";
      case JsonValue::Kind::Array: return "array";
      case JsonValue::Kind::Object: return "object";
    }
    return "?";
}

/** Recursive-descent parser over a string with position tracking. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : _text(text) {}

    JsonValue
    parseDocument()
    {
        JsonValue value = parseValue();
        skipWhitespace();
        SNAIL_REQUIRE(_pos == _text.size(),
                      "JSON: trailing content at offset " << _pos);
        return value;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what)
    {
        SNAIL_THROW("JSON: " << what << " at offset " << _pos);
    }

    void
    skipWhitespace()
    {
        while (_pos < _text.size() &&
               (_text[_pos] == ' ' || _text[_pos] == '\t' ||
                _text[_pos] == '\n' || _text[_pos] == '\r')) {
            ++_pos;
        }
    }

    char
    peek()
    {
        skipWhitespace();
        if (_pos >= _text.size()) {
            fail("unexpected end of input");
        }
        return _text[_pos];
    }

    void
    expect(char c)
    {
        if (peek() != c) {
            fail(std::string("expected '") + c + "', got '" + _text[_pos] +
                 "'");
        }
        ++_pos;
    }

    bool
    consumeLiteral(const char *word)
    {
        const std::size_t len = std::char_traits<char>::length(word);
        if (_text.compare(_pos, len, word) == 0) {
            _pos += len;
            return true;
        }
        return false;
    }

    JsonValue
    parseValue()
    {
        switch (peek()) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return JsonValue(parseString());
          case 't':
            if (consumeLiteral("true")) return JsonValue(true);
            fail("bad literal");
          case 'f':
            if (consumeLiteral("false")) return JsonValue(false);
            fail("bad literal");
          case 'n':
            if (consumeLiteral("null")) return JsonValue();
            fail("bad literal");
          default: return parseNumber();
        }
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonValue::Object members;
        if (peek() == '}') {
            ++_pos;
            return JsonValue(std::move(members));
        }
        for (;;) {
            if (peek() != '"') {
                fail("expected object key string");
            }
            std::string key = parseString();
            expect(':');
            members[std::move(key)] = parseValue();
            const char c = peek();
            ++_pos;
            if (c == '}') {
                return JsonValue(std::move(members));
            }
            if (c != ',') {
                fail("expected ',' or '}' in object");
            }
        }
    }

    JsonValue
    parseArray()
    {
        expect('[');
        JsonValue::Array items;
        if (peek() == ']') {
            ++_pos;
            return JsonValue(std::move(items));
        }
        for (;;) {
            items.push_back(parseValue());
            const char c = peek();
            ++_pos;
            if (c == ']') {
                return JsonValue(std::move(items));
            }
            if (c != ',') {
                fail("expected ',' or ']' in array");
            }
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (_pos < _text.size()) {
            const char c = _text[_pos++];
            if (c == '"') {
                return out;
            }
            if (c != '\\') {
                out += c;
                continue;
            }
            if (_pos >= _text.size()) {
                break;
            }
            const char esc = _text[_pos++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': out += parseUnicodeEscape(); break;
              default: fail("bad string escape");
            }
        }
        fail("unterminated string");
    }

    std::string
    parseUnicodeEscape()
    {
        if (_pos + 4 > _text.size()) {
            fail("truncated \\u escape");
        }
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = _text[_pos++];
            code <<= 4;
            if (c >= '0' && c <= '9') {
                code |= static_cast<unsigned>(c - '0');
            } else if (c >= 'a' && c <= 'f') {
                code |= static_cast<unsigned>(c - 'a' + 10);
            } else if (c >= 'A' && c <= 'F') {
                code |= static_cast<unsigned>(c - 'A' + 10);
            } else {
                fail("bad \\u escape digit");
            }
        }
        // UTF-8 encode the BMP code point (surrogate pairs are not
        // needed by the device schema; a lone surrogate encodes as-is).
        std::string out;
        if (code < 0x80) {
            out += static_cast<char>(code);
        } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
        } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
        }
        return out;
    }

    JsonValue
    parseNumber()
    {
        skipWhitespace();
        // std::from_chars is locale-independent (strtod is not) and
        // rejects the non-JSON forms strtod accepts (hex, "inf", a
        // leading '+').
        const char *begin = _text.c_str() + _pos;
        const char *end = _text.c_str() + _text.size();
        // JSON numbers start with '-' or a digit (from_chars alone
        // would also accept "inf"/"nan").
        if (begin == end ||
            (*begin != '-' && !std::isdigit(static_cast<unsigned char>(
                                  *begin)))) {
            fail("bad number");
        }
        double value = 0.0;
        const auto [ptr, ec] = std::from_chars(begin, end, value);
        if (ec != std::errc{} || ptr == begin) {
            fail("bad number");
        }
        _pos += static_cast<std::size_t>(ptr - begin);
        return JsonValue(value);
    }

    const std::string &_text;
    std::size_t _pos = 0;
};

void
dumpString(std::string &out, const std::string &s)
{
    out += '"';
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

} // namespace

std::string
shortestDouble(double value)
{
    SNAIL_REQUIRE(std::isfinite(value),
                  "cannot represent non-finite number " << value);
    // Integral values print without a fraction.
    if (value == std::floor(value) && std::fabs(value) < 1e15) {
        char buf[32];
        const auto [ptr, ec] = std::to_chars(
            buf, buf + sizeof(buf), static_cast<long long>(value));
        SNAIL_ASSERT(ec == std::errc{}, "to_chars failed");
        return std::string(buf, ptr);
    }
    // std::to_chars emits the shortest round-trippable form,
    // locale-independent.
    char buf[40];
    const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
    SNAIL_ASSERT(ec == std::errc{}, "to_chars failed");
    return std::string(buf, ptr);
}

std::string
fixedDouble(double value, int precision)
{
    SNAIL_REQUIRE(std::isfinite(value),
                  "cannot represent non-finite number " << value);
    SNAIL_REQUIRE(precision >= 0 && precision <= 32,
                  "fixedDouble precision " << precision << " out of range");
    char buf[384]; // fixed notation: up to ~309 integer digits
    const auto [ptr, ec] =
        std::to_chars(buf, buf + sizeof(buf), value,
                      std::chars_format::fixed, precision);
    SNAIL_ASSERT(ec == std::errc{}, "to_chars failed");
    return std::string(buf, ptr);
}

bool
JsonValue::asBool() const
{
    SNAIL_REQUIRE(_kind == Kind::Bool,
                  "JSON: expected bool, got " << kindName(_kind));
    return _bool;
}

double
JsonValue::asNumber() const
{
    SNAIL_REQUIRE(_kind == Kind::Number,
                  "JSON: expected number, got " << kindName(_kind));
    return _number;
}

int
JsonValue::asInt() const
{
    const double n = asNumber();
    SNAIL_REQUIRE(n == std::floor(n) &&
                      n >= std::numeric_limits<int>::min() &&
                      n <= std::numeric_limits<int>::max(),
                  "JSON: expected integer, got " << n);
    return static_cast<int>(n);
}

const std::string &
JsonValue::asString() const
{
    SNAIL_REQUIRE(_kind == Kind::String,
                  "JSON: expected string, got " << kindName(_kind));
    return _string;
}

const JsonValue::Array &
JsonValue::asArray() const
{
    SNAIL_REQUIRE(_kind == Kind::Array,
                  "JSON: expected array, got " << kindName(_kind));
    return _array;
}

const JsonValue::Object &
JsonValue::asObject() const
{
    SNAIL_REQUIRE(_kind == Kind::Object,
                  "JSON: expected object, got " << kindName(_kind));
    return _object;
}

JsonValue::Array &
JsonValue::array()
{
    if (_kind == Kind::Null) {
        _kind = Kind::Array;
    }
    SNAIL_REQUIRE(_kind == Kind::Array,
                  "JSON: expected array, got " << kindName(_kind));
    return _array;
}

JsonValue::Object &
JsonValue::object()
{
    if (_kind == Kind::Null) {
        _kind = Kind::Object;
    }
    SNAIL_REQUIRE(_kind == Kind::Object,
                  "JSON: expected object, got " << kindName(_kind));
    return _object;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (_kind != Kind::Object) {
        return nullptr;
    }
    const auto it = _object.find(key);
    return it == _object.end() ? nullptr : &it->second;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    const JsonValue *value = find(key);
    SNAIL_REQUIRE(value != nullptr, "JSON: missing key \"" << key << "\"");
    return *value;
}

double
JsonValue::numberOr(const std::string &key, double fallback) const
{
    const JsonValue *value = find(key);
    return value == nullptr ? fallback : value->asNumber();
}

std::string
JsonValue::stringOr(const std::string &key,
                    const std::string &fallback) const
{
    const JsonValue *value = find(key);
    return value == nullptr ? fallback : value->asString();
}

void
JsonValue::dumpTo(std::string &out, int indent, int depth) const
{
    const std::string pad =
        indent > 0 ? std::string(static_cast<std::size_t>(indent) *
                                     (static_cast<std::size_t>(depth) + 1),
                                 ' ')
                   : std::string();
    const std::string close_pad =
        indent > 0 ? std::string(static_cast<std::size_t>(indent) *
                                     static_cast<std::size_t>(depth),
                                 ' ')
                   : std::string();
    const char *newline = indent > 0 ? "\n" : "";
    const char *colon = indent > 0 ? ": " : ":";

    switch (_kind) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += _bool ? "true" : "false";
        break;
      case Kind::Number:
        out += shortestDouble(_number);
        break;
      case Kind::String:
        dumpString(out, _string);
        break;
      case Kind::Array: {
        if (_array.empty()) {
            out += "[]";
            break;
        }
        // Scalar-only arrays (e.g. edge pairs [0, 1]) stay on one line
        // even when pretty-printing.
        bool scalar_only = true;
        for (const JsonValue &item : _array) {
            if (item.isArray() || item.isObject()) {
                scalar_only = false;
                break;
            }
        }
        if (indent > 0 && scalar_only) {
            out += '[';
            bool first_item = true;
            for (const JsonValue &item : _array) {
                if (!first_item) {
                    out += ", ";
                }
                first_item = false;
                item.dumpTo(out, 0, 0);
            }
            out += ']';
            break;
        }
        out += '[';
        out += newline;
        bool first = true;
        for (const JsonValue &item : _array) {
            if (!first) {
                out += ',';
                out += newline;
            }
            first = false;
            out += pad;
            item.dumpTo(out, indent, depth + 1);
        }
        out += newline;
        out += close_pad;
        out += ']';
        break;
      }
      case Kind::Object: {
        if (_object.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        out += newline;
        bool first = true;
        for (const auto &[key, value] : _object) {
            if (!first) {
                out += ',';
                out += newline;
            }
            first = false;
            out += pad;
            dumpString(out, key);
            out += colon;
            value.dumpTo(out, indent, depth + 1);
        }
        out += newline;
        out += close_pad;
        out += '}';
        break;
      }
    }
}

std::string
JsonValue::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

JsonValue
JsonValue::parse(const std::string &text)
{
    return Parser(text).parseDocument();
}

bool
JsonValue::operator==(const JsonValue &other) const
{
    if (_kind != other._kind) {
        return false;
    }
    switch (_kind) {
      case Kind::Null: return true;
      case Kind::Bool: return _bool == other._bool;
      case Kind::Number: return _number == other._number;
      case Kind::String: return _string == other._string;
      case Kind::Array: return _array == other._array;
      case Kind::Object: return _object == other._object;
    }
    return false;
}

} // namespace snail
