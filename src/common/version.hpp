/**
 * @file
 * Build provenance: git SHA, build type, protocol version.
 *
 * A long-lived `snailqc serve` daemon and the clients that talk to it
 * are built at different times; so are the processes sharing one
 * persistent cache directory.  Diagnosing a mismatch ("why does my
 * client see different counts?") needs the binary to say what it is,
 * so CMake captures `git rev-parse` and CMAKE_BUILD_TYPE at configure
 * time and compiles them into versionInfo().  Outside a git checkout
 * (a source tarball) the SHA reads "unknown".
 *
 * The serve protocol version is bumped whenever a request or response
 * field changes incompatibly; the daemon answers `version` requests
 * with all three fields so `snailqc client version` can flag a skew.
 */

#ifndef SNAILQC_COMMON_VERSION_HPP
#define SNAILQC_COMMON_VERSION_HPP

#include <string>

namespace snail
{

/** Wire-format version of the serve protocol (serve/protocol.hpp). */
inline constexpr int kServeProtocolVersion = 1;

/** Compile-time build provenance. */
struct VersionInfo
{
    std::string git_sha;    //!< short SHA at configure time, or "unknown"
    std::string build_type; //!< CMAKE_BUILD_TYPE, or "unknown"
    int protocol = kServeProtocolVersion;
};

/** The provenance compiled into this binary. */
VersionInfo versionInfo();

/** One-line human form: "snailqc <sha> (<build-type>, protocol <n>)". */
std::string versionString();

} // namespace snail

#endif // SNAILQC_COMMON_VERSION_HPP
