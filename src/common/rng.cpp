#include "common/rng.hpp"

#include <cmath>

#include "common/error.hpp"

namespace snail
{

namespace
{

/** SplitMix64 step used for seeding. */
std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : _state) {
        word = splitMix64(s);
    }
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(_state[1] * 5, 7) * 9;
    const std::uint64_t t = _state[1] << 17;
    _state[2] ^= _state[0];
    _state[3] ^= _state[1];
    _state[1] ^= _state[2];
    _state[0] ^= _state[3];
    _state[2] ^= t;
    _state[3] = rotl(_state[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::size_t
Rng::index(std::size_t n)
{
    SNAIL_ASSERT(n > 0, "Rng::index needs a non-empty range");
    // Rejection-free multiply-shift; bias is negligible for n << 2^64.
    return static_cast<std::size_t>(
        (static_cast<unsigned __int128>(next()) * n) >> 64);
}

long
Rng::intRange(long lo, long hi)
{
    SNAIL_ASSERT(lo <= hi, "Rng::intRange empty interval");
    const auto span = static_cast<std::size_t>(hi - lo) + 1;
    return lo + static_cast<long>(index(span));
}

double
Rng::normal()
{
    if (_hasCachedNormal) {
        _hasCachedNormal = false;
        return _cachedNormal;
    }
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    _cachedNormal = r * std::sin(theta);
    _hasCachedNormal = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xd3adb33f12345678ULL);
}

Rng
Rng::stream(std::uint64_t seed, std::uint64_t stream_id)
{
    // Finalize the stream id through SplitMix64 before folding it into
    // the seed, so that consecutive ids yield uncorrelated states.
    std::uint64_t s = stream_id + 0x632be59bd9b4e019ULL;
    return Rng(seed ^ splitMix64(s));
}

} // namespace snail
