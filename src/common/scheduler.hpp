/**
 * @file
 * Persistent work-stealing scheduler with nested task submission.
 *
 * parallelFor (common/thread_pool.hpp) used to spawn a fresh
 * std::vector<std::thread> per call, so nested fan-outs — a 16-job
 * transpileBatch whose every job runs stochastic-route=10x4 — briefly
 * held 16 x 4 live threads on however many cores exist.  A Scheduler
 * instead owns one fixed set of worker threads for its whole lifetime
 * and executes *task groups* on them:
 *
 *  - run(count, concurrency, body) registers a group of `count`
 *    indices, and the calling thread immediately starts draining it;
 *    idle pool workers join in (up to concurrency - 1 of them, the
 *    caller being the remaining executor), each stealing indices off
 *    the group's shared atomic counter.
 *  - A body may itself call run() (nested submission): the executing
 *    thread drains the inner group in place — no new thread is ever
 *    created — while idle workers help.  Total live worker threads
 *    therefore never exceed the pool size, no matter how deep or wide
 *    the nesting.
 *  - When a group's indices are exhausted, the caller waits only for
 *    the stragglers still inside a body; waiting never blocks pool
 *    progress because every waiter has first drained its own group.
 *
 * Determinism contract (inherited from parallelFor): body(i) runs
 * exactly once per index and must not depend on which thread ran it
 * or in what order, so results are bit-identical at any pool size and
 * any concurrency cap, including the inline concurrency<=1 path which
 * touches no pool at all.  Exceptions are captured per index; after
 * the group completes, the one from the lowest index is rethrown.
 *
 * The process-global instance behind parallelFor is created on first
 * use with SNAILQC_POOL_SIZE workers (the environment variable; falls
 * back to std::thread::hardware_concurrency).  Long-lived processes
 * — the `snailqc serve` daemon — size it explicitly at startup via
 * setGlobalWorkerCount().
 */

#ifndef SNAILQC_COMMON_SCHEDULER_HPP
#define SNAILQC_COMMON_SCHEDULER_HPP

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace snail
{

/** Fixed pool of worker threads executing index-range task groups. */
class Scheduler
{
  public:
    /**
     * Start `workers` pool threads (0 = SNAILQC_POOL_SIZE env var,
     * else std::thread::hardware_concurrency, at least 1).
     */
    explicit Scheduler(unsigned workers = 0);

    /** Stops accepting groups, drains active ones, joins the pool. */
    ~Scheduler();

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    /** Number of pool threads (excludes participating callers). */
    unsigned workerCount() const { return _worker_count; }

    /**
     * Indices registered with active task groups that no executor has
     * claimed yet — a point-in-time backlog snapshot for monitoring
     * (the serve daemon's stats report).  0 when the pool is idle.
     */
    std::size_t queueDepth() const;

    /**
     * Invoke body(i) exactly once for every i in [0, count).  At most
     * min(concurrency, count) threads co-execute the group: this
     * calling thread plus idle pool workers (concurrency 0 means
     * "worker count + 1").  Nested calls from inside a body are safe
     * and run on the same pool.  After every index completes, the
     * exception captured at the lowest index (if any) is rethrown.
     */
    void run(std::size_t count, unsigned concurrency,
             const std::function<void(std::size_t)> &body);

    /** The process-global scheduler behind parallelFor. */
    static Scheduler &global();

    /**
     * Size the global pool before anything uses it (daemon startup).
     * @throws SnailError once the global scheduler already exists
     *         with a different size.
     */
    static void setGlobalWorkerCount(unsigned workers);

  private:
    struct TaskGroup;

    void workerLoop();

    /** Steal indices off the group until none remain. */
    static void drainGroup(TaskGroup &group);

    mutable std::mutex _mutex;
    std::condition_variable _work_cv; //!< workers: "a group needs you"
    std::condition_variable _done_cv; //!< callers: "an executor left"
    std::vector<TaskGroup *> _active; //!< groups still holding indices
    std::vector<std::thread> _threads;
    bool _stop = false;
    unsigned _worker_count = 0;
};

} // namespace snail

#endif // SNAILQC_COMMON_SCHEDULER_HPP
