#include "common/scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <memory>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace snail
{

/**
 * One run() invocation: an index range, the body, and the executor
 * bookkeeping.  Lives on the caller's stack; safe because the caller
 * cannot leave run() until `executors` drops to zero (no pool worker
 * holds a pointer past that).
 */
struct Scheduler::TaskGroup
{
    std::size_t count = 0;
    const std::function<void(std::size_t)> *body = nullptr;
    std::vector<std::exception_ptr> *errors = nullptr;
    std::atomic<std::size_t> next{0};
    /** Pool workers currently draining this group (mutex-guarded). */
    unsigned executors = 0;
    /** Pool-worker cap: concurrency - 1 (the caller always drains). */
    unsigned max_executors = 0;
    /** When the group became runnable; tasks report claim - this as
     *  queue wait. */
    std::chrono::steady_clock::time_point enqueued;
};

namespace
{

unsigned
defaultWorkerCount()
{
    if (const char *env = std::getenv("SNAILQC_POOL_SIZE")) {
        char *end = nullptr;
        const long parsed = std::strtol(env, &end, 10);
        if (end && *end == '\0' && parsed > 0) {
            return static_cast<unsigned>(parsed);
        }
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

/** Process-global scheduler state behind Scheduler::global(). */
std::mutex g_global_mutex;
std::unique_ptr<Scheduler> g_global;
unsigned g_global_workers = 0; // 0 = defaultWorkerCount() at first use

/**
 * Publish one executed task into the registry.  busy-us is a counter
 * (not only a histogram sum) so worker utilization is derivable as
 * rate(snailqc_sched_busy_us_total) / pool_size.
 */
void
observeTask(double run_us, double wait_us)
{
    static Counter &tasks =
        MetricsRegistry::global().counter("snailqc_sched_tasks_total");
    static Counter &busy = MetricsRegistry::global().counter(
        "snailqc_sched_busy_us_total");
    static Histogram &run_hist =
        MetricsRegistry::global().histogram("snailqc_sched_task_run_us");
    static Histogram &wait_hist = MetricsRegistry::global().histogram(
        "snailqc_sched_queue_wait_us");
    tasks.add();
    busy.add(run_us >= 1.0 ? static_cast<unsigned long long>(run_us)
                           : 0ull);
    run_hist.observe(run_us);
    wait_hist.observe(wait_us);
}

} // namespace

Scheduler::Scheduler(unsigned workers)
{
    _worker_count = workers == 0 ? defaultWorkerCount() : workers;
    _threads.reserve(_worker_count);
    for (unsigned t = 0; t < _worker_count; ++t) {
        _threads.emplace_back([this]() { workerLoop(); });
    }
}

Scheduler::~Scheduler()
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _stop = true;
    }
    _work_cv.notify_all();
    for (std::thread &thread : _threads) {
        thread.join();
    }
}

void
Scheduler::drainGroup(TaskGroup &group)
{
    using clock = std::chrono::steady_clock;
    for (;;) {
        const std::size_t i = group.next.fetch_add(1);
        if (i >= group.count) {
            return;
        }
        const clock::time_point claim = clock::now();
        try {
            ScopedSpan span("sched:task", "sched");
            (*group.body)(i);
        } catch (...) {
            (*group.errors)[i] = std::current_exception();
        }
        const clock::time_point done = clock::now();
        observeTask(
            std::chrono::duration<double, std::micro>(done - claim)
                .count(),
            std::chrono::duration<double, std::micro>(claim -
                                                      group.enqueued)
                .count());
    }
}

void
Scheduler::workerLoop()
{
    std::unique_lock<std::mutex> lock(_mutex);
    for (;;) {
        TaskGroup *group = nullptr;
        for (TaskGroup *candidate : _active) {
            if (candidate->executors < candidate->max_executors &&
                candidate->next.load(std::memory_order_relaxed) <
                    candidate->count) {
                group = candidate;
                break;
            }
        }
        if (group == nullptr) {
            if (_stop) {
                return;
            }
            _work_cv.wait(lock);
            continue;
        }
        ++group->executors;
        lock.unlock();
        drainGroup(*group);
        lock.lock();
        --group->executors;
        if (group->executors == 0) {
            // The group's caller may be waiting in run() for the last
            // executor to leave before destroying the group.
            _done_cv.notify_all();
        }
    }
}

void
Scheduler::run(std::size_t count, unsigned concurrency,
               const std::function<void(std::size_t)> &body)
{
    if (count == 0) {
        return;
    }
    // 0 = "use the whole pool": every worker plus the caller.
    const unsigned resolved = resolveThreadCount(
        concurrency == 0 ? _worker_count + 1 : concurrency, count);
    std::vector<std::exception_ptr> errors(count);

    static Counter &groups =
        MetricsRegistry::global().counter("snailqc_sched_groups_total");
    groups.add();
    ScopedSpan group_span("sched:group", "sched");

    if (resolved <= 1 || count == 1) {
        // Inline serial path: no pool, no locks — the deterministic
        // reference execution every parallel run must match.  Tasks
        // still publish run time (queue wait is by definition ~0).
        using clock = std::chrono::steady_clock;
        for (std::size_t i = 0; i < count; ++i) {
            const clock::time_point start = clock::now();
            try {
                ScopedSpan span("sched:task", "sched");
                body(i);
            } catch (...) {
                errors[i] = std::current_exception();
            }
            observeTask(std::chrono::duration<double, std::micro>(
                            clock::now() - start)
                            .count(),
                        0.0);
        }
    } else {
        TaskGroup group;
        group.count = count;
        group.body = &body;
        group.errors = &errors;
        group.max_executors = resolved - 1;
        group.enqueued = std::chrono::steady_clock::now();
        {
            std::lock_guard<std::mutex> lock(_mutex);
            _active.push_back(&group);
        }
        _work_cv.notify_all();

        // The caller is always an executor: a nested run() drains its
        // own group in place instead of spawning threads, so the pool
        // bounds live workers regardless of nesting.
        drainGroup(group);

        std::unique_lock<std::mutex> lock(_mutex);
        _active.erase(std::find(_active.begin(), _active.end(), &group));
        // Indices are exhausted (we drained); wait out stragglers
        // still inside a body.  Every straggler completes its indices
        // before leaving, so executors == 0 implies the group is done.
        _done_cv.wait(lock, [&group]() { return group.executors == 0; });
    }

    for (const std::exception_ptr &error : errors) {
        if (error) {
            std::rethrow_exception(error);
        }
    }
}

std::size_t
Scheduler::queueDepth() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    std::size_t depth = 0;
    for (const TaskGroup *group : _active) {
        const std::size_t next =
            group->next.load(std::memory_order_relaxed);
        depth += next >= group->count ? 0 : group->count - next;
    }
    return depth;
}

Scheduler &
Scheduler::global()
{
    std::lock_guard<std::mutex> lock(g_global_mutex);
    if (!g_global) {
        g_global = std::make_unique<Scheduler>(g_global_workers);
        // Live monitoring gauges for the pool everything shares.  The
        // callbacks capture the raw pointer — NOT Scheduler::global()
        // — so a registry snapshot never re-enters g_global_mutex.
        Scheduler *sched = g_global.get();
        MetricsRegistry &registry = MetricsRegistry::global();
        registry.registerGauge("snailqc_sched_pool_size", [sched]() {
            return static_cast<double>(sched->workerCount());
        });
        registry.registerGauge("snailqc_sched_queue_depth", [sched]() {
            return static_cast<double>(sched->queueDepth());
        });
    }
    return *g_global;
}

void
Scheduler::setGlobalWorkerCount(unsigned workers)
{
    std::lock_guard<std::mutex> lock(g_global_mutex);
    if (g_global) {
        SNAIL_REQUIRE(workers == 0 || workers == g_global->workerCount(),
                      "global scheduler already running with "
                          << g_global->workerCount()
                          << " workers; cannot resize to " << workers);
        return;
    }
    g_global_workers = workers;
}

} // namespace snail
