#include "common/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace snail
{

RunningStats::RunningStats()
    : _min(std::numeric_limits<double>::infinity()),
      _max(-std::numeric_limits<double>::infinity())
{
}

void
RunningStats::add(double x)
{
    ++_n;
    const double delta = x - _mean;
    _mean += delta / static_cast<double>(_n);
    _m2 += delta * (x - _mean);
    _min = std::min(_min, x);
    _max = std::max(_max, x);
}

double
RunningStats::variance() const
{
    if (_n < 2) {
        return 0.0;
    }
    return _m2 / static_cast<double>(_n - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
geometricMean(const std::vector<double> &values)
{
    if (values.empty()) {
        return 0.0;
    }
    double log_sum = 0.0;
    for (double v : values) {
        SNAIL_REQUIRE(v > 0.0, "geometricMean requires positive values, got "
                                   << v);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
arithmeticMean(const std::vector<double> &values)
{
    if (values.empty()) {
        return 0.0;
    }
    double sum = 0.0;
    for (double v : values) {
        sum += v;
    }
    return sum / static_cast<double>(values.size());
}

double
median(std::vector<double> values)
{
    if (values.empty()) {
        return 0.0;
    }
    std::sort(values.begin(), values.end());
    const std::size_t n = values.size();
    if (n % 2 == 1) {
        return values[n / 2];
    }
    return 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

} // namespace snail
