#include "common/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>

#include "common/error.hpp"
#include "common/json.hpp"

namespace snail
{

TableWriter::TableWriter(std::vector<std::string> headers)
    : _headers(std::move(headers))
{
    SNAIL_REQUIRE(!_headers.empty(), "table needs at least one column");
}

void
TableWriter::addRow(std::vector<std::string> cells)
{
    SNAIL_REQUIRE(cells.size() == _headers.size(),
                  "row has " << cells.size() << " cells, table has "
                             << _headers.size() << " columns");
    _rows.push_back(std::move(cells));
}

std::string
TableWriter::num(double v, int precision)
{
    // std::to_chars, not an ostringstream: iostream formatting honors
    // std::locale::global (decimal commas, digit grouping), and table
    // and CSV reports must be locale-independent.
    return fixedDouble(v, precision);
}

std::string
TableWriter::count(double v)
{
    return std::to_string(static_cast<long long>(std::llround(v)));
}

void
TableWriter::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(_headers.size());
    for (std::size_t c = 0; c < _headers.size(); ++c) {
        widths[c] = _headers[c].size();
    }
    for (const auto &row : _rows) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }

    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
               << cells[c];
        }
        os << '\n';
    };

    emit_row(_headers);
    std::size_t total = 0;
    for (auto w : widths) {
        total += w + 2;
    }
    os << std::string(total, '-') << '\n';
    for (const auto &row : _rows) {
        emit_row(row);
    }
}

void
TableWriter::printCsv(std::ostream &os) const
{
    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c > 0) {
                os << ',';
            }
            os << cells[c];
        }
        os << '\n';
    };
    emit_row(_headers);
    for (const auto &row : _rows) {
        emit_row(row);
    }
}

void
printBanner(std::ostream &os, const std::string &title)
{
    os << "\n== " << title << " ==\n";
}

} // namespace snail
