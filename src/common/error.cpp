#include "common/error.hpp"

namespace snail
{
namespace detail
{

void
assertFailed(const char *expr, const char *file, int line,
             const std::string &msg)
{
    std::ostringstream oss;
    oss << "internal assertion failed: (" << expr << ") at " << file << ":"
        << line;
    if (!msg.empty()) {
        oss << " -- " << msg;
    }
    throw InternalError(oss.str());
}

} // namespace detail
} // namespace snail
