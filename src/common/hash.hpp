/**
 * @file
 * FNV-1a 64-bit content hashing.
 *
 * The design-space exploration engine (explore/) addresses transpile
 * results by content: a cache key is (circuit hash, target hash,
 * pipeline spec, seed).  Those hashes must be stable across processes
 * and library versions of std::hash, so they are computed with the
 * fixed FNV-1a construction below.  Doubles hash by bit pattern
 * (std::memcpy of the IEEE-754 representation), which is exactly the
 * "any mutation changes the hash" contract the cache needs; note that
 * +0.0 and -0.0 therefore hash differently.
 */

#ifndef SNAILQC_COMMON_HASH_HPP
#define SNAILQC_COMMON_HASH_HPP

#include <cstring>
#include <string>

namespace snail
{

/**
 * "0x"-prefixed lowercase hex form of a 64-bit value — the one
 * rendering of content hashes and seeds shared by the checkpoint
 * format and the sweep reporters (std::stoull(s, nullptr, 16) inverts
 * it).
 */
inline std::string
hex64(unsigned long long value)
{
    static const char digits[] = "0123456789abcdef";
    std::string out = "0x";
    bool started = false;
    for (int shift = 60; shift >= 0; shift -= 4) {
        const unsigned nibble =
            static_cast<unsigned>((value >> shift) & 0xF);
        if (nibble != 0 || started || shift == 0) {
            out += digits[nibble];
            started = true;
        }
    }
    return out;
}

/** Incremental FNV-1a 64-bit hasher. */
class ContentHasher
{
  public:
    ContentHasher &
    byte(unsigned char b)
    {
        _state = (_state ^ b) * kPrime;
        return *this;
    }

    ContentHasher &
    u64(unsigned long long v)
    {
        for (int i = 0; i < 8; ++i) {
            byte(static_cast<unsigned char>(v >> (8 * i)));
        }
        return *this;
    }

    ContentHasher &
    i64(long long v)
    {
        return u64(static_cast<unsigned long long>(v));
    }

    ContentHasher &
    f64(double v)
    {
        unsigned long long bits = 0;
        static_assert(sizeof(bits) == sizeof(v), "double is 64-bit");
        std::memcpy(&bits, &v, sizeof(bits));
        return u64(bits);
    }

    ContentHasher &
    str(const std::string &s)
    {
        u64(s.size());
        for (char c : s) {
            byte(static_cast<unsigned char>(c));
        }
        return *this;
    }

    unsigned long long value() const { return _state; }

  private:
    static constexpr unsigned long long kOffsetBasis =
        14695981039346656037ULL;
    static constexpr unsigned long long kPrime = 1099511628211ULL;

    unsigned long long _state = kOffsetBasis;
};

} // namespace snail

#endif // SNAILQC_COMMON_HASH_HPP
