#include "common/thread_pool.hpp"

#include <thread>

#include "common/scheduler.hpp"

namespace snail
{

unsigned
resolveThreadCount(unsigned requested, std::size_t count)
{
    if (requested == 0) {
        requested = std::thread::hardware_concurrency();
        if (requested == 0) {
            requested = 1;
        }
    }
    if (count < requested) {
        requested = static_cast<unsigned>(count);
    }
    return requested == 0 ? 1 : requested;
}

void
parallelFor(std::size_t count, unsigned num_threads,
            const std::function<void(std::size_t)> &body)
{
    Scheduler::global().run(count, num_threads, body);
}

} // namespace snail
