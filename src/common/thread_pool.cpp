#include "common/thread_pool.hpp"

#include <atomic>
#include <exception>
#include <thread>
#include <vector>

namespace snail
{

unsigned
resolveThreadCount(unsigned requested, std::size_t count)
{
    if (requested == 0) {
        requested = std::thread::hardware_concurrency();
        if (requested == 0) {
            requested = 1;
        }
    }
    if (count < requested) {
        requested = static_cast<unsigned>(count);
    }
    return requested == 0 ? 1 : requested;
}

void
parallelFor(std::size_t count, unsigned num_threads,
            const std::function<void(std::size_t)> &body)
{
    if (count == 0) {
        return;
    }
    num_threads = resolveThreadCount(num_threads, count);

    std::vector<std::exception_ptr> errors(count);

    // Work stealing off a shared atomic counter: jobs differ wildly in
    // cost (widths, topologies), so static striping would idle workers.
    std::atomic<std::size_t> next{0};
    auto worker = [&]() {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= count) {
                return;
            }
            try {
                body(i);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        }
    };

    if (num_threads <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(num_threads);
        for (unsigned t = 0; t < num_threads; ++t) {
            pool.emplace_back(worker);
        }
        for (auto &thread : pool) {
            thread.join();
        }
    }

    for (const auto &error : errors) {
        if (error) {
            std::rethrow_exception(error);
        }
    }
}

} // namespace snail
