/**
 * @file
 * Shared work-stealing parallel-for primitive.
 *
 * Factored out of PassManager's transpileBatch so every fan-out in the
 * library — batch transpilation, design-space sweeps (explore/engine),
 * parallel stochastic routing trials — schedules work the same way:
 * executors steal indices off one shared atomic counter, which keeps
 * long and short jobs balanced without static striping.
 *
 * parallelFor executes on the process-global persistent Scheduler
 * (common/scheduler.hpp): the calling thread drains the indices
 * itself while idle pool workers help, so nested fan-outs (a batch
 * whose jobs each run parallel trials) never create threads beyond
 * the fixed pool.  num_threads caps how many executors co-run one
 * call; the pool size bounds the process.
 *
 * Determinism contract: the body is invoked exactly once per index,
 * and nothing about the result may depend on which worker ran it or
 * in what order.  Callers therefore see bit-identical output at any
 * thread count, including 1 (where the body runs inline on the
 * calling thread with no pool at all).
 */

#ifndef SNAILQC_COMMON_THREAD_POOL_HPP
#define SNAILQC_COMMON_THREAD_POOL_HPP

#include <cstddef>
#include <functional>

namespace snail
{

/**
 * Effective worker count for `count` independent jobs: `requested`,
 * with 0 meaning std::thread::hardware_concurrency (at least 1), and
 * never more workers than jobs.
 */
unsigned resolveThreadCount(unsigned requested, std::size_t count);

/**
 * Invoke body(i) exactly once for every i in [0, count), fanning the
 * indices across resolveThreadCount(num_threads, count) workers.  Each
 * body invocation must be independent of the others (the usual pattern
 * writes into a caller-owned slot at index i).  Exceptions thrown by
 * the body are captured per index; after all workers finish, the one
 * from the lowest index is rethrown.
 */
void parallelFor(std::size_t count, unsigned num_threads,
                 const std::function<void(std::size_t)> &body);

} // namespace snail

#endif // SNAILQC_COMMON_THREAD_POOL_HPP
