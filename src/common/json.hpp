/**
 * @file
 * Minimal JSON value type, parser, and serializer.
 *
 * The container image bakes in no third-party JSON library, so the
 * device-description files under examples/devices/ (target/target.hpp)
 * and any other machine-readable output are handled by this small,
 * dependency-free implementation.  It supports the full JSON value
 * grammar (null, booleans, numbers, strings with escapes, arrays,
 * objects); numbers are stored as double, which is exact for the
 * qubit indices and fidelities the device schema uses.
 */

#ifndef SNAILQC_COMMON_JSON_HPP
#define SNAILQC_COMMON_JSON_HPP

#include <map>
#include <string>
#include <vector>

namespace snail
{

/**
 * Shortest decimal string that parses back to exactly `value`
 * (std::to_chars), locale-independent; integral values print without
 * a fraction.  Shared by the JSON serializer and spec round-tripping.
 * @throws SnailError for non-finite values.
 */
std::string shortestDouble(double value);

/**
 * `value` in fixed notation with exactly `precision` fraction digits
 * (std::to_chars), locale-independent — what std::fixed /
 * std::setprecision produce under the "C" locale, but immune to
 * std::locale::global.  Used by the table/CSV report writers.
 * @throws SnailError for non-finite values.
 */
std::string fixedDouble(double value, int precision);

/** One JSON value: null, bool, number, string, array, or object. */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    /** Object members, sorted by key (order is not significant). */
    using Object = std::map<std::string, JsonValue>;
    using Array = std::vector<JsonValue>;

    JsonValue() : _kind(Kind::Null) {}
    JsonValue(bool b) : _kind(Kind::Bool), _bool(b) {}
    JsonValue(double n) : _kind(Kind::Number), _number(n) {}
    JsonValue(int n) : _kind(Kind::Number), _number(n) {}
    JsonValue(std::string s) : _kind(Kind::String), _string(std::move(s)) {}
    JsonValue(const char *s) : _kind(Kind::String), _string(s) {}
    JsonValue(Array a) : _kind(Kind::Array), _array(std::move(a)) {}
    JsonValue(Object o) : _kind(Kind::Object), _object(std::move(o)) {}

    Kind kind() const { return _kind; }
    bool isNull() const { return _kind == Kind::Null; }
    bool isBool() const { return _kind == Kind::Bool; }
    bool isNumber() const { return _kind == Kind::Number; }
    bool isString() const { return _kind == Kind::String; }
    bool isArray() const { return _kind == Kind::Array; }
    bool isObject() const { return _kind == Kind::Object; }

    /** Typed accessors. @throws SnailError on a kind mismatch. */
    bool asBool() const;
    double asNumber() const;
    /** asNumber() checked to be integral and in range. */
    int asInt() const;
    const std::string &asString() const;
    const Array &asArray() const;
    const Object &asObject() const;

    /** Mutable array/object access (converts a Null value in place). */
    Array &array();
    Object &object();

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    /**
     * Member `key`, required to exist.
     * @throws SnailError naming the missing key.
     */
    const JsonValue &at(const std::string &key) const;

    /** Member `key` as a number, or `fallback` when absent. */
    double numberOr(const std::string &key, double fallback) const;

    /** Member `key` as a string, or `fallback` when absent. */
    std::string stringOr(const std::string &key,
                         const std::string &fallback) const;

    /**
     * Serialize.  `indent` > 0 pretty-prints with that many spaces per
     * nesting level; 0 emits the compact single-line form.
     */
    std::string dump(int indent = 0) const;

    /** Parse a complete JSON document. @throws SnailError on errors. */
    static JsonValue parse(const std::string &text);

    bool operator==(const JsonValue &other) const;
    bool operator!=(const JsonValue &other) const
    {
        return !(*this == other);
    }

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Kind _kind;
    bool _bool = false;
    double _number = 0.0;
    std::string _string;
    Array _array;
    Object _object;
};

} // namespace snail

#endif // SNAILQC_COMMON_JSON_HPP
