/**
 * @file
 * ASCII table / CSV emitters used by the reproduction benches.
 *
 * Every bench prints the same rows or series that the corresponding paper
 * table/figure reports.  TableWriter collects rows of heterogeneous cells
 * and renders them with aligned columns (and optionally as CSV so results
 * can be re-plotted).
 */

#ifndef SNAILQC_COMMON_TABLE_HPP
#define SNAILQC_COMMON_TABLE_HPP

#include <iosfwd>
#include <string>
#include <vector>

namespace snail
{

/** Column-aligned table printer for bench output. */
class TableWriter
{
  public:
    /** Construct with column headers. */
    explicit TableWriter(std::vector<std::string> headers);

    /** Append one row; cell count must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with the given precision. */
    static std::string num(double v, int precision = 2);

    /** Convenience: format an integer-valued count. */
    static std::string count(double v);

    /** Render with aligned columns to the stream. */
    void print(std::ostream &os) const;

    /** Render as CSV (no alignment padding). */
    void printCsv(std::ostream &os) const;

  private:
    std::vector<std::string> _headers;
    std::vector<std::vector<std::string>> _rows;
};

/** Print a section banner ("== title ==") used between bench sections. */
void printBanner(std::ostream &os, const std::string &title);

} // namespace snail

#endif // SNAILQC_COMMON_TABLE_HPP
