#include "common/version.hpp"

// CMake defines these for this translation unit only (see the
// set_source_files_properties block in CMakeLists.txt); the fallbacks
// keep non-CMake builds (e.g. a bare compiler invocation) compiling.
#ifndef SNAILQC_GIT_SHA
#define SNAILQC_GIT_SHA "unknown"
#endif
#ifndef SNAILQC_BUILD_TYPE
#define SNAILQC_BUILD_TYPE "unknown"
#endif

namespace snail
{

VersionInfo
versionInfo()
{
    VersionInfo info;
    info.git_sha = SNAILQC_GIT_SHA;
    info.build_type = SNAILQC_BUILD_TYPE;
    return info;
}

std::string
versionString()
{
    const VersionInfo info = versionInfo();
    return "snailqc " + info.git_sha + " (" + info.build_type +
           ", protocol " + std::to_string(info.protocol) + ")";
}

} // namespace snail
