/**
 * @file
 * Error handling primitives for snailqc.
 *
 * Two kinds of failure are distinguished, following the gem5 fatal/panic
 * convention:
 *  - SnailError: user-facing errors (bad arguments, impossible requests).
 *    Thrown as exceptions so callers and tests can react.
 *  - SNAIL_ASSERT: internal invariant violations (library bugs).  These
 *    abort in debug builds and throw in release builds so that test
 *    harnesses can still observe them.
 */

#ifndef SNAILQC_COMMON_ERROR_HPP
#define SNAILQC_COMMON_ERROR_HPP

#include <sstream>
#include <stdexcept>
#include <string>

namespace snail
{

/** Exception type for user-level errors (invalid configuration or input). */
class SnailError : public std::runtime_error
{
  public:
    explicit SnailError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Exception type for internal invariant violations (library bugs). */
class InternalError : public std::logic_error
{
  public:
    explicit InternalError(const std::string &msg) : std::logic_error(msg) {}
};

/**
 * A qubit pair with no connecting path on a coupling graph.  Thrown by
 * CouplingGraph::distance / shortestPath — typically surfacing from the
 * middle of a routing pass handed a disconnected device — and carries
 * the offending pair and the graph's name so callers can report which
 * device is broken instead of a bare "disconnected" failure.
 */
class DisconnectedError : public SnailError
{
  public:
    DisconnectedError(std::string graph_name, int a, int b)
        : SnailError("qubits " + std::to_string(a) + " and " +
                     std::to_string(b) + " are disconnected on graph '" +
                     graph_name + "'"),
          _graphName(std::move(graph_name)), _a(a), _b(b)
    {
    }

    const std::string &graphName() const { return _graphName; }
    int qubitA() const { return _a; }
    int qubitB() const { return _b; }

  private:
    std::string _graphName;
    int _a;
    int _b;
};

/**
 * A coupling graph too large for the flat uint16 distance table.
 * CouplingGraph stores all-pairs hop distances as a row-major
 * std::uint16_t matrix (with 0xFFFF reserved as the "unreachable"
 * sentinel), so the longest representable distance is 65534 hops.  Any
 * graph whose diameter could exceed that — i.e. any graph with more
 * than 65535 vertices, since a hop distance is at most n - 1 — is
 * rejected when the table is first built.  (Such a table would be
 * > 8 GiB anyway; devices that size need a different representation.)
 */
class DistanceOverflowError : public SnailError
{
  public:
    DistanceOverflowError(std::string graph_name, int num_qubits,
                          int max_qubits)
        : SnailError("graph '" + graph_name + "' has " +
                     std::to_string(num_qubits) +
                     " qubits; the uint16 distance table represents hop "
                     "distances up to " + std::to_string(max_qubits - 1) +
                     " and therefore at most " + std::to_string(max_qubits) +
                     " qubits"),
          _graphName(std::move(graph_name)), _numQubits(num_qubits)
    {
    }

    const std::string &graphName() const { return _graphName; }
    int numQubits() const { return _numQubits; }

  private:
    std::string _graphName;
    int _numQubits;
};

/**
 * A coupling listed more than once in a JSON device description.
 * Thrown by targetFromJson: CouplingGraph::addEdge is idempotent, so a
 * repeated entry would otherwise silently collapse — and when the
 * entries carry different calibration, the last writer would win.
 * Carries the offending pair and the device name so tooling can point
 * at the exact line to fix.
 */
class DuplicateEdgeError : public SnailError
{
  public:
    DuplicateEdgeError(std::string device_name, int a, int b)
        : DuplicateEdgeError(std::move(device_name), a, b, "")
    {
    }

    /**
     * Re-wrapping constructor: `context` prefixes the message (e.g.
     * the file path) while deviceName() keeps the bare device name.
     */
    DuplicateEdgeError(std::string device_name, int a, int b,
                       const std::string &context)
        : SnailError(context + "edge (" + std::to_string(a) + ", " +
                     std::to_string(b) + ") listed more than once in "
                     "device '" + device_name + "'"),
          _deviceName(std::move(device_name)), _a(a), _b(b)
    {
    }

    const std::string &deviceName() const { return _deviceName; }
    int qubitA() const { return _a; }
    int qubitB() const { return _b; }

  private:
    std::string _deviceName;
    int _a;
    int _b;
};

/**
 * A router that keeps inserting SWAPs without ever executing a gate.
 * Thrown by SabreRouter when the hard step cap is exceeded — reachable
 * only on adversarial inputs (e.g. a per-edge SWAP penalty that makes
 * one edge infinitely attractive), where the decay safety valve alone
 * would spin forever.  Carries the router, circuit, and graph names
 * plus the number of fruitless SWAPs so sweep drivers can report which
 * (workload, device) cell diverged.
 */
class RoutingError : public SnailError
{
  public:
    RoutingError(std::string router_name, std::string circuit_name,
                 std::string graph_name, long steps)
        : SnailError("router '" + router_name + "' inserted " +
                     std::to_string(steps) +
                     " SWAPs without executing a gate while routing "
                     "circuit '" + circuit_name + "' onto graph '" +
                     graph_name + "' — aborting a thrashing search"),
          _routerName(std::move(router_name)),
          _circuitName(std::move(circuit_name)),
          _graphName(std::move(graph_name)), _steps(steps)
    {
    }

    const std::string &routerName() const { return _routerName; }
    const std::string &circuitName() const { return _circuitName; }
    const std::string &graphName() const { return _graphName; }
    long steps() const { return _steps; }

  private:
    std::string _routerName;
    std::string _circuitName;
    std::string _graphName;
    long _steps;
};

/**
 * The same sweep point recorded twice with conflicting metrics in one
 * JSONL checkpoint — the signature of two workers accidentally sharing
 * a checkpoint path (or a file corrupted by concurrent writers).
 * Thrown by loadCheckpoint and by sweep-merge; carries the offending
 * point's content key (hex, as rendered in the checkpoint line) and
 * the file it was found in.  Byte-identical repeats of a line are
 * tolerated: determinism makes the benign two-workers-computed-the-
 * same-point race produce exactly equal records.
 */
class DuplicatePointError : public SnailError
{
  public:
    DuplicatePointError(std::string point_key, std::string path,
                        const std::string &why)
        : SnailError("point " + point_key + " appears more than once in "
                     "checkpoint '" + path + "' (" + why + ")"),
          _pointKey(std::move(point_key)), _path(std::move(path))
    {
    }

    const std::string &pointKey() const { return _pointKey; }
    const std::string &path() const { return _path; }

  private:
    std::string _pointKey;
    std::string _path;
};

/**
 * A sharded-sweep merge whose shard files do not cover the spec's
 * expansion: at least one expanded point appears in no shard
 * checkpoint.  Thrown by mergeSweepShards; carries the first missing
 * point's label (circuit/width/target/pipeline) and the total number
 * missing, so a fleet operator knows which shard run to re-drive.
 */
class ShardCoverageError : public SnailError
{
  public:
    ShardCoverageError(std::string point_label, std::size_t missing,
                       std::size_t total)
        : SnailError("shard merge is missing " + std::to_string(missing) +
                     " of " + std::to_string(total) +
                     " sweep points; first missing: " + point_label),
          _pointLabel(std::move(point_label)), _missing(missing)
    {
    }

    const std::string &pointLabel() const { return _pointLabel; }
    std::size_t missingCount() const { return _missing; }

  private:
    std::string _pointLabel;
    std::size_t _missing;
};

/**
 * A shard checkpoint record that belongs to no point of the spec being
 * merged — a checkpoint from a different spec (or stdlib seed
 * derivation) mixed into the shard set.  Thrown by mergeSweepShards;
 * carries the foreign record's content key and the file it came from.
 */
class ForeignPointError : public SnailError
{
  public:
    ForeignPointError(std::string point_key, std::string path)
        : SnailError("checkpoint '" + path + "' holds point " + point_key +
                     " which is not in the sweep's expansion — a shard "
                     "from a different spec?"),
          _pointKey(std::move(point_key)), _path(std::move(path))
    {
    }

    const std::string &pointKey() const { return _pointKey; }
    const std::string &path() const { return _path; }

  private:
    std::string _pointKey;
    std::string _path;
};

/**
 * A shard checkpoint whose header disagrees with the run it is being
 * used for: different point-set fingerprint (another spec), different
 * shard count, or the wrong shard index.  Thrown when resuming a
 * sharded sweep onto a mismatched checkpoint and when merging one.
 */
class ShardHeaderError : public SnailError
{
  public:
    ShardHeaderError(std::string path, const std::string &why)
        : SnailError("shard checkpoint '" + path + "': " + why),
          _path(std::move(path))
    {
    }

    const std::string &path() const { return _path; }

  private:
    std::string _path;
};

/**
 * A malformed or out-of-range pass argument in a pipeline spec (e.g.
 * "optimize=abc" or "stochastic-route=0").  Thrown by the registry's
 * argument parsers; carries the pass name and the offending text so
 * spec-assembling tools can point at the exact token to fix.
 */
class PassArgumentError : public SnailError
{
  public:
    PassArgumentError(std::string pass_name, std::string argument,
                      const std::string &why)
        : SnailError(pass_name + ": " + why + " argument '" + argument +
                     "'"),
          _passName(std::move(pass_name)), _argument(std::move(argument))
    {
    }

    const std::string &passName() const { return _passName; }
    const std::string &argument() const { return _argument; }

  private:
    std::string _passName;
    std::string _argument;
};

namespace detail
{

/** Build the assertion message and throw InternalError. @param expr text. */
[[noreturn]] void assertFailed(const char *expr, const char *file, int line,
                               const std::string &msg);

} // namespace detail

/**
 * Throw SnailError with a streamed message:
 *   SNAIL_THROW("qubit " << q << " out of range");
 */
#define SNAIL_THROW(msg_stream)                                               \
    do {                                                                      \
        std::ostringstream snail_oss_;                                        \
        snail_oss_ << msg_stream;                                             \
        throw ::snail::SnailError(snail_oss_.str());                          \
    } while (0)

/** Check a user-level precondition; throws SnailError when violated. */
#define SNAIL_REQUIRE(cond, msg_stream)                                       \
    do {                                                                      \
        if (!(cond)) {                                                        \
            SNAIL_THROW(msg_stream);                                          \
        }                                                                     \
    } while (0)

/** Check an internal invariant; throws InternalError when violated. */
#define SNAIL_ASSERT(cond, msg_stream)                                        \
    do {                                                                      \
        if (!(cond)) {                                                        \
            std::ostringstream snail_oss_;                                    \
            snail_oss_ << msg_stream;                                         \
            ::snail::detail::assertFailed(#cond, __FILE__, __LINE__,          \
                                          snail_oss_.str());                  \
        }                                                                     \
    } while (0)

} // namespace snail

#endif // SNAILQC_COMMON_ERROR_HPP
