/**
 * @file
 * Example: calibrating n-root-iSWAP pulses in the time domain.
 *
 * The SNAIL realizes the n-th root of iSWAP by shortening one pulse
 * (Eq. 9).  This example plays the calibration workflow: pick the pulse
 * length for each root from the closed form, integrate the full driven
 * Hamiltonian (ramped envelope, counter-rotating term), and report the
 * achieved swap fraction and the deviation from the rotating-wave
 * ideal — i.e. how much the physical pulse differs from the textbook
 * gate the transpiler assumes.
 *
 * Run: ./pulse_calibration
 */

#include <cmath>
#include <iomanip>
#include <iostream>

#include "pulse/exchange_pulse.hpp"
#include "sim/parametric_exchange.hpp"

int
main()
{
    using namespace snail;

    // Design point: coupling g normalized to 1; the qubit splitting the
    // SNAIL pump bridges is 200 g (a conservative ratio — hardware is
    // typically >= 10^3).
    const double g = 1.0;
    const double qubit_delta = 200.0;

    PulseEnvelope ramped;
    ramped.kind = EnvelopeKind::Flattop;
    ramped.rise_time = 0.15;

    std::cout << "n-root-iSWAP calibration (g = 1, Delta = " << qubit_delta
              << " g, flattop ramps of " << ramped.rise_time << ")\n\n"
              << std::left << std::setw(5) << "n" << std::setw(12)
              << "square_len" << std::setw(12) << "ramped_len"
              << std::setw(14) << "target_P" << std::setw(14)
              << "achieved_P" << std::setw(12) << "rwa_error" << "\n";

    for (int n = 1; n <= 6; ++n) {
        // Closed-form square-pulse length for the n-th root (Eq. 9).
        const double square_len = pulseLengthForRoot(g, n);

        // Calibrate the ramped pulse to the same area, then integrate
        // the full Hamiltonian.
        const double ramped_len =
            calibrateFlattopDuration(ramped, square_len);
        ExchangePulse pulse;
        pulse.coupling = g;
        pulse.qubit_delta = qubit_delta;
        pulse.envelope = ramped;

        const double target =
            std::pow(std::sin(M_PI / (2.0 * n)), 2);
        const double achieved =
            simulatedSwapProbability(pulse, ramped_len);
        const double err = rwaError(g, qubit_delta, square_len);

        std::cout << std::fixed << std::setprecision(4) << std::setw(5)
                  << n << std::setw(12) << square_len << std::setw(12)
                  << ramped_len << std::setw(14) << target
                  << std::setw(14) << achieved << std::setw(12) << err
                  << "\n";
    }

    std::cout << "\nRamped pulses calibrated by area hit the target swap "
                 "fractions to a few parts in 10^3; counter-rotating "
                 "corrections at Delta/g = 200 stay below that, so the "
                 "transpiler's ideal-gate assumption is sound.\n";
    return 0;
}
