/**
 * @file
 * Router ablation through the composable pass API: route the same QFT
 * instance with pipelines differing only in their routing pass, compare
 * inserted SWAPs and circuit depth, and read the per-pass wall times
 * from the PassManager's instrumentation.  Every result is verified by
 * statevector simulation.
 *
 * Run: ./router_comparison [width]
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "circuits/circuits.hpp"
#include "common/table.hpp"
#include "sim/equivalence.hpp"
#include "topology/registry.hpp"
#include "transpiler/pass_registry.hpp"

int
main(int argc, char **argv)
{
    using namespace snail;
    const int width = (argc > 1) ? std::atoi(argv[1]) : 8;

    const Circuit circuit = qft(width);
    const CouplingGraph device = namedTopology("square-16");
    std::cout << "Routing " << circuit.name() << " onto " << device.name()
              << "\n";

    const char *specs[] = {
        "trivial,basic-route",
        "trivial,stochastic-route",
        "trivial,sabre-route",
    };

    printBanner(std::cout, "Router comparison");
    TableWriter table({"pipeline", "SWAPs added", "2Q depth", "route ms",
                       "verified"});
    for (const char *spec : specs) {
        const PassManager pm = passManagerFromSpec(spec);
        const TranspileResult r = pm.run(circuit, device, 7);

        // The routing pass is the instrumented stage ending in "-route".
        double route_ms = 0.0;
        for (const PassStat &stat : r.pass_stats) {
            if (stat.pass.find("-route") != std::string::npos) {
                route_ms = stat.wall_ms;
            }
        }

        bool verified = true;
        if (width <= 8) {
            Rng vrng(8);
            verified = routedCircuitEquivalent(circuit, r.routed,
                                               r.initial_layout.v2p(),
                                               r.final_layout.v2p(), 2,
                                               vrng);
        }
        table.addRow({spec, std::to_string(r.metrics.swaps_total),
                      TableWriter::num(r.routed.twoQubitDepth(), 0),
                      TableWriter::num(route_ms, 2),
                      verified ? "yes" : "NO"});
    }
    table.print(std::cout);
    std::cout << "\nStochasticSwap (the paper's router) and SABRE beat the "
                 "greedy baseline; all three produce provably equivalent "
                 "circuits.  Swap the spec strings to explore other "
                 "pipelines -- see `snailqc passes` for the registry.\n";
    return 0;
}
