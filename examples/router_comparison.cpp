/**
 * @file
 * Router ablation: route the same QFT instance with the greedy
 * shortest-path router, the paper's StochasticSwap, and SABRE, and
 * compare inserted SWAPs and circuit depth.  Every result is verified by
 * statevector simulation.
 *
 * Run: ./router_comparison [width]
 */

#include <cstdlib>
#include <iostream>
#include <memory>

#include "circuits/circuits.hpp"
#include "common/table.hpp"
#include "sim/equivalence.hpp"
#include "topology/registry.hpp"
#include "transpiler/routing.hpp"

int
main(int argc, char **argv)
{
    using namespace snail;
    const int width = (argc > 1) ? std::atoi(argv[1]) : 8;

    const Circuit circuit = qft(width);
    const CouplingGraph device = namedTopology("square-16");
    std::cout << "Routing " << circuit.name() << " onto " << device.name()
              << "\n";

    std::unique_ptr<Router> routers[] = {
        std::make_unique<BasicRouter>(),
        std::make_unique<StochasticSwapRouter>(20),
        std::make_unique<SabreRouter>(),
    };

    printBanner(std::cout, "Router comparison");
    TableWriter table({"router", "SWAPs added", "2Q depth", "verified"});
    for (const auto &router : routers) {
        Rng rng(7);
        const Layout init = Layout::identity(width, device.numQubits());
        const RoutingResult r = router->route(circuit, device, init, rng);
        bool verified = true;
        if (width <= 8) {
            Rng vrng(8);
            verified = routedCircuitEquivalent(circuit, r.circuit,
                                               init.v2p(),
                                               r.final_layout.v2p(), 2,
                                               vrng);
        }
        table.addRow({router->name(), std::to_string(r.swaps_added),
                      TableWriter::num(r.circuit.twoQubitDepth(), 0),
                      verified ? "yes" : "NO"});
    }
    table.print(std::cout);
    std::cout << "\nStochasticSwap (the paper's router) and SABRE beat the "
                 "greedy baseline; all three produce provably equivalent "
                 "circuits.\n";
    return 0;
}
