/**
 * @file
 * Co-design shoot-out on a QAOA workload: the same Sherrington-Kirkpatrick
 * QAOA circuit is transpiled onto the three modulator ecosystems the
 * paper compares — CR/CNOT on Heavy-Hex (IBM), FSIM/SYC on Square-Lattice
 * (Google), and SNAIL/sqrt(iSWAP) on Corral and Hypercube — and the
 * resulting cost metrics are ranked.
 *
 * Run: ./qaoa_codesign [width]
 */

#include <cstdlib>
#include <iostream>

#include "circuits/circuits.hpp"
#include "codesign/backend.hpp"
#include "common/table.hpp"
#include "transpiler/pipeline.hpp"

int
main(int argc, char **argv)
{
    using namespace snail;
    const int width = (argc > 1) ? std::atoi(argv[1]) : 12;

    const Circuit circuit = qaoaVanilla(width, 3);
    std::cout << "QAOA (SK model) on " << width << " qubits: "
              << circuit.countTwoQubit() << " ZZ interactions\n";

    const Backend machines[] = {
        makeBackend("heavy-hex-20", BasisKind::CNOT),
        makeBackend("square-16", BasisKind::Sycamore),
        makeBackend("corral11-16", BasisKind::SqISwap),
        makeBackend("hypercube-16", BasisKind::SqISwap),
    };

    printBanner(std::cout, "Co-design comparison");
    TableWriter table({"machine", "SWAPs", "2Q pulses", "pulse duration"});
    std::string best_name;
    double best_duration = 1e300;
    for (const Backend &machine : machines) {
        if (width > machine.topology.numQubits()) {
            continue;
        }
        TranspileOptions options;
        options.basis = machine.basis;
        options.seed = 11;
        const TranspileResult r =
            transpile(circuit, machine.topology, options);
        table.addRow({machine.name,
                      std::to_string(r.metrics.swaps_total),
                      std::to_string(r.metrics.basis_2q_total),
                      TableWriter::num(r.metrics.duration_critical, 1)});
        if (r.metrics.duration_critical < best_duration) {
            best_duration = r.metrics.duration_critical;
            best_name = machine.name;
        }
    }
    table.print(std::cout);
    std::cout << "\nShortest schedule: " << best_name
              << " — rich SNAIL connectivity avoids SWAPs and the "
                 "half-length sqrt(iSWAP) pulse halves the clock.\n";
    return 0;
}
