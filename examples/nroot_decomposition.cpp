/**
 * @file
 * Fractional-iSWAP decomposition demo (paper Sec. 6.3).
 *
 * Draws a Haar-random two-qubit unitary, synthesizes it in the
 * sqrt(iSWAP) basis (analytic count + NuOp angles), then explores the
 * n-th-root trade-off: smaller fractions need more template repetitions
 * but less total pulse time, and Eq. 13 finds the fidelity-optimal k for
 * a decoherence-limited machine.
 *
 * Run: ./nroot_decomposition
 */

#include <cstdio>
#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "decomp/synthesis.hpp"
#include "fidelity/model.hpp"
#include "linalg/random_unitary.hpp"
#include "sim/unitary_builder.hpp"

int
main()
{
    using namespace snail;
    Rng rng(321);
    const Matrix target = haarUnitary(4, rng);

    // --- Exact synthesis in the sqrt(iSWAP) basis ---
    printBanner(std::cout, "sqrt(iSWAP) synthesis of a Haar-random 2Q gate");
    const SynthesisResult synth =
        synthesizeInBasis(target, BasisSpec{BasisKind::SqISwap});
    std::cout << "basis uses: " << synth.basis_uses
              << "   approximation infidelity: " << synth.infidelity
              << "\n";
    synth.circuit.dump(std::cout);
    std::cout << "circuit-vs-target trace fidelity: "
              << traceFidelity(circuitUnitary(synth.circuit), target)
              << "\n";

    // --- The n-root trade-off on this target ---
    printBanner(std::cout, "n-th-root templates on the same target");
    TableWriter table({"root n", "k (converged)", "pulse time k/n",
                       "Ft @ Fb(iswap)=0.99"});
    for (double n : {2.0, 3.0, 4.0}) {
        const Gate basis = gates::nrootIswap(n);
        NuOpOptions opts;
        opts.restarts = 4;
        std::vector<DecompositionPoint> profile;
        int converged_k = -1;
        for (int k = 2; k <= 7; ++k) {
            const NuOpResult r = nuopDecompose(target, basis, k, opts);
            profile.push_back(DecompositionPoint{k, 1.0 - r.infidelity});
            if (converged_k < 0 && r.infidelity < 1e-6) {
                converged_k = k;
            }
        }
        const double fb = scaledBasisFidelity(0.99, n);
        int best_k = 0;
        const double ft = bestTotalFidelity(profile, fb, &best_k);
        char pulse[32];
        std::snprintf(pulse, sizeof(pulse), "%.3f",
                      converged_k / n);
        table.addRow({TableWriter::count(n),
                      converged_k < 0 ? "-" : std::to_string(converged_k),
                      converged_k < 0 ? "-" : pulse,
                      TableWriter::num(ft, 5) + " (k=" +
                          std::to_string(best_k) + ")"});
    }
    table.print(std::cout);
    std::cout << "\nFiner roots spend more gates but less total pulse "
                 "time, so a decoherence-dominated machine gains fidelity "
                 "(the Fig. 15 effect).\n";
    return 0;
}
