/**
 * @file
 * Example: end-to-end fidelity study of two co-designed machines with
 * the Monte-Carlo noise substrate.
 *
 * Transpiles the same Quantum Volume workload onto (a) IBM-style
 * heavy-hex + CNOT and (b) SNAIL hypercube + sqrt(iSWAP), calibrates a
 * stochastic Pauli model per native pulse, and compares the simulated
 * state fidelities — the paper's Sec. 3.1 surrogates turned into one
 * number per machine.
 *
 * Run: ./noise_study
 */

#include <iostream>

#include "circuits/circuits.hpp"
#include "common/rng.hpp"
#include "fidelity/codesign_noise.hpp"
#include "topology/registry.hpp"
#include "transpiler/pipeline.hpp"

int
main()
{
    using namespace snail;

    const Circuit workload = quantumVolume(8, 8, 42);
    const double pulse_error = 0.004; // 99.6% fidelity per native pulse
    const double idle_error = 0.002;  // dephasing per pulse-duration unit
    const int trials = 300;

    struct MachineSpec
    {
        const char *topology;
        BasisKind basis;
    };
    const MachineSpec machines[] = {
        {"heavy-hex-20", BasisKind::CNOT},
        {"hypercube-16", BasisKind::SqISwap},
    };

    std::cout << "Workload: " << workload.name() << " ("
              << workload.countTwoQubit() << " 2Q blocks)\n"
              << "Noise: pulse error " << pulse_error << ", idle error "
              << idle_error << " per duration unit, " << trials
              << " trajectories\n\n";

    for (const MachineSpec &machine : machines) {
        const CouplingGraph device = namedTopology(machine.topology);
        TranspileOptions options;
        options.basis = BasisSpec{machine.basis};
        options.seed = 7;
        const TranspileResult r = transpile(workload, device, options);

        Rng rng(1234);
        const NoiseEstimate est =
            codesignNoiseEstimate(r.routed, options.basis, pulse_error,
                                  idle_error, trials, rng);

        std::cout << device.name() << " + " << options.basis.name()
                  << ":\n"
                  << "  native pulses        " << r.metrics.basis_2q_total
                  << "\n  critical duration    "
                  << r.metrics.duration_critical
                  << "\n  P(no error) bound    " << est.no_error_prob
                  << "\n  simulated fidelity   " << est.mean_fidelity
                  << " +- " << est.standard_error << "\n\n";
    }

    std::cout << "The SNAIL co-design needs fewer, shorter pulses, and "
                 "the trajectory simulation shows that advantage as a "
                 "directly higher end-to-end fidelity.\n";
    return 0;
}
