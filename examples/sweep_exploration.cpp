/**
 * @file
 * Walkthrough of the design-space exploration engine (src/explore/).
 *
 * Builds a small sweep spec in code — the same structure
 * `snailqc sweep` loads from JSON — evaluates the circuits x targets x
 * pipelines cross-product on the shared thread pool, and prints the
 * summary analysis: per-workload tables, the winner scoreboard, and
 * the Pareto frontier.  Then demonstrates the content-addressed
 * transpile cache by re-running the same spec through evaluateJobs
 * with a warm cache (zero recomputation).
 */

#include <iostream>

#include "explore/engine.hpp"
#include "explore/report.hpp"
#include "transpiler/pass_registry.hpp"

int
main()
{
    using namespace snail;

    // The co-design question, in miniature: which 16-20 qubit machine
    // wins QV and QFT, comparing a distance-only and a noise-aware
    // compilation strategy?
    SweepSpec spec;
    spec.name = "exploration-demo";
    spec.circuits.push_back(CircuitSpec{"qv", {8, 12}, ""});
    spec.circuits.push_back(CircuitSpec{"qft", {8, 12}, ""});
    for (const char *name :
         {"heavy-hex-20-cx", "square-16-syc", "corral11-16-sqiswap"}) {
        TargetSpec target;
        target.target = name;
        spec.targets.push_back(std::move(target));
    }
    spec.pipelines.push_back("dense,stochastic-route=6,score-fidelity");
    spec.pipelines.push_back("dense,noise-route,score-fidelity");

    const SweepRun run = runSweep(spec, EngineOptions{});
    printSweepSummary(std::cout, run, "basis_2q_total");

    // The engine caches by content: re-evaluating any point of the
    // same (circuit, target, pipeline, seed) is a lookup, not a
    // transpile.  Here the whole sweep is replayed against the warm
    // cache of a first pass.
    const std::vector<CircuitInstance> circuits = expandCircuits(spec);
    const std::vector<Target> targets = expandTargets(spec);
    std::vector<PassManager> pipelines;
    for (const std::string &pipeline : spec.pipelines) {
        pipelines.push_back(passManagerFromSpec(pipeline));
    }
    std::vector<ExploreJob> jobs;
    for (const SweepPoint &point :
         expandSweepPoints(spec, circuits, targets)) {
        ExploreJob job;
        job.circuit = &circuits[point.circuit_index].circuit;
        job.target = &targets[point.target_index];
        job.pipeline = &pipelines[point.pipeline_index];
        job.pipeline_spec = point.pipeline;
        job.seed = point.seed;
        jobs.push_back(std::move(job));
    }

    TranspileCache cache;
    EvaluationStats cold;
    evaluateJobs(jobs, cache, EngineOptions{}, &cold);
    EvaluationStats warm;
    evaluateJobs(jobs, cache, EngineOptions{}, &warm);
    std::cout << "\ncold pass: computed " << cold.computed
              << "; warm pass: computed " << warm.computed
              << ", from cache " << warm.from_cache << "\n";
    return 0;
}
