/**
 * @file
 * Topology explorer: print the structural metrics of every registered
 * paper topology, then build custom Corrals and Trees to show how the
 * SNAIL-enabled families scale (paper Sec. 4.3).
 *
 * Run: ./topology_explorer
 */

#include <iostream>

#include "common/table.hpp"
#include "topology/builders.hpp"
#include "topology/registry.hpp"

int
main()
{
    using namespace snail;

    printBanner(std::cout, "Registered paper topologies");
    TableWriter table({"name", "qubits", "edges", "Dia", "AvgD", "AvgC"});
    for (const auto &name : topologyNames()) {
        const CouplingGraph g = namedTopology(name);
        table.addRow({name, std::to_string(g.numQubits()),
                      std::to_string(g.edgeCount()),
                      std::to_string(g.diameter()),
                      TableWriter::num(g.averageDistance(), 2),
                      TableWriter::num(g.averageDegree(), 2)});
    }
    table.print(std::cout);

    printBanner(std::cout, "Scaling the Corral: more posts, same local"
                           " structure");
    TableWriter corrals({"posts", "stride_b", "qubits", "Dia", "AvgD"});
    for (int posts : {8, 12, 16, 24}) {
        for (int stride : {1, 2, 3}) {
            if (stride >= posts) {
                continue;
            }
            const CouplingGraph g = corral(posts, 1, stride);
            corrals.addRow({std::to_string(posts), std::to_string(stride),
                            std::to_string(g.numQubits()),
                            std::to_string(g.diameter()),
                            TableWriter::num(g.averageDistance(), 2)});
        }
    }
    corrals.print(std::cout);
    std::cout << "Longer second fences (stride_b) act like hypercube "
                 "chords: the diameter grows much slower than the ring.\n";

    printBanner(std::cout, "Scaling the 4-ary Tree: levels vs diameter");
    TableWriter trees({"levels", "qubits", "Dia", "AvgD", "AvgC"});
    for (int levels : {1, 2, 3, 4}) {
        const CouplingGraph g = modularTree(levels);
        trees.addRow({std::to_string(levels),
                      std::to_string(g.numQubits()),
                      std::to_string(g.diameter()),
                      TableWriter::num(g.averageDistance(), 2),
                      TableWriter::num(g.averageDegree(), 2)});
    }
    trees.print(std::cout);
    std::cout << "The tree reaches 340 qubits at diameter 7 — logarithmic "
                 "growth, the property the paper exploits.\n";
    return 0;
}
