/**
 * @file
 * Example: import an externally written OpenQASM 2.0 circuit, clean it
 * up with the peephole optimizer, find a zero-SWAP placement when one
 * exists, and transpile it onto a SNAIL machine.
 *
 * This is the interop path for users whose circuits come from Qiskit
 * (the paper's original toolchain): export QASM there, run the SNAIL
 * co-design flow here.
 *
 * Run: ./qasm_import_flow
 */

#include <iostream>

#include "ir/qasm.hpp"
#include "ir/qasm_parser.hpp"
#include "topology/registry.hpp"
#include "transpiler/optimize.hpp"
#include "transpiler/pipeline.hpp"
#include "transpiler/vf2_layout.hpp"

int
main()
{
    using namespace snail;

    // 1. A QASM program as it might arrive from Qiskit: a hardware-
    //    efficient ansatz with a custom gate definition, some
    //    redundancy, and measurements.
    const char *source = R"(
        OPENQASM 2.0;
        include "qelib1.inc";
        qreg q[6];
        creg c[6];
        gate entangle a, b { cx a, b; rz(pi/8) b; cx a, b; }
        h q;
        entangle q[0], q[1];
        entangle q[1], q[2];
        entangle q[2], q[3];
        entangle q[3], q[4];
        entangle q[4], q[5];
        cx q[0], q[5];
        cx q[0], q[5];        // cancels
        rz(0) q[2];           // identity
        barrier q;
        measure q -> c;
    )";

    QasmParseResult parsed = parseQasm(source, "ansatz.qasm");
    std::cout << "Imported " << parsed.circuit.numQubits() << " qubits, "
              << parsed.circuit.size() << " gates, "
              << parsed.measurements.size() << " measurements\n";

    // 2. Peephole cleanup: the doubled CX pair and the rz(0) vanish.
    Circuit circuit = parsed.circuit;
    const OptimizeStats stats = optimizeCircuit(circuit, 2);
    std::cout << "Optimizer removed " << stats.total()
              << " gates (identities " << stats.removed_identities
              << ", 2Q cancellations " << stats.cancelled_2q
              << ", 1Q fused " << stats.fused_1q << ") -> "
              << circuit.size() << " gates\n";

    // 3. The interaction graph is a 6-chain: VF2 finds a zero-SWAP
    //    embedding in the 16-qubit Corral.
    const CouplingGraph device = namedTopology("corral11-16");
    if (auto layout = vf2Layout(circuit, device)) {
        std::cout << "VF2 found a zero-SWAP placement on "
                  << device.name() << ": virtual -> physical";
        for (int v = 0; v < circuit.numQubits(); ++v) {
            std::cout << ' ' << v << "->" << layout->physical(v);
        }
        std::cout << "\n";
    }

    // 4. Full pipeline with the VF2-or-dense layout and the SNAIL's
    //    native basis.
    TranspileOptions options;
    options.layout = LayoutKind::Vf2OrDense;
    options.basis = BasisSpec{BasisKind::SqISwap};
    const TranspileResult result = transpile(circuit, device, options);
    std::cout << "Transpiled: " << result.metrics.swaps_total
              << " SWAPs, " << result.metrics.basis_2q_total
              << " native sqrt(iSWAP) pulses, critical-path duration "
              << result.metrics.duration_critical << "\n";

    // 5. Round-trip: the routed circuit exports back to QASM.
    std::cout << "\nRouted circuit as OpenQASM (first lines):\n";
    const std::string qasm = toQasm(result.routed);
    std::cout << qasm.substr(0, 300) << "...\n";
    return 0;
}
