/**
 * @file
 * Quickstart: build a circuit, co-design a machine (topology + native
 * basis gate), transpile, inspect the metrics, and verify by simulation
 * that the routed circuit still computes the same thing.
 *
 * Run: ./quickstart
 */

#include <iostream>

#include "circuits/circuits.hpp"
#include "codesign/backend.hpp"
#include "sim/equivalence.hpp"
#include "transpiler/pipeline.hpp"

int
main()
{
    using namespace snail;

    // 1. A workload: 8-qubit GHZ state preparation.
    const Circuit circuit = ghz(8);
    std::cout << "Workload: " << circuit.name() << " with "
              << circuit.size() << " gates, "
              << circuit.countTwoQubit() << " of them 2Q\n";

    // 2. A co-designed machine: the SNAIL Corral with its native
    //    sqrt(iSWAP) basis.
    const Backend machine = makeBackend("corral11-16", BasisKind::SqISwap);
    std::cout << "Machine:  " << machine.name << " ("
              << machine.topology.numQubits() << " qubits, diameter "
              << machine.topology.diameter() << ")\n";

    // 3. Transpile: dense placement, stochastic routing, basis scoring.
    TranspileOptions options;
    options.basis = machine.basis;
    options.seed = 2024;
    const TranspileResult result =
        transpile(circuit, machine.topology, options);

    std::cout << "\nTranspilation metrics (paper Fig. 10 flow):\n"
              << "  SWAPs inserted:          "
              << result.metrics.swaps_total << "\n"
              << "  critical-path SWAPs:     "
              << result.metrics.swaps_critical << "\n"
              << "  native 2Q pulses:        "
              << result.metrics.basis_2q_total << "\n"
              << "  critical pulse duration: "
              << result.metrics.duration_critical
              << " (iSWAP pulse units)\n";

    // 4. Verify the routed circuit still prepares the GHZ state.
    Rng rng(99);
    const bool ok = routedCircuitEquivalent(
        circuit, result.routed, result.initial_layout.v2p(),
        result.final_layout.v2p(), 4, rng);
    std::cout << "\nSimulated equivalence check: "
              << (ok ? "PASS" : "FAIL") << "\n";
    return ok ? 0 : 1;
}
