/**
 * @file
 * Walkthrough of the Target device model (target/target.hpp).
 *
 * Builds the chiplet-style heterogeneous device from examples/devices/
 * in code, round-trips it through JSON, and compares distance-only
 * routing (sabre-route) against fidelity-aware routing (noise-route)
 * plus per-edge basis scoring (basis=auto) and predicted fidelity
 * (score-fidelity) — the paper's "heterogeneous basis gates" future
 * work as a live transpiler scenario.
 */

#include <cstdio>

#include "circuits/circuits.hpp"
#include "target/target.hpp"
#include "transpiler/pass_registry.hpp"

using namespace snail;

namespace
{

/** Two 8-qubit sqrt(iSWAP) chiplets bridged by lossy CX links. */
Target
chipletDevice()
{
    CouplingGraph graph(16, "chiplet-hetero-16");
    for (int base : {0, 8}) {
        for (int i = 0; i < 8; ++i) {
            graph.addEdge(base + i, base + (i + 1) % 8);
        }
        for (int i = 0; i < 4; ++i) {
            graph.addEdge(base + i, base + i + 4);
        }
    }
    graph.addEdge(3, 11);
    graph.addEdge(7, 15);

    EdgeProperties intra;
    intra.basis = BasisSpec{BasisKind::SqISwap};
    intra.fidelity_2q = 0.995;
    QubitProperties qubit;
    qubit.fidelity_1q = 0.9999;
    qubit.t2 = 400.0;
    Target target(std::move(graph), intra, qubit);

    EdgeProperties bridge;
    bridge.basis = BasisSpec{BasisKind::CNOT};
    bridge.fidelity_2q = 0.97;
    bridge.duration = 1.0;
    target.setEdgeProperties(3, 11, bridge);
    target.setEdgeProperties(7, 15, bridge);

    QubitProperties interface_qubit;
    interface_qubit.fidelity_1q = 0.999;
    interface_qubit.t2 = 150.0;
    target.setQubitProperties(3, interface_qubit);
    target.setQubitProperties(11, interface_qubit);
    return target;
}

} // namespace

int
main()
{
    const Target device = chipletDevice();
    std::printf("device %s: %d qubits, %zu couplings, %zu overridden\n",
                device.name().c_str(), device.numQubits(),
                device.graph().edgeCount(), device.overriddenEdges());

    // JSON round-trip: the serialized description rebuilds the same
    // calibration (this is what `--device file.json` loads).
    const JsonValue json = targetToJson(device);
    const Target reloaded = targetFromJson(json);
    std::printf("JSON round-trip: %zu bytes, %s\n",
                json.dump().size(),
                targetToJson(reloaded) == json ? "identical" : "DIVERGED");

    // A workload that must cross the lossy chiplet bridge: per-edge
    // basis scoring (basis=auto) charges the CX bridge links their own
    // pulse counts, and score-fidelity folds in the calibration.
    const Circuit circuit = qft(12);
    const unsigned long long seed = 7;

    std::printf("\n%-52s %6s %9s %9s\n", "pipeline", "SWAPs", "pulses",
                "fidelity");
    for (const char *spec :
         {"dense,sabre-route,basis=auto,score-fidelity",
          "dense,noise-route,basis=auto,score-fidelity"}) {
        const TranspileResult r =
            passManagerFromSpec(spec).run(circuit, device, seed);
        std::printf("%-52s %6zu %9zu %9.4f\n", spec,
                    r.metrics.swaps_total, r.metrics.basis_2q_total,
                    r.properties.get("fidelity_predicted"));
    }

    // The crispest demonstration: a diamond device with one good and
    // one bad path between a distant pair.  Distance-only routing
    // breaks the tie arbitrarily; noise-route always swaps along the
    // high-fidelity path (examples/devices/two-path-rigged-4.json).
    const Target rigged =
        targetFromJson(JsonValue::parse(R"({
            "name": "two-path-rigged-4", "qubits": 4,
            "default_edge": {"basis": "sqiswap", "fidelity_2q": 0.999},
            "edges": [[0, 1], [1, 3],
                      {"a": 0, "b": 2, "fidelity_2q": 0.6},
                      {"a": 2, "b": 3, "fidelity_2q": 0.6}]
        })"));
    std::printf("\nGHZ-4 on %s (seed sweep, predicted fidelity):\n",
                rigged.name().c_str());
    for (const char *spec :
         {"trivial,sabre-route,basis=auto,score-fidelity",
          "trivial,noise-route,basis=auto,score-fidelity"}) {
        double worst = 1.0;
        for (unsigned long long s = 1; s <= 16; ++s) {
            const TranspileResult r =
                passManagerFromSpec(spec).run(ghz(4), rigged, s);
            const double f = r.properties.get("fidelity_predicted");
            if (f < worst) {
                worst = f;
            }
        }
        std::printf("  %-50s worst over 16 seeds: %.4f\n", spec, worst);
    }

    std::printf("\nnoise-route pays for detours only when a low-fidelity\n"
                "edge would cost more than the extra SWAP distance; on a\n"
                "uniform device it reduces to plain SABRE routing.\n");
    return 0;
}
