/**
 * @file
 * Walkthrough of the guided co-design search (src/search/).
 *
 * Builds a small search spec in code — the same structure
 * `snailqc search` loads from JSON — and lets the annealer walk the
 * parametric topology space: mutate a candidate, build it, score its
 * hardware cost against the constraint box, transpile the workloads
 * through the explore engine, and fold the result into the
 * quality-vs-cost Pareto frontier.  Then replays the identical search
 * to show the determinism contract: same spec, same seed — the trace
 * and frontier come back byte for byte, at any thread count.
 */

#include <iostream>
#include <sstream>

#include "search/driver.hpp"
#include "search/frontier.hpp"
#include "search/search_spec.hpp"

int
main()
{
    using namespace snail;

    // The paper's co-design question, in miniature: among corrals and
    // hypercubes spending at most 12 couplers, which machine runs a
    // GHZ+QFT workload in the fewest 2Q pulses?
    SearchSpec spec;
    spec.name = "codesign-demo";
    spec.seed = 11;
    spec.workloads.push_back(CircuitSpec{"ghz", {6}, ""});
    spec.workloads.push_back(CircuitSpec{"qft", {5}, ""});
    spec.pipeline = "dense,sabre-route,elide,basis=sqiswap";
    spec.space.families = {"corral", "hypercube"};
    spec.space.bases = {"sqiswap", "cx"};
    spec.space.min_qubits = 6;
    spec.space.max_qubits = 24;
    spec.constraints.max_couplers = 12;
    spec.anneal.iterations = 6;
    spec.anneal.proposals = 2;

    const SearchRun run = runSearch(spec, SearchOptions{});
    printSearchSummary(std::cout, run);

    // Determinism contract: the walk draws every random number from
    // counter-based streams keyed by (iteration, proposal), so a
    // re-run — or the same run at 16 threads — retraces it exactly.
    SearchOptions threaded;
    threaded.threads = 16;
    const SearchRun replay = runSearch(spec, threaded);

    std::ostringstream first, second;
    writeSearchTrace(first, run);
    writeSearchTrace(second, replay);
    std::cout << "\nreplay at 16 threads: trace "
              << (first.str() == second.str() ? "byte-identical"
                                              : "DIVERGED")
              << "\n";
    return first.str() == second.str() ? 0 : 1;
}
