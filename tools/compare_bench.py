#!/usr/bin/env python3
"""Compare deterministic counters between two perf_transpiler JSON runs.

Usage:
    python3 tools/compare_bench.py [--allow-missing] BASELINE.json FRESH.json

Timings vary by machine; the routed-output checksums must not.  Three
checks are enforced:

 1. Baseline drift: every deterministic counter (swaps, swaps_total,
    jobs, candidates, score_checksum) present in both files must match
    exactly, per benchmark name.  A drift means a code change altered
    routed output — if intentional, regenerate the committed baseline
    (bench/BENCH_perf_transpiler.json) in the same PR and say why.
 2. Coverage: every baseline benchmark (and every deterministic
    counter it carries) must appear in the fresh run, so silently
    deleting or renaming a benchmark cannot weaken the gate.  Pass
    --allow-missing when deliberately comparing a filtered fresh run.
 3. Thread determinism: within the fresh run, every BM_TranspileBatch
    row (1/4/16 worker threads) must report the same swaps_total.

Exit status 0 on success, 1 on any mismatch (messages on stderr).
"""

import json
import sys

DETERMINISTIC_COUNTERS = (
    "swaps",
    "swaps_total",
    "jobs",
    "candidates",
    "score_checksum",
)


def load_counters(path):
    """Map benchmark name -> {counter: value} for deterministic counters."""
    with open(path) as handle:
        doc = json.load(handle)
    rows = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        counters = {
            key: bench[key] for key in DETERMINISTIC_COUNTERS if key in bench
        }
        if counters:
            rows[bench["name"]] = counters
    return rows


def main(argv):
    args = list(argv[1:])
    allow_missing = "--allow-missing" in args
    if allow_missing:
        args.remove("--allow-missing")
    if len(args) != 2:
        sys.stderr.write(__doc__)
        return 1
    baseline_path, fresh_path = args
    baseline = load_counters(baseline_path)
    fresh = load_counters(fresh_path)

    failures = []

    shared = sorted(set(baseline) & set(fresh))
    if not shared:
        failures.append(
            "no benchmark names in common between %s and %s"
            % (baseline_path, fresh_path)
        )
    if not allow_missing:
        for name in sorted(set(baseline) - set(fresh)):
            failures.append(
                "baseline benchmark '%s' missing from the fresh run "
                "(deleted or renamed? regenerate the baseline, or pass "
                "--allow-missing for a deliberately filtered run)" % name
            )
    for name in shared:
        for counter in DETERMINISTIC_COUNTERS:
            if counter not in baseline[name]:
                continue
            if counter not in fresh[name]:
                if not allow_missing:
                    failures.append(
                        "%s: baseline counter '%s' missing from the "
                        "fresh run" % (name, counter)
                    )
                continue
            want = baseline[name][counter]
            got = fresh[name][counter]
            if want != got:
                failures.append(
                    "%s: counter '%s' drifted from baseline: %r -> %r"
                    % (name, counter, want, got)
                )

    batch_totals = {
        name: counters["swaps_total"]
        for name, counters in fresh.items()
        if name.startswith("BM_TranspileBatch") and "swaps_total" in counters
    }
    if len(set(batch_totals.values())) > 1:
        failures.append(
            "BM_TranspileBatch swaps_total differs across thread counts: %r"
            % batch_totals
        )

    for message in failures:
        sys.stderr.write("compare_bench: %s\n" % message)
    if not failures:
        checked = sum(len(v) for k, v in fresh.items() if k in baseline)
        print(
            "compare_bench: OK (%d benchmarks, %d deterministic counters)"
            % (len(shared), checked)
        )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
