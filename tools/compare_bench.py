#!/usr/bin/env python3
"""Compare deterministic counters between two perf_transpiler JSON runs.

Usage:
    python3 tools/compare_bench.py [--allow-missing]
        [--append-history FILE] [--label LABEL] BASELINE.json FRESH.json

Timings vary by machine; the routed-output checksums must not.  Three
checks are enforced:

 1. Baseline drift: every deterministic counter (swaps, swaps_total,
    jobs, candidates, score_checksum) present in both files must match
    exactly, per benchmark name.  A drift means a code change altered
    routed output — if intentional, regenerate the committed baseline
    (bench/BENCH_perf_transpiler.json) in the same PR and say why.
 2. Coverage: every baseline benchmark (and every deterministic
    counter it carries) must appear in the fresh run, so silently
    deleting or renaming a benchmark cannot weaken the gate.  Pass
    --allow-missing when deliberately comparing a filtered fresh run.
 3. Thread determinism: within the fresh run, every BM_TranspileBatch
    row (1/4/16 worker threads) must report the same swaps_total.

With --append-history FILE, a successful comparison also appends one
JSON line summarizing the fresh run — label (default: $GITHUB_SHA or
"local"), UTC timestamp, and each benchmark's timings plus
deterministic counters — to FILE (bench/BENCH_history.jsonl in CI).
The file is a perf trajectory: one line per push, machine-readable,
uploaded as a CI artifact, so regressions are visible over commits and
not just against the single committed baseline.

Exit status 0 on success, 1 on any mismatch (messages on stderr).
"""

import datetime
import json
import os
import sys

DETERMINISTIC_COUNTERS = (
    "swaps",
    "swaps_total",
    "jobs",
    "candidates",
    "score_checksum",
    "spans",
)


def load_counters(path):
    """Map benchmark name -> {counter: value} for deterministic counters."""
    with open(path) as handle:
        doc = json.load(handle)
    rows = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        counters = {
            key: bench[key] for key in DETERMINISTIC_COUNTERS if key in bench
        }
        if counters:
            rows[bench["name"]] = counters
    return rows


def history_line(fresh_path, label):
    """One JSONL trajectory record for a fresh run."""
    with open(fresh_path) as handle:
        doc = json.load(handle)
    benchmarks = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        row = {
            key: bench[key]
            for key in ("real_time", "cpu_time", "time_unit")
            if key in bench
        }
        row.update(
            {k: bench[k] for k in DETERMINISTIC_COUNTERS if k in bench}
        )
        benchmarks[bench["name"]] = row
    return {
        "label": label,
        "time_utc": datetime.datetime.now(datetime.timezone.utc).strftime(
            "%Y-%m-%dT%H:%M:%SZ"
        ),
        "benchmarks": benchmarks,
    }


def take_option(args, name):
    """Pop `--name VALUE` from args; returns VALUE or None."""
    if name not in args:
        return None
    at = args.index(name)
    if at + 1 >= len(args):
        sys.stderr.write("compare_bench: %s needs a value\n" % name)
        sys.exit(1)
    value = args[at + 1]
    del args[at : at + 2]
    return value


def main(argv):
    args = list(argv[1:])
    allow_missing = "--allow-missing" in args
    if allow_missing:
        args.remove("--allow-missing")
    history_path = take_option(args, "--append-history")
    label = take_option(args, "--label")
    if len(args) != 2:
        sys.stderr.write(__doc__)
        return 1
    baseline_path, fresh_path = args
    baseline = load_counters(baseline_path)
    fresh = load_counters(fresh_path)

    failures = []

    shared = sorted(set(baseline) & set(fresh))
    if not shared:
        failures.append(
            "no benchmark names in common between %s and %s"
            % (baseline_path, fresh_path)
        )
    if not allow_missing:
        for name in sorted(set(baseline) - set(fresh)):
            failures.append(
                "baseline benchmark '%s' missing from the fresh run "
                "(deleted or renamed? regenerate the baseline, or pass "
                "--allow-missing for a deliberately filtered run)" % name
            )
    for name in shared:
        for counter in DETERMINISTIC_COUNTERS:
            if counter not in baseline[name]:
                continue
            if counter not in fresh[name]:
                if not allow_missing:
                    failures.append(
                        "%s: baseline counter '%s' missing from the "
                        "fresh run" % (name, counter)
                    )
                continue
            want = baseline[name][counter]
            got = fresh[name][counter]
            if want != got:
                failures.append(
                    "%s: counter '%s' drifted from baseline: %r -> %r"
                    % (name, counter, want, got)
                )

    batch_totals = {
        name: counters["swaps_total"]
        for name, counters in fresh.items()
        if name.startswith("BM_TranspileBatch") and "swaps_total" in counters
    }
    if len(set(batch_totals.values())) > 1:
        failures.append(
            "BM_TranspileBatch swaps_total differs across thread counts: %r"
            % batch_totals
        )

    for message in failures:
        sys.stderr.write("compare_bench: %s\n" % message)
    if not failures:
        checked = sum(len(v) for k, v in fresh.items() if k in baseline)
        print(
            "compare_bench: OK (%d benchmarks, %d deterministic counters)"
            % (len(shared), checked)
        )
        if history_path:
            record = history_line(
                fresh_path,
                label or os.environ.get("GITHUB_SHA", "local"),
            )
            with open(history_path, "a") as handle:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
            print(
                "compare_bench: appended %d benchmarks to %s"
                % (len(record["benchmarks"]), history_path)
            )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
