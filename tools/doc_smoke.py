#!/usr/bin/env python3
"""Smoke-test the documentation: every docs/*.md sh code block runs.

Usage:
    python3 tools/doc_smoke.py [--docs DIR] [--build DIR]

Docs that only *look* runnable rot silently; this tool keeps them
honest.  For every Markdown file under docs/ it:

 1. executes every ```sh fenced code block with `sh -e` from the repo
    root, in file order (blocks may pass state through /tmp), with the
    build directory prepended to PATH so both `snailqc ...` and
    `./build/snailqc ...` spellings work;
 2. checks that every relative Markdown link target
    (`[text](../examples/...)`, `[text](performance.md)`) exists.

Fenced blocks in other languages (cpp, jsonc, text) are illustrative
and skipped.  Exit status 0 when everything runs and resolves, 1
otherwise (failures on stderr).  CI runs this in the docs-smoke job
after a Release build.
"""

import os
import re
import subprocess
import sys

FENCE = re.compile(r"^```(\w*)\s*$")
LINK = re.compile(r"\[[^\]]*\]\(([^)#\s]+)(?:#[^)]*)?\)")


def extract_blocks(text):
    """Yield (language, first_line_number, code) for fenced blocks."""
    language = None
    start = 0
    lines = []
    for number, line in enumerate(text.splitlines(), 1):
        match = FENCE.match(line)
        if match and language is None:
            language = match.group(1) or "text"
            start = number + 1
            lines = []
        elif line.strip() == "```" and language is not None:
            yield language, start, "\n".join(lines)
            language = None
        elif language is not None:
            lines.append(line)


def run_sh_block(code, path, line, env):
    result = subprocess.run(
        ["sh", "-e", "-c", code],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    if result.returncode != 0:
        sys.stderr.write(
            "doc_smoke: %s:%d sh block failed (exit %d):\n%s\n--- output "
            "---\n%s\n"
            % (path, line, result.returncode, code, result.stdout[-4000:])
        )
        return False
    return True


def check_links(text, path, repo_root):
    ok = True
    doc_dir = os.path.dirname(path)
    for match in LINK.finditer(text):
        target = match.group(1)
        if "://" in target or target.startswith("mailto:"):
            continue
        resolved = os.path.normpath(os.path.join(doc_dir, target))
        if not os.path.exists(os.path.join(repo_root, resolved)):
            sys.stderr.write(
                "doc_smoke: %s links to missing path '%s'\n" % (path, target)
            )
            ok = False
    return ok


def main(argv):
    args = list(argv[1:])

    def option(name, default):
        if name in args:
            at = args.index(name)
            if at + 1 >= len(args):
                sys.stderr.write("doc_smoke: %s needs a value\n" % name)
                sys.exit(1)
            value = args[at + 1]
            del args[at : at + 2]
            return value
        return default

    docs_dir = option("--docs", "docs")
    build_dir = option("--build", "build")
    if args:
        sys.stderr.write(
            "doc_smoke: unknown argument(s): %s\n%s" % (" ".join(args),
                                                        __doc__)
        )
        return 1

    repo_root = os.getcwd()
    env = dict(os.environ)
    env["PATH"] = (
        os.path.abspath(build_dir) + os.pathsep + env.get("PATH", "")
    )

    pages = sorted(
        os.path.join(docs_dir, name)
        for name in os.listdir(docs_dir)
        if name.endswith(".md")
    )
    if not pages:
        sys.stderr.write("doc_smoke: no Markdown files in %s\n" % docs_dir)
        return 1

    failures = 0
    blocks_run = 0
    for path in pages:
        with open(path) as handle:
            text = handle.read()
        if not check_links(text, path, repo_root):
            failures += 1
        for language, line, code in extract_blocks(text):
            if language != "sh":
                continue
            blocks_run += 1
            if not run_sh_block(code, path, line, env):
                failures += 1

    if failures:
        sys.stderr.write("doc_smoke: %d failure(s)\n" % failures)
        return 1
    print(
        "doc_smoke: OK (%d pages, %d sh blocks executed)"
        % (len(pages), blocks_run)
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
