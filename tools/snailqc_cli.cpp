/**
 * @file
 * snailqc — command-line front end to the library.
 *
 * Subcommands:
 *   topologies                       list registered topologies + metrics
 *   targets [--export <name> <f>]    list built-in Targets (Table-1-style
 *                                    properties + calibration); --export
 *                                    writes one as a JSON device file;
 *                                    --stats <name|device.json> prints
 *                                    the distance-oracle audit (kind,
 *                                    bytes vs the flat table)
 *   passes                           list registered transpiler passes
 *                                    (also: --list-passes anywhere)
 *   coords <gate> [params...]        Weyl coordinates and basis counts
 *   circuit <bench> <width>          benchmark circuit statistics
 *   parse <file.qasm>                import OpenQASM 2.0, print statistics
 *   transpile <bench> <width> <topology> <basis> [router] [seed]
 *                                    run the Fig. 10 pipeline, print
 *                                    metrics; <bench> may also be a
 *                                    .qasm file (width then ignored)
 *   pipeline <bench> <width> <topology> <spec> [seed]
 *                                    run an arbitrary pass pipeline
 *                                    composed from a spec string
 *   sweep <spec.json> [options]      design-space exploration: evaluate
 *                                    a circuits x targets x pipelines
 *                                    cross-product in parallel, with a
 *                                    transpile cache, checkpoint/resume,
 *                                    Pareto + winner analysis, and
 *                                    CSV/JSON reporters; --cache-dir
 *                                    adds a persistent on-disk store;
 *                                    --shard i/N runs one slice of the
 *                                    point set for distributed sweeps
 *   sweep-merge <spec.json> --shards <dir|file>... [options]
 *                                    fuse the shard checkpoints of a
 *                                    distributed sweep, validate
 *                                    exactly-once coverage, and emit
 *                                    reports byte-identical to a
 *                                    single-process run
 *                                    (docs/distributed.md)
 *   search <spec.json> [options]     guided co-design search: annealing
 *                                    (or steepest descent) over the
 *                                    parametric topology space under a
 *                                    hardware-cost constraint set, with
 *                                    a Pareto frontier, a JSONL trace,
 *                                    checkpoint/resume, and an
 *                                    evaluation budget (docs/search.md)
 *   serve [options]                  daemon on a UNIX socket accepting
 *                                    ndjson transpile/batch/sweep jobs
 *                                    (src/serve/protocol.hpp); --status
 *                                    queries a running daemon instead
 *   client <op> [args]               talk to the daemon: ping, version,
 *                                    stats, metrics, shutdown, transpile,
 *                                    batch, request (raw JSON passthrough)
 *   version                          build provenance (also --version)
 *
 * transpile and pipeline accept `--device <file.json|target-name>` in
 * place of the <topology> (and <basis>) positionals: the device —
 * loaded from a JSON description (schema: examples/devices/README.md)
 * or looked up among the built-in targets — supplies topology, native
 * bases, and calibration, so heterogeneous machines can be transpiled
 * against without recompiling.
 *
 * Examples:
 *   snailqc topologies
 *   snailqc targets
 *   snailqc targets --export tree-20-sqiswap my_device.json
 *   snailqc --list-passes
 *   snailqc coords fsim 1.5708 0.5236
 *   snailqc circuit qv 16
 *   snailqc parse my_circuit.qasm
 *   snailqc transpile qaoa 14 corral11-16 sqiswap stochastic 7
 *   snailqc transpile my_circuit.qasm 0 tree-20 sqiswap
 *   snailqc transpile qft 8 --device examples/devices/chiplet-hetero-16.json
 *   snailqc pipeline qft 8 corral11-16 "vf2,sabre-route,elide,basis=sqiswap"
 *   snailqc pipeline qft 8 --device chiplet.json \
 *           "vf2,noise-route,basis=auto,score-fidelity" 7
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <iterator>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "circuits/registry.hpp"
#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/scheduler.hpp"
#include "common/table.hpp"
#include "common/version.hpp"
#include "explore/cache_store.hpp"
#include "explore/engine.hpp"
#include "explore/report.hpp"
#include "explore/shard.hpp"
#include "obs/trace.hpp"
#include "search/driver.hpp"
#include "ir/qasm.hpp"
#include "ir/qasm_parser.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "target/target.hpp"
#include "topology/registry.hpp"
#include "transpiler/pass_registry.hpp"
#include "transpiler/pipeline.hpp"
#include "weyl/basis_counts.hpp"

namespace
{

using namespace snail;

/** Top-level usage: every subcommand, one line each. */
void
printUsage(std::ostream &os)
{
    os <<
        "usage: snailqc <command> [args]\n"
        "\n"
        "commands:\n"
        "  topologies                  list registered topologies\n"
        "  targets [--export <target-name> <file.json>]\n"
        "          [--stats <name|device.json>]\n"
        "                              list built-in device targets;\n"
        "                              --stats audits one device's\n"
        "                              distance oracle\n"
        "  passes                      list transpiler passes\n"
        "                              (also: --list-passes)\n"
        "  coords <gate> [params...]   (cx, cz, swap, iswap, sqiswap,\n"
        "                               syc, b, cp t, rzz t, fsim t p,\n"
        "                               zx t, nroot n, can a b c)\n"
        "  circuit <bench> <width>     (qv, qft, qaoa, tim, adder, ghz,\n"
        "                               bv, vqe, wstate)\n"
        "  parse <file.qasm>           import OpenQASM 2.0\n"
        "  export <bench> <width>      emit OpenQASM 2.0 on stdout\n"
        "  transpile <bench|file.qasm> <width> <topology> <basis>\n"
        "            [basic|stochastic|sabre|lookahead] [seed]\n"
        "  pipeline <bench|file.qasm> <width> <topology> <pass-spec>\n"
        "            [seed]            (see `snailqc passes`)\n"
        "  sweep <spec.json> [--threads N] [--resume]\n"
        "        [--checkpoint <file.jsonl>] [--csv <file>]\n"
        "        [--json <file>] [--metric <name>] [--verbose]\n"
        "        [--cache-dir <dir>] [--trace-out <file.json>]\n"
        "        [--shard i/N]         design-space exploration over a\n"
        "                              circuits x targets x pipelines\n"
        "                              cross-product; --shard evaluates\n"
        "                              one content-addressed slice\n"
        "                              (needs --checkpoint)\n"
        "  sweep-merge <spec.json> --shards <dir|file.jsonl>...\n"
        "        [--csv <file>] [--json <file>] [--metric <name>]\n"
        "                              fuse shard checkpoints into the\n"
        "                              single-process reports, validating\n"
        "                              exactly-once point coverage\n"
        "                              (docs/distributed.md)\n"
        "  search <spec.json> [--threads N] [--budget N] [--resume]\n"
        "         [--checkpoint <file.jsonl>] [--trace <file.jsonl>]\n"
        "         [--csv <file>] [--json <file>] [--verbose]\n"
        "         [--cache-dir <dir>] [--trace-out <file.json>]\n"
        "                              guided co-design search: annealing\n"
        "                              over the parametric topology space\n"
        "                              under hardware-cost constraints\n"
        "  serve [--socket <path>] [--cache-dir <dir>]\n"
        "        [--cache-max-bytes N] [--queue-limit N] [--pool N]\n"
        "        [--metrics-interval <s>] [--metrics-out <file.jsonl>]\n"
        "        [--trace-out <file.json>]\n"
        "        [--status [--metrics]] job daemon on a UNIX socket\n"
        "  client [--socket <path>] <ping|version|stats|metrics|shutdown>\n"
        "  client [--socket <path>] transpile <bench|file.qasm> <width>\n"
        "         <target-name> [pipeline-spec] [seed-hex]\n"
        "  client [--socket <path>] batch <jobs.json|->\n"
        "  client [--socket <path>] request <json|->\n"
        "  version                     build provenance (also --version)\n"
        "  help                        this message (also --help, -h)\n"
        "\n"
        "transpile/pipeline also accept `--device <file.json|target-name>`\n"
        "instead of the <topology>/<basis> positionals, e.g.\n"
        "  snailqc pipeline qft 8 --device dev.json \\\n"
        "          \"vf2,noise-route,basis=auto,score-fidelity\"\n"
        "\n"
        "transpile/pipeline/sweep/search/serve accept `--trace-out\n"
        "<file.json>`: write a Chrome/Perfetto trace of the run\n"
        "(docs/observability.md).  Reports stay byte-identical.\n";
}

int
usage()
{
    printUsage(std::cerr);
    return 2;
}

int
cmdPasses()
{
    TableWriter table({"pass", "argument", "description"});
    for (const auto &row : registeredPasses()) {
        table.addRow({row.name, row.arg_help.empty() ? "-" : row.arg_help,
                      row.summary});
    }
    table.print(std::cout);
    std::cout << "\nPipeline specs are comma-separated entries, e.g.\n"
                 "  \"vf2,sabre-route,elide,basis=sqiswap\"\n"
                 "Unscored pipelines get a final `score` automatically.\n";
    return 0;
}

Gate
parseGate(const std::vector<std::string> &args)
{
    SNAIL_REQUIRE(!args.empty(), "missing gate name");
    const std::string &name = args[0];
    auto param = [&](std::size_t i) {
        SNAIL_REQUIRE(args.size() > i, "gate " << name
                                               << " needs more parameters");
        return std::atof(args[i].c_str());
    };
    if (name == "cx") return gates::cx();
    if (name == "cz") return gates::cz();
    if (name == "swap") return gates::swapGate();
    if (name == "iswap") return gates::iswap();
    if (name == "sqiswap") return gates::sqiswap();
    if (name == "syc") return gates::sycamore();
    if (name == "b") return gates::bgate();
    if (name == "cp") return gates::cphase(param(1));
    if (name == "rzz") return gates::rzz(param(1));
    if (name == "zx") return gates::crossRes(param(1));
    if (name == "nroot") return gates::nrootIswap(param(1));
    if (name == "fsim") return gates::fsim(param(1), param(2));
    if (name == "can") return gates::canonical(param(1), param(2), param(3));
    SNAIL_THROW("unknown gate: " << name);
}

int
cmdTopologies()
{
    TableWriter table({"name", "qubits", "edges", "Dia", "AvgD", "AvgC"});
    for (const auto &name : topologyNames()) {
        const CouplingGraph g = namedTopology(name);
        table.addRow({name, std::to_string(g.numQubits()),
                      std::to_string(g.edgeCount()),
                      std::to_string(g.diameter()),
                      TableWriter::num(g.averageDistance(), 2),
                      TableWriter::num(g.averageDegree(), 2)});
    }
    table.print(std::cout);
    return 0;
}

/**
 * `targets --stats <name|device.json>`: the distance-oracle audit for
 * one device — qubit count, the oracle kind the Auto policy picks,
 * and the bytes its distance structure needs next to the flat n^2
 * table, so kiloqubit feasibility is a one-liner to check.  Accepts a
 * topology name, a built-in target name, or a JSON device file.
 */
int
cmdTargetStats(const std::string &what)
{
    std::optional<CouplingGraph> graph;
    if (what.size() > 5 && what.substr(what.size() - 5) == ".json") {
        graph = loadTargetFile(what).graph();
    } else {
        try {
            graph = namedTopology(what);
        } catch (const SnailError &) {
            graph = namedTarget(what).graph();
        }
    }
    // Building the oracle also refreshes snailqc_distance_oracle_bytes.
    const DistanceOracle &oracle = graph->distanceOracle();
    std::string clusters = "none";
    if (const auto &hint = graph->clusterHint()) {
        int count = 0;
        for (int id : *hint) {
            count = std::max(count, id + 1);
        }
        clusters = std::to_string(count) + " clusters";
    }
    TableWriter table({"property", "value"});
    table.addRow({"name", graph->name()});
    table.addRow({"qubits", std::to_string(graph->numQubits())});
    table.addRow({"edges", std::to_string(graph->edgeCount())});
    table.addRow({"cluster hint", clusters});
    table.addRow({"distance oracle", toString(oracle.kind())});
    table.addRow({"oracle bytes", std::to_string(oracle.memoryBytes())});
    table.addRow({"flat table bytes",
                  std::to_string(flatTableBytes(graph->numQubits()))});
    table.print(std::cout);
    return 0;
}

int
cmdTargets(const std::vector<std::string> &args)
{
    if (!args.empty() && args[0] == "--stats") {
        SNAIL_REQUIRE(args.size() >= 2,
                      "targets --stats needs <name|device.json>");
        return cmdTargetStats(args[1]);
    }
    if (!args.empty() && args[0] == "--export") {
        SNAIL_REQUIRE(args.size() >= 3,
                      "targets --export needs <target-name> <file.json>");
        const Target target = namedTarget(args[1]);
        saveTargetFile(target, args[2]);
        std::cout << "wrote " << target.name() << " (" << target.numQubits()
                  << " qubits, " << target.graph().edgeCount()
                  << " edges) to " << args[2] << "\n";
        return 0;
    }

    // Table-1-style structural properties plus the device calibration.
    TableWriter table({"target", "qubits", "edges", "Dia", "AvgD", "AvgC",
                       "basis", "F2q/pulse", "F1q", "pulse"});
    for (const Target &target : builtinTargets()) {
        const CouplingGraph &g = target.graph();
        const EdgeProperties &edge = target.defaultEdge();
        table.addRow({target.name(), std::to_string(g.numQubits()),
                      std::to_string(g.edgeCount()),
                      std::to_string(g.diameter()),
                      TableWriter::num(g.averageDistance(), 2),
                      TableWriter::num(g.averageDegree(), 2),
                      edge.basis.name(),
                      TableWriter::num(edge.fidelity_2q, 4),
                      TableWriter::num(target.defaultQubit().fidelity_1q, 4),
                      TableWriter::num(edge.pulseDuration(), 2)});
    }
    table.print(std::cout);
    std::cout <<
        "\nF2q/pulse is the per-native-pulse fidelity (Eq. 12 scaling of\n"
        "a 0.99 full-length pulse).  Export any row as an editable JSON\n"
        "device file:  snailqc targets --export <target> <file.json>\n";
    return 0;
}

/**
 * Extract `<flag> <value>` from an argument list (erasing both
 * tokens); "" when the flag is absent.  Lets positional commands
 * (transpile/pipeline) accept --trace-out anywhere on the line.
 */
std::string
takeFlagValue(std::vector<std::string> &args, const std::string &flag)
{
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] != flag) {
            continue;
        }
        SNAIL_REQUIRE(i + 1 < args.size(), flag << " needs a value");
        std::string value = args[i + 1];
        args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                   args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
        return value;
    }
    return "";
}

/**
 * RAII behind `--trace-out <file.json>`: installs a fresh Tracer as
 * the process-wide active tracer for the command's duration, then
 * writes the collected spans as Chrome trace-event JSON (load in
 * ui.perfetto.dev or chrome://tracing; see docs/observability.md).
 * An empty path keeps tracing disabled — the null-sink default.
 */
class TraceOutput
{
  public:
    explicit TraceOutput(std::string path) : _path(std::move(path))
    {
        if (!_path.empty()) {
            _tracer = std::make_unique<Tracer>();
            setActiveTracer(_tracer.get());
        }
    }

    ~TraceOutput()
    {
        if (!_tracer) {
            return;
        }
        setActiveTracer(nullptr);
        std::ofstream out(_path, std::ios::binary);
        if (out.good()) {
            _tracer->writeJson(out);
            std::cerr << "wrote trace " << _path << "\n";
        } else {
            std::cerr << "cannot write trace '" << _path << "'\n";
        }
    }

    TraceOutput(const TraceOutput &) = delete;
    TraceOutput &operator=(const TraceOutput &) = delete;

  private:
    std::string _path;
    std::unique_ptr<Tracer> _tracer;
};

/**
 * Extract `--device <value>` from an argument list (erasing both
 * tokens) and load the device: a .json path via loadTargetFile, any
 * other value via the built-in target registry.
 */
std::optional<Target>
takeDeviceArg(std::vector<std::string> &args)
{
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] != "--device") {
            continue;
        }
        SNAIL_REQUIRE(i + 1 < args.size(),
                      "--device needs <file.json|target-name>");
        const std::string value = args[i + 1];
        args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                   args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
        if (value.size() > 5 &&
            value.substr(value.size() - 5) == ".json") {
            return loadTargetFile(value);
        }
        return namedTarget(value);
    }
    return std::nullopt;
}

int
cmdCoords(const std::vector<std::string> &args)
{
    const Gate gate = parseGate(args);
    const WeylCoords w = weylCoordinates(gate);
    std::cout << gate.name() << " Weyl coordinates (pi units): ("
              << w.a / M_PI << ", " << w.b / M_PI << ", " << w.c / M_PI
              << ")\n";
    TableWriter table({"basis", "count", "duration"});
    for (BasisKind kind : {BasisKind::CNOT, BasisKind::SqISwap,
                           BasisKind::ISwap, BasisKind::Sycamore}) {
        BasisSpec spec;
        spec.kind = kind;
        table.addRow({spec.name(),
                      std::to_string(basisCount(spec, w)),
                      TableWriter::num(basisDuration(spec, w), 2)});
    }
    table.print(std::cout);
    return 0;
}

int
cmdCircuit(const std::vector<std::string> &args)
{
    SNAIL_REQUIRE(args.size() >= 2, "circuit needs <bench> <width>");
    const Circuit c = makeBenchmark(args[0], std::atoi(args[1].c_str()));
    std::cout << c.name() << ": " << c.size() << " gates ("
              << c.countTwoQubit() << " 2Q), 2Q depth "
              << c.twoQubitDepth() << "\n";
    if (c.size() <= 64) {
        c.dump(std::cout);
    }
    return 0;
}

/** True when the argument looks like a QASM file path. */
bool
isQasmPath(const std::string &arg)
{
    return arg.size() > 5 && arg.substr(arg.size() - 5) == ".qasm";
}

int
cmdParse(const std::vector<std::string> &args)
{
    SNAIL_REQUIRE(!args.empty(), "parse needs <file.qasm>");
    const QasmParseResult result = parseQasmFile(args[0]);
    const Circuit &c = result.circuit;
    std::cout << args[0] << ": " << c.numQubits() << " qubits, " << c.size()
              << " gates (" << c.countTwoQubit() << " 2Q), 2Q depth "
              << c.twoQubitDepth() << ", " << result.measurements.size()
              << " measurements\n";
    for (const auto &reg : result.qregs) {
        std::cout << "  qreg " << reg.name << '[' << reg.size
                  << "] -> qubits " << reg.offset << ".."
                  << reg.offset + reg.size - 1 << "\n";
    }
    if (c.size() <= 64) {
        c.dump(std::cout);
    }
    return 0;
}

int
cmdExport(const std::vector<std::string> &args)
{
    SNAIL_REQUIRE(args.size() >= 2, "export needs <bench> <width>");
    const Circuit c = makeBenchmark(args[0], std::atoi(args[1].c_str()));
    if (isQasmExportable(c)) {
        writeQasm(std::cout, c);
    } else {
        // Lower exotic kinds (Haar SU(4) blocks etc.) to CNOT first.
        writeQasm(std::cout, expandToBasis(c, BasisSpec{BasisKind::CNOT}));
    }
    return 0;
}

/** Print the Fig. 10 metrics plus the per-pass instrumentation. */
void
printTranspileResult(const Circuit &circuit, const std::string &device_name,
                     const std::string &basis_name, const std::string &spec,
                     const TranspileResult &r)
{
    std::cout << circuit.name() << " on " << device_name << " ("
              << basis_name << " basis), pipeline \"" << spec << "\":\n";
    TableWriter table({"metric", "value"});
    table.addRow({"SWAPs total", std::to_string(r.metrics.swaps_total)});
    table.addRow({"SWAPs critical path",
                  TableWriter::num(r.metrics.swaps_critical, 0)});
    table.addRow({"2Q ops after routing",
                  std::to_string(r.metrics.ops_2q_pre)});
    table.addRow({"native 2Q pulses",
                  std::to_string(r.metrics.basis_2q_total)});
    table.addRow({"pulse duration (critical)",
                  TableWriter::num(r.metrics.duration_critical, 1)});
    table.addRow({"pulse duration (total)",
                  TableWriter::num(r.metrics.duration_total, 1)});
    if (r.properties.contains("scored_hetero")) {
        table.addRow({"per-edge basis scoring", "yes"});
    }
    if (r.properties.contains("fidelity_predicted")) {
        table.addRow({"predicted fidelity",
                      TableWriter::num(
                          r.properties.get("fidelity_predicted"), 4)});
        table.addRow({"  2Q pulse part",
                      TableWriter::num(
                          r.properties.get("fidelity_2q_part"), 4)});
        table.addRow({"  1Q gate part",
                      TableWriter::num(
                          r.properties.get("fidelity_1q_part"), 4)});
        table.addRow({"  idle decoherence part",
                      TableWriter::num(
                          r.properties.get("fidelity_idle_part"), 4)});
    }
    table.print(std::cout);

    std::cout << "\nper-pass instrumentation:\n";
    TableWriter passes({"pass", "wall ms", "dSWAP", "d2Q"});
    for (const PassStat &stat : r.pass_stats) {
        passes.addRow({stat.pass, TableWriter::num(stat.wall_ms, 2),
                       std::to_string(stat.swap_delta),
                       std::to_string(stat.ops2q_delta)});
    }
    passes.print(std::cout);
}

/** Load <bench|file.qasm> <width> from the first two positional args. */
Circuit
loadCircuitArg(const std::vector<std::string> &args)
{
    return isQasmPath(args[0])
               ? parseQasmFile(args[0]).circuit
               : makeBenchmark(args[0], std::atoi(args[1].c_str()));
}

int
cmdTranspile(std::vector<std::string> args)
{
    const TraceOutput trace(takeFlagValue(args, "--trace-out"));
    const std::optional<Target> device = takeDeviceArg(args);
    SNAIL_REQUIRE(args.size() >= (device ? 2u : 4u),
                  "transpile needs <bench> <width> <topology> <basis>, or "
                  "<bench> <width> --device <file.json|target-name>");
    const Circuit circuit = loadCircuitArg(args);

    // Positionals after <bench> <width>: without --device, <topology>
    // and <basis> come first; with it, the device supplies both.
    std::size_t next = device ? 2 : 4;
    TranspileOptions options;
    if (!device) {
        options.basis = parseBasisSpec(args[3]);
    }
    if (args.size() > next) {
        const std::string &router = args[next];
        if (router == "basic") {
            options.router = RouterKind::Basic;
        } else if (router == "stochastic") {
            options.router = RouterKind::Stochastic;
        } else if (router == "sabre") {
            options.router = RouterKind::Sabre;
        } else if (router == "lookahead") {
            options.router = RouterKind::Lookahead;
        } else {
            SNAIL_THROW("unknown router: " << router);
        }
        ++next;
    }
    if (args.size() > next) {
        options.seed = static_cast<unsigned long long>(
            std::atoll(args[next].c_str()));
    }

    if (device) {
        // The device's default basis scores; per-edge calibration is
        // visible to any noise-aware passes in the pipeline.
        options.basis = device->defaultBasis();
        const PassManager pm = passManagerFromOptions(options);
        const TranspileResult r = pm.run(circuit, *device, options.seed);
        printTranspileResult(circuit, device->name(),
                             options.basis.name(), pm.spec(), r);
        return 0;
    }
    const CouplingGraph graph = namedTopology(args[2]);
    const PassManager pm = passManagerFromOptions(options);
    const TranspileResult r =
        pm.run(circuit, graph, options.seed, options.basis);
    printTranspileResult(circuit, graph.name(), options.basis.name(),
                         pm.spec(), r);
    return 0;
}

int
cmdPipeline(std::vector<std::string> args)
{
    const TraceOutput trace(takeFlagValue(args, "--trace-out"));
    const std::optional<Target> device = takeDeviceArg(args);
    SNAIL_REQUIRE(args.size() >= (device ? 3u : 4u),
                  "pipeline needs <bench> <width> <topology> <pass-spec>, "
                  "or <bench> <width> --device <dev> <pass-spec>");
    const Circuit circuit = loadCircuitArg(args);
    const std::size_t spec_index = device ? 2 : 3;
    const PassManager pm = passManagerFromSpec(args[spec_index]);
    unsigned long long seed = kDefaultTranspileSeed;
    if (args.size() > spec_index + 1) {
        seed = static_cast<unsigned long long>(
            std::atoll(args[spec_index + 1].c_str()));
    }

    std::optional<CouplingGraph> graph;
    if (!device) {
        graph = namedTopology(args[2]);
    }
    const TranspileResult r = device ? pm.run(circuit, *device, seed)
                                     : pm.run(circuit, *graph, seed);
    // Report the basis scoring actually used (published by the score
    // pass), which may differ from any basis= entry placed after it.
    BasisSpec scored_basis;
    scored_basis.kind = static_cast<BasisKind>(
        static_cast<int>(r.properties.get("scored_basis")));
    printTranspileResult(circuit,
                         device ? device->name() : graph->name(),
                         scored_basis.name(), pm.spec(), r);
    return 0;
}

/**
 * Design-space exploration: evaluate a declarative sweep spec.
 *
 *   snailqc sweep <spec.json> [--threads N] [--resume]
 *          [--checkpoint <file.jsonl>] [--csv <file>] [--json <file>]
 *          [--metric <name>] [--verbose] [--shard i/N]
 *
 * --resume without --checkpoint defaults the checkpoint path to
 * "<spec.json>.checkpoint.jsonl".  --csv/--json accept "-" for stdout
 * (suppressing the summary tables).  --shard i/N evaluates only the
 * points content-hashed to shard i of N (explore/shard.hpp) and
 * requires --checkpoint — the shard-tagged checkpoint is how the
 * slice's results reach `sweep-merge`.
 */
int
cmdSweep(const std::vector<std::string> &args)
{
    SNAIL_REQUIRE(!args.empty(), "sweep needs <spec.json>");
    const std::string spec_path = args[0];

    EngineOptions engine;
    std::string csv_path;
    std::string json_path;
    std::string cache_dir;
    std::string trace_out;
    std::string metric = "basis_2q_total";
    for (std::size_t i = 1; i < args.size(); ++i) {
        const std::string &arg = args[i];
        const auto value = [&]() -> const std::string & {
            SNAIL_REQUIRE(i + 1 < args.size(), arg << " needs a value");
            return args[++i];
        };
        if (arg == "--threads") {
            const std::string &text = value();
            char *end = nullptr;
            const long threads = std::strtol(text.c_str(), &end, 10);
            SNAIL_REQUIRE(end && *end == '\0' && !text.empty() &&
                              threads >= 0,
                          "--threads needs a non-negative integer, got '"
                              << text << "'");
            engine.threads = static_cast<unsigned>(threads);
        } else if (arg == "--resume") {
            engine.resume = true;
        } else if (arg == "--verbose") {
            engine.progress = &std::cerr;
        } else if (arg == "--checkpoint") {
            engine.checkpoint_path = value();
        } else if (arg == "--csv") {
            csv_path = value();
        } else if (arg == "--json") {
            json_path = value();
        } else if (arg == "--metric") {
            metric = value();
        } else if (arg == "--cache-dir") {
            cache_dir = value();
        } else if (arg == "--trace-out") {
            trace_out = value();
        } else if (arg == "--shard") {
            const ShardSlice slice = parseShardSlice(value());
            engine.shard_index = slice.index;
            engine.shard_count = slice.count;
        } else {
            SNAIL_THROW("unknown sweep option: " << arg);
        }
    }
    const TraceOutput trace(trace_out);
    if (engine.resume && engine.checkpoint_path.empty()) {
        engine.checkpoint_path = spec_path + ".checkpoint.jsonl";
    }
    SNAIL_REQUIRE(engine.shard_count == 1 ||
                      !engine.checkpoint_path.empty(),
                  "--shard needs --checkpoint (or --resume): the "
                  "shard-tagged checkpoint is what sweep-merge fuses");
    SNAIL_REQUIRE(csv_path != "-" || json_path != "-",
                  "only one report can stream to stdout ('-')");
    // Catch a typo'd metric before the sweep runs, not after.
    pointHasMetric(PointMetrics{}, metric);

    const SweepSpec spec = loadSweepSpecFile(spec_path);

    // The engine borrows the store for the run (EngineOptions docs).
    std::optional<CacheStore> store;
    if (!cache_dir.empty()) {
        store.emplace(cache_dir);
        engine.cache_store = &*store;
    }

    const SweepRun run = runSweep(spec, engine);
    if (store.has_value()) {
        std::cerr << "persistent cache: " << run.stats.from_store
                  << " points served from " << store->directory() << "\n";
    }
    if (run.shard_count > 1) {
        std::cerr << "shard " << run.shard_index << "/"
                  << run.shard_count << ": " << run.points.size()
                  << " of " << run.total_points << " points (point set "
                  << hex64(run.point_set_hash) << ")\n";
    }

    bool summary_to_stdout = true;
    const auto writeReport = [&](const std::string &path, auto writer) {
        if (path == "-") {
            writer(std::cout);
            summary_to_stdout = false;
            return;
        }
        std::ofstream out(path);
        SNAIL_REQUIRE(out.good(),
                      "cannot write report '" << path << "'");
        writer(out);
        // stderr: stdout may be carrying the other report via "-".
        std::cerr << "wrote " << path << "\n";
    };
    if (!csv_path.empty()) {
        writeReport(csv_path, [&](std::ostream &os) {
            writeSweepCsv(os, run);
        });
    }
    if (!json_path.empty()) {
        writeReport(json_path, [&](std::ostream &os) {
            writeSweepJson(os, run);
        });
    }
    if (summary_to_stdout) {
        printSweepSummary(std::cout, run, metric);
    }
    return 0;
}

/**
 * Fuse a distributed sweep's shard checkpoints back into one run.
 *
 *   snailqc sweep-merge <spec.json> --shards <dir|file.jsonl>...
 *          [--csv <file>] [--json <file>] [--metric <name>]
 *
 * --shards takes any mix of checkpoint files and directories (a
 * directory contributes every *.jsonl inside it); everything after it
 * that is not another flag is a shard path.  The merge validates that
 * the checkpoints cover the spec's expansion exactly once — missing,
 * duplicated, foreign, or wrong-spec points are typed errors naming
 * the offender — and the CSV/JSON reports are byte-identical to a
 * single-process `snailqc sweep` of the same spec.
 */
int
cmdSweepMerge(const std::vector<std::string> &args)
{
    SNAIL_REQUIRE(!args.empty(),
                  "sweep-merge needs <spec.json> --shards <dir|file>...");
    const std::string spec_path = args[0];

    std::vector<std::string> shard_paths;
    std::string csv_path;
    std::string json_path;
    std::string metric = "basis_2q_total";
    bool in_shards = false;
    for (std::size_t i = 1; i < args.size(); ++i) {
        const std::string &arg = args[i];
        const auto value = [&]() -> const std::string & {
            SNAIL_REQUIRE(i + 1 < args.size(), arg << " needs a value");
            return args[++i];
        };
        if (arg == "--shards") {
            in_shards = true;
        } else if (arg == "--csv") {
            csv_path = value();
            in_shards = false;
        } else if (arg == "--json") {
            json_path = value();
            in_shards = false;
        } else if (arg == "--metric") {
            metric = value();
            in_shards = false;
        } else if (in_shards && (arg.empty() || arg[0] != '-')) {
            shard_paths.push_back(arg);
        } else {
            SNAIL_THROW("unknown sweep-merge option: " << arg);
        }
    }
    SNAIL_REQUIRE(!shard_paths.empty(),
                  "sweep-merge needs --shards <dir|file.jsonl>...");
    SNAIL_REQUIRE(csv_path != "-" || json_path != "-",
                  "only one report can stream to stdout ('-')");
    pointHasMetric(PointMetrics{}, metric);

    const SweepSpec spec = loadSweepSpecFile(spec_path);
    const std::vector<std::string> shard_files =
        expandShardFiles(shard_paths);

    ShardMergeStats stats;
    const SweepRun run = mergeSweepShards(spec, shard_files, &stats);
    std::cerr << "merged " << stats.shard_files << " shard checkpoint"
              << (stats.shard_files == 1 ? "" : "s") << " ("
              << stats.headers << " headers, " << stats.records
              << " records) covering " << run.points.size()
              << " points\n";

    bool summary_to_stdout = true;
    const auto writeReport = [&](const std::string &path, auto writer) {
        if (path == "-") {
            writer(std::cout);
            summary_to_stdout = false;
            return;
        }
        std::ofstream out(path);
        SNAIL_REQUIRE(out.good(),
                      "cannot write report '" << path << "'");
        writer(out);
        std::cerr << "wrote " << path << "\n";
    };
    if (!csv_path.empty()) {
        writeReport(csv_path, [&](std::ostream &os) {
            writeSweepCsv(os, run);
        });
    }
    if (!json_path.empty()) {
        writeReport(json_path, [&](std::ostream &os) {
            writeSweepJson(os, run);
        });
    }
    if (summary_to_stdout) {
        printSweepSummary(std::cout, run, metric);
    }
    return 0;
}

/**
 * Guided co-design search: walk the parametric topology space.
 *
 *   snailqc search <spec.json> [--threads N] [--budget N] [--resume]
 *          [--checkpoint <file.jsonl>] [--trace <file.jsonl>]
 *          [--csv <file>] [--json <file>] [--verbose] [--cache-dir <dir>]
 *
 * --resume without --checkpoint defaults the checkpoint path to
 * "<spec.json>.search-checkpoint.jsonl".  --budget bounds freshly
 * computed transpiles (cache hits are free).  --trace writes the
 * JSONL iteration trace, --csv the Pareto frontier; both accept "-"
 * for stdout (suppressing the summary tables).
 */
int
cmdSearch(const std::vector<std::string> &args)
{
    SNAIL_REQUIRE(!args.empty(), "search needs <spec.json>");
    const std::string spec_path = args[0];

    SearchOptions options;
    std::string trace_path;
    std::string csv_path;
    std::string json_path;
    std::string cache_dir;
    std::string trace_out;
    for (std::size_t i = 1; i < args.size(); ++i) {
        const std::string &arg = args[i];
        const auto value = [&]() -> const std::string & {
            SNAIL_REQUIRE(i + 1 < args.size(), arg << " needs a value");
            return args[++i];
        };
        const auto number = [&]() {
            const std::string &text = value();
            char *end = nullptr;
            const unsigned long long n =
                std::strtoull(text.c_str(), &end, 10);
            SNAIL_REQUIRE(end && *end == '\0' && !text.empty(),
                          arg << " needs a non-negative integer, got '"
                              << text << "'");
            return n;
        };
        if (arg == "--threads") {
            options.threads = static_cast<unsigned>(number());
        } else if (arg == "--budget") {
            options.budget = static_cast<std::size_t>(number());
        } else if (arg == "--resume") {
            options.resume = true;
        } else if (arg == "--verbose") {
            options.progress = &std::cerr;
        } else if (arg == "--checkpoint") {
            options.checkpoint_path = value();
        } else if (arg == "--trace") {
            trace_path = value();
        } else if (arg == "--csv") {
            csv_path = value();
        } else if (arg == "--json") {
            json_path = value();
        } else if (arg == "--cache-dir") {
            cache_dir = value();
        } else if (arg == "--trace-out") {
            trace_out = value();
        } else {
            SNAIL_THROW("unknown search option: " << arg);
        }
    }
    const TraceOutput trace(trace_out);
    if (options.resume && options.checkpoint_path.empty()) {
        options.checkpoint_path = spec_path + ".search-checkpoint.jsonl";
    }
    int to_stdout = 0;
    for (const std::string &path : {trace_path, csv_path, json_path}) {
        to_stdout += path == "-" ? 1 : 0;
    }
    SNAIL_REQUIRE(to_stdout <= 1,
                  "only one report can stream to stdout ('-')");

    const SearchSpec spec = loadSearchSpecFile(spec_path);

    std::optional<CacheStore> store;
    if (!cache_dir.empty()) {
        store.emplace(cache_dir);
        options.cache_store = &*store;
    }

    const SearchRun run = runSearch(spec, options);
    if (store.has_value()) {
        std::cerr << "persistent cache: " << run.stats.from_store
                  << " points served from " << store->directory() << "\n";
    }

    bool summary_to_stdout = true;
    const auto writeReport = [&](const std::string &path, auto writer) {
        if (path == "-") {
            writer(std::cout);
            summary_to_stdout = false;
            return;
        }
        std::ofstream out(path);
        SNAIL_REQUIRE(out.good(),
                      "cannot write report '" << path << "'");
        writer(out);
        // stderr: stdout may be carrying another report via "-".
        std::cerr << "wrote " << path << "\n";
    };
    if (!trace_path.empty()) {
        writeReport(trace_path, [&](std::ostream &os) {
            writeSearchTrace(os, run);
        });
    }
    if (!csv_path.empty()) {
        writeReport(csv_path, [&](std::ostream &os) {
            writeFrontierCsv(os, run);
        });
    }
    if (!json_path.empty()) {
        writeReport(json_path, [&](std::ostream &os) {
            writeSearchJson(os, run);
        });
    }
    if (summary_to_stdout) {
        printSearchSummary(std::cout, run);
    }
    return 0;
}

/**
 * serve [--socket <path>] [--cache-dir <dir>] [--cache-max-bytes N]
 *       [--queue-limit N] [--pool N] [--trace-out <file.json>]
 *       [--metrics-interval <seconds> [--metrics-out <file.jsonl>]]
 *       [--status [--metrics]]
 *
 * Runs the job daemon in the foreground until SIGTERM/SIGINT or a
 * client's shutdown request; exits 0 on a clean stop.  --status
 * queries a *running* daemon's stats instead of starting one
 * (--metrics asks for the metrics-registry snapshot instead).
 * --pool fixes the shared scheduler's worker count (default: number
 * of hardware threads, or $SNAILQC_POOL_SIZE).  --metrics-interval
 * appends one registry-snapshot JSONL line per interval to the
 * --metrics-out file (default snailqc-metrics.jsonl); --trace-out
 * writes the daemon's span trace at clean shutdown.
 */
int
cmdServe(const std::vector<std::string> &args)
{
    ServerOptions options;
    bool status_only = false;
    bool status_metrics = false;
    std::string trace_out;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        const auto value = [&]() -> const std::string & {
            SNAIL_REQUIRE(i + 1 < args.size(), arg << " needs a value");
            return args[++i];
        };
        const auto number = [&](unsigned long long floor) {
            const std::string &text = value();
            char *end = nullptr;
            const unsigned long long n =
                std::strtoull(text.c_str(), &end, 10);
            SNAIL_REQUIRE(end && *end == '\0' && !text.empty() &&
                              n >= floor,
                          arg << " needs an integer >= " << floor
                              << ", got '" << text << "'");
            return n;
        };
        if (arg == "--socket") {
            options.socket_path = value();
        } else if (arg == "--cache-dir") {
            options.service.cache_dir = value();
        } else if (arg == "--cache-max-bytes") {
            options.service.cache_max_bytes = number(1);
        } else if (arg == "--queue-limit") {
            options.service.queue_limit =
                static_cast<std::size_t>(number(1));
        } else if (arg == "--pool") {
            Scheduler::setGlobalWorkerCount(
                static_cast<unsigned>(number(1)));
        } else if (arg == "--status") {
            status_only = true;
        } else if (arg == "--metrics") {
            status_metrics = true;
        } else if (arg == "--metrics-interval") {
            const std::string &text = value();
            char *end = nullptr;
            const double seconds = std::strtod(text.c_str(), &end);
            SNAIL_REQUIRE(end && *end == '\0' && !text.empty() &&
                              seconds > 0.0,
                          "--metrics-interval needs a positive number "
                          "of seconds, got '"
                              << text << "'");
            options.metrics_interval_s = seconds;
        } else if (arg == "--metrics-out") {
            options.metrics_path = value();
        } else if (arg == "--trace-out") {
            trace_out = value();
        } else {
            SNAIL_THROW("unknown serve option: " << arg);
        }
    }
    SNAIL_REQUIRE(status_only || !status_metrics,
                  "--metrics requires --status (use --metrics-interval "
                  "for periodic dumps from a running daemon)");

    if (status_only) {
        Client client(options.socket_path);
        JsonValue::Object request;
        request["op"] = JsonValue(status_metrics ? "metrics" : "stats");
        std::cout << client.request(JsonValue(std::move(request))).dump(2)
                  << "\n";
        return 0;
    }

    if (options.metrics_interval_s > 0.0 &&
        options.metrics_path.empty()) {
        options.metrics_path = "snailqc-metrics.jsonl";
    }
    const TraceOutput trace(trace_out);
    options.log = &std::cerr;
    Server server(options);
    server.serve();
    return 0;
}

/**
 * client [--socket <path>] <op> [args]
 *
 * ping/version/stats/metrics/shutdown take no arguments.  transpile
 * builds a one-job request from transpile-style positionals.  batch
 * sends a jobs file ({"jobs":[...]} or a bare array; "-" reads stdin).
 * request passes one raw JSON object through untouched.  Responses
 * print as pretty JSON; a {"ok":false} response exits 1 so shell
 * scripts can branch on failure.
 */
int
cmdClient(const std::vector<std::string> &args)
{
    std::size_t next = 0;
    std::string socket_path;
    if (next + 1 < args.size() && args[next] == "--socket") {
        socket_path = args[next + 1];
        next += 2;
    }
    SNAIL_REQUIRE(next < args.size(),
                  "client needs an op (ping, version, stats, metrics, "
                  "shutdown, transpile, batch, request)");
    const std::string op = args[next++];

    const auto readAll = [](const std::string &path) {
        if (path == "-") {
            return std::string(std::istreambuf_iterator<char>(std::cin),
                               std::istreambuf_iterator<char>());
        }
        std::ifstream in(path);
        SNAIL_REQUIRE(in.good(), "cannot read '" << path << "'");
        return std::string(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
    };

    JsonValue request;
    if (op == "ping" || op == "version" || op == "stats" ||
        op == "metrics" || op == "shutdown") {
        SNAIL_REQUIRE(next == args.size(), op << " takes no arguments");
        JsonValue::Object body;
        body["op"] = JsonValue(op);
        request = JsonValue(std::move(body));
    } else if (op == "transpile") {
        SNAIL_REQUIRE(args.size() - next >= 3,
                      "client transpile needs <bench|file.qasm> <width> "
                      "<target-name> [pipeline-spec] [seed-hex]");
        const std::string &bench = args[next];
        JsonValue::Object circuit;
        if (bench.size() > 5 &&
            bench.compare(bench.size() - 5, 5, ".qasm") == 0) {
            circuit["qasm"] = JsonValue(readAll(bench));
        } else {
            circuit["bench"] = JsonValue(bench);
            circuit["width"] =
                JsonValue(static_cast<int>(std::strtol(
                    args[next + 1].c_str(), nullptr, 10)));
        }
        JsonValue::Object target;
        target["name"] = JsonValue(args[next + 2]);
        JsonValue::Object body;
        body["op"] = JsonValue("transpile");
        body["circuit"] = JsonValue(std::move(circuit));
        body["target"] = JsonValue(std::move(target));
        if (args.size() - next >= 4) {
            body["pipeline"] = JsonValue(args[next + 3]);
        }
        if (args.size() - next >= 5) {
            body["seed"] = JsonValue(args[next + 4]);
        }
        request = JsonValue(std::move(body));
    } else if (op == "batch") {
        SNAIL_REQUIRE(args.size() - next == 1,
                      "client batch needs <jobs.json|->");
        JsonValue jobs = JsonValue::parse(readAll(args[next]));
        JsonValue::Object body;
        body["op"] = JsonValue("batch");
        body["jobs"] = jobs.isArray() ? std::move(jobs) : jobs.at("jobs");
        request = JsonValue(std::move(body));
    } else if (op == "request") {
        SNAIL_REQUIRE(args.size() - next == 1,
                      "client request needs <json|->");
        const std::string &text = args[next];
        request = JsonValue::parse(
            text == "-" || (text.size() > 5 &&
                            text.compare(text.size() - 5, 5, ".json") == 0)
                ? readAll(text)
                : text);
    } else {
        SNAIL_THROW("unknown client op '" << op << "'");
    }

    Client client(socket_path);
    const JsonValue response = client.call(request);
    std::cout << response.dump(2) << "\n";
    const JsonValue *ok = response.find("ok");
    return ok != nullptr && ok->isBool() && ok->asBool() ? 0 : 1;
}

int
cmdVersion()
{
    std::cout << versionString() << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list-passes") {
            return cmdPasses();
        }
        if (arg == "--help" || arg == "-h") {
            printUsage(std::cout);
            return 0;
        }
        if (arg == "--version") {
            return cmdVersion();
        }
    }
    if (argc < 2) {
        return usage();
    }
    const std::string command = argv[1];
    std::vector<std::string> args;
    for (int i = 2; i < argc; ++i) {
        args.emplace_back(argv[i]);
    }
    try {
        if (command == "topologies") {
            return cmdTopologies();
        }
        if (command == "targets") {
            return cmdTargets(args);
        }
        if (command == "passes") {
            return cmdPasses();
        }
        if (command == "coords") {
            return cmdCoords(args);
        }
        if (command == "circuit") {
            return cmdCircuit(args);
        }
        if (command == "parse") {
            return cmdParse(args);
        }
        if (command == "export") {
            return cmdExport(args);
        }
        if (command == "transpile") {
            return cmdTranspile(args);
        }
        if (command == "pipeline") {
            return cmdPipeline(args);
        }
        if (command == "sweep") {
            return cmdSweep(args);
        }
        if (command == "sweep-merge") {
            return cmdSweepMerge(args);
        }
        if (command == "search") {
            return cmdSearch(args);
        }
        if (command == "serve") {
            return cmdServe(args);
        }
        if (command == "client") {
            return cmdClient(args);
        }
        if (command == "version") {
            return cmdVersion();
        }
        if (command == "help") {
            printUsage(std::cout);
            return 0;
        }
        return usage();
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
